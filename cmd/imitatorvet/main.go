// Command imitatorvet runs the repository's custom static analyzers —
// determinism, bufown, wirebounds, hotalloc, hostrace and narrowing (see
// DESIGN.md "Static invariants") — over Go packages. It supports two modes:
//
// Standalone (what CI runs; loads and type-checks packages itself):
//
//	go run ./cmd/imitatorvet ./...
//	imitatorvet -json ./...
//
// Vet tool (the go/analysis unitchecker protocol, driven by the go
// command, which passes a *.cfg JSON file per package):
//
//	go install ./cmd/imitatorvet
//	go vet -vettool=$(which imitatorvet) ./...
//
// Exit status: 0 clean, 1 operational error, 2 diagnostics reported.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"io"
	"os"
	"sort"
	"strings"

	"imitator/internal/analysis"
	"imitator/internal/analysis/bufown"
	"imitator/internal/analysis/determinism"
	"imitator/internal/analysis/hostrace"
	"imitator/internal/analysis/hotalloc"
	"imitator/internal/analysis/narrowing"
	"imitator/internal/analysis/wirebounds"
)

func analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.New(determinism.DefaultSimPackages),
		bufown.New(),
		wirebounds.New(),
		hotalloc.New(),
		hostrace.New(),
		narrowing.New(nil),
	}
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

// run is main minus process concerns: output goes to out so tests can
// assert the JSON shape.
func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("imitatorvet", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON")
	flagsMode := fs.Bool("flags", false, "print flag descriptions (vet protocol)")
	fs.Var(versionFlag{}, "V", "print version and exit (vet protocol)")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *flagsMode {
		// The go command interrogates vet tools for their flags; ours
		// carries none it needs to forward.
		fmt.Fprintln(out, "[]")
		return 0
	}
	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return unitcheck(rest[0], *jsonOut, out)
	}
	if len(rest) == 0 {
		rest = []string{"./..."}
	}
	return standalone(rest, *jsonOut, out)
}

// standalone loads packages via the go command and analyzes all of them.
func standalone(patterns []string, jsonOut bool, out io.Writer) int {
	pkgs, err := analysis.Load(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "imitatorvet:", err)
		return 1
	}
	total := 0
	byPkg := map[string]map[string][]jsonDiag{}
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, analyzers())
		if err != nil {
			fmt.Fprintln(os.Stderr, "imitatorvet:", err)
			return 1
		}
		total += len(diags)
		emit(pkg.Fset, pkg.Path, diags, jsonOut, byPkg)
	}
	if jsonOut {
		printJSON(out, byPkg)
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "imitatorvet: %d diagnostic(s)\n", total)
		return 2
	}
	return 0
}

// vetConfig is the subset of the go vet .cfg file the tool consumes,
// mirroring x/tools' unitchecker.Config.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one package described by a go vet config file.
func unitcheck(cfgPath string, jsonOut bool, out io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "imitatorvet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "imitatorvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The protocol requires an output file (facts for dependent packages);
	// these analyzers are fact-free, so an empty placeholder suffices.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("imitatorvet: no facts\n"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "imitatorvet:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, "imitatorvet:", err)
			return 1
		}
		files = append(files, f)
	}
	// Imports resolve through the export data the go command already
	// compiled, exactly as cmd/vet's own checkers do.
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "source"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	pkg, err := analysis.CheckFiles(fset, imp, cfg.ImportPath, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "imitatorvet:", err)
		return 1
	}
	diags, err := analysis.Run(pkg, analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "imitatorvet:", err)
		return 1
	}
	byPkg := map[string]map[string][]jsonDiag{}
	emit(fset, cfg.ID, diags, jsonOut, byPkg)
	if jsonOut {
		printJSON(out, byPkg)
		return 0
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// jsonDiag matches the go vet JSON diagnostic schema.
type jsonDiag struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

// emit prints diagnostics (plain mode) or accumulates them (JSON mode).
func emit(fset *token.FileSet, pkgID string, diags []analysis.Diagnostic, jsonOut bool, byPkg map[string]map[string][]jsonDiag) {
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if jsonOut {
			m := byPkg[pkgID]
			if m == nil {
				m = map[string][]jsonDiag{}
				byPkg[pkgID] = m
			}
			m[d.Analyzer] = append(m[d.Analyzer], jsonDiag{Posn: pos.String(), Message: d.Message})
		} else {
			fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", pos, d.Analyzer, d.Message)
		}
	}
}

func printJSON(out io.Writer, byPkg map[string]map[string][]jsonDiag) {
	keys := make([]string, 0, len(byPkg))
	for k := range byPkg {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ordered := make(map[string]map[string][]jsonDiag, len(byPkg))
	for _, k := range keys {
		ordered[k] = byPkg[k]
	}
	data, _ := json.MarshalIndent(ordered, "", "\t")
	fmt.Fprintln(out, string(data))
}

// versionFlag implements the -V=full handshake the go command uses to
// fingerprint vet tools for its build cache.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) Get() any         { return nil }
func (versionFlag) String() string   { return "" }

func (versionFlag) Set(s string) error {
	if s != "full" {
		return fmt.Errorf("unsupported flag value: -V=%s", s)
	}
	name, err := os.Executable()
	if err != nil {
		return err
	}
	data, err := os.ReadFile(name)
	if err != nil {
		return err
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", name, sha256.Sum256(data))
	os.Exit(0)
	return nil
}
