package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestJSONOutputShape pins the -json schema: map of package ID to map of
// analyzer name to diagnostics, each with a file:line:col position string
// and a message. The fixture package under testdata carries exactly one
// deliberate hotalloc violation.
func TestJSONOutputShape(t *testing.T) {
	var out bytes.Buffer
	code := run([]string{"-json", "./testdata/jsonpkg"}, &out)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 (diagnostics reported); output: %s", code, out.String())
	}

	var got map[string]map[string][]jsonDiag
	if err := json.Unmarshal(out.Bytes(), &got); err != nil {
		t.Fatalf("output is not the documented JSON shape: %v\n%s", err, out.String())
	}
	if len(got) != 1 {
		t.Fatalf("got %d package entries, want 1: %v", len(got), got)
	}
	for pkgID, byAnalyzer := range got {
		if !strings.HasSuffix(pkgID, "testdata/jsonpkg") {
			t.Errorf("package key %q does not end in testdata/jsonpkg", pkgID)
		}
		diags, ok := byAnalyzer["hotalloc"]
		if !ok {
			t.Fatalf("no hotalloc entry for %s: %v", pkgID, byAnalyzer)
		}
		if len(diags) != 1 {
			t.Fatalf("got %d hotalloc diagnostics, want 1: %v", len(diags), diags)
		}
		d := diags[0]
		if !strings.Contains(d.Posn, "jsonpkg.go:") {
			t.Errorf("Posn %q does not reference jsonpkg.go", d.Posn)
		}
		// file:line:col — two colon-separated numbers after the file name.
		if parts := strings.Split(d.Posn, ":"); len(parts) < 3 {
			t.Errorf("Posn %q is not file:line:col", d.Posn)
		}
		if !strings.Contains(d.Message, "make allocates") {
			t.Errorf("Message %q does not describe the make allocation", d.Message)
		}
	}
}

// TestJSONCleanPackage pins the empty shape: a clean package yields "{}"
// and exit 0.
func TestJSONCleanPackage(t *testing.T) {
	var out bytes.Buffer
	code := run([]string{"-json", "imitator/internal/bufpool"}, &out)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; output: %s", code, out.String())
	}
	if s := strings.TrimSpace(out.String()); s != "{}" {
		t.Errorf("clean-package output = %q, want {}", s)
	}
}
