// Package jsonpkg is a fixture for imitatorvet's -json output-shape test:
// the annotated function holds one deliberate hot-path allocation, so the
// tool reports exactly one hotalloc diagnostic here. The directory lives
// under testdata, which ./... expansion skips, so the CI gate over the real
// tree never sees it.
package jsonpkg

// Step allocates on the hot path on purpose.
//
//imitator:hotpath
func Step(n int) []int {
	return make([]int, n)
}
