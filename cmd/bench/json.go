package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"imitator/internal/core"
	"imitator/internal/experiments"
)

// The -json mode measures the engine's host-side performance — wall clock
// and heap allocations — on the Fig 7 / Fig 13 workloads plus an isolated
// steady-state superstep probe, and writes a machine-readable report. The
// report also records simulated seconds and message bytes per workload:
// those must stay bit-for-bit identical across engine optimizations, so a
// diff of two reports separates "faster" from "changed the semantics".
//
// Trajectory workflow: run `bench -json old.json` before an optimization,
// re-run with `-json new.json -baseline old.json` after; the new report
// embeds the old one's results for side-by-side comparison.

// benchEntry is one measured workload.
type benchEntry struct {
	ID          string  `json:"id"`
	WallSeconds float64 `json:"wall_seconds"`
	Allocs      uint64  `json:"allocs"`
	AllocBytes  uint64  `json:"alloc_bytes"`

	// Invariants: identical across engine-internal optimizations.
	SimSeconds float64 `json:"sim_seconds,omitempty"`
	MsgBytes   int64   `json:"msg_bytes,omitempty"`

	// Steady-state probe: per-superstep deltas between a short and a long
	// run of the same job, which cancels load/partitioning costs.
	Supersteps         int     `json:"supersteps,omitempty"`
	AllocsPerSuperstep float64 `json:"allocs_per_superstep,omitempty"`
	WallPerSuperstep   float64 `json:"wall_seconds_per_superstep,omitempty"`

	// FT-strategy probe (ftcompare/* entries): persistence overhead and
	// recovery cost under the standard mid-run crash of node 1. Logged
	// recovery is failure-confined, so its survivor_replay_iters stays 0
	// (omitted) while log_replay_supersteps counts the reborn node's chain.
	PersistPerSuperstep float64 `json:"persist_seconds_per_superstep,omitempty"`
	RecoverySeconds     float64 `json:"recovery_seconds,omitempty"`
	SurvivorReplayIters int     `json:"survivor_replay_iters,omitempty"`
	LogReplaySteps      int     `json:"log_replay_supersteps,omitempty"`

	// Serve probe (serve/* entries): a deterministic live-query stream
	// against a running job — fault-free vs a mid-run crash (failover).
	// Latency percentiles are host wall-clock milliseconds; max_staleness
	// is the largest epoch lag any answer declared.
	QueriesIssued   int     `json:"queries_issued,omitempty"`
	QueriesAnswered int     `json:"queries_answered,omitempty"`
	ReplicaReads    int     `json:"replica_reads,omitempty"`
	Unavailable     int     `json:"unavailable,omitempty"`
	P50Ms           float64 `json:"p50_ms,omitempty"`
	P99Ms           float64 `json:"p99_ms,omitempty"`
	MaxMs           float64 `json:"max_ms,omitempty"`
	QPS             float64 `json:"qps,omitempty"`
	MaxStaleness    int     `json:"max_staleness,omitempty"`

	// Membership probe (membership/* entries): detector-only failure
	// detection at scale. sim_seconds is the crash->confirmed detection
	// latency seen by the observer, msg_bytes the detector's total wire
	// bytes — both deterministic invariants like every other entry's.
	DetectionPeriods int   `json:"detection_periods,omitempty"`
	FalseSuspicions  int   `json:"false_suspicions,omitempty"`
	FalseConfirms    int   `json:"false_confirms,omitempty"`
	DetectorMessages int64 `json:"detector_messages,omitempty"`

	// Scale tier (scale/* entries): the synthetic graph's dimensions,
	// parallel-generation wall clock keyed by worker count (the graph is
	// bit-identical across the sweep), and the compact layout's measured
	// footprint next to what the retired AoS []Edge + CSR layout would have
	// used for the same graph.
	ScaleVertices         int                `json:"scale_vertices,omitempty"`
	ScaleEdges            int                `json:"scale_edges,omitempty"`
	GenWallSeconds        map[string]float64 `json:"gen_wall_seconds,omitempty"`
	FootprintBytes        int64              `json:"footprint_bytes,omitempty"`
	FootprintBytesPerEdge float64            `json:"footprint_bytes_per_edge,omitempty"`
	FootprintLegacyBytes  int64              `json:"footprint_legacy_bytes,omitempty"`
	FootprintSavedPct     float64            `json:"footprint_saved_pct,omitempty"`
}

// benchReport is the emitted JSON document.
type benchReport struct {
	Schema       string       `json:"schema"`
	Nodes        int          `json:"nodes"`
	Iters        int          `json:"iters"`
	Workers      int          `json:"workers"`
	Small        bool         `json:"small"`
	Results      []benchEntry `json:"results"`
	Baseline     []benchEntry `json:"baseline,omitempty"`
	BaselineNote string       `json:"baseline_note,omitempty"`
}

// measure runs f and returns its wall seconds and heap-allocation deltas.
func measure(f func() error) (wall float64, allocs, bytes uint64, err error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	err = f()
	wall = time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	return wall, after.Mallocs - before.Mallocs, after.TotalAlloc - before.TotalAlloc, err
}

// runJSON executes the bench suite and writes the report to fl.path. When a
// baseline is given, the regression guards run after the report is written,
// so a failing run still leaves the evidence on disk.
func runJSON(opts experiments.Options, fl jsonFlags) error {
	report := benchReport{
		Schema:  "imitator-bench/v1",
		Nodes:   opts.Nodes,
		Iters:   opts.Iters,
		Workers: opts.Workers,
		Small:   opts.Small,
	}

	// The steady-state probes run FIRST, before the figure suites: figures
	// load and memoize many datasets, and the grown live set makes every GC
	// cycle inside a later sub-second probe measurably slower (observed 2x+
	// on the per-superstep wall). Probe walls are only comparable across
	// reports when taken on a quiet heap.
	for _, mode := range []core.Mode{core.EdgeCutMode, core.VertexCutMode} {
		entry, err := superstepProbe(mode, opts)
		if err != nil {
			return err
		}
		report.Results = append(report.Results, entry)
		fmt.Fprintf(os.Stderr, "bench: %s allocs/superstep=%.1f\n", entry.ID, entry.AllocsPerSuperstep)
	}

	ftEntries, err := ftProbe(opts)
	if err != nil {
		return err
	}
	for _, e := range ftEntries {
		report.Results = append(report.Results, e)
		fmt.Fprintf(os.Stderr, "bench: %s persist/step=%.4fs recovery=%.3fs\n",
			e.ID, e.PersistPerSuperstep, e.RecoverySeconds)
	}

	if !fl.probesOnly {
		figures := []struct {
			id  string
			run func(experiments.Options) (*experiments.Table, error)
		}{
			{"fig7", experiments.Fig7RuntimeOverheadEdgeCut},
			{"fig13", experiments.Fig13RuntimeOverheadVertexCut},
		}
		for _, fig := range figures {
			wall, allocs, bytes, err := measure(func() error {
				_, err := fig.run(opts)
				return err
			})
			if err != nil {
				return fmt.Errorf("%s: %w", fig.id, err)
			}
			report.Results = append(report.Results, benchEntry{
				ID: fig.id, WallSeconds: wall, Allocs: allocs, AllocBytes: bytes,
			})
			fmt.Fprintf(os.Stderr, "bench: %s wall=%.2fs allocs=%d\n", fig.id, wall, allocs)
		}
	}

	if fl.serve {
		serveEntries, err := serveProbe(opts)
		if err != nil {
			return err
		}
		for _, e := range serveEntries {
			report.Results = append(report.Results, e)
			fmt.Fprintf(os.Stderr, "bench: %s p50=%.3fms p99=%.3fms qps=%.0f replica_reads=%d staleness<=%d\n",
				e.ID, e.P50Ms, e.P99Ms, e.QPS, e.ReplicaReads, e.MaxStaleness)
		}
	}

	if fl.membership {
		memEntries, err := membershipProbe(fl.membershipSizes)
		if err != nil {
			return err
		}
		for _, e := range memEntries {
			report.Results = append(report.Results, e)
			reportMembership(e)
		}
	}

	if fl.scale {
		entry, err := scaleProbe(opts, fl.scaleVertices, fl.scaleEdges)
		if err != nil {
			return err
		}
		report.Results = append(report.Results, entry)
		fmt.Fprintf(os.Stderr, "bench: %s wall=%.2fs footprint=%.1fMB (saved %.1f%%)\n",
			entry.ID, entry.WallSeconds, float64(entry.FootprintBytes)/(1<<20), entry.FootprintSavedPct)
	}

	var base *benchReport
	if fl.basePath != "" {
		data, err := os.ReadFile(fl.basePath)
		if err != nil {
			return fmt.Errorf("bench: baseline: %w", err)
		}
		base = &benchReport{}
		if err := json.Unmarshal(data, base); err != nil {
			return fmt.Errorf("bench: baseline: %w", err)
		}
		report.Baseline = base.Results
		report.BaselineNote = fmt.Sprintf("pre-optimization run of the same suite (nodes=%d iters=%d workers=%d small=%v)",
			base.Nodes, base.Iters, base.Workers, base.Small)
	}

	out, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(fl.path, out, 0o644); err != nil {
		return err
	}
	if base != nil {
		return checkBaseline(&report, base, fl)
	}
	return nil
}

// checkBaseline enforces the two regression guards against a baseline run:
// identity (sim_seconds/msg_bytes must match bit-for-bit on every entry both
// reports share — these are simulation outputs, so any drift means the
// semantics changed, not the speed) and wall clock (an entry slower than
// baseline by more than -max-wall-regress fails; sub-100ms baselines are
// skipped as pure noise).
func checkBaseline(report, base *benchReport, fl jsonFlags) error {
	baseByID := make(map[string]benchEntry, len(base.Results))
	for _, e := range base.Results {
		baseByID[e.ID] = e
	}
	var problems []string
	for _, e := range report.Results {
		b, ok := baseByID[e.ID]
		if !ok {
			continue
		}
		if fl.checkIdentity && (b.SimSeconds != 0 || b.MsgBytes != 0) {
			if e.SimSeconds != b.SimSeconds || e.MsgBytes != b.MsgBytes {
				problems = append(problems, fmt.Sprintf(
					"%s: identity drift: sim_seconds %v -> %v, msg_bytes %d -> %d",
					e.ID, b.SimSeconds, e.SimSeconds, b.MsgBytes, e.MsgBytes))
			}
		}
		if fl.maxWallRegress > 0 && b.WallSeconds >= 0.1 &&
			e.WallSeconds > fl.maxWallRegress*b.WallSeconds {
			problems = append(problems, fmt.Sprintf(
				"%s: wall regression: %.2fs -> %.2fs (> %.2fx baseline)",
				e.ID, b.WallSeconds, e.WallSeconds, fl.maxWallRegress))
		}
	}
	if len(problems) == 0 {
		return nil
	}
	for _, p := range problems {
		fmt.Fprintln(os.Stderr, "bench: FAIL:", p)
	}
	return fmt.Errorf("%d baseline check(s) failed (report written anyway)", len(problems))
}

// ftProbe races log-based failure-confined recovery against the checkpoint
// baseline under the standard mid-run crash of node 1: per-superstep
// persistence overhead and total recovery time. Both runs are deterministic,
// so their sim_seconds/msg_bytes are invariants like every other entry's.
func ftProbe(opts experiments.Options) ([]benchEntry, error) {
	iters := opts.Iters
	if iters < 2 {
		iters = 2
	}
	crashAt := iters / 2
	w := experiments.Workload{Algo: "pagerank", Dataset: "gweb", Iters: iters}
	mk := func() core.Config {
		cfg := core.DefaultConfig(core.EdgeCutMode, opts.Nodes)
		cfg.FT = core.FTConfig{}
		if opts.Workers > 0 {
			cfg.WorkersPerNode = opts.Workers
		}
		cfg.MaxRebirths = 8
		cfg.Failures = []core.FailureSpec{
			{Iteration: crashAt, Phase: core.FailBeforeBarrier, Nodes: []int{1}},
		}
		return cfg
	}
	logged := mk()
	logged.Logged = core.LoggedConfig{Enabled: true, CompactEvery: 4}
	logged.Recovery = core.RecoverLogged
	ckpt := mk()
	ckpt.Checkpoint = core.CheckpointConfig{Enabled: true, Interval: 1}
	ckpt.Recovery = core.RecoverCheckpoint

	var entries []benchEntry
	for _, probe := range []struct {
		id  string
		cfg core.Config
	}{
		{"ftcompare/logged", logged},
		{"ftcompare/checkpoint", ckpt},
	} {
		var sum experiments.RunSummary
		wall, allocs, bytes, err := measure(func() error {
			var err error
			sum, err = experiments.RunWorkload(w, probe.cfg)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", probe.id, err)
		}
		if len(sum.Recoveries) == 0 {
			return nil, fmt.Errorf("%s: crash produced no recovery", probe.id)
		}
		rec := sum.Recoveries[len(sum.Recoveries)-1]
		entries = append(entries, benchEntry{
			ID:                  probe.id,
			WallSeconds:         wall,
			Allocs:              allocs,
			AllocBytes:          bytes,
			SimSeconds:          sum.SimSeconds,
			MsgBytes:            sum.Metrics.TotalBytes(),
			PersistPerSuperstep: sum.Strategy.PersistSeconds / float64(iters),
			RecoverySeconds:     rec.TotalSeconds(),
			SurvivorReplayIters: rec.ReplayIters,
			LogReplaySteps:      rec.LogReplaySupersteps,
		})
	}
	return entries, nil
}

// superstepProbe isolates the steady-state superstep loop: it runs the same
// PageRank job short and long, so the per-superstep delta excludes loading,
// partitioning and replication setup. The default config keeps the FT layer
// on (K=1 replication, rebirth recovery) — the configuration whose inner
// loop the paper's overhead claims are about.
func superstepProbe(mode core.Mode, opts experiments.Options) (benchEntry, error) {
	const shortIters, span = 5, 20
	id := "superstep/edgecut/pagerank"
	if mode == core.VertexCutMode {
		id = "superstep/vertexcut/pagerank"
	}
	cfg := core.DefaultConfig(mode, opts.Nodes)
	if opts.Workers > 0 {
		cfg.WorkersPerNode = opts.Workers
	}
	run := func(iters int) (experiments.RunSummary, float64, uint64, error) {
		w := experiments.Workload{Algo: "pagerank", Dataset: "gweb", Iters: iters}
		var sum experiments.RunSummary
		wall, allocs, _, err := measure(func() error {
			var err error
			sum, err = experiments.RunWorkload(w, cfg)
			return err
		})
		return sum, wall, allocs, err
	}
	_, shortWall, shortAllocs, err := run(shortIters)
	if err != nil {
		return benchEntry{}, fmt.Errorf("%s: %w", id, err)
	}
	long, longWall, longAllocs, err := run(shortIters + span)
	if err != nil {
		return benchEntry{}, fmt.Errorf("%s: %w", id, err)
	}
	return benchEntry{
		ID:          id,
		WallSeconds: longWall,
		Allocs:      longAllocs,
		SimSeconds:  long.SimSeconds,
		MsgBytes:    long.Metrics.TotalBytes(),
		Supersteps:  span,
		// Signed delta: when the steady state is alloc-free, GC noise can
		// leave the long run a hair under the short one, and an unsigned
		// subtraction would wrap to 2^64.
		AllocsPerSuperstep: (float64(longAllocs) - float64(shortAllocs)) / span,
		WallPerSuperstep:   (longWall - shortWall) / span,
	}, nil
}
