package main

import "testing"

func TestRunSingleFigure(t *testing.T) {
	if err := run([]string{"-figure", "3", "-small", "-nodes", "4", "-iters", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleTable(t *testing.T) {
	if err := run([]string{"-table", "1", "-small"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunYoung(t *testing.T) {
	if err := run([]string{"-table", "young", "-small", "-nodes", "4", "-iters", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestNoSelection(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("expected usage error")
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-figure", "99"}); err == nil {
		t.Fatal("expected unknown-experiment error")
	}
}
