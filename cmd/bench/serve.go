package main

import (
	"fmt"

	"imitator/internal/core"
	"imitator/internal/datasets"
	"imitator/internal/experiments"
	"imitator/internal/serveload"
)

// serveProbe measures live-query serving against a running PageRank job on
// gweb: the same deterministic load stream twice, once fault-free and once
// with node 1 crashing mid-run (failover). Queries pace through the whole
// run (chaos window included), so the failover entry's percentiles price
// the reads that land while the cluster is detecting, routing around and
// rebuilding the dead node. Latencies are host wall-clock; the job's
// sim_seconds/msg_bytes stay deterministic because serving charges zero
// simulated time.
func serveProbe(opts experiments.Options) ([]benchEntry, error) {
	iters := opts.Iters
	if iters < 2 {
		iters = 2
	}
	g, err := datasets.Load("gweb")
	if err != nil {
		return nil, err
	}
	w := experiments.Workload{Algo: "pagerank", Dataset: "gweb", Iters: iters}

	mk := func() core.Config {
		cfg := core.DefaultConfig(core.EdgeCutMode, opts.Nodes)
		if opts.Workers > 0 {
			cfg.WorkersPerNode = opts.Workers
		}
		// Replicas must stay synced (no selfish opt-out) so failover reads
		// are served from them instead of refused.
		cfg.FT = core.FTConfig{Enabled: true, K: 2, SelfishOpt: false}
		cfg.Recovery = core.RecoverRebirth
		cfg.MaxRebirths = 8
		return cfg
	}
	failover := mk()
	failover.Failures = []core.FailureSpec{
		{Iteration: iters / 2, Phase: core.FailBeforeBarrier, Nodes: []int{1}},
	}

	var entries []benchEntry
	for _, probe := range []struct {
		id  string
		cfg core.Config
	}{
		{"serve/faultfree", mk()},
		{"serve/failover", failover},
	} {
		h, err := experiments.StartWorkloadOn(w, g, probe.cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", probe.id, err)
		}
		load, err := serveload.Run(serveload.Config{
			Queries:     2000,
			Seed:        1,
			NumVertices: g.NumVertices(),
			TopK:        10,
			Done:        h.Done(),
		}, h.Query)
		if err != nil {
			return nil, fmt.Errorf("%s: load: %w", probe.id, err)
		}
		sum, err := h.Wait()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", probe.id, err)
		}
		wall := 0.0
		if load.QPS > 0 {
			wall = float64(load.Answered) / load.QPS
		}
		entries = append(entries, benchEntry{
			ID:              probe.id,
			WallSeconds:     wall,
			SimSeconds:      sum.SimSeconds,
			MsgBytes:        sum.Metrics.TotalBytes(),
			QueriesIssued:   load.Issued,
			QueriesAnswered: load.Answered,
			ReplicaReads:    load.FromReplica,
			Unavailable:     load.Unavailable,
			P50Ms:           load.P50,
			P99Ms:           load.P99,
			MaxMs:           load.Max,
			QPS:             load.QPS,
			MaxStaleness:    load.MaxStaleness,
		})
	}
	return entries, nil
}
