// Command bench regenerates the paper's evaluation tables and figures on
// the simulated cluster and prints them as text tables.
//
// Examples:
//
//	bench -all                # every table and figure (several minutes)
//	bench -figure 7           # Fig 7: runtime overhead, edge-cut
//	bench -table 2            # Table 2: recovery times, edge-cut
//	bench -figure 2a -small   # quick scaled-down run
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"imitator/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

// jsonFlags bundles the -json mode knobs threaded into runJSON.
type jsonFlags struct {
	path, basePath  string
	probesOnly      bool
	serve           bool
	membership      bool
	membershipSizes []int
	scale           bool
	scaleVertices   int
	scaleEdges      int
	maxWallRegress  float64
	checkIdentity   bool
}

// parseSizes parses the -membership-sizes list ("8,128,1024").
func parseSizes(s string) ([]int, error) {
	var sizes []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 4 {
			return nil, fmt.Errorf("membership-sizes: bad cluster size %q", part)
		}
		sizes = append(sizes, n)
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("membership-sizes: empty list")
	}
	return sizes, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	var (
		all      = fs.Bool("all", false, "run every experiment")
		figure   = fs.String("figure", "", "figure id to regenerate (2a, 2b, 2c, 3, 7, 8, 9, 10, 11, 12, 13, 14, 15)")
		table    = fs.String("table", "", "table id to regenerate (1, 2, 3, 5, 6, 7, young, ftcompare)")
		nodes    = fs.Int("nodes", 8, "simulated cluster size")
		iters    = fs.Int("iters", 10, "PageRank iterations")
		workers  = fs.Int("workers", runtime.GOMAXPROCS(0), "intra-node worker-pool width (identical results, less wall clock)")
		small    = fs.Bool("small", false, "shrink datasets and sweeps for a quick pass")
		jsonPath = fs.String("json", "", "write a wall-clock + allocations report (e.g. BENCH_PR2.json) instead of tables")
		basePath = fs.String("baseline", "", "embed a previous -json report for side-by-side comparison")

		probesOnly = fs.Bool("probes-only", false, "-json mode: skip the fig7/fig13 workloads, keep the probes (CI smoke)")
		serve      = fs.Bool("serve", false, "-json mode: add the serve-mode latency probe (fault-free vs mid-run crash failover)")
		membership = fs.Bool("membership", false, "-json mode: add the detector-only membership probe (gossip vs centralized detection latency and false suspicions)")
		memSizes   = fs.String("membership-sizes", "8,128,1024", "-membership: comma-separated simulated cluster sizes")
		scale      = fs.Bool("scale", false, "-json mode: add the paper-scale tier (parallel generation + compact-layout footprint + PageRank probe)")
		scaleVerts = fs.Int("scale-vertices", 640_000, "scale tier |V|")
		scaleEdges = fs.Int("scale-edges", 22_400_000, "scale tier |E| (default 10x the largest catalog graph)")
		maxRegress = fs.Float64("max-wall-regress", 1.8, "with -baseline: exit non-zero when an entry's wall clock exceeds baseline by this factor (0 disables)")
		checkIdent = fs.Bool("check-identity", false, "with -baseline: exit non-zero when sim_seconds/msg_bytes differ from baseline on any shared entry")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := experiments.Options{Nodes: *nodes, Iters: *iters, Workers: *workers, Small: *small}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "bench: memprofile:", err)
			}
		}()
	}

	if *jsonPath != "" {
		sizes, err := parseSizes(*memSizes)
		if err != nil {
			return err
		}
		return runJSON(opts, jsonFlags{
			path:            *jsonPath,
			basePath:        *basePath,
			probesOnly:      *probesOnly,
			serve:           *serve,
			membership:      *membership,
			membershipSizes: sizes,
			scale:           *scale,
			scaleVertices:   *scaleVerts,
			scaleEdges:      *scaleEdges,
			maxWallRegress:  *maxRegress,
			checkIdentity:   *checkIdent,
		})
	}

	var ids []string
	switch {
	case *all:
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	case *figure != "":
		ids = []string{"fig" + *figure}
	case *table != "":
		switch *table {
		case "young", "ftcompare":
			ids = []string{*table}
		default:
			ids = []string{"table" + *table}
		}
	default:
		fs.Usage()
		return fmt.Errorf("pass -all, -figure or -table")
	}

	index := map[string]func(experiments.Options) (*experiments.Table, error){}
	for _, e := range experiments.All() {
		index[e.ID] = e.Run
	}
	for _, id := range ids {
		runFn, ok := index[id]
		if !ok {
			return fmt.Errorf("unknown experiment %q", id)
		}
		start := time.Now()
		t, err := runFn(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		t.Render(os.Stdout)
		fmt.Printf("(regenerated in %.1fs wall clock)\n\n", time.Since(start).Seconds())
	}
	return nil
}
