package main

import (
	"encoding/binary"
	"fmt"
	"os"

	"imitator/internal/costmodel"
	"imitator/internal/gossip"
	"imitator/internal/netsim"
	"imitator/internal/rng"
)

// The -membership probe compares the two failure detectors in isolation —
// no graph, no vertex program — so the curves measure pure membership
// behaviour: how long each protocol takes to confirm a real crash, and how
// often it suspects a node that is alive, as the cluster grows and the
// network misbehaves.
//
// Both detectors run over the same lossy datagram fabric (netsim with the
// omission layer on and heartbeats/pings demoted to best-effort datagrams),
// under the same seeded chaos and the same crash timeline, so the entries
// are directly comparable:
//
//   - gossip: the SWIM detector from internal/gossip — shuffled round-robin
//     probing, ping-req(k) indirect probes, suspicion timeouts, piggybacked
//     dissemination. Detection is "the observer's view confirms the victim".
//   - central: an inline model of the centralized monitor where every node
//     heartbeats the master (node 0) across the lossy fabric, with the cost
//     model's SuspectBeats/DetectMissedBeats thresholds. This is what the
//     paper's Zookeeper-style membership degrades to when its control
//     channel shares the data network's faults.
//
// Each (detector, size, scenario) cell reports sim_seconds = detection
// latency of the scripted crash, msg_bytes = total detector wire bytes, and
// the false-suspicion count over the whole run. All three are deterministic
// simulation outputs — identity invariants like every other entry's.

// membershipScenario is one chaos shape applied to the detector fabric.
type membershipScenario struct {
	name  string
	apply func(net *netsim.Network, n, period int)
}

const (
	memProbeSeed   = 0x6d656d6272 // "membr"
	memDropRate    = 0.2          // loss on every link touching the lossy set
	memLossySet    = 32           // nodes with lossy links (all, when n <= 32)
	memPartAt      = 1            // partition installed before this period
	memPartPeriods = 2            // heal after this many periods (< confirm)
	memCrashPeriod = 6            // victim crashes before this period
	memHorizon     = 40           // periods every cell runs, for comparable rates
	memMaxPeriods  = 400          // give up (probe bug) past this point
)

// memPartitionGroup is the node set cut off in the partition scenario:
// small ids, never the master/observer (0) and never the victim (n-2).
func memPartitionGroup(n int) []int {
	k := n / 4
	if k > 8 {
		k = 8
	}
	if k < 2 {
		k = 2
	}
	group := make([]int, k)
	for i := range group {
		group[i] = i + 1
	}
	return group
}

// membershipScenarios returns the chaos shapes, installed incrementally at
// period boundaries so both detectors see the identical fault timeline.
func membershipScenarios() []membershipScenario {
	return []membershipScenario{
		{name: "drop", apply: func(net *netsim.Network, n, period int) {
			if period != 0 {
				return
			}
			lossy := memLossySet
			if lossy > n {
				lossy = n
			}
			for i := 0; i < lossy; i++ {
				for j := 0; j < n; j++ {
					if i == j {
						continue
					}
					net.SetDropRate(i, j, memDropRate)
					net.SetDropRate(j, i, memDropRate)
				}
			}
		}},
		{name: "part", apply: func(net *netsim.Network, n, period int) {
			switch period {
			case memPartAt:
				net.Partition(memPartitionGroup(n))
			case memPartAt + memPartPeriods:
				net.Heal(memPartitionGroup(n))
			}
		}},
	}
}

// membershipProbe runs the gossip-vs-centralized detection matrix and
// returns one entry per (detector, cluster size, chaos scenario) cell.
func membershipProbe(sizes []int) ([]benchEntry, error) {
	var entries []benchEntry
	for _, n := range sizes {
		for _, sc := range membershipScenarios() {
			for _, det := range []struct {
				name string
				run  func(int, membershipScenario) (memOutcome, error)
			}{
				{"gossip", gossipProbeRun},
				{"central", centralProbeRun},
			} {
				id := fmt.Sprintf("membership/%s/n%d/%s", det.name, n, sc.name)
				var out memOutcome
				wall, allocs, bytes, err := measure(func() error {
					var err error
					out, err = det.run(n, sc)
					return err
				})
				if err != nil {
					return nil, fmt.Errorf("%s: %w", id, err)
				}
				entries = append(entries, benchEntry{
					ID:               id,
					WallSeconds:      wall,
					Allocs:           allocs,
					AllocBytes:       bytes,
					SimSeconds:       out.detectionSeconds,
					MsgBytes:         out.wireBytes,
					DetectionPeriods: out.detectionPeriods,
					FalseSuspicions:  out.falseSuspicions,
					FalseConfirms:    out.falseConfirms,
					DetectorMessages: out.messages,
				})
			}
		}
	}
	return entries, nil
}

// memOutcome is one probe cell's deterministic result. Every cell runs at
// least memHorizon periods (longer only if detection needs it), so the
// false-suspicion/false-confirm counts are rates over the same window.
type memOutcome struct {
	detectionSeconds float64 // crash -> observer-confirmed, sim seconds
	detectionPeriods int     // same, in protocol periods
	falseSuspicions  int     // suspicions of nodes that were up
	falseConfirms    int     // nodes declared failed while actually up
	messages         int64   // detector datagrams sent
	wireBytes        int64   // detector wire bytes sent
}

// gossipProbeRun crashes node n-2 at the scripted period and runs the SWIM
// detector over the probe horizon; detection is "the observer's (node 0)
// view confirms the victim".
func gossipProbeRun(n int, sc membershipScenario) (memOutcome, error) {
	d, err := gossip.New(n, gossip.Params{
		Seed: rng.Hash2(memProbeSeed, uint64(n)),
	})
	if err != nil {
		return memOutcome{}, err
	}
	defer d.Close()
	victim := n - 2
	var out memOutcome
	for period := 0; period < memMaxPeriods; period++ {
		sc.apply(d.Net(), n, period)
		if period == memCrashPeriod {
			d.Fail(victim)
		}
		d.RunPeriod()
		for _, id := range d.TakeConfirms() {
			if d.Up(id) {
				out.falseConfirms++
			}
		}
		if out.detectionPeriods == 0 && period >= memCrashPeriod &&
			d.StatusAt(0, victim) == gossip.UpdConfirm {
			out.detectionPeriods = period - memCrashPeriod + 1
			out.detectionSeconds = float64(out.detectionPeriods) * d.PeriodSeconds()
		}
		if out.detectionPeriods > 0 && period >= memHorizon-1 {
			st := d.Stats()
			if err := d.Err(); err != nil {
				return memOutcome{}, err
			}
			out.falseSuspicions = st.FalseSuspicions
			out.messages, out.wireBytes = st.Messages, st.Bytes
			return out, nil
		}
	}
	return memOutcome{}, fmt.Errorf("gossip: observer never confirmed node %d in %d periods", victim, memMaxPeriods)
}

// centralProbeRun runs the inline centralized model: every node heartbeats
// the master (node 0) once per period as a best-effort datagram over the
// same lossy fabric; the master suspects after SuspectBeats consecutive
// misses and confirms after DetectMissedBeats.
func centralProbeRun(n int, sc membershipScenario) (memOutcome, error) {
	cost := costmodel.Default()
	net, err := netsim.New(n, cost)
	if err != nil {
		return memOutcome{}, err
	}
	defer net.Close()
	net.EnableOmission(rng.Hash2(memProbeSeed, uint64(n)))
	net.SetDatagramKind(netsim.KindControl)

	const beatBytes = 12 // u32 node id + u64 beat sequence
	suspectAt, confirmAt := cost.SuspectBeats(), cost.DetectMissedBeats
	victim := n - 2
	up := make([]bool, n) // ground truth
	for i := range up {
		up[i] = true
	}
	misses := make([]int, n)
	suspected := make([]bool, n)
	confirmed := make([]bool, n)
	beat := make([]byte, beatBytes)
	var out memOutcome
	for period := 0; period < memMaxPeriods; period++ {
		sc.apply(net, n, period)
		if period == memCrashPeriod {
			up[victim] = false
			net.SetFailed(victim, true)
		}
		for i := 1; i < n; i++ {
			if !up[i] {
				continue
			}
			binary.LittleEndian.PutUint32(beat, uint32(i))
			binary.LittleEndian.PutUint64(beat[4:], uint64(period))
			net.Send(i, 0, netsim.KindControl, beat)
			out.messages++
			out.wireBytes += beatBytes
		}
		net.FinishRound()
		got := make([]bool, n)
		for _, m := range net.Receive(0) {
			got[m.From] = true
		}
		for i := 1; i < n; i++ {
			if confirmed[i] {
				continue
			}
			if got[i] {
				misses[i], suspected[i] = 0, false
				continue
			}
			misses[i]++
			if misses[i] == suspectAt && !suspected[i] {
				suspected[i] = true
				if up[i] {
					out.falseSuspicions++
				}
			}
			if misses[i] >= confirmAt {
				confirmed[i] = true
				if up[i] {
					out.falseConfirms++
				}
			}
		}
		if out.detectionPeriods == 0 && period >= memCrashPeriod && confirmed[victim] {
			out.detectionPeriods = period - memCrashPeriod + 1
			out.detectionSeconds = float64(out.detectionPeriods) * cost.HeartbeatInterval
		}
		if out.detectionPeriods > 0 && period >= memHorizon-1 {
			if err := net.Err(); err != nil {
				return memOutcome{}, err
			}
			return out, nil
		}
	}
	return memOutcome{}, fmt.Errorf("central: master never confirmed node %d in %d periods", victim, memMaxPeriods)
}

// reportMembership prints one probe entry's curve point to stderr.
func reportMembership(e benchEntry) {
	fmt.Fprintf(os.Stderr, "bench: %s detect=%.2fs (%d periods) false_suspicions=%d false_confirms=%d wire=%.1fKB\n",
		e.ID, e.SimSeconds, e.DetectionPeriods, e.FalseSuspicions, e.FalseConfirms, float64(e.MsgBytes)/1024)
}
