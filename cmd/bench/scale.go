package main

import (
	"fmt"
	"os"

	"imitator/internal/core"
	"imitator/internal/experiments"
	"imitator/internal/gen"
	"imitator/internal/graph"
	"imitator/internal/hostpar"
)

// The -scale tier exercises the engine an order of magnitude past the
// catalog: a power-law graph defaulting to 22.4M edges (10x the largest
// catalog dataset). It measures three things the small probes cannot:
//
//  1. Parallel generation wall clock across a worker sweep 1..GOMAXPROCS.
//     The sharded generator returns the identical graph at every width
//     (guarded here by an edge-count cross-check, and bit-exactly by the
//     gen package's determinism tests), so the sweep isolates scaling.
//  2. The compact SoA+CSR layout's real memory footprint, next to what the
//     retired AoS []Edge layout would have used for the same graph.
//  3. A steady-state PageRank probe (short/long delta, like the superstep
//     probes) proving the per-superstep alloc discipline holds at scale.

// scaleSweep returns the generation worker counts to measure: powers of two
// up to the host's core count, always ending at hostpar.Limit().
func scaleSweep() []int {
	limit := hostpar.Limit()
	ws := []int{1}
	for w := 2; w < limit; w *= 2 {
		ws = append(ws, w)
	}
	if limit > 1 {
		ws = append(ws, limit)
	}
	return ws
}

func scaleProbe(opts experiments.Options, nVerts, nEdges int) (benchEntry, error) {
	// The dimensions are part of the ID so baseline comparisons only match
	// runs of the same graph: a CI smoke at 1.4M edges must not be
	// identity-checked against the checked-in 22.4M-edge entry.
	id := fmt.Sprintf("scale/pagerank/edgecut/%dv-%de", nVerts, nEdges)
	cfgFor := func(workers int) gen.PowerLawConfig {
		return gen.PowerLawConfig{
			NumVertices:     nVerts,
			NumEdges:        nEdges,
			Alpha:           2.0,
			SelfishFraction: 0.1,
			Seed:            0x5ca1e,
			Workers:         workers,
		}
	}

	genWall := make(map[string]float64)
	var g *graph.Graph
	for _, w := range scaleSweep() {
		var gw *graph.Graph
		wall, _, _, err := measure(func() error {
			var err error
			gw, err = gen.PowerLaw(cfgFor(w))
			return err
		})
		if err != nil {
			return benchEntry{}, fmt.Errorf("%s: gen workers=%d: %w", id, w, err)
		}
		genWall[fmt.Sprint(w)] = wall
		fmt.Fprintf(os.Stderr, "bench: %s gen workers=%d wall=%.2fs\n", id, w, wall)
		if g != nil && gw.NumEdges() != g.NumEdges() {
			return benchEntry{}, fmt.Errorf("%s: worker sweep changed the graph: %d vs %d edges",
				id, gw.NumEdges(), g.NumEdges())
		}
		g = gw
	}
	if g.NumEdges() != nEdges {
		return benchEntry{}, fmt.Errorf("%s: generated %d edges, want exactly %d", id, g.NumEdges(), nEdges)
	}
	fp := g.MemoryFootprint()

	// Steady-state PageRank: short/long runs of the same job, so the
	// per-superstep delta excludes generation, partitioning and load.
	cfg := core.DefaultConfig(core.EdgeCutMode, opts.Nodes)
	if opts.Workers > 0 {
		cfg.WorkersPerNode = opts.Workers
	}
	run := func(iters int) (experiments.RunSummary, float64, uint64, error) {
		w := experiments.Workload{Algo: "pagerank", Dataset: "scale", Iters: iters}
		var sum experiments.RunSummary
		wall, allocs, _, err := measure(func() error {
			var err error
			sum, err = experiments.RunWorkloadOn(w, g, cfg)
			return err
		})
		return sum, wall, allocs, err
	}
	const shortIters, span = 2, 4
	// Unmeasured warmup: the first load at this scale grows the heap by
	// hundreds of MB, and without it the short run pays all the growth —
	// enough to make the short run SLOWER than the long one and the
	// per-superstep delta negative.
	if _, _, _, err := run(1); err != nil {
		return benchEntry{}, fmt.Errorf("%s: warmup: %w", id, err)
	}
	_, shortWall, shortAllocs, err := run(shortIters)
	if err != nil {
		return benchEntry{}, fmt.Errorf("%s: %w", id, err)
	}
	long, longWall, longAllocs, err := run(shortIters + span)
	if err != nil {
		return benchEntry{}, fmt.Errorf("%s: %w", id, err)
	}

	saved := 0.0
	if fp.LegacyBytes > 0 {
		saved = 100 * (1 - float64(fp.TotalBytes)/float64(fp.LegacyBytes))
	}
	return benchEntry{
		ID:          id,
		WallSeconds: longWall,
		Allocs:      longAllocs,
		SimSeconds:  long.SimSeconds,
		MsgBytes:    long.Metrics.TotalBytes(),
		Supersteps:  span,
		// Signed for the same reason as superstepProbe: an alloc-free steady
		// state plus GC noise must not wrap to 2^64.
		AllocsPerSuperstep: (float64(longAllocs) - float64(shortAllocs)) / span,
		WallPerSuperstep:   (longWall - shortWall) / span,

		ScaleVertices:         nVerts,
		ScaleEdges:            nEdges,
		GenWallSeconds:        genWall,
		FootprintBytes:        fp.TotalBytes,
		FootprintBytesPerEdge: fp.BytesPerEdge,
		FootprintLegacyBytes:  fp.LegacyBytes,
		FootprintSavedPct:     saved,
	}, nil
}
