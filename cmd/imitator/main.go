// Command imitator runs one graph-processing job on the simulated cluster
// with the configured fault-tolerance scheme, optionally injecting machine
// failures, and prints a run report.
//
// Examples:
//
//	imitator -dataset ljournal -algo pagerank -nodes 8 -iters 10
//	imitator -dataset wiki -algo pagerank -ft migration -fail-iter 5 -fail-nodes 2,3
//	imitator -dataset roadca -algo sssp -mode vertexcut -partitioner hybrid
//	imitator -dataset ljournal -algo pagerank -ft checkpoint -ckpt-interval 2 -fail-iter 5 -fail-nodes 1
//	imitator -dataset wiki -algo pagerank -ft logged -compact-every 4 -fail-iter 5
//	imitator -dataset wiki -algo pagerank -ft migration -chaos 'crash@3b=1|crashrec@migration:repair=4|slow@2=0>3x8'
//	imitator -dataset wiki -algo pagerank -chaos 'drop@1=0>2x0.3|part@2~5=1' -chaos-seed 42
//	imitator -dataset gweb -algo pagerank -serve -queries 2000 -chaos 'crash@3b=1'
//	imitator -dataset gweb -algo pagerank -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"imitator/internal/serveload"
	"imitator/pkg/imitator"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "imitator:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("imitator", flag.ContinueOnError)
	var (
		dataset     = fs.String("dataset", "ljournal", "dataset name (see -list)")
		algo        = fs.String("algo", "pagerank", "algorithm: pagerank, sssp, cd, als")
		mode        = fs.String("mode", "edgecut", "engine mode: edgecut or vertexcut")
		partitioner = fs.String("partitioner", "", "hash|fennel (edge-cut), random|grid|hybrid (vertex-cut); empty = mode default")
		nodes       = fs.Int("nodes", 8, "number of simulated nodes")
		iters       = fs.Int("iters", 10, "supersteps to run")
		workers     = fs.Int("workers", 1, "intra-node worker-pool width (results are identical for any value)")
		ftMode      = fs.String("ft", "replication", "fault-tolerance strategy: replication (rebirth), migration, checkpoint, logged, none")
		k           = fs.Int("k", 1, "replication/migration: number of simultaneous failures to tolerate")
		selfish     = fs.Bool("selfish-opt", true, "replication/migration: enable the selfish-vertex optimization")
		ckptIvl     = fs.Int("ckpt-interval", 1, "checkpoint: snapshot interval in iterations")
		compactIvl  = fs.Int("compact-every", 0, "logged: write a full log record every n supersteps to bound replay (0 = never)")
		failIter    = fs.Int("fail-iter", -1, "iteration at which to crash nodes (-1 = no failure)")
		failNodes   = fs.String("fail-nodes", "1", "comma-separated node ids to crash")
		chaosSched  = fs.String("chaos", "", "failure schedule: crash@<iter><b|a>=<nodes>, crashrec[@label]=<nodes>, slow@<iter>=<from>><to>x<factor>, delay@<iter>=<seconds>, drop@<iter>=<from>><to>x<prob>, dup@<iter>=<from>><to>x<prob>, reorder@<iter>=<from>><to>x<prob>, part@<iter>~<heal>=<nodes>, joined by '|'")
		chaosSeed   = fs.Uint64("chaos-seed", 0, "seed for the deterministic per-link omission-fault generators (drop/dup/reorder)")
		membership  = fs.String("membership", "centralized", "failure detector for chaos crashes: centralized (heartbeat monitor) or gossip (SWIM probing over lossy datagrams)")
		gspFanout   = fs.Int("gossip-fanout", 3, "gossip: indirect ping-req helpers per unanswered probe")
		gspSusp     = fs.Int("gossip-suspicion", 3, "gossip: protocol periods a suspect may refute before confirmation")
		input       = fs.String("input", "", "edge-list file to load instead of -dataset (src dst [weight] per line)")
		tcp         = fs.Bool("tcp", false, "run the protocol over a loopback TCP mesh instead of in-memory delivery")
		serve       = fs.Bool("serve", false, "serve mode: run with the live-query layer attached and drive a seeded query load while the job executes")
		queries     = fs.Int("queries", 1024, "serve: number of load-generator queries to issue")
		querySeed   = fs.Uint64("query-seed", 1, "serve: seed of the deterministic query stream")
		topk        = fs.Int("topk", 10, "serve: K for top-K queries in the load mix")
		staleness   = fs.Int("staleness", 0, "serve: bound answers to at most this many epochs behind the frontier (0 = unbounded)")
		jsonOut     = fs.Bool("json", false, "emit the report as JSON instead of text")
		timeline    = fs.Bool("timeline", false, "render the execution timeline")
		list        = fs.Bool("list", false, "list datasets and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, name := range imitator.DatasetNames() {
			d := imitator.Datasets()[name]
			fmt.Printf("%-10s paper %s vertices, %s edges\n", name, d.PaperVertices, d.PaperEdges)
		}
		return nil
	}

	opts := []imitator.Option{
		imitator.WithNodes(*nodes),
		imitator.WithIterations(*iters),
		imitator.WithWorkers(*workers),
		imitator.WithMaxRebirths(*nodes),
	}
	switch *mode {
	case "edgecut":
		opts = append(opts, imitator.WithMode(imitator.EdgeCutMode))
	case "vertexcut":
		opts = append(opts, imitator.WithMode(imitator.VertexCutMode))
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	if *partitioner != "" {
		p, err := parsePartitioner(*partitioner)
		if err != nil {
			return err
		}
		opts = append(opts, imitator.WithPartitioner(p))
	}
	strat, err := buildStrategy(*ftMode, *k, *selfish, *ckptIvl, *compactIvl)
	if err != nil {
		return err
	}
	opts = append(opts, imitator.WithFTStrategy(strat))
	if *tcp {
		opts = append(opts, imitator.WithTransport(imitator.TransportTCP))
	}
	if *serve {
		opts = append(opts, imitator.WithServe(imitator.ServeStalenessBound(*staleness)))
	}
	if *failIter >= 0 {
		var crash []int
		for _, tok := range strings.Split(*failNodes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil {
				return fmt.Errorf("bad -fail-nodes: %w", err)
			}
			crash = append(crash, n)
		}
		opts = append(opts, imitator.WithFailures(imitator.Crash(*failIter, imitator.FailBeforeBarrier, crash...)))
	}
	if *chaosSched != "" {
		sched, err := imitator.ParseFailureSchedule(*chaosSched)
		if err != nil {
			return err
		}
		opts = append(opts, imitator.WithFailures(sched...))
	}
	if *chaosSeed != 0 {
		opts = append(opts, imitator.WithChaosSeed(*chaosSeed))
	}
	switch *membership {
	case "centralized":
	case "gossip":
		opts = append(opts, imitator.WithMembership(imitator.Gossip,
			imitator.GossipFanout(*gspFanout),
			imitator.GossipSuspicionPeriods(*gspSusp)))
	default:
		return fmt.Errorf("unknown membership %q (use centralized or gossip)", *membership)
	}
	cfg := imitator.New(opts...)

	w := imitator.Workload{Algo: *algo, Dataset: *dataset, Iters: *iters}
	var g *imitator.Graph
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			return err
		}
		g, err = imitator.ReadEdgeList(f, 0)
		f.Close()
		if err != nil {
			return err
		}
		w.Dataset = *input
	} else {
		g, err = imitator.LoadDataset(*dataset)
		if err != nil {
			return err
		}
	}

	var s imitator.RunSummary
	var load *serveload.Stats
	if *serve {
		srv, err := imitator.ServeOn(w, g, cfg)
		if err != nil {
			return err
		}
		st, err := serveload.Run(serveload.Config{
			Queries:        *queries,
			Seed:           *querySeed,
			NumVertices:    g.NumVertices(),
			TopK:           *topk,
			StalenessBound: *staleness,
			Done:           srv.Done(),
		}, srv.Query)
		if err != nil {
			return err
		}
		load = &st
		if s, err = srv.Wait(); err != nil {
			return err
		}
	} else if s, err = imitator.RunWorkloadOn(w, g, cfg); err != nil {
		return err
	}

	if *jsonOut {
		return writeJSON(os.Stdout, w, cfg, s, load)
	}
	report(w, cfg, s, load)
	if *timeline {
		fmt.Println("timeline:")
		imitator.RenderTimeline(os.Stdout, s.Trace, imitator.TimelineOptions{})
		fmt.Println(imitator.TimelineSummary(s.Trace))
	}
	return nil
}

// buildStrategy maps the -ft name plus the per-strategy refinement flags
// onto one typed FTStrategy.
func buildStrategy(name string, k int, selfish bool, ckptIvl, compactIvl int) (imitator.FTStrategy, error) {
	switch name {
	case "replication", "rebirth":
		return imitator.Replication(
			imitator.ReplicationK(k), imitator.ReplicationSelfish(selfish)), nil
	case "migration":
		return imitator.Migration(
			imitator.ReplicationK(k), imitator.ReplicationSelfish(selfish)), nil
	case "checkpoint":
		// The checkpoint baseline runs without replication FT, like the
		// paper's Hama-style comparison point.
		return imitator.Checkpoint(ckptIvl), nil
	case "logged":
		return imitator.LoggedRecovery(imitator.LoggedCompactEvery(compactIvl)), nil
	case "none":
		return imitator.NoRecovery(), nil
	default:
		return nil, fmt.Errorf("unknown FT strategy %q", name)
	}
}

func parsePartitioner(s string) (imitator.Partitioner, error) {
	switch s {
	case "hash":
		return imitator.PartHash, nil
	case "fennel":
		return imitator.PartFennel, nil
	case "ldg":
		return imitator.PartLDG, nil
	case "oblivious":
		return imitator.PartOblivious, nil
	case "random":
		return imitator.PartRandom, nil
	case "grid":
		return imitator.PartGrid, nil
	case "hybrid":
		return imitator.PartHybrid, nil
	default:
		return 0, fmt.Errorf("unknown partitioner %q", s)
	}
}

// jsonReport is the machine-readable run report: the same facts as the
// text report, with the uniform Strategy/Buffers/Omission/Serve sections
// always present under stable keys.
type jsonReport struct {
	Algo        string              `json:"algo"`
	Dataset     string              `json:"dataset"`
	Mode        string              `json:"mode"`
	Partitioner string              `json:"partitioner"`
	Nodes       int                 `json:"nodes"`
	Workers     int                 `json:"workers"`
	Iters       int                 `json:"iters"`
	Summary     imitator.RunSummary `json:"summary"`
	Load        *serveload.Stats    `json:"load,omitempty"`
}

func writeJSON(w *os.File, wl imitator.Workload, cfg imitator.Config, s imitator.RunSummary, load *serveload.Stats) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonReport{
		Algo:        wl.Algo,
		Dataset:     wl.Dataset,
		Mode:        fmt.Sprint(cfg.Mode),
		Partitioner: fmt.Sprint(cfg.Partitioner),
		Nodes:       cfg.NumNodes,
		Workers:     cfg.WorkersPerNode,
		Iters:       wl.Iters,
		Summary:     s,
		Load:        load,
	})
}

func report(w imitator.Workload, cfg imitator.Config, s imitator.RunSummary, load *serveload.Stats) {
	fmt.Printf("job: %s on %s (%s, %v, %d nodes x %d workers)\n",
		w.Algo, w.Dataset, cfg.Mode, cfg.Partitioner, cfg.NumNodes, cfg.WorkersPerNode)
	fmt.Printf("graph: %d vertices, %d edges; replication factor %.2f (%d FT replicas added)\n",
		s.NumVertices, s.NumEdges, s.ReplicationFactor, s.ExtraReplicas)
	fmt.Printf("run: %d-iteration job in %.3f simulated seconds (%.4f s/iter avg)\n",
		w.Iters, s.SimSeconds, s.AvgIterSeconds)
	fmt.Printf("traffic: %d messages, %.2f MB total; memory max-node %.1f MB, total %.1f MB\n",
		s.Metrics.TotalMsgs(), float64(s.Metrics.TotalBytes())/1e6,
		float64(s.MaxMemory)/1e6, float64(s.TotalMemory)/1e6)
	if b := s.Buffers; b.Gets > 0 {
		fmt.Printf("buffers: %d gets, %d misses (reuse %.3f)\n", b.Gets, b.Misses, b.ReuseFraction())
	}
	if s.CheckpointCount > 0 {
		fmt.Printf("checkpoints: %d written, %.3f s total\n", s.CheckpointCount, s.CheckpointSeconds)
	}
	if st := s.Strategy; st.PersistCount > 0 || st.Recoveries > 0 {
		fmt.Printf("ft: %s strategy, %d persists (%.2f MB, %.3f s, %d log records), %d recoveries (%.3f s)\n",
			st.Kind, st.PersistCount, float64(st.PersistedBytes)/1e6, st.PersistSeconds,
			st.LogRecords, st.Recoveries, st.RecoverySeconds)
	}
	if o := s.Omission; o != nil {
		fmt.Printf("omission: %d retransmits (%.2f KB, %.2f KB acks), %d dups dropped, %d reordered, %d parked, %d fenced\n",
			o.Retransmits, float64(o.RetransmitBytes)/1e3, float64(o.AckBytes)/1e3,
			o.DuplicatesDropped, o.Reordered, o.Parked, o.Fenced)
	}
	if m := s.Membership; m != nil {
		avg := 0.0
		for _, lat := range m.DetectionSeconds {
			avg += lat
		}
		if len(m.DetectionSeconds) > 0 {
			avg /= float64(len(m.DetectionSeconds))
		}
		fmt.Printf("membership: %s detector, %d failures detected (%.3f s avg latency), %d false suspicions, %.2f KB gossip in %d periods\n",
			m.Mode, len(m.DetectionSeconds), avg, m.FalseSuspicions,
			float64(m.GossipBytes)/1e3, m.GossipPeriods)
	}
	if sv := s.Serve; sv != nil {
		fmt.Printf("serve: %d queries (%d from replicas, %d stale-rejected, %d unavailable), max staleness %d\n",
			sv.Queries, sv.FromReplica, sv.StaleRejected, sv.Unavailable, sv.MaxStaleness)
	}
	if load != nil {
		fmt.Printf("load: %d issued, %d answered at %.0f qps; latency p50 %.3f ms, p95 %.3f ms, p99 %.3f ms, max %.3f ms\n",
			load.Issued, load.Answered, load.QPS, load.P50, load.P95, load.P99, load.Max)
	}
	for _, r := range s.Recoveries {
		fmt.Printf("recovery: %s\n", r)
	}
}
