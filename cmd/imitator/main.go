// Command imitator runs one graph-processing job on the simulated cluster
// with the configured fault-tolerance scheme, optionally injecting machine
// failures, and prints a run report.
//
// Examples:
//
//	imitator -dataset ljournal -algo pagerank -nodes 8 -iters 10
//	imitator -dataset wiki -algo pagerank -recovery migration -fail-iter 5 -fail-nodes 2,3
//	imitator -dataset roadca -algo sssp -mode vertexcut -partitioner hybrid
//	imitator -dataset ljournal -algo pagerank -recovery checkpoint -ckpt-interval 2 -fail-iter 5 -fail-nodes 1
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"imitator/internal/core"
	"imitator/internal/datasets"
	"imitator/internal/experiments"
	"imitator/internal/graph"
	"imitator/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "imitator:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("imitator", flag.ContinueOnError)
	var (
		dataset     = fs.String("dataset", "ljournal", "dataset name (see -list)")
		algo        = fs.String("algo", "pagerank", "algorithm: pagerank, sssp, cd, als")
		mode        = fs.String("mode", "edgecut", "engine mode: edgecut or vertexcut")
		partitioner = fs.String("partitioner", "", "hash|fennel (edge-cut), random|grid|hybrid (vertex-cut); empty = mode default")
		nodes       = fs.Int("nodes", 8, "number of simulated nodes")
		iters       = fs.Int("iters", 10, "supersteps to run")
		ft          = fs.Bool("ft", true, "enable replication-based fault tolerance")
		k           = fs.Int("k", 1, "number of simultaneous failures to tolerate")
		selfish     = fs.Bool("selfish-opt", true, "enable the selfish-vertex optimization")
		recovery    = fs.String("recovery", "rebirth", "recovery: none, checkpoint, rebirth, migration")
		ckptIvl     = fs.Int("ckpt-interval", 1, "checkpoint interval in iterations")
		failIter    = fs.Int("fail-iter", -1, "iteration at which to crash nodes (-1 = no failure)")
		failNodes   = fs.String("fail-nodes", "1", "comma-separated node ids to crash")
		input       = fs.String("input", "", "edge-list file to load instead of -dataset (src dst [weight] per line)")
		tcp         = fs.Bool("tcp", false, "run the protocol over a loopback TCP mesh instead of in-memory delivery")
		timeline    = fs.Bool("timeline", false, "render the execution timeline")
		list        = fs.Bool("list", false, "list datasets and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, name := range datasets.Names() {
			d := datasets.Catalog()[name]
			fmt.Printf("%-10s paper %s vertices, %s edges\n", name, d.PaperVertices, d.PaperEdges)
		}
		return nil
	}

	var m core.Mode
	switch *mode {
	case "edgecut":
		m = core.EdgeCutMode
	case "vertexcut":
		m = core.VertexCutMode
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	cfg := core.DefaultConfig(m, *nodes)
	cfg.MaxIter = *iters
	cfg.MaxRebirths = *nodes
	if *tcp {
		cfg.Transport = core.TransportTCP
	}
	if *partitioner != "" {
		p, err := parsePartitioner(*partitioner)
		if err != nil {
			return err
		}
		cfg.Partitioner = p
	}
	cfg.FT = core.FTConfig{Enabled: *ft, K: *k, SelfishOpt: *selfish}
	switch *recovery {
	case "none":
		cfg.Recovery = core.RecoverNone
	case "checkpoint":
		cfg.Recovery = core.RecoverCheckpoint
		cfg.Checkpoint = core.CheckpointConfig{Enabled: true, Interval: *ckptIvl}
		cfg.FT = core.FTConfig{}
	case "rebirth":
		cfg.Recovery = core.RecoverRebirth
	case "migration":
		cfg.Recovery = core.RecoverMigration
	default:
		return fmt.Errorf("unknown recovery %q", *recovery)
	}
	if *failIter >= 0 {
		var crash []int
		for _, tok := range strings.Split(*failNodes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil {
				return fmt.Errorf("bad -fail-nodes: %w", err)
			}
			crash = append(crash, n)
		}
		cfg.Failures = []core.FailureSpec{{
			Iteration: *failIter, Phase: core.FailBeforeBarrier, Nodes: crash,
		}}
	}

	w := experiments.Workload{Algo: *algo, Dataset: *dataset, Iters: *iters}
	var s experiments.RunSummary
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			return err
		}
		defer f.Close()
		g, err := graph.ReadEdgeList(f, 0)
		if err != nil {
			return err
		}
		w.Dataset = *input
		s, err = experiments.RunWorkloadOn(w, g, cfg)
		if err != nil {
			return err
		}
	} else {
		var err error
		s, err = experiments.RunWorkload(w, cfg)
		if err != nil {
			return err
		}
	}
	report(w, cfg, s)
	if *timeline {
		fmt.Println("timeline:")
		trace.Render(os.Stdout, s.Trace, trace.Options{})
		fmt.Println(trace.Summary(s.Trace))
	}
	return nil
}

func parsePartitioner(s string) (core.PartitionerKind, error) {
	switch s {
	case "hash":
		return core.PartHash, nil
	case "fennel":
		return core.PartFennel, nil
	case "ldg":
		return core.PartLDG, nil
	case "oblivious":
		return core.PartOblivious, nil
	case "random":
		return core.PartRandom, nil
	case "grid":
		return core.PartGrid, nil
	case "hybrid":
		return core.PartHybrid, nil
	default:
		return 0, fmt.Errorf("unknown partitioner %q", s)
	}
}

func report(w experiments.Workload, cfg core.Config, s experiments.RunSummary) {
	fmt.Printf("job: %s on %s (%s, %v, %d nodes)\n",
		w.Algo, w.Dataset, cfg.Mode, cfg.Partitioner, cfg.NumNodes)
	fmt.Printf("graph: %d vertices, %d edges; replication factor %.2f (%d FT replicas added)\n",
		s.NumVertices, s.NumEdges, s.ReplicationFactor, s.ExtraReplicas)
	fmt.Printf("run: %d-iteration job in %.3f simulated seconds (%.4f s/iter avg)\n",
		w.Iters, s.SimSeconds, s.AvgIterSeconds)
	fmt.Printf("traffic: %d messages, %.2f MB total; memory max-node %.1f MB, total %.1f MB\n",
		s.Metrics.TotalMsgs(), float64(s.Metrics.TotalBytes())/1e6,
		float64(s.MaxMemory)/1e6, float64(s.TotalMemory)/1e6)
	if s.CheckpointCount > 0 {
		fmt.Printf("checkpoints: %d written, %.3f s total\n", s.CheckpointCount, s.CheckpointSeconds)
	}
	for _, r := range s.Recoveries {
		fmt.Printf("recovery: %s\n", r)
	}
}
