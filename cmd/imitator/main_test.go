package main

import (
	"os"
	"testing"
)

func TestListFlag(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestSmallJob(t *testing.T) {
	err := run([]string{
		"-dataset", "dblp", "-algo", "cd", "-nodes", "4", "-iters", "3",
		"-ft", "migration", "-fail-iter", "1",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVertexCutJob(t *testing.T) {
	err := run([]string{
		"-dataset", "gweb", "-algo", "pagerank", "-mode", "vertexcut",
		"-partitioner", "grid", "-nodes", "4", "-iters", "2", "-ft", "none",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointJob(t *testing.T) {
	err := run([]string{
		"-dataset", "dblp", "-algo", "pagerank", "-nodes", "4", "-iters", "4",
		"-ft", "checkpoint", "-ckpt-interval", "2", "-fail-iter", "3",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLoggedJob(t *testing.T) {
	err := run([]string{
		"-dataset", "dblp", "-algo", "pagerank", "-nodes", "4", "-iters", "5",
		"-ft", "logged", "-compact-every", "2", "-fail-iter", "3",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestChaosFlag(t *testing.T) {
	err := run([]string{
		"-dataset", "dblp", "-algo", "pagerank", "-nodes", "6", "-iters", "6",
		"-k", "2", "-ft", "migration",
		"-chaos", "crash@2b=1|crashrec@migration:repair=4|slow@1=0>3x4|delay@3=0.1",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBadFlags(t *testing.T) {
	cases := [][]string{
		{"-mode", "diagonal"},
		{"-ft", "prayer"},
		{"-partitioner", "vibes"},
		{"-dataset", "nope", "-iters", "1"},
		{"-fail-iter", "1", "-fail-nodes", "x"},
		{"-algo", "sort", "-iters", "1"},
		{"-chaos", "crash@2=1"},
		{"-chaos", "boom@2b=1", "-iters", "1"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestServeFlag(t *testing.T) {
	err := run([]string{
		"-dataset", "dblp", "-algo", "pagerank", "-nodes", "6", "-iters", "5",
		"-serve", "-queries", "200", "-query-seed", "7", "-topk", "5",
		"-chaos", "crash@2b=1",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestJSONFlag(t *testing.T) {
	err := run([]string{
		"-dataset", "dblp", "-algo", "pagerank", "-nodes", "4", "-iters", "2",
		"-json", "-serve", "-queries", "50",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestParsePartitioner(t *testing.T) {
	for _, s := range []string{"hash", "fennel", "ldg", "random", "grid", "hybrid", "oblivious"} {
		if _, err := parsePartitioner(s); err != nil {
			t.Errorf("%s rejected: %v", s, err)
		}
	}
}

func TestInputFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/g.txt"
	if err := os.WriteFile(path, []byte("0 1\n1 2\n2 0\n2 3\n3 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-input", path, "-algo", "pagerank", "-nodes", "2", "-iters", "2", "-ft", "none"})
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-input", dir + "/missing.txt", "-iters", "1"}); err == nil {
		t.Error("missing input accepted")
	}
}

func TestTCPFlag(t *testing.T) {
	err := run([]string{
		"-dataset", "dblp", "-algo", "pagerank", "-nodes", "3", "-iters", "2",
		"-tcp", "-ft", "rebirth", "-fail-iter", "1",
	})
	if err != nil {
		t.Fatal(err)
	}
}
