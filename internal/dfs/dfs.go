// Package dfs simulates the HDFS-like distributed file system the paper
// uses for checkpoints and edge-ckpt files. Contents are stored
// byte-for-byte in memory; every read and write returns its simulated cost
// (disk bandwidth, pipelined 3-way replication) from the cost model, and
// per-node traffic counters feed the checkpoint-overhead figures.
package dfs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"imitator/internal/costmodel"
)

// ErrNotFound reports a missing path.
var ErrNotFound = errors.New("dfs: file not found")

// DFS is a simulated distributed file system shared by all nodes.
type DFS struct {
	params costmodel.Params

	mu    sync.Mutex
	files map[string][]byte
	// Per-node cumulative traffic (indexed by node id).
	readBytes  []int64
	writeBytes []int64
}

// New creates a DFS for a cluster of numNodes nodes.
func New(numNodes int, params costmodel.Params) (*DFS, error) {
	if numNodes < 1 {
		return nil, fmt.Errorf("dfs: need at least one node, got %d", numNodes)
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &DFS{
		params:     params,
		files:      make(map[string][]byte),
		readBytes:  make([]int64, numNodes),
		writeBytes: make([]int64, numNodes),
	}, nil
}

// Write stores data at path (replacing any previous content) on behalf of
// node, returning the simulated seconds the write took. The data is copied.
func (d *DFS) Write(node int, path string, data []byte) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.files[path] = append([]byte(nil), data...)
	d.writeBytes[node] += int64(len(data))
	return d.params.DFSWrite(int64(len(data)))
}

// Append extends the file at path, creating it if needed; returns the
// simulated cost of writing the appended bytes.
func (d *DFS) Append(node int, path string, data []byte) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.files[path] = append(d.files[path], data...)
	d.writeBytes[node] += int64(len(data))
	return d.params.DFSWrite(int64(len(data)))
}

// Read returns the content at path and the simulated seconds the read took.
// The returned slice is a copy.
func (d *DFS) Read(node int, path string) ([]byte, float64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	data, ok := d.files[path]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	d.readBytes[node] += int64(len(data))
	return append([]byte(nil), data...), d.params.DFSRead(int64(len(data))), nil
}

// Exists reports whether path exists.
func (d *DFS) Exists(path string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.files[path]
	return ok
}

// Size returns the size of the file at path, or an error when missing.
func (d *DFS) Size(path string) (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	data, ok := d.files[path]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return int64(len(data)), nil
}

// Delete removes path; deleting a missing path is a no-op.
func (d *DFS) Delete(path string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.files, path)
}

// List returns all paths with the given prefix, sorted.
func (d *DFS) List(prefix string) []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []string
	for p := range d.files { //imitator:nondet-ok collected set is sorted before use
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// NodeTraffic returns cumulative (read, written) bytes for a node.
func (d *DFS) NodeTraffic(node int) (read, written int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.readBytes[node], d.writeBytes[node]
}

// TotalStored returns the total bytes currently stored (before the DFS's
// own replication factor, which multiplies real capacity use).
func (d *DFS) TotalStored() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var t int64
	for _, f := range d.files {
		t += int64(len(f))
	}
	return t
}
