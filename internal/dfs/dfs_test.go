package dfs

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"imitator/internal/costmodel"
)

func newDFS(t *testing.T) *DFS {
	t.Helper()
	d, err := New(4, costmodel.Default())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestWriteRead(t *testing.T) {
	d := newDFS(t)
	cost := d.Write(0, "ckpt/0/node0", []byte("hello"))
	if cost <= 0 {
		t.Error("write cost should be positive")
	}
	data, rcost, err := d.Read(1, "ckpt/0/node0")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello" {
		t.Errorf("read %q", data)
	}
	if rcost <= 0 {
		t.Error("read cost should be positive")
	}
}

func TestReadMissing(t *testing.T) {
	d := newDFS(t)
	if _, _, err := d.Read(0, "nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestWriteReplaces(t *testing.T) {
	d := newDFS(t)
	d.Write(0, "f", []byte("one"))
	d.Write(0, "f", []byte("two"))
	data, _, _ := d.Read(0, "f")
	if string(data) != "two" {
		t.Errorf("got %q", data)
	}
}

func TestAppend(t *testing.T) {
	d := newDFS(t)
	d.Append(0, "log", []byte("a"))
	d.Append(0, "log", []byte("b"))
	data, _, _ := d.Read(0, "log")
	if string(data) != "ab" {
		t.Errorf("got %q", data)
	}
}

func TestReadReturnsCopy(t *testing.T) {
	d := newDFS(t)
	d.Write(0, "f", []byte("abc"))
	data, _, _ := d.Read(0, "f")
	data[0] = 'z'
	again, _, _ := d.Read(0, "f")
	if string(again) != "abc" {
		t.Error("Read leaked internal storage")
	}
}

func TestWriteCopiesInput(t *testing.T) {
	d := newDFS(t)
	buf := []byte("abc")
	d.Write(0, "f", buf)
	buf[0] = 'z'
	data, _, _ := d.Read(0, "f")
	if string(data) != "abc" {
		t.Error("Write retained caller's slice")
	}
}

func TestExistsSizeDelete(t *testing.T) {
	d := newDFS(t)
	d.Write(0, "f", []byte("abcd"))
	if !d.Exists("f") {
		t.Error("Exists false")
	}
	if sz, err := d.Size("f"); err != nil || sz != 4 {
		t.Errorf("Size = %d, %v", sz, err)
	}
	d.Delete("f")
	if d.Exists("f") {
		t.Error("Delete failed")
	}
	if _, err := d.Size("f"); !errors.Is(err, ErrNotFound) {
		t.Error("Size after delete should be ErrNotFound")
	}
	d.Delete("f") // no-op
}

func TestList(t *testing.T) {
	d := newDFS(t)
	d.Write(0, "edges/2/file0", nil)
	d.Write(0, "edges/2/file1", nil)
	d.Write(0, "edges/1/file0", nil)
	got := d.List("edges/2/")
	if len(got) != 2 || got[0] != "edges/2/file0" || got[1] != "edges/2/file1" {
		t.Errorf("List = %v", got)
	}
}

func TestTrafficCounters(t *testing.T) {
	d := newDFS(t)
	d.Write(2, "f", make([]byte, 100))
	d.Read(3, "f")
	d.Read(3, "f")
	if _, w := d.NodeTraffic(2); w != 100 {
		t.Errorf("node2 written = %d", w)
	}
	if r, _ := d.NodeTraffic(3); r != 200 {
		t.Errorf("node3 read = %d", r)
	}
	if d.TotalStored() != 100 {
		t.Errorf("TotalStored = %d", d.TotalStored())
	}
}

func TestConcurrentAccess(t *testing.T) {
	d := newDFS(t)
	var wg sync.WaitGroup
	for n := 0; n < 4; n++ {
		n := n
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				path := "p" + string(rune('a'+n))
				d.Write(n, path, []byte{byte(i)})
				d.Read(n, path)
				d.List("p")
			}
		}()
	}
	wg.Wait()
}

// Property: read-your-writes for arbitrary content.
func TestReadYourWrites(t *testing.T) {
	d := newDFS(t)
	f := func(path string, content []byte) bool {
		if path == "" {
			path = "x"
		}
		d.Write(0, path, content)
		got, _, err := d.Read(0, path)
		return err == nil && bytes.Equal(got, content)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, costmodel.Default()); err == nil {
		t.Error("expected error for zero nodes")
	}
}
