package coord

import (
	"testing"
	"time"
)

func TestFakeClockNowAdvances(t *testing.T) {
	start := time.Unix(100, 0)
	clk := NewFakeClock(start)
	if got := clk.Now(); !got.Equal(start) {
		t.Fatalf("Now = %v, want %v", got, start)
	}
	clk.Advance(3 * time.Second)
	if got := clk.Now(); !got.Equal(start.Add(3 * time.Second)) {
		t.Fatalf("Now after Advance = %v", got)
	}
}

func TestFakeClockTickerDeliversDueTicks(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	tick, stop := clk.NewTicker(10 * time.Millisecond)
	defer stop()

	clk.Advance(5 * time.Millisecond)
	select {
	case ts := <-tick:
		t.Fatalf("tick %v before period elapsed", ts)
	default:
	}

	clk.Advance(5 * time.Millisecond)
	select {
	case ts := <-tick:
		if want := time.Unix(0, 0).Add(10 * time.Millisecond); !ts.Equal(want) {
			t.Fatalf("tick at %v, want %v", ts, want)
		}
	default:
		t.Fatal("no tick after period elapsed")
	}
}

func TestFakeClockTickerCoalesces(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	tick, stop := clk.NewTicker(time.Millisecond)
	defer stop()
	// Five periods elapse with no receiver: like time.Ticker, unconsumed
	// ticks are dropped, not queued.
	clk.Advance(5 * time.Millisecond)
	<-tick
	select {
	case ts := <-tick:
		t.Fatalf("queued tick %v, want coalescing", ts)
	default:
	}
}

func TestFakeClockTickerStop(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	tick, stop := clk.NewTicker(time.Millisecond)
	stop()
	clk.Advance(10 * time.Millisecond)
	select {
	case ts := <-tick:
		t.Fatalf("tick %v after Stop", ts)
	default:
	}
}

func TestWallClockImplements(t *testing.T) {
	var c Clock = WallClock{}
	if c.Now().IsZero() {
		t.Fatal("WallClock.Now returned zero time")
	}
	tick, stop := c.NewTicker(time.Hour)
	if tick == nil {
		t.Fatal("WallClock.NewTicker returned nil channel")
	}
	stop()
}
