// Clock injection for the heartbeat failure detector. The monitor itself is
// clock-agnostic: the live CLI runs it on WallClock, while tests (and any
// future simulated-failure-detection mode) drive a FakeClock by hand, so
// failure-detection behavior is a pure function of delivered ticks instead
// of host scheduling. This is the wall-clock boundary the determinism
// analyzer enforces for the rest of the package.

package coord

import (
	"sync"
	"time"
)

// Clock abstracts time for the heartbeat monitor: reading the current
// instant and producing periodic ticks.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// NewTicker returns a channel delivering ticks every d, and a stop
	// function releasing the ticker's resources.
	NewTicker(d time.Duration) (<-chan time.Time, func())
}

// WallClock is the host's real-time clock, for live (non-simulated) runs.
// It is the one sanctioned wall-clock read in the simulation packages.
type WallClock struct{}

// Now implements Clock.
func (WallClock) Now() time.Time {
	return time.Now() //imitator:nondet-ok WallClock is the declared wall-clock boundary for live heartbeat mode
}

// NewTicker implements Clock.
func (WallClock) NewTicker(d time.Duration) (<-chan time.Time, func()) {
	t := time.NewTicker(d) //imitator:nondet-ok WallClock is the declared wall-clock boundary for live heartbeat mode
	return t.C, t.Stop
}

// FakeClock is a manually advanced clock for deterministic tests: time
// moves only when Advance is called, and due ticks are delivered before
// Advance returns.
type FakeClock struct {
	mu      sync.Mutex
	now     time.Time
	tickers []*fakeTicker
}

type fakeTicker struct {
	ch      chan time.Time
	period  time.Duration
	next    time.Time
	stopped bool
}

// NewFakeClock returns a FakeClock reading start.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

// Now implements Clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// NewTicker implements Clock.
func (c *FakeClock) NewTicker(d time.Duration) (<-chan time.Time, func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &fakeTicker{
		// Buffered so Advance never blocks on a receiver that is between
		// selects; like time.Ticker, an unconsumed tick is dropped rather
		// than queued.
		ch:     make(chan time.Time, 1),
		period: d,
		next:   c.now.Add(d),
	}
	c.tickers = append(c.tickers, t)
	return t.ch, func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		t.stopped = true
	}
}

// Advance moves the clock forward by d, delivering every tick that comes
// due (at the tick's own timestamp, like a real ticker).
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	for _, t := range c.tickers {
		for !t.stopped && !t.next.After(c.now) {
			select {
			case t.ch <- t.next:
			default:
				// Receiver hasn't drained the previous tick: coalesce by
				// replacing it with this newer one, so a slow receiver
				// always observes the latest due tick.
				select {
				case <-t.ch:
				default:
				}
				select {
				case t.ch <- t.next:
				default:
				}
			}
			t.next = t.next.Add(t.period)
		}
	}
}
