package coord

import (
	"testing"
	"time"
)

func TestCoordinatorSuspicionLifecycle(t *testing.T) {
	c, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Suspect(1) {
		t.Fatal("first suspicion of an alive node must report true")
	}
	if c.Suspect(1) {
		t.Fatal("repeated suspicion must report false")
	}
	if !c.Suspected(1) || c.Suspected(0) {
		t.Fatal("Suspected does not reflect state")
	}
	// Suspicion is advisory: the node is still a member.
	if !c.Alive(1) {
		t.Fatal("suspected node must stay alive until confirmed")
	}
	// Confirmation clears suspicion.
	c.MarkFailed(1)
	if c.Suspected(1) {
		t.Fatal("MarkFailed must clear suspicion")
	}
	if c.Suspect(1) {
		t.Fatal("a failed node cannot be suspected")
	}
}

func TestCoordinatorEpochBumpsOnJoin(t *testing.T) {
	c, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 3; n++ {
		if e := c.Epoch(n); e != 1 {
			t.Fatalf("node %d starts at epoch %d, want 1", n, e)
		}
	}
	c.Suspect(2)
	c.MarkFailed(2)
	c.Join(2)
	if e := c.Epoch(2); e != 2 {
		t.Fatalf("epoch after first Join = %d, want 2", e)
	}
	if c.Suspected(2) {
		t.Fatal("Join must clear suspicion")
	}
	if !c.Alive(2) {
		t.Fatal("Join must restore membership")
	}
	c.MarkFailed(2)
	c.Join(2)
	if e := c.Epoch(2); e != 3 {
		t.Fatalf("epoch after second Join = %d, want 3", e)
	}
	// Untouched slots never move.
	if c.Epoch(0) != 1 || c.Epoch(1) != 1 {
		t.Fatal("Join bumped an unrelated slot's epoch")
	}
}

// TestMonitorSuspicionPrecedesConfirmation drives the two-stage detector
// on a fake clock: the victim crosses the suspicion deadline first, is
// reported exactly once by PollSuspects, and only crosses into Poll's
// confirmed set at the full deadline.
func TestMonitorSuspicionPrecedesConfirmation(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	m, err := NewHeartbeatMonitorWithClock(clock, time.Second, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetSuspectMisses(2); err != nil {
		t.Fatal(err)
	}
	if m.Deadline() != 3*time.Second || m.SuspectDeadline() != 2*time.Second {
		t.Fatalf("deadlines: %v / %v", m.Deadline(), m.SuspectDeadline())
	}
	m.Track(0)
	m.Track(1)

	clock.Advance(m.SuspectDeadline())
	m.Beat(0) // survivor keeps beating; victim 1 stays silent
	if got := m.PollSuspects(clock.Now()); len(got) != 1 || got[0] != 1 {
		t.Fatalf("PollSuspects = %v, want [1]", got)
	}
	// Each suspicion is reported once.
	if got := m.PollSuspects(clock.Now()); got != nil {
		t.Fatalf("suspicion re-reported: %v", got)
	}
	// Not yet confirmed.
	if got := m.Poll(clock.Now()); got != nil {
		t.Fatalf("confirmed before the full deadline: %v", got)
	}

	clock.Advance(m.Deadline() - m.SuspectDeadline())
	m.Beat(0)
	if got := m.Poll(clock.Now()); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Poll = %v, want [1]", got)
	}
	// A confirmed node leaves the suspected set for good.
	if got := m.PollSuspects(clock.Now()); got != nil {
		t.Fatalf("confirmed node still suspected: %v", got)
	}
}

// TestMonitorBeatClearsSuspicion: a suspected node that resumes beating
// (a transient partition healing before confirmation) is re-reported only
// if it goes silent for a full suspicion window again.
func TestMonitorBeatClearsSuspicion(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	m, err := NewHeartbeatMonitorWithClock(clock, time.Second, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetSuspectMisses(2); err != nil {
		t.Fatal(err)
	}
	m.Track(0)

	clock.Advance(2 * time.Second)
	if got := m.PollSuspects(clock.Now()); len(got) != 1 {
		t.Fatalf("PollSuspects = %v, want [0]", got)
	}
	m.Beat(0) // the node comes back
	if got := m.PollSuspects(clock.Now()); got != nil {
		t.Fatalf("beating node still suspected: %v", got)
	}
	clock.Advance(2 * time.Second)
	if got := m.PollSuspects(clock.Now()); len(got) != 1 {
		t.Fatalf("second silence not re-reported: %v", got)
	}
	// The earlier beat pushed the confirmation deadline out too.
	if got := m.Poll(clock.Now()); got != nil {
		t.Fatalf("confirmed too early: %v", got)
	}
}

func TestMonitorSuspectMissesValidation(t *testing.T) {
	m, err := NewHeartbeatMonitor(time.Second, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetSuspectMisses(-1); err == nil {
		t.Fatal("negative threshold accepted")
	}
	if err := m.SetSuspectMisses(4); err == nil {
		t.Fatal("threshold above confirmation accepted")
	}
	if err := m.SetSuspectMisses(0); err != nil {
		t.Fatal(err)
	}
	// Disabled stage never reports.
	m.Track(0)
	if got := m.PollSuspects(time.Now().Add(time.Hour)); got != nil {
		t.Fatalf("disabled suspicion stage reported %v", got)
	}
}
