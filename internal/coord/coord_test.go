package coord

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestBarrierReleasesWhenAllArrive(t *testing.T) {
	c, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var released int32
	for n := 0; n < 4; n++ {
		n := n
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := c.EnterBarrier(n)
			if s.IsFail() {
				t.Errorf("unexpected failure state: %+v", s)
			}
			atomic.AddInt32(&released, 1)
		}()
	}
	wg.Wait()
	if released != 4 {
		t.Fatalf("released %d, want 4", released)
	}
}

func TestBarrierGenerationsAdvance(t *testing.T) {
	c, _ := New(2)
	var wg sync.WaitGroup
	gens := make([][]int, 2)
	for n := 0; n < 2; n++ {
		n := n
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				s := c.EnterBarrier(n)
				gens[n] = append(gens[n], s.Generation)
			}
		}()
	}
	wg.Wait()
	for n := 0; n < 2; n++ {
		for i, g := range gens[n] {
			if g != i {
				t.Errorf("node %d barrier %d saw generation %d", n, i, g)
			}
		}
	}
}

func TestFailureAnnouncedAtBarrier(t *testing.T) {
	c, _ := New(3)
	var wg sync.WaitGroup
	states := make([]BarrierState, 3)
	// Node 2 dies; 0 and 1 enter the barrier.
	c.MarkFailed(2)
	for n := 0; n < 2; n++ {
		n := n
		wg.Add(1)
		go func() {
			defer wg.Done()
			states[n] = c.EnterBarrier(n)
		}()
	}
	wg.Wait()
	for n := 0; n < 2; n++ {
		if !states[n].IsFail() || len(states[n].Failed) != 1 || states[n].Failed[0] != 2 {
			t.Errorf("node %d state = %+v, want failure of node 2", n, states[n])
		}
	}
}

func TestFailureWhileWaitingReleasesBarrier(t *testing.T) {
	c, _ := New(2)
	got := make(chan BarrierState, 1)
	go func() { got <- c.EnterBarrier(0) }()
	// Give node 0 time to block, then kill node 1 (never arrives).
	time.Sleep(10 * time.Millisecond)
	c.MarkFailed(1)
	select {
	case s := <-got:
		if !s.IsFail() || s.Failed[0] != 1 {
			t.Errorf("state = %+v", s)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("barrier did not release after failure")
	}
}

func TestFailureClearsAfterOneBarrier(t *testing.T) {
	c, _ := New(2)
	c.MarkFailed(1)
	s := c.EnterBarrier(0) // releases alone: node 1 dead
	if !s.IsFail() {
		t.Fatal("first barrier should announce failure")
	}
	s = c.EnterBarrier(0)
	if s.IsFail() {
		t.Errorf("second barrier should be clean, got %+v", s)
	}
}

func TestJoinNewbie(t *testing.T) {
	c, _ := New(2)
	c.MarkFailed(1)
	c.EnterBarrier(0) // consume failure
	// Newbie joins as node 2; both must now arrive for release.
	c.Join(2)
	var wg sync.WaitGroup
	for _, n := range []int{0, 2} {
		n := n
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := c.EnterBarrier(n)
			if s.IsFail() {
				t.Errorf("unexpected failure: %+v", s)
			}
		}()
	}
	wg.Wait()
	alive := c.AliveNodes()
	if len(alive) != 2 || alive[0] != 0 || alive[1] != 2 {
		t.Errorf("alive = %v", alive)
	}
}

func TestMarkFailedIdempotent(t *testing.T) {
	c, _ := New(2)
	c.MarkFailed(1)
	c.MarkFailed(1)
	s := c.EnterBarrier(0)
	if len(s.Failed) != 1 {
		t.Errorf("Failed = %v, want one entry", s.Failed)
	}
}

func TestAlive(t *testing.T) {
	c, _ := New(2)
	if !c.Alive(0) || !c.Alive(1) {
		t.Error("initial nodes should be alive")
	}
	c.MarkFailed(0)
	if c.Alive(0) {
		t.Error("failed node reported alive")
	}
}

func TestKV(t *testing.T) {
	c, _ := New(1)
	if _, ok := c.Get("iter"); ok {
		t.Error("unset key should miss")
	}
	c.Set("iter", 7)
	if v, ok := c.Get("iter"); !ok || v != 7 {
		t.Errorf("Get = %d, %v", v, ok)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("expected error for zero nodes")
	}
}

func TestHeartbeatDetectsCrash(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	failures := make(chan int, 8)
	m, err := NewHeartbeatMonitorWithClock(clk, 10*time.Millisecond, 3, func(n int) {
		failures <- n
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Track(0)
	m.Track(1)
	m.Start()
	defer m.Stop()

	// Node 0 keeps beating after every tick; node 1 goes silent. Node 0's
	// last beat is therefore never more than two intervals stale when a
	// sweep runs, while node 1 crosses the three-miss deadline at t=30ms.
	for i := 0; i < 3; i++ {
		clk.Advance(10 * time.Millisecond)
		m.Beat(0)
	}
	select {
	case n := <-failures:
		if n != 1 {
			t.Fatalf("detected failure of node %d, want node 1", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no failure detected")
	}
	select {
	case n := <-failures:
		t.Errorf("unexpected extra failure of node %d", n)
	default:
	}
}

func TestHeartbeatFailsOnce(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	var count int32
	m, _ := NewHeartbeatMonitorWithClock(clk, 10*time.Millisecond, 2, func(int) { atomic.AddInt32(&count, 1) })
	m.Track(0)
	// Drive sweeps synchronously: once failed, a node must never be
	// re-reported no matter how many further sweeps observe it.
	clk.Advance(20 * time.Millisecond)
	m.sweep(clk.Now())
	clk.Advance(20 * time.Millisecond)
	m.sweep(clk.Now())
	m.sweep(clk.Now())
	if c := atomic.LoadInt32(&count); c != 1 {
		t.Errorf("onFail ran %d times, want 1", c)
	}
}

func TestHeartbeatBeatResetsDeadline(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	var count int32
	m, _ := NewHeartbeatMonitorWithClock(clk, 10*time.Millisecond, 2, func(int) { atomic.AddInt32(&count, 1) })
	m.Track(0)
	clk.Advance(15 * time.Millisecond)
	m.Beat(0)
	clk.Advance(15 * time.Millisecond)
	m.sweep(clk.Now()) // 15ms since last beat: under the 20ms deadline
	if c := atomic.LoadInt32(&count); c != 0 {
		t.Errorf("onFail ran %d times before deadline, want 0", c)
	}
	clk.Advance(5 * time.Millisecond)
	m.sweep(clk.Now()) // 20ms since last beat: failed
	if c := atomic.LoadInt32(&count); c != 1 {
		t.Errorf("onFail ran %d times after deadline, want 1", c)
	}
}

func TestHeartbeatValidation(t *testing.T) {
	if _, err := NewHeartbeatMonitor(0, 1, nil); err == nil {
		t.Error("expected error for zero interval")
	}
	if _, err := NewHeartbeatMonitor(time.Millisecond, 0, nil); err == nil {
		t.Error("expected error for zero misses")
	}
}
