// Package coord provides the coordination service the paper inherits from
// Apache Hama: barrier-based synchronization, shared global state, cluster
// membership and failure announcement (a Zookeeper stand-in, §3.2), plus a
// real-time heartbeat failure detector.
//
// The barrier is reusable and failure-aware: when a node is marked failed
// while others compute, every surviving node learns about it in the
// BarrierState returned from its next EnterBarrier call — exactly the
// enter_barrier()/leave_barrier() state checks of Algorithm 1.
package coord

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// BarrierState is what a node learns when a barrier releases.
type BarrierState struct {
	// Generation is the sequence number of the released barrier.
	Generation int
	// Failed lists nodes whose failure was announced since the previous
	// barrier, in ascending order. Empty on normal iterations.
	Failed []int
}

// IsFail reports whether this barrier announced any failure.
func (s BarrierState) IsFail() bool { return len(s.Failed) > 0 }

// Coordinator implements the membership + barrier service.
type Coordinator struct {
	mu   sync.Mutex
	cond *sync.Cond

	alive       map[int]bool
	arrived     map[int]bool
	generation  int
	pendingFail []int
	// epochs[n] is node n's membership incarnation, starting at 1 and
	// bumped every time the slot rejoins (a rebirth newbie taking over).
	// Messages stamped with an older epoch belong to a previous life of
	// the slot and must be fenced (split-brain safety under partitions).
	epochs map[int]uint64
	// suspected marks nodes past the suspicion timeout but not yet past
	// the confirmation deadline: the cluster treats them as possibly dead
	// (stops waiting on them) without announcing a failure.
	suspected map[int]bool
	// states is a two-slot ring: states[g%2] = state of generation g's
	// release. Two slots suffice because a straggler of generation g must
	// return from EnterBarrier(g) — and read its slot — before it can enter
	// barrier g+1, so slot g%2 is never overwritten (by g+2) while a reader
	// still needs it.
	states [2]BarrierState

	kv map[string]int64
}

// New creates a Coordinator with nodes 0..numNodes-1 alive.
func New(numNodes int) (*Coordinator, error) {
	if numNodes < 1 {
		return nil, fmt.Errorf("coord: need at least one node, got %d", numNodes)
	}
	c := &Coordinator{
		alive:     make(map[int]bool, numNodes),
		arrived:   make(map[int]bool, numNodes),
		epochs:    make(map[int]uint64, numNodes),
		suspected: make(map[int]bool),
		kv:        make(map[string]int64),
	}
	c.cond = sync.NewCond(&c.mu)
	for i := 0; i < numNodes; i++ {
		c.alive[i] = true
		c.epochs[i] = 1
	}
	return c, nil
}

// EnterBarrier blocks until every alive node has entered, then returns the
// barrier's state. Safe for concurrent use by one goroutine per node.
func (c *Coordinator) EnterBarrier(node int) BarrierState {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.alive[node] {
		// A failed node straggling in: release it immediately with the
		// current state; the driver stops running it.
		return BarrierState{Generation: c.generation, Failed: append([]int(nil), c.pendingFail...)}
	}
	c.arrived[node] = true
	myGen := c.generation
	if c.allArrivedLocked() {
		c.releaseLocked()
	} else {
		for c.generation == myGen {
			c.cond.Wait()
		}
	}
	return c.states[myGen%2]
}

// allArrivedLocked reports whether every alive node has arrived.
func (c *Coordinator) allArrivedLocked() bool {
	if len(c.alive) == 0 {
		return false
	}
	for n, a := range c.alive {
		if a && !c.arrived[n] {
			return false
		}
	}
	return true
}

// releaseLocked publishes the barrier state and wakes waiters. On the
// common no-failure round nothing here allocates: the failed slice stays
// nil, the ring slot is overwritten in place, and clear() keeps the
// arrived map's storage.
func (c *Coordinator) releaseLocked() {
	failed := append([]int(nil), c.pendingFail...)
	sort.Ints(failed)
	c.states[c.generation%2] = BarrierState{Generation: c.generation, Failed: failed}
	c.pendingFail = nil
	c.generation++
	clear(c.arrived)
	c.cond.Broadcast()
}

// MarkFailed announces a node failure (fail-stop). The failure surfaces in
// the next barrier release; if every remaining alive node is already
// waiting, the barrier releases immediately.
func (c *Coordinator) MarkFailed(node int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.alive[node] {
		return
	}
	c.alive[node] = false
	delete(c.arrived, node)
	delete(c.suspected, node)
	c.pendingFail = append(c.pendingFail, node)
	if c.allArrivedLocked() {
		c.releaseLocked()
	}
}

// Suspect marks a node as suspected dead: it missed the suspicion
// timeout but has not yet crossed the confirmation deadline. Suspicion
// is advisory — membership and barriers are unaffected until MarkFailed
// confirms — and is cleared by MarkFailed (confirmed) or Join (revived).
// Returns whether the node was alive and newly suspected.
func (c *Coordinator) Suspect(node int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.alive[node] || c.suspected[node] {
		return false
	}
	c.suspected[node] = true
	return true
}

// Suspected reports whether a node is currently suspected dead.
func (c *Coordinator) Suspected(node int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.suspected[node]
}

// Join adds a node to the membership (a rebirth newbie taking over; §5.1)
// and bumps the slot's epoch: the newbie is a fresh incarnation, and any
// in-flight traffic stamped with the previous epoch is fenced on arrival.
// The node must then call EnterBarrier to synchronize with survivors.
func (c *Coordinator) Join(node int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.alive[node] = true
	delete(c.suspected, node)
	c.epochs[node]++
}

// Epoch returns a node's current membership incarnation (1 at job start,
// +1 per Join). Epoch 0 is never issued, so it can stamp "no epoch".
func (c *Coordinator) Epoch(node int) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epochs[node]
}

// Alive reports whether a node is currently a member.
func (c *Coordinator) Alive(node int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.alive[node]
}

// AliveNodes returns the sorted list of alive nodes.
func (c *Coordinator) AliveNodes() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []int
	for n, a := range c.alive { //imitator:nondet-ok collected set is sorted before use
		if a {
			out = append(out, n)
		}
	}
	sort.Ints(out)
	return out
}

// Set stores a shared global value (e.g., the current iteration, so a
// newbie can resume at the right superstep).
func (c *Coordinator) Set(key string, value int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.kv[key] = value
}

// Get reads a shared global value.
func (c *Coordinator) Get(key string) (int64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.kv[key]
	return v, ok
}

// HeartbeatMonitor detects crashed nodes from missed heartbeats, as the
// paper's central master does with a conservative 500 ms interval. Time
// comes from an injected Clock: WallClock in the live CLI mode, FakeClock
// in tests; the deterministic benchmark driver injects failures directly
// and charges the detection delay from the cost model instead.
type HeartbeatMonitor struct {
	clock    Clock
	interval time.Duration
	misses   int
	onFail   func(node int)

	mu       sync.Mutex
	lastBeat map[int]time.Time
	failed   map[int]bool
	// suspectMisses (0 = disabled) is the earlier suspicion threshold:
	// after suspectMisses missed intervals a node is reported by
	// PollSuspects, distinct from the confirmed failure at `misses`.
	suspectMisses int
	suspected     map[int]bool

	stop chan struct{}
	done chan struct{}
}

// NewHeartbeatMonitor creates a wall-clock monitor declaring a node failed
// after `misses` consecutive missed intervals. onFail runs once per failure
// on the monitor goroutine.
func NewHeartbeatMonitor(interval time.Duration, misses int, onFail func(node int)) (*HeartbeatMonitor, error) {
	return NewHeartbeatMonitorWithClock(WallClock{}, interval, misses, onFail)
}

// NewHeartbeatMonitorWithClock creates a monitor on an explicit clock.
func NewHeartbeatMonitorWithClock(clock Clock, interval time.Duration, misses int, onFail func(node int)) (*HeartbeatMonitor, error) {
	if interval <= 0 || misses < 1 {
		return nil, fmt.Errorf("coord: bad heartbeat config interval=%v misses=%d", interval, misses)
	}
	return &HeartbeatMonitor{
		clock:    clock,
		interval: interval,
		misses:   misses,
		onFail:    onFail,
		lastBeat:  make(map[int]time.Time),
		failed:    make(map[int]bool),
		suspected: make(map[int]bool),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}, nil
}

// SetSuspectMisses enables the suspicion stage: a node is reported by
// PollSuspects after k consecutive missed intervals (0 disables). k must
// not exceed the confirmation threshold.
func (m *HeartbeatMonitor) SetSuspectMisses(k int) error {
	if k < 0 || k > m.misses {
		return fmt.Errorf("coord: suspect threshold %d outside [0, %d]", k, m.misses)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.suspectMisses = k
	return nil
}

// Deadline returns the confirmation deadline as exact integer duration
// arithmetic: misses * interval, with no float rounding anywhere.
func (m *HeartbeatMonitor) Deadline() time.Duration {
	return time.Duration(m.misses) * m.interval
}

// SuspectDeadline returns the suspicion deadline (zero when disabled).
func (m *HeartbeatMonitor) SuspectDeadline() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return time.Duration(m.suspectMisses) * m.interval
}

// Track registers a node with a fresh heartbeat.
func (m *HeartbeatMonitor) Track(node int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lastBeat[node] = m.clock.Now()
	delete(m.failed, node)
	delete(m.suspected, node)
}

// Beat records a heartbeat from node. Beats from untracked or failed nodes
// are ignored.
func (m *HeartbeatMonitor) Beat(node int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.lastBeat[node]; ok && !m.failed[node] {
		m.lastBeat[node] = m.clock.Now()
		delete(m.suspected, node)
	}
}

// Start launches the monitor goroutine. Stop must be called to shut it down.
func (m *HeartbeatMonitor) Start() {
	// Register the ticker before returning so callers advancing a FakeClock
	// right after Start cannot race the goroutine's startup.
	tick, stopTicker := m.clock.NewTicker(m.interval)
	go func() {
		defer close(m.done)
		defer stopTicker()
		for {
			select {
			case <-m.stop:
				return
			case now := <-tick:
				m.sweep(now)
			}
		}
	}()
}

func (m *HeartbeatMonitor) sweep(now time.Time) {
	newlyFailed := m.expire(now)
	if m.onFail != nil {
		for _, n := range newlyFailed {
			m.onFail(n)
		}
	}
}

// Poll synchronously sweeps for missed heartbeats at `now` and returns the
// newly failed nodes in ascending order, without invoking the onFail
// callback. It lets a deterministic driver — the simulated cluster's chaos
// engine — run failure detection on simulated time instead of the ticker
// goroutine: silence the victims, advance the injected FakeClock past the
// detection deadline, Beat the survivors, then Poll.
func (m *HeartbeatMonitor) Poll(now time.Time) []int {
	return m.expire(now)
}

// PollSuspects returns, in ascending order, the tracked nodes whose last
// beat is at least the suspicion deadline old but which are not yet
// confirmed failed, reporting each suspicion once (a Beat clears it).
// Returns nil when the suspicion stage is disabled.
func (m *HeartbeatMonitor) PollSuspects(now time.Time) []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.suspectMisses == 0 {
		return nil
	}
	deadline := time.Duration(m.suspectMisses) * m.interval
	var suspects []int
	for node, last := range m.lastBeat { //imitator:nondet-ok suspects is sorted before use
		if !m.failed[node] && !m.suspected[node] && now.Sub(last) >= deadline {
			m.suspected[node] = true
			suspects = append(suspects, node)
		}
	}
	sort.Ints(suspects)
	return suspects
}

// expire marks every tracked node whose last beat is older than the
// detection deadline as failed, returning them sorted.
func (m *HeartbeatMonitor) expire(now time.Time) []int {
	deadline := time.Duration(m.misses) * m.interval
	var newlyFailed []int
	m.mu.Lock()
	for node, last := range m.lastBeat { //imitator:nondet-ok newlyFailed is sorted before use
		if !m.failed[node] && now.Sub(last) >= deadline {
			m.failed[node] = true
			delete(m.suspected, node)
			newlyFailed = append(newlyFailed, node)
		}
	}
	m.mu.Unlock()
	sort.Ints(newlyFailed)
	return newlyFailed
}

// Stop terminates the monitor goroutine and waits for it to exit.
func (m *HeartbeatMonitor) Stop() {
	close(m.stop)
	<-m.done
}
