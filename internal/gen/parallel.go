package gen

// Sharded deterministic generation (the Workers >= 1 paths).
//
// The sequential generators draw every random decision from one stream, so
// edge i depends on all draws before it and the emission loop cannot be
// split. The parallel paths restructure generation so that randomness is
// consumed in fixed, worker-independent units:
//
//   - The work is cut into FIXED shards (4096 vertices, 8192 edges, or one
//     lattice row) whose boundaries depend only on the graph dimensions —
//     never on the worker count.
//   - Each shard derives a private rng stream from (Seed, tag, shard) via
//     rng.Hash2, so the draws inside a shard are the same no matter which
//     worker executes it or in what order shards complete.
//   - Every edge's final position is computed up front (per-vertex quota
//     prefix sums, closed-form lattice offsets, or per-shard count prefix
//     sums), so workers write disjoint index ranges of the SoA endpoint
//     arrays and no append-order races exist.
//
// Together these make the output a pure function of the config seed: the
// same graph comes back for Workers 1, 2 or 64 (covered by TestParallel*
// determinism tests). The Workers == 0 graphs differ — they are pinned by
// checked-in benchmark baselines and must stay byte-identical — so the two
// paths coexist behind the config switch.

import (
	"math"

	"imitator/internal/graph"
	"imitator/internal/hostpar"
	"imitator/internal/rng"
)

const (
	// genShardVerts is the fixed vertex-shard width for per-vertex emission.
	genShardVerts = 4096
	// genShardEdges is the fixed edge-block width for per-edge emission.
	genShardEdges = 8192
)

// Stream tags: each independent randomness consumer hashes its own tag into
// the seed so streams never collide across uses or generators.
const (
	tagPlan     uint64 = 0x706c616e01 // sequential planning stream
	tagQuota    uint64 = 0x71756f7401 // per-vertex fractional rounding
	tagEmit     uint64 = 0x656d697401 // power-law per-shard emission
	tagRow      uint64 = 0x726f7701   // road per-row lattice weights
	tagShortcut uint64 = 0x73686f7201 // road shortcut blocks
	tagUniform  uint64 = 0x756e696601 // uniform edge blocks
	tagComm     uint64 = 0x636f6d6d01 // community per-shard emission
)

// streamSeed derives the rng seed for one shard of one consumer.
func streamSeed(seed, tag, shard uint64) uint64 {
	return rng.Hash2(rng.Hash2(seed, tag), shard)
}

// hashUnit maps (seed, tag, i) to a uniform float64 in [0, 1) without
// constructing a stream — used for independent per-item coin flips.
func hashUnit(seed, tag, i uint64) float64 {
	return float64(rng.Hash2(rng.Hash2(seed, tag), i)>>11) / (1 << 53)
}

func numShards(n, width int) int { return (n + width - 1) / width }

// powerLawParallel plans exact per-vertex out-degree quotas sequentially
// (O(n)), then emits edges shard-parallel into precomputed positions.
func powerLawParallel(cfg PowerLawConfig) (*graph.Graph, error) {
	n := cfg.NumVertices
	planR := rng.New(rng.Hash2(cfg.Seed, tagPlan))

	sink := make([]bool, n)
	numSinks := int(cfg.SelfishFraction * float64(n))
	perm := planR.Perm(n)
	for _, v := range perm[:numSinks] {
		sink[v] = true
	}

	s := 1 / (cfg.Alpha - 1)
	zipfWeight := func(rank int) float64 { return math.Pow(float64(rank+1), -s) }

	outRank := planR.Perm(n)
	outDeg := make([]float64, n)
	sum := 0.0
	for v := 0; v < n; v++ {
		if sink[v] {
			continue
		}
		outDeg[v] = zipfWeight(outRank[v])
		sum += outDeg[v]
	}
	scale := float64(3*n) / sum
	if cfg.NumEdges > 0 {
		scale = float64(cfg.NumEdges) / sum
	}

	inRank := planR.Perm(n)
	prefix := make([]float64, n+1)
	for v := 0; v < n; v++ {
		prefix[v+1] = prefix[v] + zipfWeight(inRank[v])
	}
	total := prefix[n]

	// Per-vertex quotas: floor plus an independent hashed coin for the
	// fraction (so rounding needs no shared stream), with the legacy
	// at-least-one floor for non-sinks.
	quota := make([]int32, n)
	sumQ := 0
	for v := 0; v < n; v++ {
		if sink[v] {
			continue
		}
		d := outDeg[v] * scale
		di := int(d)
		if hashUnit(cfg.Seed, tagQuota, uint64(v)) < d-float64(di) {
			di++
		}
		if di == 0 {
			di = 1
		}
		quota[v] = int32(di)
		sumQ += di
	}

	// Exact-target adjustment: walk a planned permutation, shaving quotas
	// down to 1 (then to 0 if still over) or topping them up, so the emitted
	// count equals NumEdges exactly.
	if cfg.NumEdges > 0 && sumQ != cfg.NumEdges {
		adj := planR.Perm(n)
		if sumQ > cfg.NumEdges {
			for _, floor := range []int32{1, 0} {
				for _, v := range adj {
					if sumQ == cfg.NumEdges {
						break
					}
					if !sink[v] && quota[v] > floor {
						quota[v]--
						sumQ--
					}
				}
				if sumQ == cfg.NumEdges {
					break
				}
			}
		}
		for sumQ < cfg.NumEdges {
			for _, v := range adj {
				if sumQ == cfg.NumEdges {
					break
				}
				if !sink[v] {
					quota[v]++
					sumQ++
				}
			}
		}
	}

	off := make([]int, n+1)
	for v := 0; v < n; v++ {
		off[v+1] = off[v] + int(quota[v])
	}
	m := off[n]

	src := make([]graph.VertexID, m)
	dst := make([]graph.VertexID, m)
	shards := numShards(n, genShardVerts)
	hostpar.For(shards, cfg.Workers, func(sh int) {
		r := rng.New(streamSeed(cfg.Seed, tagEmit, uint64(sh)))
		lo, hi := sh*genShardVerts, (sh+1)*genShardVerts
		if hi > n {
			hi = n
		}
		for v := lo; v < hi; v++ {
			q := int(quota[v])
			if q == 0 {
				continue
			}
			base := off[v]
			for k := 0; k < q; k++ {
				d := sampleZipfDst(r, prefix, total, n, graph.VertexID(v))
				src[base+k] = graph.VertexID(v)
				dst[base+k] = d
			}
		}
	})
	return graph.NewFromSOA(n, src, dst, nil)
}

// sampleZipfDst draws a destination from the rank-weighted prefix table,
// rejecting self-loops for up to 16 tries like the sequential path; the
// deterministic fallback (the next vertex) keeps quotas exact.
func sampleZipfDst(r *rng.Source, prefix []float64, total float64, n int, src graph.VertexID) graph.VertexID {
	for tries := 0; tries < 16; tries++ {
		x := r.Float64() * total
		lo, hi := 0, n
		for lo < hi {
			mid := (lo + hi) / 2
			if prefix[mid+1] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if d := graph.VertexID(lo); d != src {
			return d
		}
	}
	return graph.VertexID((int(src) + 1) % n)
}

// roadParallel emits the lattice row-parallel (each edge's position has a
// closed form) and the shortcuts block-parallel.
func roadParallel(cfg RoadConfig) (*graph.Graph, error) {
	w, h := cfg.Width, cfg.Height
	n := w * h
	weighted := cfg.WeightMu != 0 || cfg.WeightSigma != 0

	// Entries per row: every cell except the last emits a right pair, every
	// cell emits a down pair unless on the bottom row; a pair is 2 entries.
	rowEntries := func(y int) int {
		e := (w - 1) * 2
		if y+1 < h {
			e += w * 2
		}
		return e
	}
	rowBase := make([]int, h+1)
	for y := 0; y < h; y++ {
		rowBase[y+1] = rowBase[y] + rowEntries(y)
	}
	latticeEntries := rowBase[h]
	shortcutPairs := int(cfg.ShortcutFrac * float64(latticeEntries/2))
	m := latticeEntries + shortcutPairs*2

	src := make([]graph.VertexID, m)
	dst := make([]graph.VertexID, m)
	var wt []float64
	if weighted {
		wt = make([]float64, m)
	}
	addBoth := func(i int, a, b graph.VertexID, weight float64) {
		src[i], dst[i] = a, b
		src[i+1], dst[i+1] = b, a
		if weighted {
			wt[i], wt[i+1] = weight, weight
		}
	}
	at := func(x, y int) graph.VertexID { return graph.VertexID(y*w + x) }

	// Lattice rows: one shard per row, one weight draw per pair in cell
	// order (right pair, then down pair), mirroring the sequential order
	// within the row.
	hostpar.For(h, cfg.Workers, func(y int) {
		r := rng.New(streamSeed(cfg.Seed, tagRow, uint64(y)))
		draw := func() float64 {
			if !weighted {
				return 1
			}
			return r.LogNormal(cfg.WeightMu, cfg.WeightSigma)
		}
		hasDown := y+1 < h
		i := rowBase[y]
		for x := 0; x < w; x++ {
			if x+1 < w {
				addBoth(i, at(x, y), at(x+1, y), draw())
				i += 2
			}
			if hasDown {
				addBoth(i, at(x, y), at(x, y+1), draw())
				i += 2
			}
		}
	})

	// Shortcuts: fixed blocks, redraw-until-distinct so every slot fills
	// (the sequential path instead skips colliding draws, so its count
	// wobbles; here the planned positions must all be written).
	blocks := numShards(shortcutPairs, genShardEdges)
	hostpar.For(blocks, cfg.Workers, func(b int) {
		r := rng.New(streamSeed(cfg.Seed, tagShortcut, uint64(b)))
		lo, hi := b*genShardEdges, (b+1)*genShardEdges
		if hi > shortcutPairs {
			hi = shortcutPairs
		}
		for p := lo; p < hi; p++ {
			var a, bb graph.VertexID
			for {
				a = graph.VertexID(r.Intn(n))
				bb = graph.VertexID(r.Intn(n))
				if a != bb {
					break
				}
			}
			weight := 1.0
			if weighted {
				weight = r.LogNormal(cfg.WeightMu, cfg.WeightSigma)
			}
			addBoth(latticeEntries+p*2, a, bb, weight)
		}
	})
	return graph.NewFromSOA(n, src, dst, wt)
}

// uniformParallel fills fixed edge blocks, redrawing self-loops in place.
func uniformParallel(cfg UniformConfig) (*graph.Graph, error) {
	n, m := cfg.NumVertices, cfg.NumEdges
	src := make([]graph.VertexID, m)
	dst := make([]graph.VertexID, m)
	blocks := numShards(m, genShardEdges)
	hostpar.For(blocks, cfg.Workers, func(b int) {
		r := rng.New(streamSeed(cfg.Seed, tagUniform, uint64(b)))
		lo, hi := b*genShardEdges, (b+1)*genShardEdges
		if hi > m {
			hi = m
		}
		for i := lo; i < hi; i++ {
			for {
				s := graph.VertexID(r.Intn(n))
				d := graph.VertexID(r.Intn(n))
				if s != d {
					src[i], dst[i] = s, d
					break
				}
			}
		}
	})
	return graph.NewFromSOA(n, src, dst, nil)
}

// communityParallel assigns communities sequentially (cheap O(n)), then
// emits per-vertex edges shard-parallel into per-shard buffers stitched in
// shard order (emission counts are draw-dependent, so positions cannot be
// precomputed the way the other generators do).
func communityParallel(cfg CommunityConfig) (*graph.Graph, error) {
	n := cfg.NumVertices
	planR := rng.New(rng.Hash2(cfg.Seed, tagPlan))
	comm := make([]int, n)
	for v := range comm {
		comm[v] = planR.Intn(cfg.NumCommunities)
	}
	members := make([][]graph.VertexID, cfg.NumCommunities)
	for v, c := range comm {
		members[c] = append(members[c], graph.VertexID(v))
	}

	shards := numShards(n, genShardVerts)
	shardSrc := make([][]graph.VertexID, shards)
	shardDst := make([][]graph.VertexID, shards)
	hostpar.For(shards, cfg.Workers, func(sh int) {
		r := rng.New(streamSeed(cfg.Seed, tagComm, uint64(sh)))
		lo, hi := sh*genShardVerts, (sh+1)*genShardVerts
		if hi > n {
			hi = n
		}
		var bufS, bufD []graph.VertexID
		addBoth := func(a, b graph.VertexID) {
			bufS = append(bufS, a, b)
			bufD = append(bufD, b, a)
		}
		for v := lo; v < hi; v++ {
			c := comm[v]
			intra := int(cfg.IntraDegree/2 + 0.5)
			for i := 0; i < intra; i++ {
				peers := members[c]
				if len(peers) < 2 {
					break
				}
				u := peers[r.Intn(len(peers))]
				if u != graph.VertexID(v) {
					addBoth(graph.VertexID(v), u)
				}
			}
			inter := cfg.InterDegree / 2
			if r.Float64() < inter-float64(int(inter)) {
				inter++
			}
			for i := 0; i < int(inter); i++ {
				u := graph.VertexID(r.Intn(n))
				if u != graph.VertexID(v) && comm[u] != c {
					addBoth(graph.VertexID(v), u)
				}
			}
		}
		shardSrc[sh], shardDst[sh] = bufS, bufD
	})

	off := make([]int, shards+1)
	for sh := 0; sh < shards; sh++ {
		off[sh+1] = off[sh] + len(shardSrc[sh])
	}
	m := off[shards]
	src := make([]graph.VertexID, m)
	dst := make([]graph.VertexID, m)
	hostpar.For(shards, cfg.Workers, func(sh int) {
		copy(src[off[sh]:], shardSrc[sh])
		copy(dst[off[sh]:], shardDst[sh])
	})
	return graph.NewFromSOA(n, src, dst, nil)
}
