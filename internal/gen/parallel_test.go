package gen

import (
	"testing"

	"imitator/internal/graph"
	"imitator/internal/rng"
)

// fingerprint hashes a graph's exact edge sequence (order-sensitive) and
// weights, so two graphs compare equal only if they are identical.
func fingerprint(g *graph.Graph) uint64 {
	h := rng.Hash2(uint64(g.NumVertices()), uint64(g.NumEdges()))
	g.EachEdge(func(i int, e graph.Edge) {
		h = rng.Hash2(h, rng.Hash2(uint64(e.Src), uint64(e.Dst)))
		if e.Weight != 1 {
			// Weights are finite positives here; fold the bits in directly.
			h = rng.Hash2(h, uint64(int64(e.Weight*1e9)))
		}
	})
	return h
}

var workerSweep = []int{1, 2, 8}

// TestParallelPowerLawDeterminism: the sharded path returns the identical
// graph for every worker count, honors an exact edge target, and keeps the
// sink (selfish) vertices edge-free.
func TestParallelPowerLawDeterminism(t *testing.T) {
	cfg := PowerLawConfig{
		NumVertices: 5000, NumEdges: 40000, Alpha: 2.0,
		SelfishFraction: 0.1, Seed: 42,
	}
	var want uint64
	for i, workers := range workerSweep {
		cfg.Workers = workers
		g, err := PowerLaw(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if g.NumEdges() != cfg.NumEdges {
			t.Fatalf("workers=%d: got %d edges, want exactly %d", workers, g.NumEdges(), cfg.NumEdges)
		}
		fp := fingerprint(g)
		if i == 0 {
			want = fp
		} else if fp != want {
			t.Fatalf("workers=%d graph differs from workers=1", workers)
		}
		if g.NumSelfish() < int(cfg.SelfishFraction*float64(cfg.NumVertices)) {
			t.Fatalf("workers=%d: selfish count %d below configured fraction", workers, g.NumSelfish())
		}
	}
	// A different seed must give a different graph.
	cfg.Workers, cfg.Seed = 1, 43
	g2, err := PowerLaw(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(g2) == want {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestParallelRoadDeterminism(t *testing.T) {
	cfg := RoadConfig{
		Width: 120, Height: 80, ShortcutFrac: 0.05,
		WeightMu: 0.4, WeightSigma: 1.2, Seed: 7,
	}
	var want uint64
	var wantEdges int
	for i, workers := range workerSweep {
		cfg.Workers = workers
		g, err := Road(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !g.Weighted() {
			t.Fatalf("workers=%d: road graph lost its weights", workers)
		}
		fp := fingerprint(g)
		if i == 0 {
			want, wantEdges = fp, g.NumEdges()
		} else if fp != want || g.NumEdges() != wantEdges {
			t.Fatalf("workers=%d graph differs from workers=1", workers)
		}
	}
}

func TestParallelUniformDeterminism(t *testing.T) {
	cfg := UniformConfig{NumVertices: 3000, NumEdges: 25000, Seed: 11}
	var want uint64
	for i, workers := range workerSweep {
		cfg.Workers = workers
		g, err := UniformGraph(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if g.NumEdges() != cfg.NumEdges {
			t.Fatalf("workers=%d: got %d edges, want %d", workers, g.NumEdges(), cfg.NumEdges)
		}
		fp := fingerprint(g)
		if i == 0 {
			want = fp
		} else if fp != want {
			t.Fatalf("workers=%d graph differs from workers=1", workers)
		}
	}
	// Workers == 0 dispatches to the legacy sequential generator.
	cfg.Workers = 0
	g, err := UniformGraph(cfg)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := Uniform(cfg.NumVertices, cfg.NumEdges, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(g) != fingerprint(legacy) {
		t.Fatal("UniformGraph with Workers=0 differs from Uniform")
	}
}

func TestParallelCommunityDeterminism(t *testing.T) {
	cfg := CommunityConfig{
		NumVertices: 4000, NumCommunities: 20,
		IntraDegree: 6, InterDegree: 1.5, Seed: 5,
	}
	var want uint64
	var wantEdges int
	for i, workers := range workerSweep {
		cfg.Workers = workers
		g, err := Community(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		fp := fingerprint(g)
		if i == 0 {
			want, wantEdges = fp, g.NumEdges()
			if wantEdges == 0 {
				t.Fatal("community graph came back empty")
			}
		} else if fp != want || g.NumEdges() != wantEdges {
			t.Fatalf("workers=%d graph differs from workers=1", workers)
		}
	}
}

// TestParallelPowerLawEmergentEdges covers the NumEdges == 0 path, where
// the count emerges from Alpha (~3|V|) and must still be worker-invariant.
func TestParallelPowerLawEmergentEdges(t *testing.T) {
	cfg := PowerLawConfig{NumVertices: 2000, Alpha: 2.1, Seed: 9}
	var want uint64
	var wantEdges int
	for i, workers := range workerSweep {
		cfg.Workers = workers
		g, err := PowerLaw(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		fp := fingerprint(g)
		if i == 0 {
			want, wantEdges = fp, g.NumEdges()
			if wantEdges < cfg.NumVertices || wantEdges > 6*cfg.NumVertices {
				t.Fatalf("emergent edge count %d implausible for alpha=%v", wantEdges, cfg.Alpha)
			}
		} else if fp != want || g.NumEdges() != wantEdges {
			t.Fatalf("workers=%d graph differs from workers=1", workers)
		}
	}
}

// TestParallelPowerLawQuotaSqueeze drives the exact-target adjustment into
// its second (floor 0) phase: fewer target edges than non-sink vertices.
func TestParallelPowerLawQuotaSqueeze(t *testing.T) {
	cfg := PowerLawConfig{
		NumVertices: 1000, NumEdges: 300, Alpha: 2.0, Seed: 3, Workers: 2,
	}
	g, err := PowerLaw(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != cfg.NumEdges {
		t.Fatalf("got %d edges, want exactly %d", g.NumEdges(), cfg.NumEdges)
	}
}
