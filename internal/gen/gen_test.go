package gen

import (
	"math"
	"testing"
)

func TestPowerLawBasics(t *testing.T) {
	g, err := PowerLaw(PowerLawConfig{NumVertices: 2000, NumEdges: 10000, Alpha: 2.0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 2000 {
		t.Errorf("NumVertices = %d", g.NumVertices())
	}
	if g.NumEdges() != 10000 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
	for _, e := range g.Edges() {
		if e.Src == e.Dst {
			t.Fatal("self-loop generated")
		}
	}
}

func TestPowerLawDeterministic(t *testing.T) {
	cfg := PowerLawConfig{NumVertices: 500, NumEdges: 2000, Alpha: 2.0, Seed: 7}
	a, _ := PowerLaw(cfg)
	b, _ := PowerLaw(cfg)
	for i := range a.Edges() {
		if a.Edges()[i] != b.Edges()[i] {
			t.Fatalf("edge %d differs between identical seeds", i)
		}
	}
	cfg.Seed = 8
	c, _ := PowerLaw(cfg)
	diff := 0
	for i := range a.Edges() {
		if a.Edges()[i] != c.Edges()[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical graphs")
	}
}

func TestPowerLawSkew(t *testing.T) {
	g, err := PowerLaw(PowerLawConfig{NumVertices: 2000, NumEdges: 20000, Alpha: 2.0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s := g.ComputeStats()
	// A power-law graph's hub must have far more than average in-degree.
	if float64(s.MaxInDeg) < 20*s.AvgDeg {
		t.Errorf("max in-degree %d too small for power law (avg %v)", s.MaxInDeg, s.AvgDeg)
	}
}

func TestPowerLawAlphaControlsSkew(t *testing.T) {
	// Lower alpha -> heavier tail -> larger max degree (paper Table 4:
	// alpha 1.8 has 673M edges vs 39M at 2.2 for fixed |V|; at fixed |E|
	// the hub concentration still grows as alpha falls).
	flat, _ := PowerLaw(PowerLawConfig{NumVertices: 3000, NumEdges: 30000, Alpha: 2.2, Seed: 5})
	skewed, _ := PowerLaw(PowerLawConfig{NumVertices: 3000, NumEdges: 30000, Alpha: 1.6, Seed: 5})
	if skewed.ComputeStats().MaxInDeg <= flat.ComputeStats().MaxInDeg {
		t.Errorf("alpha=1.6 max in-degree %d not above alpha=2.2's %d",
			skewed.ComputeStats().MaxInDeg, flat.ComputeStats().MaxInDeg)
	}
}

func TestPowerLawSelfishFraction(t *testing.T) {
	g, err := PowerLaw(PowerLawConfig{NumVertices: 4000, NumEdges: 20000, Alpha: 2.0, SelfishFraction: 0.15, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(g.NumSelfish()) / float64(g.NumVertices())
	if frac < 0.14 {
		t.Errorf("selfish fraction %v below requested 0.15", frac)
	}
	if frac > 0.6 {
		t.Errorf("selfish fraction %v implausibly high", frac)
	}
}

func TestPowerLawValidation(t *testing.T) {
	if _, err := PowerLaw(PowerLawConfig{NumVertices: 1, NumEdges: 5, Alpha: 2}); err == nil {
		t.Error("expected error for 1 vertex")
	}
	if _, err := PowerLaw(PowerLawConfig{NumVertices: 10, NumEdges: 5, Alpha: 0}); err == nil {
		t.Error("expected error for alpha=0")
	}
	if _, err := PowerLaw(PowerLawConfig{NumVertices: 10, NumEdges: 5, Alpha: 2, SelfishFraction: 1.0}); err == nil {
		t.Error("expected error for selfish=1.0")
	}
}

func TestRoadStructure(t *testing.T) {
	g, err := Road(RoadConfig{Width: 10, Height: 8, WeightMu: 0.4, WeightSigma: 1.2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 80 {
		t.Errorf("NumVertices = %d, want 80", g.NumVertices())
	}
	// Lattice edges: (W-1)*H horizontal + W*(H-1) vertical, both directions.
	want := 2 * ((10-1)*8 + 10*(8-1))
	if g.NumEdges() != want {
		t.Errorf("NumEdges = %d, want %d", g.NumEdges(), want)
	}
	// All weights positive; symmetric pairs share weights.
	for i := 0; i < g.NumEdges(); i += 2 {
		a, b := g.Edge(i), g.Edge(i+1)
		if a.Weight <= 0 {
			t.Fatal("non-positive weight")
		}
		if a.Src != b.Dst || a.Dst != b.Src || a.Weight != b.Weight {
			t.Fatal("asymmetric pair")
		}
	}
	// Road graphs are low-degree.
	if g.MaxDegree() > 10 {
		t.Errorf("road max degree %d too high", g.MaxDegree())
	}
}

func TestRoadShortcuts(t *testing.T) {
	base, _ := Road(RoadConfig{Width: 6, Height: 6, Seed: 1})
	withCuts, _ := Road(RoadConfig{Width: 6, Height: 6, ShortcutFrac: 0.2, Seed: 1})
	if withCuts.NumEdges() <= base.NumEdges() {
		t.Error("shortcuts did not add edges")
	}
}

func TestRoadValidation(t *testing.T) {
	if _, err := Road(RoadConfig{Width: 1, Height: 5}); err == nil {
		t.Error("expected error for 1-wide grid")
	}
}

func TestBipartite(t *testing.T) {
	g, err := Bipartite(BipartiteConfig{NumUsers: 100, NumItems: 20, NumRatings: 500, ItemAlpha: 1.2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 120 {
		t.Errorf("NumVertices = %d", g.NumVertices())
	}
	if g.NumEdges() != 1000 {
		t.Errorf("NumEdges = %d, want 1000 (bidirectional)", g.NumEdges())
	}
	for _, e := range g.Edges() {
		uSide := e.Src < 100
		iSide := e.Dst >= 100
		if uSide != iSide && (e.Src >= 100) == (e.Dst >= 100) {
			t.Fatal("edge within one side of the bipartition")
		}
		if e.Weight < 1 || e.Weight > 5 {
			t.Fatalf("rating %v outside [1,5]", e.Weight)
		}
	}
}

func TestBipartiteValidation(t *testing.T) {
	if _, err := Bipartite(BipartiteConfig{NumUsers: 0, NumItems: 5, NumRatings: 5, ItemAlpha: 1}); err == nil {
		t.Error("expected error for zero users")
	}
}

func TestCommunity(t *testing.T) {
	g, err := Community(CommunityConfig{NumVertices: 1000, NumCommunities: 20, IntraDegree: 6, InterDegree: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1000 {
		t.Errorf("NumVertices = %d", g.NumVertices())
	}
	if g.NumEdges() == 0 {
		t.Fatal("no edges generated")
	}
	// Symmetric by construction.
	if g.NumEdges()%2 != 0 {
		t.Error("edge count should be even (bidirectional)")
	}
}

func TestCommunityValidation(t *testing.T) {
	if _, err := Community(CommunityConfig{NumVertices: 5, NumCommunities: 10, IntraDegree: 1}); err == nil {
		t.Error("expected error for more communities than vertices")
	}
}

func TestUniform(t *testing.T) {
	g, err := Uniform(100, 500, 9)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 500 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
	s := g.ComputeStats()
	if s.MaxInDeg > 30 {
		t.Errorf("uniform graph too skewed: max in-degree %d", s.MaxInDeg)
	}
}

func TestWithLogNormalWeights(t *testing.T) {
	g, _ := Uniform(50, 200, 1)
	w := WithLogNormalWeights(g, 0.4, 1.2, 2)
	if w.NumEdges() != g.NumEdges() || w.NumVertices() != g.NumVertices() {
		t.Fatal("topology changed")
	}
	varied := false
	for i, e := range w.Edges() {
		if e.Src != g.Edge(i).Src || e.Dst != g.Edge(i).Dst {
			t.Fatal("edge endpoints changed")
		}
		if e.Weight <= 0 || math.IsNaN(e.Weight) {
			t.Fatal("bad weight")
		}
		if e.Weight != 1 {
			varied = true
		}
	}
	if !varied {
		t.Error("weights were not redrawn")
	}
}
