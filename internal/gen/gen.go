// Package gen provides deterministic synthetic graph generators. The paper
// evaluates on real web/social graphs (GWeb, LJournal, Wiki, UK-2005,
// Twitter), a road network (RoadCA), a co-author graph (DBLP), a bipartite
// rating graph (SYN-GL) and synthetic power-law graphs with varying Zipf
// constant alpha. Real traces are not redistributable, so each generator
// here reproduces the structural properties the paper's measurements depend
// on: degree skew, |E|/|V| ratio, and the fraction of "selfish" vertices
// (vertices with no out-edges).
package gen

import (
	"fmt"
	"math"

	"imitator/internal/graph"
	"imitator/internal/rng"
)

// PowerLawConfig parameterizes a directed power-law graph. Per-vertex
// out-degrees and in-degree attractiveness are drawn from a Pareto tail
// with index (Alpha-1), matching the paper's synthetic graphs where a
// smaller Zipf constant alpha yields a fatter tail: bigger hubs and, at
// fixed |V|, more edges (Table 4).
type PowerLawConfig struct {
	NumVertices int
	// NumEdges, when positive, is the exact edge count to emit (degrees are
	// scaled to the target). When zero, the edge count emerges from Alpha.
	NumEdges int
	Alpha    float64 // power-law exponent; the paper sweeps 1.8..2.2
	// SelfishFraction of the vertices become pure sinks (no out-edges).
	// GWeb and LJournal have >10% such vertices (Fig 3a).
	SelfishFraction float64
	Seed            uint64
	// Workers selects the generation path. 0 keeps the original sequential
	// emission, byte-compatible with every graph checked into benchmark
	// baselines. Any value >= 1 switches to the sharded deterministic path
	// (see parallel.go), whose output depends only on Seed — the same graph
	// comes back for Workers 1, 2 or 64 — but differs from the Workers == 0
	// graph because edges are planned per-vertex instead of drawn from one
	// sequential stream.
	Workers int
}

// PowerLaw generates a directed power-law graph.
func PowerLaw(cfg PowerLawConfig) (*graph.Graph, error) {
	if cfg.NumVertices <= 1 {
		return nil, fmt.Errorf("gen: power-law needs >= 2 vertices, got %d", cfg.NumVertices)
	}
	if cfg.Alpha <= 1 {
		return nil, fmt.Errorf("gen: alpha must exceed 1, got %v", cfg.Alpha)
	}
	if cfg.SelfishFraction < 0 || cfg.SelfishFraction >= 1 {
		return nil, fmt.Errorf("gen: selfish fraction %v outside [0,1)", cfg.SelfishFraction)
	}
	if cfg.Workers != 0 {
		return powerLawParallel(cfg)
	}
	r := rng.New(cfg.Seed)
	n := cfg.NumVertices

	// Vertices in the top SelfishFraction of a random permutation become
	// sinks: they receive edges but emit none.
	sink := make([]bool, n)
	numSinks := int(cfg.SelfishFraction * float64(n))
	perm := r.Perm(n)
	for _, v := range perm[:numSinks] {
		sink[v] = true
	}

	// A degree distribution P(d) ~ d^-alpha corresponds, in rank space, to
	// Zipf's law with exponent s = 1/(alpha-1): the vertex of rank i has
	// weight ~ (i+1)^-s. A smaller alpha therefore yields a steeper rank
	// curve — bigger hubs — exactly as in the paper's Table 4 sweep. Hub
	// ranks are assigned via random permutations so hubs are spread across
	// the id space (and across hash partitions), as in crawled datasets.
	s := 1 / (cfg.Alpha - 1)
	zipfWeight := func(rank int) float64 { return math.Pow(float64(rank+1), -s) }

	// Out-degree sequence over non-sink vertices.
	outRank := r.Perm(n)
	outDeg := make([]float64, n)
	sum := 0.0
	for v := 0; v < n; v++ {
		if sink[v] {
			continue
		}
		outDeg[v] = zipfWeight(outRank[v])
		sum += outDeg[v]
	}
	scale := float64(3*n) / sum // default |E| ~ 3|V| when no target given
	if cfg.NumEdges > 0 {
		scale = float64(cfg.NumEdges) / sum
	}

	// In-degree attractiveness: an independent rank assignment, sampled via
	// binary search over the prefix-sum table.
	inRank := r.Perm(n)
	prefix := make([]float64, n+1)
	for v := 0; v < n; v++ {
		prefix[v+1] = prefix[v] + zipfWeight(inRank[v])
	}
	total := prefix[n]
	sampleDst := func() graph.VertexID {
		x := r.Float64() * total
		lo, hi := 0, n
		for lo < hi {
			mid := (lo + hi) / 2
			if prefix[mid+1] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return graph.VertexID(lo)
	}

	capHint := cfg.NumEdges
	if capHint == 0 {
		capHint = int(sum * scale)
	}
	edges := make([]graph.Edge, 0, capHint)
	emit := func(src graph.VertexID) bool {
		for tries := 0; tries < 16; tries++ {
			if dst := sampleDst(); dst != src {
				edges = append(edges, graph.Edge{Src: src, Dst: dst, Weight: 1})
				return true
			}
		}
		return false
	}
	for v := 0; v < n; v++ {
		if sink[v] {
			continue
		}
		d := outDeg[v] * scale
		di := int(d)
		if r.Float64() < d-float64(di) {
			di++
		}
		if di == 0 {
			di = 1 // every non-sink vertex emits at least one edge
		}
		for i := 0; i < di; i++ {
			if cfg.NumEdges > 0 && len(edges) >= cfg.NumEdges {
				break
			}
			emit(graph.VertexID(v))
		}
	}
	// Top up to the exact target from random non-sink sources.
	for cfg.NumEdges > 0 && len(edges) < cfg.NumEdges {
		v := graph.VertexID(r.Intn(n))
		if !sink[v] {
			emit(v)
		}
	}
	return graph.New(n, edges)
}

// RoadConfig parameterizes a road-like network: a 2D lattice with a few
// random shortcuts, log-normally weighted (paper §6.1 assigns RoadCA
// weights from LogNormal(mu=0.4, sigma=1.2)).
type RoadConfig struct {
	Width, Height int
	ShortcutFrac  float64 // extra edges as a fraction of lattice edges
	WeightMu      float64
	WeightSigma   float64
	Seed          uint64
	// Workers: 0 = sequential legacy path, >= 1 = deterministic parallel
	// path (output independent of the worker count; see parallel.go).
	Workers int
}

// Road generates a bidirectional lattice road network with weights.
func Road(cfg RoadConfig) (*graph.Graph, error) {
	if cfg.Width < 2 || cfg.Height < 2 {
		return nil, fmt.Errorf("gen: road grid must be at least 2x2, got %dx%d", cfg.Width, cfg.Height)
	}
	if cfg.Workers != 0 {
		return roadParallel(cfg)
	}
	r := rng.New(cfg.Seed)
	n := cfg.Width * cfg.Height
	at := func(x, y int) graph.VertexID { return graph.VertexID(y*cfg.Width + x) }
	w := func() float64 {
		if cfg.WeightSigma == 0 && cfg.WeightMu == 0 {
			return 1
		}
		return r.LogNormal(cfg.WeightMu, cfg.WeightSigma)
	}
	var edges []graph.Edge
	addBoth := func(a, b graph.VertexID) {
		wt := w()
		edges = append(edges, graph.Edge{Src: a, Dst: b, Weight: wt}, graph.Edge{Src: b, Dst: a, Weight: wt})
	}
	for y := 0; y < cfg.Height; y++ {
		for x := 0; x < cfg.Width; x++ {
			if x+1 < cfg.Width {
				addBoth(at(x, y), at(x+1, y))
			}
			if y+1 < cfg.Height {
				addBoth(at(x, y), at(x, y+1))
			}
		}
	}
	shortcuts := int(cfg.ShortcutFrac * float64(len(edges)/2))
	for i := 0; i < shortcuts; i++ {
		a := graph.VertexID(r.Intn(n))
		b := graph.VertexID(r.Intn(n))
		if a != b {
			addBoth(a, b)
		}
	}
	return graph.New(n, edges)
}

// BipartiteConfig parameterizes a user-item rating graph for ALS (SYN-GL in
// the paper is a synthetic GraphLab collaborative-filtering input).
type BipartiteConfig struct {
	NumUsers, NumItems int
	NumRatings         int
	ItemAlpha          float64 // item-popularity skew
	Seed               uint64
}

// Bipartite generates a bipartite rating graph. Vertices [0, NumUsers) are
// users, [NumUsers, NumUsers+NumItems) are items. Each rating contributes an
// edge in both directions (ALS gathers over both sides), with the rating
// value in [1, 5] as the weight.
func Bipartite(cfg BipartiteConfig) (*graph.Graph, error) {
	if cfg.NumUsers <= 0 || cfg.NumItems <= 0 {
		return nil, fmt.Errorf("gen: bipartite needs users and items, got %d/%d", cfg.NumUsers, cfg.NumItems)
	}
	r := rng.New(cfg.Seed)
	zItem := rng.NewZipf(r, cfg.NumItems, cfg.ItemAlpha)
	n := cfg.NumUsers + cfg.NumItems
	edges := make([]graph.Edge, 0, 2*cfg.NumRatings)
	for i := 0; i < cfg.NumRatings; i++ {
		u := graph.VertexID(r.Intn(cfg.NumUsers))
		it := graph.VertexID(cfg.NumUsers + zItem.Next())
		rating := float64(1 + r.Intn(5))
		edges = append(edges,
			graph.Edge{Src: u, Dst: it, Weight: rating},
			graph.Edge{Src: it, Dst: u, Weight: rating})
	}
	return graph.New(n, edges)
}

// CommunityConfig parameterizes a DBLP-like community graph: dense clusters
// with sparse inter-cluster edges, symmetric.
type CommunityConfig struct {
	NumVertices    int
	NumCommunities int
	IntraDegree    float64 // expected intra-community out-degree per vertex
	InterDegree    float64 // expected cross-community out-degree per vertex
	Seed           uint64
	// Workers: 0 = sequential legacy path, >= 1 = deterministic parallel
	// path (output independent of the worker count; see parallel.go).
	Workers int
}

// Community generates a community-structured graph.
func Community(cfg CommunityConfig) (*graph.Graph, error) {
	if cfg.NumVertices <= 0 || cfg.NumCommunities <= 0 {
		return nil, fmt.Errorf("gen: community needs vertices and communities")
	}
	if cfg.NumCommunities > cfg.NumVertices {
		return nil, fmt.Errorf("gen: more communities (%d) than vertices (%d)", cfg.NumCommunities, cfg.NumVertices)
	}
	if cfg.Workers != 0 {
		return communityParallel(cfg)
	}
	r := rng.New(cfg.Seed)
	n := cfg.NumVertices
	comm := make([]int, n)
	for v := range comm {
		comm[v] = r.Intn(cfg.NumCommunities)
	}
	// Bucket members per community for intra sampling.
	members := make([][]graph.VertexID, cfg.NumCommunities)
	for v, c := range comm {
		members[c] = append(members[c], graph.VertexID(v))
	}
	var edges []graph.Edge
	addBoth := func(a, b graph.VertexID) {
		edges = append(edges, graph.Edge{Src: a, Dst: b, Weight: 1}, graph.Edge{Src: b, Dst: a, Weight: 1})
	}
	for v := 0; v < n; v++ {
		c := comm[v]
		intra := int(cfg.IntraDegree/2 + 0.5)
		for i := 0; i < intra; i++ {
			peers := members[c]
			if len(peers) < 2 {
				break
			}
			u := peers[r.Intn(len(peers))]
			if u != graph.VertexID(v) {
				addBoth(graph.VertexID(v), u)
			}
		}
		inter := cfg.InterDegree / 2
		if r.Float64() < inter-float64(int(inter)) {
			inter++
		}
		for i := 0; i < int(inter); i++ {
			u := graph.VertexID(r.Intn(n))
			if u != graph.VertexID(v) && comm[u] != c {
				addBoth(graph.VertexID(v), u)
			}
		}
	}
	return graph.New(n, edges)
}

// UniformConfig parameterizes Erdős–Rényi generation for UniformGraph.
type UniformConfig struct {
	NumVertices int
	NumEdges    int
	Seed        uint64
	// Workers: 0 = sequential legacy path (identical to Uniform), >= 1 =
	// deterministic parallel path (output independent of the worker count).
	Workers int
}

// UniformGraph is the config form of Uniform, adding the parallel path.
func UniformGraph(cfg UniformConfig) (*graph.Graph, error) {
	if cfg.Workers != 0 {
		if cfg.NumVertices <= 1 {
			return nil, fmt.Errorf("gen: uniform needs >= 2 vertices, got %d", cfg.NumVertices)
		}
		return uniformParallel(cfg)
	}
	return Uniform(cfg.NumVertices, cfg.NumEdges, cfg.Seed)
}

// Uniform generates a uniform random directed graph (Erdős–Rényi G(n, m)),
// useful for tests where skew is unwanted.
func Uniform(numVertices, numEdges int, seed uint64) (*graph.Graph, error) {
	if numVertices <= 1 {
		return nil, fmt.Errorf("gen: uniform needs >= 2 vertices, got %d", numVertices)
	}
	r := rng.New(seed)
	edges := make([]graph.Edge, 0, numEdges)
	for len(edges) < numEdges {
		src := graph.VertexID(r.Intn(numVertices))
		dst := graph.VertexID(r.Intn(numVertices))
		if src != dst {
			edges = append(edges, graph.Edge{Src: src, Dst: dst, Weight: 1})
		}
	}
	return graph.New(numVertices, edges)
}

// WithLogNormalWeights returns a copy of g whose edge weights are redrawn
// from LogNormal(mu, sigma); used to make unweighted graphs usable by SSSP
// as the paper does for RoadCA.
func WithLogNormalWeights(g *graph.Graph, mu, sigma float64, seed uint64) *graph.Graph {
	r := rng.New(seed)
	m := g.NumEdges()
	src := make([]graph.VertexID, m)
	dst := make([]graph.VertexID, m)
	wt := make([]float64, m)
	g.EachEdge(func(i int, e graph.Edge) {
		src[i], dst[i] = e.Src, e.Dst
		wt[i] = r.LogNormal(mu, sigma)
	})
	out, err := graph.NewFromSOA(g.NumVertices(), src, dst, wt)
	if err != nil {
		panic(err) // endpoints come from a valid graph
	}
	return out
}
