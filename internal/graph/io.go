package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadEdgeList parses the common whitespace-separated edge-list format used
// by SNAP and WebGraph exports:
//
//	# comment lines start with '#' or '%'
//	<src> <dst> [weight]
//
// Vertex ids may be sparse; they are densified in first-appearance order
// unless numVertices > 0, in which case ids must already be dense in
// [0, numVertices). Missing weights default to 1.
func ReadEdgeList(r io.Reader, numVertices int) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var edges []Edge
	remap := map[uint64]VertexID{}
	next := VertexID(0)
	resolve := func(raw uint64) (VertexID, error) {
		if numVertices > 0 {
			if raw >= uint64(numVertices) {
				return 0, fmt.Errorf("graph: vertex %d outside declared range %d", raw, numVertices)
			}
			return VertexID(raw), nil
		}
		if id, ok := remap[raw]; ok {
			return id, nil
		}
		id := next
		remap[raw] = id
		next++
		return id, nil
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want 'src dst [weight]', got %q", lineNo, line)
		}
		rawSrc, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad src: %w", lineNo, err)
		}
		rawDst, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad dst: %w", lineNo, err)
		}
		weight := 1.0
		if len(fields) >= 3 {
			weight, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight: %w", lineNo, err)
			}
		}
		src, err := resolve(rawSrc)
		if err != nil {
			return nil, err
		}
		dst, err := resolve(rawDst)
		if err != nil {
			return nil, err
		}
		edges = append(edges, Edge{Src: src, Dst: dst, Weight: weight})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: read: %w", err)
	}
	n := numVertices
	if n == 0 {
		n = int(next)
	}
	return New(n, edges)
}

// WriteEdgeList writes the graph in the format ReadEdgeList parses,
// emitting weights only when some edge's weight differs from 1.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	weighted := g.Weighted()
	g.EachEdge(func(_ int, e Edge) {
		if weighted {
			fmt.Fprintf(bw, "%d %d %g\n", e.Src, e.Dst, e.Weight)
		} else {
			fmt.Fprintf(bw, "%d %d\n", e.Src, e.Dst)
		}
	})
	return bw.Flush()
}
