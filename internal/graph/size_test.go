package graph

import (
	"errors"
	"math"
	"testing"
)

// The compact layout's index widths are hard limits at paper scale: Twitter
// (1.47B edges) is within 1.5x of int32 overflow, so the constructors must
// reject oversized inputs loudly instead of letting a narrowing conversion
// wrap. The |V| path is testable for real (a huge count with zero edges
// allocates nothing); the |E| path would need >2^31 edges of backing memory,
// so it is exercised white-box through checkSize.

func TestNewRejectsTooManyVertices(t *testing.T) {
	_, err := New(1<<33, nil)
	if !errors.Is(err, ErrGraphTooLarge) {
		t.Fatalf("New(1<<33, nil) err = %v, want ErrGraphTooLarge", err)
	}
	_, err = NewFromSOA(1<<33, nil, nil, nil)
	if !errors.Is(err, ErrGraphTooLarge) {
		t.Fatalf("NewFromSOA(1<<33, ...) err = %v, want ErrGraphTooLarge", err)
	}
}

func TestCheckSizeLimits(t *testing.T) {
	cases := []struct {
		name     string
		vertices int
		edges    int
		wantErr  bool
	}{
		{"small", 10, 20, false},
		{"max vertices exactly", 1 << 32, 0, false},
		{"one vertex too many", 1<<32 + 1, 0, true},
		{"max edges exactly", 10, math.MaxInt32, false},
		{"one edge too many", 10, math.MaxInt32 + 1, true},
	}
	for _, tc := range cases {
		err := checkSize(tc.vertices, tc.edges)
		if got := err != nil; got != tc.wantErr {
			t.Errorf("%s: checkSize(%d, %d) err = %v, wantErr %v",
				tc.name, tc.vertices, tc.edges, err, tc.wantErr)
		}
		if err != nil && !errors.Is(err, ErrGraphTooLarge) {
			t.Errorf("%s: err %v does not wrap ErrGraphTooLarge", tc.name, err)
		}
	}
}

func TestBuildCSRBackstopPanics(t *testing.T) {
	// The panic guard itself can't be tripped without >2^31 keys, but it
	// must not fire on legitimate inputs near the boundary path.
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("buildCSRKeys panicked on a small input: %v", r)
		}
	}()
	c := buildCSRKeys(3, []uint16{2, 0, 2, 1})
	if got, want := len(c.edgeIdx), 4; got != want {
		t.Fatalf("edgeIdx length = %d, want %d", got, want)
	}
}
