package graph

import (
	"errors"
	"testing"
	"testing/quick"

	"imitator/internal/rng"
)

func sample() *Graph {
	// 1->2, 1->3, 2->3, 3->1, 4->3, 4 has no in-edges, 0 isolated.
	return MustNew(5, []Edge{
		{Src: 1, Dst: 2, Weight: 1},
		{Src: 1, Dst: 3, Weight: 2},
		{Src: 2, Dst: 3, Weight: 3},
		{Src: 3, Dst: 1, Weight: 4},
		{Src: 4, Dst: 3, Weight: 5},
	})
}

func TestCounts(t *testing.T) {
	g := sample()
	if g.NumVertices() != 5 {
		t.Errorf("NumVertices = %d, want 5", g.NumVertices())
	}
	if g.NumEdges() != 5 {
		t.Errorf("NumEdges = %d, want 5", g.NumEdges())
	}
}

func TestDegrees(t *testing.T) {
	g := sample()
	wantIn := []int{0, 1, 1, 3, 0}
	wantOut := []int{0, 2, 1, 1, 1}
	for v := 0; v < 5; v++ {
		if got := g.InDegree(VertexID(v)); got != wantIn[v] {
			t.Errorf("InDegree(%d) = %d, want %d", v, got, wantIn[v])
		}
		if got := g.OutDegree(VertexID(v)); got != wantOut[v] {
			t.Errorf("OutDegree(%d) = %d, want %d", v, got, wantOut[v])
		}
	}
}

func TestInEdges(t *testing.T) {
	g := sample()
	var weights []float64
	g.InEdges(3, func(_ int, e Edge) {
		if e.Dst != 3 {
			t.Errorf("InEdges(3) yielded edge with Dst %d", e.Dst)
		}
		weights = append(weights, e.Weight)
	})
	if len(weights) != 3 {
		t.Fatalf("InEdges(3) yielded %d edges, want 3", len(weights))
	}
	sum := weights[0] + weights[1] + weights[2]
	if sum != 2+3+5 {
		t.Errorf("in-edge weight sum = %v, want 10", sum)
	}
}

func TestOutEdges(t *testing.T) {
	g := sample()
	count := 0
	g.OutEdges(1, func(_ int, e Edge) {
		if e.Src != 1 {
			t.Errorf("OutEdges(1) yielded edge with Src %d", e.Src)
		}
		count++
	})
	if count != 2 {
		t.Errorf("OutEdges(1) yielded %d edges, want 2", count)
	}
}

func TestSelfish(t *testing.T) {
	g := sample()
	if !g.IsSelfish(0) || !g.IsSelfish(4) == false && g.IsSelfish(4) {
		// vertex 4 has out-edge to 3, so not selfish; 0 has none.
	}
	if !g.IsSelfish(0) {
		t.Error("vertex 0 should be selfish (isolated)")
	}
	if g.IsSelfish(4) {
		t.Error("vertex 4 has an out-edge; not selfish")
	}
	if got := g.NumSelfish(); got != 1 {
		t.Errorf("NumSelfish = %d, want 1", got)
	}
}

func TestOutOfRangeRejected(t *testing.T) {
	_, err := New(2, []Edge{{Src: 0, Dst: 5}})
	if !errors.Is(err, ErrVertexOutOfRange) {
		t.Fatalf("err = %v, want ErrVertexOutOfRange", err)
	}
}

func TestNegativeVertexCountRejected(t *testing.T) {
	if _, err := New(-1, nil); err == nil {
		t.Fatal("expected error for negative vertex count")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := MustNew(0, nil)
	if g.NumVertices() != 0 || g.NumEdges() != 0 || g.NumSelfish() != 0 {
		t.Error("empty graph should have zero counts")
	}
}

func TestSelfLoop(t *testing.T) {
	g := MustNew(1, []Edge{{Src: 0, Dst: 0, Weight: 1}})
	if g.InDegree(0) != 1 || g.OutDegree(0) != 1 {
		t.Error("self-loop should count in both degree directions")
	}
}

func TestStats(t *testing.T) {
	s := sample().ComputeStats()
	if s.MaxInDeg != 3 || s.MaxOutDeg != 2 || s.NumSelfish != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.AvgDeg != 1.0 {
		t.Errorf("AvgDeg = %v, want 1.0", s.AvgDeg)
	}
}

func TestMaxDegree(t *testing.T) {
	if got := sample().MaxDegree(); got != 4 { // vertex 3: in 3 + out 1
		t.Errorf("MaxDegree = %d, want 4", got)
	}
}

func TestDegreeHistogram(t *testing.T) {
	degrees, counts := sample().DegreeHistogram()
	// in-degrees: [0,1,1,3,0] -> {0:2, 1:2, 3:1}
	if len(degrees) != 3 || degrees[0] != 0 || counts[0] != 2 || degrees[2] != 3 || counts[2] != 1 {
		t.Errorf("histogram = %v %v", degrees, counts)
	}
}

// Property: CSR traversal covers every edge exactly once, in both directions.
func TestCSRCoversAllEdges(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(40)
		m := r.Intn(200)
		edges := make([]Edge, m)
		for i := range edges {
			edges[i] = Edge{Src: VertexID(r.Intn(n)), Dst: VertexID(r.Intn(n)), Weight: 1}
		}
		g := MustNew(n, edges)
		seenIn := make([]bool, m)
		seenOut := make([]bool, m)
		for v := 0; v < n; v++ {
			g.InEdges(VertexID(v), func(i int, e Edge) {
				if seenIn[i] || e.Dst != VertexID(v) {
					t.Errorf("bad in-edge visit %d", i)
				}
				seenIn[i] = true
			})
			g.OutEdges(VertexID(v), func(i int, e Edge) {
				if seenOut[i] || e.Src != VertexID(v) {
					t.Errorf("bad out-edge visit %d", i)
				}
				seenOut[i] = true
			})
		}
		for i := 0; i < m; i++ {
			if !seenIn[i] || !seenOut[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: degree sums equal edge count.
func TestDegreeSumsEqualEdges(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(30)
		m := r.Intn(100)
		edges := make([]Edge, m)
		for i := range edges {
			edges[i] = Edge{Src: VertexID(r.Intn(n)), Dst: VertexID(r.Intn(n))}
		}
		g := MustNew(n, edges)
		sumIn, sumOut := 0, 0
		for v := 0; v < n; v++ {
			sumIn += g.InDegree(VertexID(v))
			sumOut += g.OutDegree(VertexID(v))
		}
		return sumIn == m && sumOut == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
