package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"imitator/internal/rng"
)

func TestReadEdgeListBasic(t *testing.T) {
	in := `# a comment
% another comment
0 1
1 2 2.5

2 0
`
	g, err := ReadEdgeList(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	if g.Edge(1).Weight != 2.5 {
		t.Errorf("weight = %v", g.Edge(1).Weight)
	}
	if g.Edge(0).Weight != 1 {
		t.Errorf("default weight = %v", g.Edge(0).Weight)
	}
}

func TestReadEdgeListDensifies(t *testing.T) {
	// Sparse ids 100, 5000 should densify in first-appearance order.
	g, err := ReadEdgeList(strings.NewReader("100 5000\n5000 100\n"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 2 {
		t.Fatalf("NumVertices = %d", g.NumVertices())
	}
	if g.Edge(0).Src != 0 || g.Edge(0).Dst != 1 {
		t.Errorf("densified edge = %+v", g.Edge(0))
	}
}

func TestReadEdgeListDeclaredRange(t *testing.T) {
	if _, err := ReadEdgeList(strings.NewReader("0 9\n"), 5); err == nil {
		t.Error("out-of-range vertex accepted")
	}
	g, err := ReadEdgeList(strings.NewReader("0 4\n"), 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 5 {
		t.Errorf("NumVertices = %d, want declared 5", g.NumVertices())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for _, in := range []string{"0\n", "x 1\n", "1 y\n", "1 2 z\n"} {
		if _, err := ReadEdgeList(strings.NewReader(in), 0); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(30)
		m := 1 + r.Intn(100)
		edges := make([]Edge, m)
		for i := range edges {
			w := 1.0
			if r.Intn(2) == 0 {
				w = float64(1+r.Intn(10)) / 2
			}
			edges[i] = Edge{Src: VertexID(r.Intn(n)), Dst: VertexID(r.Intn(n)), Weight: w}
		}
		g := MustNew(n, edges)
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			return false
		}
		// Round-trip with declared vertex count keeps ids stable.
		back, err := ReadEdgeList(&buf, n)
		if err != nil {
			return false
		}
		if back.NumEdges() != m {
			return false
		}
		for i := range edges {
			a, b := g.Edge(i), back.Edge(i)
			if a.Src != b.Src || a.Dst != b.Dst || a.Weight != b.Weight {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
