package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList hardens the parser: arbitrary input must either parse
// into a valid graph or return an error — never panic, never produce
// out-of-range endpoints.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2 2.5\n# comment\n")
	f.Add("")
	f.Add("x y\n")
	f.Add("4294967295 0\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(strings.NewReader(input), 0)
		if err != nil {
			return
		}
		for _, e := range g.Edges() {
			if int(e.Src) >= g.NumVertices() || int(e.Dst) >= g.NumVertices() {
				t.Fatalf("edge endpoint out of range: %+v with %d vertices", e, g.NumVertices())
			}
		}
		// A successfully parsed graph must round-trip.
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadEdgeList(&buf, g.NumVertices())
		if err != nil {
			t.Fatalf("round-trip parse failed: %v", err)
		}
		if back.NumEdges() != g.NumEdges() {
			t.Fatalf("round-trip edges %d != %d", back.NumEdges(), g.NumEdges())
		}
	})
}
