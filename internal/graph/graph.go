// Package graph defines the input graph representation shared by every
// component in the repository: generators produce Graphs, partitioners
// consume them, and the engines build their per-node local structures from
// partitioned views.
//
// Graphs are directed and optionally weighted. Vertices are dense integers
// [0, NumVertices). The canonical edge order is insertion order — edge i is
// the i-th edge handed to the constructor — and every traversal (EachEdge,
// InEdges, OutEdges) replays that order, which is what keeps downstream
// floating-point reductions bit-identical across layout changes.
//
// Memory layout: endpoints live in structure-of-arrays form, width-reduced
// to uint16 when the vertex count permits; weights are elided entirely for
// unweighted graphs; and both compressed adjacencies (CSR by destination and
// by source) index back into the canonical arrays. The legacy []Edge view is
// materialized only on demand (Edges) — the engine paths never need it.
package graph

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"imitator/internal/hostpar"
)

// VertexID identifies a vertex. Dense in [0, NumVertices).
type VertexID uint32

// Edge is a directed edge Src -> Dst with an optional weight (1.0 when the
// graph is unweighted).
type Edge struct {
	Src, Dst VertexID
	Weight   float64
}

// narrowLimit is the vertex count at or below which endpoints fit uint16.
const narrowLimit = 1 << 16

// Graph is an immutable directed graph. Build one with New or NewFromSOA,
// or via the generators in internal/gen.
type Graph struct {
	numVertices int
	numEdges    int

	// Canonical endpoint arrays in insertion order. Exactly one width is
	// populated: the 16-bit pair when numVertices <= narrowLimit, else the
	// 32-bit pair.
	src32, dst32 []VertexID
	src16, dst16 []uint16
	// wt holds per-edge weights; nil when every weight is 1 (unweighted).
	wt []float64

	inCSR  csr // edges grouped by Dst
	outCSR csr // edges grouped by Src

	// edgesView is the legacy []Edge materialization, built lazily by
	// Edges() for callers that want a flat slice; engine paths use EachEdge
	// and the indexed accessors instead, so large graphs never pay for it.
	edgesOnce sync.Once
	edgesView []Edge
}

// csr is a compressed adjacency: offsets[v]..offsets[v+1] index into edgeIdx,
// which points back into the canonical edge arrays. Degrees are derived from
// offsets, so no separate degree arrays are kept.
type csr struct {
	offsets []int32
	edgeIdx []int32
}

// ErrVertexOutOfRange reports an edge endpoint outside [0, NumVertices).
var ErrVertexOutOfRange = errors.New("graph: vertex id out of range")

// ErrGraphTooLarge reports a graph that does not fit the compact layout:
// more edges than the int32 CSR indexes can address, or more vertices than
// the uint32 endpoint arrays can name. At the paper's Twitter scale (1.47B
// edges) |E| sits within 1.5× of the int32 limit, so the constructors must
// reject the overflow loudly rather than let a narrowing conversion wrap.
var ErrGraphTooLarge = errors.New("graph: graph exceeds the compact layout's index width")

const (
	// maxEdges is the largest edge count the int32 CSR offset/index arrays
	// can address.
	maxEdges = math.MaxInt32
	// maxVertices is the largest vertex count the uint32 endpoint arrays can
	// name: ids are dense in [0, NumVertices), so NumVertices may reach 1<<32.
	maxVertices = 1 << 32
)

// checkSize validates the counts against the layout limits before any
// allocation; both constructors call it first.
func checkSize(numVertices, numEdges int) error {
	if int64(numVertices) > maxVertices {
		return fmt.Errorf("%w: %d vertices exceed the uint32 endpoint width (max %d)",
			ErrGraphTooLarge, numVertices, int64(maxVertices))
	}
	if int64(numEdges) > maxEdges {
		return fmt.Errorf("%w: %d edges exceed the int32 CSR index width (max %d)",
			ErrGraphTooLarge, numEdges, int64(maxEdges))
	}
	return nil
}

// New builds a graph from an edge list. It validates endpoints, converts the
// list into the compact layout and builds both adjacency indexes; the input
// slice is not retained.
func New(numVertices int, edges []Edge) (*Graph, error) {
	if numVertices < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", numVertices)
	}
	if err := checkSize(numVertices, len(edges)); err != nil {
		return nil, err
	}
	for i, e := range edges {
		if int(e.Src) >= numVertices || int(e.Dst) >= numVertices {
			return nil, fmt.Errorf("%w: edge %d (%d->%d) with %d vertices",
				ErrVertexOutOfRange, i, e.Src, e.Dst, numVertices)
		}
	}
	g := &Graph{numVertices: numVertices, numEdges: len(edges)}
	m := len(edges)
	weighted := false
	for i := range edges {
		if edges[i].Weight != 1 {
			weighted = true
			break
		}
	}
	if weighted {
		g.wt = make([]float64, m)
	}
	if numVertices <= narrowLimit {
		g.src16 = make([]uint16, m)
		g.dst16 = make([]uint16, m)
		for i := range edges {
			g.src16[i] = uint16(edges[i].Src)
			g.dst16[i] = uint16(edges[i].Dst)
			if weighted {
				g.wt[i] = edges[i].Weight
			}
		}
	} else {
		g.src32 = make([]VertexID, m)
		g.dst32 = make([]VertexID, m)
		for i := range edges {
			g.src32[i] = edges[i].Src
			g.dst32[i] = edges[i].Dst
			if weighted {
				g.wt[i] = edges[i].Weight
			}
		}
	}
	g.buildIndexes()
	return g, nil
}

// MustNew is New but panics on error; for tests and generators whose inputs
// are valid by construction.
func MustNew(numVertices int, edges []Edge) *Graph {
	g, err := New(numVertices, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// NewFromSOA builds a graph directly from structure-of-arrays endpoint
// slices, the form the parallel generators emit; it avoids ever
// materializing the 16-bytes-per-edge []Edge list. wt may be nil (all
// weights 1) or len(src) weights — a non-nil slice whose entries are all 1
// is elided. Ownership of the slices transfers to the graph; callers must
// not mutate them afterwards (the 32-bit pair is retained as-is when the
// vertex count needs it).
func NewFromSOA(numVertices int, src, dst []VertexID, wt []float64) (*Graph, error) {
	if numVertices < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", numVertices)
	}
	if err := checkSize(numVertices, len(src)); err != nil {
		return nil, err
	}
	if len(src) != len(dst) {
		return nil, fmt.Errorf("graph: src/dst length mismatch %d != %d", len(src), len(dst))
	}
	if wt != nil && len(wt) != len(src) {
		return nil, fmt.Errorf("graph: weight length %d != edge count %d", len(wt), len(src))
	}
	m := len(src)
	for i := 0; i < m; i++ {
		if int(src[i]) >= numVertices || int(dst[i]) >= numVertices {
			return nil, fmt.Errorf("%w: edge %d (%d->%d) with %d vertices",
				ErrVertexOutOfRange, i, src[i], dst[i], numVertices)
		}
	}
	if wt != nil {
		weighted := false
		for _, w := range wt {
			if w != 1 {
				weighted = true
				break
			}
		}
		if !weighted {
			wt = nil
		}
	}
	g := &Graph{numVertices: numVertices, numEdges: m, wt: wt}
	if numVertices <= narrowLimit {
		g.src16 = make([]uint16, m)
		g.dst16 = make([]uint16, m)
		for i := 0; i < m; i++ {
			g.src16[i] = uint16(src[i])
			g.dst16[i] = uint16(dst[i])
		}
	} else {
		g.src32 = src
		g.dst32 = dst
	}
	g.buildIndexes()
	return g, nil
}

func (g *Graph) buildIndexes() {
	n := g.numVertices
	if g.numVertices <= narrowLimit {
		g.inCSR = buildCSRKeys(n, g.dst16)
		g.outCSR = buildCSRKeys(n, g.src16)
	} else {
		g.inCSR = buildCSRKeys(n, g.dst32)
		g.outCSR = buildCSRKeys(n, g.src32)
	}
}

// csrMinShard is the smallest per-shard edge count worth a goroutine during
// CSR construction.
const csrMinShard = 1 << 19

// buildCSRKeys is a stable parallel counting sort over the key array: the
// resulting edgeIdx lists each vertex's edges in ascending canonical index,
// exactly as the sequential two-pass build would. Shard s counts its slice,
// a sequential sweep turns the per-shard counts into per-shard placement
// cursors (cursor[s][v] = offsets[v] + sum of earlier shards' counts of v),
// and the placement pass writes every edge to a position that depends only
// on the input — so the output is identical for every shard count and
// worker count.
func buildCSRKeys[K uint16 | VertexID](n int, keys []K) csr {
	m := len(keys)
	// Backstop for the int32 index width: the public constructors already
	// reject |E| > MaxInt32 (ErrGraphTooLarge), so this can only fire for a
	// future internal caller that skips them — fail loudly, never wrap.
	if int64(m) > maxEdges {
		panic("graph: edge count overflows the int32 CSR index width")
	}
	offsets := make([]int32, n+1)
	if m == 0 {
		return csr{offsets: offsets}
	}
	shards := m / csrMinShard
	if lim := hostpar.Limit(); shards > lim {
		shards = lim
	}
	if shards < 1 {
		shards = 1
	}
	bounds := make([][2]int, shards)
	base, rem := m/shards, m%shards
	lo := 0
	for s := range bounds {
		hi := lo + base
		if s < rem {
			hi++
		}
		bounds[s] = [2]int{lo, hi}
		lo = hi
	}
	counts := make([][]int32, shards)
	hostpar.For(shards, shards, func(s int) {
		cnt := make([]int32, n)
		for _, k := range keys[bounds[s][0]:bounds[s][1]] {
			cnt[k]++
		}
		counts[s] = cnt
	})
	// offsets[v] = start of v's run; counts[s][v] becomes shard s's write
	// cursor for key v.
	run := int32(0)
	for v := 0; v < n; v++ {
		offsets[v] = run
		for s := 0; s < shards; s++ {
			c := counts[s][v]
			counts[s][v] = run
			run += c
		}
	}
	offsets[n] = run
	idx := make([]int32, m)
	hostpar.For(shards, shards, func(s int) {
		cur := counts[s]
		for i := bounds[s][0]; i < bounds[s][1]; i++ {
			k := keys[i]
			idx[cur[k]] = int32(i)
			cur[k]++
		}
	})
	return csr{offsets: offsets, edgeIdx: idx}
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return g.numVertices }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return g.numEdges }

// Weighted reports whether any edge weight differs from 1.
func (g *Graph) Weighted() bool { return g.wt != nil }

// EdgeSrc returns edge i's source without materializing an Edge value.
func (g *Graph) EdgeSrc(i int) VertexID {
	if g.src16 != nil {
		return VertexID(g.src16[i])
	}
	return g.src32[i]
}

// EdgeDst returns edge i's destination.
func (g *Graph) EdgeDst(i int) VertexID {
	if g.dst16 != nil {
		return VertexID(g.dst16[i])
	}
	return g.dst32[i]
}

// EdgeWeight returns edge i's weight (1 for unweighted graphs).
func (g *Graph) EdgeWeight(i int) float64 {
	if g.wt == nil {
		return 1
	}
	return g.wt[i]
}

// Edge returns edge i.
func (g *Graph) Edge(i int) Edge {
	return Edge{Src: g.EdgeSrc(i), Dst: g.EdgeDst(i), Weight: g.EdgeWeight(i)}
}

// EachEdge calls fn for every edge in canonical (insertion) order. This is
// the bulk traversal the engine and partitioners use; the loop is
// specialized per endpoint width so the per-edge cost is one bounds-checked
// load per array.
func (g *Graph) EachEdge(fn func(i int, e Edge)) {
	if g.src16 != nil {
		for i := range g.src16 {
			e := Edge{Src: VertexID(g.src16[i]), Dst: VertexID(g.dst16[i]), Weight: 1}
			if g.wt != nil {
				e.Weight = g.wt[i]
			}
			fn(i, e)
		}
		return
	}
	for i := range g.src32 {
		e := Edge{Src: g.src32[i], Dst: g.dst32[i], Weight: 1}
		if g.wt != nil {
			e.Weight = g.wt[i]
		}
		fn(i, e)
	}
}

// EachEdgeRange is EachEdge restricted to canonical indexes [lo, hi); the
// parallel loaders shard on it.
func (g *Graph) EachEdgeRange(lo, hi int, fn func(i int, e Edge)) {
	for i := lo; i < hi; i++ {
		fn(i, g.Edge(i))
	}
}

// Edges returns a flat []Edge view of the graph, materializing (and caching)
// it on first call. The engine never calls this; it exists for tests, small
// examples and external tooling. Callers must not mutate the result. Prefer
// EachEdge: on a large graph this view costs 16 bytes per edge on top of
// the compact layout, and MemoryFootprint reports it separately.
func (g *Graph) Edges() []Edge {
	g.edgesOnce.Do(func() {
		view := make([]Edge, g.numEdges)
		g.EachEdge(func(i int, e Edge) { view[i] = e })
		g.edgesView = view
	})
	return g.edgesView
}

// InDegree returns the in-degree of v.
func (g *Graph) InDegree(v VertexID) int {
	return int(g.inCSR.offsets[v+1] - g.inCSR.offsets[v])
}

// OutDegree returns the out-degree of v.
func (g *Graph) OutDegree(v VertexID) int {
	return int(g.outCSR.offsets[v+1] - g.outCSR.offsets[v])
}

// InEdges calls fn for each edge whose Dst is v, passing the canonical edge
// index, in ascending canonical order.
func (g *Graph) InEdges(v VertexID, fn func(edgeIndex int, e Edge)) {
	lo, hi := g.inCSR.offsets[v], g.inCSR.offsets[v+1]
	for _, ei := range g.inCSR.edgeIdx[lo:hi] {
		fn(int(ei), g.Edge(int(ei)))
	}
}

// OutEdges calls fn for each edge whose Src is v, passing the canonical edge
// index, in ascending canonical order.
func (g *Graph) OutEdges(v VertexID, fn func(edgeIndex int, e Edge)) {
	lo, hi := g.outCSR.offsets[v], g.outCSR.offsets[v+1]
	for _, ei := range g.outCSR.edgeIdx[lo:hi] {
		fn(int(ei), g.Edge(int(ei)))
	}
}

// IsSelfish reports whether v has no out-edges. The paper calls such
// vertices "selfish": their value has no consumer, so Imitator never
// synchronizes their FT replicas during normal execution (§4.4).
func (g *Graph) IsSelfish(v VertexID) bool {
	return g.outCSR.offsets[v+1] == g.outCSR.offsets[v]
}

// NumSelfish counts vertices with no out-edges.
func (g *Graph) NumSelfish() int {
	n := 0
	for v := 0; v < g.numVertices; v++ {
		if g.outCSR.offsets[v+1] == g.outCSR.offsets[v] {
			n++
		}
	}
	return n
}

// MaxDegree returns the maximum total (in+out) degree; used by tests and by
// hybrid-cut threshold heuristics.
func (g *Graph) MaxDegree() int {
	best := 0
	for v := VertexID(0); int(v) < g.numVertices; v++ {
		if d := g.InDegree(v) + g.OutDegree(v); d > best {
			best = d
		}
	}
	return best
}

// DegreeHistogram returns sorted (degree, count) pairs of the in-degree
// distribution; used to validate power-law generators.
func (g *Graph) DegreeHistogram() (degrees []int, counts []int) {
	hist := make(map[int]int)
	for v := VertexID(0); int(v) < g.numVertices; v++ {
		hist[g.InDegree(v)]++
	}
	degrees = make([]int, 0, len(hist))
	for d := range hist {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	counts = make([]int, len(degrees))
	for i, d := range degrees {
		counts[i] = hist[d]
	}
	return degrees, counts
}

// Stats summarizes a graph for reports and DESIGN/EXPERIMENTS tables.
type Stats struct {
	NumVertices int
	NumEdges    int
	NumSelfish  int
	MaxInDeg    int
	MaxOutDeg   int
	AvgDeg      float64
}

// ComputeStats returns summary statistics.
func (g *Graph) ComputeStats() Stats {
	s := Stats{NumVertices: g.numVertices, NumEdges: g.numEdges, NumSelfish: g.NumSelfish()}
	for v := VertexID(0); int(v) < g.numVertices; v++ {
		if d := g.InDegree(v); d > s.MaxInDeg {
			s.MaxInDeg = d
		}
		if d := g.OutDegree(v); d > s.MaxOutDeg {
			s.MaxOutDeg = d
		}
	}
	if g.numVertices > 0 {
		s.AvgDeg = float64(g.numEdges) / float64(g.numVertices)
	}
	return s
}

// Footprint itemizes the graph's resident bytes. LegacyBytes reconstructs
// what the pre-compaction layout ([]Edge list + dual CSR edge indexes +
// offset and degree arrays) would occupy for the same graph, so reports can
// state the reduction without holding both layouts in memory.
type Footprint struct {
	EndpointBytes int64 // canonical src/dst arrays (2 or 4 bytes per endpoint)
	WeightBytes   int64 // per-edge weights; 0 for unweighted graphs
	CSRBytes      int64 // both adjacencies: offsets + edge indexes
	EdgeViewBytes int64 // lazily materialized []Edge view; 0 until Edges()
	TotalBytes    int64
	BytesPerEdge  float64
	LegacyBytes   int64
}

// MemoryFootprint accounts the graph's memory layout byte-exactly from the
// slice shapes (not the Go allocator's view). Call it after construction;
// it is not synchronized with a concurrent first Edges() call.
func (g *Graph) MemoryFootprint() Footprint {
	var f Footprint
	const (
		idxSize    = 4 // int32 CSR entries
		edgeSize   = 16
		vertexSize = 4
	)
	f.EndpointBytes = int64(len(g.src16)+len(g.dst16))*2 + int64(len(g.src32)+len(g.dst32))*4
	f.WeightBytes = int64(len(g.wt)) * 8
	f.CSRBytes = int64(len(g.inCSR.offsets)+len(g.outCSR.offsets)+len(g.inCSR.edgeIdx)+len(g.outCSR.edgeIdx)) * idxSize
	f.EdgeViewBytes = int64(len(g.edgesView)) * edgeSize
	f.TotalBytes = f.EndpointBytes + f.WeightBytes + f.CSRBytes + f.EdgeViewBytes
	if g.numEdges > 0 {
		f.BytesPerEdge = float64(f.TotalBytes) / float64(g.numEdges)
	}
	// Legacy layout: []Edge (16 B/edge, weights always resident), the same
	// two CSRs, plus the separate int32 in/out degree arrays it kept.
	m := int64(g.numEdges)
	n := int64(g.numVertices)
	f.LegacyBytes = m*edgeSize + f.CSRBytes + 2*n*vertexSize
	return f
}
