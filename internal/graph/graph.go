// Package graph defines the input graph representation shared by every
// component in the repository: generators produce Graphs, partitioners
// consume them, and the engines build their per-node local structures from
// partitioned views.
//
// Graphs are directed and optionally weighted. Vertices are dense integers
// [0, NumVertices). Edges are stored as a flat edge list; compressed views
// (CSR by destination and by source) are built on demand and cached.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// VertexID identifies a vertex. Dense in [0, NumVertices).
type VertexID uint32

// Edge is a directed edge Src -> Dst with an optional weight (1.0 when the
// graph is unweighted).
type Edge struct {
	Src, Dst VertexID
	Weight   float64
}

// Graph is an immutable directed graph. Build one with New and Finalize, or
// via the generators in internal/gen.
type Graph struct {
	numVertices int
	edges       []Edge

	// Lazily built indexes (Finalize builds them eagerly).
	inCSR  *csr // edges grouped by Dst
	outCSR *csr // edges grouped by Src
	inDeg  []int32
	outDeg []int32
}

// csr is a compressed adjacency: offsets[v]..offsets[v+1] index into edgeIdx,
// which points back into the flat edge list.
type csr struct {
	offsets []int32
	edgeIdx []int32
}

// ErrVertexOutOfRange reports an edge endpoint outside [0, NumVertices).
var ErrVertexOutOfRange = errors.New("graph: vertex id out of range")

// New builds a graph from an edge list. It validates endpoints and builds
// both adjacency indexes. The edge slice is retained; callers must not
// mutate it afterwards.
func New(numVertices int, edges []Edge) (*Graph, error) {
	if numVertices < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", numVertices)
	}
	g := &Graph{numVertices: numVertices, edges: edges}
	for i, e := range edges {
		if int(e.Src) >= numVertices || int(e.Dst) >= numVertices {
			return nil, fmt.Errorf("%w: edge %d (%d->%d) with %d vertices",
				ErrVertexOutOfRange, i, e.Src, e.Dst, numVertices)
		}
	}
	g.buildIndexes()
	return g, nil
}

// MustNew is New but panics on error; for tests and generators whose inputs
// are valid by construction.
func MustNew(numVertices int, edges []Edge) *Graph {
	g, err := New(numVertices, edges)
	if err != nil {
		panic(err)
	}
	return g
}

func (g *Graph) buildIndexes() {
	n := g.numVertices
	g.inDeg = make([]int32, n)
	g.outDeg = make([]int32, n)
	for _, e := range g.edges {
		g.inDeg[e.Dst]++
		g.outDeg[e.Src]++
	}
	g.inCSR = buildCSR(n, g.edges, func(e Edge) VertexID { return e.Dst })
	g.outCSR = buildCSR(n, g.edges, func(e Edge) VertexID { return e.Src })
}

func buildCSR(n int, edges []Edge, key func(Edge) VertexID) *csr {
	offsets := make([]int32, n+1)
	for _, e := range edges {
		offsets[key(e)+1]++
	}
	for i := 0; i < n; i++ {
		offsets[i+1] += offsets[i]
	}
	idx := make([]int32, len(edges))
	cursor := make([]int32, n)
	copy(cursor, offsets[:n])
	for i, e := range edges {
		k := key(e)
		idx[cursor[k]] = int32(i)
		cursor[k]++
	}
	return &csr{offsets: offsets, edgeIdx: idx}
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return g.numVertices }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edges returns the underlying edge list. Callers must not mutate it.
func (g *Graph) Edges() []Edge { return g.edges }

// Edge returns edge i.
func (g *Graph) Edge(i int) Edge { return g.edges[i] }

// InDegree returns the in-degree of v.
func (g *Graph) InDegree(v VertexID) int { return int(g.inDeg[v]) }

// OutDegree returns the out-degree of v.
func (g *Graph) OutDegree(v VertexID) int { return int(g.outDeg[v]) }

// InEdges calls fn for each edge whose Dst is v, passing the edge index.
func (g *Graph) InEdges(v VertexID, fn func(edgeIndex int, e Edge)) {
	lo, hi := g.inCSR.offsets[v], g.inCSR.offsets[v+1]
	for _, ei := range g.inCSR.edgeIdx[lo:hi] {
		fn(int(ei), g.edges[ei])
	}
}

// OutEdges calls fn for each edge whose Src is v, passing the edge index.
func (g *Graph) OutEdges(v VertexID, fn func(edgeIndex int, e Edge)) {
	lo, hi := g.outCSR.offsets[v], g.outCSR.offsets[v+1]
	for _, ei := range g.outCSR.edgeIdx[lo:hi] {
		fn(int(ei), g.edges[ei])
	}
}

// IsSelfish reports whether v has no out-edges. The paper calls such
// vertices "selfish": their value has no consumer, so Imitator never
// synchronizes their FT replicas during normal execution (§4.4).
func (g *Graph) IsSelfish(v VertexID) bool { return g.outDeg[v] == 0 }

// NumSelfish counts vertices with no out-edges.
func (g *Graph) NumSelfish() int {
	n := 0
	for _, d := range g.outDeg {
		if d == 0 {
			n++
		}
	}
	return n
}

// MaxDegree returns the maximum total (in+out) degree; used by tests and by
// hybrid-cut threshold heuristics.
func (g *Graph) MaxDegree() int {
	best := 0
	for v := 0; v < g.numVertices; v++ {
		if d := int(g.inDeg[v]) + int(g.outDeg[v]); d > best {
			best = d
		}
	}
	return best
}

// DegreeHistogram returns sorted (degree, count) pairs of the in-degree
// distribution; used to validate power-law generators.
func (g *Graph) DegreeHistogram() (degrees []int, counts []int) {
	hist := make(map[int]int)
	for _, d := range g.inDeg {
		hist[int(d)]++
	}
	degrees = make([]int, 0, len(hist))
	for d := range hist {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	counts = make([]int, len(degrees))
	for i, d := range degrees {
		counts[i] = hist[d]
	}
	return degrees, counts
}

// Stats summarizes a graph for reports and DESIGN/EXPERIMENTS tables.
type Stats struct {
	NumVertices int
	NumEdges    int
	NumSelfish  int
	MaxInDeg    int
	MaxOutDeg   int
	AvgDeg      float64
}

// ComputeStats returns summary statistics.
func (g *Graph) ComputeStats() Stats {
	s := Stats{NumVertices: g.numVertices, NumEdges: len(g.edges), NumSelfish: g.NumSelfish()}
	for v := 0; v < g.numVertices; v++ {
		if d := int(g.inDeg[v]); d > s.MaxInDeg {
			s.MaxInDeg = d
		}
		if d := int(g.outDeg[v]); d > s.MaxOutDeg {
			s.MaxOutDeg = d
		}
	}
	if g.numVertices > 0 {
		s.AvgDeg = float64(len(g.edges)) / float64(g.numVertices)
	}
	return s
}
