package bufpool

import (
	"sync"
	"testing"
)

func TestGetPutReuse(t *testing.T) {
	p := New()
	if got := p.Get(); got != nil {
		t.Fatalf("empty pool Get = %v, want nil", got)
	}
	buf := append([]byte(nil), "hello"...)
	p.Put(buf)
	got := p.Get()
	if got == nil || cap(got) != cap(buf) {
		t.Fatalf("Get after Put: cap=%d want %d", cap(got), cap(buf))
	}
	if len(got) != 0 {
		t.Fatalf("Get returned non-empty buffer len=%d", len(got))
	}
	st := p.Stats()
	if st.Gets != 2 || st.Misses != 1 || st.Puts != 1 || st.Reused() != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPutDropsZeroCap(t *testing.T) {
	p := New()
	p.Put(nil)
	p.Put([]byte{})
	if p.Len() != 0 {
		t.Fatalf("zero-cap buffers entered the pool: len=%d", p.Len())
	}
}

func TestLIFOOrder(t *testing.T) {
	p := New()
	small := make([]byte, 0, 8)
	big := make([]byte, 0, 1024)
	p.Put(small)
	p.Put(big)
	if got := p.Get(); cap(got) != 1024 {
		t.Fatalf("LIFO violated: first Get cap=%d want 1024", cap(got))
	}
	if got := p.Get(); cap(got) != 8 {
		t.Fatalf("LIFO violated: second Get cap=%d want 8", cap(got))
	}
}

func TestConcurrentAccess(t *testing.T) {
	p := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				buf := p.Get()
				buf = append(buf, byte(i))
				p.Put(buf)
			}
		}()
	}
	wg.Wait()
	st := p.Stats()
	if st.Gets != 8000 || st.Puts != 8000 {
		t.Fatalf("stats after concurrent churn = %+v", st)
	}
}
