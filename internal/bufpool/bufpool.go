// Package bufpool provides a byte-buffer free list for the engine's
// steady-state wire buffers. Per-round send buffers, activation notices and
// checkpoint encode scratch cycle sender -> network -> receiver -> pool ->
// sender; after a few warm-up supersteps every round runs on recycled
// buffers and the hot loop stops allocating.
//
// A plain mutex-guarded LIFO stack is deliberately used instead of
// sync.Pool: the engine wants deterministic reuse statistics (the metrics
// layer reports them) and buffers that survive GC cycles, and []byte values
// would box into interfaces on every sync.Pool round trip.
package bufpool

import "sync"

// Stats counts pool traffic. Gets - Misses is the number of reused buffers;
// a steady-state superstep loop shows Misses and (if buffers leak) the
// Gets/Puts gap flat across iterations.
type Stats struct {
	// Gets counts Get calls, Misses the Gets that found the pool empty and
	// returned nil (the caller's append allocates a fresh buffer).
	Gets   int64
	Misses int64
	// Puts counts buffers returned for reuse.
	Puts int64
}

// Reused returns the number of Gets served from the free list.
func (s Stats) Reused() int64 { return s.Gets - s.Misses }

// Pool is a LIFO free list of byte buffers. Safe for concurrent use.
type Pool struct {
	mu    sync.Mutex
	free  [][]byte
	stats Stats
}

// New returns an empty pool.
func New() *Pool { return &Pool{} }

// Get returns a zero-length buffer with whatever capacity the free list has
// on top, or nil when empty; either way the caller appends into it. LIFO
// order keeps the most recently grown (hottest, largest) buffers in use.
func (p *Pool) Get() []byte {
	p.mu.Lock()
	p.stats.Gets++
	if n := len(p.free); n > 0 {
		buf := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return buf[:0]
	}
	p.stats.Misses++
	p.mu.Unlock()
	return nil
}

// Put returns a buffer to the free list. Buffers without capacity are
// dropped; the pool never holds aliases of live data — callers must hand
// over ownership.
func (p *Pool) Put(buf []byte) {
	if cap(buf) == 0 {
		return
	}
	p.mu.Lock()
	p.stats.Puts++
	p.free = append(p.free, buf[:0])
	p.mu.Unlock()
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Len returns the current free-list depth (for tests).
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}
