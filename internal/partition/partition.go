// Package partition implements the graph partitioning algorithms the paper
// evaluates. Edge-cut partitioners (hash/random and the Fennel streaming
// heuristic) assign vertices to nodes and replicate vertices across cut
// edges, as in Cyclops. Vertex-cut partitioners (Random-cut, Grid-cut and
// PowerLyra's Hybrid-cut) assign edges to nodes and replicate vertices on
// every node holding an adjacent edge.
//
// Replica presence is reported as one bitmask per vertex (bit n = vertex
// present on node n), which bounds cluster sizes at 64 nodes — enough for
// the paper's 50-node setup.
package partition

import (
	"fmt"
	"math"
	"math/bits"

	"imitator/internal/graph"
	"imitator/internal/hostpar"
	"imitator/internal/rng"
)

// parMinBlock is the smallest per-goroutine block for the hash-style
// partitioners; every parallelized assignment below writes only its own
// index, so results are identical for any worker count.
const parMinBlock = 1 << 16

// MaxNodes is the largest supported cluster size (replica masks are uint64).
const MaxNodes = 64

// hashVertex is the vertex placement hash shared by grid-cut homes and
// tests that verify the grid constraint.
func hashVertex(v graph.VertexID) uint64 { return rng.Hash64(uint64(v)) }

func checkNodes(numNodes int) error {
	if numNodes < 1 || numNodes > MaxNodes {
		return fmt.Errorf("partition: node count %d outside [1, %d]", numNodes, MaxNodes)
	}
	return nil
}

// EdgeCut is the result of an edge-cut partitioning: every vertex has a
// master node; every edge lives on the node owning its destination, so a
// master is co-located with all of its in-edges (the Cyclops model).
type EdgeCut struct {
	NumNodes int
	Owner    []int32 // vertex -> master node
}

// HashEdgeCut assigns vertices to nodes by hash — the paper's default
// "random" partitioning.
func HashEdgeCut(g *graph.Graph, numNodes int) (*EdgeCut, error) {
	if err := checkNodes(numNodes); err != nil {
		return nil, err
	}
	owner := make([]int32, g.NumVertices())
	hostpar.Blocks(len(owner), parMinBlock, 0, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			owner[v] = int32(rng.Hash64(uint64(v)) % uint64(numNodes))
		}
	})
	return &EdgeCut{NumNodes: numNodes, Owner: owner}, nil
}

// FennelConfig tunes the Fennel streaming partitioner (Tsourakakis et al.,
// WSDM'14), the heuristic evaluated in §6.6.
type FennelConfig struct {
	Gamma float64 // cost exponent; 1.5 in the paper
	Nu    float64 // balance slack: per-node capacity = Nu * |V|/p
	Seed  uint64  // stream order shuffle
}

// DefaultFennelConfig matches the published defaults.
func DefaultFennelConfig() FennelConfig {
	return FennelConfig{Gamma: 1.5, Nu: 1.1, Seed: 1}
}

// FennelEdgeCut streams vertices in random order and greedily assigns each
// to the node maximizing |N(v) ∩ P_i| - alpha*gamma*|P_i|^(gamma-1),
// subject to a capacity cap.
func FennelEdgeCut(g *graph.Graph, numNodes int, cfg FennelConfig) (*EdgeCut, error) {
	if err := checkNodes(numNodes); err != nil {
		return nil, err
	}
	if cfg.Gamma <= 1 {
		return nil, fmt.Errorf("partition: fennel gamma must exceed 1, got %v", cfg.Gamma)
	}
	n := g.NumVertices()
	m := g.NumEdges()
	p := numNodes
	alpha := float64(m) * math.Pow(float64(p), cfg.Gamma-1) / math.Pow(float64(n), cfg.Gamma)
	capacity := int(cfg.Nu * float64(n) / float64(p))
	if capacity < 1 {
		capacity = 1
	}

	owner := make([]int32, n)
	for i := range owner {
		owner[i] = -1
	}
	sizes := make([]int, p)
	neighborCount := make([]float64, p)

	order := rng.New(cfg.Seed).Perm(n)
	for _, vi := range order {
		v := graph.VertexID(vi)
		for i := range neighborCount {
			neighborCount[i] = 0
		}
		count := func(u graph.VertexID) {
			if o := owner[u]; o >= 0 {
				neighborCount[o]++
			}
		}
		g.InEdges(v, func(_ int, e graph.Edge) { count(e.Src) })
		g.OutEdges(v, func(_ int, e graph.Edge) { count(e.Dst) })

		best, bestScore := -1, math.Inf(-1)
		for i := 0; i < p; i++ {
			if sizes[i] >= capacity {
				continue
			}
			score := neighborCount[i] - alpha*cfg.Gamma*math.Pow(float64(sizes[i]), cfg.Gamma-1)
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		if best < 0 { // every node at capacity: place on the least loaded
			best = 0
			for i := 1; i < p; i++ {
				if sizes[i] < sizes[best] {
					best = i
				}
			}
		}
		owner[v] = int32(best)
		sizes[best]++
	}
	return &EdgeCut{NumNodes: numNodes, Owner: owner}, nil
}

// Masks returns, per vertex, the bitmask of nodes where the vertex is
// present (master plus computation replicas). Under edge-cut, vertex u is
// replicated to node n != Owner[u] when u has an out-edge whose destination
// master lives on n.
func (ec *EdgeCut) Masks(g *graph.Graph) []uint64 {
	masks := make([]uint64, g.NumVertices())
	for v := range masks {
		masks[v] = 1 << uint(ec.Owner[v])
	}
	g.EachEdge(func(_ int, e graph.Edge) {
		masks[e.Src] |= 1 << uint(ec.Owner[e.Dst])
	})
	return masks
}

// VertexCut is the result of a vertex-cut partitioning: every edge has an
// owning node; a vertex is replicated on every node with an adjacent edge,
// and one hash-chosen node holds the master (the PowerGraph/PowerLyra
// model).
type VertexCut struct {
	NumNodes  int
	EdgeOwner []int32 // edge index -> node
	Master    []int32 // vertex -> master node
}

func newVertexCut(g *graph.Graph, numNodes int) *VertexCut {
	master := make([]int32, g.NumVertices())
	hostpar.Blocks(len(master), parMinBlock, 0, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			master[v] = int32(rng.Hash64(uint64(v)+0x9e37) % uint64(numNodes))
		}
	})
	return &VertexCut{
		NumNodes:  numNodes,
		EdgeOwner: make([]int32, g.NumEdges()),
		Master:    master,
	}
}

// RandomVertexCut hashes each edge to a node.
func RandomVertexCut(g *graph.Graph, numNodes int) (*VertexCut, error) {
	if err := checkNodes(numNodes); err != nil {
		return nil, err
	}
	vc := newVertexCut(g, numNodes)
	hostpar.Blocks(g.NumEdges(), parMinBlock, 0, func(lo, hi int) {
		g.EachEdgeRange(lo, hi, func(i int, e graph.Edge) {
			vc.EdgeOwner[i] = int32(rng.Hash2(uint64(e.Src), uint64(e.Dst)) % uint64(numNodes))
		})
	})
	return vc, nil
}

// GridVertexCut implements 2D constrained partitioning (GraphBuilder's
// Grid-cut): nodes form an r x c grid, each vertex's candidate set is the
// row plus column of its home cell, and each edge lands in the intersection
// of its endpoints' candidate sets. Bounds the replication factor by
// 2*sqrt(p) - 1. The node count is factored into the most square grid
// available; prime counts degrade to 1 x p (equivalent to random by row).
func GridVertexCut(g *graph.Graph, numNodes int) (*VertexCut, error) {
	if err := checkNodes(numNodes); err != nil {
		return nil, err
	}
	rows := 1
	for d := 1; d*d <= numNodes; d++ {
		if numNodes%d == 0 {
			rows = d
		}
	}
	cols := numNodes / rows
	vc := newVertexCut(g, numNodes)
	cell := func(v graph.VertexID) (int, int) {
		h := int(hashVertex(v) % uint64(numNodes))
		return h / cols, h % cols
	}
	hostpar.Blocks(g.NumEdges(), parMinBlock, 0, func(lo, hi int) {
		g.EachEdgeRange(lo, hi, func(i int, e graph.Edge) {
			sr, sc := cell(e.Src)
			dr, dc := cell(e.Dst)
			var candidates [2]int
			count := 2
			switch {
			case sr == dr && sc == dc:
				candidates[0] = sr*cols + sc
				count = 1
			case sr == dr: // same row: whole row is shared
				candidates[0], candidates[1] = sr*cols+sc, sr*cols+dc
			case sc == dc: // same column
				candidates[0], candidates[1] = sr*cols+sc, dr*cols+sc
			default: // two crossing cells
				candidates[0], candidates[1] = sr*cols+dc, dr*cols+sc
			}
			pick := rng.Hash2(uint64(e.Src), uint64(e.Dst)) % uint64(count)
			vc.EdgeOwner[i] = int32(candidates[pick])
		})
	})
	return vc, nil
}

// HybridCutConfig tunes PowerLyra's hybrid-cut.
type HybridCutConfig struct {
	// Threshold on in-degree separating low-degree vertices (in-edges
	// hashed by destination, co-locating them with the vertex) from
	// high-degree ones (in-edges hashed by source, distributing the load).
	// PowerLyra's default is 100; our graphs are ~64x smaller, so the
	// catalog datasets use a proportionally smaller default.
	Threshold int
}

// DefaultHybridCutConfig returns the threshold used by the benchmarks.
func DefaultHybridCutConfig() HybridCutConfig { return HybridCutConfig{Threshold: 48} }

// HybridVertexCut implements PowerLyra's hybrid-cut: differentiated edge
// placement by destination in-degree.
func HybridVertexCut(g *graph.Graph, numNodes int, cfg HybridCutConfig) (*VertexCut, error) {
	if err := checkNodes(numNodes); err != nil {
		return nil, err
	}
	if cfg.Threshold <= 0 {
		return nil, fmt.Errorf("partition: hybrid threshold must be positive, got %d", cfg.Threshold)
	}
	vc := newVertexCut(g, numNodes)
	hostpar.Blocks(g.NumEdges(), parMinBlock, 0, func(lo, hi int) {
		g.EachEdgeRange(lo, hi, func(i int, e graph.Edge) {
			if g.InDegree(e.Dst) <= cfg.Threshold {
				vc.EdgeOwner[i] = int32(rng.Hash64(uint64(e.Dst)) % uint64(numNodes))
			} else {
				vc.EdgeOwner[i] = int32(rng.Hash64(uint64(e.Src)) % uint64(numNodes))
			}
		})
	})
	return vc, nil
}

// Masks returns, per vertex, the bitmask of nodes where the vertex is
// present (master plus one replica per node holding an adjacent edge).
func (vc *VertexCut) Masks(g *graph.Graph) []uint64 {
	masks := make([]uint64, g.NumVertices())
	for v := range masks {
		masks[v] = 1 << uint(vc.Master[v])
	}
	g.EachEdge(func(i int, e graph.Edge) {
		bit := uint64(1) << uint(vc.EdgeOwner[i])
		masks[e.Src] |= bit
		masks[e.Dst] |= bit
	})
	return masks
}

// Stats summarizes a partitioning for the replication-factor figures
// (Fig 10a, Fig 14a) and load-balance sanity checks.
type Stats struct {
	NumNodes          int
	ReplicationFactor float64 // total presences / |V|
	// NoReplicaTotal counts vertices present on exactly one node; of those,
	// NoReplicaSelfish have no out-edges (Fig 3a's split).
	NoReplicaTotal   int
	NoReplicaSelfish int
	MaxVerticesNode  int // presences on the fullest node
	MinVerticesNode  int
	MaxEdgesNode     int
	MinEdgesNode     int
}

// ComputeStats derives Stats from presence masks and the per-node edge
// placement implied by the partitioning.
func ComputeStats(g *graph.Graph, masks []uint64, edgesPerNode []int, numNodes int) Stats {
	s := Stats{NumNodes: numNodes}
	presences := 0
	perNode := make([]int, numNodes)
	for v, m := range masks {
		c := bits.OnesCount64(m)
		presences += c
		if c == 1 {
			s.NoReplicaTotal++
			// masks has one slot per vertex, and the graph constructors
			// reject |V| beyond the uint32 endpoint width (ErrGraphTooLarge),
			// so the index always fits VertexID.
			if g.IsSelfish(graph.VertexID(v)) { //imitator:narrowing-ok |V| bounded by graph's ErrGraphTooLarge guard
				s.NoReplicaSelfish++
			}
		}
		for mm := m; mm != 0; mm &= mm - 1 {
			perNode[bits.TrailingZeros64(mm)]++
		}
	}
	if g.NumVertices() > 0 {
		s.ReplicationFactor = float64(presences) / float64(g.NumVertices())
	}
	s.MinVerticesNode = math.MaxInt
	for _, c := range perNode {
		if c > s.MaxVerticesNode {
			s.MaxVerticesNode = c
		}
		if c < s.MinVerticesNode {
			s.MinVerticesNode = c
		}
	}
	s.MinEdgesNode = math.MaxInt
	for _, c := range edgesPerNode {
		if c > s.MaxEdgesNode {
			s.MaxEdgesNode = c
		}
		if c < s.MinEdgesNode {
			s.MinEdgesNode = c
		}
	}
	if len(edgesPerNode) == 0 {
		s.MinEdgesNode = 0
	}
	return s
}

// Stats computes partitioning statistics for an edge-cut.
func (ec *EdgeCut) Stats(g *graph.Graph) Stats {
	edgesPerNode := make([]int, ec.NumNodes)
	g.EachEdge(func(_ int, e graph.Edge) {
		edgesPerNode[ec.Owner[e.Dst]]++
	})
	return ComputeStats(g, ec.Masks(g), edgesPerNode, ec.NumNodes)
}

// Stats computes partitioning statistics for a vertex-cut.
func (vc *VertexCut) Stats(g *graph.Graph) Stats {
	edgesPerNode := make([]int, vc.NumNodes)
	for _, o := range vc.EdgeOwner {
		edgesPerNode[o]++
	}
	return ComputeStats(g, vc.Masks(g), edgesPerNode, vc.NumNodes)
}
