package partition

import (
	"testing"

	"imitator/internal/datasets"
	"imitator/internal/graph"
)

func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	return datasets.Tiny(20000, 120000, 999)
}

func BenchmarkHashEdgeCut(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := HashEdgeCut(g, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFennelEdgeCut(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FennelEdgeCut(g, 16, DefaultFennelConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLDGEdgeCut(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LDGEdgeCut(g, 16, DefaultLDGConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHybridVertexCut(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := HybridVertexCut(g, 16, DefaultHybridCutConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGridVertexCut(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GridVertexCut(g, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkObliviousVertexCut(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ObliviousVertexCut(g, 16); err != nil {
			b.Fatal(err)
		}
	}
}
