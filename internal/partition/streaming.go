package partition

import (
	"fmt"
	"math"

	"imitator/internal/graph"
	"imitator/internal/rng"
)

// LDGConfig tunes the Linear Deterministic Greedy streaming edge-cut
// partitioner (Stanton & Kliot, KDD'12 — the paper's reference [19]).
type LDGConfig struct {
	// Nu is the balance slack: per-node capacity = Nu * |V|/p.
	Nu float64
	// Seed shuffles the stream order.
	Seed uint64
}

// DefaultLDGConfig matches the published defaults.
func DefaultLDGConfig() LDGConfig { return LDGConfig{Nu: 1.1, Seed: 1} }

// LDGEdgeCut streams vertices and assigns each to the partition holding the
// most neighbors, weighted by the partition's remaining capacity:
// score_i = |N(v) ∩ P_i| * (1 - |P_i|/C).
func LDGEdgeCut(g *graph.Graph, numNodes int, cfg LDGConfig) (*EdgeCut, error) {
	if err := checkNodes(numNodes); err != nil {
		return nil, err
	}
	if cfg.Nu <= 0 {
		return nil, fmt.Errorf("partition: LDG balance slack must be positive, got %v", cfg.Nu)
	}
	n := g.NumVertices()
	p := numNodes
	capacity := cfg.Nu * float64(n) / float64(p)
	if capacity < 1 {
		capacity = 1
	}

	owner := make([]int32, n)
	for i := range owner {
		owner[i] = -1
	}
	sizes := make([]int, p)
	neighborCount := make([]float64, p)

	order := rng.New(cfg.Seed).Perm(n)
	for _, vi := range order {
		v := graph.VertexID(vi)
		for i := range neighborCount {
			neighborCount[i] = 0
		}
		count := func(u graph.VertexID) {
			if o := owner[u]; o >= 0 {
				neighborCount[o]++
			}
		}
		g.InEdges(v, func(_ int, e graph.Edge) { count(e.Src) })
		g.OutEdges(v, func(_ int, e graph.Edge) { count(e.Dst) })

		best, bestScore := 0, math.Inf(-1)
		for i := 0; i < p; i++ {
			penalty := 1 - float64(sizes[i])/capacity
			if penalty < 0 {
				penalty = 0
			}
			// +1 smoothing keeps empty-neighborhood vertices flowing to
			// the emptiest partition.
			score := (neighborCount[i] + 1) * penalty
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		owner[v] = int32(best)
		sizes[best]++
	}
	return &EdgeCut{NumNodes: numNodes, Owner: owner}, nil
}

// ObliviousVertexCut implements PowerGraph's greedy ("oblivious") vertex
// cut: each edge goes to a node already hosting both endpoints, else one
// hosting either (the less loaded on ties), else the least-loaded node.
// State is per-streaming-pass; no global coordination.
func ObliviousVertexCut(g *graph.Graph, numNodes int) (*VertexCut, error) {
	if err := checkNodes(numNodes); err != nil {
		return nil, err
	}
	vc := newVertexCut(g, numNodes)
	present := make([]uint64, g.NumVertices()) // node bitmask per vertex
	load := make([]int, numNodes)

	leastLoaded := func(mask uint64) int {
		best := -1
		for i := 0; i < numNodes; i++ {
			if mask != 0 && mask&(1<<uint(i)) == 0 {
				continue
			}
			if best < 0 || load[i] < load[best] {
				best = i
			}
		}
		return best
	}
	// Oblivious is a streaming greedy: each placement depends on all earlier
	// ones, so the loop stays sequential (EachEdge avoids materializing the
	// flat edge view).
	g.EachEdge(func(i int, e graph.Edge) {
		su, sv := present[e.Src], present[e.Dst]
		var target int
		switch {
		case su&sv != 0: // both endpoints share a node
			target = leastLoaded(su & sv)
		case su != 0 && sv != 0: // disjoint: place with the higher-degree end
			if g.OutDegree(e.Src)+g.InDegree(e.Src) > g.OutDegree(e.Dst)+g.InDegree(e.Dst) {
				target = leastLoaded(sv)
			} else {
				target = leastLoaded(su)
			}
		case su != 0:
			target = leastLoaded(su)
		case sv != 0:
			target = leastLoaded(sv)
		default:
			target = leastLoaded(0)
		}
		vc.EdgeOwner[i] = int32(target)
		load[target]++
		present[e.Src] |= 1 << uint(target)
		present[e.Dst] |= 1 << uint(target)
	})
	return vc, nil
}
