package partition

import (
	"math/bits"
	"testing"
	"testing/quick"

	"imitator/internal/datasets"
	"imitator/internal/gen"
	"imitator/internal/graph"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	return datasets.Tiny(2000, 12000, 42)
}

func TestHashEdgeCutOwnership(t *testing.T) {
	g := testGraph(t)
	ec, err := HashEdgeCut(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 8)
	for _, o := range ec.Owner {
		if o < 0 || o >= 8 {
			t.Fatalf("owner %d out of range", o)
		}
		counts[o]++
	}
	// Hash partitioning should be roughly balanced.
	for i, c := range counts {
		if c < 150 || c > 350 {
			t.Errorf("node %d holds %d masters, want ~250", i, c)
		}
	}
}

func TestHashEdgeCutNodeRange(t *testing.T) {
	g := testGraph(t)
	if _, err := HashEdgeCut(g, 0); err == nil {
		t.Error("expected error for 0 nodes")
	}
	if _, err := HashEdgeCut(g, 65); err == nil {
		t.Error("expected error for 65 nodes")
	}
	if _, err := HashEdgeCut(g, 1); err != nil {
		t.Errorf("1 node should be allowed: %v", err)
	}
}

func TestEdgeCutMasksIncludeMasterAndConsumers(t *testing.T) {
	// 0->1 with owners on different nodes: vertex 0 must be present on
	// owner(1)'s node as a replica.
	g := graph.MustNew(2, []graph.Edge{{Src: 0, Dst: 1, Weight: 1}})
	ec := &EdgeCut{NumNodes: 2, Owner: []int32{0, 1}}
	masks := ec.Masks(g)
	if masks[0] != 0b11 {
		t.Errorf("vertex 0 mask = %b, want 11 (master node0 + replica node1)", masks[0])
	}
	if masks[1] != 0b10 {
		t.Errorf("vertex 1 mask = %b, want 10 (master only)", masks[1])
	}
}

func TestFennelReducesReplication(t *testing.T) {
	// Fennel should beat hash partitioning on replication factor for a
	// community-structured graph (Fig 10a shows large reductions).
	g, err := gen.Community(gen.CommunityConfig{
		NumVertices: 3000, NumCommunities: 30, IntraDegree: 8, InterDegree: 0.3, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	hash, err := HashEdgeCut(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	fennel, err := FennelEdgeCut(g, 8, DefaultFennelConfig())
	if err != nil {
		t.Fatal(err)
	}
	hf := hash.Stats(g).ReplicationFactor
	ff := fennel.Stats(g).ReplicationFactor
	if ff >= hf {
		t.Errorf("fennel RF %.3f not below hash RF %.3f", ff, hf)
	}
}

func TestFennelBalance(t *testing.T) {
	g := testGraph(t)
	cfg := DefaultFennelConfig()
	ec, err := FennelEdgeCut(g, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sizes := make([]int, 8)
	for _, o := range ec.Owner {
		sizes[o]++
	}
	capacity := int(cfg.Nu * float64(g.NumVertices()) / 8)
	for i, s := range sizes {
		if s > capacity+1 {
			t.Errorf("node %d holds %d masters, above capacity %d", i, s, capacity)
		}
	}
}

func TestFennelValidation(t *testing.T) {
	g := testGraph(t)
	if _, err := FennelEdgeCut(g, 4, FennelConfig{Gamma: 1.0, Nu: 1.1}); err == nil {
		t.Error("expected error for gamma <= 1")
	}
}

func TestRandomVertexCutCoversEdges(t *testing.T) {
	g := testGraph(t)
	vc, err := RandomVertexCut(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(vc.EdgeOwner) != g.NumEdges() {
		t.Fatalf("EdgeOwner len %d != %d", len(vc.EdgeOwner), g.NumEdges())
	}
	counts := make([]int, 8)
	for _, o := range vc.EdgeOwner {
		if o < 0 || o >= 8 {
			t.Fatalf("edge owner %d out of range", o)
		}
		counts[o]++
	}
	for i, c := range counts {
		want := g.NumEdges() / 8
		if c < want*7/10 || c > want*13/10 {
			t.Errorf("node %d holds %d edges, want ~%d", i, c, want)
		}
	}
}

func TestGridVertexCutConstraint(t *testing.T) {
	g := testGraph(t)
	const p = 16 // 4x4 grid
	vc, err := GridVertexCut(g, p)
	if err != nil {
		t.Fatal(err)
	}
	// Replication factor bounded by 2*sqrt(p)-1 = 7.
	rf := vc.Stats(g).ReplicationFactor
	if rf > 7 {
		t.Errorf("grid-cut RF %.2f exceeds 2*sqrt(p)-1 = 7", rf)
	}
	// Every edge must be owned by a node in the candidate sets of both
	// endpoints (row ∪ column of home cells).
	cols := 4
	cell := func(v graph.VertexID) (int, int) {
		h := int(hashVertex(v) % uint64(p))
		return h / cols, h % cols
	}
	for i, e := range g.Edges() {
		o := int(vc.EdgeOwner[i])
		or, oc := o/cols, o%cols
		sr, sc := cell(e.Src)
		dr, dc := cell(e.Dst)
		inSrcSet := or == sr || oc == sc
		inDstSet := or == dr || oc == dc
		if !inSrcSet || !inDstSet {
			t.Fatalf("edge %d owner (%d,%d) outside constraint sets src(%d,%d) dst(%d,%d)",
				i, or, oc, sr, sc, dr, dc)
		}
	}
}

func TestGridOrdering(t *testing.T) {
	// Grid-cut should have lower RF than random-cut on a skewed graph
	// (Fig 14a: random 15.96, grid 8.34, hybrid 5.56).
	g := datasets.Tiny(4000, 40000, 11)
	r, _ := RandomVertexCut(g, 16)
	gr, _ := GridVertexCut(g, 16)
	hy, _ := HybridVertexCut(g, 16, DefaultHybridCutConfig())
	rrf := r.Stats(g).ReplicationFactor
	grf := gr.Stats(g).ReplicationFactor
	hrf := hy.Stats(g).ReplicationFactor
	if !(hrf < grf && grf < rrf) {
		t.Errorf("want hybrid < grid < random, got %.2f %.2f %.2f", hrf, grf, rrf)
	}
}

func TestHybridValidation(t *testing.T) {
	g := testGraph(t)
	if _, err := HybridVertexCut(g, 4, HybridCutConfig{Threshold: 0}); err == nil {
		t.Error("expected error for zero threshold")
	}
}

func TestHybridLowDegreePlacement(t *testing.T) {
	// For a low-degree destination all its in-edges must land on one node.
	g := datasets.Tiny(1000, 4000, 5)
	vc, err := HybridVertexCut(g, 8, HybridCutConfig{Threshold: 10})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		if g.InDegree(graph.VertexID(v)) == 0 || g.InDegree(graph.VertexID(v)) > 10 {
			continue
		}
		var nodes []int32
		g.InEdges(graph.VertexID(v), func(i int, _ graph.Edge) {
			nodes = append(nodes, vc.EdgeOwner[i])
		})
		for _, n := range nodes[1:] {
			if n != nodes[0] {
				t.Fatalf("low-degree vertex %d has in-edges on nodes %v", v, nodes)
			}
		}
	}
}

func TestVertexCutMasksContainMasterAndEdges(t *testing.T) {
	g := testGraph(t)
	vc, err := HybridVertexCut(g, 8, DefaultHybridCutConfig())
	if err != nil {
		t.Fatal(err)
	}
	masks := vc.Masks(g)
	for v, m := range masks {
		if m&(1<<uint(vc.Master[v])) == 0 {
			t.Fatalf("vertex %d mask misses master node", v)
		}
	}
	for i, e := range g.Edges() {
		bit := uint64(1) << uint(vc.EdgeOwner[i])
		if masks[e.Src]&bit == 0 || masks[e.Dst]&bit == 0 {
			t.Fatalf("edge %d endpoints not present on owning node", i)
		}
	}
}

func TestStatsNoReplicaSplit(t *testing.T) {
	// Graph: 0->1 (same node), 2 isolated. With 2 nodes and everything on
	// node 0: all three vertices have no replicas; only 1 and 2 are
	// selfish (1 has no out-edges, 2 is isolated).
	g := graph.MustNew(3, []graph.Edge{{Src: 0, Dst: 1, Weight: 1}})
	ec := &EdgeCut{NumNodes: 2, Owner: []int32{0, 0, 0}}
	s := ec.Stats(g)
	if s.NoReplicaTotal != 3 {
		t.Errorf("NoReplicaTotal = %d, want 3", s.NoReplicaTotal)
	}
	if s.NoReplicaSelfish != 2 {
		t.Errorf("NoReplicaSelfish = %d, want 2", s.NoReplicaSelfish)
	}
	if s.ReplicationFactor != 1 {
		t.Errorf("RF = %v, want 1", s.ReplicationFactor)
	}
}

// Property: every partitioning keeps the replication factor >= 1 and every
// vertex present somewhere; every edge is assigned exactly once.
func TestPartitionInvariants(t *testing.T) {
	f := func(seed uint64, nodesRaw uint8) bool {
		numNodes := 1 + int(nodesRaw%16)
		g := datasets.Tiny(300, 1500, seed)
		ec, err := HashEdgeCut(g, numNodes)
		if err != nil {
			return false
		}
		vcs := make([]*VertexCut, 0, 3)
		if vc, err := RandomVertexCut(g, numNodes); err == nil {
			vcs = append(vcs, vc)
		}
		if vc, err := GridVertexCut(g, numNodes); err == nil {
			vcs = append(vcs, vc)
		}
		if vc, err := HybridVertexCut(g, numNodes, DefaultHybridCutConfig()); err == nil {
			vcs = append(vcs, vc)
		}
		if len(vcs) != 3 {
			return false
		}
		for _, m := range ec.Masks(g) {
			if m == 0 || bits.OnesCount64(m) > numNodes {
				return false
			}
		}
		for _, vc := range vcs {
			if vc.Stats(g).ReplicationFactor < 1 {
				return false
			}
			for _, o := range vc.EdgeOwner {
				if o < 0 || int(o) >= numNodes {
					return false
				}
			}
			for _, m := range vc.Masks(g) {
				if m == 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleNodeDegenerate(t *testing.T) {
	g := datasets.Tiny(100, 400, 3)
	ec, err := HashEdgeCut(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := ec.Stats(g)
	if s.ReplicationFactor != 1 {
		t.Errorf("single node RF = %v, want 1", s.ReplicationFactor)
	}
	if s.NoReplicaTotal != g.NumVertices() {
		t.Errorf("all vertices should lack replicas on 1 node")
	}
}
