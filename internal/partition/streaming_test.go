package partition

import (
	"testing"

	"imitator/internal/datasets"
	"imitator/internal/gen"
)

func TestLDGBeatsHashOnCommunities(t *testing.T) {
	g, err := gen.Community(gen.CommunityConfig{
		NumVertices: 3000, NumCommunities: 30, IntraDegree: 8, InterDegree: 0.3, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	hash, err := HashEdgeCut(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	ldg, err := LDGEdgeCut(g, 8, DefaultLDGConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ldg.Stats(g).ReplicationFactor >= hash.Stats(g).ReplicationFactor {
		t.Errorf("LDG RF %.2f not below hash RF %.2f",
			ldg.Stats(g).ReplicationFactor, hash.Stats(g).ReplicationFactor)
	}
}

func TestLDGBalance(t *testing.T) {
	g := datasets.Tiny(2000, 12000, 71)
	cfg := DefaultLDGConfig()
	ec, err := LDGEdgeCut(g, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sizes := make([]int, 8)
	for _, o := range ec.Owner {
		if o < 0 || o >= 8 {
			t.Fatalf("owner %d out of range", o)
		}
		sizes[o]++
	}
	limit := int(cfg.Nu*float64(g.NumVertices())/8) + 1
	for i, s := range sizes {
		if s > limit {
			t.Errorf("node %d holds %d masters, above soft capacity %d", i, s, limit)
		}
	}
}

func TestLDGValidation(t *testing.T) {
	g := datasets.Tiny(100, 400, 72)
	if _, err := LDGEdgeCut(g, 4, LDGConfig{Nu: 0}); err == nil {
		t.Error("zero slack accepted")
	}
	if _, err := LDGEdgeCut(g, 0, DefaultLDGConfig()); err == nil {
		t.Error("zero nodes accepted")
	}
}

func TestObliviousCoversEdgesAndBeatsRandom(t *testing.T) {
	g := datasets.Tiny(4000, 40000, 73)
	obl, err := ObliviousVertexCut(g, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range obl.EdgeOwner {
		if o < 0 || o >= 16 {
			t.Fatalf("edge owner %d out of range", o)
		}
	}
	random, err := RandomVertexCut(g, 16)
	if err != nil {
		t.Fatal(err)
	}
	if obl.Stats(g).ReplicationFactor >= random.Stats(g).ReplicationFactor {
		t.Errorf("oblivious RF %.2f not below random RF %.2f",
			obl.Stats(g).ReplicationFactor, random.Stats(g).ReplicationFactor)
	}
}

func TestObliviousLoadBalance(t *testing.T) {
	g := datasets.Tiny(2000, 20000, 74)
	vc, err := ObliviousVertexCut(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	s := vc.Stats(g)
	if s.MaxEdgesNode > 3*s.MinEdgesNode+8 {
		t.Errorf("edge load imbalance: max %d vs min %d", s.MaxEdgesNode, s.MinEdgesNode)
	}
}
