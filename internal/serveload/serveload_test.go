package serveload

import (
	"errors"
	"testing"

	"imitator/internal/core"
)

// TestGenDeterministic: two generators with the same config emit identical
// query streams; a different seed diverges.
func TestGenDeterministic(t *testing.T) {
	cfg := Config{Queries: 500, Seed: 42, NumVertices: 1000, TopK: 5}
	a, err := NewGen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewGen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	diverged := false
	other, _ := NewGen(Config{Queries: 500, Seed: 43, NumVertices: 1000, TopK: 5})
	for i := 0; i < 500; i++ {
		qa, qb := a.Next(), b.Next()
		if qa != qb {
			t.Fatalf("query %d diverged: %+v vs %+v", i, qa, qb)
		}
		if qa != other.Next() {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical streams")
	}
}

// TestRunAggregates drives the runner against a scripted source and checks
// the counters, percentiles and codec round trip.
func TestRunAggregates(t *testing.T) {
	n := 0
	src := func(q core.Query) (core.Answer, error) {
		n++
		switch {
		case n%7 == 0:
			return core.Answer{}, core.ErrVertexUnavailable
		case n%11 == 0:
			return core.Answer{}, core.ErrStaleRead
		}
		ans := core.Answer{Kind: q.Kind, Vertex: q.Vertex, Value: 1.5, Epoch: n % 5, Frontier: n%5 + 1, Node: 1}
		if q.Kind == core.QueryTopK {
			ans.TopK = []core.RankEntry{{Vertex: 1, Value: 2}, {Vertex: 0, Value: 1}}
		}
		if n%3 == 0 {
			ans.FromReplica = true
		}
		return ans, nil
	}
	st, err := Run(Config{Queries: 200, Seed: 7, NumVertices: 100}, src)
	if err != nil {
		t.Fatal(err)
	}
	if st.Issued != 200 || st.Answered == 0 || st.Unavailable == 0 || st.Stale == 0 {
		t.Fatalf("counters wrong: %+v", st)
	}
	if st.Answered+st.Unavailable+st.Stale != st.Issued {
		t.Fatalf("counters do not add up: %+v", st)
	}
	if st.FromReplica == 0 || st.MaxStaleness != 1 || st.MaxEpoch != 4 {
		t.Fatalf("answer-derived stats wrong: %+v", st)
	}
	if st.P50 < 0 || st.P99 < st.P50 || st.Max < st.P99 || st.QPS <= 0 {
		t.Fatalf("latency stats inconsistent: %+v", st)
	}
}

// TestRunConfigErrors: invalid configs and source errors surface.
func TestRunConfigErrors(t *testing.T) {
	ok := func(core.Query) (core.Answer, error) { return core.Answer{}, nil }
	if _, err := Run(Config{Queries: 0, NumVertices: 10}, ok); err == nil {
		t.Fatal("zero queries accepted")
	}
	if _, err := Run(Config{Queries: 10, NumVertices: 0}, ok); err == nil {
		t.Fatal("zero vertices accepted")
	}
	if _, err := Run(Config{Queries: 10, NumVertices: 10, ValueFrac: 0.9, TopKFrac: 0.2}, ok); err == nil {
		t.Fatal("overfull mix accepted")
	}
	boom := errors.New("boom")
	fail := func(core.Query) (core.Answer, error) { return core.Answer{}, boom }
	if _, err := Run(Config{Queries: 5, NumVertices: 10}, fail); !errors.Is(err, boom) {
		t.Fatalf("source error lost: %v", err)
	}
}
