// Package serveload is the deterministic load generator for serve mode: it
// drives a seeded stream of typed queries (vertex values, top-K ranks,
// neighborhoods) against a live cluster and reports latency percentiles
// and throughput. The query *sequence* is a pure function of the seed, so
// two runs issue byte-identical query streams; the measured latencies are
// host wall-clock (this package is load-bench tooling, not part of the
// simulated engine, and charges no simulated time).
//
// Every query and answer is round-tripped through the serve wire codec,
// so a load run also exercises the full protocol path a remote client
// would use.
package serveload

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"imitator/internal/core"
	"imitator/internal/graph"
	"imitator/internal/rng"
)

// Source answers queries — typically Cluster.Query or a Server handle.
type Source func(core.Query) (core.Answer, error)

// Config shapes one load run.
type Config struct {
	// Queries is the number of queries to issue (required, > 0).
	Queries int
	// Seed drives the deterministic query stream.
	Seed uint64
	// NumVertices bounds the vertex ids drawn (required, > 0). Queries
	// skew toward low ids (Zipf 0.8), like real ranked-read traffic.
	NumVertices int
	// TopK is the K used for top-K queries (default 10).
	TopK int
	// StalenessBound is passed through on every query (0 = config default).
	StalenessBound int
	// ValueFrac / TopKFrac split the stream: ValueFrac of the queries are
	// point reads, TopKFrac are top-K, the remainder neighborhoods.
	// Zero-valued defaults are 0.8 and 0.1.
	ValueFrac, TopKFrac float64
	// Done, when non-nil, keeps the run issuing paced queries past the
	// Queries budget until the channel closes — so a load run tracks a
	// live job end to end (chaos windows included) instead of draining its
	// budget in the first milliseconds.
	Done <-chan struct{}
}

func (c Config) withDefaults() (Config, error) {
	if c.Queries <= 0 {
		return c, fmt.Errorf("serveload: Queries must be positive, got %d", c.Queries)
	}
	if c.NumVertices <= 0 {
		return c, fmt.Errorf("serveload: NumVertices must be positive, got %d", c.NumVertices)
	}
	if c.TopK == 0 {
		c.TopK = 10
	}
	if c.ValueFrac == 0 && c.TopKFrac == 0 {
		c.ValueFrac, c.TopKFrac = 0.8, 0.1
	}
	if c.ValueFrac < 0 || c.TopKFrac < 0 || c.ValueFrac+c.TopKFrac > 1 {
		return c, fmt.Errorf("serveload: bad mix value=%v topk=%v", c.ValueFrac, c.TopKFrac)
	}
	return c, nil
}

// Stats is one load run's accounting. Latencies are in milliseconds.
type Stats struct {
	Issued      int
	Answered    int
	Unavailable int // ErrVertexUnavailable (honest refusals)
	Stale       int // ErrStaleRead rejections
	FromReplica int

	P50, P95, P99, Max float64
	QPS                float64 // answered queries per wall-clock second

	// MaxStaleness is the largest Answer.Staleness() observed.
	MaxStaleness int
	// MaxEpoch is the newest epoch observed (the run's progress as seen
	// through the query stream).
	MaxEpoch int
}

// Gen is a deterministic query generator; two Gens with equal configs
// produce identical streams.
type Gen struct {
	cfg  Config
	src  *rng.Source
	zipf *rng.Zipf
}

// NewGen builds a generator. Config errors surface here.
func NewGen(cfg Config) (*Gen, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	src := rng.New(cfg.Seed)
	return &Gen{cfg: cfg, src: src, zipf: rng.NewZipf(src, cfg.NumVertices, 0.8)}, nil
}

// Next returns the i-th query of the stream.
func (g *Gen) Next() core.Query {
	q := core.Query{StalenessBound: g.cfg.StalenessBound}
	switch p := g.src.Float64(); {
	case p < g.cfg.ValueFrac:
		q.Kind = core.QueryValue
		q.Vertex = graph.VertexID(g.zipf.Next())
	case p < g.cfg.ValueFrac+g.cfg.TopKFrac:
		q.Kind = core.QueryTopK
		q.K = g.cfg.TopK
	default:
		q.Kind = core.QueryNeighbors
		q.Vertex = graph.VertexID(g.zipf.Next())
		q.K = 4 * g.cfg.TopK
	}
	return q
}

// Run issues cfg.Queries queries against src and aggregates the stats.
// Each query and answer is round-tripped through the wire codec before and
// after the call, exactly as a remote client would see them.
func Run(cfg Config, src Source) (Stats, error) {
	g, err := NewGen(cfg)
	if err != nil {
		return Stats{}, err
	}
	var st Stats
	lats := make([]float64, 0, cfg.Queries)
	var buf []byte
	start := time.Now()
	for i := 0; ; i++ {
		if i >= cfg.Queries {
			if cfg.Done == nil {
				break
			}
			select {
			case <-cfg.Done:
				cfg.Done = nil // drain: run the budget's remainder, if any
				if i >= cfg.Queries {
					goto done
				}
			default:
				// Past the budget with the job still running: pace the
				// overflow queries so tracking a long run stays cheap.
				time.Sleep(200 * time.Microsecond)
			}
		}
		q := g.Next()
		buf = core.EncodeQuery(buf[:0], q)
		wq, err := core.DecodeQuery(buf)
		if err != nil {
			return st, fmt.Errorf("serveload: query codec round trip: %w", err)
		}
		st.Issued++
		t0 := time.Now()
		ans, err := src(wq)
		lat := time.Since(t0)
		if err != nil {
			switch {
			case errors.Is(err, core.ErrVertexUnavailable):
				st.Unavailable++
				continue
			case errors.Is(err, core.ErrStaleRead):
				st.Stale++
				continue
			default:
				return st, err
			}
		}
		buf = core.EncodeAnswer(buf[:0], ans)
		if ans, err = core.DecodeAnswer(buf); err != nil {
			return st, fmt.Errorf("serveload: answer codec round trip: %w", err)
		}
		st.Answered++
		lats = append(lats, float64(lat.Nanoseconds())/1e6)
		if ans.FromReplica {
			st.FromReplica++
		}
		if s := ans.Staleness(); s > st.MaxStaleness {
			st.MaxStaleness = s
		}
		if ans.Epoch > st.MaxEpoch {
			st.MaxEpoch = ans.Epoch
		}
	}
done:
	elapsed := time.Since(start).Seconds()
	if elapsed > 0 {
		st.QPS = float64(st.Answered) / elapsed
	}
	if len(lats) > 0 {
		sort.Float64s(lats)
		st.P50 = percentile(lats, 0.50)
		st.P95 = percentile(lats, 0.95)
		st.P99 = percentile(lats, 0.99)
		st.Max = lats[len(lats)-1]
	}
	return st, nil
}

// percentile reads the p-quantile from sorted latencies (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}
