// Package gossip implements a seeded, fully deterministic SWIM-style
// failure detector: periodic ping / ping-req(k) indirect probing,
// piggybacked membership dissemination with incarnation numbers, and
// suspicion timeouts. It runs over a netsim lossy network in best-effort
// datagram mode (SetDatagramKind), so drop/dup/reorder/partition chaos
// applies to the detector's own traffic — a dropped ack is genuinely
// lost, not retransmitted.
//
// Determinism contract: all randomness flows from Params.Seed through
// per-node internal/rng sources; every loop over nodes runs in ascending
// id order; no wall clock, no goroutines. Two detectors built with the
// same parameters and driven through the same Fail/Revive/RunPeriod
// sequence produce bit-identical state and traffic.
//
// Deviations from the SWIM paper, both to keep revival sound in a
// simulator that reuses node ids: (1) confirm ("dead") updates are
// incarnation-checked instead of overriding unconditionally, so a stale
// confirm cannot re-kill a node that rejoined at a higher incarnation;
// (2) Revive is coordinator-assisted — it installs the rejoined member
// in every view at a fresh incarnation, modeling the rebirth path where
// the replacement node is announced out of band.
package gossip

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"imitator/internal/costmodel"
	"imitator/internal/netsim"
	"imitator/internal/rng"
)

// Params configures a Detector. The zero value of each field selects the
// documented default.
type Params struct {
	// Seed drives every random choice (probe order shuffles, indirect
	// helper picks) via internal/rng.
	Seed uint64
	// PeriodSeconds is the simulated duration of one protocol period.
	// Default 0.5 (the cost model's heartbeat interval).
	PeriodSeconds float64
	// IndirectProbes is k, the number of ping-req helpers asked to probe
	// an unresponsive target indirectly. Default 3.
	IndirectProbes int
	// SuspicionPeriods is how many full periods a member stays suspected
	// before the suspicion is locally confirmed as a failure. The default
	// (0) scales with the cluster so a refutation rumor can make the
	// round trip before the timeout: ceil(4*log10(n+1)) periods — the
	// suspicion multiplier used by production SWIM implementations.
	SuspicionPeriods int
	// MaxPiggyback caps the membership updates piggybacked on one
	// datagram. Default 8.
	MaxPiggyback int
}

func (p Params) withDefaults(n int) Params {
	if p.PeriodSeconds <= 0 {
		p.PeriodSeconds = 0.5
	}
	if p.IndirectProbes <= 0 {
		p.IndirectProbes = 3
	}
	if p.SuspicionPeriods <= 0 {
		p.SuspicionPeriods = int(math.Ceil(4 * math.Log10(float64(n)+1)))
		if p.SuspicionPeriods < 3 {
			p.SuspicionPeriods = 3
		}
	}
	if p.MaxPiggyback <= 0 {
		p.MaxPiggyback = 8
	}
	return p
}

// member is one row of a node's local membership view.
type member struct {
	status UpdateKind // UpdAlive, UpdSuspect, or UpdConfirm
	inc    uint32
	since  int // period of the last status change (suspicion timer base)
	// final marks an expired suspicion awaiting its confirm-before-kill
	// probe: the owner must get one dedicated direct/indirect probe of
	// this member before the suspicion may be confirmed. A first-hand ack
	// restarts the suspicion window instead, giving the (incarnation-
	// gated) refutation rumor more time to arrive.
	final bool
}

// queued is one dissemination-queue entry: an update plus its remaining
// transmission budget (SWIM's "gossip at most O(log n) times").
type queued struct {
	upd  Update
	left int
}

// outMsg is a message staged for the next sub-round flush.
type outMsg struct {
	to  int
	msg Message
}

// node is the per-process protocol state.
type node struct {
	id      int
	src     *rng.Source
	view    []member
	order   []int // shuffled probe schedule; reshuffled on wraparound
	next    int
	selfInc uint32
	queue   []queued
	target  int  // this period's direct-probe target, -1 if none
	isFinal bool // target is a confirm-before-kill probe of a suspect
	gotAck  bool
	outbox  []outMsg
}

// Stats summarizes detector activity since construction.
type Stats struct {
	// Periods is the number of completed protocol periods.
	Periods int
	// FalseSuspicions counts probe-originated suspicions of nodes that
	// were up (ground truth) at the moment of suspicion.
	FalseSuspicions int
	// Messages is the total datagrams sent (before loss).
	Messages int64
	// Bytes is the total simulated network bytes, headers included.
	Bytes int64
}

// Detector simulates n SWIM members over one lossy network.
type Detector struct {
	n      int
	p      Params
	net    *netsim.Network
	nodes  []*node
	up     []bool // ground truth
	period int
	budget int // per-update transmission budget: 3*ceil(log2(n+1))

	// First-observer transition tracking: a node id is appended exactly
	// once per life (reset by Revive) when any view first suspects or
	// first confirms it.
	everSuspected []bool
	everConfirmed []bool
	suspects      []int
	confirms      []int

	falseSuspicions int
	messages        int64
	wireErr         error
}

// New builds a detector for n members, all initially alive, over a fresh
// lossy netsim network (omission enabled, control frames in datagram
// mode). Chaos — drop rates, partitions — is injected through Net.
func New(n int, p Params) (*Detector, error) {
	if n < 2 {
		return nil, fmt.Errorf("gossip: need at least 2 nodes, got %d", n)
	}
	p = p.withDefaults(n)
	net, err := netsim.New(n, costmodel.Default())
	if err != nil {
		return nil, err
	}
	net.EnableOmission(p.Seed)
	net.SetDatagramKind(netsim.KindControl)
	d := &Detector{
		n:             n,
		p:             p,
		net:           net,
		nodes:         make([]*node, n),
		up:            make([]bool, n),
		budget:        3 * (bits.Len(uint(n)) + 1),
		everSuspected: make([]bool, n),
		everConfirmed: make([]bool, n),
	}
	for id := 0; id < n; id++ {
		nd := &node{
			id:     id,
			src:    rng.New(p.Seed ^ rng.Hash2(uint64(id)+1, 0x5157494d)),
			view:   make([]member, n),
			target: -1,
		}
		for j := range nd.view {
			nd.view[j] = member{status: UpdAlive}
		}
		nd.order = nd.src.Perm(n)
		d.nodes[id] = nd
		d.up[id] = true
	}
	return d, nil
}

// Net exposes the detector's network for chaos injection (drop rates,
// partitions) and byte accounting.
func (d *Detector) Net() *netsim.Network { return d.net }

// PeriodSeconds reports the simulated duration of one protocol period.
func (d *Detector) PeriodSeconds() float64 { return d.p.PeriodSeconds }

// SuspicionPeriods reports the resolved suspicion timeout in periods
// (cluster-size-scaled when the Params field was left zero).
func (d *Detector) SuspicionPeriods() int { return d.p.SuspicionPeriods }

// Period reports the number of completed protocol periods.
func (d *Detector) Period() int { return d.period }

// Up reports ground truth for id.
func (d *Detector) Up(id int) bool { return d.up[id] }

// Fail marks id crashed (ground truth): it stops probing, answering, and
// gossiping, and the network drops its traffic, exactly like a failed
// worker in the engine.
func (d *Detector) Fail(id int) {
	d.up[id] = false
	d.net.SetFailed(id, true)
}

// Revive rejoins id with coordinator assistance: a fresh incarnation
// above anything any view has seen is installed everywhere, queued
// updates about id are purged, and first-observer tracking resets so the
// next failure of id is detected anew. This models the engine's rebirth
// announcement rather than SWIM's organic join.
func (d *Detector) Revive(id int) {
	d.up[id] = true
	d.net.SetFailed(id, false)
	var maxInc uint32
	for _, nd := range d.nodes {
		if nd.view[id].inc > maxInc {
			maxInc = nd.view[id].inc
		}
	}
	if d.nodes[id].selfInc > maxInc {
		maxInc = d.nodes[id].selfInc
	}
	inc := maxInc + 1
	for _, nd := range d.nodes {
		nd.view[id] = member{status: UpdAlive, inc: inc, since: d.period}
		q := nd.queue[:0]
		for _, e := range nd.queue {
			if int(e.upd.Node) != id {
				q = append(q, e)
			}
		}
		nd.queue = q
	}
	d.nodes[id].selfInc = inc
	d.everSuspected[id] = false
	d.everConfirmed[id] = false
}

// ForceConfirm marks id failed in every view immediately, bypassing the
// protocol. The core detector seam uses it as a liveness backstop when
// chaos (e.g. a full partition) keeps gossip from converging in bounded
// periods.
func (d *Detector) ForceConfirm(id int) {
	for _, nd := range d.nodes {
		if nd.id == id {
			continue
		}
		if nd.view[id].status != UpdConfirm {
			nd.view[id].status = UpdConfirm
			nd.view[id].since = d.period
		}
	}
	if !d.everConfirmed[id] {
		d.everConfirmed[id] = true
		d.confirms = append(d.confirms, id)
	}
}

// StatusAt reports how observer currently classifies id. A node always
// considers itself alive.
func (d *Detector) StatusAt(observer, id int) UpdateKind {
	if observer == id {
		return UpdAlive
	}
	return d.nodes[observer].view[id].status
}

// TakeSuspects drains the ids whose first suspicion (by any view, this
// life) happened since the last call.
func (d *Detector) TakeSuspects() []int {
	s := d.suspects
	d.suspects = nil
	return s
}

// TakeConfirms drains the ids whose first confirmation (by any view,
// this life) happened since the last call.
func (d *Detector) TakeConfirms() []int {
	s := d.confirms
	d.confirms = nil
	return s
}

// Stats summarizes detector activity so far.
func (d *Detector) Stats() Stats {
	return Stats{
		Periods:         d.period,
		FalseSuspicions: d.falseSuspicions,
		Messages:        d.messages,
		Bytes:           d.net.TotalBytes(),
	}
}

// Err surfaces any network or codec error recorded during simulation.
// Both indicate a simulator bug: the closed system never produces
// genuinely malformed frames.
func (d *Detector) Err() error {
	if err := d.net.Err(); err != nil {
		return err
	}
	return d.wireErr
}

// Close releases the underlying network.
func (d *Detector) Close() error { return d.net.Close() }

// RunPeriod advances the protocol by one period: every up node runs one
// direct probe, escalating to ping-req(k) indirect probing on silence,
// across six lockstep sub-rounds (ping, ack, ping-req, indirect ping,
// indirect ack, forwarded ack); then probe outcomes and suspicion
// timeouts are folded into each local view.
func (d *Detector) RunPeriod() {
	d.startPeriod()
	for sub := 0; sub < 6; sub++ {
		d.flush()
		d.net.FinishRound()
		d.deliver()
		if sub == 1 {
			// Direct acks are in; silent probes escalate to ping-req(k).
			d.stagePingReqs()
		}
	}
	d.endPeriod()
	d.period++
}

// startPeriod picks each up node's probe target and stages the ping.
func (d *Detector) startPeriod() {
	for id := 0; id < d.n; id++ {
		nd := d.nodes[id]
		nd.target = -1
		nd.isFinal = false
		nd.gotAck = false
		if !d.up[id] {
			continue
		}
		t := nd.pickFinal(d.n)
		if t < 0 {
			t = nd.pickTarget(d.n)
		} else {
			nd.isFinal = true
		}
		if t < 0 {
			continue
		}
		nd.target = t
		d.stage(nd, t, MsgPing, 0)
	}
}

// pickFinal selects the most overdue expired suspicion owed a
// confirm-before-kill probe: lowest since, then lowest id — one per
// period, so simultaneous timeouts drain deterministically.
func (nd *node) pickFinal(n int) int {
	best := -1
	for j := 0; j < n; j++ {
		if j == nd.id {
			continue
		}
		mv := &nd.view[j]
		if mv.status != UpdSuspect || !mv.final {
			continue
		}
		if best < 0 || mv.since < nd.view[best].since {
			best = j
		}
	}
	return best
}

// pickTarget advances the shuffled round-robin schedule past self and
// confirmed-dead members, reshuffling on wraparound.
func (nd *node) pickTarget(n int) int {
	for tries := 0; tries < n; tries++ {
		if nd.next >= len(nd.order) {
			nd.order = nd.src.Perm(n)
			nd.next = 0
		}
		t := nd.order[nd.next]
		nd.next++
		if t != nd.id && nd.view[t].status != UpdConfirm {
			return t
		}
	}
	return -1
}

// stagePingReqs fans each unanswered probe out to k indirect helpers.
func (d *Detector) stagePingReqs() {
	k := d.p.IndirectProbes
	for id := 0; id < d.n; id++ {
		nd := d.nodes[id]
		if !d.up[id] || nd.target < 0 || nd.gotAck {
			continue
		}
		var cands []int
		for j := 0; j < d.n; j++ {
			if j != id && j != nd.target && nd.view[j].status != UpdConfirm {
				cands = append(cands, j)
			}
		}
		perm := nd.src.Perm(len(cands))
		for i := 0; i < len(perm) && i < k; i++ {
			d.stage(nd, cands[perm[i]], MsgPingReq, int32(nd.target))
		}
	}
}

// stage queues a message from nd for the next flush, attaching up to
// MaxPiggyback updates from the dissemination queue and retiring entries
// whose transmission budget is spent.
func (d *Detector) stage(nd *node, to int, kind MsgKind, about int32) {
	m := Message{Kind: kind, From: int32(nd.id), About: about}
	// Least-transmitted first (SWIM §4.1): fresh updates — new suspicions
	// and, critically, refutations — outrank rumors that have already had
	// their airtime, so they never starve behind a long queue. The sort is
	// stable, so equal budgets keep queue order and stay deterministic.
	sort.SliceStable(nd.queue, func(i, j int) bool {
		return nd.queue[i].left > nd.queue[j].left
	})
	for i := range nd.queue {
		if len(m.Updates) >= d.p.MaxPiggyback {
			break
		}
		if nd.queue[i].left > 0 {
			m.Updates = append(m.Updates, nd.queue[i].upd)
			nd.queue[i].left--
		}
	}
	q := nd.queue[:0]
	for _, e := range nd.queue {
		if e.left > 0 {
			q = append(q, e)
		}
	}
	nd.queue = q
	nd.outbox = append(nd.outbox, outMsg{to: to, msg: m})
}

// flush sends every staged message in ascending node order.
func (d *Detector) flush() {
	for id := 0; id < d.n; id++ {
		nd := d.nodes[id]
		for i := range nd.outbox {
			om := &nd.outbox[i]
			d.net.Send(id, om.to, netsim.KindControl, AppendMessage(nil, &om.msg))
			d.messages++
		}
		nd.outbox = nd.outbox[:0]
	}
}

// deliver drains every inbox in ascending node order, folds piggybacked
// updates into the receiver's view, and runs the probe state machine.
func (d *Detector) deliver() {
	for id := 0; id < d.n; id++ {
		msgs := d.net.Receive(id)
		if !d.up[id] {
			continue
		}
		nd := d.nodes[id]
		for _, raw := range msgs {
			if raw.Kind != netsim.KindControl {
				continue
			}
			m, err := DecodeMessage(raw.Payload)
			if err != nil {
				if d.wireErr == nil {
					d.wireErr = fmt.Errorf("gossip: node %d: %w", id, err)
				}
				continue
			}
			d.applyUpdates(nd, &m)
			d.handle(nd, &m)
		}
	}
}

// handle runs the probe state machine for one received message.
func (d *Detector) handle(nd *node, m *Message) {
	from := int(m.From)
	switch m.Kind {
	case MsgPing:
		nd.stageReply(d, from, MsgAck, 0)
	case MsgAck:
		if nd.target == from {
			nd.gotAck = true
		}
	case MsgPingReq:
		// Probe m.About on behalf of from.
		nd.stageReply(d, int(m.About), MsgIndPing, m.From)
	case MsgIndPing:
		// m.About is the origin; answer the helper, naming the origin.
		nd.stageReply(d, from, MsgIndAck, m.About)
	case MsgIndAck:
		// Relay the answer to the origin, naming the target that spoke.
		nd.stageReply(d, int(m.About), MsgFwdAck, m.From)
	case MsgFwdAck:
		if nd.target == int(m.About) {
			nd.gotAck = true
		}
	}
}

// stageReply validates the destination (duplicated or fuzzed frames may
// name anything) before staging.
func (nd *node) stageReply(d *Detector, to int, kind MsgKind, about int32) {
	if to < 0 || to >= d.n || to == nd.id {
		return
	}
	d.stage(nd, to, kind, about)
}

// endPeriod turns silent probes into suspicions and expired suspicions
// into confirmations.
func (d *Detector) endPeriod() {
	for id := 0; id < d.n; id++ {
		nd := d.nodes[id]
		if !d.up[id] {
			continue
		}
		if t := nd.target; t >= 0 && !nd.gotAck && nd.view[t].status == UpdAlive {
			d.transition(nd, Update{Kind: UpdSuspect, Node: int32(t), Inc: nd.view[t].inc}, true)
		}
		// Resolve a completed confirm-before-kill probe: a failed final
		// probe confirms the suspect; a first-hand (direct or indirect)
		// ack restarts its suspicion window instead. The restart is
		// local-only — without the suspect's own incarnation bump there
		// is nothing sound to gossip.
		if t := nd.target; t >= 0 && nd.isFinal && nd.view[t].status == UpdSuspect {
			mv := &nd.view[t]
			if nd.gotAck {
				mv.since = d.period
				mv.final = false
			} else {
				d.transition(nd, Update{Kind: UpdConfirm, Node: int32(t), Inc: mv.inc}, false)
			}
		}
		// Expired suspicions don't confirm outright: they queue for a
		// confirm-before-kill probe (Lifeguard's final check), which a
		// live suspect survives even when its refutation rumor lost the
		// dissemination race.
		for j := 0; j < d.n; j++ {
			mv := &nd.view[j]
			if mv.status == UpdSuspect && !mv.final && d.period-mv.since >= d.p.SuspicionPeriods {
				mv.final = true
			}
		}
	}
}

// queueUpdate enqueues u for dissemination from nd, superseding any
// queued update about the same node.
func (d *Detector) queueUpdate(nd *node, u Update) {
	for i := range nd.queue {
		if nd.queue[i].upd.Node == u.Node {
			nd.queue[i] = queued{upd: u, left: d.budget}
			return
		}
	}
	nd.queue = append(nd.queue, queued{upd: u, left: d.budget})
}

// applyUpdates folds a message's piggybacked updates into nd's view,
// including self-refutation.
func (d *Detector) applyUpdates(nd *node, m *Message) {
	for _, u := range m.Updates {
		j := int(u.Node)
		if j < 0 || j >= d.n {
			continue
		}
		if j == nd.id {
			// Refutation: someone thinks we are suspect or dead. If the
			// rumor's incarnation is current, outbid it and gossip that
			// we are alive.
			if u.Kind != UpdAlive && u.Inc >= nd.selfInc {
				nd.selfInc = u.Inc + 1
				d.queueUpdate(nd, Update{Kind: UpdAlive, Node: int32(nd.id), Inc: nd.selfInc})
			}
			continue
		}
		d.transition(nd, u, false)
	}
}

// transition applies one membership statement to nd's view of u.Node
// under SWIM's precedence rules — alive needs a strictly newer
// incarnation, suspect wins ties against alive, confirm is
// incarnation-checked (see the package comment) — and re-disseminates on
// change. originated marks a suspicion born from nd's own failed probe,
// which is what the false-suspicion metric counts.
func (d *Detector) transition(nd *node, u Update, originated bool) {
	j := int(u.Node)
	mv := &nd.view[j]
	changed := false
	switch u.Kind {
	case UpdAlive:
		if mv.status != UpdConfirm && u.Inc > mv.inc {
			mv.status = UpdAlive
			mv.inc = u.Inc
			mv.since = d.period
			mv.final = false
			changed = true
		}
	case UpdSuspect:
		if mv.status != UpdConfirm &&
			(u.Inc > mv.inc || (u.Inc == mv.inc && mv.status == UpdAlive)) {
			mv.status = UpdSuspect
			mv.inc = u.Inc
			mv.since = d.period
			mv.final = false
			changed = true
			if !d.everSuspected[j] {
				d.everSuspected[j] = true
				d.suspects = append(d.suspects, j)
			}
			if originated && d.up[j] {
				d.falseSuspicions++
			}
		}
	case UpdConfirm:
		if mv.status != UpdConfirm && u.Inc >= mv.inc {
			mv.status = UpdConfirm
			mv.since = d.period
			mv.final = false
			changed = true
			if !d.everConfirmed[j] {
				d.everConfirmed[j] = true
				d.confirms = append(d.confirms, j)
			}
		}
	}
	if changed {
		d.queueUpdate(nd, Update{Kind: mv.status, Node: int32(j), Inc: mv.inc})
	}
}
