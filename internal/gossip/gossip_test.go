package gossip

import (
	"testing"
)

func newDetector(t *testing.T, n int, p Params) *Detector {
	t.Helper()
	d, err := New(n, p)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func checkClean(t *testing.T, d *Detector) {
	t.Helper()
	if err := d.Err(); err != nil {
		t.Fatalf("detector error: %v", err)
	}
}

// runUntilConfirmed drives periods until every id in want has been
// confirmed by some view, failing the test past maxPeriods.
func runUntilConfirmed(t *testing.T, d *Detector, want []int, maxPeriods int) map[int]int {
	t.Helper()
	confirmedAt := make(map[int]int)
	for p := 0; p < maxPeriods; p++ {
		d.RunPeriod()
		for _, id := range d.TakeConfirms() {
			if _, ok := confirmedAt[id]; !ok {
				confirmedAt[id] = d.Period()
			}
		}
		done := true
		for _, id := range want {
			if _, ok := confirmedAt[id]; !ok {
				done = false
			}
		}
		if done {
			return confirmedAt
		}
	}
	t.Fatalf("not all of %v confirmed within %d periods (got %v)", want, maxPeriods, confirmedAt)
	return nil
}

func TestDetectSingleFailure(t *testing.T) {
	d := newDetector(t, 8, Params{Seed: 1})
	defer d.Close()
	d.RunPeriod()
	d.RunPeriod()
	d.TakeSuspects()
	d.TakeConfirms()
	d.Fail(3)
	failPeriod := d.Period()
	at := runUntilConfirmed(t, d, []int{3}, 40)
	// Lower bound: a confirm can only follow a full suspicion timeout.
	if lat := at[3] - failPeriod; lat < d.p.SuspicionPeriods {
		t.Fatalf("confirmed after %d periods, below the suspicion timeout %d",
			lat, d.p.SuspicionPeriods)
	}
	if st := d.Stats(); st.FalseSuspicions != 0 {
		t.Fatalf("lossless run originated %d false suspicions", st.FalseSuspicions)
	}
	// Every surviving view must agree once dissemination catches up.
	for p := 0; p < 10; p++ {
		d.RunPeriod()
	}
	for v := 0; v < 8; v++ {
		if v == 3 {
			continue
		}
		if s := d.StatusAt(v, 3); s != UpdConfirm {
			t.Fatalf("view %d has node 3 in state %d, want confirmed", v, s)
		}
	}
	checkClean(t, d)
}

func TestDetectUnderDrop(t *testing.T) {
	d := newDetector(t, 16, Params{Seed: 2})
	defer d.Close()
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			if i != j {
				d.Net().SetDropRate(i, j, 0.2)
			}
		}
	}
	d.Fail(5)
	d.Fail(11)
	runUntilConfirmed(t, d, []int{5, 11}, 80)
	checkClean(t, d)
}

func TestRefutationClearsFalseSuspicion(t *testing.T) {
	d := newDetector(t, 6, Params{Seed: 3, SuspicionPeriods: 4})
	defer d.Close()
	// Isolate a live node for two periods: probes into the partition are
	// lost datagrams, so someone suspects it.
	d.Net().Partition([]int{4})
	d.RunPeriod()
	d.RunPeriod()
	suspected := false
	for _, id := range d.TakeSuspects() {
		if id == 4 {
			suspected = true
		}
	}
	if !suspected {
		t.Fatal("two isolated periods raised no suspicion of node 4")
	}
	if st := d.Stats(); st.FalseSuspicions == 0 {
		t.Fatal("suspicion of a live node not counted as false")
	}
	// Heal well inside the suspicion timeout: node 4 must refute and
	// never be confirmed dead.
	d.Net().Heal([]int{4})
	for p := 0; p < 12; p++ {
		d.RunPeriod()
		for _, id := range d.TakeConfirms() {
			if id == 4 {
				t.Fatalf("live node 4 confirmed dead at period %d despite heal", d.Period())
			}
		}
	}
	for v := 0; v < 6; v++ {
		if s := d.StatusAt(v, 4); s != UpdAlive {
			t.Fatalf("view %d still has node 4 in state %d after refutation", v, s)
		}
	}
	checkClean(t, d)
}

func TestReviveRejoinsAndRedetects(t *testing.T) {
	d := newDetector(t, 8, Params{Seed: 4})
	defer d.Close()
	d.Fail(2)
	runUntilConfirmed(t, d, []int{2}, 40)
	d.Revive(2)
	for p := 0; p < 8; p++ {
		d.RunPeriod()
	}
	if got := d.TakeConfirms(); len(got) != 0 {
		t.Fatalf("revived node re-confirmed dead: %v", got)
	}
	for v := 0; v < 8; v++ {
		if s := d.StatusAt(v, 2); s != UpdAlive {
			t.Fatalf("view %d has revived node 2 in state %d", v, s)
		}
	}
	// The second life must be detectable anew.
	d.Fail(2)
	runUntilConfirmed(t, d, []int{2}, 40)
	checkClean(t, d)
}

func TestForceConfirm(t *testing.T) {
	d := newDetector(t, 4, Params{Seed: 5})
	defer d.Close()
	d.Fail(1)
	d.ForceConfirm(1)
	confirmed := false
	for _, id := range d.TakeConfirms() {
		if id == 1 {
			confirmed = true
		}
	}
	if !confirmed {
		t.Fatal("ForceConfirm did not surface a confirm transition")
	}
	for v := 0; v < 4; v++ {
		if v != 1 && d.StatusAt(v, 1) != UpdConfirm {
			t.Fatalf("view %d missed the forced confirm", v)
		}
	}
}

// viewFingerprint folds every view's status and incarnation into a
// comparable value.
func viewFingerprint(d *Detector) uint64 {
	var h uint64 = 1469598103934665603
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	for _, nd := range d.nodes {
		for j := range nd.view {
			mix(uint64(nd.view[j].status))
			mix(uint64(nd.view[j].inc))
		}
	}
	return h
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (Stats, uint64) {
		d, err := New(24, Params{Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		for i := 0; i < 24; i++ {
			for j := 0; j < 24; j++ {
				if i != j {
					d.Net().SetDropRate(i, j, 0.15)
					d.Net().SetDupRate(i, j, 0.05)
				}
			}
		}
		for p := 0; p < 30; p++ {
			if p == 5 {
				d.Fail(7)
			}
			if p == 12 {
				d.Net().Partition([]int{1, 2})
			}
			if p == 18 {
				d.Net().Heal([]int{1, 2})
			}
			if p == 22 {
				d.Revive(7)
			}
			d.RunPeriod()
		}
		checkClean(t, d)
		return d.Stats(), viewFingerprint(d)
	}
	s1, f1 := run()
	s2, f2 := run()
	if s1 != s2 {
		t.Fatalf("stats diverged across identical runs:\n%+v\n%+v", s1, s2)
	}
	if f1 != f2 {
		t.Fatalf("membership views diverged across identical runs")
	}
	if s1.Messages == 0 || s1.Bytes == 0 {
		t.Fatalf("run sent no traffic: %+v", s1)
	}
}

func TestLargeClusterDetects(t *testing.T) {
	const n = 300
	d := newDetector(t, n, Params{Seed: 6})
	defer d.Close()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				d.Net().SetDropRate(i, j, 0.05)
			}
		}
	}
	d.Fail(17)
	d.Fail(170)
	d.Fail(299)
	at := runUntilConfirmed(t, d, []int{17, 170, 299}, 120)
	for id, p := range at {
		t.Logf("node %d confirmed at period %d", id, p)
	}
	checkClean(t, d)
}
