package gossip

import (
	"bytes"
	"testing"
)

func TestWireRoundTrip(t *testing.T) {
	msgs := []Message{
		{Kind: MsgPing, From: 3},
		{Kind: MsgAck, From: 7, About: 0},
		{Kind: MsgPingReq, From: 0, About: 511},
		{Kind: MsgFwdAck, From: 1000, About: 2, Updates: []Update{
			{Kind: UpdAlive, Node: 5, Inc: 0},
			{Kind: UpdSuspect, Node: 9, Inc: 3},
			{Kind: UpdConfirm, Node: 1023, Inc: 4294967295},
		}},
	}
	for i, want := range msgs {
		buf := AppendMessage(nil, &want)
		got, err := DecodeMessage(buf)
		if err != nil {
			t.Fatalf("msg %d: decode: %v", i, err)
		}
		if got.Kind != want.Kind || got.From != want.From || got.About != want.About {
			t.Fatalf("msg %d: header mismatch: got %+v want %+v", i, got, want)
		}
		if len(got.Updates) != len(want.Updates) {
			t.Fatalf("msg %d: %d updates, want %d", i, len(got.Updates), len(want.Updates))
		}
		for j := range want.Updates {
			if got.Updates[j] != want.Updates[j] {
				t.Fatalf("msg %d update %d: got %+v want %+v", i, j, got.Updates[j], want.Updates[j])
			}
		}
	}
}

func TestWireDecodeRejectsMalformed(t *testing.T) {
	good := AppendMessage(nil, &Message{Kind: MsgPing, From: 1, Updates: []Update{
		{Kind: UpdAlive, Node: 2, Inc: 1},
	}})
	cases := map[string][]byte{
		"empty":          nil,
		"bad version":    {2, byte(MsgPing), 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		"zero msg kind":  {wireVersion, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		"huge msg kind":  {wireVersion, 99, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		"truncated hdr":  good[:5],
		"truncated upd":  good[:len(good)-1],
		"trailing bytes": append(append([]byte{}, good...), 0),
		"count overruns": {wireVersion, byte(MsgPing), 0, 0, 0, 0, 0, 0, 0, 0, 255, 255},
	}
	// Flip the update kind to an invalid value in place.
	bad := append([]byte{}, good...)
	bad[12] = 200
	cases["bad update kind"] = bad
	for name, buf := range cases {
		if _, err := DecodeMessage(buf); err == nil {
			t.Errorf("%s: decode accepted malformed payload", name)
		}
	}
}

func FuzzGossipDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendMessage(nil, &Message{Kind: MsgPing, From: 1}))
	f.Add(AppendMessage(nil, &Message{Kind: MsgFwdAck, From: 3, About: 4, Updates: []Update{
		{Kind: UpdSuspect, Node: 7, Inc: 12},
	}}))
	f.Add([]byte{wireVersion, byte(MsgAck), 1, 0, 0, 0, 0, 0, 0, 0, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMessage(data)
		if err != nil {
			return
		}
		// Accepted payloads must re-encode to the identical bytes
		// (the format has no redundancy) and survive a second decode.
		re := AppendMessage(nil, &m)
		if !bytes.Equal(re, data) {
			t.Fatalf("re-encode mismatch:\n in=%x\nout=%x", data, re)
		}
		if _, err := DecodeMessage(re); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}
