package gossip

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire format of one gossip datagram, little endian:
//
//	u8  version (wireVersion)
//	u8  message kind (MsgPing..MsgFwdAck)
//	u32 sender node id
//	u32 subject node id (probe target / probe origin; 0 where unused)
//	u16 piggybacked update count
//	count * { u8 update kind | u32 node id | u32 incarnation }
//
// Every decoder bound is checked against the remaining payload before any
// allocation, and trailing bytes are an error — the same contract as the
// serve-mode codec in internal/core/servewire.go.

// wireVersion guards against decoding frames from a different protocol
// revision (and gives the fuzzer a cheap reject path).
const wireVersion = 1

// updateWireBytes is the encoded size of one piggybacked update.
const updateWireBytes = 9

// maxWireUpdates bounds the update count a single datagram may carry;
// encoders stay far below it (Params.MaxPiggyback), decoders reject
// anything above it before sizing buffers.
const maxWireUpdates = 1024

// errMalformed reports a truncated or inconsistent gossip payload.
var errMalformed = errors.New("gossip: malformed payload")

// MsgKind enumerates the SWIM probe messages.
type MsgKind uint8

// Probe message kinds. The six sub-rounds of one protocol period carry
// exactly one kind each: direct ping, direct ack, indirect-probe request,
// indirect ping, indirect ack, forwarded ack.
const (
	MsgPing MsgKind = iota + 1
	MsgAck
	MsgPingReq
	MsgIndPing
	MsgIndAck
	MsgFwdAck
	msgKindEnd
)

// UpdateKind enumerates disseminated membership-state transitions.
type UpdateKind uint8

// Membership update kinds, in increasing override strength at equal
// incarnation: alive < suspect < confirm.
const (
	UpdAlive UpdateKind = iota + 1
	UpdSuspect
	UpdConfirm
	updKindEnd
)

// Update is one piggybacked membership statement: "node is in this state
// at this incarnation".
type Update struct {
	Kind UpdateKind
	Node int32
	Inc  uint32
}

// Message is one decoded gossip datagram.
type Message struct {
	Kind MsgKind
	From int32
	// About names the message's subject: the probe target for MsgPingReq
	// and MsgIndPing, the probe origin for MsgIndAck, and the probed
	// target for MsgFwdAck. Zero for plain pings and acks.
	About   int32
	Updates []Update
}

// AppendMessage encodes m onto buf and returns the extended slice.
func AppendMessage(buf []byte, m *Message) []byte {
	buf = append(buf, wireVersion, byte(m.Kind))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.From))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.About))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(m.Updates)))
	for i := range m.Updates {
		u := &m.Updates[i]
		buf = append(buf, byte(u.Kind))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(u.Node))
		buf = binary.LittleEndian.AppendUint32(buf, u.Inc)
	}
	return buf
}

// reader consumes a payload with sticky error handling.
type reader struct {
	buf []byte
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = errMalformed
	}
}

func (r *reader) u8() uint8 {
	if r.err != nil || len(r.buf) < 1 {
		r.fail()
		return 0
	}
	v := r.buf[0]
	r.buf = r.buf[1:]
	return v
}

func (r *reader) u16() uint16 {
	if r.err != nil || len(r.buf) < 2 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(r.buf)
	r.buf = r.buf[2:]
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || len(r.buf) < 4 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf)
	r.buf = r.buf[4:]
	return v
}

func (r *reader) remaining() int { return len(r.buf) }

// DecodeMessage parses one gossip datagram. The returned message's
// Updates slice is freshly allocated; data is not retained.
func DecodeMessage(data []byte) (Message, error) {
	r := &reader{buf: data}
	var m Message
	if v := r.u8(); r.err == nil && v != wireVersion {
		return Message{}, fmt.Errorf("%w: version %d, want %d", errMalformed, v, wireVersion)
	}
	m.Kind = MsgKind(r.u8())
	if r.err == nil && (m.Kind == 0 || m.Kind >= msgKindEnd) {
		return Message{}, fmt.Errorf("%w: message kind %d", errMalformed, m.Kind)
	}
	m.From = int32(r.u32())
	m.About = int32(r.u32())
	n := int(r.u16())
	if n > maxWireUpdates || n*updateWireBytes > r.remaining() {
		// sanity bound: each update is exactly 9 bytes
		r.fail()
	}
	if r.err == nil && n > 0 {
		m.Updates = make([]Update, n) //imitator:wirebounds-ok n is checked against maxWireUpdates and remaining() above; r.err gates this branch
		for i := 0; i < n; i++ {
			u := &m.Updates[i]
			u.Kind = UpdateKind(r.u8())
			u.Node = int32(r.u32())
			u.Inc = r.u32()
			if r.err == nil && (u.Kind == 0 || u.Kind >= updKindEnd) {
				return Message{}, fmt.Errorf("%w: update kind %d", errMalformed, u.Kind)
			}
		}
	}
	if r.err != nil {
		return Message{}, r.err
	}
	if r.remaining() != 0 {
		return Message{}, fmt.Errorf("%w: %d trailing bytes", errMalformed, r.remaining())
	}
	return m, nil
}
