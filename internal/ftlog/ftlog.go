// Package ftlog defines the wire format of the log-based fault-tolerance
// strategy's superstep logs (after Yan, Cheng & Yang, arXiv:1601.06496).
//
// At the end of each committed superstep, every node persists one log file
// holding (a) the state deltas of its masters touched this superstep and
// (b) the raw sync payloads it received this superstep, in receive order.
// On failure, only the reborn node replays its own chain of log files;
// survivors do nothing. A full record (compaction) replaces the delta +
// message sections with a snapshot of every entry, bounding the chain.
//
// File layout (little-endian):
//
//	u32 superstep
//	u8  kind            (KindDelta | KindFull)
//	u32 recordCount
//	recordCount x record:
//	  u32 pos | u8 flags | i32 stamp | u32 valLen | valLen value bytes
//	u32 msgCount
//	msgCount x message:
//	  u32 len | len payload bytes
//
// The value bytes are opaque to this package (the engine's value codec
// writes them); the explicit valLen keeps decoding bounds-checkable
// without knowing the codec. Encoding is split into append/patch helpers
// so the engine can stream chunk-parallel encodes into pooled buffers
// without per-record closures or copies.
package ftlog

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Log-file kinds.
const (
	// KindDelta holds touched-master deltas plus the superstep's received
	// sync payloads.
	KindDelta byte = 1
	// KindFull holds a snapshot record for every entry and no messages
	// (compaction; replay chains restart here).
	KindFull byte = 2
)

// Record flag bits.
const (
	// FlagActive carries the master's committed activity.
	FlagActive byte = 1 << 0
	// FlagLastActivate carries the committed scatter flag.
	FlagLastActivate byte = 1 << 1
)

// headerLen is the fixed file prefix: superstep + kind + record count.
const headerLen = 4 + 1 + 4

// recordPrefixLen is the fixed part of one record before the value bytes.
const recordPrefixLen = 4 + 1 + 4 + 4

// AppendFileHeader begins a log file: superstep and kind. The caller
// reserves the record-count slot next with AppendCountPlaceholder.
func AppendFileHeader(buf []byte, superstep uint32, kind byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, superstep)
	return append(buf, kind)
}

// AppendCountPlaceholder reserves a u32 count slot, returning its offset
// for PatchCount.
func AppendCountPlaceholder(buf []byte) ([]byte, int) {
	at := len(buf)
	return binary.LittleEndian.AppendUint32(buf, 0), at
}

// PatchCount writes n into the count slot reserved at `at`.
func PatchCount(buf []byte, at, n int) {
	binary.LittleEndian.PutUint32(buf[at:at+4], uint32(n))
}

// AppendRecordPrefix appends one record's fixed fields and reserves its
// valLen slot; the caller appends the value bytes and calls PatchValLen
// with the returned offset.
func AppendRecordPrefix(buf []byte, pos uint32, flags byte, stamp int32) ([]byte, int) {
	buf = binary.LittleEndian.AppendUint32(buf, pos)
	buf = append(buf, flags)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(stamp))
	at := len(buf)
	return binary.LittleEndian.AppendUint32(buf, 0), at
}

// PatchValLen records that the value bytes run from the valLen slot's end
// to the current end of buf.
func PatchValLen(buf []byte, at int) {
	n := len(buf) - at - 4
	if int64(n) > math.MaxUint32 {
		panic("ftlog: value length overflows the u32 length field")
	}
	binary.LittleEndian.PutUint32(buf[at:at+4], uint32(n))
}

// AppendMessage appends one length-prefixed message payload.
func AppendMessage(buf, payload []byte) []byte {
	if len(payload) > math.MaxUint32 {
		panic("ftlog: message payload overflows the u32 length prefix")
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	return append(buf, payload...)
}

// Record is one decoded state record. Val aliases the decoder's input
// buffer; callers copy what they keep.
type Record struct {
	Pos   uint32
	Flags byte
	Stamp int32
	Val   []byte
}

// Decoder walks one log file with strict wire bounds: every length and
// count is validated against the remaining bytes before any slice is
// taken, so hostile inputs error instead of panicking or over-reading.
type Decoder struct {
	buf       []byte
	off       int
	superstep uint32
	kind      byte
	recLeft   int
	msgLeft   int
	inMsgs    bool
}

// NewDecoder parses the file header and record count.
func NewDecoder(data []byte) (*Decoder, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("ftlog: truncated header: %d bytes", len(data))
	}
	d := &Decoder{
		buf:       data,
		off:       headerLen,
		superstep: binary.LittleEndian.Uint32(data),
		kind:      data[4],
	}
	if d.kind != KindDelta && d.kind != KindFull {
		return nil, fmt.Errorf("ftlog: unknown log kind %d", d.kind)
	}
	count := binary.LittleEndian.Uint32(data[5:])
	// A record is at least its fixed prefix; a count the buffer cannot hold
	// is corrupt, not merely truncated.
	if uint64(count)*recordPrefixLen > uint64(len(data)-headerLen) {
		return nil, fmt.Errorf("ftlog: record count %d exceeds %d remaining bytes", count, len(data)-headerLen)
	}
	d.recLeft = int(count)
	return d, nil
}

// Superstep returns the file's superstep.
func (d *Decoder) Superstep() uint32 { return d.superstep }

// Kind returns the file's kind (KindDelta or KindFull).
func (d *Decoder) Kind() byte { return d.kind }

// NextRecord returns the next state record, or ok=false after the last.
func (d *Decoder) NextRecord() (rec Record, ok bool, err error) {
	if d.recLeft == 0 {
		return Record{}, false, nil
	}
	if d.inMsgs {
		return Record{}, false, fmt.Errorf("ftlog: NextRecord after message section")
	}
	if len(d.buf)-d.off < recordPrefixLen {
		return Record{}, false, fmt.Errorf("ftlog: truncated record at offset %d", d.off)
	}
	b := d.buf[d.off:]
	rec.Pos = binary.LittleEndian.Uint32(b)
	rec.Flags = b[4]
	rec.Stamp = int32(binary.LittleEndian.Uint32(b[5:]))
	valLen := int(binary.LittleEndian.Uint32(b[9:]))
	d.off += recordPrefixLen
	if valLen < 0 || valLen > len(d.buf)-d.off {
		return Record{}, false, fmt.Errorf("ftlog: record value length %d exceeds %d remaining bytes", valLen, len(d.buf)-d.off)
	}
	rec.Val = d.buf[d.off : d.off+valLen]
	d.off += valLen
	d.recLeft--
	return rec, true, nil
}

// NextMessage returns the next logged payload, or ok=false after the last.
// The first call crosses into the message section (KindDelta files only;
// KindFull files have none).
func (d *Decoder) NextMessage() (payload []byte, ok bool, err error) {
	if !d.inMsgs {
		if d.recLeft > 0 {
			return nil, false, fmt.Errorf("ftlog: NextMessage with %d records unread", d.recLeft)
		}
		if d.kind == KindFull {
			return nil, false, nil
		}
		if len(d.buf)-d.off < 4 {
			return nil, false, fmt.Errorf("ftlog: truncated message count at offset %d", d.off)
		}
		count := binary.LittleEndian.Uint32(d.buf[d.off:])
		d.off += 4
		// Each message costs at least its length prefix.
		if uint64(count)*4 > uint64(len(d.buf)-d.off) {
			return nil, false, fmt.Errorf("ftlog: message count %d exceeds %d remaining bytes", count, len(d.buf)-d.off)
		}
		d.msgLeft = int(count)
		d.inMsgs = true
	}
	if d.msgLeft == 0 {
		return nil, false, nil
	}
	if len(d.buf)-d.off < 4 {
		return nil, false, fmt.Errorf("ftlog: truncated message length at offset %d", d.off)
	}
	msgLen := int(binary.LittleEndian.Uint32(d.buf[d.off:]))
	d.off += 4
	if msgLen < 0 || msgLen > len(d.buf)-d.off {
		return nil, false, fmt.Errorf("ftlog: message length %d exceeds %d remaining bytes", msgLen, len(d.buf)-d.off)
	}
	payload = d.buf[d.off : d.off+msgLen]
	d.off += msgLen
	d.msgLeft--
	return payload, true, nil
}
