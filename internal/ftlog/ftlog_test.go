package ftlog

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// encodeFile assembles one well-formed log file through the append/patch
// helpers, the way the engine does.
func encodeFile(superstep uint32, kind byte, recs []Record, msgs [][]byte) []byte {
	buf := AppendFileHeader(nil, superstep, kind)
	buf, recAt := AppendCountPlaceholder(buf)
	for _, r := range recs {
		var vAt int
		buf, vAt = AppendRecordPrefix(buf, r.Pos, r.Flags, r.Stamp)
		buf = append(buf, r.Val...)
		PatchValLen(buf, vAt)
	}
	PatchCount(buf, recAt, len(recs))
	buf, msgAt := AppendCountPlaceholder(buf)
	if kind != KindFull {
		for _, m := range msgs {
			buf = AppendMessage(buf, m)
		}
		PatchCount(buf, msgAt, len(msgs))
	}
	return buf
}

func TestRoundTrip(t *testing.T) {
	recs := []Record{
		{Pos: 0, Flags: FlagActive, Stamp: -1, Val: []byte{1, 2, 3}},
		{Pos: 7, Flags: FlagActive | FlagLastActivate, Stamp: 4, Val: nil},
		{Pos: 1 << 20, Flags: 0, Stamp: 9, Val: bytes.Repeat([]byte{0xAB}, 100)},
	}
	msgs := [][]byte{{9, 9}, nil, bytes.Repeat([]byte{7}, 33)}
	data := encodeFile(12, KindDelta, recs, msgs)

	d, err := NewDecoder(data)
	if err != nil {
		t.Fatal(err)
	}
	if d.Superstep() != 12 || d.Kind() != KindDelta {
		t.Fatalf("header = %d/%d", d.Superstep(), d.Kind())
	}
	for i, want := range recs {
		got, ok, err := d.NextRecord()
		if err != nil || !ok {
			t.Fatalf("record %d: ok=%v err=%v", i, ok, err)
		}
		if got.Pos != want.Pos || got.Flags != want.Flags || got.Stamp != want.Stamp || !bytes.Equal(got.Val, want.Val) {
			t.Fatalf("record %d: %+v != %+v", i, got, want)
		}
	}
	if _, ok, _ := d.NextRecord(); ok {
		t.Fatal("extra record")
	}
	for i, want := range msgs {
		got, ok, err := d.NextMessage()
		if err != nil || !ok {
			t.Fatalf("message %d: ok=%v err=%v", i, ok, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("message %d: %v != %v", i, got, want)
		}
	}
	if _, ok, _ := d.NextMessage(); ok {
		t.Fatal("extra message")
	}
}

func TestFullFileHasNoMessages(t *testing.T) {
	data := encodeFile(3, KindFull, []Record{{Pos: 1, Val: []byte{5}}}, nil)
	d, err := NewDecoder(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := d.NextRecord(); !ok || err != nil {
		t.Fatalf("record: ok=%v err=%v", ok, err)
	}
	if _, ok, err := d.NextMessage(); ok || err != nil {
		t.Fatalf("full file yielded a message: ok=%v err=%v", ok, err)
	}
}

func TestMessageBeforeRecordsDrained(t *testing.T) {
	data := encodeFile(0, KindDelta, []Record{{Pos: 1}}, nil)
	d, err := NewDecoder(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.NextMessage(); err == nil {
		t.Fatal("NextMessage with unread records did not error")
	}
}

// TestCorruptInputs: every truncation and inflated count errors instead of
// panicking or over-reading.
func TestCorruptInputs(t *testing.T) {
	good := encodeFile(5, KindDelta, []Record{{Pos: 2, Val: []byte{1, 2}}}, [][]byte{{3}})
	cases := map[string][]byte{
		"empty":        nil,
		"short-header": good[:8],
		"bad-kind":     append(append([]byte{}, 0, 0, 0, 0, 99), good[5:]...),
	}
	// Record count inflated past the buffer.
	inflated := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(inflated[5:], 1<<30)
	cases["record-count-overflow"] = inflated
	// Value length inflated past the buffer.
	vlen := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(vlen[headerLen+9:], 1<<30)
	cases["val-len-overflow"] = vlen

	for name, data := range cases {
		d, err := NewDecoder(data)
		if err != nil {
			continue // rejected at the header: fine
		}
		if _, _, err := d.NextRecord(); err == nil {
			t.Errorf("%s: NextRecord accepted corrupt input", name)
		}
	}

	// Message length inflated past the buffer.
	mfile := encodeFile(5, KindDelta, nil, [][]byte{{1, 2, 3}})
	binary.LittleEndian.PutUint32(mfile[headerLen+4:], 1<<30)
	d, err := NewDecoder(mfile)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.NextMessage(); err == nil {
		t.Error("NextMessage accepted inflated length")
	}
}

// FuzzLogDecode drives the decoder with arbitrary bytes: it must never
// panic, and every slice it hands back must lie inside the input.
func FuzzLogDecode(f *testing.F) {
	f.Add(encodeFile(1, KindDelta, []Record{{Pos: 3, Flags: FlagActive, Stamp: 2, Val: []byte{1}}}, [][]byte{{2, 2}}))
	f.Add(encodeFile(9, KindFull, []Record{{Pos: 0, Val: bytes.Repeat([]byte{5}, 40)}}, nil))
	f.Add([]byte{0, 0, 0, 0, 1, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := NewDecoder(data)
		if err != nil {
			return
		}
		for {
			rec, ok, err := d.NextRecord()
			if err != nil {
				return
			}
			if !ok {
				break
			}
			if len(rec.Val) > len(data) {
				t.Fatalf("record value escapes input: %d > %d", len(rec.Val), len(data))
			}
		}
		for {
			msg, ok, err := d.NextMessage()
			if err != nil || !ok {
				return
			}
			if len(msg) > len(data) {
				t.Fatalf("message escapes input: %d > %d", len(msg), len(data))
			}
		}
	})
}
