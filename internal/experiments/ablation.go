package experiments

import (
	"fmt"

	"imitator/internal/core"
)

// AblationMirrorPlacement quantifies the §4.2 design choice: the greedy
// balanced mirror assignment versus naive first-replica placement. Balanced
// mirrors spread recovery work evenly, so Migration's slowest node does
// less and recovery time drops; the ablation reruns single-failure recovery
// under both policies.
func AblationMirrorPlacement(o Options) (*Table, error) {
	o = o.orDefaults()
	ds := "wiki"
	if o.Small {
		ds = "gweb"
	}
	w := Workload{Algo: "pagerank", Dataset: ds, Iters: o.Iters}
	t := &Table{
		ID:     "ablation-mirror",
		Title:  fmt.Sprintf("Mirror placement ablation (PageRank/%s, %d nodes)", ds, o.Nodes),
		Header: []string{"placement", "rebirth (s)", "migration (s)", "max promoted/node"},
		Notes:  "balanced placement is the paper's §4.2 greedy; 'first' concentrates recovery work",
	}
	for _, p := range []struct {
		label string
		mp    core.MirrorPlacement
	}{
		{"balanced", core.MirrorBalanced},
		{"first", core.MirrorFirst},
	} {
		mk := func(rk core.RecoveryKind) core.Config {
			cfg := withREP(baseEdgeCut(o), 1)
			cfg.FT.MirrorPlacement = p.mp
			cfg.Recovery = rk
			cfg.Failures = oneFailure(w.Iters)
			return cfg
		}
		sr, err := RunWorkload(w, mk(core.RecoverRebirth))
		if err != nil {
			return nil, err
		}
		sm, err := RunWorkload(w, mk(core.RecoverMigration))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			p.label,
			f3(lastRecovery(sr).TotalSeconds()),
			f3(lastRecovery(sm).TotalSeconds()),
			fmt.Sprintf("%d", lastRecovery(sm).RecoveredVertices),
		})
	}
	return t, nil
}

// AblationPositionalRecovery quantifies the §5.1.2 design choice: recovery
// messages addressed by array position (contention-free placement) versus
// the id-resolution cost a naive design pays. We measure the reconstruction
// phase of Rebirth, whose simulated cost covers placement, and report the
// record counts so the reader can scale the alternative: id-addressed
// reconstruction needs an extra hash probe per record plus a global
// build-then-link phase that cannot start until every record has arrived.
func AblationPositionalRecovery(o Options) (*Table, error) {
	o = o.orDefaults()
	ds := "ljournal"
	if o.Small {
		ds = "gweb"
	}
	w := Workload{Algo: "pagerank", Dataset: ds, Iters: o.Iters}
	cfg := withREP(baseEdgeCut(o), 1)
	cfg.Failures = oneFailure(w.Iters)
	s, err := RunWorkload(w, cfg)
	if err != nil {
		return nil, err
	}
	r := lastRecovery(s)
	t := &Table{
		ID:     "ablation-positional",
		Title:  fmt.Sprintf("Positional recovery accounting (PageRank/%s)", ds),
		Header: []string{"metric", "value"},
		Notes:  "records land at precomputed positions; no coordination during placement (§5.1.2)",
	}
	t.Rows = append(t.Rows,
		[]string{"recovered vertices", fmt.Sprintf("%d", r.RecoveredVertices)},
		[]string{"recovered edges", fmt.Sprintf("%d", r.RecoveredEdges)},
		[]string{"reload (s)", f3(r.ReloadSeconds)},
		[]string{"reconstruct (s)", f3(r.ReconstructSeconds)},
		[]string{"replay (s)", f3(r.ReplaySeconds)},
		[]string{"recovery messages", fmt.Sprintf("%d", s.Metrics.RecoveryMsgs)},
		[]string{"recovery bytes", fmt.Sprintf("%d", s.Metrics.RecoveryBytes)},
	)
	return t, nil
}
