// Package experiments regenerates every table and figure of the paper's
// evaluation (§2.3 and §6) on the scaled datasets. Each Fig*/Table*
// function runs the necessary jobs on the simulated cluster and returns a
// Table whose rows mirror the paper's; cmd/bench and the root benchmark
// suite are thin wrappers around this package.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"imitator/internal/algorithms"
	"imitator/internal/core"
	"imitator/internal/datasets"
	"imitator/internal/graph"
	"imitator/internal/metrics"
)

// Options scales the experiment suite.
type Options struct {
	// Nodes is the simulated cluster size (the paper uses 50; the scaled
	// default is 8 so the suite runs on one machine).
	Nodes int
	// Iters is the PageRank superstep count (the paper uses 20).
	Iters int
	// Workers is the intra-node worker-pool width (Config.WorkersPerNode).
	// Results are bit-for-bit independent of it; it only shortens wall
	// clock (and simulated compute via the cost model). 0 means 1.
	Workers int
	// Small shrinks datasets and sweeps for unit tests.
	Small bool
}

// Defaults returns the standard scaled configuration.
func Defaults() Options { return Options{Nodes: 8, Iters: 10, Workers: 1} }

func (o Options) orDefaults() Options {
	d := Defaults()
	if o.Nodes == 0 {
		o.Nodes = d.Nodes
	}
	if o.Iters == 0 {
		o.Iters = d.Iters
	}
	if o.Workers == 0 {
		o.Workers = d.Workers
	}
	return o
}

// Table is one regenerated table/figure.
type Table struct {
	ID     string // e.g. "fig7", "table2"
	Title  string
	Header []string
	Rows   [][]string
	Notes  string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(w, "note: %s\n", t.Notes)
	}
	fmt.Fprintln(w)
}

// RunSummary is the algorithm-agnostic result of one job.
type RunSummary struct {
	SimSeconds           float64
	AvgIterSeconds       float64
	CheckpointSeconds    float64
	CheckpointCount      int
	ExtraReplicas        int
	ExtraReplicasSelfish int
	TotalPresences       int
	ReplicationFactor    float64
	MaxMemory            int64
	TotalMemory          int64
	Metrics              metrics.Node
	Strategy             core.StrategyStats
	Recoveries           []core.RecoveryReport
	Trace                []core.TraceEvent
	NumVertices          int
	NumEdges             int
	// Buffers is the wire-buffer pool accounting for the whole run.
	Buffers metrics.Buffers
	// Omission is the reliable-delivery layer's wire accounting, nil for
	// runs whose failure schedule had no omission events.
	Omission *core.OmissionStats
	// Serve is the live-query layer's accounting, nil unless the run had
	// Config.Serve.Enabled.
	Serve *metrics.Serve
	// Membership is the failure detector's accounting, nil for runs that
	// never exercised the detector.
	Membership *metrics.Membership
}

func summarize[V any](res *core.Result[V], rf float64, g *graph.Graph) RunSummary {
	return RunSummary{
		SimSeconds:           res.SimSeconds,
		AvgIterSeconds:       res.AvgIterSeconds,
		CheckpointSeconds:    res.CheckpointSeconds,
		CheckpointCount:      res.CheckpointCount,
		ExtraReplicas:        res.ExtraReplicas,
		ExtraReplicasSelfish: res.ExtraReplicasSelfish,
		TotalPresences:       res.TotalPresences,
		ReplicationFactor:    rf,
		MaxMemory:            res.MaxMemory,
		TotalMemory:          res.TotalMemory,
		Metrics:              res.Metrics,
		Strategy:             res.Strategy,
		Recoveries:           res.Recoveries,
		Trace:                res.Trace,
		NumVertices:          g.NumVertices(),
		NumEdges:             g.NumEdges(),
		Buffers:              res.Buffers,
		Omission:             res.Omission,
		Serve:                res.Serve,
		Membership:           res.Membership,
	}
}

func runTyped[V, A any](cfg core.Config, g *graph.Graph, prog core.Program[V, A]) (RunSummary, error) {
	cl, err := core.NewCluster[V, A](cfg, g, prog)
	if err != nil {
		return RunSummary{}, err
	}
	res, err := cl.Run()
	if err != nil {
		return RunSummary{}, err
	}
	return summarize(res, cl.ReplicationFactor(), g), nil
}

// Workload pairs an algorithm with its dataset, mirroring Table 1.
type Workload struct {
	Algo    string
	Dataset string
	Iters   int
}

// EdgeCutWorkloads returns the paper's Table 1 pairs (Cyclops evaluation).
func EdgeCutWorkloads(o Options) []Workload {
	o = o.orDefaults()
	w := []Workload{
		{Algo: "pagerank", Dataset: "gweb", Iters: o.Iters},
		{Algo: "pagerank", Dataset: "ljournal", Iters: o.Iters},
		{Algo: "pagerank", Dataset: "wiki", Iters: o.Iters},
		{Algo: "als", Dataset: "syn-gl", Iters: o.Iters},
		{Algo: "cd", Dataset: "dblp", Iters: o.Iters},
		{Algo: "sssp", Dataset: "roadca", Iters: 4 * o.Iters},
	}
	if o.Small {
		w = []Workload{
			{Algo: "pagerank", Dataset: "gweb", Iters: 4},
			{Algo: "cd", Dataset: "dblp", Iters: 4},
		}
	}
	return w
}

// VertexCutDatasets returns the Table 4 dataset list (PowerLyra evaluation).
func VertexCutDatasets(o Options) []string {
	if o.Small {
		return []string{"gweb", "alpha-2.2"}
	}
	return []string{"gweb", "ljournal", "wiki", "uk", "twitter",
		"alpha-2.2", "alpha-2.1", "alpha-2.0", "alpha-1.9", "alpha-1.8"}
}

// RunWorkload executes one workload under cfg on its catalog dataset.
func RunWorkload(w Workload, cfg core.Config) (RunSummary, error) {
	g, err := datasets.Load(w.Dataset)
	if err != nil {
		return RunSummary{}, err
	}
	return RunWorkloadOn(w, g, cfg)
}

// RunWorkloadOn executes one workload under cfg on an explicit graph (e.g.
// one loaded from a file).
func RunWorkloadOn(w Workload, g *graph.Graph, cfg core.Config) (RunSummary, error) {
	cfg.MaxIter = w.Iters
	switch w.Algo {
	case "pagerank":
		return runTyped(cfg, g, algorithms.NewPageRank(g.NumVertices()))
	case "sssp":
		return runTyped(cfg, g, algorithms.NewSSSP(3))
	case "cd":
		return runTyped(cfg, g, algorithms.NewCD())
	case "als":
		// syn-gl has 7000 users (see datasets catalog).
		return runTyped(cfg, g, algorithms.NewALS(7000, 8, 0.05))
	default:
		return RunSummary{}, fmt.Errorf("experiments: unknown algorithm %q", w.Algo)
	}
}

// Base configurations.

func baseEdgeCut(o Options) core.Config {
	cfg := core.DefaultConfig(core.EdgeCutMode, o.Nodes)
	cfg.FT = core.FTConfig{}
	cfg.Recovery = core.RecoverNone
	cfg.WorkersPerNode = workersOf(o)
	return cfg
}

func baseVertexCut(o Options) core.Config {
	cfg := core.DefaultConfig(core.VertexCutMode, o.Nodes)
	cfg.FT = core.FTConfig{}
	cfg.Recovery = core.RecoverNone
	cfg.WorkersPerNode = workersOf(o)
	return cfg
}

// workersOf guards against callers that build Options literals without
// going through orDefaults.
func workersOf(o Options) int {
	if o.Workers < 1 {
		return 1
	}
	return o.Workers
}

func withREP(cfg core.Config, k int) core.Config {
	cfg.FT = core.FTConfig{Enabled: true, K: k, SelfishOpt: true}
	cfg.Recovery = core.RecoverRebirth
	cfg.MaxRebirths = 8
	return cfg
}

func withCKPT(cfg core.Config, interval int, inMemory bool) core.Config {
	cfg.Checkpoint = core.CheckpointConfig{Enabled: true, Interval: interval, InMemory: inMemory}
	cfg.Recovery = core.RecoverCheckpoint
	cfg.MaxRebirths = 8
	return cfg
}

func withLogged(cfg core.Config, compactEvery int) core.Config {
	cfg.Logged = core.LoggedConfig{Enabled: true, CompactEvery: compactEvery}
	cfg.Recovery = core.RecoverLogged
	cfg.MaxRebirths = 8
	return cfg
}

// Formatting helpers.

func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%+.2f%%", v*100) }

func overhead(base, with float64) float64 {
	if base == 0 {
		return 0
	}
	return (with - base) / base
}

func mb(bytes int64) string { return fmt.Sprintf("%.1f MB", float64(bytes)/1e6) }

// oneFailure schedules a single mid-run failure of node 1.
func oneFailure(iters int) []core.FailureSpec {
	at := iters / 2
	if at < 1 {
		at = 1
	}
	return []core.FailureSpec{{Iteration: at, Phase: core.FailBeforeBarrier, Nodes: []int{1}}}
}

// nFailures schedules n simultaneous failures mid-run.
func nFailures(iters, n int) []core.FailureSpec {
	at := iters / 2
	if at < 1 {
		at = 1
	}
	nodes := make([]int, n)
	for i := range nodes {
		nodes[i] = i + 1
	}
	return []core.FailureSpec{{Iteration: at, Phase: core.FailBeforeBarrier, Nodes: nodes}}
}

// lastRecovery returns the final recovery's stats or a zero value.
func lastRecovery(s RunSummary) core.RecoveryReport {
	if len(s.Recoveries) == 0 {
		return core.RecoveryReport{}
	}
	return s.Recoveries[len(s.Recoveries)-1]
}
