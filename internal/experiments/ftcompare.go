package experiments

import (
	"fmt"

	"imitator/internal/core"
)

// FTCompare races the four fault-tolerance strategies on the same workload
// under the standard mid-run crash of node 1: per-superstep persistence
// overhead (snapshots or logs), total recovery time, and how many survivor
// supersteps each strategy throws away. Logged recovery's selling point is
// the last column — ReplayIters stays 0 because only the reborn node replays
// its own log chain (failure-confined recovery, arXiv:1601.06496).
func FTCompare(o Options) (*Table, error) {
	o = o.orDefaults()
	ds := "wiki"
	if o.Small {
		ds = "gweb"
	}
	w := Workload{Algo: "pagerank", Dataset: ds, Iters: o.Iters}
	t := &Table{
		ID:    "ftcompare",
		Title: fmt.Sprintf("FT-strategy comparison (PageRank/%s, crash of node 1 mid-run)", ds),
		Header: []string{"strategy", "persist/superstep (s)", "persisted",
			"recovery (s)", "survivor replay iters", "log replay steps"},
		Notes: "logged recovery is failure-confined: survivors replay zero supersteps",
	}
	base, err := RunWorkload(w, baseEdgeCut(o))
	if err != nil {
		return nil, err
	}
	configs := []struct {
		name string
		cfg  core.Config
	}{
		{"replication", withREP(baseEdgeCut(o), 1)},
		{"migration", func() core.Config {
			c := withREP(baseEdgeCut(o), 1)
			c.Recovery = core.RecoverMigration
			return c
		}()},
		{"checkpoint", withCKPT(baseEdgeCut(o), 1, false)},
		{"logged", withLogged(baseEdgeCut(o), 4)},
	}
	for _, c := range configs {
		cfg := c.cfg
		cfg.Failures = oneFailure(w.Iters)
		s, err := RunWorkload(w, cfg)
		if err != nil {
			return nil, err
		}
		st := s.Strategy
		perStep := st.PersistSeconds / float64(o.Iters)
		if st.PersistCount == 0 {
			// Replication pays at replica-sync time, not superstep end:
			// charge its overhead as runtime delta against the FT-off base.
			perStep = (s.SimSeconds - base.SimSeconds - lastRecovery(s).TotalSeconds()) / float64(o.Iters)
		}
		rec := lastRecovery(s)
		t.Rows = append(t.Rows, []string{
			c.name,
			fmt.Sprintf("%.4f", perStep),
			mb(st.PersistedBytes),
			f3(rec.TotalSeconds()),
			fmt.Sprintf("%d", rec.ReplayIters),
			fmt.Sprintf("%d", rec.LogReplaySupersteps),
		})
	}
	return t, nil
}
