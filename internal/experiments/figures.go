package experiments

import (
	"fmt"

	"imitator/internal/core"
	"imitator/internal/datasets"
	"imitator/internal/ftmodel"
	"imitator/internal/partition"
)

// Table1Datasets reproduces Table 1 / Table 4: the dataset inventory, with
// both the paper-scale and the scaled sizes.
func Table1Datasets(o Options) (*Table, error) {
	t := &Table{
		ID:     "table1",
		Title:  "Datasets (paper scale -> scaled reproduction)",
		Header: []string{"graph", "paper |V|", "paper |E|", "ours |V|", "ours |E|", "|E|/|V|", "selfish%"},
	}
	for _, name := range datasets.Names() {
		d := datasets.Catalog()[name]
		g, err := datasets.Load(name)
		if err != nil {
			return nil, err
		}
		s := g.ComputeStats()
		t.Rows = append(t.Rows, []string{
			name, d.PaperVertices, d.PaperEdges,
			fmt.Sprintf("%d", s.NumVertices), fmt.Sprintf("%d", s.NumEdges),
			fmt.Sprintf("%.1f", s.AvgDeg),
			fmt.Sprintf("%.1f%%", 100*float64(s.NumSelfish)/float64(s.NumVertices)),
		})
	}
	return t, nil
}

// Fig2aCheckpointCost reproduces Fig 2a: the simulated cost of writing one
// checkpoint next to the average cost of one iteration, per workload.
func Fig2aCheckpointCost(o Options) (*Table, error) {
	o = o.orDefaults()
	t := &Table{
		ID:     "fig2a",
		Title:  "Cost of one checkpoint vs one iteration (seconds, simulated)",
		Header: []string{"workload", "iteration", "checkpoint", "ratio"},
		Notes:  "paper: one checkpoint costs >= 55% of an iteration even in the best case",
	}
	for _, w := range EdgeCutWorkloads(o) {
		cfg := withCKPT(baseEdgeCut(o), 1, false)
		s, err := RunWorkload(w, cfg)
		if err != nil {
			return nil, err
		}
		ckptOnce := 0.0
		if s.CheckpointCount > 0 {
			ckptOnce = s.CheckpointSeconds / float64(s.CheckpointCount)
		}
		ratio := 0.0
		if s.AvgIterSeconds > 0 {
			ratio = ckptOnce / s.AvgIterSeconds
		}
		t.Rows = append(t.Rows, []string{
			w.Algo + "/" + w.Dataset, f3(s.AvgIterSeconds), f3(ckptOnce), fmt.Sprintf("%.2fx", ratio),
		})
	}
	return t, nil
}

// Fig2bCheckpointIntervals reproduces Fig 2b: total runtime overhead of
// checkpointing at intervals 1, 2 and 4 for PageRank on LJournal.
func Fig2bCheckpointIntervals(o Options) (*Table, error) {
	o = o.orDefaults()
	w := Workload{Algo: "pagerank", Dataset: "ljournal", Iters: 2 * o.Iters}
	if o.Small {
		w = Workload{Algo: "pagerank", Dataset: "gweb", Iters: 6}
	}
	base, err := RunWorkload(w, baseEdgeCut(o))
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig2b",
		Title:  fmt.Sprintf("Checkpoint overhead vs interval (PageRank/%s, %d iters)", w.Dataset, w.Iters),
		Header: []string{"config", "total (s)", "overhead"},
		Notes:  "paper: intervals 1/2/4 cost +89%/+51%/+26%",
	}
	t.Rows = append(t.Rows, []string{"no checkpoint", f3(base.SimSeconds), "-"})
	for _, interval := range []int{1, 2, 4} {
		s, err := RunWorkload(w, withCKPT(baseEdgeCut(o), interval, false))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("interval %d", interval), f3(s.SimSeconds), pct(overhead(base.SimSeconds, s.SimSeconds)),
		})
	}
	return t, nil
}

// Fig2cCheckpointRecovery reproduces Fig 2c: the checkpoint-recovery
// breakdown (reload / reconstruct / replay) against one iteration's cost.
func Fig2cCheckpointRecovery(o Options) (*Table, error) {
	o = o.orDefaults()
	w := Workload{Algo: "pagerank", Dataset: "ljournal", Iters: 2 * o.Iters}
	if o.Small {
		w = Workload{Algo: "pagerank", Dataset: "gweb", Iters: 6}
	}
	t := &Table{
		ID:     "fig2c",
		Title:  fmt.Sprintf("Checkpoint recovery breakdown (PageRank/%s)", w.Dataset),
		Header: []string{"interval", "reload", "reconstruct", "replay", "total", "one iteration"},
		Notes:  "paper: reload from persistent storage dominates; longer intervals inflate replay",
	}
	for _, interval := range []int{1, 2, 4} {
		cfg := withCKPT(baseEdgeCut(o), interval, false)
		cfg.Failures = oneFailure(w.Iters)
		s, err := RunWorkload(w, cfg)
		if err != nil {
			return nil, err
		}
		r := lastRecovery(s)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", interval),
			f3(r.ReloadSeconds), f3(r.ReconstructSeconds), f3(r.ReplaySeconds),
			f3(r.TotalSeconds()), f3(s.AvgIterSeconds),
		})
	}
	return t, nil
}

// Fig3Replicas reproduces Fig 3a/3b: the fraction of vertices without
// replicas (split normal/selfish) and the extra replicas fault tolerance
// adds, per dataset under hash edge-cut. Partition statistics need no
// engine run, so this figure uses the paper's actual 50-node cluster.
func Fig3Replicas(o Options) (*Table, error) {
	o = o.orDefaults()
	nodes := 50
	if o.Small {
		nodes = 8
	}
	t := &Table{
		ID:     "fig3",
		Title:  fmt.Sprintf("Vertices without replicas and FT replica overhead (hash edge-cut, %d nodes)", nodes),
		Header: []string{"graph", "no-replica total", "  of which selfish", "extra replicas (sans selfish)"},
		Notes:  "paper: only GWeb and LJournal exceed 10%; extra replicas < 0.15% everywhere",
	}
	names := []string{"gweb", "ljournal", "wiki", "syn-gl", "dblp", "roadca"}
	if o.Small {
		names = []string{"gweb", "dblp"}
	}
	for _, name := range names {
		g, err := datasets.Load(name)
		if err != nil {
			return nil, err
		}
		ec, err := partition.HashEdgeCut(g, nodes)
		if err != nil {
			return nil, err
		}
		s := ec.Stats(g)
		nv := float64(g.NumVertices())
		extraNonSelfish := s.NoReplicaTotal - s.NoReplicaSelfish
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.2f%%", 100*float64(s.NoReplicaTotal)/nv),
			fmt.Sprintf("%.2f%%", 100*float64(s.NoReplicaSelfish)/nv),
			fmt.Sprintf("%.3f%%", 100*float64(extraNonSelfish)/float64(s.ReplicationFactor*nv)),
		})
	}
	return t, nil
}

// Fig7RuntimeOverheadEdgeCut reproduces Fig 7: runtime overhead of REP and
// CKPT over the unprotected baseline, per workload (edge-cut engine).
func Fig7RuntimeOverheadEdgeCut(o Options) (*Table, error) {
	o = o.orDefaults()
	t := &Table{
		ID:     "fig7",
		Title:  "Runtime overhead over baseline (edge-cut)",
		Header: []string{"workload", "base (s)", "REP", "CKPT", "CKPT-mem"},
		Notes:  "paper: REP < 3.7% everywhere; CKPT +65%..+449%; CKPT-mem +33%..+163%",
	}
	for _, w := range EdgeCutWorkloads(o) {
		base, err := RunWorkload(w, baseEdgeCut(o))
		if err != nil {
			return nil, err
		}
		rep, err := RunWorkload(w, withREP(baseEdgeCut(o), 1))
		if err != nil {
			return nil, err
		}
		ck, err := RunWorkload(w, withCKPT(baseEdgeCut(o), 1, false))
		if err != nil {
			return nil, err
		}
		ckm, err := RunWorkload(w, withCKPT(baseEdgeCut(o), 1, true))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			w.Algo + "/" + w.Dataset, f3(base.SimSeconds),
			pct(overhead(base.SimSeconds, rep.SimSeconds)),
			pct(overhead(base.SimSeconds, ck.SimSeconds)),
			pct(overhead(base.SimSeconds, ckm.SimSeconds)),
		})
	}
	return t, nil
}

// Fig8SelfishOptimization reproduces Fig 8a/8b: extra replicas and
// redundant messages with and without the selfish-vertex optimization.
func Fig8SelfishOptimization(o Options) (*Table, error) {
	o = o.orDefaults()
	t := &Table{
		ID:     "fig8",
		Title:  "FT replica and redundant-message overhead, selfish optimization on/off",
		Header: []string{"workload", "extra replicas (sans selfish)", "extra (total)", "redundant msgs w/", "redundant w/o"},
		Notes:  "paper: extra non-selfish replicas <= 0.12%; with the optimization, message overhead drops below 0.1%",
	}
	for _, w := range EdgeCutWorkloads(o) {
		cfgOn := withREP(baseEdgeCut(o), 1)
		cfgOff := cfgOn
		cfgOff.FT.SelfishOpt = false
		on, err := RunWorkload(w, cfgOn)
		if err != nil {
			return nil, err
		}
		off, err := RunWorkload(w, cfgOff)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			w.Algo + "/" + w.Dataset,
			fmt.Sprintf("%.3f%%", 100*float64(on.ExtraReplicas-on.ExtraReplicasSelfish)/float64(on.TotalPresences)),
			fmt.Sprintf("%.3f%%", 100*float64(on.ExtraReplicas)/float64(on.TotalPresences)),
			fmt.Sprintf("%.3f%%", 100*on.Metrics.RedundantMsgFraction()),
			fmt.Sprintf("%.3f%%", 100*off.Metrics.RedundantMsgFraction()),
		})
	}
	return t, nil
}

// recoveryTimes runs one workload under each recovery strategy and returns
// (ckpt, rebirth, migration) total recovery seconds.
func recoveryTimes(o Options, w Workload, mode core.Mode) (ck, reb, mig core.RecoveryReport, err error) {
	mk := func() core.Config {
		if mode == core.EdgeCutMode {
			return baseEdgeCut(o)
		}
		return baseVertexCut(o)
	}
	run := func(cfg core.Config) (core.RecoveryReport, error) {
		cfg.Failures = oneFailure(w.Iters)
		s, err := RunWorkload(w, cfg)
		if err != nil {
			return core.RecoveryReport{}, err
		}
		return lastRecovery(s), nil
	}
	if ck, err = run(withCKPT(mk(), 1, false)); err != nil {
		return
	}
	if reb, err = run(withREP(mk(), 1)); err != nil {
		return
	}
	cfg := withREP(mk(), 1)
	cfg.Recovery = core.RecoverMigration
	mig, err = run(cfg)
	return
}

// Table2RecoveryEdgeCut reproduces Table 2: recovery time of checkpoint,
// Rebirth and Migration per workload on the edge-cut engine.
func Table2RecoveryEdgeCut(o Options) (*Table, error) {
	o = o.orDefaults()
	t := &Table{
		ID:     "table2",
		Title:  "Recovery time (seconds, simulated) — edge-cut",
		Header: []string{"workload", "CKPT", "Rebirth", "Migration", "recovered vertices"},
		Notes:  "paper: Rebirth 3.9-6.9x and Migration 3.6-17.7x faster than CKPT",
	}
	for _, w := range EdgeCutWorkloads(o) {
		ck, reb, mig, err := recoveryTimes(o, w, core.EdgeCutMode)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			w.Algo + "/" + w.Dataset,
			f3(ck.TotalSeconds()), f3(reb.TotalSeconds()), f3(mig.TotalSeconds()),
			fmt.Sprintf("%d", reb.RecoveredVertices),
		})
	}
	return t, nil
}

// Fig9RecoveryScalability reproduces Fig 9: recovery time against cluster
// size for both replication strategies.
func Fig9RecoveryScalability(o Options) (*Table, error) {
	o = o.orDefaults()
	ds := "wiki"
	sizes := []int{4, 8, 12, 16}
	if o.Small {
		ds = "gweb"
		sizes = []int{4, 8}
	}
	t := &Table{
		ID:     "fig9",
		Title:  fmt.Sprintf("Recovery scalability (PageRank/%s)", ds),
		Header: []string{"nodes", "rebirth (s)", "migration (s)"},
		Notes:  "paper: both strategies speed up as more nodes share the reload",
	}
	for _, n := range sizes {
		opt := o
		opt.Nodes = n
		w := Workload{Algo: "pagerank", Dataset: ds, Iters: o.Iters}
		cfgR := withREP(baseEdgeCut(opt), 1)
		cfgR.Failures = oneFailure(w.Iters)
		sr, err := RunWorkload(w, cfgR)
		if err != nil {
			return nil, err
		}
		cfgM := withREP(baseEdgeCut(opt), 1)
		cfgM.Recovery = core.RecoverMigration
		cfgM.Failures = oneFailure(w.Iters)
		sm, err := RunWorkload(w, cfgM)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			f3(lastRecovery(sr).TotalSeconds()),
			f3(lastRecovery(sm).TotalSeconds()),
		})
	}
	return t, nil
}

// Fig10Fennel reproduces Fig 10: Fennel's replication factor against hash
// partitioning, and Imitator's overhead under Fennel.
func Fig10Fennel(o Options) (*Table, error) {
	o = o.orDefaults()
	names := []string{"gweb", "ljournal", "wiki"}
	if o.Small {
		names = []string{"gweb"}
	}
	t := &Table{
		ID:     "fig10",
		Title:  "Fennel vs hash partitioning (edge-cut)",
		Header: []string{"graph", "RF hash", "RF fennel", "REP overhead under fennel"},
		Notes:  "paper: fennel RF 1.61/3.84/5.09; overhead stays 1.8%-4.7%",
	}
	for _, name := range names {
		g, err := datasets.Load(name)
		if err != nil {
			return nil, err
		}
		hashEC, err := partition.HashEdgeCut(g, o.Nodes)
		if err != nil {
			return nil, err
		}
		fenEC, err := partition.FennelEdgeCut(g, o.Nodes, partition.DefaultFennelConfig())
		if err != nil {
			return nil, err
		}
		w := Workload{Algo: "pagerank", Dataset: name, Iters: o.Iters}
		baseCfg := baseEdgeCut(o)
		baseCfg.Partitioner = core.PartFennel
		base, err := RunWorkload(w, baseCfg)
		if err != nil {
			return nil, err
		}
		repCfg := withREP(baseCfg, 1)
		rep, err := RunWorkload(w, repCfg)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.2f", hashEC.Stats(g).ReplicationFactor),
			fmt.Sprintf("%.2f", fenEC.Stats(g).ReplicationFactor),
			pct(overhead(base.SimSeconds, rep.SimSeconds)),
		})
	}
	return t, nil
}

// Fig11MultiFailureEdgeCut reproduces Fig 11: overhead and recovery time
// when tolerating 1, 2 and 3 simultaneous failures (edge-cut).
func Fig11MultiFailureEdgeCut(o Options) (*Table, error) {
	return multiFailure(o, core.EdgeCutMode, "fig11", "wiki")
}

// Fig15MultiFailureVertexCut reproduces Fig 15 (vertex-cut).
func Fig15MultiFailureVertexCut(o Options) (*Table, error) {
	return multiFailure(o, core.VertexCutMode, "fig15", "twitter")
}

func multiFailure(o Options, mode core.Mode, id, ds string) (*Table, error) {
	o = o.orDefaults()
	if o.Small {
		ds = "gweb"
	}
	mk := func() core.Config {
		if mode == core.EdgeCutMode {
			return baseEdgeCut(o)
		}
		return baseVertexCut(o)
	}
	w := Workload{Algo: "pagerank", Dataset: ds, Iters: o.Iters}
	base, err := RunWorkload(w, mk())
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("Tolerating k failures (%s, PageRank/%s)", mode, ds),
		Header: []string{"k", "runtime overhead", "rebirth (s)", "migration (s)"},
		Notes:  "paper: overhead < 10% (edge-cut) / < 4.7% (vertex-cut) even at k=3",
	}
	for k := 1; k <= 3; k++ {
		rep, err := RunWorkload(w, withREP(mk(), k))
		if err != nil {
			return nil, err
		}
		cfgR := withREP(mk(), k)
		cfgR.Failures = nFailures(w.Iters, k)
		sr, err := RunWorkload(w, cfgR)
		if err != nil {
			return nil, err
		}
		cfgM := withREP(mk(), k)
		cfgM.Recovery = core.RecoverMigration
		cfgM.Failures = nFailures(w.Iters, k)
		sm, err := RunWorkload(w, cfgM)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", k),
			pct(overhead(base.SimSeconds, rep.SimSeconds)),
			f3(lastRecovery(sr).TotalSeconds()),
			f3(lastRecovery(sm).TotalSeconds()),
		})
	}
	return t, nil
}

// Table3MemoryEdgeCut reproduces Table 3: memory footprint without FT and
// with FT/1..3 (edge-cut, PageRank on Wiki).
func Table3MemoryEdgeCut(o Options) (*Table, error) {
	return memoryTable(o, core.EdgeCutMode, "table3", "wiki", nil)
}

// Table7MemoryVertexCut reproduces Table 7: memory by partitioning
// algorithm and FT level (vertex-cut, PageRank on Twitter).
func Table7MemoryVertexCut(o Options) (*Table, error) {
	parts := []core.PartitionerKind{core.PartRandom, core.PartGrid, core.PartHybrid}
	return memoryTable(o, core.VertexCutMode, "table7", "twitter", parts)
}

func memoryTable(o Options, mode core.Mode, id, ds string, parts []core.PartitionerKind) (*Table, error) {
	o = o.orDefaults()
	if o.Small {
		ds = "gweb"
	}
	if parts == nil {
		parts = []core.PartitionerKind{0} // mode default
	}
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("Memory footprint (%s, PageRank/%s)", mode, ds),
		Header: []string{"partitioner", "config", "total", "max node", "vs w/o FT"},
		Notes:  "paper: FT memory overhead is modest (edge-cut) to negligible (vertex-cut)",
	}
	w := Workload{Algo: "pagerank", Dataset: ds, Iters: 2}
	for _, part := range parts {
		mk := func() core.Config {
			var cfg core.Config
			if mode == core.EdgeCutMode {
				cfg = baseEdgeCut(o)
			} else {
				cfg = baseVertexCut(o)
			}
			if part != 0 {
				cfg.Partitioner = part
			}
			return cfg
		}
		base, err := RunWorkload(w, mk())
		if err != nil {
			return nil, err
		}
		label := "default"
		if part != 0 {
			label = part.String()
		}
		t.Rows = append(t.Rows, []string{label, "w/o FT", mb(base.TotalMemory), mb(base.MaxMemory), "-"})
		for k := 1; k <= 3; k++ {
			s, err := RunWorkload(w, withREP(mk(), k))
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				label, fmt.Sprintf("FT/%d", k), mb(s.TotalMemory), mb(s.MaxMemory),
				pct(overhead(float64(base.TotalMemory), float64(s.TotalMemory))),
			})
		}
	}
	return t, nil
}

// Fig12CaseStudy reproduces Fig 12: the execution timeline of PageRank on
// LJournal under each fault-tolerance setting, with one failure injected
// between iterations 6 and 7.
func Fig12CaseStudy(o Options) (*Table, error) {
	o = o.orDefaults()
	ds := "ljournal"
	iters := 2 * o.Iters
	failIter := 6
	if o.Small {
		ds = "gweb"
		iters = 8
		failIter = 3
	}
	w := Workload{Algo: "pagerank", Dataset: ds, Iters: iters}
	t := &Table{
		ID:     "fig12",
		Title:  fmt.Sprintf("Case study: PageRank/%s, failure after iteration %d", ds, failIter),
		Header: []string{"config", "total (s)", "recovery (s)", "iterations run"},
		Notes:  "paper: Migration recovers in ~2.6 s, Rebirth ~8.8 s, CKPT/4 ~45 s incl. replaying 2 iterations",
	}
	add := func(label string, cfg core.Config, fail bool) error {
		if fail {
			cfg.Failures = []core.FailureSpec{{Iteration: failIter, Phase: core.FailAfterBarrier, Nodes: []int{1}}}
		}
		s, err := RunWorkload(w, cfg)
		if err != nil {
			return err
		}
		recTime := 0.0
		for _, r := range s.Recoveries {
			recTime += r.TotalSeconds()
		}
		iterCount := 0
		for _, ev := range s.Trace {
			if ev.Kind == "iteration" {
				iterCount++
			}
		}
		t.Rows = append(t.Rows, []string{label, f3(s.SimSeconds), f3(recTime), fmt.Sprintf("%d", iterCount)})
		return nil
	}
	if err := add("BASE", baseEdgeCut(o), false); err != nil {
		return nil, err
	}
	if err := add("REP", withREP(baseEdgeCut(o), 1), false); err != nil {
		return nil, err
	}
	if err := add("CKPT/4", withCKPT(baseEdgeCut(o), 4, false), false); err != nil {
		return nil, err
	}
	if err := add("REP+Rebirth", withREP(baseEdgeCut(o), 1), true); err != nil {
		return nil, err
	}
	cfgMig := withREP(baseEdgeCut(o), 1)
	cfgMig.Recovery = core.RecoverMigration
	if err := add("REP+Migration", cfgMig, true); err != nil {
		return nil, err
	}
	if err := add("CKPT/4+fail", withCKPT(baseEdgeCut(o), 4, false), true); err != nil {
		return nil, err
	}
	return t, nil
}

// Fig13RuntimeOverheadVertexCut reproduces Fig 13: REP vs CKPT overhead on
// the vertex-cut engine across real and synthetic graphs.
func Fig13RuntimeOverheadVertexCut(o Options) (*Table, error) {
	o = o.orDefaults()
	t := &Table{
		ID:     "fig13",
		Title:  "Runtime overhead over baseline (vertex-cut, PageRank)",
		Header: []string{"graph", "base (s)", "REP", "CKPT"},
		Notes:  "paper: REP 1.5%-3.3%; CKPT +135%..+531%",
	}
	for _, ds := range VertexCutDatasets(o) {
		w := Workload{Algo: "pagerank", Dataset: ds, Iters: o.Iters}
		base, err := RunWorkload(w, baseVertexCut(o))
		if err != nil {
			return nil, err
		}
		rep, err := RunWorkload(w, withREP(baseVertexCut(o), 1))
		if err != nil {
			return nil, err
		}
		ck, err := RunWorkload(w, withCKPT(baseVertexCut(o), 1, false))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			ds, f3(base.SimSeconds),
			pct(overhead(base.SimSeconds, rep.SimSeconds)),
			pct(overhead(base.SimSeconds, ck.SimSeconds)),
		})
	}
	return t, nil
}

// Table5RecoveryVertexCut reproduces Table 5: recovery times per dataset on
// the vertex-cut engine.
func Table5RecoveryVertexCut(o Options) (*Table, error) {
	o = o.orDefaults()
	t := &Table{
		ID:     "table5",
		Title:  "Recovery time (seconds, simulated) — vertex-cut, PageRank",
		Header: []string{"graph", "CKPT", "Rebirth", "Migration"},
		Notes:  "paper: Rebirth 1.7-7.7x and Migration 1.3-7.2x faster than CKPT",
	}
	for _, ds := range VertexCutDatasets(o) {
		w := Workload{Algo: "pagerank", Dataset: ds, Iters: o.Iters}
		ck, reb, mig, err := recoveryTimes(o, w, core.VertexCutMode)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			ds, f3(ck.TotalSeconds()), f3(reb.TotalSeconds()), f3(mig.TotalSeconds()),
		})
	}
	return t, nil
}

// Fig14PartitioningVertexCut reproduces Fig 14: replication factor,
// overhead and recovery time for Random-, Grid- and Hybrid-cut.
func Fig14PartitioningVertexCut(o Options) (*Table, error) {
	o = o.orDefaults()
	ds := "twitter"
	if o.Small {
		ds = "gweb"
	}
	g, err := datasets.Load(ds)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig14",
		Title:  fmt.Sprintf("Partitioning algorithms (vertex-cut, PageRank/%s)", ds),
		Header: []string{"partitioner", "RF", "REP overhead", "rebirth (s)", "migration (s)"},
		Notes:  "paper: hybrid RF 5.56 < grid 8.34 < random 15.96; lower RF means fewer FT candidates",
	}
	for _, part := range []core.PartitionerKind{core.PartRandom, core.PartGrid, core.PartHybrid} {
		var rf float64
		switch part {
		case core.PartRandom:
			vc, err := partition.RandomVertexCut(g, o.Nodes)
			if err != nil {
				return nil, err
			}
			rf = vc.Stats(g).ReplicationFactor
		case core.PartGrid:
			vc, err := partition.GridVertexCut(g, o.Nodes)
			if err != nil {
				return nil, err
			}
			rf = vc.Stats(g).ReplicationFactor
		case core.PartHybrid:
			vc, err := partition.HybridVertexCut(g, o.Nodes, partition.DefaultHybridCutConfig())
			if err != nil {
				return nil, err
			}
			rf = vc.Stats(g).ReplicationFactor
		}
		w := Workload{Algo: "pagerank", Dataset: ds, Iters: o.Iters}
		mk := func() core.Config {
			cfg := baseVertexCut(o)
			cfg.Partitioner = part
			return cfg
		}
		base, err := RunWorkload(w, mk())
		if err != nil {
			return nil, err
		}
		rep, err := RunWorkload(w, withREP(mk(), 1))
		if err != nil {
			return nil, err
		}
		cfgR := withREP(mk(), 1)
		cfgR.Failures = oneFailure(w.Iters)
		sr, err := RunWorkload(w, cfgR)
		if err != nil {
			return nil, err
		}
		cfgM := withREP(mk(), 1)
		cfgM.Recovery = core.RecoverMigration
		cfgM.Failures = oneFailure(w.Iters)
		sm, err := RunWorkload(w, cfgM)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			part.String(), fmt.Sprintf("%.2f", rf),
			pct(overhead(base.SimSeconds, rep.SimSeconds)),
			f3(lastRecovery(sr).TotalSeconds()),
			f3(lastRecovery(sm).TotalSeconds()),
		})
	}
	return t, nil
}

// Table6CommunicationVertexCut reproduces Table 6: execution time and
// communication volume per partitioning and FT level.
func Table6CommunicationVertexCut(o Options) (*Table, error) {
	o = o.orDefaults()
	ds := "twitter"
	if o.Small {
		ds = "gweb"
	}
	t := &Table{
		ID:     "table6",
		Title:  fmt.Sprintf("Execution time and communication per FT level (vertex-cut, PageRank/%s)", ds),
		Header: []string{"partitioner", "config", "time (s)", "comm (MB)", "comm overhead"},
		Notes:  "paper: FT comm overhead grows with k but stays far below partitioning differences",
	}
	w := Workload{Algo: "pagerank", Dataset: ds, Iters: o.Iters}
	for _, part := range []core.PartitionerKind{core.PartRandom, core.PartGrid, core.PartHybrid} {
		mk := func() core.Config {
			cfg := baseVertexCut(o)
			cfg.Partitioner = part
			return cfg
		}
		base, err := RunWorkload(w, mk())
		if err != nil {
			return nil, err
		}
		baseComm := float64(base.Metrics.TotalBytes())
		t.Rows = append(t.Rows, []string{part.String(), "w/o FT", f3(base.SimSeconds),
			fmt.Sprintf("%.1f", baseComm/1e6), "-"})
		for k := 1; k <= 3; k++ {
			s, err := RunWorkload(w, withREP(mk(), k))
			if err != nil {
				return nil, err
			}
			comm := float64(s.Metrics.TotalBytes())
			t.Rows = append(t.Rows, []string{
				part.String(), fmt.Sprintf("FT/%d", k), f3(s.SimSeconds),
				fmt.Sprintf("%.1f", comm/1e6), pct(overhead(baseComm, comm)),
			})
		}
	}
	return t, nil
}

// YoungModelEfficiency reproduces the §6.11 analysis using measured
// per-interval costs from the simulated cluster.
func YoungModelEfficiency(o Options) (*Table, error) {
	o = o.orDefaults()
	ds := "twitter"
	if o.Small {
		ds = "gweb"
	}
	w := Workload{Algo: "pagerank", Dataset: ds, Iters: o.Iters}
	base, err := RunWorkload(w, baseVertexCut(o))
	if err != nil {
		return nil, err
	}
	rep, err := RunWorkload(w, withREP(baseVertexCut(o), 1))
	if err != nil {
		return nil, err
	}
	ck, err := RunWorkload(w, withCKPT(baseVertexCut(o), 1, false))
	if err != nil {
		return nil, err
	}
	ckCost := 0.0
	if ck.CheckpointCount > 0 {
		ckCost = ck.CheckpointSeconds / float64(ck.CheckpointCount)
	}
	repCost := (rep.SimSeconds - base.SimSeconds) / float64(o.Iters)
	if repCost <= 0 {
		repCost = 1e-4 // replication overhead can vanish at this scale
	}
	// Recovery costs measured from single-failure runs.
	_, rebRec, migRec, err := recoveryTimes(o, w, core.VertexCutMode)
	if err != nil {
		return nil, err
	}
	_ = migRec
	ckFail := withCKPT(baseVertexCut(o), 1, false)
	ckFail.Failures = oneFailure(w.Iters)
	ckFailRun, err := RunWorkload(w, ckFail)
	if err != nil {
		return nil, err
	}
	cmp, err := ftmodel.Compare(
		ftmodel.Scenario{CostPerInterval: ckCost, MTBF: ftmodel.PaperMTBF,
			RecoverySeconds: lastRecovery(ckFailRun).TotalSeconds()},
		ftmodel.Scenario{CostPerInterval: repCost, MTBF: ftmodel.PaperMTBF,
			RecoverySeconds: rebRec.TotalSeconds()},
	)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "young",
		Title:  "Young's-model optimal interval and efficiency (§6.11)",
		Header: []string{"scheme", "cost/interval (s)", "optimal interval (s)", "efficiency"},
		Notes:  "paper: CKPT 9768 s / 98.44%; REP 623 s / 99.90%",
	}
	t.Rows = append(t.Rows, []string{"CKPT", f3(ckCost), fmt.Sprintf("%.0f", cmp.CkptInterval),
		fmt.Sprintf("%.2f%%", 100*cmp.CkptEfficiency)})
	t.Rows = append(t.Rows, []string{"REP", f3(repCost), fmt.Sprintf("%.0f", cmp.RepInterval),
		fmt.Sprintf("%.2f%%", 100*cmp.RepEfficiency)})
	return t, nil
}

// All returns every experiment keyed by id, in presentation order.
func All() []struct {
	ID  string
	Run func(Options) (*Table, error)
} {
	return []struct {
		ID  string
		Run func(Options) (*Table, error)
	}{
		{"table1", Table1Datasets},
		{"fig2a", Fig2aCheckpointCost},
		{"fig2b", Fig2bCheckpointIntervals},
		{"fig2c", Fig2cCheckpointRecovery},
		{"fig3", Fig3Replicas},
		{"fig7", Fig7RuntimeOverheadEdgeCut},
		{"fig8", Fig8SelfishOptimization},
		{"table2", Table2RecoveryEdgeCut},
		{"fig9", Fig9RecoveryScalability},
		{"fig10", Fig10Fennel},
		{"fig11", Fig11MultiFailureEdgeCut},
		{"table3", Table3MemoryEdgeCut},
		{"fig12", Fig12CaseStudy},
		{"fig13", Fig13RuntimeOverheadVertexCut},
		{"table5", Table5RecoveryVertexCut},
		{"fig14", Fig14PartitioningVertexCut},
		{"fig15", Fig15MultiFailureVertexCut},
		{"table6", Table6CommunicationVertexCut},
		{"table7", Table7MemoryVertexCut},
		{"young", YoungModelEfficiency},
		{"ftcompare", FTCompare},
		{"ablation-mirror", AblationMirrorPlacement},
		{"ablation-positional", AblationPositionalRecovery},
	}
}
