package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func small() Options {
	o := Defaults()
	o.Small = true
	o.Nodes = 4
	o.Iters = 4
	return o
}

// parsePct turns "+12.34%" into 0.1234.
func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimPrefix(s, "+"), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad percent %q: %v", s, err)
	}
	return v / 100
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.Fields(s)[0], 64)
	if err != nil {
		t.Fatalf("bad float %q: %v", s, err)
	}
	return v
}

func TestAllExperimentsRunSmall(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Run(small())
			if err != nil {
				t.Fatal(err)
			}
			if len(tab.Rows) == 0 {
				t.Fatal("no rows")
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Header) {
					t.Fatalf("row width %d != header %d: %v", len(row), len(tab.Header), row)
				}
			}
			var sb strings.Builder
			tab.Render(&sb)
			if !strings.Contains(sb.String(), tab.ID) {
				t.Error("render missing id")
			}
		})
	}
}

// TestFig7Shape checks the paper's headline result at small scale: REP
// overhead is tiny while CKPT overhead is large.
func TestFig7Shape(t *testing.T) {
	tab, err := Fig7RuntimeOverheadEdgeCut(small())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		rep := parsePct(t, row[2])
		ck := parsePct(t, row[3])
		if rep > 0.15 {
			t.Errorf("%s: REP overhead %.1f%% too high", row[0], rep*100)
		}
		if ck < 3*rep {
			t.Errorf("%s: CKPT overhead %.2f%% not well above REP's %.2f%%", row[0], ck*100, rep*100)
		}
		if ck < 0.10 {
			t.Errorf("%s: CKPT overhead %.1f%% implausibly low", row[0], ck*100)
		}
	}
}

// TestTable2Shape: both replication recoveries beat checkpoint recovery.
func TestTable2Shape(t *testing.T) {
	tab, err := Table2RecoveryEdgeCut(small())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		ck := parseF(t, row[1])
		reb := parseF(t, row[2])
		mig := parseF(t, row[3])
		if reb >= ck || mig >= ck {
			t.Errorf("%s: recovery not faster than CKPT: ckpt=%v reb=%v mig=%v", row[0], ck, reb, mig)
		}
	}
}

// TestFig8Shape: the selfish optimization reduces redundant messages.
func TestFig8Shape(t *testing.T) {
	tab, err := Fig8SelfishOptimization(small())
	if err != nil {
		t.Fatal(err)
	}
	reduced := false
	for _, row := range tab.Rows {
		with := parsePct(t, row[3])
		without := parsePct(t, row[4])
		if with > without {
			t.Errorf("%s: optimization increased redundant messages", row[0])
		}
		if with < without {
			reduced = true
		}
	}
	if !reduced {
		t.Error("optimization reduced nothing on any workload")
	}
}

// TestFig2aShape: a checkpoint costs a significant fraction of an iteration.
func TestFig2aShape(t *testing.T) {
	tab, err := Fig2aCheckpointCost(small())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		iter := parseF(t, row[1])
		ck := parseF(t, row[2])
		if ck <= 0 {
			t.Errorf("%s: zero checkpoint cost", row[0])
		}
		if ck < 0.3*iter {
			t.Errorf("%s: checkpoint %.4fs under 30%% of iteration %.4fs — shape broken", row[0], ck, iter)
		}
	}
}

// TestFig11Shape: overhead grows with k but stays bounded.
func TestFig11Shape(t *testing.T) {
	tab, err := Fig11MultiFailureEdgeCut(small())
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, row := range tab.Rows {
		oh := parsePct(t, row[1])
		if oh < prev-0.02 {
			t.Errorf("overhead fell sharply between k levels: %v -> %v", prev, oh)
		}
		prev = oh
		// The Small profile uses a 4-node cluster where K=3 replicates
		// no-replica vertices everywhere, so the bound is loose here; the
		// full-scale suite lands under 10% as in the paper.
		if oh > 0.9 {
			t.Errorf("k=%s overhead %.1f%% unbounded", row[0], oh*100)
		}
	}
}

// TestTable3Shape: memory grows monotonically with k.
func TestTable3Shape(t *testing.T) {
	tab, err := Table3MemoryEdgeCut(small())
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, row := range tab.Rows {
		total := parseF(t, row[2])
		if total < prev {
			t.Errorf("memory shrank with more FT: %v -> %v", prev, total)
		}
		prev = total
	}
}

// TestYoungShape: replication's efficiency dominates checkpointing's.
func TestYoungShape(t *testing.T) {
	tab, err := YoungModelEfficiency(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatal("want 2 rows")
	}
	ck := parseF(t, strings.TrimSuffix(tab.Rows[0][3], "%"))
	rep := parseF(t, strings.TrimSuffix(tab.Rows[1][3], "%"))
	if rep <= ck {
		t.Errorf("REP efficiency %.2f%% not above CKPT's %.2f%%", rep, ck)
	}
}
