package experiments

import (
	"fmt"

	"imitator/internal/algorithms"
	"imitator/internal/core"
	"imitator/internal/datasets"
	"imitator/internal/graph"
)

// Handle is a workload running in the background with the serving layer
// attached: the engine executes (and recovers) on its own goroutine while
// the caller issues live queries against epoch-consistent snapshots.
type Handle struct {
	query func(core.Query) (core.Answer, error)
	done  chan struct{}

	// set by the run goroutine before closing done
	summary RunSummary
	err     error
}

// Query answers one live query from the last published epoch. Safe to call
// concurrently, before and after the run finishes.
func (h *Handle) Query(q core.Query) (core.Answer, error) { return h.query(q) }

// Done is closed when the engine goroutine finishes.
func (h *Handle) Done() <-chan struct{} { return h.done }

// Wait blocks until the run completes and returns its summary.
func (h *Handle) Wait() (RunSummary, error) {
	<-h.done
	return h.summary, h.err
}

func startTyped[V, A any](cfg core.Config, g *graph.Graph, prog core.Program[V, A]) (*Handle, error) {
	cl, err := core.NewCluster[V, A](cfg, g, prog)
	if err != nil {
		return nil, err
	}
	h := &Handle{query: cl.Query, done: make(chan struct{})}
	go func() {
		defer close(h.done)
		res, err := cl.Run()
		if err != nil {
			h.err = err
			return
		}
		h.summary = summarize(res, cl.ReplicationFactor(), g)
	}()
	return h, nil
}

// StartWorkload launches one named workload on its catalog dataset as a
// live-serving run (Config.Serve is force-enabled) and returns the query
// handle immediately.
func StartWorkload(w Workload, cfg core.Config) (*Handle, error) {
	g, err := datasets.Load(w.Dataset)
	if err != nil {
		return nil, err
	}
	return StartWorkloadOn(w, g, cfg)
}

// StartWorkloadOn is StartWorkload on an explicit graph.
func StartWorkloadOn(w Workload, g *graph.Graph, cfg core.Config) (*Handle, error) {
	cfg.MaxIter = w.Iters
	cfg.Serve.Enabled = true
	switch w.Algo {
	case "pagerank":
		return startTyped(cfg, g, algorithms.NewPageRank(g.NumVertices()))
	case "sssp":
		return startTyped(cfg, g, algorithms.NewSSSP(3))
	case "cd":
		return startTyped(cfg, g, algorithms.NewCD())
	case "als":
		// ALS vertex values are vectors; the serving layer indexes scalar
		// values only, so serving ALS is rejected by NewCluster.
		return startTyped(cfg, g, algorithms.NewALS(7000, 8, 0.05))
	default:
		return nil, fmt.Errorf("experiments: unknown algorithm %q", w.Algo)
	}
}
