package datasets

import (
	"math"
	"testing"
)

func TestNamesStable(t *testing.T) {
	a, b := Names(), Names()
	if len(a) != 13 {
		t.Fatalf("expected 13 datasets (8 named + 5 alpha), got %d: %v", len(a), a)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Names() not deterministic")
		}
	}
}

func TestLoadUnknown(t *testing.T) {
	if _, err := Load("nope"); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestLoadMemoizes(t *testing.T) {
	a, err := Load("dblp")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Load("dblp")
	if a != b {
		t.Error("Load did not memoize")
	}
}

func TestSmallDatasetShapes(t *testing.T) {
	cases := []struct {
		name           string
		wantV          int
		minRatio       float64 // |E|/|V| lower bound
		maxRatio       float64
		minSelfishFrac float64
		maxSelfishFrac float64
	}{
		{"gweb", 16000, 5, 7, 0.10, 0.35},
		{"dblp", 16000, 2.5, 4.5, 0, 0.05},
		{"roadca", 32000, 2.5, 4.2, 0, 0.01},
		{"syn-gl", 8000, 20, 28, 0, 0.01},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g, err := Load(c.name)
			if err != nil {
				t.Fatal(err)
			}
			if g.NumVertices() != c.wantV {
				t.Errorf("|V| = %d, want %d", g.NumVertices(), c.wantV)
			}
			ratio := float64(g.NumEdges()) / float64(g.NumVertices())
			if ratio < c.minRatio || ratio > c.maxRatio {
				t.Errorf("|E|/|V| = %.2f outside [%.1f, %.1f]", ratio, c.minRatio, c.maxRatio)
			}
			frac := float64(g.NumSelfish()) / float64(g.NumVertices())
			if frac < c.minSelfishFrac || frac > c.maxSelfishFrac {
				t.Errorf("selfish fraction %.3f outside [%.2f, %.2f]", frac, c.minSelfishFrac, c.maxSelfishFrac)
			}
		})
	}
}

func TestAlphaSweepEdgeCountsGrow(t *testing.T) {
	// Table 4: |E| grows as alpha falls. Checked on the two cheapest.
	g22, err := Load("alpha-2.2")
	if err != nil {
		t.Fatal(err)
	}
	g21, err := Load("alpha-2.1")
	if err != nil {
		t.Fatal(err)
	}
	if g22.NumVertices() != 32000 || g21.NumVertices() != 32000 {
		t.Error("alpha graphs must share |V| = 32000")
	}
	if g21.NumEdges() <= g22.NumEdges() {
		t.Errorf("alpha 2.1 edges (%d) should exceed alpha 2.2's (%d)",
			g21.NumEdges(), g22.NumEdges())
	}
}

func TestRoadWeightsLogNormal(t *testing.T) {
	g, err := Load("roadca")
	if err != nil {
		t.Fatal(err)
	}
	var sumLog float64
	for _, e := range g.Edges() {
		if e.Weight <= 0 {
			t.Fatal("non-positive road weight")
		}
		sumLog += math.Log(e.Weight)
	}
	mean := sumLog / float64(g.NumEdges())
	if math.Abs(mean-0.4) > 0.15 {
		t.Errorf("log-weight mean %.3f, want ~0.4 (paper mu)", mean)
	}
}

func TestTiny(t *testing.T) {
	g := Tiny(100, 400, 1)
	if g.NumVertices() != 100 || g.NumEdges() != 400 {
		t.Errorf("Tiny produced %d/%d", g.NumVertices(), g.NumEdges())
	}
}
