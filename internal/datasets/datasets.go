// Package datasets names and builds the scaled evaluation graphs. Each
// entry mirrors one row of the paper's Table 1 (Cyclops/edge-cut inputs) or
// Table 4 (PowerLyra/vertex-cut inputs), scaled down ~64x so the whole suite
// runs on a single machine while preserving the |E|/|V| ratio, degree skew
// and selfish-vertex fraction that the paper's measurements depend on.
package datasets

import (
	"fmt"
	"sort"
	"sync"

	"imitator/internal/gen"
	"imitator/internal/graph"
)

// Dataset describes one named input graph.
type Dataset struct {
	Name string
	// Paper-scale sizes, for EXPERIMENTS.md tables.
	PaperVertices, PaperEdges string
	// Build generates the scaled graph. Deterministic per name.
	Build func() (*graph.Graph, error)
}

const seedBase = 0x1247a0

// Catalog returns all named datasets, keyed by name.
//
// Scaled sizes keep |E|/|V| close to the paper's originals:
//
//	GWeb     0.87M/5.11M  -> 16k/94k   (ratio 5.9, >10% selfish)
//	LJournal 4.85M/70.0M  -> 64k/923k  (ratio 14.4, >10% selfish)
//	Wiki     5.72M/130.1M -> 72k/1.64M (ratio 22.7)
//	SYN-GL   0.11M/2.7M   -> 8k/196k   (bipartite, ratio 24)
//	DBLP     0.32M/1.05M  -> 16k/52k   (ratio 3.3, community structure)
//	RoadCA   1.97M/5.53M  -> 32k/91k   (ratio 2.8, planar, log-normal weights)
//	UK-2005  40M/936M     -> 96k/2.2M  (ratio 23)
//	Twitter  42M/1.47B    -> 64k/2.2M  (ratio 35)
//	alpha-X  10M/39M-673M -> 32k, |E| scaled by the same ratio
func Catalog() map[string]Dataset {
	cat := map[string]Dataset{
		"gweb": {
			Name: "gweb", PaperVertices: "0.87M", PaperEdges: "5.11M",
			Build: func() (*graph.Graph, error) {
				return gen.PowerLaw(gen.PowerLawConfig{
					NumVertices: 16000, NumEdges: 94000, Alpha: 2.1,
					SelfishFraction: 0.13, Seed: seedBase + 1,
				})
			},
		},
		"ljournal": {
			Name: "ljournal", PaperVertices: "4.85M", PaperEdges: "70.0M",
			Build: func() (*graph.Graph, error) {
				return gen.PowerLaw(gen.PowerLawConfig{
					NumVertices: 64000, NumEdges: 923000, Alpha: 2.0,
					SelfishFraction: 0.11, Seed: seedBase + 2,
				})
			},
		},
		"wiki": {
			Name: "wiki", PaperVertices: "5.72M", PaperEdges: "130.1M",
			Build: func() (*graph.Graph, error) {
				return gen.PowerLaw(gen.PowerLawConfig{
					NumVertices: 72000, NumEdges: 1640000, Alpha: 2.0,
					SelfishFraction: 0.005, Seed: seedBase + 3,
				})
			},
		},
		"syn-gl": {
			Name: "syn-gl", PaperVertices: "0.11M", PaperEdges: "2.7M",
			Build: func() (*graph.Graph, error) {
				return gen.Bipartite(gen.BipartiteConfig{
					NumUsers: 7000, NumItems: 1000, NumRatings: 98000,
					ItemAlpha: 1.1, Seed: seedBase + 4,
				})
			},
		},
		"dblp": {
			Name: "dblp", PaperVertices: "0.32M", PaperEdges: "1.05M",
			Build: func() (*graph.Graph, error) {
				return gen.Community(gen.CommunityConfig{
					NumVertices: 16000, NumCommunities: 400,
					IntraDegree: 3.4, InterDegree: 0.5, Seed: seedBase + 5,
				})
			},
		},
		"roadca": {
			Name: "roadca", PaperVertices: "1.97M", PaperEdges: "5.53M",
			Build: func() (*graph.Graph, error) {
				return gen.Road(gen.RoadConfig{
					Width: 200, Height: 160, ShortcutFrac: 0.02,
					WeightMu: 0.4, WeightSigma: 1.2, Seed: seedBase + 6,
				})
			},
		},
		"uk": {
			Name: "uk", PaperVertices: "40M", PaperEdges: "936M",
			Build: func() (*graph.Graph, error) {
				return gen.PowerLaw(gen.PowerLawConfig{
					NumVertices: 96000, NumEdges: 2200000, Alpha: 2.0,
					SelfishFraction: 0.02, Seed: seedBase + 7,
				})
			},
		},
		"twitter": {
			Name: "twitter", PaperVertices: "42M", PaperEdges: "1.47B",
			Build: func() (*graph.Graph, error) {
				return gen.PowerLaw(gen.PowerLawConfig{
					NumVertices: 64000, NumEdges: 2240000, Alpha: 1.9,
					SelfishFraction: 0.01, Seed: seedBase + 8,
				})
			},
		},
	}
	// Synthetic alpha sweep (Table 4): fixed 32k vertices, edge count scaled
	// from the paper's 10M-vertex originals (39M..673M edges) by 1/312.
	alphaEdges := map[string]int{
		"2.2": 125000, "2.1": 173000, "2.0": 336000, "1.9": 797000, "1.8": 2150000,
	}
	for i, a := range []string{"2.2", "2.1", "2.0", "1.9", "1.8"} {
		a := a
		alpha := []float64{2.2, 2.1, 2.0, 1.9, 1.8}[i]
		edges := alphaEdges[a]
		seed := uint64(seedBase + 16 + i)
		cat["alpha-"+a] = Dataset{
			Name: "alpha-" + a, PaperVertices: "10M",
			PaperEdges: fmt.Sprintf("%dM", []int{39, 54, 105, 249, 673}[i]),
			Build: func() (*graph.Graph, error) {
				return gen.PowerLaw(gen.PowerLawConfig{
					NumVertices: 32000, NumEdges: edges, Alpha: alpha, Seed: seed,
				})
			},
		}
	}
	return cat
}

// Names returns all dataset names in deterministic order.
func Names() []string {
	cat := Catalog()
	names := make([]string, 0, len(cat))
	for n := range cat {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

var (
	cacheMu sync.Mutex
	cache   = map[string]*graph.Graph{}
)

// Load builds (and memoizes) the named dataset. The cache keeps the
// benchmark suite from regenerating multi-million-edge graphs per figure.
func Load(name string) (*graph.Graph, error) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if g, ok := cache[name]; ok {
		return g, nil
	}
	d, ok := Catalog()[name]
	if !ok {
		return nil, fmt.Errorf("datasets: unknown dataset %q", name)
	}
	g, err := d.Build()
	if err != nil {
		return nil, fmt.Errorf("datasets: build %q: %w", name, err)
	}
	cache[name] = g
	return g, nil
}

// MustLoad is Load but panics on error; for benchmarks and examples whose
// dataset names are compile-time constants.
func MustLoad(name string) *graph.Graph {
	g, err := Load(name)
	if err != nil {
		panic(err)
	}
	return g
}

// Tiny returns a small deterministic power-law graph for unit tests.
func Tiny(numVertices, numEdges int, seed uint64) *graph.Graph {
	g, err := gen.PowerLaw(gen.PowerLawConfig{
		NumVertices: numVertices, NumEdges: numEdges, Alpha: 2.0, Seed: seed,
	})
	if err != nil {
		panic(err)
	}
	return g
}
