// Package hostpar provides host-side parallelism helpers for the
// data-preparation paths: graph generation, CSR construction, partitioning
// and cluster loading. These loops run on the real machine's cores, outside
// the simulated cost model, so the only invariant they must preserve is that
// their OUTPUT is independent of the worker count — every caller shards its
// work positionally (each unit writes only indexes it owns) and, where
// random numbers are involved, derives one rng stream per fixed-size shard
// rather than per worker.
//
// This is deliberately separate from internal/core's chunked() machinery:
// chunked() shards by Config.WorkersPerNode because the chunk count feeds
// the simulated cost model (costmodel.ComputeTime), whereas hostpar's width
// is pure host scheduling and must never leak into simulated results.
package hostpar

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Limit is the default worker cap: the process's GOMAXPROCS.
func Limit() int { return runtime.GOMAXPROCS(0) }

// clampWidth resolves a requested width: <= 0 means Limit(), and the result
// never exceeds n (no point parking idle goroutines).
func clampWidth(width, n int) int {
	if width <= 0 {
		width = Limit()
	}
	if width > n {
		width = n
	}
	if width < 1 {
		width = 1
	}
	return width
}

// For runs fn(i) for every i in [0, n) on up to width goroutines (width <= 0
// means Limit()). Work is handed out dynamically, so fn must write only to
// state owned by index i; under that contract the result is identical for
// every width, including the inline width-1 fast path.
func For(n, width int, fn func(i int)) {
	if n <= 0 {
		return
	}
	width = clampWidth(width, n)
	if width == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(width)
	for w := 0; w < width; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Blocks splits [0, n) into contiguous blocks of at least minBlock elements
// (at most one block per worker-slot beyond that floor) and runs fn(lo, hi)
// for each. Block boundaries depend on width, so callers must only use
// Blocks for loops whose output is position-determined (writes to [lo, hi)
// slots) — never to derive per-block rng streams.
func Blocks(n, minBlock, width int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if minBlock < 1 {
		minBlock = 1
	}
	width = clampWidth(width, (n+minBlock-1)/minBlock)
	base, rem := n/width, n%width
	lo := 0
	bounds := make([][2]int, width)
	for b := 0; b < width; b++ {
		hi := lo + base
		if b < rem {
			hi++
		}
		bounds[b] = [2]int{lo, hi}
		lo = hi
	}
	For(width, width, func(b int) {
		fn(bounds[b][0], bounds[b][1])
	})
}
