package chaos

import (
	"errors"
	"testing"

	"imitator/internal/core"
)

// FuzzChaosScheduleRoundTrip feeds arbitrary one-liners through the
// schedule grammar: ParseEvents must never panic, every rejection must
// wrap core.ErrInvalidSchedule, and anything accepted must survive
// FormatEvents∘ParseEvents as a fixed point (the formatted form parses
// back to a schedule that formats identically).
func FuzzChaosScheduleRoundTrip(f *testing.F) {
	for _, seed := range []string{
		"",
		"crash@3b=1,4",
		"crash@5a=0|crashrec=2",
		"crashrec@migration:repair=3,5",
		"slow@2=0>3x8",
		"delay@4=0.25",
		"drop@1=0>2x0.35",
		"dup@2=3>1x0.5",
		"reorder@3=4>5x0.125",
		"part@2~5=1,3",
		"crash@3b=1|drop@1=0>2x0.3|part@2~5=1",
		"drop@1=0>2",
		"part@2=1",
		"boom@3=1",
		"crash@3b=1;2",
		"|||",
		"drop@1=0>2xNaN",
		"delay@1=1e309",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		events, err := ParseEvents(s)
		if err != nil {
			if !errors.Is(err, core.ErrInvalidSchedule) {
				t.Fatalf("ParseEvents(%q) error %v does not wrap ErrInvalidSchedule", s, err)
			}
			return
		}
		// The canonical rendering must be a fixed point: parse it again
		// and the second rendering must match byte for byte.
		text := FormatEvents(events)
		back, err := ParseEvents(text)
		if err != nil {
			t.Fatalf("canonical form %q (from %q) does not re-parse: %v", text, s, err)
		}
		if again := FormatEvents(back); again != text {
			t.Fatalf("canonical form not stable: %q -> %q (input %q)", text, again, s)
		}
		if len(back) != len(events) {
			t.Fatalf("round trip changed event count: %d -> %d (input %q)", len(events), len(back), s)
		}
	})
}
