package chaos

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"imitator/internal/algorithms"
	"imitator/internal/core"
	"imitator/internal/datasets"
	"imitator/internal/graph"
	"imitator/internal/rng"
)

// Campaign is a seeded randomized fault-injection run: Rounds rounds, each
// drawing a fault schedule from the round's own generator and checking
// that the recovered run converges to the fault-free result. Every round
// is a pure function of (Seed, round, mode), so a failure reproduces from
// its repro string alone.
//
// The zero value is not runnable; unset dimensions take the defaults
// below (a 6-node cluster on a 700-vertex synthetic graph, both
// partitioning modes, K=2).
type Campaign struct {
	Seed   uint64
	Rounds int

	Nodes    int         // cluster size (default 6)
	Iters    int         // supersteps per run (default 8)
	Vertices int         // synthetic graph size (default 700)
	Edges    int         // synthetic graph edges (default 4200)
	K        int         // replication factor (default 2)
	Modes    []core.Mode // partitioning modes (default both)
}

// Round scenarios, cycled by round number so every campaign of >= 5
// rounds exercises all five.
const (
	scenarioMultiCrash     = iota // one or two crash events, up to K nodes at once
	scenarioDuringRecovery        // a second failure while a recovery pass runs
	scenarioExhaustion            // empty standby pool forces Rebirth->Migration
	scenarioLossy                 // drop/dup/reorder omission faults riding a crash
	scenarioPartition             // partitioned node rebuilt by Rebirth, fenced on heal
	numScenarios
)

// campaignStrategies are the FT strategies the crash scenarios cycle
// through by round, so a campaign of >= 4*numScenarios rounds runs every
// scenario under every strategy. Exhaustion and partition stay pinned to
// Rebirth — their verdicts are about the standby pool and the epoch fence.
var campaignStrategies = []core.RecoveryKind{
	core.RecoverRebirth, core.RecoverMigration,
	core.RecoverCheckpoint, core.RecoverLogged,
}

// applyStrategy reconfigures the round's job for one recovery strategy,
// mirroring the pkg/imitator typed constructors: the checkpoint and logged
// baselines run without replication FT.
func applyStrategy(cfg *core.Config, kind core.RecoveryKind) {
	cfg.Recovery = kind
	switch kind {
	case core.RecoverCheckpoint:
		cfg.FT = core.FTConfig{}
		cfg.Checkpoint = core.CheckpointConfig{Enabled: true, Interval: 2}
	case core.RecoverLogged:
		cfg.FT = core.FTConfig{}
		cfg.Logged = core.LoggedConfig{Enabled: true, CompactEvery: 3}
	}
}

// recoveryLabels are the during-recovery phase labels each strategy can
// reach; every label is covered by internal/core's crash-during-recovery
// tests.
var recoveryLabels = map[core.RecoveryKind][]string{
	core.RecoverRebirth: {"rebirth:join", "rebirth:reload", "rebirth:reconstruct"},
	core.RecoverMigration: {
		"migration:promote", "migration:moved", "migration:edges",
		"migration:replicas", "migration:repair",
	},
	core.RecoverCheckpoint: {"checkpoint:join", "checkpoint:reload"},
	core.RecoverLogged:     {"logged:join", "logged:replay"},
}

// Report summarizes a finished campaign.
type Report struct {
	Rounds int // rounds requested
	Runs   int // individual cluster runs (rounds x modes)
	// DuringRecovery and Exhaustion count runs that exercised a
	// mid-recovery failure restart and a standby-exhaustion fallback;
	// Lossy counts runs whose reliable layer retransmitted through
	// omission faults, and Fenced counts runs where a healed partition's
	// stale-epoch frames hit the epoch fence.
	DuringRecovery int
	Exhaustion     int
	Lossy          int
	Fenced         int
	// Strategies counts runs per FT strategy name; crash scenarios cycle
	// through all four, so a long campaign covers the full matrix.
	Strategies map[string]int
	Failures   []RoundFailure
}

// RoundFailure is one failed round with a deterministic repro line.
type RoundFailure struct {
	Round int
	Mode  string
	Repro string
	Err   string
}

// Failed reports whether any round failed.
func (r *Report) Failed() bool { return len(r.Failures) > 0 }

// normalized fills defaulted dimensions.
func (c Campaign) normalized() Campaign {
	if c.Rounds <= 0 {
		c.Rounds = 50
	}
	if c.Nodes <= 0 {
		c.Nodes = 6
	}
	if c.Iters <= 0 {
		c.Iters = 8
	}
	if c.Vertices <= 0 {
		c.Vertices = 700
	}
	if c.Edges <= 0 {
		c.Edges = 6 * c.Vertices
	}
	if c.K <= 0 {
		c.K = 2
	}
	if len(c.Modes) == 0 {
		c.Modes = []core.Mode{core.EdgeCutMode, core.VertexCutMode}
	}
	return c
}

// baseConfig is the fault-free job shared by a mode's rounds; per-round
// schedules only add Chaos events and recovery settings on top.
func (c Campaign) baseConfig(mode core.Mode) core.Config {
	cfg := core.DefaultConfig(mode, c.Nodes)
	cfg.MaxIter = c.Iters
	cfg.FT = core.FTConfig{Enabled: true, K: c.K, SelfishOpt: true}
	cfg.MaxRebirths = 8
	return cfg
}

// Run executes the campaign and reports every failed round. The error is
// non-nil only for setup problems (an unrunnable base configuration);
// failed rounds are data, not errors.
func (c Campaign) Run() (*Report, error) {
	c = c.normalized()
	rep := &Report{Rounds: c.Rounds, Strategies: make(map[string]int)}
	g := datasets.Tiny(c.Vertices, c.Edges, rng.Hash64(c.Seed))
	// Fault-free baselines, one per mode: recovery settings and chaos
	// schedules must not change converged values, so one baseline serves
	// every round of the mode.
	baselines := make([][]float64, len(c.Modes))
	for i, mode := range c.Modes {
		cfg := c.baseConfig(mode)
		cfg.Recovery = core.RecoverRebirth
		res, err := runPageRank(cfg, g)
		if err != nil {
			return nil, fmt.Errorf("chaos: fault-free baseline (%v): %w", mode, err)
		}
		baselines[i] = res.Values
	}
	for round := 0; round < c.Rounds; round++ {
		for i, mode := range c.Modes {
			rep.Runs++
			out := c.runRound(round, mode, g, baselines[i])
			rep.DuringRecovery += out.duringRecovery
			rep.Exhaustion += out.exhaustion
			rep.Lossy += out.lossy
			rep.Fenced += out.fenced
			rep.Strategies[out.ft]++
			if out.err != nil {
				rep.Failures = append(rep.Failures, RoundFailure{
					Round: round, Mode: mode.String(),
					Repro: out.repro, Err: out.err.Error(),
				})
			}
		}
	}
	return rep, nil
}

// roundOutcome is one (round, mode) run's verdict.
type roundOutcome struct {
	repro          string
	ft             string
	err            error
	duringRecovery int
	exhaustion     int
	lossy          int
	fenced         int
}

// runRound generates round's schedule from its seed and runs it against
// the baseline. g and baseline must come from the same campaign
// dimensions (Replay re-derives both).
func (c Campaign) runRound(round int, mode core.Mode, g *coreGraph, baseline []float64) roundOutcome {
	r := rng.New(c.Seed ^ rng.Hash2(uint64(round), uint64(mode)+1))
	scenario := round % numScenarios
	strat := campaignStrategies[(round/numScenarios)%len(campaignStrategies)]
	cfg := c.baseConfig(mode)

	victims := r.Perm(c.Nodes)
	crashIter := 1 + r.Intn(c.Iters-2)
	var sched Schedule
	migrationInvolved := false
	switch scenario {
	case scenarioMultiCrash:
		applyStrategy(&cfg, strat)
		n := 1 + r.Intn(c.K)
		sched = append(sched, core.ChaosEvent{
			Kind: core.ChaosCrash, Iteration: crashIter,
			Phase: pickPhase(r), Nodes: sortedInts(victims[:n]),
		})
		// Sometimes a second, sequential crash after the first recovery
		// completed (FT repair restored K by then).
		if r.Intn(2) == 0 && crashIter+1 < c.Iters-1 {
			iter2 := crashIter + 1 + r.Intn(c.Iters-1-crashIter-1)
			sched = append(sched, core.ChaosEvent{
				Kind: core.ChaosCrash, Iteration: iter2,
				Phase: pickPhase(r), Nodes: victims[n : n+1],
			})
		}
		migrationInvolved = cfg.Recovery == core.RecoverMigration
	case scenarioDuringRecovery:
		applyStrategy(&cfg, strat)
		labels := recoveryLabels[cfg.Recovery]
		sched = append(sched,
			core.ChaosEvent{
				Kind: core.ChaosCrash, Iteration: crashIter,
				Phase: pickPhase(r), Nodes: victims[:1],
			},
			core.ChaosEvent{
				Kind:   core.ChaosCrashDuringRecovery,
				During: labels[r.Intn(len(labels))], Nodes: victims[1:2],
			},
		)
		migrationInvolved = cfg.Recovery == core.RecoverMigration
	case scenarioExhaustion:
		cfg.Recovery = core.RecoverRebirth
		cfg.MaxRebirths = 0
		cfg.RebirthFallback = true
		n := 1 + r.Intn(c.K)
		sched = append(sched, core.ChaosEvent{
			Kind: core.ChaosCrash, Iteration: crashIter,
			Phase: pickPhase(r), Nodes: sortedInts(victims[:n]),
		})
		migrationInvolved = true // fallback completes as a migration
	case scenarioLossy:
		applyStrategy(&cfg, strat)
		cfg.ChaosSeed = r.Uint64()
		// Soak a handful of distinct links in omission faults from
		// iteration 1, then crash a node on top: the reliable layer must
		// carry both steady-state and recovery traffic through the loss.
		kinds := []core.ChaosKind{core.ChaosDrop, core.ChaosDuplicate, core.ChaosReorder}
		for i, n := 0, 2+r.Intn(3); i < n; i++ {
			kind := kinds[r.Intn(len(kinds))]
			limit := 1.0
			if kind == core.ChaosDrop {
				limit = core.MaxDropRate
			}
			sched = append(sched, core.ChaosEvent{
				Kind: kind, Iteration: 1,
				From: victims[i%c.Nodes], To: victims[(i+1)%c.Nodes],
				Prob: limit * (0.2 + 0.3*r.Float64()),
			})
		}
		sched = append(sched, core.ChaosEvent{
			Kind: core.ChaosCrash, Iteration: crashIter,
			Phase: pickPhase(r), Nodes: victims[:1],
		})
		migrationInvolved = cfg.Recovery == core.RecoverMigration
	case scenarioPartition:
		// A partitioned-but-alive node is indistinguishable from a crashed
		// one to the survivors: Rebirth rebuilds its slot under a bumped
		// epoch, and the heal must release only fenced stale frames.
		cfg.Recovery = core.RecoverRebirth
		cfg.ChaosSeed = r.Uint64()
		healIter := crashIter + 1 + r.Intn(c.Iters-1-crashIter)
		sched = append(sched, core.ChaosEvent{
			Kind: core.ChaosPartition, Iteration: crashIter,
			HealIter: healIter, Nodes: victims[:1],
		})
	}
	// Degradation riders: they may reshape timing, never values.
	if r.Intn(2) == 0 {
		sched = append(sched, core.ChaosEvent{
			Kind: core.ChaosSlowLink, Iteration: 1 + r.Intn(c.Iters-2),
			From: victims[c.Nodes-2], To: victims[c.Nodes-1],
			Factor: float64(int(2) << r.Intn(3)),
		})
	}
	if r.Intn(3) == 0 {
		sched = append(sched, core.ChaosEvent{
			Kind: core.ChaosDelayBurst, Iteration: 1 + r.Intn(c.Iters-2),
			Seconds: 0.05 * float64(1+r.Intn(5)),
		})
	}
	cfg.Chaos = sched

	out := roundOutcome{
		ft: cfg.Recovery.String(),
		repro: fmt.Sprintf("chaos seed=%d round=%d mode=%s ft=%s sched=%s",
			c.Seed, round, mode, cfg.Recovery, FormatEvents(sched)),
	}
	res, err := runPageRank(cfg, g)
	if err != nil {
		out.err = err
		return out
	}
	// Vertex-cut migrations merge gather partials in a recovered order;
	// everything else must be bit-identical to the fault-free run.
	tol := 0.0
	if mode == core.VertexCutMode && migrationInvolved {
		tol = 1e-9
	}
	if err := valuesMatch(res.Values, baseline, tol); err != nil {
		out.err = err
		return out
	}
	if len(res.Recoveries) == 0 {
		out.err = fmt.Errorf("no recovery reported")
		return out
	}
	switch scenario {
	case scenarioDuringRecovery:
		last := res.Recoveries[len(res.Recoveries)-1]
		if len(last.Failed) < 2 {
			out.err = fmt.Errorf("restarted recovery covered %v, want both victims", last.Failed)
			return out
		}
		out.duringRecovery = 1
	case scenarioExhaustion:
		first := res.Recoveries[0]
		if first.Kind != "migration" || !first.Fallback {
			out.err = fmt.Errorf("recovery was %s (fallback=%v), want migration fallback",
				first.Kind, first.Fallback)
			return out
		}
		out.exhaustion = 1
	case scenarioLossy:
		if res.Omission == nil {
			out.err = fmt.Errorf("omission schedule reported no omission stats")
			return out
		}
		if res.Omission.Retransmits+res.Omission.DuplicatesDropped+res.Omission.Reordered == 0 {
			out.err = fmt.Errorf("omission faults drew no fates: %+v", *res.Omission)
			return out
		}
		out.lossy = 1
	case scenarioPartition:
		if res.Omission == nil {
			out.err = fmt.Errorf("partition reported no omission stats")
			return out
		}
		if res.Omission.Fenced == 0 {
			out.err = fmt.Errorf("healed partition fenced no stale-epoch frames: %+v", *res.Omission)
			return out
		}
		out.fenced = 1
	}
	return out
}

// Replay re-runs the single round identified by a repro line emitted in a
// RoundFailure, against this campaign's dimensions, and returns that
// round's error (nil if it now passes). Only seed, round and mode are read
// from the line — the schedule regenerates deterministically from them.
func (c Campaign) Replay(repro string) error {
	c = c.normalized()
	var (
		haveSeed, haveRound, haveMode bool
		round                         int
		mode                          core.Mode
	)
	for _, tok := range strings.Fields(repro) {
		key, val, ok := strings.Cut(tok, "=")
		if !ok {
			continue
		}
		switch key {
		case "seed":
			s, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return fmt.Errorf("%w: bad repro seed %q", core.ErrInvalidSchedule, val)
			}
			c.Seed = s
			haveSeed = true
		case "round":
			n, err := strconv.Atoi(val)
			if err != nil {
				return fmt.Errorf("%w: bad repro round %q", core.ErrInvalidSchedule, val)
			}
			round = n
			haveRound = true
		case "mode":
			switch val {
			case core.EdgeCutMode.String():
				mode = core.EdgeCutMode
			case core.VertexCutMode.String():
				mode = core.VertexCutMode
			default:
				return fmt.Errorf("%w: bad repro mode %q", core.ErrInvalidSchedule, val)
			}
			haveMode = true
		}
	}
	if !haveSeed || !haveRound || !haveMode {
		return fmt.Errorf("%w: repro needs seed=, round= and mode=", core.ErrInvalidSchedule)
	}
	g := datasets.Tiny(c.Vertices, c.Edges, rng.Hash64(c.Seed))
	cfg := c.baseConfig(mode)
	cfg.Recovery = core.RecoverRebirth
	base, err := runPageRank(cfg, g)
	if err != nil {
		return err
	}
	return c.runRound(round, mode, g, base.Values).err
}

// coreGraph aliases the graph type to keep signatures short here.
type coreGraph = graph.Graph

// runPageRank runs one PageRank job.
func runPageRank(cfg core.Config, g *coreGraph) (*core.Result[float64], error) {
	cl, err := core.NewCluster[float64, float64](cfg, g, algorithms.NewPageRank(g.NumVertices()))
	if err != nil {
		return nil, err
	}
	return cl.Run()
}

// pickPhase draws a crash phase.
func pickPhase(r *rng.Source) core.FailPhase {
	if r.Intn(2) == 0 {
		return core.FailBeforeBarrier
	}
	return core.FailAfterBarrier
}

// sortedInts returns a sorted copy (crash node lists read nicer ordered).
func sortedInts(xs []int) []int {
	out := append([]int(nil), xs...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// valuesMatch compares a recovered run's values to the fault-free
// baseline: exact when tol is zero, else relative with criterion
// |got-want| <= tol*(1+|want|).
func valuesMatch(got, want []float64, tol float64) error {
	if len(got) != len(want) {
		return fmt.Errorf("value count %d != baseline %d", len(got), len(want))
	}
	for v := range want {
		if tol == 0 {
			if got[v] != want[v] && !(math.IsNaN(got[v]) && math.IsNaN(want[v])) {
				return fmt.Errorf("vertex %d: %v != baseline %v (exact)", v, got[v], want[v])
			}
			continue
		}
		if math.Abs(got[v]-want[v]) > tol*(1+math.Abs(want[v])) {
			return fmt.Errorf("vertex %d: %v != baseline %v (tol %g)", v, got[v], want[v], tol)
		}
	}
	return nil
}
