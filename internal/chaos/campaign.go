package chaos

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"imitator/internal/algorithms"
	"imitator/internal/core"
	"imitator/internal/datasets"
	"imitator/internal/graph"
	"imitator/internal/rng"
)

// Campaign is a seeded randomized fault-injection run: Rounds rounds, each
// drawing a fault schedule from the round's own generator and checking
// that the recovered run converges to the fault-free result. Every round
// is a pure function of (Seed, round, mode), so a failure reproduces from
// its repro string alone.
//
// The zero value is not runnable; unset dimensions take the defaults
// below (a 6-node cluster on a 700-vertex synthetic graph, both
// partitioning modes, K=2).
type Campaign struct {
	Seed   uint64
	Rounds int

	Nodes    int         // cluster size (default 6)
	Iters    int         // supersteps per run (default 8)
	Vertices int         // synthetic graph size (default 700)
	Edges    int         // synthetic graph edges (default 4200)
	K        int         // replication factor (default 2)
	Modes    []core.Mode // partitioning modes (default both)
}

// Round scenarios, cycled by round number so every campaign of >= 5
// rounds exercises all five.
const (
	scenarioMultiCrash     = iota // one or two crash events, up to K nodes at once
	scenarioDuringRecovery        // a second failure while a recovery pass runs
	scenarioExhaustion            // empty standby pool forces Rebirth->Migration
	scenarioLossy                 // drop/dup/reorder omission faults riding a crash
	scenarioPartition             // partitioned node rebuilt by Rebirth, fenced on heal
	numScenarios
)

// campaignStrategies are the FT strategies the crash scenarios cycle
// through by round, so a campaign of >= 4*numScenarios rounds runs every
// scenario under every strategy. Exhaustion and partition stay pinned to
// Rebirth — their verdicts are about the standby pool and the epoch fence.
var campaignStrategies = []core.RecoveryKind{
	core.RecoverRebirth, core.RecoverMigration,
	core.RecoverCheckpoint, core.RecoverLogged,
}

// applyStrategy reconfigures the round's job for one recovery strategy,
// mirroring the pkg/imitator typed constructors: the checkpoint and logged
// baselines run without replication FT.
func applyStrategy(cfg *core.Config, kind core.RecoveryKind) {
	cfg.Recovery = kind
	switch kind {
	case core.RecoverCheckpoint:
		cfg.FT = core.FTConfig{}
		cfg.Checkpoint = core.CheckpointConfig{Enabled: true, Interval: 2}
	case core.RecoverLogged:
		cfg.FT = core.FTConfig{}
		cfg.Logged = core.LoggedConfig{Enabled: true, CompactEvery: 3}
	}
}

// recoveryLabels are the during-recovery phase labels each strategy can
// reach; every label is covered by internal/core's crash-during-recovery
// tests.
var recoveryLabels = map[core.RecoveryKind][]string{
	core.RecoverRebirth: {"rebirth:join", "rebirth:reload", "rebirth:reconstruct"},
	core.RecoverMigration: {
		"migration:promote", "migration:moved", "migration:edges",
		"migration:replicas", "migration:repair",
	},
	core.RecoverCheckpoint: {"checkpoint:join", "checkpoint:reload"},
	core.RecoverLogged:     {"logged:join", "logged:replay"},
}

// Report summarizes a finished campaign.
type Report struct {
	Rounds int // rounds requested
	Runs   int // individual cluster runs (rounds x modes)
	// DuringRecovery and Exhaustion count runs that exercised a
	// mid-recovery failure restart and a standby-exhaustion fallback;
	// Lossy counts runs whose reliable layer retransmitted through
	// omission faults, and Fenced counts runs where a healed partition's
	// stale-epoch frames hit the epoch fence.
	DuringRecovery int
	Exhaustion     int
	Lossy          int
	Fenced         int
	// Strategies counts runs per FT strategy name; crash scenarios cycle
	// through all four, so a long campaign covers the full matrix.
	Strategies map[string]int
	// Memberships counts rounds per failure-detector mode; rounds
	// alternate centralized and gossip, so both detectors carry every
	// scenario over a long campaign.
	Memberships map[string]int
	// Queries counts live serve-mode reads answered while rounds were still
	// executing their fault schedules; every one was validated against the
	// fault-free trajectory at its declared epoch. ReplicaReads counts the
	// answers served from an FT replica because the master was down.
	Queries      int
	ReplicaReads int
	Failures     []RoundFailure
}

// RoundFailure is one failed round with a deterministic repro line.
type RoundFailure struct {
	Round int
	Mode  string
	Repro string
	Err   string
}

// Failed reports whether any round failed.
func (r *Report) Failed() bool { return len(r.Failures) > 0 }

// normalized fills defaulted dimensions.
func (c Campaign) normalized() Campaign {
	if c.Rounds <= 0 {
		c.Rounds = 50
	}
	if c.Nodes <= 0 {
		c.Nodes = 6
	}
	if c.Iters <= 0 {
		c.Iters = 8
	}
	if c.Vertices <= 0 {
		c.Vertices = 700
	}
	if c.Edges <= 0 {
		c.Edges = 6 * c.Vertices
	}
	if c.K <= 0 {
		c.K = 2
	}
	if len(c.Modes) == 0 {
		c.Modes = []core.Mode{core.EdgeCutMode, core.VertexCutMode}
	}
	return c
}

// baseConfig is the fault-free job shared by a mode's rounds; per-round
// schedules only add Chaos events and recovery settings on top.
func (c Campaign) baseConfig(mode core.Mode) core.Config {
	cfg := core.DefaultConfig(mode, c.Nodes)
	cfg.MaxIter = c.Iters
	cfg.FT = core.FTConfig{Enabled: true, K: c.K, SelfishOpt: true}
	cfg.MaxRebirths = 8
	return cfg
}

// Run executes the campaign and reports every failed round. The error is
// non-nil only for setup problems (an unrunnable base configuration);
// failed rounds are data, not errors.
func (c Campaign) Run() (*Report, error) {
	c = c.normalized()
	rep := &Report{Rounds: c.Rounds, Strategies: make(map[string]int), Memberships: make(map[string]int)}
	g := datasets.Tiny(c.Vertices, c.Edges, rng.Hash64(c.Seed))
	// Fault-free baselines, one per mode: recovery settings and chaos
	// schedules must not change converged values, so one baseline serves
	// every round of the mode. The baseline runs with serve history on so
	// the rounds' live queries can be checked against the trajectory at
	// whatever epoch each answer declares.
	baselines := make([][]float64, len(c.Modes))
	truths := make([]map[int][]float64, len(c.Modes))
	for i, mode := range c.Modes {
		cfg := c.baseConfig(mode)
		cfg.Recovery = core.RecoverRebirth
		baseline, truth, err := runBaseline(cfg, g)
		if err != nil {
			return nil, fmt.Errorf("chaos: fault-free baseline (%v): %w", mode, err)
		}
		baselines[i], truths[i] = baseline, truth
	}
	for round := 0; round < c.Rounds; round++ {
		for i, mode := range c.Modes {
			rep.Runs++
			out := c.runRound(round, mode, g, baselines[i], truths[i])
			rep.DuringRecovery += out.duringRecovery
			rep.Exhaustion += out.exhaustion
			rep.Lossy += out.lossy
			rep.Fenced += out.fenced
			rep.Queries += out.queries
			rep.ReplicaReads += out.replicaReads
			rep.Strategies[out.ft]++
			rep.Memberships[out.mem]++
			if out.err != nil {
				rep.Failures = append(rep.Failures, RoundFailure{
					Round: round, Mode: mode.String(),
					Repro: out.repro, Err: out.err.Error(),
				})
			}
		}
	}
	return rep, nil
}

// roundOutcome is one (round, mode) run's verdict.
type roundOutcome struct {
	repro          string
	ft             string
	mem            string
	err            error
	duringRecovery int
	exhaustion     int
	lossy          int
	fenced         int
	queries        int
	replicaReads   int
}

// runRound generates round's schedule from its seed and runs it against
// the baseline, serving a seeded stream of live queries while the fault
// schedule plays out. g, baseline and truth must come from the same
// campaign dimensions (Replay re-derives all three).
func (c Campaign) runRound(round int, mode core.Mode, g *coreGraph, baseline []float64, truth map[int][]float64) roundOutcome {
	r := rng.New(c.Seed ^ rng.Hash2(uint64(round), uint64(mode)+1))
	scenario := round % numScenarios
	strat := campaignStrategies[(round/numScenarios)%len(campaignStrategies)]
	cfg := c.baseConfig(mode)
	// Alternate the failure detector by round: odd rounds deliver every
	// crash and partition through SWIM gossip instead of the centralized
	// monitor. numScenarios is odd, so both detectors cycle through every
	// scenario. Replay re-derives the mode from the round number; the
	// repro line carries it for the reader only.
	if round%2 == 1 {
		cfg.Membership = core.MembershipConfig{Kind: core.MembershipGossip}
	}

	victims := r.Perm(c.Nodes)
	crashIter := 1 + r.Intn(c.Iters-2)
	var sched Schedule
	migrationInvolved := false
	switch scenario {
	case scenarioMultiCrash:
		applyStrategy(&cfg, strat)
		n := 1 + r.Intn(c.K)
		sched = append(sched, core.ChaosEvent{
			Kind: core.ChaosCrash, Iteration: crashIter,
			Phase: pickPhase(r), Nodes: sortedInts(victims[:n]),
		})
		// Sometimes a second, sequential crash after the first recovery
		// completed (FT repair restored K by then).
		if r.Intn(2) == 0 && crashIter+1 < c.Iters-1 {
			iter2 := crashIter + 1 + r.Intn(c.Iters-1-crashIter-1)
			sched = append(sched, core.ChaosEvent{
				Kind: core.ChaosCrash, Iteration: iter2,
				Phase: pickPhase(r), Nodes: victims[n : n+1],
			})
		}
		migrationInvolved = cfg.Recovery == core.RecoverMigration
	case scenarioDuringRecovery:
		applyStrategy(&cfg, strat)
		labels := recoveryLabels[cfg.Recovery]
		sched = append(sched,
			core.ChaosEvent{
				Kind: core.ChaosCrash, Iteration: crashIter,
				Phase: pickPhase(r), Nodes: victims[:1],
			},
			core.ChaosEvent{
				Kind:   core.ChaosCrashDuringRecovery,
				During: labels[r.Intn(len(labels))], Nodes: victims[1:2],
			},
		)
		migrationInvolved = cfg.Recovery == core.RecoverMigration
	case scenarioExhaustion:
		cfg.Recovery = core.RecoverRebirth
		cfg.MaxRebirths = 0
		cfg.RebirthFallback = true
		n := 1 + r.Intn(c.K)
		sched = append(sched, core.ChaosEvent{
			Kind: core.ChaosCrash, Iteration: crashIter,
			Phase: pickPhase(r), Nodes: sortedInts(victims[:n]),
		})
		migrationInvolved = true // fallback completes as a migration
	case scenarioLossy:
		applyStrategy(&cfg, strat)
		cfg.ChaosSeed = r.Uint64()
		// Soak a handful of distinct links in omission faults from
		// iteration 1, then crash a node on top: the reliable layer must
		// carry both steady-state and recovery traffic through the loss.
		kinds := []core.ChaosKind{core.ChaosDrop, core.ChaosDuplicate, core.ChaosReorder}
		for i, n := 0, 2+r.Intn(3); i < n; i++ {
			kind := kinds[r.Intn(len(kinds))]
			limit := 1.0
			if kind == core.ChaosDrop {
				limit = core.MaxDropRate
			}
			sched = append(sched, core.ChaosEvent{
				Kind: kind, Iteration: 1,
				From: victims[i%c.Nodes], To: victims[(i+1)%c.Nodes],
				Prob: limit * (0.2 + 0.3*r.Float64()),
			})
		}
		sched = append(sched, core.ChaosEvent{
			Kind: core.ChaosCrash, Iteration: crashIter,
			Phase: pickPhase(r), Nodes: victims[:1],
		})
		migrationInvolved = cfg.Recovery == core.RecoverMigration
	case scenarioPartition:
		// A partitioned-but-alive node is indistinguishable from a crashed
		// one to the survivors: Rebirth rebuilds its slot under a bumped
		// epoch, and the heal must release only fenced stale frames.
		cfg.Recovery = core.RecoverRebirth
		cfg.ChaosSeed = r.Uint64()
		healIter := crashIter + 1 + r.Intn(c.Iters-1-crashIter)
		sched = append(sched, core.ChaosEvent{
			Kind: core.ChaosPartition, Iteration: crashIter,
			HealIter: healIter, Nodes: victims[:1],
		})
	}
	// Degradation riders: they may reshape timing, never values.
	if r.Intn(2) == 0 {
		sched = append(sched, core.ChaosEvent{
			Kind: core.ChaosSlowLink, Iteration: 1 + r.Intn(c.Iters-2),
			From: victims[c.Nodes-2], To: victims[c.Nodes-1],
			Factor: float64(int(2) << r.Intn(3)),
		})
	}
	if r.Intn(3) == 0 {
		sched = append(sched, core.ChaosEvent{
			Kind: core.ChaosDelayBurst, Iteration: 1 + r.Intn(c.Iters-2),
			Seconds: 0.05 * float64(1+r.Intn(5)),
		})
	}
	cfg.Chaos = sched
	cfg.Serve = core.ServeConfig{Enabled: true}
	// Odd rounds disable the selfish-vertices optimization so FT replicas
	// stay synced: recovery-window reads on a dead master's vertices are
	// then served from replicas instead of honestly refused.
	if cfg.FT.Enabled && round%2 == 1 {
		cfg.FT.SelfishOpt = false
	}
	// Draw the query seeds after the schedule is complete so the schedule
	// streams stay identical to a query-free campaign.
	qr := rng.New(r.Uint64())
	hr := rng.New(r.Uint64())

	out := roundOutcome{
		ft:  cfg.Recovery.String(),
		mem: cfg.Membership.Kind.String(),
		repro: fmt.Sprintf("chaos seed=%d round=%d mode=%s ft=%s mem=%s sched=%s",
			c.Seed, round, mode, cfg.Recovery, cfg.Membership.Kind, FormatEvents(sched)),
	}
	// Vertex-cut migrations merge gather partials in a recovered order;
	// everything else must be bit-identical to the fault-free run.
	tol := 0.0
	if mode == core.VertexCutMode && migrationInvolved {
		tol = 1e-9
	}
	cl, err := newPageRank(cfg, g)
	if err != nil {
		out.err = err
		return out
	}
	// Pin one read inside every recovery window: the hook fires between
	// recovery phases, exactly where serving must keep answering while the
	// engine rebuilds the failed node.
	type liveRead struct {
		ans core.Answer
		err error
	}
	var hookReads []liveRead
	cl.SetRecoveryHook(func(phase string) {
		q := core.Query{Kind: core.QueryValue, Vertex: graph.VertexID(hr.Intn(len(baseline)))}
		ans, err := cl.Query(q)
		hookReads = append(hookReads, liveRead{ans, err})
	})
	// Run the fault schedule in the background and serve a deterministic
	// query stream against the live cluster: reads land before, during and
	// after the crash/partition windows, and every answer must match the
	// fault-free trajectory at the epoch it declares.
	done := make(chan struct{})
	var res *core.Result[float64]
	var runErr error
	go func() {
		defer close(done)
		res, runErr = cl.Run()
	}()
	for i := 0; i < roundQueries; i++ {
		q := core.Query{Kind: core.QueryValue, Vertex: graph.VertexID(qr.Intn(len(baseline)))}
		if i%8 == 7 {
			q = core.Query{Kind: core.QueryTopK, K: 5}
		}
		ans, qerr := cl.Query(q)
		if qerr != nil {
			// An honest refusal — the master is down and its replicas are
			// selfish or dead — is allowed; a wrong answer is not.
			if errors.Is(qerr, core.ErrVertexUnavailable) {
				continue
			}
			out.err = fmt.Errorf("live query %d: %w", i, qerr)
			break
		}
		if verr := checkLiveAnswer(ans, truth, tol); verr != nil {
			out.err = fmt.Errorf("live query %d: %w", i, verr)
			break
		}
		out.queries++
		if ans.FromReplica {
			out.replicaReads++
		}
	}
	<-done
	if runErr != nil {
		out.err = runErr
		return out
	}
	if out.err != nil {
		return out
	}
	// hookReads is written only on the engine goroutine; the done channel
	// orders it before these reads.
	for i, rd := range hookReads {
		if rd.err != nil {
			if errors.Is(rd.err, core.ErrVertexUnavailable) {
				continue
			}
			out.err = fmt.Errorf("recovery-window query %d: %w", i, rd.err)
			return out
		}
		if verr := checkLiveAnswer(rd.ans, truth, tol); verr != nil {
			out.err = fmt.Errorf("recovery-window query %d: %w", i, verr)
			return out
		}
		out.queries++
		if rd.ans.FromReplica {
			out.replicaReads++
		}
	}
	if err := valuesMatch(res.Values, baseline, tol); err != nil {
		out.err = err
		return out
	}
	if len(res.Recoveries) == 0 {
		out.err = fmt.Errorf("no recovery reported")
		return out
	}
	switch scenario {
	case scenarioDuringRecovery:
		last := res.Recoveries[len(res.Recoveries)-1]
		if len(last.Failed) < 2 {
			out.err = fmt.Errorf("restarted recovery covered %v, want both victims", last.Failed)
			return out
		}
		out.duringRecovery = 1
	case scenarioExhaustion:
		first := res.Recoveries[0]
		if first.Kind != "migration" || !first.Fallback {
			out.err = fmt.Errorf("recovery was %s (fallback=%v), want migration fallback",
				first.Kind, first.Fallback)
			return out
		}
		out.exhaustion = 1
	case scenarioLossy:
		if res.Omission == nil {
			out.err = fmt.Errorf("omission schedule reported no omission stats")
			return out
		}
		if res.Omission.Retransmits+res.Omission.DuplicatesDropped+res.Omission.Reordered == 0 {
			out.err = fmt.Errorf("omission faults drew no fates: %+v", *res.Omission)
			return out
		}
		out.lossy = 1
	case scenarioPartition:
		if res.Omission == nil {
			out.err = fmt.Errorf("partition reported no omission stats")
			return out
		}
		if res.Omission.Fenced == 0 {
			out.err = fmt.Errorf("healed partition fenced no stale-epoch frames: %+v", *res.Omission)
			return out
		}
		out.fenced = 1
	}
	// Every round crashes or partitions at least one node, so the
	// configured detector must have confirmed at least one failure.
	if res.Membership == nil {
		out.err = fmt.Errorf("round with failures reported no membership stats")
		return out
	}
	if res.Membership.Mode != cfg.Membership.Kind.String() {
		out.err = fmt.Errorf("membership ran %q, configured %q", res.Membership.Mode, cfg.Membership.Kind)
		return out
	}
	if len(res.Membership.DetectionSeconds) == 0 {
		out.err = fmt.Errorf("%s detector confirmed no failures", res.Membership.Mode)
		return out
	}
	return out
}

// Replay re-runs the single round identified by a repro line emitted in a
// RoundFailure, against this campaign's dimensions, and returns that
// round's error (nil if it now passes). Only seed, round and mode are read
// from the line — the schedule regenerates deterministically from them.
func (c Campaign) Replay(repro string) error {
	c = c.normalized()
	var (
		haveSeed, haveRound, haveMode bool
		round                         int
		mode                          core.Mode
	)
	for _, tok := range strings.Fields(repro) {
		key, val, ok := strings.Cut(tok, "=")
		if !ok {
			continue
		}
		switch key {
		case "seed":
			s, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return fmt.Errorf("%w: bad repro seed %q", core.ErrInvalidSchedule, val)
			}
			c.Seed = s
			haveSeed = true
		case "round":
			n, err := strconv.Atoi(val)
			if err != nil {
				return fmt.Errorf("%w: bad repro round %q", core.ErrInvalidSchedule, val)
			}
			round = n
			haveRound = true
		case "mode":
			switch val {
			case core.EdgeCutMode.String():
				mode = core.EdgeCutMode
			case core.VertexCutMode.String():
				mode = core.VertexCutMode
			default:
				return fmt.Errorf("%w: bad repro mode %q", core.ErrInvalidSchedule, val)
			}
			haveMode = true
		}
	}
	if !haveSeed || !haveRound || !haveMode {
		return fmt.Errorf("%w: repro needs seed=, round= and mode=", core.ErrInvalidSchedule)
	}
	g := datasets.Tiny(c.Vertices, c.Edges, rng.Hash64(c.Seed))
	cfg := c.baseConfig(mode)
	cfg.Recovery = core.RecoverRebirth
	baseline, truth, err := runBaseline(cfg, g)
	if err != nil {
		return err
	}
	return c.runRound(round, mode, g, baseline, truth).err
}

// coreGraph aliases the graph type to keep signatures short here.
type coreGraph = graph.Graph

// roundQueries is the fixed number of live queries issued per round. The
// stream is a pure function of the round seed; only the epoch each answer
// observes depends on where the run happens to be when the read lands.
const roundQueries = 48

// newPageRank builds one PageRank cluster.
func newPageRank(cfg core.Config, g *coreGraph) (*core.Cluster[float64, float64], error) {
	return core.NewCluster[float64, float64](cfg, g, algorithms.NewPageRank(g.NumVertices()))
}

// runBaseline runs the fault-free job with serve history retained and
// returns the converged values plus the per-epoch trajectory that the
// rounds' live answers are validated against.
func runBaseline(cfg core.Config, g *coreGraph) ([]float64, map[int][]float64, error) {
	cfg.Serve = core.ServeConfig{Enabled: true, KeepHistory: true}
	cl, err := newPageRank(cfg, g)
	if err != nil {
		return nil, nil, err
	}
	res, err := cl.Run()
	if err != nil {
		return nil, nil, err
	}
	truth := make(map[int][]float64)
	for _, e := range cl.PublishedEpochs() {
		truth[e] = cl.EpochValues(e)
	}
	return res.Values, truth, nil
}

// checkLiveAnswer validates one mid-run answer against the fault-free
// trajectory at the epoch the answer declares: the snapshot must be a
// committed superstep (never a torn one), at most PublishEvery behind the
// frontier, and its values must match the baseline's at that epoch.
func checkLiveAnswer(ans core.Answer, truth map[int][]float64, tol float64) error {
	if s := ans.Staleness(); s < 0 || s > 1 {
		return fmt.Errorf("staleness %d outside [0, 1] (epoch %d, frontier %d)",
			s, ans.Epoch, ans.Frontier)
	}
	want, ok := truth[ans.Epoch]
	if !ok {
		return fmt.Errorf("answer epoch %d was never committed by the fault-free run", ans.Epoch)
	}
	switch ans.Kind {
	case core.QueryValue:
		if int(ans.Vertex) >= len(want) {
			return fmt.Errorf("vertex %d outside baseline (%d vertices)", ans.Vertex, len(want))
		}
		if err := valueMatch(ans.Value, want[ans.Vertex], tol); err != nil {
			return fmt.Errorf("vertex %d at epoch %d: %w", ans.Vertex, ans.Epoch, err)
		}
	case core.QueryTopK:
		for i, e := range ans.TopK {
			if int(e.Vertex) >= len(want) {
				return fmt.Errorf("top-k vertex %d outside baseline (%d vertices)", e.Vertex, len(want))
			}
			if err := valueMatch(e.Value, want[e.Vertex], tol); err != nil {
				return fmt.Errorf("top-k entry %d (vertex %d) at epoch %d: %w", i, e.Vertex, ans.Epoch, err)
			}
			if i > 0 && ans.TopK[i-1].Value < e.Value-tol*(1+math.Abs(e.Value)) {
				return fmt.Errorf("top-k not descending at entry %d: %v < %v",
					i, ans.TopK[i-1].Value, e.Value)
			}
		}
	}
	return nil
}

// pickPhase draws a crash phase.
func pickPhase(r *rng.Source) core.FailPhase {
	if r.Intn(2) == 0 {
		return core.FailBeforeBarrier
	}
	return core.FailAfterBarrier
}

// sortedInts returns a sorted copy (crash node lists read nicer ordered).
func sortedInts(xs []int) []int {
	out := append([]int(nil), xs...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// valuesMatch compares a recovered run's values to the fault-free
// baseline: exact when tol is zero, else relative with criterion
// |got-want| <= tol*(1+|want|).
func valuesMatch(got, want []float64, tol float64) error {
	if len(got) != len(want) {
		return fmt.Errorf("value count %d != baseline %d", len(got), len(want))
	}
	for v := range want {
		if err := valueMatch(got[v], want[v], tol); err != nil {
			return fmt.Errorf("vertex %d: %w", v, err)
		}
	}
	return nil
}

// valueMatch compares one value against its baseline under valuesMatch's
// criterion.
func valueMatch(got, want, tol float64) error {
	if tol == 0 {
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			return fmt.Errorf("%v != baseline %v (exact)", got, want)
		}
		return nil
	}
	if math.Abs(got-want) > tol*(1+math.Abs(want)) {
		return fmt.Errorf("%v != baseline %v (tol %g)", got, want, tol)
	}
	return nil
}
