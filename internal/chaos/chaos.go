// Package chaos is the deterministic fault-schedule engine: it renders
// typed chaos schedules (core.ChaosEvent) to and from a compact one-line
// grammar, and runs seeded multi-failure campaigns whose every run is a
// pure function of (seed, round, mode) — a failing round prints a repro
// string that replays it exactly.
//
// Schedule grammar (events joined by '|'):
//
//	crash@<iter><b|a>=<n1,n2,...>        fail-stop nodes at an iteration
//	                                     boundary (b: before barrier,
//	                                     a: after barrier)
//	crashrec=<n1,...>                    fail-stop nodes when the first
//	                                     recovery phase is reached
//	crashrec@<label>=<n1,...>            ... when the recovery pass reaches
//	                                     the phase label (prefix match,
//	                                     e.g. migration:repair)
//	slow@<iter>=<from>><to>x<factor>     multiply one link's transfer cost
//	delay@<iter>=<seconds>               add seconds to each message round
//	drop@<iter>=<from>><to>x<prob>       drop each frame on a link with
//	                                     probability prob from an iteration on
//	dup@<iter>=<from>><to>x<prob>        duplicate frames on a link
//	reorder@<iter>=<from>><to>x<prob>    displace frames on a link
//	part@<iter>~<heal>=<n1,...>          cut the nodes off the network at an
//	                                     iteration, heal the cut at another
//	                                     (a heal >= MaxIter never heals)
//
// Example: "crash@3b=1|crashrec@migration:repair=4|slow@2=0>3x8|drop@1=0>2x0.3|part@2~5=1".
package chaos

import (
	"fmt"
	"strconv"
	"strings"

	"imitator/internal/core"
)

// Schedule is an ordered list of chaos events; its String form round-trips
// through Parse.
type Schedule []core.ChaosEvent

// String renders the schedule in the package grammar.
func (s Schedule) String() string { return FormatEvents(s) }

// FormatEvents renders events in the package grammar.
func FormatEvents(events []core.ChaosEvent) string {
	var parts []string
	for _, ev := range events {
		switch ev.Kind {
		case core.ChaosCrash:
			ph := "b"
			if ev.Phase == core.FailAfterBarrier {
				ph = "a"
			}
			parts = append(parts, fmt.Sprintf("crash@%d%s=%s", ev.Iteration, ph, joinNodes(ev.Nodes)))
		case core.ChaosCrashDuringRecovery:
			if ev.During == "" {
				parts = append(parts, fmt.Sprintf("crashrec=%s", joinNodes(ev.Nodes)))
			} else {
				parts = append(parts, fmt.Sprintf("crashrec@%s=%s", ev.During, joinNodes(ev.Nodes)))
			}
		case core.ChaosSlowLink:
			parts = append(parts, fmt.Sprintf("slow@%d=%d>%dx%s",
				ev.Iteration, ev.From, ev.To, formatFloat(ev.Factor)))
		case core.ChaosDelayBurst:
			parts = append(parts, fmt.Sprintf("delay@%d=%s",
				ev.Iteration, formatFloat(ev.Seconds)))
		case core.ChaosDrop, core.ChaosDuplicate, core.ChaosReorder:
			parts = append(parts, fmt.Sprintf("%s@%d=%d>%dx%s",
				omissionName(ev.Kind), ev.Iteration, ev.From, ev.To, formatFloat(ev.Prob)))
		case core.ChaosPartition:
			parts = append(parts, fmt.Sprintf("part@%d~%d=%s",
				ev.Iteration, ev.HealIter, joinNodes(ev.Nodes)))
		default:
			parts = append(parts, fmt.Sprintf("?%d", int(ev.Kind)))
		}
	}
	return strings.Join(parts, "|")
}

// ParseEvents parses a schedule in the package grammar. Errors wrap
// core.ErrInvalidSchedule; event-level semantic checks (iteration and node
// ranges against a concrete job) happen later in Config.Validate.
func ParseEvents(s string) ([]core.ChaosEvent, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var events []core.ChaosEvent
	for _, tok := range strings.Split(s, "|") {
		ev, err := parseEvent(strings.TrimSpace(tok))
		if err != nil {
			return nil, err
		}
		events = append(events, ev)
	}
	return events, nil
}

// parseEvent parses one grammar token.
func parseEvent(tok string) (core.ChaosEvent, error) {
	var ev core.ChaosEvent
	head, val, ok := strings.Cut(tok, "=")
	if !ok {
		return ev, parseErr(tok, "missing '='")
	}
	name, arg, _ := strings.Cut(head, "@")
	switch name {
	case "crash":
		ph := core.FailBeforeBarrier
		switch {
		case strings.HasSuffix(arg, "b"):
			arg = strings.TrimSuffix(arg, "b")
		case strings.HasSuffix(arg, "a"):
			ph = core.FailAfterBarrier
			arg = strings.TrimSuffix(arg, "a")
		default:
			return ev, parseErr(tok, "crash needs a phase suffix 'b' or 'a'")
		}
		iter, err := strconv.Atoi(arg)
		if err != nil {
			return ev, parseErr(tok, "bad iteration")
		}
		nodes, err := splitNodes(val)
		if err != nil {
			return ev, parseErr(tok, err.Error())
		}
		return core.ChaosEvent{Kind: core.ChaosCrash, Iteration: iter, Phase: ph, Nodes: nodes}, nil
	case "crashrec":
		nodes, err := splitNodes(val)
		if err != nil {
			return ev, parseErr(tok, err.Error())
		}
		return core.ChaosEvent{Kind: core.ChaosCrashDuringRecovery, During: arg, Nodes: nodes}, nil
	case "slow":
		iter, err := strconv.Atoi(arg)
		if err != nil {
			return ev, parseErr(tok, "bad iteration")
		}
		link, factorStr, ok := strings.Cut(val, "x")
		if !ok {
			return ev, parseErr(tok, "slow needs '<from>><to>x<factor>'")
		}
		fromStr, toStr, ok := strings.Cut(link, ">")
		if !ok {
			return ev, parseErr(tok, "slow needs '<from>><to>'")
		}
		from, err1 := strconv.Atoi(fromStr)
		to, err2 := strconv.Atoi(toStr)
		factor, err3 := strconv.ParseFloat(factorStr, 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return ev, parseErr(tok, "bad slow-link endpoints or factor")
		}
		return core.ChaosEvent{Kind: core.ChaosSlowLink, Iteration: iter, From: from, To: to, Factor: factor}, nil
	case "delay":
		iter, err := strconv.Atoi(arg)
		if err != nil {
			return ev, parseErr(tok, "bad iteration")
		}
		secs, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return ev, parseErr(tok, "bad delay seconds")
		}
		return core.ChaosEvent{Kind: core.ChaosDelayBurst, Iteration: iter, Seconds: secs}, nil
	case "drop", "dup", "reorder":
		iter, err := strconv.Atoi(arg)
		if err != nil {
			return ev, parseErr(tok, "bad iteration")
		}
		link, probStr, ok := strings.Cut(val, "x")
		if !ok {
			return ev, parseErr(tok, name+" needs '<from>><to>x<prob>'")
		}
		fromStr, toStr, ok := strings.Cut(link, ">")
		if !ok {
			return ev, parseErr(tok, name+" needs '<from>><to>'")
		}
		from, err1 := strconv.Atoi(fromStr)
		to, err2 := strconv.Atoi(toStr)
		prob, err3 := strconv.ParseFloat(probStr, 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return ev, parseErr(tok, "bad "+name+" endpoints or probability")
		}
		kind := map[string]core.ChaosKind{
			"drop": core.ChaosDrop, "dup": core.ChaosDuplicate, "reorder": core.ChaosReorder,
		}[name]
		return core.ChaosEvent{Kind: kind, Iteration: iter, From: from, To: to, Prob: prob}, nil
	case "part":
		iterStr, healStr, ok := strings.Cut(arg, "~")
		if !ok {
			return ev, parseErr(tok, "part needs '<iter>~<heal>'")
		}
		iter, err1 := strconv.Atoi(iterStr)
		heal, err2 := strconv.Atoi(healStr)
		if err1 != nil || err2 != nil {
			return ev, parseErr(tok, "bad part iterations")
		}
		nodes, err := splitNodes(val)
		if err != nil {
			return ev, parseErr(tok, err.Error())
		}
		return core.ChaosEvent{Kind: core.ChaosPartition, Iteration: iter, HealIter: heal, Nodes: nodes}, nil
	default:
		return ev, parseErr(tok, "unknown event kind")
	}
}

// omissionName maps a per-link omission kind to its grammar keyword.
func omissionName(k core.ChaosKind) string {
	switch k {
	case core.ChaosDrop:
		return "drop"
	case core.ChaosDuplicate:
		return "dup"
	default:
		return "reorder"
	}
}

// parseErr wraps a grammar complaint in the typed schedule sentinel.
func parseErr(tok, why string) error {
	return fmt.Errorf("%w: %q: %s", core.ErrInvalidSchedule, tok, why)
}

// joinNodes renders a node list as "1,4".
func joinNodes(nodes []int) string {
	parts := make([]string, len(nodes))
	for i, n := range nodes {
		parts[i] = strconv.Itoa(n)
	}
	return strings.Join(parts, ",")
}

// splitNodes parses "1,4" into a node list.
func splitNodes(s string) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("empty node list")
	}
	var nodes []int
	for _, p := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad node %q", p)
		}
		nodes = append(nodes, n)
	}
	return nodes, nil
}

// formatFloat renders a float without trailing zeros ("8", "0.25").
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
