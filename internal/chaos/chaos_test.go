package chaos

import (
	"errors"
	"flag"
	"testing"

	"imitator/internal/core"
)

var (
	campaignSeed   = flag.Uint64("seed", 1, "chaos campaign seed")
	campaignRounds = flag.Int("rounds", 50, "chaos campaign rounds per mode")
)

// TestScheduleRoundTrip: every event kind formats to the grammar and
// parses back to the same typed schedule.
func TestScheduleRoundTrip(t *testing.T) {
	sched := Schedule{
		{Kind: core.ChaosCrash, Iteration: 3, Phase: core.FailBeforeBarrier, Nodes: []int{1, 4}},
		{Kind: core.ChaosCrash, Iteration: 5, Phase: core.FailAfterBarrier, Nodes: []int{0}},
		{Kind: core.ChaosCrashDuringRecovery, Nodes: []int{2}},
		{Kind: core.ChaosCrashDuringRecovery, During: "migration:repair", Nodes: []int{3, 5}},
		{Kind: core.ChaosSlowLink, Iteration: 2, From: 0, To: 3, Factor: 8},
		{Kind: core.ChaosDelayBurst, Iteration: 4, Seconds: 0.25},
		{Kind: core.ChaosDrop, Iteration: 1, From: 0, To: 2, Prob: 0.35},
		{Kind: core.ChaosDuplicate, Iteration: 2, From: 3, To: 1, Prob: 0.5},
		{Kind: core.ChaosReorder, Iteration: 3, From: 4, To: 5, Prob: 0.125},
		{Kind: core.ChaosPartition, Iteration: 2, HealIter: 5, Nodes: []int{1, 3}},
	}
	text := sched.String()
	want := "crash@3b=1,4|crash@5a=0|crashrec=2|crashrec@migration:repair=3,5|slow@2=0>3x8|delay@4=0.25|" +
		"drop@1=0>2x0.35|dup@2=3>1x0.5|reorder@3=4>5x0.125|part@2~5=1,3"
	if text != want {
		t.Fatalf("format = %q, want %q", text, want)
	}
	back, err := ParseEvents(text)
	if err != nil {
		t.Fatal(err)
	}
	if Schedule(back).String() != text {
		t.Fatalf("round trip lost events: %q", Schedule(back).String())
	}
	if len(back) != len(sched) {
		t.Fatalf("parsed %d events, want %d", len(back), len(sched))
	}
	for i := range sched {
		if back[i].Kind != sched[i].Kind || back[i].Iteration != sched[i].Iteration ||
			back[i].During != sched[i].During || back[i].Factor != sched[i].Factor ||
			back[i].Seconds != sched[i].Seconds || back[i].Prob != sched[i].Prob ||
			back[i].HealIter != sched[i].HealIter {
			t.Fatalf("event %d: parsed %+v, want %+v", i, back[i], sched[i])
		}
	}
}

// TestParseErrors: malformed schedules report the typed sentinel.
func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"boom@3=1",          // unknown kind
		"crash@3=1",         // missing phase suffix
		"crash@xb=1",        // bad iteration
		"crash@3b=",         // empty node list
		"crash@3b=1;2",      // bad node separator
		"slow@1=0x4",        // missing '>' link
		"slow@1=0>2",        // missing factor
		"delay@1=fast",      // bad seconds
		"crash@3b",          // missing '='
		"crashrec@label=a,", // bad node
		"drop@1=0>2",        // missing probability
		"drop@1=0x0.3",      // missing '>' link
		"dup@x=0>2x0.3",     // bad iteration
		"reorder@1=0>2xq",   // bad probability
		"part@2=1",          // missing '~<heal>'
		"part@2~x=1",        // bad heal iteration
		"part@2~5=",         // empty node list
	} {
		if _, err := ParseEvents(bad); !errors.Is(err, core.ErrInvalidSchedule) {
			t.Fatalf("%q: err = %v, want ErrInvalidSchedule", bad, err)
		}
	}
}

// TestParseEmpty: an empty schedule is valid and empty.
func TestParseEmpty(t *testing.T) {
	if evs, err := ParseEvents("  "); err != nil || len(evs) != 0 {
		t.Fatalf("ParseEvents(blank) = %v, %v", evs, err)
	}
}

// TestCampaign runs the seeded multi-failure campaign in both modes and
// requires every round to converge to the fault-free values, with at least
// one mid-recovery restart and one standby-exhaustion fallback observed.
// Tune with -seed and -rounds.
func TestCampaign(t *testing.T) {
	camp := Campaign{Seed: *campaignSeed, Rounds: *campaignRounds}
	rep, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Failures {
		t.Errorf("round %d (%s): %s\n  repro: %s", f.Round, f.Mode, f.Err, f.Repro)
	}
	if rep.Failed() {
		t.FailNow()
	}
	if rep.DuringRecovery < 1 {
		t.Fatalf("campaign exercised no mid-recovery failure (runs=%d)", rep.Runs)
	}
	if rep.Exhaustion < 1 {
		t.Fatalf("campaign exercised no standby exhaustion (runs=%d)", rep.Runs)
	}
	if *campaignRounds >= numScenarios {
		if rep.Lossy < 1 {
			t.Fatalf("campaign exercised no omission faults (runs=%d)", rep.Runs)
		}
		if rep.Fenced < 1 {
			t.Fatalf("campaign fenced no healed partition (runs=%d)", rep.Runs)
		}
	}
	if rep.Queries == 0 {
		t.Fatalf("campaign answered no live queries during its rounds (runs=%d)", rep.Runs)
	}
	if *campaignRounds >= 2 {
		for _, mem := range []string{"centralized", "gossip"} {
			if rep.Memberships[mem] == 0 {
				t.Fatalf("campaign never ran the %s detector: %v", mem, rep.Memberships)
			}
		}
	}
	t.Logf("campaign: %d runs, %d during-recovery, %d exhaustion, %d lossy, %d fenced, "+
		"%d live queries (%d from replicas), memberships %v, 0 failures",
		rep.Runs, rep.DuringRecovery, rep.Exhaustion, rep.Lossy, rep.Fenced,
		rep.Queries, rep.ReplicaReads, rep.Memberships)
}

// TestCampaignStrategyMatrix: one full cycle of scenarios x FT strategies,
// in both modes. Every crash scenario must have run under all four
// strategies, and every round converged bit-for-bit (tol only for
// vertex-cut migrations) — this is the four-strategy chaos matrix.
func TestCampaignStrategyMatrix(t *testing.T) {
	camp := Campaign{Seed: *campaignSeed, Rounds: numScenarios * len(campaignStrategies)}
	rep, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Failures {
		t.Errorf("round %d (%s): %s\n  repro: %s", f.Round, f.Mode, f.Err, f.Repro)
	}
	if rep.Failed() {
		t.FailNow()
	}
	for _, kind := range campaignStrategies {
		if rep.Strategies[kind.String()] == 0 {
			t.Errorf("campaign never ran the %s strategy: %v", kind, rep.Strategies)
		}
	}
	t.Logf("strategy matrix: %v over %d runs", rep.Strategies, rep.Runs)
}

// TestReplay: a repro line replays a specific round deterministically.
func TestReplay(t *testing.T) {
	camp := Campaign{Seed: *campaignSeed}
	if err := camp.Replay("chaos seed=1 round=4 mode=vertex-cut sched=whatever"); err != nil {
		t.Fatalf("replay of a passing round failed: %v", err)
	}
	// Odd round: the mem=gossip token is informational — Replay re-derives
	// the detector from the round number, and unknown tokens are ignored.
	if err := camp.Replay("chaos seed=1 round=3 mode=edge-cut ft=rebirth mem=gossip sched=whatever"); err != nil {
		t.Fatalf("replay of a gossip-mode round failed: %v", err)
	}
	if err := camp.Replay("chaos seed=1"); !errors.Is(err, core.ErrInvalidSchedule) {
		t.Fatalf("partial repro: err = %v, want ErrInvalidSchedule", err)
	}
	if err := camp.Replay("chaos seed=1 round=0 mode=ring"); !errors.Is(err, core.ErrInvalidSchedule) {
		t.Fatalf("bad mode: err = %v, want ErrInvalidSchedule", err)
	}
}
