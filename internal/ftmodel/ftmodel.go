// Package ftmodel implements the first-order checkpoint-interval analysis
// of Young [CACM'74] that the paper uses in §6.11 (and footnote 2) to
// compare the theoretical efficiency of checkpoint-based and
// replication-based fault tolerance.
package ftmodel

import (
	"fmt"
	"math"
)

// Scenario describes one fault-tolerance scheme under analysis.
type Scenario struct {
	// CostPerInterval is the overhead paid once per interval, in seconds:
	// one checkpoint for CKPT, or one interval's worth of replication sync
	// overhead for REP.
	CostPerInterval float64
	// MTBF is the cluster's mean time between failures, in seconds. The
	// paper assumes 7.3 days for a 50-node cluster [GraphLab].
	MTBF float64
	// RecoverySeconds is the expected time to recover one failure.
	RecoverySeconds float64
}

// Validate reports nonsensical parameters.
func (s Scenario) Validate() error {
	if s.CostPerInterval <= 0 || s.MTBF <= 0 || s.RecoverySeconds < 0 {
		return fmt.Errorf("ftmodel: invalid scenario %+v", s)
	}
	return nil
}

// OptimalInterval returns Young's first-order optimum sqrt(2 * C * MTBF).
func (s Scenario) OptimalInterval() float64 {
	return math.Sqrt(2 * s.CostPerInterval * s.MTBF)
}

// Efficiency returns the fraction of time spent on useful work when
// checkpointing every interval seconds: 1 / (1 + C/T + T/(2*MTBF) + R/MTBF).
// The three waste terms are the periodic overhead, the expected lost work
// per failure (half an interval), and the recovery time amortized over the
// MTBF.
func (s Scenario) Efficiency(interval float64) float64 {
	waste := s.CostPerInterval/interval + interval/(2*s.MTBF) + s.RecoverySeconds/s.MTBF
	return 1 / (1 + waste)
}

// OptimalEfficiency evaluates Efficiency at the optimal interval.
func (s Scenario) OptimalEfficiency() float64 {
	return s.Efficiency(s.OptimalInterval())
}

// MTBFForCluster scales a single-machine MTBF to an n-machine cluster
// (failures are independent, so the cluster MTBF divides by n).
func MTBFForCluster(singleMachineMTBF float64, n int) float64 {
	if n < 1 {
		return singleMachineMTBF
	}
	return singleMachineMTBF / float64(n)
}

// PaperMTBF is the 50-node cluster MTBF the paper assumes: about 7.3 days.
const PaperMTBF = 7.3 * 24 * 3600

// Comparison reproduces the §6.11 analysis for a pair of schemes.
type Comparison struct {
	CkptInterval, RepInterval     float64
	CkptEfficiency, RepEfficiency float64
}

// Compare evaluates both schemes at their optimal intervals.
func Compare(ckpt, rep Scenario) (Comparison, error) {
	if err := ckpt.Validate(); err != nil {
		return Comparison{}, err
	}
	if err := rep.Validate(); err != nil {
		return Comparison{}, err
	}
	return Comparison{
		CkptInterval:   ckpt.OptimalInterval(),
		RepInterval:    rep.OptimalInterval(),
		CkptEfficiency: ckpt.OptimalEfficiency(),
		RepEfficiency:  rep.OptimalEfficiency(),
	}, nil
}
