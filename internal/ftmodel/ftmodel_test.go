package ftmodel

import (
	"math"
	"testing"
)

func TestPaperNumbers(t *testing.T) {
	// §6.11: CKPT cost 75.63 s, REP cost 0.31 s, MTBF 7.3 days. The paper
	// reports optimal intervals 9,768 s and 623 s, and efficiencies 98.44%
	// and 99.90%.
	ckpt := Scenario{CostPerInterval: 75.63, MTBF: PaperMTBF, RecoverySeconds: 183.7}
	rep := Scenario{CostPerInterval: 0.31, MTBF: PaperMTBF, RecoverySeconds: 33.4}
	cmp, err := Compare(ckpt, rep)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cmp.CkptInterval-9768) > 20 {
		t.Errorf("ckpt interval = %.0f, paper says 9768", cmp.CkptInterval)
	}
	if math.Abs(cmp.RepInterval-623) > 5 {
		t.Errorf("rep interval = %.0f, paper says 623", cmp.RepInterval)
	}
	if math.Abs(cmp.CkptEfficiency-0.9844) > 0.002 {
		t.Errorf("ckpt efficiency = %.4f, paper says 0.9844", cmp.CkptEfficiency)
	}
	if math.Abs(cmp.RepEfficiency-0.9990) > 0.001 {
		t.Errorf("rep efficiency = %.4f, paper says 0.9990", cmp.RepEfficiency)
	}
	if cmp.RepEfficiency <= cmp.CkptEfficiency {
		t.Error("replication should dominate checkpointing")
	}
}

func TestOptimalIntervalIsOptimal(t *testing.T) {
	s := Scenario{CostPerInterval: 10, MTBF: 100000, RecoverySeconds: 50}
	opt := s.OptimalInterval()
	best := s.Efficiency(opt)
	for _, f := range []float64{0.5, 0.8, 1.25, 2} {
		if e := s.Efficiency(opt * f); e > best+1e-12 {
			t.Errorf("interval %.0f beats the 'optimal' %.0f: %v > %v", opt*f, opt, e, best)
		}
	}
}

func TestEfficiencyMonotoneInCost(t *testing.T) {
	cheap := Scenario{CostPerInterval: 1, MTBF: 1e5, RecoverySeconds: 10}
	costly := Scenario{CostPerInterval: 100, MTBF: 1e5, RecoverySeconds: 10}
	if cheap.OptimalEfficiency() <= costly.OptimalEfficiency() {
		t.Error("cheaper per-interval cost should yield higher efficiency")
	}
}

func TestMTBFForCluster(t *testing.T) {
	if got := MTBFForCluster(100, 50); got != 2 {
		t.Errorf("MTBFForCluster = %v, want 2", got)
	}
	if got := MTBFForCluster(100, 0); got != 100 {
		t.Errorf("degenerate cluster size should keep MTBF, got %v", got)
	}
}

func TestValidate(t *testing.T) {
	if (Scenario{CostPerInterval: 0, MTBF: 1}).Validate() == nil {
		t.Error("zero cost accepted")
	}
	if (Scenario{CostPerInterval: 1, MTBF: 0}).Validate() == nil {
		t.Error("zero MTBF accepted")
	}
	if _, err := Compare(Scenario{}, Scenario{CostPerInterval: 1, MTBF: 1}); err == nil {
		t.Error("Compare accepted invalid scenario")
	}
}
