package trace

import (
	"strings"
	"testing"

	"imitator/internal/core"
)

func sampleEvents() []core.TraceEvent {
	return []core.TraceEvent{
		{Iter: 0, Kind: "iteration", Start: 0, End: 1},
		{Iter: 1, Kind: "iteration", Start: 1, End: 2},
		{Iter: 2, Kind: "checkpoint", Start: 2, End: 2.5},
		{Iter: 2, Kind: "recovery", Start: 2.5, End: 4},
		{Iter: 2, Kind: "iteration", Start: 4, End: 5},
	}
}

func TestRenderMarksKinds(t *testing.T) {
	var sb strings.Builder
	Render(&sb, sampleEvents(), Options{Width: 50})
	out := sb.String()
	if !strings.Contains(out, "C") || !strings.Contains(out, "R") || !strings.Contains(out, "#") {
		t.Errorf("missing kind markers:\n%s", out)
	}
	if !strings.Contains(out, "total") {
		t.Error("missing total line")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != len(sampleEvents())+1 {
		t.Errorf("got %d lines, want %d", len(lines), len(sampleEvents())+1)
	}
}

func TestRenderEmpty(t *testing.T) {
	var sb strings.Builder
	Render(&sb, nil, Options{})
	if !strings.Contains(sb.String(), "no events") {
		t.Error("empty trace should say so")
	}
}

func TestRenderCoalescesLongRuns(t *testing.T) {
	var events []core.TraceEvent
	for i := 0; i < 100; i++ {
		events = append(events, core.TraceEvent{
			Iter: i, Kind: "iteration", Start: float64(i), End: float64(i + 1),
		})
	}
	events = append(events, core.TraceEvent{Iter: 100, Kind: "recovery", Start: 100, End: 105})
	var sb strings.Builder
	Render(&sb, events, Options{Width: 40})
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) > 5 {
		t.Errorf("coalescing failed: %d lines", len(lines))
	}
}

func TestSummary(t *testing.T) {
	s := Summary(sampleEvents())
	for _, want := range []string{"iteration x3", "checkpoint x1", "recovery x1"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
	if Summary(nil) != "empty trace" {
		t.Error("empty summary")
	}
}
