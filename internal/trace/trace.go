// Package trace renders execution timelines (the Fig 12 case-study view):
// per-iteration bars on the simulated-time axis, with checkpoints and
// recoveries highlighted.
package trace

import (
	"fmt"
	"io"
	"strings"

	"imitator/internal/core"
)

// Options controls rendering.
type Options struct {
	// Width is the bar area width in characters (default 60).
	Width int
	// MinLabelEvery suppresses per-event rows beyond this many events by
	// aggregating consecutive same-kind iterations (default 40).
	MinLabelEvery int
}

// Render writes an ASCII Gantt of the events.
func Render(w io.Writer, events []core.TraceEvent, opts Options) {
	if len(events) == 0 {
		fmt.Fprintln(w, "(no events)")
		return
	}
	if opts.Width <= 0 {
		opts.Width = 60
	}
	if opts.MinLabelEvery <= 0 {
		opts.MinLabelEvery = 40
	}
	end := events[len(events)-1].End
	if end <= 0 {
		end = 1
	}
	scale := float64(opts.Width) / end

	rows := events
	if len(rows) > opts.MinLabelEvery {
		rows = coalesce(rows)
	}
	for _, ev := range rows {
		startCol := int(ev.Start * scale)
		length := int(ev.Duration()*scale + 0.5)
		if length < 1 {
			length = 1
		}
		if startCol+length > opts.Width {
			length = opts.Width - startCol
			if length < 1 {
				length = 1
			}
		}
		mark := byte('#')
		switch ev.Kind {
		case "checkpoint":
			mark = 'C'
		case "recovery":
			mark = 'R'
		}
		bar := strings.Repeat(" ", startCol) + strings.Repeat(string(mark), length)
		fmt.Fprintf(w, "%9.3fs  %-10s %4s  |%s\n", ev.Start, ev.Kind, iterLabel(ev), bar)
	}
	fmt.Fprintf(w, "%9.3fs  total\n", end)
}

func iterLabel(ev core.TraceEvent) string {
	return fmt.Sprintf("%d", ev.Iter)
}

// coalesce merges runs of consecutive same-kind events into one row.
func coalesce(events []core.TraceEvent) []core.TraceEvent {
	var out []core.TraceEvent
	for _, ev := range events {
		if n := len(out); n > 0 && out[n-1].Kind == ev.Kind && ev.Kind == "iteration" {
			out[n-1].End = ev.End
			continue
		}
		out = append(out, ev)
	}
	return out
}

// Summary returns a one-line digest: counts and time share per kind.
func Summary(events []core.TraceEvent) string {
	if len(events) == 0 {
		return "empty trace"
	}
	total := events[len(events)-1].End
	type agg struct {
		n   int
		sec float64
	}
	byKind := map[string]*agg{}
	order := []string{}
	for _, ev := range events {
		a, ok := byKind[ev.Kind]
		if !ok {
			a = &agg{}
			byKind[ev.Kind] = a
			order = append(order, ev.Kind)
		}
		a.n++
		a.sec += ev.Duration()
	}
	parts := make([]string, 0, len(order))
	for _, k := range order {
		a := byKind[k]
		share := 0.0
		if total > 0 {
			share = 100 * a.sec / total
		}
		parts = append(parts, fmt.Sprintf("%s x%d %.3fs (%.1f%%)", k, a.n, a.sec, share))
	}
	return strings.Join(parts, ", ")
}
