package core_test

import (
	"errors"
	"math"
	"testing"

	"imitator/internal/algorithms"
	"imitator/internal/core"
	"imitator/internal/datasets"
	"imitator/internal/graph"
)

// ftConfig builds a config with FT enabled and the given recovery strategy.
func ftConfig(mode core.Mode, numNodes, iters, k int, recovery core.RecoveryKind) core.Config {
	cfg := core.DefaultConfig(mode, numNodes)
	cfg.MaxIter = iters
	cfg.FT.K = k
	cfg.Recovery = recovery
	cfg.MaxRebirths = 8
	if recovery == core.RecoverCheckpoint {
		cfg.FT = core.FTConfig{}
		cfg.Checkpoint = core.CheckpointConfig{Enabled: true, Interval: 2}
	}
	return cfg
}

func failAt(iter int, phase core.FailPhase, nodes ...int) []core.FailureSpec {
	return []core.FailureSpec{{Iteration: iter, Phase: phase, Nodes: nodes}}
}

// valuesEqual compares float64 value vectors, exactly or with relative
// tolerance.
func valuesEqual(t *testing.T, label string, got, want []float64, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", label, len(got), len(want))
	}
	for v := range want {
		if tol == 0 {
			if got[v] != want[v] && !(math.IsInf(got[v], 1) && math.IsInf(want[v], 1)) {
				t.Fatalf("%s: vertex %d: %v != %v", label, v, got[v], want[v])
			}
			continue
		}
		if math.IsInf(want[v], 1) {
			if !math.IsInf(got[v], 1) {
				t.Fatalf("%s: vertex %d: %v != +Inf", label, v, got[v])
			}
			continue
		}
		if math.Abs(got[v]-want[v]) > tol*(1+math.Abs(want[v])) {
			t.Fatalf("%s: vertex %d: %v != %v (tol %g)", label, v, got[v], want[v], tol)
		}
	}
}

func runPR(t *testing.T, cfg core.Config, g *graph.Graph) *core.Result[float64] {
	t.Helper()
	cl, err := core.NewCluster[float64, float64](cfg, g, algorithms.NewPageRank(g.NumVertices()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func runSP(t *testing.T, cfg core.Config, g *graph.Graph) *core.Result[float64] {
	t.Helper()
	cl, err := core.NewCluster[float64, float64](cfg, g, algorithms.NewSSSP(3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRecoveryEquivalence is the paper's core claim: a failure plus
// recovery yields the same answer as a failure-free run, for every engine
// mode x recovery strategy x algorithm style.
func TestRecoveryEquivalence(t *testing.T) {
	g := datasets.Tiny(600, 3600, 77)
	cases := []struct {
		name     string
		mode     core.Mode
		recovery core.RecoveryKind
		tol      float64 // 0 = exact
	}{
		{"edgecut/rebirth", core.EdgeCutMode, core.RecoverRebirth, 0},
		{"edgecut/migration", core.EdgeCutMode, core.RecoverMigration, 0},
		{"edgecut/checkpoint", core.EdgeCutMode, core.RecoverCheckpoint, 0},
		{"vertexcut/rebirth", core.VertexCutMode, core.RecoverRebirth, 0},
		{"vertexcut/migration", core.VertexCutMode, core.RecoverMigration, 1e-9},
		{"vertexcut/checkpoint", core.VertexCutMode, core.RecoverCheckpoint, 0},
	}
	for _, tc := range cases {
		tc := tc
		t.Run("pagerank/"+tc.name, func(t *testing.T) {
			base := ftConfig(tc.mode, 6, 8, 1, tc.recovery)
			want := runPR(t, base, g)
			withFail := base
			withFail.Failures = failAt(4, core.FailBeforeBarrier, 2)
			got := runPR(t, withFail, g)
			valuesEqual(t, tc.name, got.Values, want.Values, tc.tol)
			if len(got.Recoveries) != 1 {
				t.Fatalf("expected 1 recovery, got %d", len(got.Recoveries))
			}
			r := got.Recoveries[0]
			if tc.recovery != core.RecoverCheckpoint && r.RecoveredVertices == 0 {
				t.Error("no vertices recovered")
			}
			if r.TotalSeconds() <= 0 {
				t.Error("recovery accounted no simulated time")
			}
		})
		t.Run("sssp/"+tc.name, func(t *testing.T) {
			base := ftConfig(tc.mode, 6, 40, 1, tc.recovery)
			want := runSP(t, base, g)
			withFail := base
			withFail.Failures = failAt(3, core.FailBeforeBarrier, 1)
			got := runSP(t, withFail, g)
			valuesEqual(t, tc.name, got.Values, want.Values, 0) // min-folds are exact
		})
	}
}

func TestRecoveryEquivalenceCD(t *testing.T) {
	g, err := datasets.Load("dblp")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name     string
		mode     core.Mode
		recovery core.RecoveryKind
	}{
		{"edgecut/rebirth", core.EdgeCutMode, core.RecoverRebirth},
		{"edgecut/migration", core.EdgeCutMode, core.RecoverMigration},
		{"vertexcut/rebirth", core.VertexCutMode, core.RecoverRebirth},
		{"vertexcut/migration", core.VertexCutMode, core.RecoverMigration},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			run := func(cfg core.Config) []int32 {
				cl, err := core.NewCluster[int32, []core.LabelCount](cfg, g, algorithms.NewCD())
				if err != nil {
					t.Fatal(err)
				}
				res, err := cl.Run()
				if err != nil {
					t.Fatal(err)
				}
				return res.Values
			}
			base := ftConfig(tc.mode, 5, 10, 1, tc.recovery)
			want := run(base)
			withFail := base
			withFail.Failures = failAt(3, core.FailBeforeBarrier, 2)
			got := run(withFail)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("vertex %d label %d != %d", v, got[v], want[v])
				}
			}
		})
	}
}

func TestRecoveryEquivalenceALS(t *testing.T) {
	g, err := datasets.Load("syn-gl")
	if err != nil {
		t.Fatal(err)
	}
	prog := algorithms.NewALS(7000, 4, 0.05)
	run := func(cfg core.Config) [][]float64 {
		cl, err := core.NewCluster[[]float64, []float64](cfg, g, prog)
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Values
	}
	for _, tc := range []struct {
		name     string
		mode     core.Mode
		recovery core.RecoveryKind
		tol      float64
	}{
		{"edgecut/rebirth", core.EdgeCutMode, core.RecoverRebirth, 0},
		{"edgecut/migration", core.EdgeCutMode, core.RecoverMigration, 0},
		{"vertexcut/migration", core.VertexCutMode, core.RecoverMigration, 1e-6},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			base := ftConfig(tc.mode, 4, 6, 1, tc.recovery)
			want := run(base)
			withFail := base
			withFail.Failures = failAt(2, core.FailBeforeBarrier, 0)
			got := run(withFail)
			for v := range want {
				for i := range want[v] {
					diff := math.Abs(got[v][i] - want[v][i])
					if diff > tc.tol*(1+math.Abs(want[v][i])) {
						t.Fatalf("vertex %d factor %d: %v != %v", v, i, got[v][i], want[v][i])
					}
				}
			}
		})
	}
}

func TestFailureAfterBarrier(t *testing.T) {
	g := datasets.Tiny(500, 3000, 78)
	for _, rec := range []core.RecoveryKind{core.RecoverRebirth, core.RecoverMigration} {
		base := ftConfig(core.EdgeCutMode, 5, 8, 1, rec)
		want := runPR(t, base, g)
		withFail := base
		withFail.Failures = failAt(4, core.FailAfterBarrier, 3)
		got := runPR(t, withFail, g)
		valuesEqual(t, rec.String(), got.Values, want.Values, 0)
	}
}

func TestFailureAtIterationZero(t *testing.T) {
	g := datasets.Tiny(400, 2400, 79)
	for _, rec := range []core.RecoveryKind{core.RecoverRebirth, core.RecoverMigration} {
		base := ftConfig(core.VertexCutMode, 4, 6, 1, rec)
		want := runSP(t, base, g)
		withFail := base
		withFail.Failures = failAt(0, core.FailBeforeBarrier, 2)
		got := runSP(t, withFail, g)
		valuesEqual(t, rec.String(), got.Values, want.Values, 0)
	}
}

func TestMultipleSimultaneousFailures(t *testing.T) {
	g := datasets.Tiny(800, 4800, 80)
	for _, tc := range []struct {
		mode core.Mode
		rec  core.RecoveryKind
		tol  float64
	}{
		{core.EdgeCutMode, core.RecoverRebirth, 0},
		{core.EdgeCutMode, core.RecoverMigration, 0},
		{core.VertexCutMode, core.RecoverRebirth, 0},
		{core.VertexCutMode, core.RecoverMigration, 1e-9},
	} {
		base := ftConfig(tc.mode, 8, 8, 3, tc.rec)
		want := runPR(t, base, g)
		withFail := base
		withFail.Failures = failAt(4, core.FailBeforeBarrier, 1, 4, 6)
		got := runPR(t, withFail, g)
		valuesEqual(t, tc.mode.String()+"/"+tc.rec.String(), got.Values, want.Values, tc.tol)
	}
}

func TestSequentialFailures(t *testing.T) {
	// Two failures at different iterations: the second recovery relies on
	// the FT invariants re-established by the first (Migration's repair).
	g := datasets.Tiny(700, 4200, 81)
	for _, tc := range []struct {
		mode core.Mode
		rec  core.RecoveryKind
		tol  float64
	}{
		{core.EdgeCutMode, core.RecoverRebirth, 0},
		{core.EdgeCutMode, core.RecoverMigration, 0},
		{core.VertexCutMode, core.RecoverMigration, 1e-9},
	} {
		base := ftConfig(tc.mode, 6, 10, 1, tc.rec)
		want := runPR(t, base, g)
		withFail := base
		withFail.Failures = []core.FailureSpec{
			{Iteration: 3, Phase: core.FailBeforeBarrier, Nodes: []int{1}},
			{Iteration: 7, Phase: core.FailBeforeBarrier, Nodes: []int{4}},
		}
		got := runPR(t, withFail, g)
		valuesEqual(t, tc.mode.String()+"/"+tc.rec.String(), got.Values, want.Values, tc.tol)
		if len(got.Recoveries) != 2 {
			t.Fatalf("expected 2 recoveries, got %d", len(got.Recoveries))
		}
	}
}

func TestUnrecoverableBeyondK(t *testing.T) {
	g := datasets.Tiny(800, 4800, 82)
	cfg := ftConfig(core.EdgeCutMode, 6, 6, 1, core.RecoverRebirth)
	cfg.Failures = failAt(3, core.FailBeforeBarrier, 1, 2) // two failures, K=1
	cl, err := core.NewCluster[float64, float64](cfg, g, algorithms.NewPageRank(g.NumVertices()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Run(); !errors.Is(err, core.ErrUnrecoverable) {
		t.Fatalf("err = %v, want ErrUnrecoverable", err)
	}
}

func TestStandbyExhaustion(t *testing.T) {
	g := datasets.Tiny(300, 1800, 83)
	cfg := ftConfig(core.EdgeCutMode, 4, 6, 1, core.RecoverRebirth)
	cfg.MaxRebirths = 0
	cfg.Failures = failAt(2, core.FailBeforeBarrier, 1)
	cl, err := core.NewCluster[float64, float64](cfg, g, algorithms.NewPageRank(g.NumVertices()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Run(); !errors.Is(err, core.ErrUnrecoverable) {
		t.Fatalf("err = %v, want ErrUnrecoverable", err)
	}
}

func TestFailureDuringRecovery(t *testing.T) {
	// A second node dies while the first recovery is in flight; the
	// procedure restarts with the union (§5.3.2).
	g := datasets.Tiny(700, 4200, 84)
	base := ftConfig(core.EdgeCutMode, 6, 8, 2, core.RecoverRebirth)
	want := runPR(t, base, g)

	cfg := base
	cfg.Failures = failAt(3, core.FailBeforeBarrier, 1)
	cl, err := core.NewCluster[float64, float64](cfg, g, algorithms.NewPageRank(g.NumVertices()))
	if err != nil {
		t.Fatal(err)
	}
	injected := false
	cl.SetRecoveryHook(func(phase string) {
		if phase == "rebirth:reload" && !injected {
			injected = true
			cl.InjectFailure(4)
		}
	})
	res, err := cl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !injected {
		t.Fatal("hook never fired")
	}
	valuesEqual(t, "during-recovery", res.Values, want.Values, 0)
}

func TestCheckpointRecoveryReplays(t *testing.T) {
	g := datasets.Tiny(500, 3000, 85)
	cfg := ftConfig(core.EdgeCutMode, 5, 9, 1, core.RecoverCheckpoint)
	cfg.Checkpoint.Interval = 3
	cfg.Failures = failAt(7, core.FailBeforeBarrier, 2)
	got := runPR(t, cfg, g)
	if len(got.Recoveries) != 1 {
		t.Fatalf("recoveries = %d", len(got.Recoveries))
	}
	r := got.Recoveries[0]
	// Failure at iter 7, last snapshot at 6: one lost iteration replayed.
	if r.ReplayIters != 1 {
		t.Errorf("ReplayIters = %d, want 1", r.ReplayIters)
	}
	if r.ReplaySeconds <= 0 {
		t.Error("replay time not accounted")
	}
	base := cfg
	base.Failures = nil
	want := runPR(t, base, g)
	valuesEqual(t, "ckpt", got.Values, want.Values, 0)
}

func TestCheckpointOverheadAccounting(t *testing.T) {
	g := datasets.Tiny(500, 3000, 86)
	plain := runPR(t, baseConfig(core.EdgeCutMode, 5, 8), g)
	cfg := baseConfig(core.EdgeCutMode, 5, 8)
	cfg.Checkpoint = core.CheckpointConfig{Enabled: true, Interval: 1}
	ck := runPR(t, cfg, g)
	if ck.CheckpointCount != 8 {
		t.Errorf("CheckpointCount = %d, want 8", ck.CheckpointCount)
	}
	if ck.CheckpointSeconds <= 0 {
		t.Error("checkpoint time not accounted")
	}
	if ck.SimSeconds <= plain.SimSeconds {
		t.Error("checkpointing should cost simulated time")
	}
	// In-memory HDFS should be cheaper than disk (Fig 7).
	cfgMem := cfg
	cfgMem.Checkpoint.InMemory = true
	mem := runPR(t, cfgMem, g)
	if mem.CheckpointSeconds >= ck.CheckpointSeconds {
		t.Errorf("in-memory checkpoint %.4fs not below disk %.4fs",
			mem.CheckpointSeconds, ck.CheckpointSeconds)
	}
}

func TestRebirthVsMigrationRecoveredCounts(t *testing.T) {
	g := datasets.Tiny(600, 3600, 87)
	cfg := ftConfig(core.EdgeCutMode, 6, 8, 1, core.RecoverRebirth)
	cfg.Failures = failAt(4, core.FailBeforeBarrier, 2)
	reb := runPR(t, cfg, g)
	cfgM := ftConfig(core.EdgeCutMode, 6, 8, 1, core.RecoverMigration)
	cfgM.Failures = failAt(4, core.FailBeforeBarrier, 2)
	mig := runPR(t, cfgM, g)
	// Rebirth recovers every entry of the lost node; migration only
	// promotes masters and creates the replicas it is missing.
	if reb.Recoveries[0].RecoveredVertices <= mig.Recoveries[0].RecoveredVertices {
		t.Errorf("rebirth recovered %d <= migration's %d",
			reb.Recoveries[0].RecoveredVertices, mig.Recoveries[0].RecoveredVertices)
	}
}

func TestSelfishOptimizationReducesMessages(t *testing.T) {
	// A graph with many selfish vertices: FT sync traffic must drop when
	// the optimization is on (Fig 8b).
	g, err := datasets.Load("gweb")
	if err != nil {
		t.Fatal(err)
	}
	run := func(opt bool) *core.Result[float64] {
		cfg := core.DefaultConfig(core.EdgeCutMode, 6)
		cfg.MaxIter = 4
		cfg.FT.SelfishOpt = opt
		return runPR(t, cfg, g)
	}
	with := run(true)
	without := run(false)
	if with.Metrics.FTMsgs >= without.Metrics.FTMsgs {
		t.Errorf("selfish opt did not reduce FT messages: %d vs %d",
			with.Metrics.FTMsgs, without.Metrics.FTMsgs)
	}
	// And results must agree exactly despite skipped syncs.
	valuesEqual(t, "selfish", with.Values, without.Values, 0)
}

func TestSelfishOptEquivalenceUnderFailure(t *testing.T) {
	g, err := datasets.Load("gweb")
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range []core.RecoveryKind{core.RecoverRebirth, core.RecoverMigration} {
		base := core.DefaultConfig(core.EdgeCutMode, 6)
		base.MaxIter = 7
		base.Recovery = rec
		want := runPR(t, base, g)
		withFail := base
		withFail.Failures = failAt(3, core.FailBeforeBarrier, 2)
		got := runPR(t, withFail, g)
		valuesEqual(t, "selfish/"+rec.String(), got.Values, want.Values, 0)
	}
}
