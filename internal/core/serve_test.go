package core_test

import (
	"errors"
	"math"
	"sort"
	"sync"
	"testing"

	"imitator/internal/algorithms"
	"imitator/internal/core"
	"imitator/internal/datasets"
	"imitator/internal/graph"
	"imitator/internal/rng"
)

// serveTruth runs the same workload fault-free with history retention and
// returns the published per-epoch value trajectory: the ground truth every
// epoch-stamped answer must match.
func serveTruth(t *testing.T, mode core.Mode, g *graph.Graph, iters int) map[int][]float64 {
	t.Helper()
	cfg := ftConfig(mode, 6, iters, 2, core.RecoverRebirth)
	cfg.Serve = core.ServeConfig{Enabled: true, KeepHistory: true}
	cl, err := core.NewCluster[float64, float64](cfg, g, algorithms.NewPageRank(g.NumVertices()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	truth := map[int][]float64{}
	for _, e := range cl.PublishedEpochs() {
		truth[e] = cl.EpochValues(e)
	}
	return truth
}

// checkAnswer validates one answer against the fault-free trajectory at its
// declared epoch: matching any single epoch exactly is what rules out a
// torn superstep (a read mixing two epochs' values matches neither).
func checkAnswer(ans core.Answer, truth map[int][]float64, tol float64) error {
	if ans.Staleness() < 0 {
		return errors.New("negative staleness")
	}
	vals, ok := truth[ans.Epoch]
	if !ok {
		return errors.New("answer stamped with an unpublished epoch")
	}
	switch ans.Kind {
	case core.QueryValue:
		want := vals[ans.Vertex]
		if tol == 0 {
			if ans.Value != want {
				return errors.New("value does not match ground truth at the declared epoch")
			}
		} else if math.Abs(ans.Value-want) > tol*(1+math.Abs(want)) {
			return errors.New("value outside tolerance of ground truth at the declared epoch")
		}
	case core.QueryTopK:
		for i := 1; i < len(ans.TopK); i++ {
			a, b := ans.TopK[i-1], ans.TopK[i]
			if a.Value < b.Value || (a.Value == b.Value && a.Vertex > b.Vertex) {
				return errors.New("topk not ordered")
			}
		}
		for _, e := range ans.TopK {
			want := vals[e.Vertex]
			if tol == 0 {
				if e.Value != want {
					return errors.New("topk value does not match ground truth at the declared epoch")
				}
			} else if math.Abs(e.Value-want) > tol*(1+math.Abs(want)) {
				return errors.New("topk value outside tolerance")
			}
		}
	}
	return nil
}

// TestServeEpochConsistentDuringFailover is the serving layer's core
// contract: queries hammered concurrently with a failing run — including
// the recovery windows — always observe a superstep-complete, epoch-stamped
// snapshot matching the fault-free trajectory, with staleness bounded by
// one publish interval, in both modes and under all four FT strategies.
func TestServeEpochConsistentDuringFailover(t *testing.T) {
	const iters = 8
	strategies := []struct {
		name string
		rec  core.RecoveryKind
	}{
		{"rebirth", core.RecoverRebirth},
		{"migration", core.RecoverMigration},
		{"checkpoint", core.RecoverCheckpoint},
		{"logged", core.RecoverLogged},
	}
	for _, mode := range []core.Mode{core.EdgeCutMode, core.VertexCutMode} {
		g := datasets.Tiny(400, 2400, 77)
		truth := serveTruth(t, mode, g, iters)
		for _, st := range strategies {
			t.Run(mode.String()+"/"+st.name, func(t *testing.T) {
				cfg := ftConfig(mode, 6, iters, 2, st.rec)
				if st.rec == core.RecoverLogged {
					cfg.Logged = core.LoggedConfig{Enabled: true, CompactEvery: 3}
				}
				cfg.Serve = core.ServeConfig{Enabled: true}
				cfg.Failures = failAt(3, core.FailBeforeBarrier, 1)
				tol := 0.0
				if mode == core.VertexCutMode && st.rec == core.RecoverMigration {
					tol = 1e-9 // migration reorders vcut gather partials
				}
				cl, err := core.NewCluster[float64, float64](cfg, g, algorithms.NewPageRank(g.NumVertices()))
				if err != nil {
					t.Fatal(err)
				}

				stop := make(chan struct{})
				var wg sync.WaitGroup
				var mu sync.Mutex
				var qerr error
				answered, unavailable := 0, 0
				hammer := func(seed uint64) {
					defer wg.Done()
					r := rng.New(seed)
					lastEpoch := -1
					for {
						select {
						case <-stop:
							return
						default:
						}
						var q core.Query
						switch r.Intn(3) {
						case 0, 1:
							q = core.Query{Kind: core.QueryValue, Vertex: graph.VertexID(r.Intn(g.NumVertices()))}
						default:
							q = core.Query{Kind: core.QueryTopK, K: 1 + r.Intn(8)}
						}
						ans, err := cl.Query(q)
						if err != nil {
							if errors.Is(err, core.ErrVertexUnavailable) {
								mu.Lock()
								unavailable++
								mu.Unlock()
								continue
							}
							mu.Lock()
							if qerr == nil {
								qerr = err
							}
							mu.Unlock()
							return
						}
						verr := checkAnswer(ans, truth, tol)
						if verr == nil && ans.Staleness() > 1 {
							verr = errors.New("staleness above one publish interval")
						}
						if verr == nil && ans.Epoch < lastEpoch {
							verr = errors.New("served epoch went backwards")
						}
						lastEpoch = ans.Epoch
						if verr != nil {
							mu.Lock()
							if qerr == nil {
								qerr = verr
							}
							mu.Unlock()
							return
						}
						mu.Lock()
						answered++
						mu.Unlock()
					}
				}
				wg.Add(2)
				go hammer(101)
				go hammer(202)

				res, err := cl.Run()
				close(stop)
				wg.Wait()
				if err != nil {
					t.Fatal(err)
				}
				if qerr != nil {
					t.Fatalf("concurrent query failed: %v", qerr)
				}
				if answered == 0 {
					t.Fatal("hammer answered no queries")
				}
				valuesEqual(t, "final values", res.Values, truth[iters], tol)
				if res.Serve == nil || res.Serve.Queries == 0 {
					t.Fatal("Result.Serve missing or empty")
				}
				// Converged cluster serves with zero staleness.
				ans, err := cl.Query(core.Query{Kind: core.QueryValue, Vertex: 0})
				if err != nil {
					t.Fatal(err)
				}
				if ans.Epoch != iters || ans.Staleness() != 0 {
					t.Fatalf("converged answer epoch=%d staleness=%d, want %d/0", ans.Epoch, ans.Staleness(), iters)
				}
			})
		}
	}
}

// TestServeReadAPIs pins the query surface on a converged fault-free run:
// top-k ordering against a full sort, neighborhoods against the CSR, and
// the typed error cases.
func TestServeReadAPIs(t *testing.T) {
	g := datasets.Tiny(300, 1800, 9)
	cfg := ftConfig(core.EdgeCutMode, 4, 6, 1, core.RecoverRebirth)
	cfg.Serve = core.ServeConfig{Enabled: true}
	cl, err := core.NewCluster[float64, float64](cfg, g, algorithms.NewPageRank(g.NumVertices()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run()
	if err != nil {
		t.Fatal(err)
	}

	ans, err := cl.Query(core.Query{Kind: core.QueryTopK, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	type rank struct {
		v graph.VertexID
		x float64
	}
	all := make([]rank, g.NumVertices())
	for v := range all {
		all[v] = rank{graph.VertexID(v), res.Values[v]}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].x != all[j].x {
			return all[i].x > all[j].x
		}
		return all[i].v < all[j].v
	})
	if len(ans.TopK) != 10 {
		t.Fatalf("topk returned %d entries", len(ans.TopK))
	}
	for i, e := range ans.TopK {
		if e.Vertex != all[i].v || e.Value != all[i].x {
			t.Fatalf("topk[%d] = %v/%v, want %v/%v", i, e.Vertex, e.Value, all[i].v, all[i].x)
		}
	}

	var v graph.VertexID
	for v = 0; int(v) < g.NumVertices(); v++ {
		if g.OutDegree(v) > 2 {
			break
		}
	}
	nb, err := cl.Query(core.Query{Kind: core.QueryNeighbors, Vertex: v})
	if err != nil {
		t.Fatal(err)
	}
	var want []graph.VertexID
	g.OutEdges(v, func(_ int, e graph.Edge) { want = append(want, e.Dst) })
	if len(nb.Neighbors) != len(want) {
		t.Fatalf("neighbors: %d != %d", len(nb.Neighbors), len(want))
	}
	for i := range want {
		if nb.Neighbors[i] != want[i] {
			t.Fatalf("neighbors[%d] = %d, want %d", i, nb.Neighbors[i], want[i])
		}
	}
	capped, err := cl.Query(core.Query{Kind: core.QueryNeighbors, Vertex: v, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(capped.Neighbors) != 2 {
		t.Fatalf("capped neighbors: %d != 2", len(capped.Neighbors))
	}

	if _, err := cl.Query(core.Query{Kind: core.QueryValue, Vertex: graph.VertexID(g.NumVertices())}); !errors.Is(err, core.ErrUnknownVertex) {
		t.Fatalf("out-of-range vertex: %v", err)
	}
	if _, err := cl.Query(core.Query{Kind: core.QueryTopK}); !errors.Is(err, core.ErrBadQuery) {
		t.Fatalf("topk without K: %v", err)
	}
	if _, err := cl.Query(core.Query{}); !errors.Is(err, core.ErrBadQuery) {
		t.Fatalf("zero query: %v", err)
	}
}

// TestServeDisabled: querying a cluster without Serve.Enabled is a typed
// error, and enabling Serve for an unsupported value type fails at build.
func TestServeDisabled(t *testing.T) {
	g := datasets.Tiny(100, 500, 3)
	cfg := ftConfig(core.EdgeCutMode, 4, 3, 1, core.RecoverRebirth)
	cl, err := core.NewCluster[float64, float64](cfg, g, algorithms.NewPageRank(g.NumVertices()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Query(core.Query{Kind: core.QueryValue}); !errors.Is(err, core.ErrServeDisabled) {
		t.Fatalf("serve disabled: %v", err)
	}

	cfg.Serve = core.ServeConfig{Enabled: true}
	cfg.MaxIter = 2
	if _, err := core.NewCluster[[]float64, []float64](cfg, g, algorithms.NewALS(60, 4, 0.05)); err == nil {
		t.Fatal("Serve.Enabled with a vector value type should fail NewCluster")
	}
}

// TestServeIdentityWithServing: enabling the serving layer must not perturb
// the simulation — sim_seconds and every message byte are bit-identical
// with serving on or off, even with a failover mid-run.
func TestServeIdentityWithServing(t *testing.T) {
	g := datasets.Tiny(400, 2400, 13)
	for _, mode := range []core.Mode{core.EdgeCutMode, core.VertexCutMode} {
		base := ftConfig(mode, 5, 8, 1, core.RecoverRebirth)
		base.Failures = failAt(3, core.FailBeforeBarrier, 1)
		plain := runPR(t, base, g)

		served := base
		served.Serve = core.ServeConfig{Enabled: true, KeepHistory: true}
		cl, err := core.NewCluster[float64, float64](served, g, algorithms.NewPageRank(g.NumVertices()))
		if err != nil {
			t.Fatal(err)
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_, _ = cl.Query(core.Query{Kind: core.QueryValue, Vertex: graph.VertexID(i % g.NumVertices())})
			}
		}()
		res, err := cl.Run()
		close(stop)
		wg.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if res.SimSeconds != plain.SimSeconds {
			t.Fatalf("%v: sim_seconds changed with serving: %v != %v", mode, res.SimSeconds, plain.SimSeconds)
		}
		if res.Metrics.TotalBytes() != plain.Metrics.TotalBytes() {
			t.Fatalf("%v: msg_bytes changed with serving: %d != %d", mode, res.Metrics.TotalBytes(), plain.Metrics.TotalBytes())
		}
		valuesEqual(t, mode.String()+" values", res.Values, plain.Values, 0)
	}
}
