package core

import (
	"encoding/binary"

	"imitator/internal/graph"
	"imitator/internal/netsim"
)

// gatherPartial is one node's partial accumulator for a vertex.
type gatherPartial[A any] struct {
	acc A
	has bool
}

// ensurePartials returns p resized to n cleared elements, reusing its
// backing array when capacity allows.
func ensurePartials[A any](p []gatherPartial[A], n int) []gatherPartial[A] {
	if cap(p) < n {
		//imitator:hotalloc-ok grows monotonically to the peak entry count, then reused every superstep
		return make([]gatherPartial[A], n)
	}
	p = p[:n]
	clear(p)
	return p
}

// superstepVertexCut runs one PowerLyra-style GAS superstep:
//
//	R1  activation broadcast: masters tell replica hosts which vertices
//	    gather this superstep (skipped for always-active programs);
//	R2  gather: every node partial-gathers over its local in-edges and
//	    ships accumulators to masters;
//	    apply: masters merge partials (ascending node order) and apply;
//	R3  sync: masters broadcast new values + scatter flags to replicas,
//	    which stage them and mark local out-targets;
//	R4  activation notices: nodes forward scatter activations to the
//	    masters of the activated vertices.
//
// All phases run through pre-bound functions and bodies so the steady-state
// loop allocates nothing; the gather scratch (localPart/mergedPart) is
// retained on the node and cleared per superstep.
//
//imitator:hotpath
func (c *Cluster[V, A]) superstepVertexCut(iter int) error {
	c.curIter = iter

	// R1: activation broadcast.
	if !c.always {
		c.runPhase(c.fns.vcR1Stage)
		c.flushSendRound(netsim.KindActivation)
		c.runPhase(c.fns.vcR1Recv)
	}

	// R2 gather: local partials; replicas ship them to masters.
	c.runPhase(c.fns.vcGather)
	c.advanceComputeSpan()
	c.flushSendRound(netsim.KindGather)

	// Merge + apply on masters.
	c.runPhase(c.fns.vcMerge)
	c.advanceComputeSpan()

	// R3 sync: masters broadcast new values + scatter bits. Encode is
	// chunk-parallel; decode parallelizes over messages (replica positions
	// are disjoint across senders).
	c.runPhase(c.fns.syncStage)
	c.flushSendRound(netsim.KindSync)
	c.runPhase(c.fns.vcRecv)

	// R4 activation notices to the masters of activated vertices.
	c.flushNoticeRound()
	c.runPhase(c.fns.vcNotice)
	return nil
}

// bindVertexCutPhases builds the cluster-level vertex-cut phase functions.
func (c *Cluster[V, A]) bindVertexCutPhases() {
	c.fns.vcR1Stage = func(nd *node[V, A]) {
		c.routeReady(nd)
		c.chunked(nd, len(nd.entries), nd.bodies.vcR1Stage)
	}
	c.fns.vcR1Recv = func(nd *node[V, A]) {
		c.chunked(nd, len(nd.entries), nd.bodies.vcR1Reset)
		msgs := c.net.Receive(nd.id)
		for _, m := range msgs {
			buf := m.Payload
			for len(buf) >= 4 {
				pos := binary.LittleEndian.Uint32(buf)
				nd.entries[pos].active = true
				buf = buf[4:]
			}
		}
		c.recycleMsgs(msgs)
	}
	c.fns.vcGather = func(nd *node[V, A]) {
		nd.localPart = ensurePartials(nd.localPart, len(nd.entries))
		nd.phaseCost = c.chunked(nd, len(nd.entries), nd.bodies.vcGather)
	}
	c.fns.vcMerge = func(nd *node[V, A]) {
		// Contributions merge in ascending sender-id order, with the
		// master's own local partial taking its node's slot, so
		// floating-point folds are deterministic.
		nd.mergedPart = ensurePartials(nd.mergedPart, len(nd.entries))
		msgs := c.net.Receive(nd.id)
		localMerged := false
		for _, m := range msgs {
			if !localMerged && m.From > nd.id {
				localMerged = true
				c.vcMergeLocal(nd)
			}
			buf := m.Payload
			for len(buf) > 0 {
				pos := int32(binary.LittleEndian.Uint32(buf))
				var (
					acc A
					err error
				)
				acc, buf, err = c.ac.Read(buf[4:])
				if err != nil {
					break
				}
				c.vcMergeAt(nd, pos, acc)
			}
		}
		if !localMerged {
			c.vcMergeLocal(nd)
		}
		c.recycleMsgs(msgs)

		// Apply runs chunk-parallel over the serially merged partials: each
		// chunk writes only its own masters' staged state.
		nd.phaseCost = c.chunked(nd, len(nd.entries), nd.bodies.vcApply)
	}
	c.fns.vcRecv = func(nd *node[V, A]) {
		nd.recvMsgs = c.net.Receive(nd.id)
		if c.flog != nil {
			c.flogCapture(nd)
		}
		c.chunked(nd, len(nd.recvMsgs), nd.bodies.vcRecv)
		c.recycleMsgs(nd.recvMsgs)
		nd.recvMsgs = nil
	}
	c.fns.vcNotice = func(nd *node[V, A]) {
		msgs := c.net.Receive(nd.id)
		for _, m := range msgs {
			buf := m.Payload
			for len(buf) >= 4 {
				pos := binary.LittleEndian.Uint32(buf)
				nd.entries[pos].pendingActive = true
				buf = buf[4:]
			}
		}
		c.recycleMsgs(msgs)
	}
}

// bindVertexCutBodies builds nd's pre-bound vertex-cut chunked bodies.
func (c *Cluster[V, A]) bindVertexCutBodies(nd *node[V, A]) {
	nd.bodies.vcR1Stage = func(st *stager, lo, hi int) {
		rt := &nd.route
		for i := lo; i < hi; i++ {
			e := &nd.entries[i]
			if !e.isMaster() || !e.active {
				continue
			}
			for k := rt.start[i]; k < rt.start[i+1]; k++ {
				if rt.ftOnly[k] {
					continue // FT replicas hold no edges: nothing to gather
				}
				rn := int(rt.node[k])
				st.setBuf(rn, binary.LittleEndian.AppendUint32(st.buf(rn), uint32(rt.pos[k])))
				st.met.ActivationMsgs++
				st.met.ActivationBytes += 4
			}
		}
	}
	nd.bodies.vcR1Reset = func(_ *stager, lo, hi int) {
		for i := lo; i < hi; i++ {
			if e := &nd.entries[i]; !e.isMaster() {
				e.active = false
			}
		}
	}
	nd.bodies.vcGather = func(st *stager, lo, hi int) {
		edges := 0
		for i := lo; i < hi; i++ {
			e := &nd.entries[i]
			if !e.active || len(e.inNbr) == 0 {
				continue
			}
			var acc A
			has := false
			for k, src := range e.inNbr {
				se := &nd.entries[src]
				contrib := c.prog.Gather(
					graph.Edge{Src: se.id, Dst: e.id, Weight: e.inWt[k]},
					se.value, se.info())
				if has {
					acc = c.prog.Merge(acc, contrib)
				} else {
					acc, has = contrib, true
				}
			}
			edges += len(e.inNbr)
			if !has {
				continue
			}
			if e.isMaster() {
				nd.localPart[i] = gatherPartial[A]{acc: acc, has: true}
			} else {
				mn := int(e.masterNode)
				buf := st.buf(mn)
				before := len(buf)
				buf = binary.LittleEndian.AppendUint32(buf, uint32(e.masterPos))
				buf = c.ac.Append(buf, acc)
				st.setBuf(mn, buf)
				st.met.GatherMsgs++
				st.met.GatherBytes += int64(len(buf) - before)
			}
		}
		st.busy = float64(edges) * c.cfg.Cost.ComputePerEdge
	}
	nd.bodies.vcApply = func(st *stager, lo, hi int) {
		iter := c.curIter
		applies := 0
		for i := lo; i < hi; i++ {
			e := &nd.entries[i]
			if !e.isMaster() || !e.active {
				continue
			}
			newV, scatter := c.prog.Apply(e.id, e.info(), e.value, nd.mergedPart[i].acc, nd.mergedPart[i].has, iter)
			e.pendingValue = newV
			e.hasPending = true
			e.pendingScatter = scatter
			e.pendingScatterI = int32(iter)
			applies++
			if scatter {
				c.scatterMark(nd, st, e)
			}
		}
		st.busy = float64(applies) * c.cfg.Cost.ComputePerVertex
	}
	nd.bodies.vcRecv = func(st *stager, lo, hi int) {
		for _, m := range nd.recvMsgs[lo:hi] {
			if m.Kind != netsim.KindSync {
				continue
			}
			c.applySyncScatter(nd, st, m.Payload)
		}
	}
}

// vcMergeAt folds one partial accumulator into the merge scratch.
func (c *Cluster[V, A]) vcMergeAt(nd *node[V, A], pos int32, acc A) {
	m := &nd.mergedPart[pos]
	if m.has {
		m.acc = c.prog.Merge(m.acc, acc)
	} else {
		m.acc, m.has = acc, true
	}
}

// vcMergeLocal folds the node's own local partials into the merge scratch.
func (c *Cluster[V, A]) vcMergeLocal(nd *node[V, A]) {
	for i := range nd.localPart {
		if nd.localPart[i].has {
			c.vcMergeAt(nd, int32(i), nd.localPart[i].acc)
		}
	}
}

// applySyncScatter stages sync records and performs local scatter marking,
// queueing activation notices for remote masters.
func (c *Cluster[V, A]) applySyncScatter(nd *node[V, A], st *stager, buf []byte) {
	iter := int32(c.iter)
	for len(buf) > 0 {
		pos := int32(binary.LittleEndian.Uint32(buf))
		flags := buf[4]
		var (
			val V
			err error
		)
		val, buf, err = c.vc.Read(buf[5:])
		if err != nil {
			return
		}
		e := &nd.entries[pos]
		e.pendingValue = val
		e.hasPending = true
		e.pendingScatter = flags&1 != 0
		e.pendingScatterI = iter
		if e.pendingScatter {
			c.scatterMark(nd, st, e)
		}
	}
}

// scatterMark activates vertex e's local out-targets: masters through the
// worker's activation list, replicas via an activation notice to their
// master's node.
func (c *Cluster[V, A]) scatterMark(nd *node[V, A], st *stager, e *vertexEntry[V]) {
	for _, w := range e.outNbr {
		we := &nd.entries[w]
		if we.isMaster() {
			st.markPendingActive(w)
			continue
		}
		mn := int(we.masterNode)
		b := st.notice[mn]
		if b == nil && st.pool != nil {
			b = st.pool.Get()
		}
		st.notice[mn] = binary.LittleEndian.AppendUint32(b, uint32(we.masterPos))
		st.met.ActivationMsgs++
		st.met.ActivationBytes += 4
	}
}
