package core

import (
	"encoding/binary"

	"imitator/internal/graph"
	"imitator/internal/netsim"
)

// gatherPartial is one node's partial accumulator for a vertex.
type gatherPartial[A any] struct {
	acc A
	has bool
}

// superstepVertexCut runs one PowerLyra-style GAS superstep:
//
//	R1  activation broadcast: masters tell replica hosts which vertices
//	    gather this superstep (skipped for always-active programs);
//	R2  gather: every node partial-gathers over its local in-edges and
//	    ships accumulators to masters;
//	    apply: masters merge partials (ascending node order) and apply;
//	R3  sync: masters broadcast new values + scatter flags to replicas,
//	    which stage them and mark local out-targets;
//	R4  activation notices: nodes forward scatter activations to the
//	    masters of the activated vertices.
func (c *Cluster[V, A]) superstepVertexCut(iter int) error {
	always := c.prog.AlwaysActive()

	// R1: activation broadcast.
	if !always {
		c.eachAlive(func(nd *node[V, A]) {
			c.chunked(nd, len(nd.entries), func(st *stager, lo, hi int) {
				for i := lo; i < hi; i++ {
					e := &nd.entries[i]
					if !e.isMaster() || !e.active {
						continue
					}
					for ri, rn := range e.replicaNodes {
						if e.replicaFTOnly[ri] {
							continue // FT replicas hold no edges: nothing to gather
						}
						pos := e.replicaPos[ri]
						st.stage(int(rn), func(buf []byte) []byte {
							return binary.LittleEndian.AppendUint32(buf, uint32(pos))
						})
						st.met.ActivationMsgs++
						st.met.ActivationBytes += 4
					}
				}
			})
		})
		c.flushSendRound(netsim.KindActivation)
		c.eachAlive(func(nd *node[V, A]) {
			c.chunked(nd, len(nd.entries), func(st *stager, lo, hi int) {
				for i := lo; i < hi; i++ {
					if e := &nd.entries[i]; !e.isMaster() {
						e.active = false
					}
				}
			})
			for _, m := range c.net.Receive(nd.id) {
				buf := m.Payload
				for len(buf) >= 4 {
					pos := binary.LittleEndian.Uint32(buf)
					nd.entries[pos].active = true
					buf = buf[4:]
				}
			}
		})
	}

	// R2 gather: local partials; replicas ship them to masters.
	partials := make([][]gatherPartial[A], len(c.nodes))
	c.eachAlive(func(nd *node[V, A]) {
		local := make([]gatherPartial[A], len(nd.entries))
		nd.phaseCost = c.chunked(nd, len(nd.entries), func(st *stager, lo, hi int) {
			edges := 0
			for i := lo; i < hi; i++ {
				e := &nd.entries[i]
				if !e.active || len(e.inNbr) == 0 {
					continue
				}
				var acc A
				has := false
				for k, src := range e.inNbr {
					se := &nd.entries[src]
					contrib := c.prog.Gather(
						graph.Edge{Src: se.id, Dst: e.id, Weight: e.inWt[k]},
						se.value, se.info())
					if has {
						acc = c.prog.Merge(acc, contrib)
					} else {
						acc, has = contrib, true
					}
				}
				edges += len(e.inNbr)
				if !has {
					continue
				}
				if e.isMaster() {
					local[i] = gatherPartial[A]{acc: acc, has: true}
				} else {
					mn := int(e.masterNode)
					mpos := e.masterPos
					before := len(st.send[mn])
					st.stage(mn, func(buf []byte) []byte {
						buf = binary.LittleEndian.AppendUint32(buf, uint32(mpos))
						return c.ac.Append(buf, acc)
					})
					st.met.GatherMsgs++
					st.met.GatherBytes += int64(len(st.send[mn]) - before)
				}
			}
			st.busy = float64(edges) * c.cfg.Cost.ComputePerEdge
		})
		partials[nd.id] = local
	})
	c.advanceComputeSpan()
	c.flushSendRound(netsim.KindGather)

	// Merge + apply on masters. Contributions merge in ascending sender-id
	// order, with the master's own local partial taking its node's slot, so
	// floating-point folds are deterministic.
	c.eachAlive(func(nd *node[V, A]) {
		local := partials[nd.id]
		merged := make([]gatherPartial[A], len(nd.entries))
		mergeAt := func(pos int32, acc A) {
			m := &merged[pos]
			if m.has {
				m.acc = c.prog.Merge(m.acc, acc)
			} else {
				m.acc, m.has = acc, true
			}
		}
		msgs := c.net.Receive(nd.id)
		localMerged := false
		takeLocal := func() {
			if localMerged {
				return
			}
			localMerged = true
			for i := range local {
				if local[i].has {
					mergeAt(int32(i), local[i].acc)
				}
			}
		}
		for _, m := range msgs {
			if m.From > nd.id {
				takeLocal()
			}
			buf := m.Payload
			for len(buf) > 0 {
				pos := int32(binary.LittleEndian.Uint32(buf))
				var (
					acc A
					err error
				)
				acc, buf, err = c.ac.Read(buf[4:])
				if err != nil {
					break
				}
				mergeAt(pos, acc)
			}
		}
		takeLocal()

		// Apply runs chunk-parallel over the serially merged partials: each
		// chunk writes only its own masters' staged state.
		nd.phaseCost = c.chunked(nd, len(nd.entries), func(st *stager, lo, hi int) {
			applies := 0
			for i := lo; i < hi; i++ {
				e := &nd.entries[i]
				if !e.isMaster() || !e.active {
					continue
				}
				newV, scatter := c.prog.Apply(e.id, e.info(), e.value, merged[i].acc, merged[i].has, iter)
				e.pendingValue = newV
				e.hasPending = true
				e.pendingScatter = scatter
				e.pendingScatterI = int32(iter)
				applies++
				if scatter {
					c.scatterMark(nd, st, e)
				}
			}
			st.busy = float64(applies) * c.cfg.Cost.ComputePerVertex
		})
	})
	c.advanceComputeSpan()

	// R3 sync: masters broadcast new values + scatter bits. Encode is
	// chunk-parallel; decode parallelizes over messages (replica positions
	// are disjoint across senders).
	c.eachAlive(func(nd *node[V, A]) {
		c.chunked(nd, len(nd.entries), func(st *stager, lo, hi int) {
			for i := lo; i < hi; i++ {
				e := &nd.entries[i]
				if !e.isMaster() || !e.hasPending {
					continue
				}
				c.stageSyncRecords(st, e)
			}
		})
	})
	c.flushSendRound(netsim.KindSync)
	c.eachAlive(func(nd *node[V, A]) {
		msgs := c.net.Receive(nd.id)
		c.chunked(nd, len(msgs), func(st *stager, lo, hi int) {
			for _, m := range msgs[lo:hi] {
				if m.Kind != netsim.KindSync {
					continue
				}
				c.applySyncScatter(nd, st, m.Payload)
			}
		})
	})

	// R4 activation notices to the masters of activated vertices.
	c.flushNoticeRound()
	c.eachAlive(func(nd *node[V, A]) {
		for _, m := range c.net.Receive(nd.id) {
			buf := m.Payload
			for len(buf) >= 4 {
				pos := binary.LittleEndian.Uint32(buf)
				nd.entries[pos].pendingActive = true
				buf = buf[4:]
			}
		}
	})
	return nil
}

// applySyncScatter stages sync records and performs local scatter marking,
// queueing activation notices for remote masters.
func (c *Cluster[V, A]) applySyncScatter(nd *node[V, A], st *stager, buf []byte) {
	iter := int32(c.iter)
	for len(buf) > 0 {
		pos := int32(binary.LittleEndian.Uint32(buf))
		flags := buf[4]
		var (
			val V
			err error
		)
		val, buf, err = c.vc.Read(buf[5:])
		if err != nil {
			return
		}
		e := &nd.entries[pos]
		e.pendingValue = val
		e.hasPending = true
		e.pendingScatter = flags&1 != 0
		e.pendingScatterI = iter
		if e.pendingScatter {
			c.scatterMark(nd, st, e)
		}
	}
}

// scatterMark activates vertex e's local out-targets: masters through the
// worker's activation list, replicas via an activation notice to their
// master's node.
func (c *Cluster[V, A]) scatterMark(nd *node[V, A], st *stager, e *vertexEntry[V]) {
	for _, w := range e.outNbr {
		we := &nd.entries[w]
		if we.isMaster() {
			st.markPendingActive(w)
			continue
		}
		mn := int(we.masterNode)
		mpos := we.masterPos
		st.stageNotice(mn, func(buf []byte) []byte {
			return binary.LittleEndian.AppendUint32(buf, uint32(mpos))
		})
		st.met.ActivationMsgs++
		st.met.ActivationBytes += 4
	}
}
