package core

import (
	"fmt"

	"imitator/internal/graph"
	"imitator/internal/metrics"
	"imitator/internal/netsim"
)

// TraceEvent is one timeline entry in simulated seconds (Fig 12's x-axis).
type TraceEvent struct {
	Iter  int
	Kind  string // "iteration", "checkpoint", "recovery"
	Start float64
	End   float64
}

// Duration returns the event's span.
func (e TraceEvent) Duration() float64 { return e.End - e.Start }

// RecoveryReport breaks one recovery down the way Fig 2c / Fig 9 do:
// what kind of recovery ran, what triggered it, how long each phase took
// in simulated seconds, and how much state moved to repair the cluster.
type RecoveryReport struct {
	Kind      string // "checkpoint", "rebirth", "migration"
	Iteration int    // superstep being (re-)executed after recovery
	Failed    []int

	// Fallback marks a Rebirth that ran out of standby nodes and completed
	// as a Migration instead (Config.RebirthFallback).
	Fallback bool

	ReloadSeconds      float64
	ReconstructSeconds float64
	ReplaySeconds      float64

	// ReplayIters counts re-executed supersteps (checkpoint recovery; the
	// replication strategies replay activation only and logged recovery
	// replays logs without re-executing, so this is 0 for them).
	ReplayIters int

	// LogReplaySupersteps counts the log files the slowest reborn node
	// replayed (logged recovery only). Survivors replay nothing.
	LogReplaySupersteps int

	RecoveredVertices int
	RecoveredEdges    int

	// Msgs/Bytes count the recovery traffic the completed pass put on the
	// simulated wire (internal/metrics recovery counters).
	Msgs  int64
	Bytes int64
}

// TotalSeconds is the full recovery duration.
func (r RecoveryReport) TotalSeconds() float64 {
	return r.ReloadSeconds + r.ReconstructSeconds + r.ReplaySeconds
}

// String implements fmt.Stringer.
func (r RecoveryReport) String() string {
	kind := r.Kind
	if r.Fallback {
		kind = "rebirth->" + kind
	}
	return fmt.Sprintf("%s@%d failed=%v total=%.3fs (reload %.3f, reconstruct %.3f, replay %.3f) vertices=%d edges=%d bytes=%d",
		kind, r.Iteration, r.Failed, r.TotalSeconds(),
		r.ReloadSeconds, r.ReconstructSeconds, r.ReplaySeconds,
		r.RecoveredVertices, r.RecoveredEdges, r.Bytes)
}

// Result is a finished job's output and accounting.
type Result[V any] struct {
	// Values holds the final vertex values, indexed by vertex id.
	Values []V
	// Iterations completed.
	Iterations int

	// SimSeconds is the simulated wall-clock of the whole run;
	// AvgIterSeconds averages over failure-free iterations.
	SimSeconds     float64
	AvgIterSeconds float64
	LoadSeconds    float64

	// Checkpointing totals.
	CheckpointSeconds float64
	CheckpointCount   int

	// Strategy is the configured FT strategy's uniform accounting:
	// superstep-end persistence work and completed recovery passes.
	Strategy StrategyStats

	// Replication stats for Figs 3/8/10/14.
	ExtraReplicas        int // FT-only replicas added at load
	ExtraReplicasSelfish int // of which for selfish vertices (§4.4)
	TotalPresences       int // masters + all replicas after FT extension

	Metrics     metrics.Node // cluster-wide totals
	PerNode     []metrics.Node
	MaxMemory   int64 // largest per-node footprint, bytes
	TotalMemory int64

	// Buffers is the wire-buffer pool traffic for the whole run: a reuse
	// fraction near 1 means the steady-state loop ran allocation-free.
	Buffers metrics.Buffers

	// Workers holds per-node, per-worker busy seconds when WorkersPerNode
	// > 1 (empty entries otherwise): the intra-node load-balance picture.
	Workers []metrics.WorkerTimes

	Trace []TraceEvent
	// Recoveries reports every completed recovery, in order; chaos
	// assertions and cmd/bench read these instead of scraping logs.
	Recoveries []RecoveryReport

	// Omission is the omission-fault layer's wire activity (retransmits,
	// dedup hits, fenced stale-epoch frames, ...), nil for runs whose
	// schedule contained no omission events.
	Omission *OmissionStats

	// Serve is the live-query layer's accounting, nil unless
	// Config.Serve.Enabled.
	Serve *metrics.Serve

	// Membership is the failure detector's accounting (per-failure
	// detection latency, false suspicions, gossip traffic), nil for runs
	// whose chaos schedule never exercised the detector.
	Membership *metrics.Membership
}

// OmissionStats re-exports the netsim omission counters at the engine's
// public seam, so pkg/imitator does not reach into the transport layers.
type OmissionStats = netsim.OmissionStats

// result assembles the Result from the cluster state after Run.
func (c *Cluster[V, A]) result() *Result[V] {
	res := &Result[V]{
		Values:               make([]V, c.g.NumVertices()),
		Iterations:           c.iter,
		SimSeconds:           c.clock.Now(),
		LoadSeconds:          c.loadSeconds,
		CheckpointSeconds:    c.ckptSeconds,
		CheckpointCount:      c.ckptCount,
		Strategy:             c.strategyStats(),
		ExtraReplicas:        c.extraReplicas,
		ExtraReplicasSelfish: c.extraReplicasSelfish,
		TotalPresences:       c.totalPresences,
		Trace:                append([]TraceEvent(nil), c.trace...),
		Recoveries:           append([]RecoveryReport(nil), c.recoveries...),
	}
	for _, nd := range c.aliveNodes() {
		for i := range nd.entries {
			if e := &nd.entries[i]; e.isMaster() {
				res.Values[e.id] = e.value
			}
		}
	}
	c.refreshMemoryMetrics()
	ps := c.pool.Stats()
	c.met.Buffers = metrics.Buffers{Gets: ps.Gets, Misses: ps.Misses, Puts: ps.Puts}
	res.Buffers = c.met.Buffers
	res.Metrics = c.met.Total()
	res.PerNode = append([]metrics.Node(nil), c.met.Nodes...)
	res.Workers = append([]metrics.WorkerTimes(nil), c.met.Workers...)
	res.MaxMemory = c.met.MaxMemoryNode()
	res.TotalMemory = res.Metrics.MemoryBytes

	var iterTotal float64
	iters := 0
	for _, ev := range c.trace {
		if ev.Kind == "iteration" {
			iterTotal += ev.Duration()
			iters++
		}
	}
	if iters > 0 {
		res.AvgIterSeconds = iterTotal / float64(iters)
	}
	if stats, ok := c.net.OmissionStats(); ok {
		res.Omission = &stats
	}
	res.Serve = c.ServeStats()
	if c.chaos != nil && c.chaos.det != nil {
		res.Membership = c.chaos.det.membership()
	}
	return res
}

// MasterValue returns the committed value of a vertex's current master;
// exported for tests and examples that inspect mid-run state.
func (c *Cluster[V, A]) MasterValue(v graph.VertexID) (V, error) {
	var zero V
	mn := c.masterLoc[v]
	nd := c.nodes[mn]
	if nd == nil || !nd.alive {
		return zero, fmt.Errorf("core: master node %d of vertex %d is down", mn, v)
	}
	e := nd.entry(v)
	if e == nil || !e.isMaster() {
		return zero, fmt.Errorf("core: vertex %d has no master entry on node %d", v, mn)
	}
	return e.value, nil
}

// ReplicationFactor returns total presences divided by vertex count, after
// FT extension (Fig 10a / Fig 14a).
func (c *Cluster[V, A]) ReplicationFactor() float64 {
	if c.g.NumVertices() == 0 {
		return 0
	}
	return float64(c.totalPresences) / float64(c.g.NumVertices())
}
