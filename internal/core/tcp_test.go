package core_test

import (
	"testing"

	"imitator/internal/algorithms"
	"imitator/internal/core"
	"imitator/internal/datasets"
	"imitator/internal/graph"
)

// TestTCPTransportMatchesMemory runs the whole protocol — supersteps, sync
// records, recovery — over real loopback TCP sockets and demands exactly
// the in-memory backend's results.
func TestTCPTransportMatchesMemory(t *testing.T) {
	g := datasets.Tiny(400, 2400, 909)
	for _, tc := range []struct {
		name string
		mode core.Mode
		rec  core.RecoveryKind
	}{
		{"edgecut/rebirth", core.EdgeCutMode, core.RecoverRebirth},
		{"edgecut/migration", core.EdgeCutMode, core.RecoverMigration},
		{"vertexcut/rebirth", core.VertexCutMode, core.RecoverRebirth},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			run := func(tr core.TransportKind) []float64 {
				cfg := core.DefaultConfig(tc.mode, 4)
				cfg.Transport = tr
				cfg.MaxIter = 6
				cfg.Recovery = tc.rec
				cfg.Failures = failAt(3, core.FailBeforeBarrier, 2)
				cl, err := core.NewCluster[float64, float64](cfg, g, algorithms.NewPageRank(g.NumVertices()))
				if err != nil {
					t.Fatal(err)
				}
				res, err := cl.Run()
				if err != nil {
					t.Fatal(err)
				}
				return res.Values
			}
			mem := run(core.TransportMem)
			tcp := run(core.TransportTCP)
			for v := range mem {
				if mem[v] != tcp[v] {
					t.Fatalf("vertex %d: tcp %v != mem %v", v, tcp[v], mem[v])
				}
			}
		})
	}
}

// TestTCPTransportSSSP exercises the activation machinery (sparse rounds,
// notice rounds) over sockets.
func TestTCPTransportSSSP(t *testing.T) {
	g := datasets.Tiny(300, 1800, 910)
	run := func(tr core.TransportKind) []float64 {
		cfg := core.DefaultConfig(core.VertexCutMode, 3)
		cfg.Transport = tr
		cfg.MaxIter = 30
		cfg.Recovery = core.RecoverMigration
		cfg.Failures = failAt(2, core.FailAfterBarrier, 1)
		cl, err := core.NewCluster[float64, float64](cfg, g, algorithms.NewSSSP(0))
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Values
	}
	mem := run(core.TransportMem)
	tcp := run(core.TransportTCP)
	for v := range mem {
		if mem[v] != tcp[v] {
			t.Fatalf("vertex %d: tcp %v != mem %v", v, tcp[v], mem[v])
		}
	}
}

// TestMasterValueInspection covers the mid-run inspection API.
func TestMasterValueInspection(t *testing.T) {
	g := datasets.Tiny(100, 500, 911)
	cfg := core.DefaultConfig(core.EdgeCutMode, 3)
	cfg.MaxIter = 3
	cl, err := core.NewCluster[float64, float64](cfg, g, algorithms.NewPageRank(g.NumVertices()))
	if err != nil {
		t.Fatal(err)
	}
	if rf := cl.ReplicationFactor(); rf < 1 {
		t.Errorf("ReplicationFactor = %v", rf)
	}
	res, err := cl.Run()
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v += 17 {
		got, err := cl.MasterValue(graph.VertexID(v))
		if err != nil {
			t.Fatal(err)
		}
		if got != res.Values[v] {
			t.Errorf("vertex %d: MasterValue %v != result %v", v, got, res.Values[v])
		}
	}
	if _, err := cl.MasterValue(0); err != nil {
		t.Fatal(err)
	}
}
