package core

import (
	"testing"

	"imitator/internal/graph"
)

// FuzzSyncPayloadDecode hardens the sync-record decoder against arbitrary
// bytes: it must never panic or read out of bounds (positions are attacker-
// controlled in the fuzz sense, so we bound-check before indexing like the
// receive path does via trusted senders; the fuzz target exercises the
// decode loop itself on a scratch node).
func FuzzSyncPayloadDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := &reader{buf: data}
		for r.remaining() > 0 && r.err == nil {
			rec := decodeRecoveryRecord(r, Float64Codec{})
			_ = rec
		}
	})
}

// FuzzRawEdgesDecode hardens the raw in-edge-list decoder against arbitrary
// bytes: it must never panic or allocate beyond the payload's sanity bound,
// and a successful decode must keep the parallel slices in lockstep and
// survive an encode/decode round trip.
func FuzzRawEdgesDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{255, 255, 255, 255, 1, 2, 3})
	f.Add((&rawEdges{
		src:       []graph.VertexID{7, 9},
		wt:        []float64{0.5, 2},
		srcMaster: []int16{1, -1},
	}).encode(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := &reader{buf: data}
		e := decodeRawEdges(r)
		if len(e.src) != len(e.wt) || len(e.src) != len(e.srcMaster) {
			t.Fatalf("parallel slices diverged: %d/%d/%d", len(e.src), len(e.wt), len(e.srcMaster))
		}
		if r.err != nil {
			return
		}
		rt := decodeRawEdges(&reader{buf: e.encode(nil)})
		if len(rt.src) != len(e.src) {
			t.Fatalf("round trip length %d, want %d", len(rt.src), len(e.src))
		}
		for i := range e.src {
			if rt.src[i] != e.src[i] || rt.srcMaster[i] != e.srcMaster[i] {
				t.Fatalf("round trip entry %d mismatch", i)
			}
		}
	})
}

// FuzzReplicaTableDecode feeds raw bytes (not just round trips) to the
// replica-table decoder: no panics, parallel slices in lockstep, and both
// length prefixes honored only up to their sanity bounds.
func FuzzReplicaTableDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{255, 255, 9})
	f.Add([]byte{1, 0, 2, 0, 5, 0, 0, 0, 1, 1, 0, 3, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := &reader{buf: data}
		tab := decodeReplicaTable(r)
		if len(tab.nodes) != len(tab.pos) || len(tab.nodes) != len(tab.ftOnly) {
			t.Fatalf("parallel slices diverged: %d/%d/%d", len(tab.nodes), len(tab.pos), len(tab.ftOnly))
		}
		if r.err != nil {
			return
		}
		rt := decodeReplicaTable(&reader{buf: tab.encode(nil)})
		if len(rt.nodes) != len(tab.nodes) || len(rt.mirrorOf) != len(tab.mirrorOf) {
			t.Fatalf("round trip lengths %d/%d, want %d/%d",
				len(rt.nodes), len(rt.mirrorOf), len(tab.nodes), len(tab.mirrorOf))
		}
	})
}

// FuzzReplicaTableRoundTrip checks encode/decode agreement for replica
// tables generated from fuzz inputs.
func FuzzReplicaTableRoundTrip(f *testing.F) {
	f.Add(uint8(3), uint8(1))
	f.Fuzz(func(t *testing.T, n, m uint8) {
		nn := int(n % 32)
		table := &replicaTable{
			nodes:    make([]int16, nn),
			pos:      make([]int32, nn),
			ftOnly:   make([]bool, nn),
			mirrorOf: make([]int16, int(m%8)),
		}
		for i := 0; i < nn; i++ {
			table.nodes[i] = int16(i)
			table.pos[i] = int32(i * 7)
			table.ftOnly[i] = i%3 == 0
		}
		buf := table.encode(nil)
		r := &reader{buf: buf}
		got := decodeReplicaTable(r)
		if r.err != nil {
			t.Fatalf("decode error: %v", r.err)
		}
		if len(got.nodes) != nn || len(got.mirrorOf) != len(table.mirrorOf) {
			t.Fatalf("length mismatch: %d/%d", len(got.nodes), len(got.mirrorOf))
		}
		for i := range got.nodes {
			if got.nodes[i] != table.nodes[i] || got.pos[i] != table.pos[i] || got.ftOnly[i] != table.ftOnly[i] {
				t.Fatalf("entry %d mismatch", i)
			}
		}
	})
}
