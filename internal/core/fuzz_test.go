package core

import (
	"testing"
)

// FuzzSyncPayloadDecode hardens the sync-record decoder against arbitrary
// bytes: it must never panic or read out of bounds (positions are attacker-
// controlled in the fuzz sense, so we bound-check before indexing like the
// receive path does via trusted senders; the fuzz target exercises the
// decode loop itself on a scratch node).
func FuzzSyncPayloadDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := &reader{buf: data}
		for r.remaining() > 0 && r.err == nil {
			rec := decodeRecoveryRecord(r, Float64Codec{})
			_ = rec
		}
	})
}

// FuzzReplicaTableRoundTrip checks encode/decode agreement for replica
// tables generated from fuzz inputs.
func FuzzReplicaTableRoundTrip(f *testing.F) {
	f.Add(uint8(3), uint8(1))
	f.Fuzz(func(t *testing.T, n, m uint8) {
		nn := int(n % 32)
		table := &replicaTable{
			nodes:    make([]int16, nn),
			pos:      make([]int32, nn),
			ftOnly:   make([]bool, nn),
			mirrorOf: make([]int16, int(m%8)),
		}
		for i := 0; i < nn; i++ {
			table.nodes[i] = int16(i)
			table.pos[i] = int32(i * 7)
			table.ftOnly[i] = i%3 == 0
		}
		buf := table.encode(nil)
		r := &reader{buf: buf}
		got := decodeReplicaTable(r)
		if r.err != nil {
			t.Fatalf("decode error: %v", r.err)
		}
		if len(got.nodes) != nn || len(got.mirrorOf) != len(table.mirrorOf) {
			t.Fatalf("length mismatch: %d/%d", len(got.nodes), len(got.mirrorOf))
		}
		for i := range got.nodes {
			if got.nodes[i] != table.nodes[i] || got.pos[i] != table.pos[i] || got.ftOnly[i] != table.ftOnly[i] {
				t.Fatalf("entry %d mismatch", i)
			}
		}
	})
}
