package core

import (
	"testing"

	"imitator/internal/datasets"
)

// TestReplicaConsistencyInvariant is the white-box form of the paper's core
// premise: after every committed superstep, every replica of an
// always-active vertex holds exactly the master's committed value, so the
// replicas genuinely are consistent backups (§3.1).
func TestReplicaConsistencyInvariant(t *testing.T) {
	for _, mode := range []Mode{EdgeCutMode, VertexCutMode} {
		g := datasets.Tiny(300, 1800, 777)
		cfg := DefaultConfig(mode, 4)
		cfg.MaxIter = 1 // stepped manually below
		cl, err := NewCluster[float64, float64](cfg, g, fakePR{})
		if err != nil {
			t.Fatal(err)
		}
		for iter := 0; iter < 4; iter++ {
			if err := cl.superstep(iter); err != nil {
				t.Fatal(err)
			}
			cl.barrier()
			cl.commit(iter)
			cl.iter++
			for _, nd := range cl.nodes {
				for i := range nd.entries {
					e := &nd.entries[i]
					if !e.isMaster() {
						continue
					}
					for ri, rn := range e.replicaNodes {
						re := &cl.nodes[rn].entries[e.replicaPos[ri]]
						if re.value != e.value {
							t.Fatalf("%v iter %d: replica of %d on node %d holds %v, master %v",
								mode, iter, e.id, rn, re.value, e.value)
						}
						if re.lastActivate != e.lastActivate {
							t.Fatalf("%v iter %d: replica of %d scatter flag diverged", mode, iter, e.id)
						}
					}
				}
			}
		}
	}
}

// TestRollbackRestoresCommittedState: a rolled-back superstep must leave no
// staged state behind (Algorithm 1 line 9).
func TestRollbackRestoresCommittedState(t *testing.T) {
	g := datasets.Tiny(200, 1200, 778)
	cfg := DefaultConfig(EdgeCutMode, 3)
	cfg.MaxIter = 1
	cl, err := NewCluster[float64, float64](cfg, g, fakePR{})
	if err != nil {
		t.Fatal(err)
	}
	// One committed superstep, then an aborted one.
	if err := cl.superstep(0); err != nil {
		t.Fatal(err)
	}
	cl.barrier()
	cl.commit(0)
	cl.iter++
	snapshot := make(map[int][]float64)
	for _, nd := range cl.nodes {
		vals := make([]float64, len(nd.entries))
		for i := range nd.entries {
			vals[i] = nd.entries[i].value
		}
		snapshot[nd.id] = vals
	}
	if err := cl.superstep(1); err != nil {
		t.Fatal(err)
	}
	cl.rollback()
	for _, nd := range cl.nodes {
		for i := range nd.entries {
			e := &nd.entries[i]
			if e.hasPending || e.pendingActive || e.pendingScatter {
				t.Fatalf("node %d entry %d kept staged state after rollback", nd.id, i)
			}
			if e.value != snapshot[nd.id][i] {
				t.Fatalf("node %d entry %d value changed across rollback", nd.id, i)
			}
		}
	}
}
