package core

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"imitator/internal/graph"
)

func TestFloat64CodecRoundTrip(t *testing.T) {
	f := func(v float64) bool {
		c := Float64Codec{}
		buf := c.Append(nil, v)
		if len(buf) != c.Size(v) {
			return false
		}
		got, rest, err := c.Read(buf)
		if err != nil || len(rest) != 0 {
			return false
		}
		return got == v || (math.IsNaN(got) && math.IsNaN(v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64CodecShortBuffer(t *testing.T) {
	if _, _, err := (Float64Codec{}).Read([]byte{1, 2, 3}); err == nil {
		t.Fatal("expected error on short buffer")
	}
}

func TestInt32CodecRoundTrip(t *testing.T) {
	f := func(v int32) bool {
		c := Int32Codec{}
		buf := c.Append(nil, v)
		got, rest, err := c.Read(buf)
		return err == nil && len(rest) == 0 && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVecCodecRoundTrip(t *testing.T) {
	c := VecCodec{Dim: 5}
	v := []float64{1, -2, 3.5, 0, 1e-300}
	buf := c.Append(nil, v)
	if len(buf) != c.Size(v) {
		t.Fatalf("size %d != %d", len(buf), c.Size(v))
	}
	got, rest, err := c.Read(buf)
	if err != nil || len(rest) != 0 {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, v) {
		t.Errorf("got %v", got)
	}
}

func TestVecCodecDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong dim")
		}
	}()
	VecCodec{Dim: 2}.Append(nil, []float64{1})
}

func TestVecCodecShortBuffer(t *testing.T) {
	if _, _, err := (VecCodec{Dim: 2}).Read(make([]byte, 8)); err == nil {
		t.Fatal("expected error")
	}
}

func TestLabelCountCodecRoundTrip(t *testing.T) {
	c := LabelCountCodec{}
	v := []LabelCount{{Label: 3, Count: 2.5}, {Label: 9, Count: 1}}
	buf := c.Append(nil, v)
	if len(buf) != c.Size(v) {
		t.Fatalf("size %d != %d", len(buf), c.Size(v))
	}
	got, rest, err := c.Read(buf)
	if err != nil || len(rest) != 0 {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, v) {
		t.Errorf("got %v", got)
	}
}

func TestLabelCountCodecEmpty(t *testing.T) {
	c := LabelCountCodec{}
	buf := c.Append(nil, nil)
	got, _, err := c.Read(buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestMergeLabelCounts(t *testing.T) {
	a := []LabelCount{{1, 2}, {3, 1}}
	b := []LabelCount{{1, 1}, {2, 5}, {4, 1}}
	got := MergeLabelCounts(a, b)
	want := []LabelCount{{1, 3}, {2, 5}, {3, 1}, {4, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestMergeLabelCountsSortedProperty(t *testing.T) {
	f := func(rawA, rawB []int32) bool {
		mk := func(raw []int32) []LabelCount {
			m := map[int32]float64{}
			for _, l := range raw {
				m[l]++
			}
			var out []LabelCount
			for l := range m {
				out = append(out, LabelCount{Label: l, Count: m[l]})
			}
			// Sort by label.
			for i := range out {
				for j := i + 1; j < len(out); j++ {
					if out[j].Label < out[i].Label {
						out[i], out[j] = out[j], out[i]
					}
				}
			}
			return out
		}
		got := MergeLabelCounts(mk(rawA), mk(rawB))
		total := 0.0
		for i, lc := range got {
			total += lc.Count
			if i > 0 && got[i-1].Label >= lc.Label {
				return false // must stay sorted and deduped
			}
		}
		return total == float64(len(rawA)+len(rawB))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWireRoundTrip(t *testing.T) {
	table := &replicaTable{
		nodes:    []int16{1, 3},
		pos:      []int32{10, 20},
		ftOnly:   []bool{false, true},
		mirrorOf: []int16{1},
	}
	edges := &rawEdges{
		src:       []graph.VertexID{5, 6, 7},
		wt:        []float64{0.5, 1.5, 2.5},
		srcMaster: []int16{0, 1, 2},
	}
	vc := Float64Codec{}
	buf := encodeRecoveryRecord(nil, vc, roleMaster, 7, 42, flagMaster|flagSelfish, 2,
		3, 7, 5, 0, 3.14, true, 9, table, edges)
	r := &reader{buf: buf}
	rec := decodeRecoveryRecord(r, vc)
	if r.err != nil {
		t.Fatal(r.err)
	}
	if rec.role != roleMaster || rec.pos != 7 || rec.id != 42 ||
		rec.flags != flagMaster|flagSelfish || rec.mirrorRank != 2 ||
		rec.masterNode != 3 || rec.masterPos != 7 ||
		rec.inDeg != 5 || rec.outDeg != 0 ||
		rec.value != 3.14 || !rec.lastActivate || rec.lastActivateIter != 9 {
		t.Errorf("rec = %+v", rec)
	}
	if !reflect.DeepEqual(rec.table, table) {
		t.Errorf("table = %+v", rec.table)
	}
	if !reflect.DeepEqual(rec.edges, edges) {
		t.Errorf("edges = %+v", rec.edges)
	}
	if r.remaining() != 0 {
		t.Errorf("%d bytes left over", r.remaining())
	}
}

func TestWireTruncated(t *testing.T) {
	vc := Float64Codec{}
	buf := encodeRecoveryRecord(nil, vc, roleReplica, 1, 2, 0, -1, 0, 0, 0, 0, 1.0, false, 0, nil, nil)
	for cut := 1; cut < len(buf); cut++ {
		r := &reader{buf: buf[:cut]}
		decodeRecoveryRecord(r, vc)
		if r.err == nil && r.remaining() == 0 {
			// Some prefixes decode fully by accident only if they are the
			// whole record, which cut < len(buf) excludes.
			t.Errorf("cut at %d decoded without error", cut)
		}
	}
}
