package core

import (
	"fmt"

	"imitator/internal/graph"
)

// Serve wire codec: the query protocol a remote client would speak. The
// in-process load generator and the CLI round-trip every query and answer
// through these so the encode/decode paths are exercised end to end; the
// decode side is bounds-checked like every other wire decoder in this
// package (wirebounds).

// EncodeQuery appends q's wire form to buf.
func EncodeQuery(buf []byte, q Query) []byte {
	buf = putU8(buf, uint8(q.Kind))
	buf = putU32(buf, uint32(q.Vertex))
	buf = putI32(buf, int32(q.K))
	buf = putI32(buf, int32(q.StalenessBound))
	return buf
}

// DecodeQuery parses one wire-encoded query; trailing bytes are an error.
func DecodeQuery(buf []byte) (Query, error) {
	r := &reader{buf: buf}
	q := Query{
		Kind:   QueryKind(r.u8()),
		Vertex: graph.VertexID(r.u32()),
	}
	q.K = int(r.i32())
	q.StalenessBound = int(r.i32())
	if r.err != nil {
		return Query{}, r.err
	}
	if r.remaining() != 0 {
		return Query{}, fmt.Errorf("core: query payload has %d trailing bytes", r.remaining())
	}
	return q, nil
}

// EncodeAnswer appends a's wire form to buf.
func EncodeAnswer(buf []byte, a Answer) []byte {
	buf = putU8(buf, uint8(a.Kind))
	buf = putU32(buf, uint32(a.Vertex))
	buf = putF64(buf, a.Value)
	buf = putI32(buf, int32(a.Epoch))
	buf = putI32(buf, int32(a.Frontier))
	buf = putI32(buf, int32(a.StalenessBound))
	buf = putI16(buf, int16(a.Node))
	buf = putBool(buf, a.FromReplica)
	buf = putU32(buf, uint32(len(a.TopK)))
	for _, e := range a.TopK {
		buf = putU32(buf, uint32(e.Vertex))
		buf = putF64(buf, e.Value)
	}
	buf = putU32(buf, uint32(len(a.Neighbors)))
	for _, v := range a.Neighbors {
		buf = putU32(buf, uint32(v))
	}
	return buf
}

// DecodeAnswer parses one wire-encoded answer; trailing bytes are an error.
func DecodeAnswer(buf []byte) (Answer, error) {
	r := &reader{buf: buf}
	a := Answer{
		Kind:   QueryKind(r.u8()),
		Vertex: graph.VertexID(r.u32()),
		Value:  r.f64(),
	}
	a.Epoch = int(r.i32())
	a.Frontier = int(r.i32())
	a.StalenessBound = int(r.i32())
	a.Node = int(r.i16())
	a.FromReplica = r.bool()
	n := int(r.u32())
	if n*12 > r.remaining() { // sanity bound: each rank entry is 12 bytes
		r.fail()
		return Answer{}, r.err
	}
	if n > 0 {
		a.TopK = make([]RankEntry, n)
		for i := 0; i < n; i++ {
			a.TopK[i].Vertex = graph.VertexID(r.u32())
			a.TopK[i].Value = r.f64()
		}
	}
	m := int(r.u32())
	if m*4 > r.remaining() { // sanity bound: each neighbor id is 4 bytes
		r.fail()
		return Answer{}, r.err
	}
	if m > 0 {
		a.Neighbors = make([]graph.VertexID, m)
		for i := 0; i < m; i++ {
			a.Neighbors[i] = graph.VertexID(r.u32())
		}
	}
	if r.err != nil {
		return Answer{}, r.err
	}
	if r.remaining() != 0 {
		return Answer{}, fmt.Errorf("core: answer payload has %d trailing bytes", r.remaining())
	}
	return a, nil
}
