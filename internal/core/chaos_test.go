package core_test

import (
	"errors"
	"testing"

	"imitator/internal/algorithms"
	"imitator/internal/core"
	"imitator/internal/datasets"
)

// crashAt builds a one-event chaos schedule fail-stopping nodes at an
// iteration boundary.
func crashAt(iter int, phase core.FailPhase, nodes ...int) []core.ChaosEvent {
	return []core.ChaosEvent{{Kind: core.ChaosCrash, Iteration: iter, Phase: phase, Nodes: nodes}}
}

// TestChaosCrashMatchesLegacy: a ChaosCrash detected through the
// heartbeat monitor must be indistinguishable — values, simulated time,
// traffic — from the same failure injected through the legacy synchronous
// Config.Failures path, since both charge the same detection window.
func TestChaosCrashMatchesLegacy(t *testing.T) {
	g := datasets.Tiny(600, 3600, 90)
	for _, tc := range []struct {
		mode core.Mode
		rec  core.RecoveryKind
	}{
		{core.EdgeCutMode, core.RecoverRebirth},
		{core.EdgeCutMode, core.RecoverMigration},
		{core.VertexCutMode, core.RecoverRebirth},
		{core.VertexCutMode, core.RecoverMigration},
	} {
		legacy := ftConfig(tc.mode, 6, 8, 2, tc.rec)
		legacy.Failures = failAt(3, core.FailBeforeBarrier, 1)
		want := runPR(t, legacy, g)

		chaos := ftConfig(tc.mode, 6, 8, 2, tc.rec)
		chaos.Chaos = crashAt(3, core.FailBeforeBarrier, 1)
		got := runPR(t, chaos, g)

		label := tc.mode.String() + "/" + tc.rec.String()
		valuesEqual(t, label, got.Values, want.Values, 0)
		if got.SimSeconds != want.SimSeconds {
			t.Fatalf("%s: SimSeconds %v != legacy %v", label, got.SimSeconds, want.SimSeconds)
		}
		if got.Metrics.TotalBytes() != want.Metrics.TotalBytes() {
			t.Fatalf("%s: bytes %d != legacy %d", label, got.Metrics.TotalBytes(), want.Metrics.TotalBytes())
		}
		if len(got.Recoveries) != len(want.Recoveries) {
			t.Fatalf("%s: %d recoveries != legacy %d", label, len(got.Recoveries), len(want.Recoveries))
		}
	}
}

// TestChaosCrashDuringRecovery kills a second node when the first recovery
// reaches a given phase label, for every mode x strategy x phase the
// campaign generator draws from; the restarted recovery must still converge
// to the fault-free answer (§5.3.2).
func TestChaosCrashDuringRecovery(t *testing.T) {
	g := datasets.Tiny(700, 4200, 91)
	for _, tc := range []struct {
		mode   core.Mode
		rec    core.RecoveryKind
		during string
		tol    float64
	}{
		{core.EdgeCutMode, core.RecoverRebirth, "rebirth:join", 0},
		{core.EdgeCutMode, core.RecoverRebirth, "rebirth:reload", 0},
		{core.EdgeCutMode, core.RecoverRebirth, "rebirth:reconstruct", 0},
		{core.EdgeCutMode, core.RecoverMigration, "migration:promote", 0},
		{core.EdgeCutMode, core.RecoverMigration, "migration:moved", 0},
		{core.EdgeCutMode, core.RecoverMigration, "migration:edges", 0},
		{core.EdgeCutMode, core.RecoverMigration, "migration:replicas", 0},
		{core.EdgeCutMode, core.RecoverMigration, "migration:repair", 0},
		{core.VertexCutMode, core.RecoverRebirth, "rebirth:join", 0},
		{core.VertexCutMode, core.RecoverRebirth, "rebirth:reload", 0},
		{core.VertexCutMode, core.RecoverRebirth, "rebirth:reconstruct", 0},
		{core.VertexCutMode, core.RecoverMigration, "migration:promote", 1e-9},
		{core.VertexCutMode, core.RecoverMigration, "migration:moved", 1e-9},
		{core.VertexCutMode, core.RecoverMigration, "migration:edges", 1e-9},
		{core.VertexCutMode, core.RecoverMigration, "migration:replicas", 1e-9},
		{core.VertexCutMode, core.RecoverMigration, "migration:repair", 1e-9},
	} {
		label := tc.mode.String() + "/" + tc.rec.String() + "/" + tc.during
		base := ftConfig(tc.mode, 6, 8, 2, tc.rec)
		want := runPR(t, base, g)

		cfg := base
		cfg.Chaos = []core.ChaosEvent{
			{Kind: core.ChaosCrash, Iteration: 3, Phase: core.FailBeforeBarrier, Nodes: []int{1}},
			{Kind: core.ChaosCrashDuringRecovery, During: tc.during, Nodes: []int{4}},
		}
		got := runPR(t, cfg, g)
		valuesEqual(t, label, got.Values, want.Values, tc.tol)
		if len(got.Recoveries) == 0 {
			t.Fatalf("%s: no recovery reported", label)
		}
		last := got.Recoveries[len(got.Recoveries)-1]
		if len(last.Failed) != 2 {
			t.Fatalf("%s: final recovery covered %v, want both victims", label, last.Failed)
		}
		if last.Bytes <= 0 {
			t.Fatalf("%s: final recovery moved no bytes", label)
		}
	}
}

// TestChaosExhaustionFallback: with the standby pool empty and
// RebirthFallback set, a Rebirth recovery must complete as a Migration and
// still match the fault-free run.
func TestChaosExhaustionFallback(t *testing.T) {
	g := datasets.Tiny(500, 3000, 92)
	for _, tc := range []struct {
		mode core.Mode
		tol  float64
	}{
		{core.EdgeCutMode, 0},
		{core.VertexCutMode, 1e-9}, // migration reorders vertex-cut gather merges
	} {
		base := ftConfig(tc.mode, 6, 8, 2, core.RecoverRebirth)
		want := runPR(t, base, g)

		cfg := base
		cfg.MaxRebirths = 0
		cfg.RebirthFallback = true
		cfg.Chaos = crashAt(3, core.FailBeforeBarrier, 2)
		got := runPR(t, cfg, g)
		valuesEqual(t, tc.mode.String(), got.Values, want.Values, tc.tol)
		if len(got.Recoveries) != 1 {
			t.Fatalf("%s: %d recoveries, want 1", tc.mode, len(got.Recoveries))
		}
		r := got.Recoveries[0]
		if r.Kind != "migration" || !r.Fallback {
			t.Fatalf("%s: recovery = %+v, want migration with Fallback", tc.mode, r)
		}
	}
}

// TestChaosExhaustionWithoutFallback: same schedule, no fallback — the run
// must fail with the typed standby-exhaustion error, which also matches the
// generic unrecoverable sentinel.
func TestChaosExhaustionWithoutFallback(t *testing.T) {
	g := datasets.Tiny(300, 1800, 93)
	cfg := ftConfig(core.EdgeCutMode, 4, 6, 1, core.RecoverRebirth)
	cfg.MaxRebirths = 0
	cfg.Chaos = crashAt(2, core.FailBeforeBarrier, 1)
	cl, err := core.NewCluster[float64, float64](cfg, g, algorithms.NewPageRank(g.NumVertices()))
	if err != nil {
		t.Fatal(err)
	}
	_, err = cl.Run()
	if !errors.Is(err, core.ErrNoStandby) {
		t.Fatalf("err = %v, want ErrNoStandby", err)
	}
	if !errors.Is(err, core.ErrUnrecoverable) {
		t.Fatalf("err = %v, want ErrUnrecoverable in chain", err)
	}
}

// TestChaosBeyondK: losing more nodes than replication tolerates surfaces
// the typed too-many-failures error.
func TestChaosBeyondK(t *testing.T) {
	g := datasets.Tiny(600, 3600, 94)
	cfg := ftConfig(core.EdgeCutMode, 6, 6, 1, core.RecoverRebirth)
	cfg.Chaos = crashAt(3, core.FailBeforeBarrier, 1, 2)
	cl, err := core.NewCluster[float64, float64](cfg, g, algorithms.NewPageRank(g.NumVertices()))
	if err != nil {
		t.Fatal(err)
	}
	_, err = cl.Run()
	if !errors.Is(err, core.ErrTooManyFailures) {
		t.Fatalf("err = %v, want ErrTooManyFailures", err)
	}
	if !errors.Is(err, core.ErrUnrecoverable) {
		t.Fatalf("err = %v, want ErrUnrecoverable in chain", err)
	}
}

// TestChaosDegradationSlowsButPreservesValues: link slowdowns and delay
// bursts cost simulated time without perturbing a single float of the
// computation.
func TestChaosDegradationSlowsButPreservesValues(t *testing.T) {
	g := datasets.Tiny(500, 3000, 95)
	base := core.DefaultConfig(core.EdgeCutMode, 4)
	base.MaxIter = 6
	want := runPR(t, base, g)

	slow := base
	slow.Chaos = []core.ChaosEvent{
		{Kind: core.ChaosSlowLink, Iteration: 1, From: 0, To: 2, Factor: 8},
		{Kind: core.ChaosDelayBurst, Iteration: 3, Seconds: 0.25},
	}
	got := runPR(t, slow, g)
	valuesEqual(t, "degraded", got.Values, want.Values, 0)
	if got.SimSeconds <= want.SimSeconds {
		t.Fatalf("degradation did not cost time: %v <= %v", got.SimSeconds, want.SimSeconds)
	}
	if got.Metrics.TotalBytes() != want.Metrics.TotalBytes() {
		t.Fatalf("degradation changed traffic accounting: %d != %d",
			got.Metrics.TotalBytes(), want.Metrics.TotalBytes())
	}
}

// TestChaosValidate covers schedule validation sentinels.
func TestChaosValidate(t *testing.T) {
	g := datasets.Tiny(100, 600, 96)
	for _, tc := range []struct {
		name string
		mut  func(*core.Config)
	}{
		{"crash iteration out of range", func(c *core.Config) {
			c.Chaos = crashAt(99, core.FailBeforeBarrier, 1)
		}},
		{"crash node out of range", func(c *core.Config) {
			c.Chaos = crashAt(2, core.FailBeforeBarrier, 17)
		}},
		{"slow link self loop", func(c *core.Config) {
			c.Chaos = []core.ChaosEvent{{Kind: core.ChaosSlowLink, Iteration: 1, From: 2, To: 2, Factor: 4}}
		}},
		{"slow link bad factor", func(c *core.Config) {
			c.Chaos = []core.ChaosEvent{{Kind: core.ChaosSlowLink, Iteration: 1, From: 0, To: 1, Factor: 0.5}}
		}},
		{"negative delay", func(c *core.Config) {
			c.Chaos = []core.ChaosEvent{{Kind: core.ChaosDelayBurst, Iteration: 1, Seconds: -1}}
		}},
		{"crash without recovery", func(c *core.Config) {
			c.Recovery = core.RecoverNone
			c.FT = core.FTConfig{}
			c.Chaos = crashAt(2, core.FailBeforeBarrier, 1)
		}},
	} {
		cfg := ftConfig(core.EdgeCutMode, 4, 6, 1, core.RecoverRebirth)
		tc.mut(&cfg)
		if _, err := core.NewCluster[float64, float64](cfg, g, algorithms.NewPageRank(g.NumVertices())); !errors.Is(err, core.ErrInvalidSchedule) {
			t.Fatalf("%s: err = %v, want ErrInvalidSchedule", tc.name, err)
		}
	}
}
