package core_test

import (
	"testing"

	"imitator/internal/algorithms"
	"imitator/internal/core"
	"imitator/internal/datasets"
)

// incCfg builds a checkpoint-recovery config with optional incremental
// snapshots.
func incCfg(iters, interval int, incremental bool) core.Config {
	cfg := core.DefaultConfig(core.EdgeCutMode, 5)
	cfg.MaxIter = iters
	cfg.FT = core.FTConfig{}
	cfg.Recovery = core.RecoverCheckpoint
	cfg.Checkpoint = core.CheckpointConfig{
		Enabled: true, Interval: interval,
		Incremental: incremental, FullEvery: 3,
	}
	cfg.MaxRebirths = 4
	return cfg
}

// TestIncrementalCheckpointCheaperForSparseUpdates: with SSSP's shrinking
// active set, incremental snapshots write far fewer bytes than full ones.
func TestIncrementalCheckpointCheaperForSparseUpdates(t *testing.T) {
	g := datasets.Tiny(800, 4800, 505)
	run := func(incremental bool) *core.Result[float64] {
		cfg := incCfg(30, 1, incremental)
		cl, err := core.NewCluster[float64, float64](cfg, g, algorithms.NewSSSP(0))
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	full := run(false)
	inc := run(true)
	if inc.Metrics.DFSWriteBytes >= full.Metrics.DFSWriteBytes {
		t.Errorf("incremental wrote %d bytes, full wrote %d — no saving",
			inc.Metrics.DFSWriteBytes, full.Metrics.DFSWriteBytes)
	}
	if inc.CheckpointSeconds >= full.CheckpointSeconds {
		t.Errorf("incremental checkpointing %.3fs not below full %.3fs",
			inc.CheckpointSeconds, full.CheckpointSeconds)
	}
}

// TestIncrementalCheckpointRecoveryEquivalence: recovering from a chain of
// deltas yields exactly the failure-free answer.
func TestIncrementalCheckpointRecoveryEquivalence(t *testing.T) {
	g := datasets.Tiny(600, 3600, 506)
	for _, algo := range []string{"pagerank", "sssp"} {
		run := func(fail bool) []float64 {
			cfg := incCfg(12, 2, true)
			if fail {
				cfg.Failures = []core.FailureSpec{{
					Iteration: 9, Phase: core.FailBeforeBarrier, Nodes: []int{2},
				}}
			}
			var res *core.Result[float64]
			var err error
			var cl *core.Cluster[float64, float64]
			if algo == "pagerank" {
				cl, err = core.NewCluster[float64, float64](cfg, g, algorithms.NewPageRank(g.NumVertices()))
			} else {
				cl, err = core.NewCluster[float64, float64](cfg, g, algorithms.NewSSSP(0))
			}
			if err != nil {
				t.Fatal(err)
			}
			if res, err = cl.Run(); err != nil {
				t.Fatal(err)
			}
			return res.Values
		}
		want := run(false)
		got := run(true)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%s: vertex %d: %v != %v", algo, v, got[v], want[v])
			}
		}
	}
}

// TestIncrementalChainDepthBounded: FullEvery bounds how many snapshots a
// recovery reads.
func TestIncrementalChainDepthBounded(t *testing.T) {
	g := datasets.Tiny(400, 2400, 507)
	cfg := incCfg(14, 1, true) // FullEvery=3: fulls at epochs 0,3,6,9,12
	cfg.Failures = []core.FailureSpec{{
		Iteration: 13, Phase: core.FailBeforeBarrier, Nodes: []int{1},
	}}
	cl, err := core.NewCluster[float64, float64](cfg, g, algorithms.NewPageRank(g.NumVertices()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Recoveries) != 1 {
		t.Fatalf("recoveries = %d", len(res.Recoveries))
	}
	// Failure at iter 13 => last snapshot epoch 13, chain 12..13: replay 0.
	if res.Recoveries[0].ReplayIters != 0 {
		t.Errorf("ReplayIters = %d, want 0 (snapshot every iter)", res.Recoveries[0].ReplayIters)
	}
}
