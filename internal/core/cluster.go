package core

import (
	"fmt"
	"sync"

	"imitator/internal/bufpool"
	"imitator/internal/coord"
	"imitator/internal/costmodel"
	"imitator/internal/dfs"
	"imitator/internal/graph"
	"imitator/internal/metrics"
	"imitator/internal/netsim"
	"imitator/internal/partition"
)

// nodeBodies holds a node's pre-bound chunked phase bodies. They are built
// once per node (initNodeScratch): a closure literal passed to chunked
// escapes — the multi-worker path hands the body to goroutines — so literals
// at the superstep call sites would heap-allocate every phase. The
// annotation makes every literal bound to these fields a hotalloc root.
//
//imitator:hotpath
type nodeBodies struct {
	commit    func(st *stager, lo, hi int)
	ecCompute func(st *stager, lo, hi int)
	syncStage func(st *stager, lo, hi int)
	ecRecv    func(st *stager, lo, hi int)
	vcR1Stage func(st *stager, lo, hi int)
	vcR1Reset func(st *stager, lo, hi int)
	vcGather  func(st *stager, lo, hi int)
	vcApply   func(st *stager, lo, hi int)
	vcRecv    func(st *stager, lo, hi int)
}

// node is one simulated machine's runtime state.
type node[V, A any] struct {
	id      int
	alive   bool
	entries []vertexEntry[V]
	index   map[graph.VertexID]int32
	met     *metrics.Node

	// localEdges counts edges stored on this node (for cost accounting).
	localEdges int

	// scratch: per-destination send buffers, reused across rounds.
	sendBuf [][]byte
	// scratch: activation notices staged out-of-round (vertex-cut scatter),
	// flushed in their own round.
	noticeBuf [][]byte
	// scratch: per-superstep compute cost in simulated seconds.
	phaseCost float64

	// pool is the cluster's shared wire-buffer pool (for lazy staging).
	pool *bufpool.Pool
	// stagers are the retained per-worker staging areas (width
	// Config.WorkersPerNode); bounds is chunked's reusable chunk list.
	stagers []*stager
	bounds  [][2]int
	// bodies are the pre-bound chunked phase bodies.
	bodies nodeBodies
	// barrierState receives this node's EnterBarrier result each phase.
	barrierState coord.BarrierState
	// recvMsgs passes the current round's messages into pre-bound bodies.
	recvMsgs []netsim.Message

	// route is the precomputed flat sync-routing table (master -> replica
	// destinations in entry order); routeDirty forces a rebuild before the
	// next phase that consults it (recovery reshapes the tables).
	route      syncRoute
	routeDirty bool

	// localPart/mergedPart are the vertex-cut gather scratch, retained
	// across supersteps and cleared in the phase prologue.
	localPart  []gatherPartial[A]
	mergedPart []gatherPartial[A]
}

func (n *node[V, A]) pos(id graph.VertexID) (int32, bool) {
	p, ok := n.index[id]
	return p, ok
}

func (n *node[V, A]) entry(id graph.VertexID) *vertexEntry[V] {
	if p, ok := n.index[id]; ok {
		return &n.entries[p]
	}
	return nil
}

// failKey identifies one scheduled failure-injection point.
type failKey struct {
	iter  int
	phase FailPhase
}

// phaseFns holds the cluster-level pre-bound phase functions, built once by
// bindPhases and handed to runPhase by the superstep drivers. Pre-binding
// keeps the steady-state loop from allocating a closure per phase, and the
// annotation makes every literal assigned to these fields a hotalloc root —
// the analyzer then walks exactly the code the zero-alloc discipline covers.
//
//imitator:hotpath
type phaseFns[V, A any] struct {
	barrier     func(*node[V, A])
	flushSend   func(*node[V, A])
	flushNotice func(*node[V, A])
	commit      func(*node[V, A])
	rollback    func(*node[V, A])
	ecCompute   func(*node[V, A])
	syncStage   func(*node[V, A]) // doubles as the vertex-cut R3 encode phase
	ecRecv      func(*node[V, A])
	vcR1Stage   func(*node[V, A])
	vcR1Recv    func(*node[V, A])
	vcGather    func(*node[V, A])
	vcMerge     func(*node[V, A])
	vcRecv      func(*node[V, A])
	vcNotice    func(*node[V, A])
}

// Cluster is a running job: the simulated machines, interconnect, DFS,
// coordination service and the loaded, partitioned graph.
type Cluster[V, A any] struct {
	cfg  Config
	g    *graph.Graph
	prog Program[V, A]
	vc   Codec[V]
	ac   Codec[A]

	nodes []*node[V, A]
	net   *netsim.Network
	dfs   *dfs.DFS
	coord *coord.Coordinator
	met   *metrics.Cluster
	clock costmodel.Clock

	// pool recycles wire buffers (send, notice, checkpoint encode) across
	// rounds; see internal/bufpool.
	pool *bufpool.Pool

	// aliveList caches the alive nodes; aliveDirty is set whenever
	// membership changes (failure injection, rebirth, checkpoint rebuild).
	aliveList  []*node[V, A]
	aliveDirty bool

	// Persistent phase workers, two pools sharing phaseFn/phaseWG:
	// work is the COMPUTE pool, capped at min(NumNodes, HostParallelism)
	// goroutines — compute phases never block across nodes, so a 64-node
	// simulation on an 8-core host runs 8 phase goroutines instead of
	// thrashing the scheduler with 64. workBarrier is the full-width pool
	// (NumNodes goroutines) reserved for barrier phases, which need every
	// alive node blocked in coord.EnterBarrier concurrently; when the cap
	// doesn't bite, both fields alias one pool.
	work        chan *node[V, A]
	workBarrier chan *node[V, A]
	phaseFn     func(*node[V, A])
	phaseWG     sync.WaitGroup
	// chunkSlots caps the goroutines chunked()/chunkEncode() use to execute
	// one node's WorkersPerNode chunks, sized so phase pool x chunk slots
	// stays at about HostParallelism. The chunk COUNT (sim semantics, cost
	// model) is untouched — this is pure host scheduling.
	chunkSlots int

	// fns are the pre-bound phase functions (built once by bindPhases);
	// flushKind/curIter/always are the per-phase parameters they read.
	fns       phaseFns[V, A]
	flushKind netsim.Kind
	curIter   int
	always    bool

	// masterLoc mirrors the coordination service's master directory: the
	// node currently hosting each vertex's master (updated by Migration).
	masterLoc []int16

	// Retained partitioning (for checkpoint-recovery rebuilds and stats).
	ec   *partition.EdgeCut
	vcut *partition.VertexCut

	// strat is the configured fault-tolerance strategy: the run loop talks
	// to it through the ftStrategy hooks and never branches on
	// Config.Recovery itself.
	strat ftStrategy[V, A]

	// flog is the superstep-log runtime, nil unless Config.Logged.Enabled.
	flog *flogState

	// pristine retains each node's post-load state when checkpointing or
	// logging is enabled, so a standby newbie can rebuild a crashed node's
	// immutable topology (the metadata snapshot's content).
	pristine []*pristineNode[V]
	// replayWatch accounts checkpoint-recovery replay time.
	replayWatch *replayWatch

	iter         int
	rebirthsUsed int
	ckptEpoch    int          // iteration captured by the last completed checkpoint
	ckptHistory  []ckptRecord // snapshot chain (epoch, full/incremental)

	// Migration-restart bookkeeping (§5.3.2): when a second failure aborts a
	// migration pass mid-flight, the next attempt must finish what the
	// interrupted one started. migPromoted carries promotions whose edges, FT
	// repair or activation replay may still be pending; migFilesDone lists
	// edge-ckpt files whose edges are already attached on a survivor. Both
	// are cleared when a migration pass completes.
	migPromoted  map[masterKey]bool
	migFilesDone map[string]bool

	// selfishOptOn is the effective §4.4 switch (configured AND supported
	// by the program).
	selfishOptOn bool

	// Stats for the figures.
	extraReplicas        int // FT-only replicas added at load
	extraReplicasSelfish int // of which belong to selfish vertices (§4.4)
	totalPresences       int // all vertex presences after FT extension
	loadSeconds          float64
	ckptSeconds          float64
	ckptCount            int
	ckptBytes            int64
	trace                []TraceEvent
	recoveries           []RecoveryReport

	// chaos drives a Config.Chaos schedule; nil when no schedule is set, so
	// fault-free runs never touch it (bit-identical timing either way).
	chaos *chaosRuntime

	// serve is the live-query runtime, nil unless Config.Serve.Enabled; the
	// run loop publishes committed snapshots into it (serve.go).
	serve *serveState[V]

	// testHook, when set, runs between recovery phases (failure-injection
	// tests for §5.3.2).
	testHook func(phase string)
}

// NewCluster loads, partitions and replicates the graph per cfg, returning
// a cluster ready to Run.
func NewCluster[V, A any](cfg Config, g *graph.Graph, prog Program[V, A]) (*Cluster[V, A], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.FT.Enabled && cfg.FT.SelfishOpt && prog.CanRecomputeSelfish() && !prog.AlwaysActive() {
		return nil, fmt.Errorf("core: selfish recomputation requires an always-active program")
	}
	var net *netsim.Network
	var err error
	if cfg.Transport == TransportTCP {
		net, err = netsim.NewTCP(cfg.NumNodes, cfg.Cost)
	} else {
		net, err = netsim.New(cfg.NumNodes, cfg.Cost)
	}
	if err != nil {
		return nil, err
	}
	if cfg.ChaosHasOmission() {
		// The lossy-channel + reliable-delivery decorator exists only for
		// schedules that need it: the reliable path stays byte-identical.
		net.EnableOmission(cfg.ChaosSeed)
	}
	d, err := dfs.New(cfg.NumNodes, cfg.Cost)
	if err != nil {
		return nil, err
	}
	co, err := coord.New(cfg.NumNodes)
	if err != nil {
		return nil, err
	}
	c := &Cluster[V, A]{
		cfg:    cfg,
		g:      g,
		prog:   prog,
		vc:     prog.ValueCodec(),
		ac:     prog.AccCodec(),
		net:    net,
		dfs:    d,
		coord:  co,
		met:    metrics.NewCluster(cfg.NumNodes),
		pool:   bufpool.New(),
		always: prog.AlwaysActive(),
		selfishOptOn: cfg.FT.Enabled && cfg.FT.SelfishOpt &&
			prog.CanRecomputeSelfish() && prog.AlwaysActive(),
	}
	c.strat, err = newFTStrategy(c)
	if err != nil {
		return nil, err
	}
	// Divide the host budget between the phase pool (one goroutine per node,
	// capped) and each node's chunk execution: with more nodes than cores
	// the node-level parallelism already saturates the host, so chunks run
	// inline; with few nodes, leftover cores go to intra-node chunk slots.
	hostWidth := cfg.hostParallelism()
	computeWidth := hostWidth
	if computeWidth > cfg.NumNodes {
		computeWidth = cfg.NumNodes
	}
	c.chunkSlots = hostWidth / computeWidth
	if c.chunkSlots < 1 {
		c.chunkSlots = 1
	}
	c.bindPhases()
	if err := c.load(); err != nil {
		c.stopWorkers()
		return nil, err
	}
	if cfg.Serve.Enabled {
		if err := c.serveInit(); err != nil {
			c.stopWorkers()
			return nil, err
		}
	}
	// Park the phase workers until Run; a cluster that is built but never
	// run must not leak goroutines.
	c.stopWorkers()
	return c, nil
}

// bindPhases builds the cluster-level pre-bound phase functions once.
func (c *Cluster[V, A]) bindPhases() {
	c.fns.barrier = func(nd *node[V, A]) {
		nd.barrierState = c.coord.EnterBarrier(nd.id)
	}
	c.fns.flushSend = func(nd *node[V, A]) {
		for dst, buf := range nd.sendBuf {
			if len(buf) == 0 {
				continue
			}
			if c.net.Failed(dst) {
				// Send would silently drop it; reclaim the buffer instead.
				c.pool.Put(buf)
			} else {
				c.net.Send(nd.id, dst, c.flushKind, buf)
			}
			nd.sendBuf[dst] = nil
		}
	}
	c.fns.flushNotice = func(nd *node[V, A]) {
		for dst, buf := range nd.noticeBuf {
			if len(buf) == 0 {
				continue
			}
			if c.net.Failed(dst) {
				c.pool.Put(buf)
			} else {
				c.net.Send(nd.id, dst, netsim.KindActivation, buf)
			}
			nd.noticeBuf[dst] = nil
		}
	}
	c.fns.commit = func(nd *node[V, A]) {
		c.chunked(nd, len(nd.entries), nd.bodies.commit)
	}
	c.fns.rollback = func(nd *node[V, A]) {
		for i := range nd.entries {
			nd.entries[i].clearPending()
		}
		c.net.Drop(nd.id)
		for dst, buf := range nd.sendBuf {
			if cap(buf) > 0 {
				c.pool.Put(buf)
			}
			nd.sendBuf[dst] = nil
		}
		for dst, buf := range nd.noticeBuf {
			if cap(buf) > 0 {
				c.pool.Put(buf)
			}
			nd.noticeBuf[dst] = nil
		}
	}
	c.bindEdgeCutPhases()
	c.bindVertexCutPhases()
}

// initNodeScratch wires a freshly constructed node into the cluster's
// buffer, stager and routing machinery. Every node-creation site (load,
// rebirth, checkpoint rebuild) must call it.
func (c *Cluster[V, A]) initNodeScratch(nd *node[V, A]) {
	width := c.cfg.NumNodes
	nd.pool = c.pool
	nd.sendBuf = make([][]byte, width)
	nd.noticeBuf = make([][]byte, width)
	nd.stagers = make([]*stager, c.cfg.WorkersPerNode)
	for i := range nd.stagers {
		nd.stagers[i] = &stager{
			pool:   c.pool,
			send:   make([][]byte, width),
			notice: make([][]byte, width),
		}
	}
	nd.routeDirty = true
	c.bindNodeBodies(nd)
	c.aliveDirty = true
}

// bindNodeBodies builds nd's pre-bound chunked bodies.
func (c *Cluster[V, A]) bindNodeBodies(nd *node[V, A]) {
	nd.bodies.commit = func(_ *stager, lo, hi int) {
		iter := int32(c.curIter)
		always := c.always
		for i := lo; i < hi; i++ {
			e := &nd.entries[i]
			if e.hasPending {
				e.value = e.pendingValue
				e.lastActivate = e.pendingScatter
				e.lastActivateIter = e.pendingScatterI
				e.hasPending = false
				e.lastTouchedIter = iter
			}
			if e.isMaster() {
				newActive := e.pendingActive || always
				if newActive != e.active {
					e.lastTouchedIter = iter
				}
				e.active = newActive
			}
			e.pendingActive = false
			e.pendingScatter = false
		}
	}
	c.bindEdgeCutBodies(nd)
	c.bindVertexCutBodies(nd)
}

// ensureWorkers lazily spawns the persistent phase workers: a compute pool
// of min(NumNodes, HostParallelism) goroutines for ordinary phases, plus —
// only when that cap bites — a full NumNodes-wide pool reserved for barrier
// phases, which block every alive node in coord.EnterBarrier concurrently
// and would deadlock on a narrower pool. Every other phase body is
// non-blocking across nodes (compute, flush into netsim buffers, coord KV
// ops), so the capped pool cannot deadlock and stops oversubscribing the
// host when NumNodes >> cores.
func (c *Cluster[V, A]) ensureWorkers() {
	if c.work != nil {
		return
	}
	computeWidth := c.cfg.hostParallelism()
	if computeWidth > c.cfg.NumNodes {
		computeWidth = c.cfg.NumNodes
	}
	// Workers range over a captured local, never the c.work field: a worker
	// that received no work before stopWorkers nils the field would otherwise
	// race with that write (and could block forever on a nil channel).
	//imitator:hotalloc-ok one-time pool spawn, guarded by the c.work nil check above
	work := make(chan *node[V, A], c.cfg.NumNodes)
	c.work = work
	for i := 0; i < computeWidth; i++ {
		//imitator:hotalloc-ok one-time pool spawn, guarded by the c.work nil check above
		go func() {
			for nd := range work {
				c.phaseFn(nd)
				c.phaseWG.Done()
			}
		}()
	}
	if computeWidth == c.cfg.NumNodes {
		c.workBarrier = work
		return
	}
	//imitator:hotalloc-ok one-time pool spawn, guarded by the c.work nil check above
	workBarrier := make(chan *node[V, A], c.cfg.NumNodes)
	c.workBarrier = workBarrier
	for i := 0; i < c.cfg.NumNodes; i++ {
		//imitator:hotalloc-ok one-time pool spawn, guarded by the c.work nil check above
		go func() {
			for nd := range workBarrier {
				c.phaseFn(nd)
				c.phaseWG.Done()
			}
		}()
	}
}

// stopWorkers shuts the phase workers down; runPhase restarts them on
// demand.
func (c *Cluster[V, A]) stopWorkers() {
	if c.work != nil {
		if c.workBarrier != nil && c.workBarrier != c.work {
			close(c.workBarrier)
		}
		close(c.work)
		c.work = nil
		c.workBarrier = nil
	}
}

// runPhase runs fn once per alive node on the persistent workers and waits.
// phaseFn is written while all workers are parked (the previous phase's
// Wait returned), and the channel sends publish it.
func (c *Cluster[V, A]) runPhase(fn func(n *node[V, A])) {
	c.runPhaseOn(fn, false)
}

// runBarrierPhase is runPhase on the full-width pool; only phases that
// block until every alive node arrives (coord.EnterBarrier) may need it.
func (c *Cluster[V, A]) runBarrierPhase(fn func(n *node[V, A])) {
	c.runPhaseOn(fn, true)
}

func (c *Cluster[V, A]) runPhaseOn(fn func(n *node[V, A]), barrier bool) {
	c.ensureWorkers()
	alive := c.aliveNodes()
	c.phaseFn = fn
	c.phaseWG.Add(len(alive))
	pool := c.work
	if barrier {
		pool = c.workBarrier
	}
	for _, n := range alive {
		pool <- n
	}
	c.phaseWG.Wait()
}

// aliveNodes returns the running nodes (cached; membership changes set
// aliveDirty).
func (c *Cluster[V, A]) aliveNodes() []*node[V, A] {
	if c.aliveDirty {
		c.aliveList = c.aliveList[:0]
		for _, n := range c.nodes {
			if n != nil && n.alive {
				c.aliveList = append(c.aliveList, n)
			}
		}
		c.aliveDirty = false
	}
	return c.aliveList
}

// eachAlive runs fn concurrently for every alive node and waits. Cold paths
// pass closure literals; hot paths pass the pre-bound fns fields.
func (c *Cluster[V, A]) eachAlive(fn func(n *node[V, A])) {
	c.runPhase(fn)
}

// barrier has every alive node enter the coordination barrier and returns
// the (shared) barrier state.
func (c *Cluster[V, A]) barrier() coord.BarrierState {
	c.runBarrierPhase(c.fns.barrier)
	alive := c.aliveNodes()
	if len(alive) == 0 {
		return coord.BarrierState{}
	}
	return alive[0].barrierState
}

// injectFailures kills the given nodes (fail-stop): they stop running,
// their traffic is dropped, and the coordinator announces them at the next
// barrier. The simulated clock advances by the heartbeat detection delay.
func (c *Cluster[V, A]) injectFailures(nodes []int) {
	for _, id := range nodes {
		if n := c.nodes[id]; n != nil && n.alive {
			n.alive = false
			c.net.SetFailed(id, true)
			c.coord.MarkFailed(id)
		}
	}
	c.aliveDirty = true
	c.clock.Advance(c.cfg.Cost.DetectionTime())
}

// flushSendRound transmits every node's pending per-destination buffers with
// the given kind, then completes the messaging round and advances the clock
// by the slowest node's communication cost. Buffer ownership transfers to
// the network; the receive side returns payloads to the pool after decode.
func (c *Cluster[V, A]) flushSendRound(kind netsim.Kind) float64 {
	c.flushKind = kind
	c.runPhase(c.fns.flushSend)
	return c.finishRound()
}

// flushNoticeRound transmits the staged activation notices as their own
// messaging round.
func (c *Cluster[V, A]) flushNoticeRound() float64 {
	c.runPhase(c.fns.flushNotice)
	return c.finishRound()
}

func (c *Cluster[V, A]) finishRound() float64 {
	costs, fabric := c.net.FinishRound()
	var span costmodel.Span
	span.Observe(fabric)
	for _, cost := range costs {
		span.Observe(cost)
	}
	c.clock.Advance(span.Max())
	return span.Max()
}

// recycleMsgs returns a received round's payloads to the buffer pool.
// Delivery hands payload ownership to the receiver, and every decode path
// copies what it keeps, so the buffers are dead once decoded.
func (c *Cluster[V, A]) recycleMsgs(msgs []netsim.Message) {
	for i := range msgs {
		if cap(msgs[i].Payload) > 0 {
			c.pool.Put(msgs[i].Payload)
		}
		msgs[i].Payload = nil
	}
}

// stage appends encoded bytes to n's buffer for destination dst, seeding
// empty slots from the pool.
func (n *node[V, A]) stage(dst int, encode func(buf []byte) []byte) {
	buf := n.sendBuf[dst]
	if buf == nil && n.pool != nil {
		buf = n.pool.Get()
	}
	n.sendBuf[dst] = encode(buf)
}

// stageNotice appends to the out-of-round activation notice buffer.
func (n *node[V, A]) stageNotice(dst int, encode func(buf []byte) []byte) {
	buf := n.noticeBuf[dst]
	if buf == nil && n.pool != nil {
		buf = n.pool.Get()
	}
	n.noticeBuf[dst] = encode(buf)
}

// commit installs all staged state on every alive node: pending values,
// scatter flags and the next superstep's active set (Algorithm 1 line 14).
func (c *Cluster[V, A]) commit(iter int) {
	c.curIter = iter
	c.runPhase(c.fns.commit)
}

// rollback discards staged state and undelivered messages on every alive
// node (Algorithm 1 line 9: the iteration will re-execute). Staged buffers
// go back to the pool.
func (c *Cluster[V, A]) rollback() {
	c.runPhase(c.fns.rollback)
}

// Run executes the job to MaxIter supersteps, injecting scheduled failures
// and recovering per the configured strategy.
func (c *Cluster[V, A]) Run() (*Result[V], error) {
	defer c.net.Close()
	defer c.stopWorkers()
	// The failure schedule is consumed by deleting fired keys, so an
	// iteration re-executed after rollback does not re-inject.
	schedule := make(map[failKey][]int, len(c.cfg.Failures))
	for _, f := range c.cfg.Failures {
		k := failKey{f.Iteration, f.Phase}
		schedule[k] = append(schedule[k], f.Nodes...)
	}
	maybeInject := func(iter int, phase FailPhase) {
		k := failKey{iter, phase}
		nodes, ok := schedule[k]
		if !ok {
			return
		}
		delete(schedule, k)
		if len(nodes) > 0 {
			c.injectFailures(nodes)
		}
	}
	if len(c.cfg.Chaos) > 0 && c.chaos == nil {
		c.chaos = newChaosRuntime(c.cfg.Chaos)
	}
	if c.trace == nil {
		c.trace = make([]TraceEvent, 0, c.cfg.MaxIter+4)
	}

	for c.iter < c.cfg.MaxIter {
		iter := c.iter
		c.curIter = iter
		c.serveFrontier(iter + 1)
		maybeInject(iter, FailBeforeBarrier)
		c.chaosIterStart(iter)

		start := c.clock.Now()
		if err := c.superstep(iter); err != nil {
			return nil, err
		}
		if err := c.net.Err(); err != nil {
			return nil, fmt.Errorf("core: transport: %w", err)
		}
		c.chaosPartitionSilence()
		state := c.barrier()
		c.clock.Advance(c.cfg.Cost.BarrierOverhead)
		if state.IsFail() {
			c.rollback()
			c.strat.onRollback()
			if err := c.recover(state.Failed, iter); err != nil {
				return nil, err
			}
			continue // re-execute the iteration
		}
		c.commit(iter)
		c.trace = append(c.trace, TraceEvent{Iter: iter, Kind: "iteration", Start: start, End: c.clock.Now()})
		c.iter++
		c.servePublish(false)
		c.coord.Set("iter", int64(c.iter))
		if c.replayWatch != nil && c.iter >= c.replayWatch.target {
			c.recoveries[c.replayWatch.recIdx].ReplaySeconds = c.clock.Now() - c.replayWatch.start
			c.replayWatch = nil
		}

		c.strat.onSuperstepEnd()

		maybeInject(iter, FailAfterBarrier)
		c.chaosCrashAt(iter, FailAfterBarrier)
		state = c.barrier()
		if state.IsFail() {
			if err := c.recover(state.Failed, c.iter); err != nil {
				return nil, err
			}
		}
	}
	c.servePublish(true)
	return c.result(), nil
}

// superstep dispatches on mode.
func (c *Cluster[V, A]) superstep(iter int) error {
	switch c.cfg.Mode {
	case EdgeCutMode:
		return c.superstepEdgeCut(iter)
	case VertexCutMode:
		return c.superstepVertexCut(iter)
	default:
		return fmt.Errorf("core: unknown mode %v", c.cfg.Mode)
	}
}

// recover hands the failed set to the configured strategy, restarting when
// additional failures strike during recovery (§5.3.2).
func (c *Cluster[V, A]) recover(failed []int, iter int) error {
	pending := append([]int(nil), failed...)
	for attempt := 0; ; attempt++ {
		if attempt > 2*c.cfg.NumNodes {
			return fmt.Errorf("%w: recovery restarted too many times", ErrTooManyFailures)
		}
		more, err := c.strat.recover(pending, iter)
		if err != nil {
			return err
		}
		if len(more) == 0 {
			// Recovery reshaped the master directory and replica tables;
			// republish the routing view so queries stop falling back from
			// the old master locations.
			c.serveRefreshRoute()
			return nil
		}
		seen := map[int]bool{}
		for _, n := range pending {
			seen[n] = true
		}
		for _, n := range more {
			if !seen[n] {
				pending = append(pending, n)
				seen[n] = true
			}
		}
	}
}

// hook runs at recovery phase boundaries: chaos crash-during-recovery
// events fire first, then the test hook if installed.
func (c *Cluster[V, A]) hook(phase string) {
	if c.chaos != nil {
		c.chaosRecoveryPhase(phase)
	}
	if c.testHook != nil {
		c.testHook(phase)
	}
}

// SetRecoveryHook installs a callback invoked between recovery phases with
// a phase label (e.g. "rebirth:reload"). Failure-injection tests use it to
// exercise failures during recovery (§5.3.2); the callback may call
// InjectFailure.
func (c *Cluster[V, A]) SetRecoveryHook(fn func(phase string)) { c.testHook = fn }

// InjectFailure kills a node immediately (fail-stop). Exposed for failure
// injection from tests and the CLI chaos mode.
func (c *Cluster[V, A]) InjectFailure(nodes ...int) { c.injectFailures(nodes) }
