package core

import (
	"errors"
	"fmt"
	"sync"

	"imitator/internal/coord"
	"imitator/internal/costmodel"
	"imitator/internal/dfs"
	"imitator/internal/graph"
	"imitator/internal/metrics"
	"imitator/internal/netsim"
	"imitator/internal/partition"
)

// ErrUnrecoverable reports a failure that exceeded the configured fault
// tolerance (more simultaneous failures than K, or no standby left).
var ErrUnrecoverable = errors.New("core: unrecoverable failure")

// node is one simulated machine's runtime state.
type node[V, A any] struct {
	id      int
	alive   bool
	entries []vertexEntry[V]
	index   map[graph.VertexID]int32
	met     *metrics.Node

	// localEdges counts edges stored on this node (for cost accounting).
	localEdges int

	// scratch: per-destination send buffers, reused across rounds.
	sendBuf [][]byte
	// scratch: activation notices staged out-of-round (vertex-cut scatter),
	// flushed in their own round.
	noticeBuf [][]byte
	// scratch: per-superstep compute cost in simulated seconds.
	phaseCost float64
}

func (n *node[V, A]) pos(id graph.VertexID) (int32, bool) {
	p, ok := n.index[id]
	return p, ok
}

func (n *node[V, A]) entry(id graph.VertexID) *vertexEntry[V] {
	if p, ok := n.index[id]; ok {
		return &n.entries[p]
	}
	return nil
}

// Cluster is a running job: the simulated machines, interconnect, DFS,
// coordination service and the loaded, partitioned graph.
type Cluster[V, A any] struct {
	cfg  Config
	g    *graph.Graph
	prog Program[V, A]
	vc   Codec[V]
	ac   Codec[A]

	nodes []*node[V, A]
	net   *netsim.Network
	dfs   *dfs.DFS
	coord *coord.Coordinator
	met   *metrics.Cluster
	clock costmodel.Clock

	// masterLoc mirrors the coordination service's master directory: the
	// node currently hosting each vertex's master (updated by Migration).
	masterLoc []int16

	// Retained partitioning (for checkpoint-recovery rebuilds and stats).
	ec   *partition.EdgeCut
	vcut *partition.VertexCut

	// pristine retains each node's post-load state when checkpointing is
	// enabled, so a standby newbie can rebuild a crashed node's immutable
	// topology (the metadata snapshot's content).
	pristine []*pristineNode[V]
	// replayWatch accounts checkpoint-recovery replay time.
	replayWatch *replayWatch

	iter         int
	rebirthsUsed int
	ckptEpoch    int          // iteration captured by the last completed checkpoint
	ckptHistory  []ckptRecord // snapshot chain (epoch, full/incremental)

	// selfishOptOn is the effective §4.4 switch (configured AND supported
	// by the program).
	selfishOptOn bool

	// Stats for the figures.
	extraReplicas        int // FT-only replicas added at load
	extraReplicasSelfish int // of which belong to selfish vertices (§4.4)
	totalPresences       int // all vertex presences after FT extension
	loadSeconds          float64
	ckptSeconds          float64
	ckptCount            int
	trace                []TraceEvent
	recoveries           []RecoveryStats

	// testHook, when set, runs between recovery phases (failure-injection
	// tests for §5.3.2).
	testHook func(phase string)
}

// NewCluster loads, partitions and replicates the graph per cfg, returning
// a cluster ready to Run.
func NewCluster[V, A any](cfg Config, g *graph.Graph, prog Program[V, A]) (*Cluster[V, A], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.FT.Enabled && cfg.FT.SelfishOpt && prog.CanRecomputeSelfish() && !prog.AlwaysActive() {
		return nil, fmt.Errorf("core: selfish recomputation requires an always-active program")
	}
	var net *netsim.Network
	var err error
	if cfg.Transport == TransportTCP {
		net, err = netsim.NewTCP(cfg.NumNodes, cfg.Cost)
	} else {
		net, err = netsim.New(cfg.NumNodes, cfg.Cost)
	}
	if err != nil {
		return nil, err
	}
	d, err := dfs.New(cfg.NumNodes, cfg.Cost)
	if err != nil {
		return nil, err
	}
	co, err := coord.New(cfg.NumNodes)
	if err != nil {
		return nil, err
	}
	c := &Cluster[V, A]{
		cfg:   cfg,
		g:     g,
		prog:  prog,
		vc:    prog.ValueCodec(),
		ac:    prog.AccCodec(),
		net:   net,
		dfs:   d,
		coord: co,
		met:   metrics.NewCluster(cfg.NumNodes),
		selfishOptOn: cfg.FT.Enabled && cfg.FT.SelfishOpt &&
			prog.CanRecomputeSelfish() && prog.AlwaysActive(),
	}
	if err := c.load(); err != nil {
		return nil, err
	}
	return c, nil
}

// aliveNodes returns the running nodes.
func (c *Cluster[V, A]) aliveNodes() []*node[V, A] {
	out := make([]*node[V, A], 0, len(c.nodes))
	for _, n := range c.nodes {
		if n != nil && n.alive {
			out = append(out, n)
		}
	}
	return out
}

// eachAlive runs fn concurrently for every alive node and waits.
func (c *Cluster[V, A]) eachAlive(fn func(n *node[V, A])) {
	var wg sync.WaitGroup
	for _, n := range c.aliveNodes() {
		n := n
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn(n)
		}()
	}
	wg.Wait()
}

// barrier has every alive node enter the coordination barrier and returns
// the (shared) barrier state.
func (c *Cluster[V, A]) barrier() coord.BarrierState {
	alive := c.aliveNodes()
	states := make([]coord.BarrierState, len(alive))
	var wg sync.WaitGroup
	for i, n := range alive {
		i, n := i, n
		wg.Add(1)
		go func() {
			defer wg.Done()
			states[i] = c.coord.EnterBarrier(n.id)
		}()
	}
	wg.Wait()
	if len(states) == 0 {
		return coord.BarrierState{}
	}
	return states[0]
}

// injectFailures kills the given nodes (fail-stop): they stop running,
// their traffic is dropped, and the coordinator announces them at the next
// barrier. The simulated clock advances by the heartbeat detection delay.
func (c *Cluster[V, A]) injectFailures(nodes []int) {
	for _, id := range nodes {
		if n := c.nodes[id]; n != nil && n.alive {
			n.alive = false
			c.net.SetFailed(id, true)
			c.coord.MarkFailed(id)
		}
	}
	c.clock.Advance(c.cfg.Cost.DetectionTime())
}

// flushSend transmits every node's pending per-destination buffers with the
// given kind, then completes the messaging round and advances the clock by
// the slowest node's communication cost.
func (c *Cluster[V, A]) flushSendRound(kind netsim.Kind) float64 {
	c.eachAlive(func(n *node[V, A]) {
		for dst, buf := range n.sendBuf {
			if len(buf) > 0 {
				c.net.Send(n.id, dst, kind, buf)
				n.sendBuf[dst] = nil
			}
		}
	})
	costs, fabric := c.net.FinishRound()
	var span costmodel.Span
	span.Observe(fabric)
	for _, cost := range costs {
		span.Observe(cost)
	}
	c.clock.Advance(span.Max())
	return span.Max()
}

// stage appends encoded bytes to n's buffer for destination dst, creating
// buffers lazily.
func (n *node[V, A]) stage(dst int, encode func(buf []byte) []byte) {
	n.sendBuf[dst] = encode(n.sendBuf[dst])
}

// stageNotice appends to the out-of-round activation notice buffer.
func (n *node[V, A]) stageNotice(dst int, encode func(buf []byte) []byte) {
	n.noticeBuf[dst] = encode(n.noticeBuf[dst])
}

// flushNoticeRound transmits the staged activation notices as their own
// messaging round.
func (c *Cluster[V, A]) flushNoticeRound() float64 {
	c.eachAlive(func(n *node[V, A]) {
		for dst, buf := range n.noticeBuf {
			if len(buf) > 0 {
				c.net.Send(n.id, dst, netsim.KindActivation, buf)
				n.noticeBuf[dst] = nil
			}
		}
	})
	costs, fabric := c.net.FinishRound()
	var span costmodel.Span
	span.Observe(fabric)
	for _, cost := range costs {
		span.Observe(cost)
	}
	c.clock.Advance(span.Max())
	return span.Max()
}

// resetSendBufs sizes each node's send buffers to the cluster width.
func (c *Cluster[V, A]) resetSendBufs() {
	for _, n := range c.nodes {
		if n != nil {
			n.sendBuf = make([][]byte, c.cfg.NumNodes)
			n.noticeBuf = make([][]byte, c.cfg.NumNodes)
		}
	}
}

// commit installs all staged state on every alive node: pending values,
// scatter flags and the next superstep's active set (Algorithm 1 line 14).
func (c *Cluster[V, A]) commit(iter int) {
	always := c.prog.AlwaysActive()
	c.eachAlive(func(n *node[V, A]) {
		c.chunked(n, len(n.entries), func(_ *stager, lo, hi int) {
			for i := lo; i < hi; i++ {
				e := &n.entries[i]
				if e.hasPending {
					e.value = e.pendingValue
					e.lastActivate = e.pendingScatter
					e.lastActivateIter = e.pendingScatterI
					e.hasPending = false
					e.lastTouchedIter = int32(iter)
				}
				if e.isMaster() {
					newActive := e.pendingActive || always
					if newActive != e.active {
						e.lastTouchedIter = int32(iter)
					}
					e.active = newActive
				}
				e.pendingActive = false
				e.pendingScatter = false
			}
		})
	})
}

// rollback discards staged state and undelivered messages on every alive
// node (Algorithm 1 line 9: the iteration will re-execute).
func (c *Cluster[V, A]) rollback() {
	c.eachAlive(func(n *node[V, A]) {
		for i := range n.entries {
			n.entries[i].clearPending()
		}
		c.net.Drop(n.id)
		n.sendBuf = make([][]byte, c.cfg.NumNodes)
		n.noticeBuf = make([][]byte, c.cfg.NumNodes)
	})
}

// Run executes the job to MaxIter supersteps, injecting scheduled failures
// and recovering per the configured strategy.
func (c *Cluster[V, A]) Run() (*Result[V], error) {
	defer c.net.Close()
	failuresAt := func(iter int, phase FailPhase) []int {
		var out []int
		for _, f := range c.cfg.Failures {
			if f.Iteration == iter && f.Phase == phase {
				out = append(out, f.Nodes...)
			}
		}
		return out
	}
	injected := map[string]bool{}
	maybeInject := func(iter int, phase FailPhase) {
		key := fmt.Sprintf("%d/%d", iter, phase)
		if injected[key] {
			return
		}
		injected[key] = true
		if nodes := failuresAt(iter, phase); len(nodes) > 0 {
			c.injectFailures(nodes)
		}
	}

	for c.iter < c.cfg.MaxIter {
		iter := c.iter
		maybeInject(iter, FailBeforeBarrier)

		start := c.clock.Now()
		if err := c.superstep(iter); err != nil {
			return nil, err
		}
		if err := c.net.Err(); err != nil {
			return nil, fmt.Errorf("core: transport: %w", err)
		}
		state := c.barrier()
		c.clock.Advance(c.cfg.Cost.BarrierOverhead)
		if state.IsFail() {
			c.rollback()
			if err := c.recover(state.Failed, iter); err != nil {
				return nil, err
			}
			continue // re-execute the iteration
		}
		c.commit(iter)
		c.trace = append(c.trace, TraceEvent{Iter: iter, Kind: "iteration", Start: start, End: c.clock.Now()})
		c.iter++
		c.coord.Set("iter", int64(c.iter))
		if c.replayWatch != nil && c.iter >= c.replayWatch.target {
			c.recoveries[c.replayWatch.recIdx].ReplaySeconds = c.clock.Now() - c.replayWatch.start
			c.replayWatch = nil
		}

		if c.cfg.Checkpoint.Enabled && c.iter%c.cfg.Checkpoint.Interval == 0 {
			c.writeCheckpoint()
		}

		maybeInject(iter, FailAfterBarrier)
		state = c.barrier()
		if state.IsFail() {
			if err := c.recover(state.Failed, c.iter); err != nil {
				return nil, err
			}
		}
	}
	return c.result(), nil
}

// superstep dispatches on mode.
func (c *Cluster[V, A]) superstep(iter int) error {
	switch c.cfg.Mode {
	case EdgeCutMode:
		return c.superstepEdgeCut(iter)
	case VertexCutMode:
		return c.superstepVertexCut(iter)
	default:
		return fmt.Errorf("core: unknown mode %v", c.cfg.Mode)
	}
}

// recover dispatches on the recovery strategy, restarting when additional
// failures strike during recovery (§5.3.2).
func (c *Cluster[V, A]) recover(failed []int, iter int) error {
	pending := append([]int(nil), failed...)
	for attempt := 0; ; attempt++ {
		if attempt > 2*c.cfg.NumNodes {
			return fmt.Errorf("%w: recovery restarted too many times", ErrUnrecoverable)
		}
		var more []int
		var err error
		switch c.cfg.Recovery {
		case RecoverCheckpoint:
			more, err = c.recoverCheckpoint(pending)
		case RecoverRebirth:
			more, err = c.recoverRebirth(pending, iter)
		case RecoverMigration:
			more, err = c.recoverMigration(pending, iter)
		default:
			return fmt.Errorf("%w: no recovery strategy configured (failed nodes %v)",
				ErrUnrecoverable, pending)
		}
		if err != nil {
			return err
		}
		if len(more) == 0 {
			return nil
		}
		seen := map[int]bool{}
		for _, n := range pending {
			seen[n] = true
		}
		for _, n := range more {
			if !seen[n] {
				pending = append(pending, n)
				seen[n] = true
			}
		}
	}
}

// hook runs the test hook if installed.
func (c *Cluster[V, A]) hook(phase string) {
	if c.testHook != nil {
		c.testHook(phase)
	}
}

// SetRecoveryHook installs a callback invoked between recovery phases with
// a phase label (e.g. "rebirth:reload"). Failure-injection tests use it to
// exercise failures during recovery (§5.3.2); the callback may call
// InjectFailure.
func (c *Cluster[V, A]) SetRecoveryHook(fn func(phase string)) { c.testHook = fn }

// InjectFailure kills a node immediately (fail-stop). Exposed for failure
// injection from tests and the CLI chaos mode.
func (c *Cluster[V, A]) InjectFailure(nodes ...int) { c.injectFailures(nodes) }
