package core

import (
	"testing"

	"imitator/internal/datasets"
	"imitator/internal/graph"
)

// fakePR is a minimal always-active program for white-box tests.
type fakePR struct{}

func (fakePR) Name() string              { return "fake" }
func (fakePR) AlwaysActive() bool        { return true }
func (fakePR) CanRecomputeSelfish() bool { return false }
func (fakePR) Init(graph.VertexID, VertexInfo) (float64, bool) {
	return 1, true
}
func (fakePR) Gather(e graph.Edge, src float64, _ VertexInfo) float64 { return src }
func (fakePR) Merge(a, b float64) float64                             { return a + b }
func (fakePR) Apply(_ graph.VertexID, _ VertexInfo, _ float64, acc float64, _ bool, _ int) (float64, bool) {
	return acc + 1, true
}
func (fakePR) ValueCodec() Codec[float64] { return Float64Codec{} }
func (fakePR) AccCodec() Codec[float64]   { return Float64Codec{} }

// TestRebirthPreservesLayout is the §5.1.2 claim: after Rebirth, every
// vertex sits at exactly the array position it occupied on the crashed
// node, so positional recovery messages need no coordination.
func TestRebirthPreservesLayout(t *testing.T) {
	for _, mode := range []Mode{EdgeCutMode, VertexCutMode} {
		g := datasets.Tiny(200, 1000, 99)
		cfg := DefaultConfig(mode, 3)
		cfg.MaxIter = 4
		cfg.Failures = []FailureSpec{{Iteration: 2, Phase: FailBeforeBarrier, Nodes: []int{1}}}
		cl, err := NewCluster[float64, float64](cfg, g, fakePR{})
		if err != nil {
			t.Fatal(err)
		}
		before := map[graph.VertexID]int32{}
		var masters, mirrors int
		for i := range cl.nodes[1].entries {
			e := &cl.nodes[1].entries[i]
			before[e.id] = int32(i)
			if e.isMaster() {
				masters++
			}
			if e.isMirror() {
				mirrors++
			}
		}
		if _, err := cl.Run(); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		after := cl.nodes[1]
		if len(after.entries) != len(before) {
			t.Fatalf("%v: array length changed: %d -> %d", mode, len(before), len(after.entries))
		}
		var mastersAfter, mirrorsAfter int
		for i := range after.entries {
			e := &after.entries[i]
			if before[e.id] != int32(i) {
				t.Fatalf("%v: vertex %d moved from %d to %d", mode, e.id, before[e.id], i)
			}
			if e.isMaster() {
				mastersAfter++
			}
			if e.isMirror() {
				mirrorsAfter++
			}
		}
		if masters != mastersAfter {
			t.Errorf("%v: master count changed %d -> %d", mode, masters, mastersAfter)
		}
		if mirrors != mirrorsAfter {
			t.Errorf("%v: mirror count changed %d -> %d", mode, mirrors, mirrorsAfter)
		}
	}
}

// TestLoadInvariants checks the FT construction rules of §4: at least K
// replicas per vertex, FT replicas are mirrors, and masters know their
// replicas' exact positions.
func TestLoadInvariants(t *testing.T) {
	for _, mode := range []Mode{EdgeCutMode, VertexCutMode} {
		for _, k := range []int{1, 2, 3} {
			g := datasets.Tiny(300, 1500, 123)
			cfg := DefaultConfig(mode, 6)
			cfg.FT.K = k
			cfg.MaxIter = 1
			cl, err := NewCluster[float64, float64](cfg, g, fakePR{})
			if err != nil {
				t.Fatal(err)
			}
			for _, nd := range cl.nodes {
				for i := range nd.entries {
					e := &nd.entries[i]
					if !e.isMaster() {
						continue
					}
					if len(e.replicaNodes) < k {
						t.Fatalf("%v K=%d: vertex %d has %d replicas", mode, k, e.id, len(e.replicaNodes))
					}
					if len(e.mirrorOf) != k {
						t.Fatalf("%v K=%d: vertex %d has %d mirrors", mode, k, e.id, len(e.mirrorOf))
					}
					seen := map[int16]bool{int16(nd.id): true}
					for ri, rn := range e.replicaNodes {
						if seen[rn] {
							t.Fatalf("%v: vertex %d replicated twice on node %d", mode, e.id, rn)
						}
						seen[rn] = true
						re := &cl.nodes[rn].entries[e.replicaPos[ri]]
						if re.id != e.id {
							t.Fatalf("%v: vertex %d replicaPos points at vertex %d", mode, e.id, re.id)
						}
						if re.isMaster() {
							t.Fatalf("%v: replica of %d marked master", mode, e.id)
						}
						if re.masterNode != int16(nd.id) || re.masterPos != int32(i) {
							t.Fatalf("%v: replica of %d has wrong master pointer", mode, e.id)
						}
						if e.replicaFTOnly[ri] != re.isFTOnly() {
							t.Fatalf("%v: FT flag mismatch for vertex %d", mode, e.id)
						}
					}
					// Every FT-only replica must be a mirror (§4.2).
					for ri := range e.replicaNodes {
						if !e.replicaFTOnly[ri] {
							continue
						}
						isMirror := false
						for _, idx := range e.mirrorOf {
							if int(idx) == ri {
								isMirror = true
							}
						}
						if !isMirror {
							t.Fatalf("%v: FT replica of vertex %d is not a mirror", mode, e.id)
						}
					}
					for rank, idx := range e.mirrorOf {
						re := &cl.nodes[e.replicaNodes[idx]].entries[e.replicaPos[idx]]
						if !re.isMirror() || re.mirrorRank != int16(rank) {
							t.Fatalf("%v: mirror rank mismatch for vertex %d", mode, e.id)
						}
						if len(re.mReplicaN) != len(e.replicaNodes) {
							t.Fatalf("%v: mirror of %d has stale table", mode, e.id)
						}
					}
				}
			}
		}
	}
}

// TestMirrorBalance checks the greedy mirror assignment spreads mirrors
// (§4.2): no node should hold a wildly disproportionate share.
func TestMirrorBalance(t *testing.T) {
	g := datasets.Tiny(2000, 10000, 321)
	cfg := DefaultConfig(EdgeCutMode, 8)
	cfg.MaxIter = 1
	cl, err := NewCluster[float64, float64](cfg, g, fakePR{})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 8)
	total := 0
	for _, nd := range cl.nodes {
		for i := range nd.entries {
			if nd.entries[i].isMirror() {
				counts[nd.id]++
				total++
			}
		}
	}
	mean := total / 8
	for n, cnt := range counts {
		if cnt > 2*mean || cnt < mean/2 {
			t.Errorf("node %d holds %d mirrors, mean %d: unbalanced", n, cnt, mean)
		}
	}
}
