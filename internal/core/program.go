// Package core implements the Imitator runtime: a BSP graph-processing
// engine with edge-cut (Cyclops) and vertex-cut (PowerLyra) modes, and the
// paper's replication-based fault tolerance — fault-tolerant replicas,
// full-state mirrors, the selfish-vertex optimization, and three recovery
// strategies (checkpoint baseline, Rebirth, Migration).
package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"imitator/internal/graph"
)

// VertexInfo carries a vertex's static global degrees to vertex programs.
type VertexInfo struct {
	InDeg, OutDeg int32
}

// Program is a vertex program over value type V and gather accumulator A.
// Both engines schedule it with gather-apply-scatter semantics; under
// edge-cut the gather runs entirely on the master's node, under vertex-cut
// partial gathers run on every node holding in-edges.
type Program[V, A any] interface {
	// Name identifies the algorithm in reports.
	Name() string
	// AlwaysActive makes every vertex compute every superstep (PageRank,
	// ALS); otherwise activation flows along scatter edges (SSSP, CD).
	AlwaysActive() bool
	// CanRecomputeSelfish enables the §4.4 optimization: selfish vertices
	// (no out-edges) are never synchronized during normal execution, and
	// their dynamic state is recomputed from in-neighbors at recovery.
	// Only sound when Apply ignores the previous value (e.g., PageRank).
	CanRecomputeSelfish() bool
	// Init returns a vertex's initial value and whether it starts active.
	Init(v graph.VertexID, info VertexInfo) (V, bool)
	// Gather returns the contribution of in-edge e (e.Dst is the vertex
	// being computed) given the source's current value.
	Gather(e graph.Edge, src V, srcInfo VertexInfo) A
	// Merge combines two gather contributions (must be commutative and
	// associative up to float rounding; engines fix the fold order).
	Merge(a, b A) A
	// Apply produces the new value from the merged contributions and
	// reports whether to activate out-neighbors for the next superstep.
	Apply(v graph.VertexID, info VertexInfo, old V, acc A, hasAcc bool, iter int) (V, bool)
	// ValueCodec encodes V for sync messages, checkpoints and recovery.
	ValueCodec() Codec[V]
	// AccCodec encodes A for vertex-cut partial-gather messages.
	AccCodec() Codec[A]
}

// Codec serializes values of type T for the wire and for snapshots.
type Codec[T any] interface {
	// Append encodes v onto buf and returns the extended slice.
	Append(buf []byte, v T) []byte
	// Read decodes a value from buf, returning it and the remaining bytes.
	Read(buf []byte) (T, []byte, error)
	// Size returns the encoded size of v in bytes.
	Size(v T) int
}

var errShortBuffer = fmt.Errorf("core: short buffer decoding value")

// Float64Codec encodes a float64 (PageRank rank, SSSP distance).
type Float64Codec struct{}

// Append implements Codec.
func (Float64Codec) Append(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

// Read implements Codec.
func (Float64Codec) Read(buf []byte) (float64, []byte, error) {
	if len(buf) < 8 {
		return 0, nil, errShortBuffer
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf)), buf[8:], nil
}

// Size implements Codec.
func (Float64Codec) Size(float64) int { return 8 }

// Int32Codec encodes an int32 (community labels).
type Int32Codec struct{}

// Append implements Codec.
func (Int32Codec) Append(buf []byte, v int32) []byte {
	return binary.LittleEndian.AppendUint32(buf, uint32(v))
}

// Read implements Codec.
func (Int32Codec) Read(buf []byte) (int32, []byte, error) {
	if len(buf) < 4 {
		return 0, nil, errShortBuffer
	}
	return int32(binary.LittleEndian.Uint32(buf)), buf[4:], nil
}

// Size implements Codec.
func (Int32Codec) Size(int32) int { return 4 }

// VecCodec encodes a fixed-dimension []float64 (ALS latent factors and
// normal-equation accumulators).
type VecCodec struct {
	Dim int
}

// Append implements Codec.
func (c VecCodec) Append(buf []byte, v []float64) []byte {
	if len(v) != c.Dim {
		panic(fmt.Sprintf("core: VecCodec dim %d, value dim %d", c.Dim, len(v)))
	}
	for _, f := range v {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
	}
	return buf
}

// Read implements Codec.
func (c VecCodec) Read(buf []byte) ([]float64, []byte, error) {
	if len(buf) < 8*c.Dim {
		return nil, nil, errShortBuffer
	}
	v := make([]float64, c.Dim)
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return v, buf[8*c.Dim:], nil
}

// Size implements Codec.
func (c VecCodec) Size([]float64) int { return 8 * c.Dim }

// LabelCountCodec encodes the label-frequency accumulator of community
// detection: pairs of (label, count) sorted by label.
type LabelCountCodec struct{}

// Append implements Codec.
func (LabelCountCodec) Append(buf []byte, v []LabelCount) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v)))
	for _, lc := range v {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(lc.Label))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(lc.Count))
	}
	return buf
}

// Read implements Codec.
func (LabelCountCodec) Read(buf []byte) ([]LabelCount, []byte, error) {
	if len(buf) < 4 {
		return nil, nil, errShortBuffer
	}
	n := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	if len(buf) < 12*n {
		return nil, nil, errShortBuffer
	}
	v := make([]LabelCount, n)
	for i := range v {
		v[i].Label = int32(binary.LittleEndian.Uint32(buf))
		v[i].Count = math.Float64frombits(binary.LittleEndian.Uint64(buf[4:]))
		buf = buf[12:]
	}
	return v, buf, nil
}

// Size implements Codec.
func (LabelCountCodec) Size(v []LabelCount) int { return 4 + 12*len(v) }

// LabelCount is one (label, weight) pair in a community-detection
// accumulator. Kept sorted by label so merge order does not matter.
type LabelCount struct {
	Label int32
	Count float64
}

// MergeLabelCounts merges two sorted label-count lists.
func MergeLabelCounts(a, b []LabelCount) []LabelCount {
	out := make([]LabelCount, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Label < b[j].Label:
			out = append(out, a[i])
			i++
		case a[i].Label > b[j].Label:
			out = append(out, b[j])
			j++
		default:
			out = append(out, LabelCount{Label: a[i].Label, Count: a[i].Count + b[j].Count})
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
