package core

import (
	"testing"

	"imitator/internal/datasets"
)

// TestSteadyStateSuperstepAllocFree is the tentpole regression gate: once
// the pool, stagers and routing tables are warm, a full superstep
// (compute + sync + receive + barrier + commit) performs zero heap
// allocations at WorkersPerNode=1. Any new per-round make/append-to-nil on
// the hot path shows up here as a non-zero count.
func TestSteadyStateSuperstepAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are meaningless")
	}
	for _, mode := range []Mode{EdgeCutMode, VertexCutMode} {
		t.Run(mode.String(), func(t *testing.T) {
			g := datasets.Tiny(400, 2400, 4242)
			cfg := DefaultConfig(mode, 4)
			cfg.MaxIter = 1 // stepped manually below
			cl, err := NewCluster[float64, float64](cfg, g, fakePR{})
			if err != nil {
				t.Fatal(err)
			}
			defer cl.stopWorkers()
			iter := 0
			step := func() {
				if err := cl.superstep(iter); err != nil {
					t.Fatal(err)
				}
				cl.barrier()
				cl.commit(iter)
				iter++
			}
			// Warm the pool, stagers, mailboxes and routing tables.
			for i := 0; i < 3; i++ {
				step()
			}
			if avg := testing.AllocsPerRun(5, step); avg != 0 {
				t.Errorf("%v steady-state superstep allocates %.1f times per iteration, want 0", mode, avg)
			}
		})
	}
}

// TestCodecAllocBudgets pins the hot wire-codec paths to zero allocations
// when appending into a buffer with capacity.
func TestCodecAllocBudgets(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are meaningless")
	}
	fc := Float64Codec{}
	buf := make([]byte, 0, 64)
	if avg := testing.AllocsPerRun(100, func() {
		buf = fc.Append(buf[:0], 3.14159)
	}); avg != 0 {
		t.Errorf("Float64Codec.Append allocates %.1f/op, want 0", avg)
	}
	enc := fc.Append(nil, 2.71828)
	if avg := testing.AllocsPerRun(100, func() {
		if _, _, err := fc.Read(enc); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("Float64Codec.Read allocates %.1f/op, want 0", avg)
	}

	table := &replicaTable{
		nodes:    []int16{1, 2, 3},
		pos:      []int32{10, 20, 30},
		ftOnly:   []bool{false, false, true},
		mirrorOf: []int16{2},
	}
	rec := make([]byte, 0, 256)
	if avg := testing.AllocsPerRun(100, func() {
		rec = encodeRecoveryRecord(rec[:0], fc, roleMaster, 7, 42,
			flagMaster, -1, 3, 7, 5, 2, 3.14, true, 9, table, nil)
	}); avg != 0 {
		t.Errorf("encodeRecoveryRecord allocates %.1f/op into a warm buffer, want 0", avg)
	}
}
