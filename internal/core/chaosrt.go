package core

import (
	"strings"
	"time"

	"imitator/internal/coord"
)

// chaosRuntime is the engine side of a Config.Chaos schedule. It exists
// only when a schedule is set: every hook in the steady-state loop is
// gated on a nil check, so fault-free runs pay nothing.
//
// Crash events are not applied synchronously the way the legacy
// Config.Failures path marks nodes failed at the coordinator: the victims
// merely stop heartbeating, and a coord.HeartbeatMonitor driven by the
// simulated clock (a FakeClock mapped onto sim-seconds) detects and
// announces them. Detection therefore goes through the same machinery a
// live cluster would use, at the same DetectionTime() cost the legacy path
// charges, so both paths produce identical results.
type chaosRuntime struct {
	// crashes is consumed by deleting fired keys, like the legacy failure
	// schedule: an iteration re-executed after rollback does not re-crash.
	crashes map[failKey][]int
	// recCrashes fire when a recovery pass reaches a matching phase label.
	recCrashes []recoveryCrash
	// slow/delays hold degradation events keyed by trigger iteration.
	slow   map[int][]ChaosEvent
	delays map[int]float64
	// faults holds omission events (drop/duplicate/reorder) keyed by
	// trigger iteration; parts holds partitions by start iteration and
	// heals the node sets to reconnect, keyed by heal iteration.
	faults map[int][]ChaosEvent
	parts  map[int][]ChaosEvent
	heals  map[int][][]int
	// pendingPart collects nodes isolated at the current iteration's
	// start; after the superstep they go silent and the detector
	// suspects, then confirms them (chaosPartitionSilence).
	pendingPart []int

	// mon/fc are the heartbeat failure detector and its simulated clock,
	// created lazily by the first crash. monAt is the sim-second already
	// applied to fc.
	mon   *coord.HeartbeatMonitor
	fc    *coord.FakeClock
	monAt float64
}

// recoveryCrash is one pending ChaosCrashDuringRecovery event.
type recoveryCrash struct {
	during string // phase-label prefix; "" matches the first phase
	nodes  []int
	fired  bool
}

// newChaosRuntime indexes a validated schedule for the run loop.
func newChaosRuntime(events []ChaosEvent) *chaosRuntime {
	ch := &chaosRuntime{
		crashes: make(map[failKey][]int),
		slow:    make(map[int][]ChaosEvent),
		delays:  make(map[int]float64),
		faults:  make(map[int][]ChaosEvent),
		parts:   make(map[int][]ChaosEvent),
		heals:   make(map[int][][]int),
	}
	for _, ev := range events {
		switch ev.Kind {
		case ChaosCrash:
			k := failKey{ev.Iteration, ev.Phase}
			ch.crashes[k] = append(ch.crashes[k], ev.Nodes...)
		case ChaosCrashDuringRecovery:
			ch.recCrashes = append(ch.recCrashes, recoveryCrash{
				during: ev.During,
				nodes:  append([]int(nil), ev.Nodes...),
			})
		case ChaosSlowLink:
			ch.slow[ev.Iteration] = append(ch.slow[ev.Iteration], ev)
		case ChaosDelayBurst:
			ch.delays[ev.Iteration] += ev.Seconds
		case ChaosDrop, ChaosDuplicate, ChaosReorder:
			ch.faults[ev.Iteration] = append(ch.faults[ev.Iteration], ev)
		case ChaosPartition:
			ch.parts[ev.Iteration] = append(ch.parts[ev.Iteration], ev)
			ch.heals[ev.HealIter] = append(ch.heals[ev.HealIter], append([]int(nil), ev.Nodes...))
		}
	}
	return ch
}

// chaosIterStart applies the chaos events due at the top of an iteration:
// link degradations and delay bursts first (so they shape the iteration's
// rounds, including any recovery rounds the iteration triggers), then
// before-barrier crashes. Degradations persist; a delay burst covers one
// execution attempt of its iteration.
func (c *Cluster[V, A]) chaosIterStart(iter int) {
	if c.chaos == nil {
		return
	}
	// Heals run first: a partition scheduled to end here releases its
	// parked frames before this iteration's traffic (they face the epoch
	// fence at the receivers' next Collect).
	if sets, ok := c.chaos.heals[iter]; ok {
		delete(c.chaos.heals, iter)
		for _, nodes := range sets {
			c.net.Heal(nodes)
		}
	}
	if evs, ok := c.chaos.faults[iter]; ok {
		delete(c.chaos.faults, iter)
		for _, ev := range evs {
			switch ev.Kind {
			case ChaosDrop:
				c.net.SetDropRate(ev.From, ev.To, ev.Prob)
			case ChaosDuplicate:
				c.net.SetDupRate(ev.From, ev.To, ev.Prob)
			case ChaosReorder:
				c.net.SetReorderRate(ev.From, ev.To, ev.Prob)
			}
		}
	}
	if evs, ok := c.chaos.parts[iter]; ok {
		delete(c.chaos.parts, iter)
		for _, ev := range evs {
			// The cut lands before the superstep: the isolated nodes
			// still compute and send, so their frames park in the cable
			// — the stale traffic the epoch fence must later reject.
			c.net.Partition(ev.Nodes)
			c.chaos.pendingPart = append(c.chaos.pendingPart, ev.Nodes...)
		}
	}
	if evs, ok := c.chaos.slow[iter]; ok {
		delete(c.chaos.slow, iter)
		for _, ev := range evs {
			c.net.DegradeLink(ev.From, ev.To, ev.Factor)
		}
	}
	if d, ok := c.chaos.delays[iter]; ok {
		delete(c.chaos.delays, iter)
		c.net.SetRoundDelay(d)
	} else {
		c.net.SetRoundDelay(0)
	}
	c.chaosCrashAt(iter, FailBeforeBarrier)
}

// chaosCrashAt fires the crash events scheduled for (iter, phase), once.
func (c *Cluster[V, A]) chaosCrashAt(iter int, phase FailPhase) {
	if c.chaos == nil {
		return
	}
	k := failKey{iter, phase}
	nodes, ok := c.chaos.crashes[k]
	if !ok {
		return
	}
	delete(c.chaos.crashes, k)
	c.crashViaHeartbeat(nodes)
}

// chaosRecoveryPhase fires pending crash-during-recovery events whose
// label prefix matches the recovery phase just reached.
func (c *Cluster[V, A]) chaosRecoveryPhase(phase string) {
	for i := range c.chaos.recCrashes {
		rc := &c.chaos.recCrashes[i]
		if rc.fired || !strings.HasPrefix(phase, rc.during) {
			continue
		}
		rc.fired = true
		c.crashViaHeartbeat(rc.nodes)
	}
}

// chaosPartitionSilence runs after the superstep of an iteration that
// installed a partition: the isolated nodes have computed and sent (their
// frames parked in the cable), and from the cluster's point of view they
// now go silent. The detector suspects and then confirms them like any
// crash; the barrier announces the failure, the iteration rolls back,
// and recovery rebuilds the slots with a bumped epoch that fences the
// parked traffic when the partition heals.
func (c *Cluster[V, A]) chaosPartitionSilence() {
	if c.chaos == nil || len(c.chaos.pendingPart) == 0 {
		return
	}
	nodes := c.chaos.pendingPart
	c.chaos.pendingPart = c.chaos.pendingPart[:0]
	c.crashViaHeartbeat(nodes)
}

// crashViaHeartbeat fail-stops the given nodes and lets the heartbeat
// monitor detect them: the victims go silent, the simulated clock advances
// by the detection window, the survivors' beats land at the advanced
// instants, and the detector first suspects and then confirms exactly the
// silent nodes, which are announced to the coordinator (surfacing in the
// next barrier state).
func (c *Cluster[V, A]) crashViaHeartbeat(nodes []int) {
	c.ensureDetector()
	crashed := false
	for _, id := range nodes {
		if n := c.nodes[id]; n != nil && n.alive {
			n.alive = false
			c.net.SetFailed(id, true)
			crashed = true
		}
	}
	if !crashed {
		return
	}
	c.aliveDirty = true
	c.clock.Advance(c.cfg.Cost.DetectionTime())
	c.syncDetector()
	// Two-stage detection in exact integer tick arithmetic. syncDetector's
	// float sim-second -> Duration conversion truncates, so the fake clock
	// may sit a nanosecond short of where float math says it should; the
	// deadlines below are advanced as exact Duration multiples of the
	// monitor's interval on top of that, so the victims' silence crosses
	// each threshold precisely — no overshoot fudge needed. The fake clock
	// drives only the monitor, never the simulated timeline.
	suspectAfter := c.chaos.mon.SuspectDeadline()
	c.chaos.fc.Advance(suspectAfter)
	for _, nd := range c.aliveNodes() {
		c.chaos.mon.Beat(nd.id)
	}
	for _, id := range c.chaos.mon.PollSuspects(c.chaos.fc.Now()) {
		c.coord.Suspect(id)
	}
	c.chaos.fc.Advance(c.chaos.mon.Deadline() - suspectAfter)
	for _, nd := range c.aliveNodes() {
		c.chaos.mon.Beat(nd.id)
	}
	for _, id := range c.chaos.mon.Poll(c.chaos.fc.Now()) {
		c.coord.MarkFailed(id)
	}
}

// ensureDetector lazily builds the heartbeat monitor on a FakeClock pinned
// to the simulated timeline, tracking every currently alive node.
func (c *Cluster[V, A]) ensureDetector() {
	ch := c.chaos
	if ch.mon != nil {
		return
	}
	ch.fc = coord.NewFakeClock(time.Unix(0, 0))
	ch.monAt = 0
	c.syncDetector()
	interval := time.Duration(c.cfg.Cost.HeartbeatInterval * float64(time.Second))
	mon, err := coord.NewHeartbeatMonitorWithClock(ch.fc, interval, c.cfg.Cost.DetectMissedBeats, nil)
	if err != nil {
		// Cost params are validated with the config; this cannot fire.
		panic(err)
	}
	if err := mon.SetSuspectMisses(c.cfg.Cost.SuspectBeats()); err != nil {
		panic(err) // SuspectBeats is clamped to [1, DetectMissedBeats]
	}
	ch.mon = mon
	for _, nd := range c.aliveNodes() {
		mon.Track(nd.id)
	}
}

// syncDetector advances the monitor's FakeClock to the current sim-second.
func (c *Cluster[V, A]) syncDetector() {
	ch := c.chaos
	if d := c.clock.Now() - ch.monAt; d > 0 {
		ch.fc.Advance(time.Duration(d * float64(time.Second)))
		ch.monAt = c.clock.Now()
	}
}

// chaosTrack registers a node that (re)joined the membership — a rebirth or
// checkpoint newbie — with the failure detector, so a later chaos crash of
// the revived slot is detected like any other.
func (c *Cluster[V, A]) chaosTrack(id int) {
	if c.chaos == nil || c.chaos.mon == nil {
		return
	}
	c.syncDetector()
	c.chaos.mon.Track(id)
}
