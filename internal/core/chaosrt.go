package core

import (
	"strings"

	"imitator/internal/netsim"
)

// chaosRuntime is the engine side of a Config.Chaos schedule. It exists
// only when a schedule is set: every hook in the steady-state loop is
// gated on a nil check, so fault-free runs pay nothing.
//
// Crash events are not applied synchronously the way the legacy
// Config.Failures path marks nodes failed at the coordinator: the victims
// merely go silent, and the configured failureDetector (detector.go) —
// the centralized coord.HeartbeatMonitor by default, SWIM gossip with
// Config.Membership — detects and announces them. Detection therefore
// goes through the same machinery a live cluster would use; in
// centralized mode at the same DetectionTime() cost the legacy path
// charges, so both paths produce identical results.
type chaosRuntime struct {
	// crashes is consumed by deleting fired keys, like the legacy failure
	// schedule: an iteration re-executed after rollback does not re-crash.
	crashes map[failKey][]int
	// recCrashes fire when a recovery pass reaches a matching phase label.
	recCrashes []recoveryCrash
	// slow/delays hold degradation events keyed by trigger iteration.
	slow   map[int][]ChaosEvent
	delays map[int]float64
	// faults holds omission events (drop/duplicate/reorder) keyed by
	// trigger iteration; parts holds partitions by start iteration and
	// heals the node sets to reconnect, keyed by heal iteration.
	faults map[int][]ChaosEvent
	parts  map[int][]ChaosEvent
	heals  map[int][][]int
	// pendingPart collects nodes isolated at the current iteration's
	// start; after the superstep they go silent and the detector
	// suspects, then confirms them (chaosPartitionSilence).
	pendingPart []int

	// det is the pluggable failure detector (Config.Membership), created
	// lazily by the first crash.
	det failureDetector
	// netEvents replays the omission chaos applied so far (drop rates,
	// partitions, heals) onto the gossip detector's own network, which
	// may be created after the events fire.
	netEvents []func(*netsim.Network)
}

// recoveryCrash is one pending ChaosCrashDuringRecovery event.
type recoveryCrash struct {
	during string // phase-label prefix; "" matches the first phase
	nodes  []int
	fired  bool
}

// newChaosRuntime indexes a validated schedule for the run loop.
func newChaosRuntime(events []ChaosEvent) *chaosRuntime {
	ch := &chaosRuntime{
		crashes: make(map[failKey][]int),
		slow:    make(map[int][]ChaosEvent),
		delays:  make(map[int]float64),
		faults:  make(map[int][]ChaosEvent),
		parts:   make(map[int][]ChaosEvent),
		heals:   make(map[int][][]int),
	}
	for _, ev := range events {
		switch ev.Kind {
		case ChaosCrash:
			k := failKey{ev.Iteration, ev.Phase}
			ch.crashes[k] = append(ch.crashes[k], ev.Nodes...)
		case ChaosCrashDuringRecovery:
			ch.recCrashes = append(ch.recCrashes, recoveryCrash{
				during: ev.During,
				nodes:  append([]int(nil), ev.Nodes...),
			})
		case ChaosSlowLink:
			ch.slow[ev.Iteration] = append(ch.slow[ev.Iteration], ev)
		case ChaosDelayBurst:
			ch.delays[ev.Iteration] += ev.Seconds
		case ChaosDrop, ChaosDuplicate, ChaosReorder:
			ch.faults[ev.Iteration] = append(ch.faults[ev.Iteration], ev)
		case ChaosPartition:
			ch.parts[ev.Iteration] = append(ch.parts[ev.Iteration], ev)
			ch.heals[ev.HealIter] = append(ch.heals[ev.HealIter], append([]int(nil), ev.Nodes...))
		}
	}
	return ch
}

// chaosIterStart applies the chaos events due at the top of an iteration:
// link degradations and delay bursts first (so they shape the iteration's
// rounds, including any recovery rounds the iteration triggers), then
// before-barrier crashes. Degradations persist; a delay burst covers one
// execution attempt of its iteration.
func (c *Cluster[V, A]) chaosIterStart(iter int) {
	if c.chaos == nil {
		return
	}
	// Heals run first: a partition scheduled to end here releases its
	// parked frames before this iteration's traffic (they face the epoch
	// fence at the receivers' next Collect).
	if sets, ok := c.chaos.heals[iter]; ok {
		delete(c.chaos.heals, iter)
		for _, nodes := range sets {
			c.net.Heal(nodes)
			c.chaosMirror(func(n *netsim.Network) { n.Heal(nodes) })
		}
	}
	if evs, ok := c.chaos.faults[iter]; ok {
		delete(c.chaos.faults, iter)
		for _, ev := range evs {
			switch ev.Kind {
			case ChaosDrop:
				c.net.SetDropRate(ev.From, ev.To, ev.Prob)
				c.chaosMirror(func(n *netsim.Network) { n.SetDropRate(ev.From, ev.To, ev.Prob) })
			case ChaosDuplicate:
				c.net.SetDupRate(ev.From, ev.To, ev.Prob)
				c.chaosMirror(func(n *netsim.Network) { n.SetDupRate(ev.From, ev.To, ev.Prob) })
			case ChaosReorder:
				c.net.SetReorderRate(ev.From, ev.To, ev.Prob)
				c.chaosMirror(func(n *netsim.Network) { n.SetReorderRate(ev.From, ev.To, ev.Prob) })
			}
		}
	}
	if evs, ok := c.chaos.parts[iter]; ok {
		delete(c.chaos.parts, iter)
		for _, ev := range evs {
			// The cut lands before the superstep: the isolated nodes
			// still compute and send, so their frames park in the cable
			// — the stale traffic the epoch fence must later reject.
			c.net.Partition(ev.Nodes)
			c.chaosMirror(func(n *netsim.Network) { n.Partition(ev.Nodes) })
			c.chaos.pendingPart = append(c.chaos.pendingPart, ev.Nodes...)
		}
	}
	if evs, ok := c.chaos.slow[iter]; ok {
		delete(c.chaos.slow, iter)
		for _, ev := range evs {
			c.net.DegradeLink(ev.From, ev.To, ev.Factor)
		}
	}
	if d, ok := c.chaos.delays[iter]; ok {
		delete(c.chaos.delays, iter)
		c.net.SetRoundDelay(d)
	} else {
		c.net.SetRoundDelay(0)
	}
	c.chaosCrashAt(iter, FailBeforeBarrier)
}

// chaosCrashAt fires the crash events scheduled for (iter, phase), once.
func (c *Cluster[V, A]) chaosCrashAt(iter int, phase FailPhase) {
	if c.chaos == nil {
		return
	}
	k := failKey{iter, phase}
	nodes, ok := c.chaos.crashes[k]
	if !ok {
		return
	}
	delete(c.chaos.crashes, k)
	c.crashViaHeartbeat(nodes)
}

// chaosRecoveryPhase fires pending crash-during-recovery events whose
// label prefix matches the recovery phase just reached.
func (c *Cluster[V, A]) chaosRecoveryPhase(phase string) {
	for i := range c.chaos.recCrashes {
		rc := &c.chaos.recCrashes[i]
		if rc.fired || !strings.HasPrefix(phase, rc.during) {
			continue
		}
		rc.fired = true
		c.crashViaHeartbeat(rc.nodes)
	}
}

// chaosPartitionSilence runs after the superstep of an iteration that
// installed a partition: the isolated nodes have computed and sent (their
// frames parked in the cable), and from the cluster's point of view they
// now go silent. The detector suspects and then confirms them like any
// crash; the barrier announces the failure, the iteration rolls back,
// and recovery rebuilds the slots with a bumped epoch that fences the
// parked traffic when the partition heals.
func (c *Cluster[V, A]) chaosPartitionSilence() {
	if c.chaos == nil || len(c.chaos.pendingPart) == 0 {
		return
	}
	nodes := c.chaos.pendingPart
	c.chaos.pendingPart = c.chaos.pendingPart[:0]
	c.crashViaHeartbeat(nodes)
}

// crashViaHeartbeat fail-stops the given nodes and lets the configured
// failure detector notice: the victims go silent and the detector — the
// centralized heartbeat monitor or SWIM gossip, per Config.Membership —
// advances the simulated clock by its detection delay and announces first
// suspicion and then confirmation to the coordinator (surfacing in the
// next barrier state).
func (c *Cluster[V, A]) crashViaHeartbeat(nodes []int) {
	c.ensureDetector()
	var victims []int
	for _, id := range nodes {
		if n := c.nodes[id]; n != nil && n.alive {
			n.alive = false
			c.net.SetFailed(id, true)
			victims = append(victims, id)
		}
	}
	if len(victims) == 0 {
		return
	}
	c.aliveDirty = true
	c.chaos.det.detect(victims)
}

// chaosMirror records one omission-chaos application and forwards it to
// the gossip detector's network if one exists; the log lets a detector
// built after the events fire start under the same faults.
func (c *Cluster[V, A]) chaosMirror(apply func(*netsim.Network)) {
	c.chaos.netEvents = append(c.chaos.netEvents, apply)
	if c.chaos.det != nil {
		if n := c.chaos.det.net(); n != nil {
			apply(n)
		}
	}
}

// ensureDetector lazily builds the configured failure detector, tracking
// every currently alive node. The gossip detector additionally replays
// the omission chaos applied so far onto its own network.
func (c *Cluster[V, A]) ensureDetector() {
	ch := c.chaos
	if ch.det != nil {
		return
	}
	host := detectorHost{
		clock: &c.clock,
		cost:  c.cfg.Cost,
		alive: func() []int {
			nodes := c.aliveNodes()
			ids := make([]int, len(nodes))
			for i, nd := range nodes {
				ids[i] = nd.id
			}
			return ids
		},
		suspect: func(id int) { c.coord.Suspect(id) },
		confirm: func(id int) { c.coord.MarkFailed(id) },
	}
	if c.cfg.Membership.Kind == MembershipGossip {
		det, err := newGossipDetector(len(c.nodes), c.cfg.Membership, c.cfg.ChaosSeed, host)
		if err != nil {
			// Membership and NumNodes are validated together; this
			// cannot fire.
			panic(err)
		}
		for _, apply := range ch.netEvents {
			apply(det.net())
		}
		ch.det = det
		return
	}
	ch.det = newCentralDetector(host)
}

// chaosTrack registers a node that (re)joined the membership — a rebirth or
// checkpoint newbie — with the failure detector, so a later chaos crash of
// the revived slot is detected like any other.
func (c *Cluster[V, A]) chaosTrack(id int) {
	if c.chaos == nil || c.chaos.det == nil {
		return
	}
	c.chaos.det.track(id)
}
