package core

import (
	"strings"
	"time"

	"imitator/internal/coord"
)

// chaosRuntime is the engine side of a Config.Chaos schedule. It exists
// only when a schedule is set: every hook in the steady-state loop is
// gated on a nil check, so fault-free runs pay nothing.
//
// Crash events are not applied synchronously the way the legacy
// Config.Failures path marks nodes failed at the coordinator: the victims
// merely stop heartbeating, and a coord.HeartbeatMonitor driven by the
// simulated clock (a FakeClock mapped onto sim-seconds) detects and
// announces them. Detection therefore goes through the same machinery a
// live cluster would use, at the same DetectionTime() cost the legacy path
// charges, so both paths produce identical results.
type chaosRuntime struct {
	// crashes is consumed by deleting fired keys, like the legacy failure
	// schedule: an iteration re-executed after rollback does not re-crash.
	crashes map[failKey][]int
	// recCrashes fire when a recovery pass reaches a matching phase label.
	recCrashes []recoveryCrash
	// slow/delays hold degradation events keyed by trigger iteration.
	slow   map[int][]ChaosEvent
	delays map[int]float64

	// mon/fc are the heartbeat failure detector and its simulated clock,
	// created lazily by the first crash. monAt is the sim-second already
	// applied to fc.
	mon   *coord.HeartbeatMonitor
	fc    *coord.FakeClock
	monAt float64
}

// recoveryCrash is one pending ChaosCrashDuringRecovery event.
type recoveryCrash struct {
	during string // phase-label prefix; "" matches the first phase
	nodes  []int
	fired  bool
}

// newChaosRuntime indexes a validated schedule for the run loop.
func newChaosRuntime(events []ChaosEvent) *chaosRuntime {
	ch := &chaosRuntime{
		crashes: make(map[failKey][]int),
		slow:    make(map[int][]ChaosEvent),
		delays:  make(map[int]float64),
	}
	for _, ev := range events {
		switch ev.Kind {
		case ChaosCrash:
			k := failKey{ev.Iteration, ev.Phase}
			ch.crashes[k] = append(ch.crashes[k], ev.Nodes...)
		case ChaosCrashDuringRecovery:
			ch.recCrashes = append(ch.recCrashes, recoveryCrash{
				during: ev.During,
				nodes:  append([]int(nil), ev.Nodes...),
			})
		case ChaosSlowLink:
			ch.slow[ev.Iteration] = append(ch.slow[ev.Iteration], ev)
		case ChaosDelayBurst:
			ch.delays[ev.Iteration] += ev.Seconds
		}
	}
	return ch
}

// chaosIterStart applies the chaos events due at the top of an iteration:
// link degradations and delay bursts first (so they shape the iteration's
// rounds, including any recovery rounds the iteration triggers), then
// before-barrier crashes. Degradations persist; a delay burst covers one
// execution attempt of its iteration.
func (c *Cluster[V, A]) chaosIterStart(iter int) {
	if c.chaos == nil {
		return
	}
	if evs, ok := c.chaos.slow[iter]; ok {
		delete(c.chaos.slow, iter)
		for _, ev := range evs {
			c.net.DegradeLink(ev.From, ev.To, ev.Factor)
		}
	}
	if d, ok := c.chaos.delays[iter]; ok {
		delete(c.chaos.delays, iter)
		c.net.SetRoundDelay(d)
	} else {
		c.net.SetRoundDelay(0)
	}
	c.chaosCrashAt(iter, FailBeforeBarrier)
}

// chaosCrashAt fires the crash events scheduled for (iter, phase), once.
func (c *Cluster[V, A]) chaosCrashAt(iter int, phase FailPhase) {
	if c.chaos == nil {
		return
	}
	k := failKey{iter, phase}
	nodes, ok := c.chaos.crashes[k]
	if !ok {
		return
	}
	delete(c.chaos.crashes, k)
	c.crashViaHeartbeat(nodes)
}

// chaosRecoveryPhase fires pending crash-during-recovery events whose
// label prefix matches the recovery phase just reached.
func (c *Cluster[V, A]) chaosRecoveryPhase(phase string) {
	for i := range c.chaos.recCrashes {
		rc := &c.chaos.recCrashes[i]
		if rc.fired || !strings.HasPrefix(phase, rc.during) {
			continue
		}
		rc.fired = true
		c.crashViaHeartbeat(rc.nodes)
	}
}

// crashViaHeartbeat fail-stops the given nodes and lets the heartbeat
// monitor detect them: the victims go silent, the simulated clock advances
// by the detection window, the survivors' beats land at the advanced
// instant, and Poll flags exactly the silent nodes, which are then
// announced to the coordinator (surfacing in the next barrier state).
func (c *Cluster[V, A]) crashViaHeartbeat(nodes []int) {
	c.ensureDetector()
	crashed := false
	for _, id := range nodes {
		if n := c.nodes[id]; n != nil && n.alive {
			n.alive = false
			c.net.SetFailed(id, true)
			crashed = true
		}
	}
	if !crashed {
		return
	}
	c.aliveDirty = true
	c.clock.Advance(c.cfg.Cost.DetectionTime())
	c.syncDetector()
	// The float sim-second -> Duration conversion truncates, so the fake
	// clock can land a nanosecond short of the detection deadline and the
	// monitor would never expire the victims. Overshoot it slightly: the
	// fake clock drives only the monitor, never the simulated timeline, and
	// survivors beat below at the same overshot instant.
	c.chaos.fc.Advance(time.Millisecond)
	for _, nd := range c.aliveNodes() {
		c.chaos.mon.Beat(nd.id)
	}
	for _, id := range c.chaos.mon.Poll(c.chaos.fc.Now()) {
		c.coord.MarkFailed(id)
	}
}

// ensureDetector lazily builds the heartbeat monitor on a FakeClock pinned
// to the simulated timeline, tracking every currently alive node.
func (c *Cluster[V, A]) ensureDetector() {
	ch := c.chaos
	if ch.mon != nil {
		return
	}
	ch.fc = coord.NewFakeClock(time.Unix(0, 0))
	ch.monAt = 0
	c.syncDetector()
	interval := time.Duration(c.cfg.Cost.HeartbeatInterval * float64(time.Second))
	mon, err := coord.NewHeartbeatMonitorWithClock(ch.fc, interval, c.cfg.Cost.DetectMissedBeats, nil)
	if err != nil {
		// Cost params are validated with the config; this cannot fire.
		panic(err)
	}
	ch.mon = mon
	for _, nd := range c.aliveNodes() {
		mon.Track(nd.id)
	}
}

// syncDetector advances the monitor's FakeClock to the current sim-second.
func (c *Cluster[V, A]) syncDetector() {
	ch := c.chaos
	if d := c.clock.Now() - ch.monAt; d > 0 {
		ch.fc.Advance(time.Duration(d * float64(time.Second)))
		ch.monAt = c.clock.Now()
	}
}

// chaosTrack registers a node that (re)joined the membership — a rebirth or
// checkpoint newbie — with the failure detector, so a later chaos crash of
// the revived slot is detected like any other.
func (c *Cluster[V, A]) chaosTrack(id int) {
	if c.chaos == nil || c.chaos.mon == nil {
		return
	}
	c.syncDetector()
	c.chaos.mon.Track(id)
}
