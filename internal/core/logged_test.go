package core_test

import (
	"errors"
	"testing"

	"imitator/internal/algorithms"
	"imitator/internal/core"
	"imitator/internal/datasets"
)

// loggedConfig builds a config running log-based failure-confined recovery
// without replication (the strategy's selling point: no FT replicas, no
// cluster-wide snapshots).
func loggedConfig(mode core.Mode, numNodes, iters int) core.Config {
	cfg := core.DefaultConfig(mode, numNodes)
	cfg.MaxIter = iters
	cfg.FT = core.FTConfig{}
	cfg.Logged = core.LoggedConfig{Enabled: true}
	cfg.Recovery = core.RecoverLogged
	cfg.MaxRebirths = 8
	return cfg
}

// TestLoggedRecoveryEquivalence: a crash plus log replay yields exactly the
// fault-free answer, in both engine modes, for both algorithm styles.
func TestLoggedRecoveryEquivalence(t *testing.T) {
	g := datasets.Tiny(600, 3600, 77)
	for _, mode := range []core.Mode{core.EdgeCutMode, core.VertexCutMode} {
		mode := mode
		t.Run("pagerank/"+mode.String(), func(t *testing.T) {
			base := loggedConfig(mode, 6, 8)
			want := runPR(t, base, g)
			withFail := base
			withFail.Failures = failAt(4, core.FailBeforeBarrier, 2)
			got := runPR(t, withFail, g)
			valuesEqual(t, mode.String(), got.Values, want.Values, 0)
			if len(got.Recoveries) != 1 {
				t.Fatalf("expected 1 recovery, got %d", len(got.Recoveries))
			}
			r := got.Recoveries[0]
			if r.Kind != "logged" {
				t.Errorf("Kind = %q, want logged", r.Kind)
			}
			if r.RecoveredVertices == 0 {
				t.Error("no vertices recovered")
			}
			if r.TotalSeconds() <= 0 {
				t.Error("recovery accounted no simulated time")
			}
		})
		t.Run("sssp/"+mode.String(), func(t *testing.T) {
			base := loggedConfig(mode, 6, 40)
			want := runSP(t, base, g)
			withFail := base
			withFail.Failures = failAt(3, core.FailBeforeBarrier, 1)
			got := runSP(t, withFail, g)
			valuesEqual(t, mode.String(), got.Values, want.Values, 0)
		})
	}
}

// TestLoggedSurvivorsZeroRecompute is the strategy's defining property
// (arXiv:1601.06496): recovery re-executes zero supersteps — survivors only
// wait while the reborn node replays its own logs. Checkpoint recovery from
// the same crash re-executes lost supersteps cluster-wide.
func TestLoggedSurvivorsZeroRecompute(t *testing.T) {
	g := datasets.Tiny(600, 3600, 77)
	const iters = 8
	countIterations := func(res *core.Result[float64]) int {
		n := 0
		for _, ev := range res.Trace {
			if ev.Kind == "iteration" {
				n++
			}
		}
		return n
	}

	cfg := loggedConfig(core.EdgeCutMode, 6, iters)
	cfg.Failures = failAt(5, core.FailBeforeBarrier, 2)
	logged := runPR(t, cfg, g)
	r := logged.Recoveries[0]
	if r.ReplayIters != 0 {
		t.Errorf("logged ReplayIters = %d, want 0 (survivors must not recompute)", r.ReplayIters)
	}
	// Crash at iteration 5: the reborn node alone replays logs 0..4.
	if r.LogReplaySupersteps != 5 {
		t.Errorf("LogReplaySupersteps = %d, want 5", r.LogReplaySupersteps)
	}
	// Every superstep was executed exactly once cluster-wide: the aborted
	// attempt of iteration 5 commits nothing, and recovery adds no extra
	// committed iterations.
	if got := countIterations(logged); got != iters {
		t.Errorf("logged run committed %d iterations, want %d", got, iters)
	}

	ck := ftConfig(core.EdgeCutMode, 6, iters, 1, core.RecoverCheckpoint)
	ck.Checkpoint.Interval = 3
	ck.Failures = failAt(5, core.FailBeforeBarrier, 2)
	ckres := runPR(t, ck, g)
	cr := ckres.Recoveries[0]
	if cr.ReplayIters == 0 {
		t.Error("checkpoint recovery replayed no supersteps; expected cluster-wide re-execution")
	}
	if got := countIterations(ckres); got != iters+cr.ReplayIters {
		t.Errorf("checkpoint run committed %d iterations, want %d (re-execution)", got, iters+cr.ReplayIters)
	}
}

// TestLoggedCompaction: full records bound the replay chain without
// changing results.
func TestLoggedCompaction(t *testing.T) {
	g := datasets.Tiny(500, 3000, 78)
	base := loggedConfig(core.EdgeCutMode, 5, 10)
	want := runPR(t, base, g)

	// No compaction: a crash at iteration 7 replays logs 0..6.
	plain := base
	plain.Failures = failAt(7, core.FailBeforeBarrier, 1)
	got := runPR(t, plain, g)
	valuesEqual(t, "nocompact", got.Values, want.Values, 0)
	if got.Recoveries[0].LogReplaySupersteps != 7 {
		t.Errorf("LogReplaySupersteps = %d, want 7", got.Recoveries[0].LogReplaySupersteps)
	}

	// CompactEvery=3 writes full records at supersteps 2 and 5; the chain
	// for the same crash starts at 5: logs 5, 6.
	compact := base
	compact.Logged.CompactEvery = 3
	compact.Failures = failAt(7, core.FailBeforeBarrier, 1)
	gotC := runPR(t, compact, g)
	valuesEqual(t, "compact", gotC.Values, want.Values, 0)
	if gotC.Recoveries[0].LogReplaySupersteps != 2 {
		t.Errorf("compacted LogReplaySupersteps = %d, want 2", gotC.Recoveries[0].LogReplaySupersteps)
	}
}

// TestLoggedCrashDuringRecovery: a second failure mid-replay restarts the
// pass with the union; the pristine rebuild makes replay idempotent.
func TestLoggedCrashDuringRecovery(t *testing.T) {
	g := datasets.Tiny(700, 4200, 84)
	base := loggedConfig(core.EdgeCutMode, 6, 8)
	want := runPR(t, base, g)

	for _, phase := range []string{"logged:join", "logged:replay"} {
		phase := phase
		t.Run(phase, func(t *testing.T) {
			cfg := base
			cfg.Failures = failAt(3, core.FailBeforeBarrier, 1)
			cl, err := core.NewCluster[float64, float64](cfg, g, algorithms.NewPageRank(g.NumVertices()))
			if err != nil {
				t.Fatal(err)
			}
			injected := false
			cl.SetRecoveryHook(func(p string) {
				if p == phase && !injected {
					injected = true
					cl.InjectFailure(4)
				}
			})
			res, err := cl.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !injected {
				t.Fatal("hook never fired")
			}
			valuesEqual(t, phase, res.Values, want.Values, 0)
		})
	}
}

// TestLoggedMultipleAndSequentialFailures: simultaneous and back-to-back
// crashes both confine recovery to the reborn nodes.
func TestLoggedMultipleAndSequentialFailures(t *testing.T) {
	g := datasets.Tiny(800, 4800, 80)
	base := loggedConfig(core.VertexCutMode, 8, 8)
	want := runPR(t, base, g)

	multi := base
	multi.Failures = failAt(4, core.FailBeforeBarrier, 1, 4, 6)
	got := runPR(t, multi, g)
	valuesEqual(t, "multi", got.Values, want.Values, 0)

	seq := base
	seq.Failures = []core.FailureSpec{
		{Iteration: 3, Phase: core.FailBeforeBarrier, Nodes: []int{1}},
		{Iteration: 6, Phase: core.FailAfterBarrier, Nodes: []int{4}},
	}
	got = runPR(t, seq, g)
	valuesEqual(t, "sequential", got.Values, want.Values, 0)
	if len(got.Recoveries) != 2 {
		t.Fatalf("expected 2 recoveries, got %d", len(got.Recoveries))
	}
	// The second crash (after barrier at iteration 6, committed iter 7)
	// replays a longer chain than the first.
	if a, b := got.Recoveries[0].LogReplaySupersteps, got.Recoveries[1].LogReplaySupersteps; b <= a {
		t.Errorf("second recovery replayed %d supersteps, want more than first's %d", b, a)
	}
}

// TestLoggedStats: the uniform Result.Strategy accounting reports the log
// writer's work.
func TestLoggedStats(t *testing.T) {
	g := datasets.Tiny(500, 3000, 86)
	plainCfg := core.DefaultConfig(core.EdgeCutMode, 5)
	plainCfg.MaxIter = 8
	plainCfg.FT = core.FTConfig{}
	plainCfg.Recovery = core.RecoverNone
	plain := runPR(t, plainCfg, g)
	if plain.Strategy.Kind != "none" || plain.Strategy.PersistCount != 0 {
		t.Errorf("plain Strategy = %+v, want none/0", plain.Strategy)
	}

	cfg := loggedConfig(core.EdgeCutMode, 5, 8)
	res := runPR(t, cfg, g)
	st := res.Strategy
	if st.Kind != "logged" {
		t.Errorf("Kind = %q, want logged", st.Kind)
	}
	if st.PersistCount != 8 {
		t.Errorf("PersistCount = %d, want 8 (one log round per superstep)", st.PersistCount)
	}
	if st.PersistSeconds <= 0 || st.PersistedBytes == 0 || st.LogRecords == 0 {
		t.Errorf("log accounting empty: %+v", st)
	}
	if res.SimSeconds <= plain.SimSeconds {
		t.Error("logging should cost simulated time")
	}
}

// TestLoggedStandbyExhaustion: logged recovery draws from the same standby
// pool as rebirth.
func TestLoggedStandbyExhaustion(t *testing.T) {
	g := datasets.Tiny(300, 1800, 83)
	cfg := loggedConfig(core.EdgeCutMode, 4, 6)
	cfg.MaxRebirths = 0
	cfg.Failures = failAt(2, core.FailBeforeBarrier, 1)
	cl, err := core.NewCluster[float64, float64](cfg, g, algorithms.NewPageRank(g.NumVertices()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Run(); !errors.Is(err, core.ErrUnrecoverable) {
		t.Fatalf("err = %v, want ErrUnrecoverable", err)
	}
}

// TestStrategyValidation: invalid strategy combinations are rejected at one
// seam with the typed error.
func TestStrategyValidation(t *testing.T) {
	for name, mutate := range map[string]func(*core.Config){
		"logged-without-enabled":     func(c *core.Config) { c.Recovery = core.RecoverLogged },
		"checkpoint-without-enabled": func(c *core.Config) { c.FT = core.FTConfig{}; c.Recovery = core.RecoverCheckpoint },
		"rebirth-without-ft":         func(c *core.Config) { c.FT = core.FTConfig{} },
		"bad-ckpt-interval": func(c *core.Config) {
			c.Checkpoint = core.CheckpointConfig{Enabled: true, Interval: 0}
		},
		"bad-compact-every": func(c *core.Config) {
			c.Logged = core.LoggedConfig{Enabled: true, CompactEvery: -1}
		},
		"fallback-without-ft": func(c *core.Config) {
			c.FT = core.FTConfig{}
			c.Checkpoint = core.CheckpointConfig{Enabled: true, Interval: 1}
			c.Recovery = core.RecoverCheckpoint
			c.RebirthFallback = true
		},
	} {
		cfg := core.DefaultConfig(core.EdgeCutMode, 4)
		mutate(&cfg)
		if err := cfg.Validate(); !errors.Is(err, core.ErrInvalidStrategy) {
			t.Errorf("%s: err = %v, want ErrInvalidStrategy", name, err)
		}
	}
}
