package core

import (
	"errors"
	"fmt"
)

// Sentinel errors for the failure paths callers branch on. Run and Validate
// wrap these with %w, so errors.Is works through the public API.
var (
	// ErrUnrecoverable reports a failure that exceeded the configured fault
	// tolerance. ErrNoStandby and ErrTooManyFailures wrap it, so a caller
	// that only cares whether the job can continue matches all three.
	ErrUnrecoverable = errors.New("core: unrecoverable failure")

	// ErrNoStandby reports a Rebirth/Checkpoint recovery that ran out of
	// standby nodes (Config.MaxRebirths). With Config.RebirthFallback set,
	// Rebirth falls back to Migration instead of surfacing it.
	ErrNoStandby = fmt.Errorf("%w: standby pool exhausted", ErrUnrecoverable)

	// ErrTooManyFailures reports more overlapping failures than the
	// replication degree K tolerates: a vertex lost its master and every
	// mirror, or recovery kept being re-failed until the restart budget ran
	// out.
	ErrTooManyFailures = fmt.Errorf("%w: more failures than tolerated", ErrUnrecoverable)

	// ErrInvalidSchedule reports a failure/chaos schedule that contradicts
	// the job configuration (bad iteration, unknown node, factor < 1, ...)
	// or a repro string that does not parse.
	ErrInvalidSchedule = errors.New("core: invalid failure schedule")

	// ErrInvalidStrategy reports an FT-strategy configuration the strategy
	// seam rejected (unknown recovery kind, or a strategy missing the
	// machinery it depends on, e.g. checkpoint recovery without
	// Checkpoint.Enabled).
	ErrInvalidStrategy = errors.New("core: invalid FT-strategy configuration")
)
