package core

import (
	"math"
	"testing"

	"imitator/internal/graph"
)

func TestServeWireQueryRoundTrip(t *testing.T) {
	cases := []Query{
		{Kind: QueryValue, Vertex: 0},
		{Kind: QueryValue, Vertex: 1<<31 - 1, StalenessBound: -1},
		{Kind: QueryTopK, Vertex: 0, K: 10, StalenessBound: 3},
		{Kind: QueryNeighbors, Vertex: 42, K: 7},
	}
	for _, q := range cases {
		buf := EncodeQuery(nil, q)
		got, err := DecodeQuery(buf)
		if err != nil {
			t.Fatalf("%+v: %v", q, err)
		}
		if got != q {
			t.Fatalf("round trip: got %+v, want %+v", got, q)
		}
	}
}

func TestServeWireAnswerRoundTrip(t *testing.T) {
	cases := []Answer{
		{Kind: QueryValue, Vertex: 3, Value: 0.25, Epoch: 4, Frontier: 5, Node: 2},
		{Kind: QueryValue, Vertex: 3, Value: math.Inf(1), Epoch: 0, Frontier: 0, StalenessBound: -1, Node: 0, FromReplica: true},
		{
			Kind: QueryTopK, Epoch: 9, Frontier: 9, Node: 1,
			TopK: []RankEntry{{Vertex: 7, Value: 3.5}, {Vertex: 1, Value: 3.5}, {Vertex: 9, Value: 0.1}},
		},
		{
			Kind: QueryNeighbors, Vertex: 12, Epoch: 2, Frontier: 3, Node: 4, FromReplica: true,
			Neighbors: []graph.VertexID{1, 5, 9, 200},
		},
	}
	for _, a := range cases {
		buf := EncodeAnswer(nil, a)
		got, err := DecodeAnswer(buf)
		if err != nil {
			t.Fatalf("%+v: %v", a, err)
		}
		if got.Kind != a.Kind || got.Vertex != a.Vertex || got.Value != a.Value ||
			got.Epoch != a.Epoch || got.Frontier != a.Frontier ||
			got.StalenessBound != a.StalenessBound || got.Node != a.Node ||
			got.FromReplica != a.FromReplica {
			t.Fatalf("round trip scalar fields: got %+v, want %+v", got, a)
		}
		if len(got.TopK) != len(a.TopK) || len(got.Neighbors) != len(a.Neighbors) {
			t.Fatalf("round trip lengths: got %d/%d, want %d/%d",
				len(got.TopK), len(got.Neighbors), len(a.TopK), len(a.Neighbors))
		}
		for i := range a.TopK {
			if got.TopK[i] != a.TopK[i] {
				t.Fatalf("rank entry %d: got %+v, want %+v", i, got.TopK[i], a.TopK[i])
			}
		}
		for i := range a.Neighbors {
			if got.Neighbors[i] != a.Neighbors[i] {
				t.Fatalf("neighbor %d: got %d, want %d", i, got.Neighbors[i], a.Neighbors[i])
			}
		}
	}
}

func TestServeWireRejectsTrailingAndTruncated(t *testing.T) {
	q := EncodeQuery(nil, Query{Kind: QueryTopK, K: 5})
	if _, err := DecodeQuery(append(q, 0)); err == nil {
		t.Fatal("trailing byte accepted by DecodeQuery")
	}
	if _, err := DecodeQuery(q[:len(q)-1]); err == nil {
		t.Fatal("truncated query accepted")
	}
	a := EncodeAnswer(nil, Answer{Kind: QueryValue, Value: 1, TopK: []RankEntry{{Vertex: 1, Value: 2}}})
	if _, err := DecodeAnswer(append(a, 0)); err == nil {
		t.Fatal("trailing byte accepted by DecodeAnswer")
	}
	if _, err := DecodeAnswer(a[:len(a)-1]); err == nil {
		t.Fatal("truncated answer accepted")
	}
}

// FuzzQueryDecode hardens the query decoder against arbitrary bytes: never
// panic, and anything that decodes must re-encode to the same bytes.
func FuzzQueryDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeQuery(nil, Query{Kind: QueryValue, Vertex: 9}))
	f.Add(EncodeQuery(nil, Query{Kind: QueryTopK, K: 3, StalenessBound: 1}))
	f.Add([]byte{255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := DecodeQuery(data)
		if err != nil {
			return
		}
		if got := EncodeQuery(nil, q); string(got) != string(data) {
			t.Fatalf("re-encode mismatch: %x vs %x", got, data)
		}
	})
}

// FuzzAnswerDecode hardens the answer decoder: never panic, never allocate
// beyond the payload's sanity bound, and a successful decode survives an
// encode/decode round trip with lengths intact.
func FuzzAnswerDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeAnswer(nil, Answer{Kind: QueryValue, Value: 0.5, Epoch: 3, Frontier: 4, Node: 1}))
	f.Add(EncodeAnswer(nil, Answer{Kind: QueryTopK, TopK: []RankEntry{{Vertex: 2, Value: 1}}}))
	f.Add([]byte{1, 0, 0, 0, 0, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := DecodeAnswer(data)
		if err != nil {
			return
		}
		rt, err := DecodeAnswer(EncodeAnswer(nil, a))
		if err != nil {
			t.Fatalf("round trip decode: %v", err)
		}
		if len(rt.TopK) != len(a.TopK) || len(rt.Neighbors) != len(a.Neighbors) {
			t.Fatalf("round trip lengths diverged: %d/%d vs %d/%d",
				len(rt.TopK), len(rt.Neighbors), len(a.TopK), len(a.Neighbors))
		}
	})
}
