package core

import (
	"encoding/binary"
	"fmt"

	"imitator/internal/costmodel"
	"imitator/internal/ftlog"
	"imitator/internal/netsim"
)

// This file is the engine side of log-based failure-confined recovery
// (Config.Logged + RecoverLogged; wire format in internal/ftlog).
//
// Write path: during each superstep every node captures the raw sync
// payloads it receives, in receive order; after commit it persists one log
// file holding its touched-master deltas plus those payloads. Every
// CompactEvery supersteps the file is instead a full snapshot record of
// every entry, bounding replay chains.
//
// Recovery path: a reborn node rebuilds its immutable topology from the
// pristine loader state, then replays its own log chain — full record
// first, then per-superstep deltas and message payloads — reaching exactly
// the state the crashed node had committed. Survivors neither roll back
// nor recompute: the failure is confined to the reborn nodes.

// flogPath names one node's log file for one committed superstep.
func flogPath(node, superstep int) string { return fmt.Sprintf("ftlog/%d/%d", node, superstep) }

// flogState is the per-run log runtime, nil unless Config.Logged.Enabled —
// the capture hook in the receive phases is a nil check away from the
// fault-free hot path, which stays bit-identical.
type flogState struct {
	// msgScratch[n] accumulates node n's received sync payloads this
	// superstep, already length-framed; msgCount[n] counts them. Receive
	// phases run one goroutine per node, so slot access is contention-free.
	msgScratch [][]byte
	msgCount   []int

	// fullEpochs lists the supersteps persisted as full (compaction)
	// records, ascending; replay chains start at the latest one.
	fullEpochs []int

	// Reusable per-write scratch (per-node slots).
	nodeCosts []float64
	nodeRecs  []int
	nodeBytes []int64

	// Accounting for StrategyStats.
	writeSeconds float64
	bytes        int64
	records      int64
	writes       int
}

// flogInit builds the log runtime (load step 10, Logged.Enabled only).
func (c *Cluster[V, A]) flogInit() {
	n := c.cfg.NumNodes
	c.flog = &flogState{
		msgScratch: make([][]byte, n),
		msgCount:   make([]int, n),
		nodeCosts:  make([]float64, n),
		nodeRecs:   make([]int, n),
		nodeBytes:  make([]int64, n),
	}
}

// flogCapture copies the receive round's sync payloads into the node's
// message log scratch, in receive order. Payload buffers recycle after
// decode, so the log keeps its own framed copy.
func (c *Cluster[V, A]) flogCapture(nd *node[V, A]) {
	f := c.flog
	buf := f.msgScratch[nd.id]
	for i := range nd.recvMsgs {
		if nd.recvMsgs[i].Kind != netsim.KindSync {
			continue
		}
		if buf == nil {
			buf = c.pool.Get()
		}
		buf = ftlog.AppendMessage(buf, nd.recvMsgs[i].Payload)
		f.msgCount[nd.id]++
	}
	f.msgScratch[nd.id] = buf
}

// flogRollback discards the aborted iteration's captured messages (the
// re-execution will capture them again).
func (c *Cluster[V, A]) flogRollback() {
	f := c.flog
	for i, buf := range f.msgScratch {
		if cap(buf) > 0 {
			c.pool.Put(buf)
		}
		f.msgScratch[i] = nil
		f.msgCount[i] = 0
	}
}

// flogWrite persists superstep c.iter-1's log file on every alive node:
// touched-master deltas plus the captured sync payloads, or a full
// snapshot record of every entry on compaction supersteps. Nodes write
// concurrently; each node's records encode chunk-parallel and concatenate
// in chunk order, so the log bytes match the sequential encoder's for any
// worker count.
func (c *Cluster[V, A]) flogWrite() {
	f := c.flog
	s := c.iter - 1
	ce := c.cfg.Logged.CompactEvery
	full := ce > 0 && c.iter%ce == 0
	kind := ftlog.KindDelta
	if full {
		kind = ftlog.KindFull
	}
	start := c.clock.Now()
	c.eachAlive(func(nd *node[V, A]) {
		buf := ftlog.AppendFileHeader(c.pool.Get(), uint32(s), kind)
		buf, recAt := ftlog.AppendCountPlaceholder(buf)
		chunks, count := c.chunkEncode(len(nd.entries), func(b []byte, lo, hi int) ([]byte, int) {
			cnt := 0
			for i := lo; i < hi; i++ {
				e := &nd.entries[i]
				if !full && (!e.isMaster() || e.lastTouchedIter != int32(s)) {
					continue
				}
				var flags byte
				if e.active {
					flags |= ftlog.FlagActive
				}
				if e.lastActivate {
					flags |= ftlog.FlagLastActivate
				}
				var vAt int
				b, vAt = ftlog.AppendRecordPrefix(b, uint32(i), flags, e.lastActivateIter)
				b = c.vc.Append(b, e.value)
				ftlog.PatchValLen(b, vAt)
				cnt++
			}
			return b, cnt
		})
		for _, cb := range chunks {
			buf = append(buf, cb...)
			c.pool.Put(cb)
		}
		ftlog.PatchCount(buf, recAt, count)
		buf, msgAt := ftlog.AppendCountPlaceholder(buf)
		msgs := 0
		if !full {
			buf = append(buf, f.msgScratch[nd.id]...)
			msgs = f.msgCount[nd.id]
			ftlog.PatchCount(buf, msgAt, msgs)
		}
		if cap(f.msgScratch[nd.id]) > 0 {
			c.pool.Put(f.msgScratch[nd.id])
		}
		f.msgScratch[nd.id] = nil
		f.msgCount[nd.id] = 0
		f.nodeCosts[nd.id] = c.flogWriteCost(nd, flogPath(nd.id, s), buf)
		f.nodeRecs[nd.id] = count + msgs
		f.nodeBytes[nd.id] = int64(len(buf))
		c.pool.Put(buf)
	})
	var span costmodel.Span
	for _, nd := range c.aliveNodes() {
		span.Observe(f.nodeCosts[nd.id])
		f.records += int64(f.nodeRecs[nd.id])
		f.bytes += f.nodeBytes[nd.id]
		f.nodeCosts[nd.id], f.nodeRecs[nd.id], f.nodeBytes[nd.id] = 0, 0, 0
	}
	c.clock.Advance(span.Max())
	f.writeSeconds += span.Max()
	f.writes++
	if full {
		f.fullEpochs = append(f.fullEpochs, s)
	}
	c.trace = append(c.trace, TraceEvent{Iter: s, Kind: "ftlog", Start: start, End: c.clock.Now()})
}

// flogWriteCost stores the log file and returns its simulated cost. The
// bytes land on the (failure-surviving) DFS, but the cost model charges a
// stream append — Params.LogWrite — rather than a snapshot-style create:
// log files append to a pre-opened pipeline, skipping the per-operation
// namenode round-trips DFSWrite pays.
func (c *Cluster[V, A]) flogWriteCost(nd *node[V, A], path string, data []byte) float64 {
	c.dfs.Write(nd.id, path, data)
	nd.met.DFSWriteBytes += int64(len(data))
	return c.cfg.Cost.LogWrite(int64(len(data)))
}

// recoverLogged rebuilds each crashed node from the pristine loader state
// and replays its own log chain (§ DESIGN.md 10.3). Survivors perform zero
// recomputation: no rollback beyond the aborted iteration, no snapshot
// reload, no re-executed supersteps — ReplayIters stays 0 and the cluster
// iteration counter is untouched.
func (c *Cluster[V, A]) recoverLogged(failed []int, iter int) ([]int, error) {
	if c.rebirthsUsed+len(failed) > c.cfg.MaxRebirths {
		return nil, fmt.Errorf("%w: %d standby nodes exhausted", ErrNoStandby, c.cfg.MaxRebirths)
	}
	rec := RecoveryReport{Kind: "logged", Iteration: iter, Failed: append([]int(nil), failed...)}
	start := c.clock.Now()
	msgs0, bytes0 := c.met.RecoveryTraffic()

	// Join: standby newbies rebuild the crashed slots' immutable topology
	// from the pristine loader state (the metadata snapshot's content) and
	// enter the membership under a bumped epoch.
	for _, f := range failed {
		nd := c.rebuildPristineNode(f)
		if nd == nil {
			return nil, fmt.Errorf("%w: no pristine state for node %d", ErrUnrecoverable, f)
		}
		meta, cost, err := c.dfs.Read(f, fmt.Sprintf("ckptmeta/%d", f))
		if err != nil {
			return nil, fmt.Errorf("core: metadata snapshot: %w", err)
		}
		nd.met.DFSReadBytes += int64(len(meta))
		c.clock.Advance(cost)
		c.nodes[f] = nd
		c.net.SetFailed(f, false)
		c.coord.Join(f)
		c.net.SetEpoch(f, c.coord.Epoch(f)) // fresh incarnation: fence the old life's traffic
		c.chaosTrack(f)
		c.rebirthsUsed++
		rec.RecoveredVertices += len(nd.entries)
		rec.RecoveredEdges += nd.localEdges
	}
	c.hook("logged:join")
	if state := c.barrier(); state.IsFail() {
		return state.Failed, nil
	}
	rec.ReloadSeconds = c.clock.Now() - start

	// Replay: each reborn node alone reads and applies its log chain;
	// the reborn nodes replay concurrently (span), survivors stay idle.
	replaySimStart := c.clock.Now()
	var span costmodel.Span
	maxSteps := 0
	for _, f := range failed {
		nd := c.nodes[f]
		if !nd.alive {
			continue // killed again mid-recovery; the restart handles it
		}
		cost, steps, err := c.flogReplay(nd, iter)
		if err != nil {
			return nil, err
		}
		span.Observe(cost)
		if steps > maxSteps {
			maxSteps = steps
		}
	}
	c.clock.Advance(span.Max())
	c.hook("logged:replay")
	if state := c.barrier(); state.IsFail() {
		return state.Failed, nil
	}
	rec.ReplaySeconds = c.clock.Now() - replaySimStart
	rec.LogReplaySupersteps = maxSteps

	msgs1, bytes1 := c.met.RecoveryTraffic()
	rec.Msgs, rec.Bytes = msgs1-msgs0, bytes1-bytes0
	c.refreshMemoryMetrics()
	c.recoveries = append(c.recoveries, rec)
	c.trace = append(c.trace, TraceEvent{Iter: iter, Kind: "recovery", Start: start, End: c.clock.Now()})
	return nil, nil
}

// flogReplay applies nd's log chain up to (and including) superstep
// iter-1: the latest full record at or before it, then every later
// superstep's deltas and logged sync payloads. Returns the node's
// simulated replay cost and the number of log files applied.
func (c *Cluster[V, A]) flogReplay(nd *node[V, A], iter int) (float64, int, error) {
	s0 := 0
	for _, fe := range c.flog.fullEpochs {
		if fe <= iter-1 {
			s0 = fe
		}
	}
	cost := 0.0
	steps := 0
	for s := s0; s <= iter-1; s++ {
		data, rcost, err := c.dfs.Read(nd.id, flogPath(nd.id, s))
		if err != nil {
			return 0, 0, fmt.Errorf("core: log replay node %d superstep %d: %w", nd.id, s, err)
		}
		nd.met.DFSReadBytes += int64(len(data))
		cost += rcost
		installed, err := c.flogApply(nd, data, s)
		if err != nil {
			return 0, 0, fmt.Errorf("core: log replay node %d superstep %d: %w", nd.id, s, err)
		}
		cost += float64(installed) * c.cfg.Cost.ReconstructPerVertex
		steps++
	}
	return cost, steps, nil
}

// flogApply installs one log file's records into nd's entries: state
// records restore masters (and, in full records, every entry); message
// payloads replay the sync records the crashed node had received at
// superstep s, with the same commit semantics the live path applied.
func (c *Cluster[V, A]) flogApply(nd *node[V, A], data []byte, s int) (int, error) {
	dec, err := ftlog.NewDecoder(data)
	if err != nil {
		return 0, err
	}
	if got := int(dec.Superstep()); got != s {
		return 0, fmt.Errorf("core: log superstep %d != %d", got, s)
	}
	installed := 0
	for {
		r, ok, err := dec.NextRecord()
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		if int(r.Pos) >= len(nd.entries) {
			return 0, fmt.Errorf("core: log record position %d outside array", r.Pos)
		}
		val, _, err := c.vc.Read(r.Val)
		if err != nil {
			return 0, err
		}
		e := &nd.entries[r.Pos]
		e.value = val
		e.lastActivate = r.Flags&ftlog.FlagLastActivate != 0
		e.lastActivateIter = r.Stamp
		if e.isMaster() {
			e.active = r.Flags&ftlog.FlagActive != 0
		}
		e.clearPending()
		installed++
	}
	for {
		payload, ok, err := dec.NextMessage()
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		n, err := c.flogApplySync(nd, payload, int32(s))
		if err != nil {
			return 0, err
		}
		installed += n
	}
	return installed, nil
}

// flogApplySync replays one logged sync payload: the same record stream
// applySyncPayload decodes live, installed directly with the commit-time
// semantics (value, scatter flag, stamp s).
func (c *Cluster[V, A]) flogApplySync(nd *node[V, A], payload []byte, s int32) (int, error) {
	installed := 0
	buf := payload
	for len(buf) > 0 {
		if len(buf) < 5 {
			return 0, fmt.Errorf("core: truncated logged sync record")
		}
		pos := binary.LittleEndian.Uint32(buf)
		flags := buf[4]
		val, rest, err := c.vc.Read(buf[5:])
		if err != nil {
			return 0, err
		}
		if int(pos) >= len(nd.entries) {
			return 0, fmt.Errorf("core: logged sync position %d outside array", pos)
		}
		e := &nd.entries[pos]
		e.value = val
		e.lastActivate = flags&1 != 0
		e.lastActivateIter = s
		e.clearPending()
		installed++
		buf = rest
	}
	return installed, nil
}
