package core

import (
	"errors"
	"strings"
	"testing"

	"imitator/internal/datasets"
	"imitator/internal/graph"
)

// selfishPR is fakePR with the §4.4 optimization allowed (Apply ignores the
// previous value, so selfish recomputation is sound).
type selfishPR struct{ fakePR }

func (selfishPR) CanRecomputeSelfish() bool { return true }

func serveTestCluster(t *testing.T, cfg Config, g *graph.Graph) *Cluster[float64, float64] {
	t.Helper()
	cl, err := NewCluster[float64, float64](cfg, g, selfishPR{})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func serveFTConfig(mode Mode, numNodes, iters, k int, recovery RecoveryKind) Config {
	cfg := DefaultConfig(mode, numNodes)
	cfg.MaxIter = iters
	cfg.FT.K = k
	cfg.Recovery = recovery
	cfg.MaxRebirths = 8
	cfg.Serve = ServeConfig{Enabled: true}
	return cfg
}

// TestServeRoutesAwaySuspected: a merely *suspected* master (advisory
// first-stage detection) is already avoided — the answer comes from a
// replica host, without waiting for the failure to be confirmed.
func TestServeRoutesAwaySuspected(t *testing.T) {
	g := datasets.Tiny(300, 1800, 41)
	cl := serveTestCluster(t, serveFTConfig(EdgeCutMode, 5, 4, 1, RecoverRebirth), g)
	defer cl.net.Close()

	// Pick a non-selfish vertex (it has computation replicas to fall back to).
	var v graph.VertexID
	for v = 0; int(v) < g.NumVertices(); v++ {
		if !g.IsSelfish(v) {
			break
		}
	}
	mn := int(cl.masterLoc[v])
	before, err := cl.Query(Query{Kind: QueryValue, Vertex: v})
	if err != nil {
		t.Fatal(err)
	}
	if before.Node != mn || before.FromReplica {
		t.Fatalf("healthy master should serve: node=%d fromReplica=%v (master %d)", before.Node, before.FromReplica, mn)
	}

	cl.coord.Suspect(mn)
	after, err := cl.Query(Query{Kind: QueryValue, Vertex: v})
	if err != nil {
		t.Fatal(err)
	}
	if after.Node == mn || !after.FromReplica {
		t.Fatalf("suspected master still serving: node=%d fromReplica=%v", after.Node, after.FromReplica)
	}
	if after.Value != before.Value || after.Epoch != before.Epoch {
		t.Fatalf("replica answer diverged: %v@%d vs %v@%d", after.Value, after.Epoch, before.Value, before.Epoch)
	}
}

// TestServeSelfishUnavailable: when the §4.4 optimization is on, a selfish
// vertex's FT-only replicas are never synced, so with its master down the
// honest answer is ErrVertexUnavailable — not a stale fabrication.
func TestServeSelfishUnavailable(t *testing.T) {
	g := datasets.Tiny(300, 1200, 41)
	var selfish graph.VertexID
	found := false
	for v := 0; v < g.NumVertices(); v++ {
		if g.IsSelfish(graph.VertexID(v)) {
			selfish, found = graph.VertexID(v), true
			break
		}
	}
	if !found {
		t.Skip("dataset has no selfish vertex")
	}
	cfg := serveFTConfig(EdgeCutMode, 5, 4, 1, RecoverRebirth)
	cl := serveTestCluster(t, cfg, g)
	defer cl.net.Close()
	if !cl.selfishOptOn {
		t.Fatal("selfish optimization should be on")
	}

	mn := int(cl.masterLoc[selfish])
	cl.coord.Suspect(mn)
	if _, err := cl.Query(Query{Kind: QueryValue, Vertex: selfish}); !errors.Is(err, ErrVertexUnavailable) {
		t.Fatalf("selfish vertex with suspected master: %v", err)
	}

	// With the optimization off, FT-only replicas are synced and may serve.
	cfg2 := cfg
	cfg2.FT.SelfishOpt = false
	cl2 := serveTestCluster(t, cfg2, g)
	defer cl2.net.Close()
	mn2 := int(cl2.masterLoc[selfish])
	cl2.coord.Suspect(mn2)
	ans, err := cl2.Query(Query{Kind: QueryValue, Vertex: selfish})
	if err != nil {
		t.Fatalf("without selfish opt the FT replica should serve: %v", err)
	}
	if !ans.FromReplica || ans.Node == mn2 {
		t.Fatalf("expected replica answer, got node=%d fromReplica=%v", ans.Node, ans.FromReplica)
	}
}

// TestServeMidRebirthRouting: while a rebirth pass is rebuilding the failed
// node, queries for vertices mastered there are answered by surviving
// replica hosts from the last committed epoch — never by the dead node,
// never torn.
func TestServeMidRebirthRouting(t *testing.T) {
	for _, mode := range []Mode{EdgeCutMode, VertexCutMode} {
		g := datasets.Tiny(400, 2400, 43)
		cfg := serveFTConfig(mode, 6, 8, 2, RecoverRebirth)
		cfg.Failures = []FailureSpec{{Iteration: 3, Phase: FailBeforeBarrier, Nodes: []int{1}}}
		cl := serveTestCluster(t, cfg, g)

		checked := 0
		var hookErr error
		cl.SetRecoveryHook(func(phase string) {
			if hookErr != nil || !strings.HasPrefix(phase, "rebirth:") {
				return
			}
			for v := 0; v < g.NumVertices() && checked < 200; v++ {
				if int(cl.masterLoc[v]) != 1 {
					continue
				}
				ans, err := cl.Query(Query{Kind: QueryValue, Vertex: graph.VertexID(v)})
				if err != nil {
					if errors.Is(err, ErrVertexUnavailable) && cl.g.IsSelfish(graph.VertexID(v)) {
						continue // honest §4.4 refusal
					}
					hookErr = err
					return
				}
				// The dead node must not serve while it is down; once the
				// rebirth joins it back, it is alive and legitimate again.
				if ans.Node == 1 && !cl.coord.Alive(1) {
					hookErr = errors.New("dead node served a query")
					return
				}
				if ans.Staleness() > 1 {
					hookErr = errors.New("mid-rebirth staleness above one epoch")
					return
				}
				checked++
			}
		})
		if _, err := cl.Run(); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if hookErr != nil {
			t.Fatalf("%v: %v", mode, hookErr)
		}
		if checked == 0 {
			t.Fatalf("%v: no mid-rebirth queries exercised", mode)
		}
	}
}

// TestServePartitionFencedRouting: a partitioned node is suspected,
// confirmed failed, and its masters migrate to survivors. Queries issued
// while the fenced node is still confirmed-dead (mid-promotion, before the
// routing view refreshes) must divert to replicas; after recovery and heal,
// the moved masters serve directly and the fenced node never reappears in
// answers.
func TestServePartitionFencedRouting(t *testing.T) {
	g := datasets.Tiny(400, 2400, 47)
	cfg := serveFTConfig(EdgeCutMode, 6, 8, 2, RecoverMigration)
	cfg.Chaos = []ChaosEvent{{Kind: ChaosPartition, Iteration: 3, Nodes: []int{2}, HealIter: 6}}
	cfg.ChaosSeed = 7
	cl := serveTestCluster(t, cfg, g)

	var wasMastered []graph.VertexID
	for v := 0; v < g.NumVertices(); v++ {
		if int(cl.masterLoc[v]) == 2 {
			wasMastered = append(wasMastered, graph.VertexID(v))
		}
	}
	if len(wasMastered) == 0 {
		t.Fatal("no vertices mastered on the partitioned node")
	}

	checked := 0
	var hookErr error
	cl.SetRecoveryHook(func(phase string) {
		if hookErr != nil || phase != "migration:promote" || cl.coord.Alive(2) {
			return
		}
		for _, v := range wasMastered {
			if checked >= 200 {
				break
			}
			ans, err := cl.Query(Query{Kind: QueryValue, Vertex: v})
			if err != nil {
				if errors.Is(err, ErrVertexUnavailable) && cl.g.IsSelfish(v) {
					continue
				}
				hookErr = err
				return
			}
			if ans.Node == 2 {
				hookErr = errors.New("fenced node served a query")
				return
			}
			if !ans.FromReplica {
				hookErr = errors.New("mid-promotion answer not marked FromReplica")
				return
			}
			checked++
		}
	})
	if _, err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	if hookErr != nil {
		t.Fatal(hookErr)
	}
	if checked == 0 {
		t.Fatal("no queries exercised during the partition window")
	}
	// After migration the moved masters serve directly again — and never
	// from the permanently-dead partitioned node.
	for _, v := range wasMastered[:min(20, len(wasMastered))] {
		ans, err := cl.Query(Query{Kind: QueryValue, Vertex: v})
		if err != nil {
			if errors.Is(err, ErrVertexUnavailable) && cl.g.IsSelfish(v) {
				continue
			}
			t.Fatal(err)
		}
		if ans.Node == 2 {
			t.Fatal("dead node still named as serving node after migration")
		}
		if ans.FromReplica {
			t.Fatalf("vertex %d still served by fallback after the routing refresh", v)
		}
	}
}

// TestServeStalenessBound: with sparse publishes, a recovery window lags
// more than one epoch; bounded queries are refused with ErrStaleRead while
// unbounded ones are served with the staleness surfaced.
func TestServeStalenessBound(t *testing.T) {
	g := datasets.Tiny(300, 1800, 49)
	cfg := serveFTConfig(EdgeCutMode, 5, 8, 1, RecoverRebirth)
	cfg.Serve.PublishEvery = 3
	cfg.Failures = []FailureSpec{{Iteration: 4, Phase: FailBeforeBarrier, Nodes: []int{1}}}
	cl := serveTestCluster(t, cfg, g)

	sawReject, sawServed := false, false
	var hookErr error
	cl.SetRecoveryHook(func(phase string) {
		if hookErr != nil {
			return
		}
		// Frontier is 5 (executing superstep 4), last publish was epoch 3.
		if _, err := cl.Query(Query{Kind: QueryValue, Vertex: 0, StalenessBound: 1}); errors.Is(err, ErrStaleRead) {
			sawReject = true
		} else if err != nil {
			hookErr = err
			return
		}
		ans, err := cl.Query(Query{Kind: QueryValue, Vertex: 0, StalenessBound: -1})
		if err != nil {
			hookErr = err
			return
		}
		if ans.Epoch != 3 || ans.Staleness() != 2 {
			hookErr = errors.New("expected epoch 3 with staleness 2 during recovery")
			return
		}
		sawServed = true
	})
	res, err := cl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if hookErr != nil {
		t.Fatal(hookErr)
	}
	if !sawReject || !sawServed {
		t.Fatalf("bounded/unbounded mid-recovery queries not exercised: reject=%v served=%v", sawReject, sawServed)
	}
	if res.Serve.StaleRejected == 0 || res.Serve.MaxStaleness < 2 {
		t.Fatalf("serve stats missed the stale window: %+v", res.Serve)
	}
	// The final forced publish closes the gap even off the PublishEvery grid.
	ans, err := cl.Query(Query{Kind: QueryValue, Vertex: 0, StalenessBound: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Epoch != cfg.MaxIter || ans.Staleness() != 0 {
		t.Fatalf("converged answer epoch=%d staleness=%d", ans.Epoch, ans.Staleness())
	}
}
