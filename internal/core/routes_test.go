package core

import (
	"testing"

	"imitator/internal/datasets"
)

// naiveRoute derives a node's sync-routing table directly from the entry
// replica tables — the per-entry walk the superstep loops performed before
// the flat CSR form existed.
func naiveRoute[V, A any](nd *node[V, A]) syncRoute {
	var rt syncRoute
	for i := range nd.entries {
		rt.start = append(rt.start, int32(len(rt.node)))
		e := &nd.entries[i]
		for ri, rn := range e.replicaNodes {
			rt.node = append(rt.node, rn)
			rt.pos = append(rt.pos, e.replicaPos[ri])
			rt.ftOnly = append(rt.ftOnly, e.replicaFTOnly[ri])
		}
	}
	rt.start = append(rt.start, int32(len(rt.node)))
	return rt
}

func routesEqual(a, b *syncRoute) bool {
	if len(a.start) != len(b.start) || len(a.node) != len(b.node) {
		return false
	}
	for i := range a.start {
		if a.start[i] != b.start[i] {
			return false
		}
	}
	for i := range a.node {
		if a.node[i] != b.node[i] || a.pos[i] != b.pos[i] || a.ftOnly[i] != b.ftOnly[i] {
			return false
		}
	}
	return true
}

// TestSyncRoutesRebuiltAfterRecovery: Rebirth and Migration reshape replica
// tables (and append entries) on the nodes they touch. Every precomputed
// routing table in use after the run must match the from-scratch per-entry
// derivation — i.e. recovery must have invalidated stale tables and the
// subsequent supersteps must have rebuilt them.
func TestSyncRoutesRebuiltAfterRecovery(t *testing.T) {
	cases := []struct {
		name string
		mode Mode
		rec  RecoveryKind
	}{
		{"rebirth-edgecut", EdgeCutMode, RecoverRebirth},
		{"rebirth-vertexcut", VertexCutMode, RecoverRebirth},
		{"migration-edgecut", EdgeCutMode, RecoverMigration},
		{"migration-vertexcut", VertexCutMode, RecoverMigration},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := datasets.Tiny(300, 1800, 909)
			cfg := DefaultConfig(tc.mode, 4)
			cfg.Recovery = tc.rec
			cfg.MaxIter = 8
			cfg.Failures = []FailureSpec{{Iteration: 3, Phase: FailBeforeBarrier, Nodes: []int{1}}}
			cl, err := NewCluster[float64, float64](cfg, g, fakePR{})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := cl.Run(); err != nil {
				t.Fatal(err)
			}
			if len(cl.recoveries) == 0 {
				t.Fatal("no recovery happened; the test exercised nothing")
			}
			for _, nd := range cl.aliveNodes() {
				if nd.routeDirty {
					t.Errorf("node %d: routing table still dirty after post-recovery supersteps", nd.id)
					continue
				}
				want := naiveRoute(nd)
				if !routesEqual(&nd.route, &want) {
					t.Errorf("node %d: precomputed routing table diverged from per-entry derivation", nd.id)
				}
			}
		})
	}
}
