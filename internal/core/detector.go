package core

import (
	"time"

	"imitator/internal/coord"
	"imitator/internal/costmodel"
	"imitator/internal/gossip"
	"imitator/internal/metrics"
	"imitator/internal/netsim"
)

// failureDetector is the seam between chaos crash delivery and the
// membership protocol that notices the silence. Both implementations feed
// the same coordinator Suspect -> MarkFailed path (and through it epoch
// bumps, rebirth/migration, and serve-mode routing); they differ only in
// how the detection happens and what it costs in simulated seconds.
type failureDetector interface {
	// track registers a node that (re)joined the membership — a rebirth
	// or checkpoint newbie — so its next failure is detected anew.
	track(id int)
	// detect runs the protocol after the given nodes went silent: it
	// advances the simulated clock by the detection delay and drives the
	// coordinator's two-stage Suspect/MarkFailed announcement.
	detect(victims []int)
	// membership reports the detector's accumulated metrics.
	membership() *metrics.Membership
	// net exposes the detector's own network for chaos mirroring; nil
	// for the centralized monitor, whose beats are cost-model only.
	net() *netsim.Network
}

// detectorHost is the cluster surface a detector drives: the simulated
// clock, timing parameters, the current membership, and the coordinator
// announcement callbacks.
type detectorHost struct {
	clock   *costmodel.Clock
	cost    costmodel.Params
	alive   func() []int // ascending ids of currently alive nodes
	suspect func(id int)
	confirm func(id int)
}

// centralDetector wraps the coord.HeartbeatMonitor on a FakeClock pinned
// to the simulated timeline — the paper's Zookeeper-style master. Its
// detect sequence is the exact integer tick arithmetic the chaos runtime
// has always used, so centralized-mode results stay bit-identical.
type centralDetector struct {
	h     detectorHost
	mon   *coord.HeartbeatMonitor
	fc    *coord.FakeClock
	monAt float64 // sim-second already applied to fc
	m     metrics.Membership
}

func newCentralDetector(h detectorHost) *centralDetector {
	d := &centralDetector{h: h, m: metrics.Membership{Mode: MembershipCentralized.String()}}
	d.fc = coord.NewFakeClock(time.Unix(0, 0))
	d.monAt = 0
	d.sync()
	interval := time.Duration(h.cost.HeartbeatInterval * float64(time.Second))
	mon, err := coord.NewHeartbeatMonitorWithClock(d.fc, interval, h.cost.DetectMissedBeats, nil)
	if err != nil {
		// Cost params are validated with the config; this cannot fire.
		panic(err)
	}
	if err := mon.SetSuspectMisses(h.cost.SuspectBeats()); err != nil {
		panic(err) // SuspectBeats is clamped to [1, DetectMissedBeats]
	}
	d.mon = mon
	for _, id := range h.alive() {
		mon.Track(id)
	}
	return d
}

// sync advances the monitor's FakeClock to the current sim-second.
func (d *centralDetector) sync() {
	if delta := d.h.clock.Now() - d.monAt; delta > 0 {
		d.fc.Advance(time.Duration(delta * float64(time.Second)))
		d.monAt = d.h.clock.Now()
	}
}

func (d *centralDetector) track(id int) {
	d.sync()
	d.mon.Track(id)
}

// detect lets the heartbeat monitor notice the silence: the simulated
// clock advances by the detection window, the survivors' beats land at
// the advanced instants, and the monitor first suspects and then confirms
// exactly the silent nodes.
func (d *centralDetector) detect([]int) {
	d.h.clock.Advance(d.h.cost.DetectionTime())
	d.sync()
	// Two-stage detection in exact integer tick arithmetic. sync's float
	// sim-second -> Duration conversion truncates, so the fake clock may
	// sit a nanosecond short of where float math says it should; the
	// deadlines below are advanced as exact Duration multiples of the
	// monitor's interval on top of that, so the victims' silence crosses
	// each threshold precisely — no overshoot fudge needed. The fake
	// clock drives only the monitor, never the simulated timeline.
	suspectAfter := d.mon.SuspectDeadline()
	d.fc.Advance(suspectAfter)
	for _, id := range d.h.alive() {
		d.mon.Beat(id)
	}
	for _, id := range d.mon.PollSuspects(d.fc.Now()) {
		d.h.suspect(id)
	}
	d.fc.Advance(d.mon.Deadline() - suspectAfter)
	for _, id := range d.h.alive() {
		d.mon.Beat(id)
	}
	for _, id := range d.mon.Poll(d.fc.Now()) {
		d.h.confirm(id)
		d.m.DetectionSeconds = append(d.m.DetectionSeconds, d.h.cost.DetectionTime())
	}
}

func (d *centralDetector) membership() *metrics.Membership {
	m := d.m
	return &m
}

func (d *centralDetector) net() *netsim.Network { return nil }

// gossipDetector runs the decentralized SWIM protocol from
// internal/gossip. The cluster's chaos (drop rates, partitions) is
// mirrored onto the detector's own datagram network, so detection latency
// and false suspicions respond to the same faults the engine suffers.
type gossipDetector struct {
	h    detectorHost
	det  *gossip.Detector
	susp int // suspicion timeout in periods, for the period cap
	m    metrics.Membership
}

func newGossipDetector(n int, mc MembershipConfig, seed uint64, h detectorHost) (*gossipDetector, error) {
	period := mc.PeriodSeconds
	if period <= 0 {
		period = h.cost.HeartbeatInterval
	}
	det, err := gossip.New(n, gossip.Params{
		// Decorrelate from the engine net's per-link fate RNGs, which
		// are seeded from the same ChaosSeed.
		Seed:             seed ^ 0x676f737369703130,
		PeriodSeconds:    period,
		IndirectProbes:   mc.GossipFanout,
		SuspicionPeriods: mc.SuspicionPeriods,
	})
	if err != nil {
		return nil, err
	}
	d := &gossipDetector{h: h, det: det, m: metrics.Membership{Mode: MembershipGossip.String()}}
	d.susp = det.SuspicionPeriods()
	// Nodes already dead when the detector is first built (legacy
	// schedule crashes) start failed.
	up := make([]bool, n)
	for _, id := range h.alive() {
		up[id] = true
	}
	for id := 0; id < n; id++ {
		if !up[id] {
			det.Fail(id)
		}
	}
	return d, nil
}

func (d *gossipDetector) track(id int) {
	// A rebirth reuses the slot id: rejoin at a fresh incarnation.
	d.det.Revive(id)
}

// detect runs protocol periods until a designated observer — the lowest
// surviving id, standing in for "the cluster" the way the centralized
// master does — has confirmed every victim, advancing the simulated clock
// one period at a time. A generous period cap with a ForceConfirm
// backstop keeps recovery live even when chaos (a full partition of the
// detector's network) stops gossip from converging.
func (d *gossipDetector) detect(victims []int) {
	for _, id := range victims {
		d.det.Fail(id)
	}
	failPeriod := d.det.Period()
	obs := -1
	if alive := d.h.alive(); len(alive) > 0 {
		obs = alive[0]
	}
	suspected := make(map[int]bool, len(victims))
	confirmed := make(map[int]bool, len(victims))
	if obs >= 0 {
		maxPeriods := 64 + 16*d.susp
		for p := 0; p < maxPeriods && len(confirmed) < len(victims); p++ {
			d.det.RunPeriod()
			d.h.clock.Advance(d.det.PeriodSeconds())
			for _, v := range victims {
				st := d.det.StatusAt(obs, v)
				if !suspected[v] && st != gossip.UpdAlive {
					suspected[v] = true
					d.h.suspect(v)
				}
				if !confirmed[v] && st == gossip.UpdConfirm {
					confirmed[v] = true
					d.h.confirm(v)
					d.m.DetectionSeconds = append(d.m.DetectionSeconds,
						float64(d.det.Period()-failPeriod)*d.det.PeriodSeconds())
				}
			}
		}
	}
	for _, v := range victims {
		if confirmed[v] {
			continue
		}
		if !suspected[v] {
			d.h.suspect(v) // preserve the two-stage contract
		}
		d.det.ForceConfirm(v)
		d.h.confirm(v)
		d.m.DetectionSeconds = append(d.m.DetectionSeconds,
			float64(d.det.Period()-failPeriod)*d.det.PeriodSeconds())
	}
	// Global first-observer events exist for detector-only probes; the
	// engine path polls the observer's view instead. Drain them.
	d.det.TakeSuspects()
	d.det.TakeConfirms()
	if err := d.det.Err(); err != nil {
		// The closed simulation cannot produce malformed frames or
		// backend faults; any error here is a bug, like the panics in
		// newCentralDetector.
		panic(err)
	}
}

func (d *gossipDetector) membership() *metrics.Membership {
	st := d.det.Stats()
	m := d.m
	m.FalseSuspicions = st.FalseSuspicions
	m.GossipBytes = st.Bytes
	m.GossipPeriods = st.Periods
	return &m
}

func (d *gossipDetector) net() *netsim.Network { return d.det.Net() }
