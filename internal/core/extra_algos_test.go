package core_test

import (
	"testing"

	"imitator/internal/algorithms"
	"imitator/internal/core"
	"imitator/internal/datasets"
	"imitator/internal/graph"
)

// refCC is a union-find over the "in-reachability" relation used by the CC
// program: label(v) = min label reachable into v... equivalently the min id
// in v's weakly connected component when the graph is symmetric. The test
// graphs are symmetric, so plain union-find is the reference.
func refCC(g *graph.Graph) []int32 {
	parent := make([]int32, g.NumVertices())
	for v := range parent {
		parent[v] = int32(v)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if ra < rb { // root at the smaller id
			parent[rb] = ra
		} else {
			parent[ra] = rb
		}
	}
	for _, e := range g.Edges() {
		union(int32(e.Src), int32(e.Dst))
	}
	out := make([]int32, g.NumVertices())
	for v := range out {
		out[v] = find(int32(v))
	}
	return out
}

// refKCore iteratively peels vertices with in-degree support below k on a
// symmetric graph.
func refKCore(g *graph.Graph, k int) []bool {
	alive := make([]bool, g.NumVertices())
	deg := make([]int, g.NumVertices())
	for v := range alive {
		alive[v] = true
		deg[v] = g.InDegree(graph.VertexID(v))
	}
	changed := true
	for changed {
		changed = false
		for v := 0; v < g.NumVertices(); v++ {
			if !alive[v] || deg[v] >= k {
				continue
			}
			alive[v] = false
			changed = true
			g.OutEdges(graph.VertexID(v), func(_ int, e graph.Edge) {
				deg[e.Dst]--
			})
		}
	}
	return alive
}

// symmetricGraph returns a deterministic symmetric test graph.
func symmetricGraph(n, m int, seed uint64) *graph.Graph {
	base := datasets.Tiny(n, m, seed)
	edges := make([]graph.Edge, 0, 2*base.NumEdges())
	for _, e := range base.Edges() {
		edges = append(edges,
			graph.Edge{Src: e.Src, Dst: e.Dst, Weight: 1},
			graph.Edge{Src: e.Dst, Dst: e.Src, Weight: 1})
	}
	return graph.MustNew(n, edges)
}

func TestCCMatchesUnionFind(t *testing.T) {
	g := symmetricGraph(400, 600, 61) // sparse: several components
	want := refCC(g)
	for _, mode := range []core.Mode{core.EdgeCutMode, core.VertexCutMode} {
		cfg := baseConfig(mode, 4, 60)
		cl, err := core.NewCluster[int32, int32](cfg, g, algorithms.NewCC())
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.Run()
		if err != nil {
			t.Fatal(err)
		}
		for v := range want {
			if res.Values[v] != want[v] {
				t.Fatalf("%v: vertex %d component %d != %d", mode, v, res.Values[v], want[v])
			}
		}
	}
}

func TestKCoreMatchesPeeling(t *testing.T) {
	g := symmetricGraph(500, 2000, 62)
	const k = 4
	want := refKCore(g, k)
	cfg := baseConfig(core.EdgeCutMode, 4, 80)
	cl, err := core.NewCluster[int32, int32](cfg, g, algorithms.NewKCore(k))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run()
	if err != nil {
		t.Fatal(err)
	}
	survivors := 0
	for v := range want {
		gotAlive := res.Values[v] != algorithms.Dead
		if gotAlive != want[v] {
			t.Fatalf("vertex %d: alive=%v, reference=%v", v, gotAlive, want[v])
		}
		if gotAlive {
			survivors++
		}
	}
	if survivors == 0 || survivors == g.NumVertices() {
		t.Fatalf("degenerate k-core: %d survivors of %d", survivors, g.NumVertices())
	}
}

func TestCCRecoveryEquivalence(t *testing.T) {
	g := symmetricGraph(400, 600, 63)
	for _, rec := range []core.RecoveryKind{core.RecoverRebirth, core.RecoverMigration} {
		run := func(fail bool) []int32 {
			cfg := core.DefaultConfig(core.EdgeCutMode, 5)
			cfg.MaxIter = 40
			cfg.Recovery = rec
			if fail {
				cfg.Failures = failAt(3, core.FailBeforeBarrier, 2)
			}
			cl, err := core.NewCluster[int32, int32](cfg, g, algorithms.NewCC())
			if err != nil {
				t.Fatal(err)
			}
			res, err := cl.Run()
			if err != nil {
				t.Fatal(err)
			}
			return res.Values
		}
		want := run(false)
		got := run(true)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%v: vertex %d: %d != %d", rec, v, got[v], want[v])
			}
		}
	}
}

func TestNewPartitionersRunAndRecover(t *testing.T) {
	g := datasets.Tiny(500, 3000, 64)
	want := refPageRank(g, 5)
	cases := []struct {
		mode core.Mode
		part core.PartitionerKind
		tol  float64
	}{
		{core.EdgeCutMode, core.PartLDG, 0},
		{core.VertexCutMode, core.PartOblivious, 1e-9},
	}
	for _, tc := range cases {
		cfg := core.DefaultConfig(tc.mode, 5)
		cfg.Partitioner = tc.part
		cfg.MaxIter = 5
		cfg.Recovery = core.RecoverMigration
		cfg.Failures = failAt(2, core.FailBeforeBarrier, 1)
		res := runPageRank(t, cfg, g)
		valuesEqual(t, tc.part.String(), res.Values, want, 1e-9)
		if len(res.Recoveries) != 1 {
			t.Fatalf("%v: recoveries = %d", tc.part, len(res.Recoveries))
		}
	}
}
