package core

import (
	"sync"

	"imitator/internal/metrics"
)

// This file implements the intra-node worker pool. Each simulated node
// shards its flat vertex array (or any indexable work list) into
// Config.WorkersPerNode contiguous chunks and processes them concurrently.
//
// Determinism argument: every parallelized loop writes either
//   (a) fields of the entry it owns (index-disjoint across chunks),
//   (b) per-worker staging buffers (stager) merged in chunk order, or
//   (c) idempotent boolean activations collected as position lists and
//       applied after the join.
// Sequential iteration order equals the concatenation of chunks 0..P-1, so
// the merged per-destination byte streams, metric sums and vertex values are
// bit-for-bit identical for every worker count — which is what keeps the
// recovery-equivalence invariant independent of P.

// chunkBounds splits [0, n) into at most p contiguous chunks whose sizes
// differ by at most one. p is clamped to [1, n]; n == 0 yields no chunks.
func chunkBounds(n, p int) [][2]int {
	if n <= 0 {
		return nil
	}
	if p < 1 {
		p = 1
	}
	if p > n {
		p = n
	}
	bounds := make([][2]int, p)
	base, rem := n/p, n%p
	lo := 0
	for i := range bounds {
		hi := lo + base
		if i < rem {
			hi++
		}
		bounds[i] = [2]int{lo, hi}
		lo = hi
	}
	return bounds
}

// stager is one worker's private staging area for a chunked phase. Workers
// never touch the owning node's shared buffers; the pool merges stagers in
// chunk order after the join, reproducing the sequential byte streams.
type stager struct {
	// send/notice mirror node.sendBuf/noticeBuf, one buffer per destination.
	send   [][]byte
	notice [][]byte
	// met accumulates this worker's metric deltas.
	met metrics.Node
	// pendingActive/active list entry positions whose flag the worker wants
	// set. Booleans are idempotent, so applying the lists after the join is
	// order-insensitive — but doing it post-join keeps the race detector
	// clean and the writes out of the parallel section.
	pendingActive []int32
	active        []int32
	// busy is the worker's raw single-core compute cost in simulated seconds.
	busy float64
}

// stage appends encoded bytes to the worker's buffer for destination dst.
func (st *stager) stage(dst int, encode func(buf []byte) []byte) {
	st.send[dst] = encode(st.send[dst])
}

// stageNotice appends to the worker's out-of-round activation notice buffer.
func (st *stager) stageNotice(dst int, encode func(buf []byte) []byte) {
	st.notice[dst] = encode(st.notice[dst])
}

// markPendingActive requests entries[pos].pendingActive = true after join.
func (st *stager) markPendingActive(pos int32) {
	st.pendingActive = append(st.pendingActive, pos)
}

// markActive requests entries[pos].active = true after join.
func (st *stager) markActive(pos int32) {
	st.active = append(st.active, pos)
}

// chunked shards [0, n) across nd's worker pool and runs body on every
// chunk, giving each worker a private stager. After all workers join it
// merges the stagers in chunk order into nd's shared buffers, applies the
// activation lists, folds worker metrics into nd.met and per-worker busy
// time into the cluster's worker metrics, and converts the phase's raw cost
// (sum of busy) into simulated seconds via Cost.ComputeTime. The return
// value is that simulated duration; callers that model time add it to
// nd.phaseCost. Phases that stage bytes without accounting compute cost
// leave busy at zero and get 0 back.
func (c *Cluster[V, A]) chunked(nd *node[V, A], n int, body func(st *stager, lo, hi int)) float64 {
	bounds := chunkBounds(n, c.cfg.WorkersPerNode)
	if len(bounds) == 0 {
		return 0
	}
	width := len(nd.sendBuf)
	sts := make([]*stager, len(bounds))
	if len(bounds) == 1 {
		// Inline fast path: one chunk runs on the calling goroutine.
		st := &stager{send: make([][]byte, width), notice: make([][]byte, width)}
		body(st, bounds[0][0], bounds[0][1])
		sts[0] = st
	} else {
		var wg sync.WaitGroup
		for w, b := range bounds {
			st := &stager{send: make([][]byte, width), notice: make([][]byte, width)}
			sts[w] = st
			wg.Add(1)
			go func(st *stager, lo, hi int) {
				defer wg.Done()
				body(st, lo, hi)
			}(st, b[0], b[1])
		}
		wg.Wait()
	}

	var total, slowest float64
	for w, st := range sts {
		for dst, buf := range st.send {
			if len(buf) == 0 {
				continue
			}
			if len(nd.sendBuf[dst]) == 0 {
				nd.sendBuf[dst] = buf // steal: no copy at W=1
			} else {
				nd.sendBuf[dst] = append(nd.sendBuf[dst], buf...)
			}
		}
		for dst, buf := range st.notice {
			if len(buf) == 0 {
				continue
			}
			if len(nd.noticeBuf[dst]) == 0 {
				nd.noticeBuf[dst] = buf
			} else {
				nd.noticeBuf[dst] = append(nd.noticeBuf[dst], buf...)
			}
		}
		nd.met.Add(&st.met)
		for _, pos := range st.pendingActive {
			nd.entries[pos].pendingActive = true
		}
		for _, pos := range st.active {
			nd.entries[pos].active = true
		}
		total += st.busy
		if st.busy > slowest {
			slowest = st.busy
		}
		if st.busy > 0 {
			c.met.Workers[nd.id].Observe(w, st.busy)
		}
	}
	if total == 0 {
		return 0
	}
	t := c.cfg.Cost.ComputeTime(total, slowest)
	nd.met.ComputeSeconds += t
	nd.met.ComputeWorkSeconds += total
	return t
}

// chunkEncode shards [0, n) across the pool for flat-stream encoding: each
// worker appends its chunk's records to a private buffer and reports how
// many it wrote. Buffers come back in chunk order, so their concatenation
// equals the sequential encoding; the caller stitches them after any header.
func (c *Cluster[V, A]) chunkEncode(n int, body func(buf []byte, lo, hi int) ([]byte, int)) ([][]byte, int) {
	bounds := chunkBounds(n, c.cfg.WorkersPerNode)
	if len(bounds) == 0 {
		return nil, 0
	}
	bufs := make([][]byte, len(bounds))
	counts := make([]int, len(bounds))
	if len(bounds) == 1 {
		bufs[0], counts[0] = body(nil, bounds[0][0], bounds[0][1])
	} else {
		var wg sync.WaitGroup
		for w, b := range bounds {
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				bufs[w], counts[w] = body(nil, lo, hi)
			}(w, b[0], b[1])
		}
		wg.Wait()
	}
	total := 0
	for _, cnt := range counts {
		total += cnt
	}
	return bufs, total
}
