package core

import (
	"sync"
	"sync/atomic"

	"imitator/internal/bufpool"
	"imitator/internal/metrics"
)

// This file implements the intra-node worker pool. Each simulated node
// shards its flat vertex array (or any indexable work list) into
// Config.WorkersPerNode contiguous chunks and processes them concurrently.
//
// Determinism argument: every parallelized loop writes either
//   (a) fields of the entry it owns (index-disjoint across chunks),
//   (b) per-worker staging buffers (stager) merged in chunk order, or
//   (c) idempotent boolean activations collected as position lists and
//       applied after the join.
// Sequential iteration order equals the concatenation of chunks 0..P-1, so
// the merged per-destination byte streams, metric sums and vertex values are
// bit-for-bit identical for every worker count — which is what keeps the
// recovery-equivalence invariant independent of P.
//
// Allocation discipline: stagers are owned by the node and reused across
// phases, chunk bounds append into a node-owned scratch slice, and staging
// buffers cycle through the cluster's buffer pool, so a warm steady-state
// superstep performs no per-phase allocations.

// appendChunkBounds appends to dst at most p contiguous chunks covering
// [0, n) whose sizes differ by at most one. p is clamped to [1, n]; n == 0
// appends nothing.
func appendChunkBounds(dst [][2]int, n, p int) [][2]int {
	if n <= 0 {
		return dst
	}
	if p < 1 {
		p = 1
	}
	if p > n {
		p = n
	}
	base, rem := n/p, n%p
	lo := 0
	for i := 0; i < p; i++ {
		hi := lo + base
		if i < rem {
			hi++
		}
		dst = append(dst, [2]int{lo, hi})
		lo = hi
	}
	return dst
}

// chunkBounds splits [0, n) into at most p contiguous chunks whose sizes
// differ by at most one (fresh-slice form, used by tests and cold paths).
func chunkBounds(n, p int) [][2]int {
	return appendChunkBounds(nil, n, p)
}

// stager is one worker's private staging area for a chunked phase. Workers
// never touch the owning node's shared buffers; the pool merges stagers in
// chunk order after the join, reproducing the sequential byte streams.
// Stagers are retained on the node and reset by the merge, so steady-state
// phases reuse their slices and buffers instead of reallocating them.
type stager struct {
	// pool re-seeds staging buffers after the merge steals them.
	pool *bufpool.Pool
	// send/notice mirror node.sendBuf/noticeBuf, one buffer per destination.
	send   [][]byte
	notice [][]byte
	// met accumulates this worker's metric deltas.
	met metrics.Node
	// pendingActive/active list entry positions whose flag the worker wants
	// set. Booleans are idempotent, so applying the lists after the join is
	// order-insensitive — but doing it post-join keeps the race detector
	// clean and the writes out of the parallel section.
	pendingActive []int32
	active        []int32
	// busy is the worker's raw single-core compute cost in simulated seconds.
	busy float64
}

// buf returns the staging buffer for destination dst, seeding an empty slot
// from the pool. Callers append records and store the result back with
// setBuf (or use stage for the closure form).
func (st *stager) buf(dst int) []byte {
	b := st.send[dst]
	if b == nil && st.pool != nil {
		b = st.pool.Get()
	}
	return b
}

// setBuf stores an appended-to staging buffer back into its slot.
func (st *stager) setBuf(dst int, b []byte) { st.send[dst] = b }

// stage appends encoded bytes to the worker's buffer for destination dst.
func (st *stager) stage(dst int, encode func(buf []byte) []byte) {
	st.send[dst] = encode(st.buf(dst))
}

// stageNotice appends to the worker's out-of-round activation notice buffer.
func (st *stager) stageNotice(dst int, encode func(buf []byte) []byte) {
	b := st.notice[dst]
	if b == nil && st.pool != nil {
		b = st.pool.Get()
	}
	st.notice[dst] = encode(b)
}

// markPendingActive requests entries[pos].pendingActive = true after join.
func (st *stager) markPendingActive(pos int32) {
	st.pendingActive = append(st.pendingActive, pos)
}

// markActive requests entries[pos].active = true after join.
func (st *stager) markActive(pos int32) {
	st.active = append(st.active, pos)
}

// reset clears the per-phase accumulators, keeping slice capacity.
func (st *stager) reset() {
	st.met = metrics.Node{}
	st.pendingActive = st.pendingActive[:0]
	st.active = st.active[:0]
	st.busy = 0
}

// runChunks executes run(0..k-1) on at most c.chunkSlots goroutine slots.
// WorkersPerNode chunks are the SIMULATED intra-node width (each chunk has
// its own stager and busy-time accounting, and the cost model sees all of
// them), but the host has no obligation to run them on that many OS
// threads: slots pull chunk indexes from a shared atomic counter, so a
// 16-chunk node on a 1-slot budget runs all 16 chunks sequentially on the
// calling goroutine with identical per-chunk results. Chunk-order merging
// downstream keeps the output bit-identical for any slot count.
func (c *Cluster[V, A]) runChunks(k int, run func(w int)) {
	slots := c.chunkSlots
	if slots > k {
		slots = k
	}
	if slots <= 1 {
		for w := 0; w < k; w++ {
			run(w)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(slots - 1)
	for s := 1; s < slots; s++ {
		//imitator:hotalloc-ok multi-slot path only; the capped steady state (slots <= 1) runs chunks inline above
		go func() {
			defer wg.Done()
			for {
				w := int(next.Add(1)) - 1
				if w >= k {
					return
				}
				run(w)
			}
		}()
	}
	// The calling goroutine is slot 0.
	for {
		w := int(next.Add(1)) - 1
		if w >= k {
			break
		}
		run(w)
	}
	wg.Wait()
}

// chunked shards [0, n) across nd's worker pool and runs body on every
// chunk, giving each worker a private stager. After all workers join it
// merges the stagers in chunk order into nd's shared buffers, applies the
// activation lists, folds worker metrics into nd.met and per-worker busy
// time into the cluster's worker metrics, and converts the phase's raw cost
// (sum of busy) into simulated seconds via Cost.ComputeTime. The return
// value is that simulated duration; callers that model time add it to
// nd.phaseCost. Phases that stage bytes without accounting compute cost
// leave busy at zero and get 0 back.
//
// Hot callers pass a pre-bound body (node.bodies) rather than a closure
// literal: the multi-worker path hands body to goroutines, so the compiler
// heap-allocates any literal passed here at every call site.
func (c *Cluster[V, A]) chunked(nd *node[V, A], n int, body func(st *stager, lo, hi int)) float64 {
	nd.bounds = appendChunkBounds(nd.bounds[:0], n, c.cfg.WorkersPerNode)
	bounds := nd.bounds
	if len(bounds) == 0 {
		return 0
	}
	sts := nd.stagers[:len(bounds)]
	if len(bounds) == 1 {
		// Inline fast path: one chunk runs on the calling goroutine, and no
		// closure is built (keeps the workers=1 steady state alloc-free).
		body(sts[0], bounds[0][0], bounds[0][1])
	} else {
		//imitator:hotalloc-ok multi-chunk path only; the single-chunk steady state takes the inline branch above
		c.runChunks(len(bounds), func(w int) {
			body(sts[w], bounds[w][0], bounds[w][1])
		})
	}

	var total, slowest float64
	for w, st := range sts {
		for dst, buf := range st.send {
			if len(buf) == 0 {
				continue
			}
			if len(nd.sendBuf[dst]) == 0 {
				if cap(nd.sendBuf[dst]) > 0 {
					c.pool.Put(nd.sendBuf[dst])
				}
				nd.sendBuf[dst] = buf // steal: no copy at W=1
			} else {
				nd.sendBuf[dst] = append(nd.sendBuf[dst], buf...)
				c.pool.Put(buf)
			}
			st.send[dst] = nil
		}
		for dst, buf := range st.notice {
			if len(buf) == 0 {
				continue
			}
			if len(nd.noticeBuf[dst]) == 0 {
				if cap(nd.noticeBuf[dst]) > 0 {
					c.pool.Put(nd.noticeBuf[dst])
				}
				nd.noticeBuf[dst] = buf
			} else {
				nd.noticeBuf[dst] = append(nd.noticeBuf[dst], buf...)
				c.pool.Put(buf)
			}
			st.notice[dst] = nil
		}
		nd.met.Add(&st.met)
		for _, pos := range st.pendingActive {
			nd.entries[pos].pendingActive = true
		}
		for _, pos := range st.active {
			nd.entries[pos].active = true
		}
		total += st.busy
		if st.busy > slowest {
			slowest = st.busy
		}
		if st.busy > 0 {
			c.met.Workers[nd.id].Observe(w, st.busy)
		}
		st.reset()
	}
	if total == 0 {
		return 0
	}
	t := c.cfg.Cost.ComputeTime(total, slowest)
	nd.met.ComputeSeconds += t
	nd.met.ComputeWorkSeconds += total
	return t
}

// chunkEncode shards [0, n) across the pool for flat-stream encoding: each
// worker appends its chunk's records to a pool-seeded buffer and reports
// how many it wrote. Buffers come back in chunk order, so their
// concatenation equals the sequential encoding; the caller stitches them
// after any header and returns them to the pool when done.
func (c *Cluster[V, A]) chunkEncode(n int, body func(buf []byte, lo, hi int) ([]byte, int)) ([][]byte, int) {
	bounds := chunkBounds(n, c.cfg.WorkersPerNode)
	if len(bounds) == 0 {
		return nil, 0
	}
	bufs := make([][]byte, len(bounds))
	counts := make([]int, len(bounds))
	for w := range bufs {
		bufs[w] = c.pool.Get()
	}
	if len(bounds) == 1 {
		bufs[0], counts[0] = body(bufs[0], bounds[0][0], bounds[0][1])
	} else {
		c.runChunks(len(bounds), func(w int) {
			bufs[w], counts[w] = body(bufs[w], bounds[w][0], bounds[w][1])
		})
	}
	total := 0
	for _, cnt := range counts {
		total += cnt
	}
	return bufs, total
}
