package core

import (
	"fmt"
	"sort"

	"imitator/internal/costmodel"
	"imitator/internal/graph"
	"imitator/internal/netsim"
)

// recoverRebirth reconstructs each crashed node's full state on a standby
// node that assumes the crashed node's logical id (§5.1). Three phases:
// Reloading (survivors push recovery records derived from their masters and
// mirrors), Reconstruction (records land at their recorded array positions,
// then local topology is re-linked), and Replay (activation states are
// re-derived from committed scatter flags).
func (c *Cluster[V, A]) recoverRebirth(failed []int, iter int) ([]int, error) {
	if c.rebirthsUsed+len(failed) > c.cfg.MaxRebirths {
		return nil, fmt.Errorf("%w: %d standby nodes exhausted", ErrNoStandby, c.cfg.MaxRebirths)
	}
	failedSet := make(map[int]bool, len(failed))
	for _, f := range failed {
		failedSet[f] = true
	}
	rec := RecoveryReport{Kind: "rebirth", Iteration: iter, Failed: append([]int(nil), failed...)}
	start := c.clock.Now()
	msgs0, bytes0 := c.met.RecoveryTraffic()

	// Newbies join the membership and size their vertex arrays from the
	// coordination service's shared state.
	for _, f := range failed {
		arrayLen, ok := c.coord.Get(fmt.Sprintf("arraylen/%d", f))
		if !ok {
			return nil, fmt.Errorf("%w: unknown array length for node %d", ErrUnrecoverable, f)
		}
		nd := &node[V, A]{
			id:      f,
			alive:   true,
			met:     &c.met.Nodes[f],
			entries: make([]vertexEntry[V], arrayLen),
			index:   make(map[graph.VertexID]int32, arrayLen),
		}
		for i := range nd.entries {
			nd.entries[i].masterNode = noNode // "not yet placed" sentinel
		}
		c.initNodeScratch(nd)
		c.nodes[f] = nd
		c.net.SetFailed(f, false)
		c.coord.Join(f)
		// The newbie is a fresh incarnation of the slot: stamp its bumped
		// epoch into the network so traffic of the previous life — e.g. a
		// partitioned-but-alive predecessor whose frames are still parked
		// in the cable — is fenced instead of reaching the new state.
		c.net.SetEpoch(f, c.coord.Epoch(f))
		c.chaosTrack(f)
		c.rebirthsUsed++
	}
	c.hook("rebirth:join")

	// Reloading: survivors scan their masters for replicas lost on failed
	// nodes, and their mirrors for masters lost on failed nodes (the lowest
	// surviving mirror recovers each master).
	c.eachAlive(func(nd *node[V, A]) {
		if failedSet[nd.id] {
			return // newbies have nothing to send
		}
		c.chunked(nd, len(nd.entries), func(st *stager, lo, hi int) {
			for i := lo; i < hi; i++ {
				e := &nd.entries[i]
				if e.isMaster() {
					for ri, rn := range e.replicaNodes {
						if failedSet[int(rn)] {
							c.stageReplicaRecovery(nd, st, e, ri, int(rn))
						}
					}
				} else if e.isMirror() && failedSet[int(e.masterNode)] {
					if c.lowestSurvivingMirror(e, failedSet) == nd.id {
						c.stageMasterRecovery(st, e, int(e.masterNode))
						// With multiple simultaneous failures, the lost
						// master's replicas on *other* failed nodes have no
						// master to recover them; the recovering mirror does
						// it from its full-state copy (§5.3.1).
						for ri, rn := range e.mReplicaN {
							if failedSet[int(rn)] {
								c.stageReplicaRecoveryFromMirror(st, e, ri, int(rn))
							}
						}
					}
				}
			}
		})
	})
	c.flushSendRound(netsim.KindRecovery)

	// Vertex-cut: newbies reload their slots' edge-ckpt files in parallel,
	// overlapping with the vertex reloading above (§5.1.1).
	edgeData := make(map[int][][]byte)
	if c.vcut != nil {
		var span costmodel.Span
		for _, f := range failed {
			nd := c.nodes[f]
			if !nd.alive {
				continue // newbie killed again mid-recovery; restart handles it
			}
			var nodeCost float64
			for _, path := range c.dfs.List(fmt.Sprintf("edgeckpt/%d/", f)) {
				data, cost, err := c.dfs.Read(f, path)
				if err != nil {
					return nil, err
				}
				nd.met.DFSReadBytes += int64(len(data))
				nodeCost += cost
				edgeData[f] = append(edgeData[f], data)
			}
			span.Observe(nodeCost)
		}
		c.clock.Advance(span.Max())
	}
	if state := c.barrier(); state.IsFail() {
		return state.Failed, nil
	}
	rec.ReloadSeconds = c.clock.Now() - start
	c.hook("rebirth:reload")

	// Reconstruction: records land at their positions; then in-edge lists
	// are resolved by id and out-lists rebuilt by reversal. Every alive
	// node collects the round (survivors receive nothing, but collecting is
	// what closes the round on asynchronous transports).
	reconStart := c.clock.Now()
	received := make([][]netsim.Message, c.cfg.NumNodes)
	c.eachAlive(func(nd *node[V, A]) {
		received[nd.id] = c.net.Receive(nd.id)
	})
	var reconSpan costmodel.Span
	for _, f := range failed {
		nd := c.nodes[f]
		if !nd.alive {
			// Killed again while recovery was in flight (chaos or test
			// hook): its round was dropped, so nothing can be placed. The
			// barrier below announces the new failure and the recovery
			// restarts with the union.
			continue
		}
		raw := make(map[int32]*rawEdges)
		// Decode serially (the streams are sequential), collecting records so
		// placement can run on the worker pool.
		var recs []recoveryRecord[V]
		for _, m := range received[f] {
			if m.Kind != netsim.KindRecovery {
				continue
			}
			r := &reader{buf: m.Payload}
			for r.remaining() > 0 && r.err == nil {
				recRec := decodeRecoveryRecord(r, c.vc)
				if r.err != nil {
					break
				}
				recs = append(recs, recRec)
				// Only master records carry local in-edges; a recovered
				// mirror's edge list is part of its full state (mInSrc),
				// not this node's topology.
				if recRec.role == roleMaster && recRec.edges != nil {
					raw[recRec.pos] = recRec.edges
				}
			}
			if r.err != nil {
				return nil, fmt.Errorf("core: rebirth decode on node %d: %w", f, r.err)
			}
		}
		// Position-addressed placement is contention-free (§5.1.2): every
		// record targets a distinct slot, so records place in parallel. The
		// id index rebuilds serially afterwards (map writes don't share).
		placeCost := c.chunked(nd, len(recs), func(st *stager, lo, hi int) {
			for k := lo; k < hi; k++ {
				c.placeRecovered(nd, &recs[k])
			}
			st.busy = float64(hi-lo) * c.cfg.Cost.ReconstructPerVertex
		})
		for i := range nd.entries {
			nd.index[nd.entries[i].id] = int32(i)
		}
		rec.RecoveredVertices += len(recs)
		// Every slot must have been recovered.
		for i := range nd.entries {
			if nd.entries[i].masterNode == noNode {
				return nil, fmt.Errorf("%w: node %d slot %d not recovered (lost beyond K?)",
					ErrTooManyFailures, f, i)
			}
		}
		// Edge-cut: resolve raw in-edge lists into local positions, in
		// ascending position order: a source shared by several recovered
		// masters collects outNbr entries in iteration order, and scatter
		// replays outNbr order onto the wire.
		edges := 0
		rawPos := make([]int32, 0, len(raw))
		for pos := range raw { //imitator:nondet-ok collected set is sorted before use
			rawPos = append(rawPos, pos)
		}
		sort.Slice(rawPos, func(a, b int) bool { return rawPos[a] < rawPos[b] })
		for _, pos := range rawPos {
			re := raw[pos]
			e := &nd.entries[pos]
			e.inNbr = make([]int32, len(re.src))
			e.inWt = re.wt
			for k, srcID := range re.src {
				sp, ok := nd.pos(srcID)
				if !ok {
					return nil, fmt.Errorf("%w: node %d missing in-neighbor %d", ErrUnrecoverable, f, srcID)
				}
				e.inNbr[k] = sp
				nd.entries[sp].outNbr = append(nd.entries[sp].outNbr, pos)
			}
			edges += len(re.src)
		}
		// Vertex-cut: attach edges from the edge-ckpt files.
		for _, data := range edgeData[f] {
			n, err := c.attachEdgeCkpt(nd, data)
			if err != nil {
				return nil, err
			}
			edges += n
		}
		nd.localEdges = edges
		rec.RecoveredEdges += edges
		reconSpan.Observe(placeCost + float64(edges)*c.cfg.Cost.ComputePerEdge)
	}
	for _, msgs := range received {
		c.recycleMsgs(msgs)
	}
	c.clock.Advance(reconSpan.Max())
	if state := c.barrier(); state.IsFail() {
		return state.Failed, nil
	}
	rec.ReconstructSeconds = c.clock.Now() - reconStart
	c.hook("rebirth:reconstruct")

	// Replay: re-derive active flags for the recovered masters (§5.1.3).
	replayStart := c.clock.Now()
	c.replayActivation(iter, func(masterNode int16, _ int32) bool {
		return failedSet[int(masterNode)]
	})
	c.recomputeSelfish(failed, iter)
	if state := c.barrier(); state.IsFail() {
		return state.Failed, nil
	}
	rec.ReplaySeconds = c.clock.Now() - replayStart

	msgs1, bytes1 := c.met.RecoveryTraffic()
	rec.Msgs, rec.Bytes = msgs1-msgs0, bytes1-bytes0
	c.refreshMemoryMetrics()
	c.recoveries = append(c.recoveries, rec)
	c.trace = append(c.trace, TraceEvent{Iter: iter, Kind: "recovery", Start: start, End: c.clock.Now()})
	return nil, nil
}

// stageReplicaRecovery emits the record recreating master e's replica that
// lived on failed node rn. If the lost replica was a mirror, the record
// carries the master's full state so the mirror can be recreated intact.
func (c *Cluster[V, A]) stageReplicaRecovery(nd *node[V, A], st *stager, e *vertexEntry[V], ri, rn int) {
	flags := entryFlags(0)
	if e.replicaFTOnly[ri] {
		flags |= flagFTOnly
	}
	if e.isSelfish() {
		flags |= flagSelfish
	}
	mirrorRank := int16(-1)
	for rank, idx := range e.mirrorOf {
		if int(idx) == ri {
			flags |= flagMirror
			mirrorRank = int16(rank)
		}
	}
	var table *replicaTable
	var edges *rawEdges
	if flags&flagMirror != 0 {
		table = &replicaTable{
			nodes:    e.replicaNodes,
			pos:      e.replicaPos,
			ftOnly:   e.replicaFTOnly,
			mirrorOf: e.mirrorOf,
		}
		if c.ec != nil {
			edges = c.masterRawEdges(nd, e)
		}
	}
	before := len(st.send[rn])
	st.send[rn] = encodeRecoveryRecord(st.send[rn], c.vc, roleReplica,
		e.replicaPos[ri], e.id, flags, mirrorRank,
		int16(nd.id), e.masterPos, e.inDeg, e.outDeg,
		e.value, e.lastActivate, e.lastActivateIter, table, edges)
	st.met.RecoveryMsgs++
	st.met.RecoveryBytes += int64(len(st.send[rn]) - before)
}

// stageMasterRecovery emits the record recreating the master that lived on
// the failed node, from this surviving mirror's full state.
func (c *Cluster[V, A]) stageMasterRecovery(st *stager, e *vertexEntry[V], dst int) {
	flags := flagMaster
	if e.isSelfish() {
		flags |= flagSelfish
	}
	table := &replicaTable{
		nodes:    e.mReplicaN,
		pos:      e.mReplicaP,
		ftOnly:   e.mReplicaFT,
		mirrorOf: e.mMirrorOf,
	}
	var edges *rawEdges
	if c.ec != nil {
		edges = &rawEdges{src: e.mInSrc, wt: e.mInWt, srcMaster: e.mInSrcMaster}
	}
	before := len(st.send[dst])
	st.send[dst] = encodeRecoveryRecord(st.send[dst], c.vc, roleMaster,
		e.masterPos, e.id, flags, -1,
		int16(dst), e.masterPos, e.inDeg, e.outDeg,
		e.value, e.lastActivate, e.lastActivateIter, table, edges)
	st.met.RecoveryMsgs++
	st.met.RecoveryBytes += int64(len(st.send[dst]) - before)
}

// stageReplicaRecoveryFromMirror recreates the lost master's replica on
// failed node rn using the recovering mirror's full state.
func (c *Cluster[V, A]) stageReplicaRecoveryFromMirror(st *stager, e *vertexEntry[V], ri, rn int) {
	flags := entryFlags(0)
	if e.mReplicaFT[ri] {
		flags |= flagFTOnly
	}
	if e.isSelfish() {
		flags |= flagSelfish
	}
	mirrorRank := int16(-1)
	for rank, idx := range e.mMirrorOf {
		if int(idx) == ri {
			flags |= flagMirror
			mirrorRank = int16(rank)
		}
	}
	var table *replicaTable
	var edges *rawEdges
	if flags&flagMirror != 0 {
		table = &replicaTable{
			nodes:    e.mReplicaN,
			pos:      e.mReplicaP,
			ftOnly:   e.mReplicaFT,
			mirrorOf: e.mMirrorOf,
		}
		if c.ec != nil {
			edges = &rawEdges{src: e.mInSrc, wt: e.mInWt, srcMaster: e.mInSrcMaster}
		}
	}
	before := len(st.send[rn])
	st.send[rn] = encodeRecoveryRecord(st.send[rn], c.vc, roleReplica,
		e.mReplicaP[ri], e.id, flags, mirrorRank,
		e.masterNode, e.masterPos, e.inDeg, e.outDeg,
		e.value, e.lastActivate, e.lastActivateIter, table, edges)
	st.met.RecoveryMsgs++
	st.met.RecoveryBytes += int64(len(st.send[rn]) - before)
}

// masterRawEdges converts a master's local in-edge positions into global
// ids (with each source's master node) for shipping.
func (c *Cluster[V, A]) masterRawEdges(nd *node[V, A], e *vertexEntry[V]) *rawEdges {
	re := &rawEdges{
		src:       make([]graph.VertexID, len(e.inNbr)),
		wt:        e.inWt,
		srcMaster: make([]int16, len(e.inNbr)),
	}
	for k, sp := range e.inNbr {
		se := &nd.entries[sp]
		re.src[k] = se.id
		re.srcMaster[k] = int16(c.masterLoc[se.id])
	}
	return re
}

// placeRecovered materializes one recovery record at its position in the
// newbie's array. Position-addressed placement is contention-free (§5.1.2),
// so records place chunk-parallel; the caller rebuilds the id index after
// all placements land.
func (c *Cluster[V, A]) placeRecovered(nd *node[V, A], rec *recoveryRecord[V]) {
	e := &nd.entries[rec.pos]
	e.id = rec.id
	e.flags = rec.flags
	e.mirrorRank = rec.mirrorRank
	e.masterNode = rec.masterNode
	e.masterPos = rec.masterPos
	e.inDeg = rec.inDeg
	e.outDeg = rec.outDeg
	e.value = rec.value
	e.lastActivate = rec.lastActivate
	e.lastActivateIter = rec.lastActivateIter
	// Masters: replay re-derives activity. Replicas: the next superstep's
	// activation broadcast refreshes them, except under always-active
	// programs, which never broadcast.
	e.active = c.prog.AlwaysActive()
	if rec.role == roleMaster {
		e.masterNode = int16(nd.id)
		e.masterPos = rec.pos
		if rec.table != nil {
			e.replicaNodes = rec.table.nodes
			e.replicaPos = rec.table.pos
			e.replicaFTOnly = rec.table.ftOnly
			e.mirrorOf = rec.table.mirrorOf
		}
	} else if rec.flags&flagMirror != 0 && rec.table != nil {
		e.mReplicaN = rec.table.nodes
		e.mReplicaP = rec.table.pos
		e.mReplicaFT = rec.table.ftOnly
		e.mMirrorOf = rec.table.mirrorOf
		if rec.edges != nil {
			e.mInSrc = rec.edges.src
			e.mInWt = rec.edges.wt
			e.mInSrcMaster = rec.edges.srcMaster
		}
	}
}

// attachEdgeCkpt links the (src, dst, weight) triples of one edge-ckpt file
// into the node's local topology, returning the edge count.
func (c *Cluster[V, A]) attachEdgeCkpt(nd *node[V, A], data []byte) (int, error) {
	r := &reader{buf: data}
	count := 0
	for r.remaining() > 0 && r.err == nil {
		src := graph.VertexID(r.u32())
		dst := graph.VertexID(r.u32())
		wt := r.f64()
		if r.err != nil {
			break
		}
		sp, ok1 := nd.pos(src)
		dp, ok2 := nd.pos(dst)
		if !ok1 || !ok2 {
			return 0, fmt.Errorf("%w: node %d edge-ckpt endpoint missing (%d->%d)",
				ErrUnrecoverable, nd.id, src, dst)
		}
		de := &nd.entries[dp]
		de.inNbr = append(de.inNbr, sp)
		de.inWt = append(de.inWt, wt)
		nd.entries[sp].outNbr = append(nd.entries[sp].outNbr, dp)
		count++
	}
	if r.err != nil {
		return 0, r.err
	}
	return count, nil
}

// lowestSurvivingMirror returns the node hosting the lowest-ranked
// surviving mirror recorded in mirror entry e's full state, or -1. Mirrors
// need no communication to elect the recoverer (§5.3.1).
func (c *Cluster[V, A]) lowestSurvivingMirror(e *vertexEntry[V], failedSet map[int]bool) int {
	for _, idx := range e.mMirrorOf {
		n := int(e.mReplicaN[idx])
		if !failedSet[n] && c.nodes[n] != nil && c.nodes[n].alive {
			return n
		}
	}
	return -1
}

// recomputeSelfish restores the dynamic state of selfish vertices recovered
// without value synchronization (§4.4): their value is recomputed from the
// (already recovered) in-neighbors.
func (c *Cluster[V, A]) recomputeSelfish(failed []int, iter int) {
	if !c.selfishOptOn {
		return
	}
	prev := iter - 1
	for _, f := range failed {
		nd := c.nodes[f]
		if nd == nil || !nd.alive {
			continue
		}
		// Chunk-parallel: selfish vertices have no out-edges, so they are
		// never read as another chunk's in-neighbor while being rewritten.
		c.chunked(nd, len(nd.entries), func(_ *stager, lo, hi int) {
			for i := lo; i < hi; i++ {
				e := &nd.entries[i]
				if !e.isMaster() || !e.isSelfish() || len(e.inNbr) == 0 {
					continue
				}
				var acc A
				has := false
				for k, src := range e.inNbr {
					se := &nd.entries[src]
					contrib := c.prog.Gather(
						graph.Edge{Src: se.id, Dst: e.id, Weight: e.inWt[k]},
						se.value, se.info())
					if has {
						acc = c.prog.Merge(acc, contrib)
					} else {
						acc, has = contrib, true
					}
				}
				initVal, _ := c.prog.Init(e.id, e.info())
				newV, _ := c.prog.Apply(e.id, e.info(), initVal, acc, has, max(prev, 0))
				e.value = newV
			}
		})
	}
}
