package core

import (
	"math"
	"testing"

	"imitator/internal/datasets"
)

// Edge cases at the suspicion/recovery boundary: advisory suspicion of a
// *survivor* raised while a recovery pass is mid-flight must never derail
// the recovery or perturb the converged result — suspicion only gates
// serve routing until it is confirmed (MarkFailed) or cleared (Join).

// suspectEdgeRun executes fakePR on a Tiny graph and returns final values.
func suspectEdgeRun(t *testing.T, cfg Config, hook func(cl *Cluster[float64, float64], phase string)) (*Cluster[float64, float64], *Result[float64]) {
	t.Helper()
	g := datasets.Tiny(240, 1400, 77)
	cl, err := NewCluster[float64, float64](cfg, g, fakePR{})
	if err != nil {
		t.Fatal(err)
	}
	if hook != nil {
		cl.SetRecoveryHook(func(phase string) { hook(cl, phase) })
	}
	res, err := cl.Run()
	if err != nil {
		t.Fatal(err)
	}
	return cl, res
}

func suspectEdgeConfig(recovery RecoveryKind) Config {
	cfg := DefaultConfig(EdgeCutMode, 5)
	cfg.MaxIter = 6
	cfg.Recovery = recovery
	cfg.MaxRebirths = 8
	cfg.Failures = []FailureSpec{{Iteration: 3, Phase: FailBeforeBarrier, Nodes: []int{1}}}
	return cfg
}

// TestSuspectDuringMigrationPromote: a survivor suspected exactly while
// migration is promoting the crashed node's replicas stays a full member,
// keeps its migrated load, and the run converges to the fault-free values.
func TestSuspectDuringMigrationPromote(t *testing.T) {
	baseline := DefaultConfig(EdgeCutMode, 5)
	baseline.MaxIter = 6
	_, want := suspectEdgeRun(t, baseline, nil)

	const survivor = 2
	fired := false
	cl, got := suspectEdgeRun(t, suspectEdgeConfig(RecoverMigration),
		func(cl *Cluster[float64, float64], phase string) {
			if phase == "migration:promote" && !fired {
				fired = true
				if !cl.coord.Suspect(survivor) {
					t.Error("survivor could not be suspected during promote")
				}
			}
		})
	if !fired {
		t.Fatal("migration:promote hook never fired")
	}
	if !cl.coord.Alive(survivor) {
		t.Fatal("advisory suspicion during promote killed a survivor")
	}
	if !cl.coord.Suspected(survivor) {
		t.Fatal("unconfirmed suspicion should persist after the run")
	}
	if len(got.Recoveries) == 0 || got.Recoveries[0].Kind != "migration" {
		t.Fatalf("migration recovery missing: %+v", got.Recoveries)
	}
	for v := range want.Values {
		if math.Abs(got.Values[v]-want.Values[v]) > 1e-9 {
			t.Fatalf("vertex %d diverged: %g vs fault-free %g", v, got.Values[v], want.Values[v])
		}
	}
}

// TestSuspectHealsMidRebirth: a survivor suspected while a rebirth is
// reloading state "heals" — the detector never confirms it, so the node
// remains a member, participates in the rest of the job, and the result
// is bit-identical to the fault-free run. The crashed slot's Join must
// clear only its own suspicion, not the survivor's advisory one.
func TestSuspectHealsMidRebirth(t *testing.T) {
	baseline := DefaultConfig(EdgeCutMode, 5)
	baseline.MaxIter = 6
	_, want := suspectEdgeRun(t, baseline, nil)

	const survivor = 3
	fired := false
	cl, got := suspectEdgeRun(t, suspectEdgeConfig(RecoverRebirth),
		func(cl *Cluster[float64, float64], phase string) {
			if phase == "rebirth:reload" && !fired {
				fired = true
				cl.coord.Suspect(survivor)
				// The crashed node was suspected then confirmed; its
				// suspicion must already be gone.
				if cl.coord.Suspected(1) {
					t.Error("confirmed node 1 still suspected mid-rebirth")
				}
			}
		})
	if !fired {
		t.Fatal("rebirth:reload hook never fired")
	}
	if !cl.coord.Alive(survivor) {
		t.Fatal("healing suspect was confirmed dead")
	}
	// The rebirth's Join(1) bumped slot 1's epoch but must not have
	// touched the survivor's advisory suspicion.
	if cl.coord.Epoch(1) != 2 {
		t.Fatalf("crashed slot epoch = %d, want 2 after rebirth", cl.coord.Epoch(1))
	}
	if !cl.coord.Suspected(survivor) {
		t.Fatal("survivor's advisory suspicion cleared by an unrelated Join")
	}
	for v := range want.Values {
		if got.Values[v] != want.Values[v] {
			t.Fatalf("vertex %d diverged: %g vs fault-free %g", v, got.Values[v], want.Values[v])
		}
	}
}

// TestSuspectOfCrashedNodeThenLateClear: the centralized two-stage path —
// Suspect fires first, MarkFailed confirms — must tolerate the inverse
// order a gossip detector can produce after a refutation: a suspicion
// that never confirms, followed by the node's normal participation.
func TestSuspectOfCrashedNodeThenLateClear(t *testing.T) {
	c, err := NewCluster[float64, float64](func() Config {
		cfg := DefaultConfig(EdgeCutMode, 4)
		cfg.MaxIter = 3
		return cfg
	}(), datasets.Tiny(120, 700, 7), fakePR{})
	if err != nil {
		t.Fatal(err)
	}
	// Suspect, then "heal" by never confirming: the job must run to
	// completion with the suspect as a full participant.
	c.coord.Suspect(2)
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 3 {
		t.Fatalf("iterations = %d, want 3", res.Iterations)
	}
	if !c.coord.Alive(2) || len(res.Recoveries) != 0 {
		t.Fatalf("advisory suspicion triggered recovery: alive=%v recoveries=%d",
			c.coord.Alive(2), len(res.Recoveries))
	}
}
