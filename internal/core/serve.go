package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"imitator/internal/graph"
	"imitator/internal/metrics"
)

// This file is the serving layer's epoch-consistent read seam. The engine
// publishes an immutable snapshot of the committed vertex values after each
// superstep's global barrier (and only then), so concurrent readers never
// observe a torn superstep: staged pendingValue state, rollback, and
// checkpoint replay all happen strictly between publishes. Queries are a
// host-side read path — they advance no simulated time and touch no wire
// buffers, so enabling Serve leaves sim_seconds and msg_bytes bit-identical.
//
// Staleness contract: the frontier is the superstep the engine is currently
// executing (in epochs, where epoch N = "N supersteps committed"). An
// answer's staleness is frontier - Epoch: 0 when the engine is idle or
// converged, and at most ServeConfig.PublishEvery while a superstep or a
// recovery pass is in flight — recovery re-executes the in-flight superstep,
// so the frontier does not advance during rebirth/migration and serving
// continues from the last committed epoch instead of blocking.

// ServeConfig controls the live-query serving layer (Config.Serve).
type ServeConfig struct {
	// Enabled keeps an epoch-stamped snapshot of committed vertex values
	// published for concurrent Query calls. Requires a program whose vertex
	// value is float64 or int32 (PageRank, SSSP, CD). Serving is host-side
	// only: simulated time and message bytes are unchanged.
	Enabled bool
	// PublishEvery publishes a fresh snapshot every N committed supersteps
	// (plus once after load and once at run end). Larger values trade
	// staleness for publish work. 0 means 1.
	PublishEvery int
	// StalenessBound is the default per-query bound on frontier - epoch;
	// queries whose snapshot lags further return ErrStaleRead. 0 means
	// unbounded (answers always carry their actual staleness).
	StalenessBound int
	// KeepHistory retains every published value snapshot, indexed by epoch
	// (EpochValues). Validation harnesses use it as per-epoch ground truth;
	// costs one []float64 per published epoch.
	KeepHistory bool
}

// QueryKind selects what a Query asks for.
type QueryKind uint8

// Query kinds.
const (
	// QueryValue asks for one vertex's committed value (PageRank rank,
	// SSSP distance, ...).
	QueryValue QueryKind = iota + 1
	// QueryTopK asks for the K highest-valued vertices.
	QueryTopK
	// QueryNeighbors asks for a vertex's out-neighborhood (capped at K
	// entries when K > 0).
	QueryNeighbors
)

// String implements fmt.Stringer.
func (k QueryKind) String() string {
	switch k {
	case QueryValue:
		return "value"
	case QueryTopK:
		return "topk"
	case QueryNeighbors:
		return "neighbors"
	default:
		return fmt.Sprintf("query(%d)", int(k))
	}
}

// Query is one read request against a serving cluster.
type Query struct {
	Kind   QueryKind
	Vertex graph.VertexID // QueryValue, QueryNeighbors
	// K is the result-size parameter: required >= 1 for QueryTopK, and an
	// optional cap for QueryNeighbors (0 = full neighborhood).
	K int
	// StalenessBound bounds frontier - epoch for this query: 0 inherits
	// ServeConfig.StalenessBound, > 0 overrides it, < 0 is explicitly
	// unbounded.
	StalenessBound int
}

// RankEntry is one QueryTopK result row.
type RankEntry struct {
	Vertex graph.VertexID
	Value  float64
}

// Answer is the epoch-stamped response to a Query.
type Answer struct {
	Kind   QueryKind
	Vertex graph.VertexID

	// Value is the committed scalar at Epoch (QueryValue).
	Value float64
	// TopK holds the K highest-valued vertices at Epoch, descending, ties
	// broken by ascending vertex id (QueryTopK).
	TopK []RankEntry
	// Neighbors is the vertex's out-neighborhood (QueryNeighbors).
	Neighbors []graph.VertexID

	// Epoch is the number of committed supersteps the answered snapshot
	// reflects; Frontier is the superstep the engine was executing when the
	// answer was read. Frontier - Epoch is the answer's staleness.
	Epoch    int
	Frontier int
	// StalenessBound is the bound this answer was admitted under (0 =
	// unbounded); Staleness() never exceeds it when it is positive.
	StalenessBound int

	// Node is the simulated node that served the read: the vertex's master,
	// or — when the master is dead or suspected — a surviving replica host
	// (FromReplica). -1 for aggregate answers with no single home (TopK).
	Node        int
	FromReplica bool
}

// Staleness returns the answer's epoch lag behind the engine's frontier.
func (a Answer) Staleness() int { return a.Frontier - a.Epoch }

// Serving errors.
var (
	// ErrServeDisabled reports a Query against a cluster whose
	// Config.Serve.Enabled is false.
	ErrServeDisabled = errors.New("core: serving disabled (set Config.Serve.Enabled)")
	// ErrBadQuery reports a malformed query (unknown kind, K < 1 for TopK).
	ErrBadQuery = errors.New("core: bad query")
	// ErrUnknownVertex reports a vertex id outside the loaded graph.
	ErrUnknownVertex = errors.New("core: unknown vertex")
	// ErrStaleRead reports a snapshot lagging past the query's staleness
	// bound (the engine is mid-superstep or mid-recovery and the caller
	// asked for fresher state than the last committed publish).
	ErrStaleRead = errors.New("core: stale read")
	// ErrVertexUnavailable reports that no live, unsuspected node holds
	// synced state for the vertex — its master is down and its surviving
	// replicas are FT-only replicas of a selfish vertex, which the §4.4
	// optimization never syncs.
	ErrVertexUnavailable = errors.New("core: vertex unavailable")
)

// serveSnapshot is one published epoch: immutable after Store.
type serveSnapshot struct {
	epoch int64
	vals  []float64
}

// serveRoute is the published routing view: where each vertex's master
// lives and which hosts hold replicas (flattened, in replica-rank order).
// Rebuilt after load and after every completed recovery pass; liveness and
// suspicion are checked against the coordinator at query time, so a stale
// view between rebuilds only ever routes away from more nodes, never onto
// a dead one.
type serveRoute struct {
	masterLoc []int16
	start     []int32
	hosts     []int16
	ftOnly    []bool
}

// serveState is the cluster's serving runtime. The engine goroutine is the
// only writer (publishes happen at barrier-committed points); queries run
// on arbitrary goroutines and read exclusively through the atomic pointers
// and counters.
type serveState[V any] struct {
	cfg    ServeConfig
	scalar func(*V) float64

	snap     atomic.Pointer[serveSnapshot]
	route    atomic.Pointer[serveRoute]
	frontier atomic.Int64

	queries       atomic.Int64
	fromReplica   atomic.Int64
	staleRejected atomic.Int64
	unavailable   atomic.Int64
	maxStaleness  atomic.Int64

	// mu guards the KeepHistory trajectory (engine appends, harnesses read).
	mu         sync.Mutex
	histEpochs []int
	hist       [][]float64
}

// serveScalar resolves V's scalar projection once per cluster; the
// per-entry extraction is a pointer interface assertion (no boxing).
func serveScalar[V any]() (func(*V) float64, bool) {
	var z V
	switch any(&z).(type) {
	case *float64:
		return func(p *V) float64 { return *any(p).(*float64) }, true
	case *int32:
		return func(p *V) float64 { return float64(*any(p).(*int32)) }, true
	default:
		return nil, false
	}
}

// serveInit builds the serving runtime and publishes the post-load epoch-0
// snapshot. Called from NewCluster after load succeeds.
func (c *Cluster[V, A]) serveInit() error {
	scalar, ok := serveScalar[V]()
	if !ok {
		var z V
		return fmt.Errorf("core: Serve.Enabled requires a float64 or int32 vertex value, got %T", z)
	}
	c.serve = &serveState[V]{cfg: c.cfg.Serve, scalar: scalar}
	if c.serve.cfg.PublishEvery < 1 {
		c.serve.cfg.PublishEvery = 1
	}
	c.servePublish(true)
	c.serveRefreshRoute()
	return nil
}

// serveFrontier advances the published frontier to epoch f (monotonic);
// the run loop calls it with iter+1 when it starts executing superstep
// iter. Readers see staleness frontier - snapshot epoch.
func (c *Cluster[V, A]) serveFrontier(f int) {
	if c.serve == nil {
		return
	}
	if int64(f) > c.serve.frontier.Load() {
		c.serve.frontier.Store(int64(f))
	}
}

// servePublish snapshots the committed master values at the current epoch
// (c.iter = supersteps committed). Publishes are monotonic in epoch — a
// checkpoint-recovery replay re-commits earlier iterations without
// regressing the served view — and skipped off the PublishEvery grid
// unless forced (load, run end).
func (c *Cluster[V, A]) servePublish(force bool) {
	s := c.serve
	if s == nil {
		return
	}
	if !force && c.iter%s.cfg.PublishEvery != 0 {
		return
	}
	epoch := int64(c.iter)
	if cur := s.snap.Load(); cur != nil && cur.epoch >= epoch {
		return
	}
	vals := make([]float64, c.g.NumVertices())
	for _, nd := range c.aliveNodes() {
		for i := range nd.entries {
			if e := &nd.entries[i]; e.isMaster() {
				vals[e.id] = s.scalar(&e.value)
			}
		}
	}
	s.snap.Store(&serveSnapshot{epoch: epoch, vals: vals})
	if epoch > s.frontier.Load() {
		s.frontier.Store(epoch)
	}
	if s.cfg.KeepHistory {
		s.mu.Lock()
		s.histEpochs = append(s.histEpochs, int(epoch))
		s.hist = append(s.hist, vals)
		s.mu.Unlock()
	}
}

// serveRefreshRoute republishes the routing view from the current master
// directory and replica tables. Called after load and after every
// completed recovery pass (rebirth, migration, checkpoint rebuild and
// logged replay all reshape the tables).
func (c *Cluster[V, A]) serveRefreshRoute() {
	s := c.serve
	if s == nil {
		return
	}
	nv := c.g.NumVertices()
	start := make([]int32, nv+1)
	for _, nd := range c.aliveNodes() {
		for i := range nd.entries {
			if e := &nd.entries[i]; e.isMaster() {
				start[int(e.id)+1] = int32(len(e.replicaNodes))
			}
		}
	}
	for v := 0; v < nv; v++ {
		start[v+1] += start[v]
	}
	total := int(start[nv])
	rv := &serveRoute{
		masterLoc: append([]int16(nil), c.masterLoc...),
		start:     start,
		hosts:     make([]int16, total),
		ftOnly:    make([]bool, total),
	}
	for _, nd := range c.aliveNodes() {
		for i := range nd.entries {
			e := &nd.entries[i]
			if !e.isMaster() {
				continue
			}
			base := start[e.id]
			copy(rv.hosts[base:], e.replicaNodes)
			copy(rv.ftOnly[base:], e.replicaFTOnly)
		}
	}
	s.route.Store(rv)
}

// serveRouteFor picks the node to serve vertex v: its master when alive and
// unsuspected, otherwise the first live, unsuspected replica host in rank
// order. FT-only replicas of selfish vertices are skipped when the §4.4
// optimization is on — they were never synced and hold no current value.
func (c *Cluster[V, A]) serveRouteFor(rv *serveRoute, v graph.VertexID) (node int, fromReplica, ok bool) {
	mn := int(rv.masterLoc[v])
	if mn >= 0 && c.coord.Alive(mn) && !c.coord.Suspected(mn) {
		return mn, false, true
	}
	selfish := c.selfishOptOn && c.g.IsSelfish(v)
	for k := rv.start[v]; k < rv.start[int(v)+1]; k++ {
		h := int(rv.hosts[k])
		if h == mn || !c.coord.Alive(h) || c.coord.Suspected(h) {
			continue
		}
		if rv.ftOnly[k] && selfish {
			continue
		}
		return h, true, true
	}
	return -1, false, false
}

// serveAggregator picks the lowest live, unsuspected node for aggregate
// answers (TopK), or -1 when none qualifies.
func (c *Cluster[V, A]) serveAggregator() int {
	for id := 0; id < c.cfg.NumNodes; id++ {
		if c.coord.Alive(id) && !c.coord.Suspected(id) {
			return id
		}
	}
	return -1
}

// Query answers one read from the last published epoch-consistent
// snapshot. Safe for concurrent use from any goroutine while the engine
// runs (and after Run returns); it never blocks on the superstep loop.
func (c *Cluster[V, A]) Query(q Query) (Answer, error) {
	s := c.serve
	if s == nil {
		return Answer{}, ErrServeDisabled
	}
	// Read the frontier BEFORE the snapshot: a concurrent commit between
	// the two loads then only makes the snapshot newer than the frontier
	// (clamped below), never spuriously staler.
	frontier := s.frontier.Load()
	snap := s.snap.Load()
	rv := s.route.Load()
	if snap == nil || rv == nil {
		return Answer{}, ErrServeDisabled
	}
	s.queries.Add(1)

	bound := q.StalenessBound
	if bound == 0 {
		bound = s.cfg.StalenessBound
	}
	if bound < 0 {
		bound = 0 // explicitly unbounded
	}
	if frontier < snap.epoch {
		frontier = snap.epoch
	}
	stale := frontier - snap.epoch
	for {
		m := s.maxStaleness.Load()
		if stale <= m || s.maxStaleness.CompareAndSwap(m, stale) {
			break
		}
	}
	if bound > 0 && stale > int64(bound) {
		s.staleRejected.Add(1)
		return Answer{}, fmt.Errorf("%w: staleness %d exceeds bound %d (epoch %d, frontier %d)",
			ErrStaleRead, stale, bound, snap.epoch, frontier)
	}

	ans := Answer{
		Kind:           q.Kind,
		Vertex:         q.Vertex,
		Epoch:          int(snap.epoch),
		Frontier:       int(frontier),
		StalenessBound: bound,
		Node:           -1,
	}
	switch q.Kind {
	case QueryValue, QueryNeighbors:
		v := q.Vertex
		if int64(v) >= int64(len(rv.masterLoc)) {
			return Answer{}, fmt.Errorf("%w: vertex %d outside [0, %d)", ErrUnknownVertex, v, len(rv.masterLoc))
		}
		node, fromReplica, ok := c.serveRouteFor(rv, v)
		if !ok {
			s.unavailable.Add(1)
			return Answer{}, fmt.Errorf("%w: vertex %d has no live synced replica", ErrVertexUnavailable, v)
		}
		ans.Node, ans.FromReplica = node, fromReplica
		if fromReplica {
			s.fromReplica.Add(1)
		}
		if q.Kind == QueryValue {
			ans.Value = snap.vals[v]
		} else {
			limit := q.K
			if limit <= 0 || limit > c.g.OutDegree(v) {
				limit = c.g.OutDegree(v)
			}
			ans.Neighbors = make([]graph.VertexID, 0, limit)
			c.g.OutEdges(v, func(_ int, e graph.Edge) {
				if len(ans.Neighbors) < limit {
					ans.Neighbors = append(ans.Neighbors, e.Dst)
				}
			})
		}
	case QueryTopK:
		if q.K < 1 {
			return Answer{}, fmt.Errorf("%w: top-k needs K >= 1, got %d", ErrBadQuery, q.K)
		}
		ans.TopK = topRanks(snap.vals, q.K)
		ans.Node = c.serveAggregator()
	default:
		return Answer{}, fmt.Errorf("%w: unknown kind %d", ErrBadQuery, int(q.Kind))
	}
	return ans, nil
}

// rankBetter orders descending by value, ascending by id on ties.
func rankBetter(a, b RankEntry) bool {
	if a.Value != b.Value {
		return a.Value > b.Value
	}
	return a.Vertex < b.Vertex
}

// topRanks selects the K best entries of vals (O(V log K)).
func topRanks(vals []float64, k int) []RankEntry {
	if k > len(vals) {
		k = len(vals)
	}
	top := make([]RankEntry, 0, k)
	for v, val := range vals {
		e := RankEntry{Vertex: graph.VertexID(v), Value: val}
		if len(top) == k {
			if !rankBetter(e, top[k-1]) {
				continue
			}
			top = top[:k-1]
		}
		i := sort.Search(len(top), func(i int) bool { return !rankBetter(top[i], e) })
		top = append(top, RankEntry{})
		copy(top[i+1:], top[i:])
		top[i] = e
	}
	return top
}

// ServeStats returns the serving counters so far, or nil when serving is
// disabled.
func (c *Cluster[V, A]) ServeStats() *metrics.Serve {
	s := c.serve
	if s == nil {
		return nil
	}
	return &metrics.Serve{
		Queries:       s.queries.Load(),
		FromReplica:   s.fromReplica.Load(),
		StaleRejected: s.staleRejected.Load(),
		Unavailable:   s.unavailable.Load(),
		MaxStaleness:  s.maxStaleness.Load(),
	}
}

// PublishedEpochs returns the epochs retained by Serve.KeepHistory, in
// publish order.
func (c *Cluster[V, A]) PublishedEpochs() []int {
	s := c.serve
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int(nil), s.histEpochs...)
}

// EpochValues returns the scalar values published at the given epoch when
// Serve.KeepHistory retained them, or nil. The returned slice is the
// published snapshot itself: callers must not mutate it.
func (c *Cluster[V, A]) EpochValues(epoch int) []float64 {
	s := c.serve
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, e := range s.histEpochs {
		if e == epoch {
			return s.hist[i]
		}
	}
	return nil
}
