package core

// syncRoute is a node's precomputed sync-routing table: the per-entry
// replica destination lists (replicaNodes/replicaPos/replicaFTOnly)
// flattened CSR-style into four parallel arrays. Entry i's replicas occupy
// [start[i], start[i+1]). The flat layout removes the per-superstep
// pointer-chasing over slice-of-slices in the edge-cut sync and vertex-cut
// R1/R3 hot loops, and rebuilding it is O(presences), so it is recomputed
// lazily (routeDirty) whenever recovery reshapes the replica tables.
//
// Build order is entry order then replica-index order — exactly the order
// the superstep loops used to walk the entry slices — so the emitted byte
// streams are bit-for-bit unchanged.
type syncRoute struct {
	start  []int32
	node   []int16
	pos    []int32
	ftOnly []bool
}

// rebuildRoute derives nd.route from the entry replica tables and clears
// routeDirty. Callers on the phase path invoke it from the per-node phase
// prologue, so each node's rebuild runs on the goroutine that owns it.
func (c *Cluster[V, A]) rebuildRoute(nd *node[V, A]) {
	rt := &nd.route
	rt.start = rt.start[:0]
	rt.node = rt.node[:0]
	rt.pos = rt.pos[:0]
	rt.ftOnly = rt.ftOnly[:0]
	for i := range nd.entries {
		rt.start = append(rt.start, int32(len(rt.node)))
		e := &nd.entries[i]
		for ri, rn := range e.replicaNodes {
			rt.node = append(rt.node, rn)
			rt.pos = append(rt.pos, e.replicaPos[ri])
			rt.ftOnly = append(rt.ftOnly, e.replicaFTOnly[ri])
		}
	}
	rt.start = append(rt.start, int32(len(rt.node)))
	nd.routeDirty = false
}

// routeReady rebuilds the routing table if a recovery invalidated it.
func (c *Cluster[V, A]) routeReady(nd *node[V, A]) {
	if nd.routeDirty {
		c.rebuildRoute(nd)
	}
}

// markRoutesDirty invalidates every alive node's routing table (used after
// recoveries that may touch any replica table, like Migration's promotion,
// pruning and FT-invariant repair).
func (c *Cluster[V, A]) markRoutesDirty() {
	for _, n := range c.nodes {
		if n != nil && n.alive {
			n.routeDirty = true
		}
	}
}
