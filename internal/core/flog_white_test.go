package core

import (
	"bytes"
	"testing"

	"imitator/internal/datasets"
)

// TestLogWriteDeterminism is the log layer's determinism contract: the
// superstep-log bytes every node persists are identical for any intra-node
// worker-pool width (chunk-parallel encodes concatenate in chunk order) and
// across repeated runs.
func TestLogWriteDeterminism(t *testing.T) {
	for _, mode := range []Mode{EdgeCutMode, VertexCutMode} {
		g := datasets.Tiny(400, 2400, 55)
		logBytes := func(workers int) map[string][]byte {
			cfg := DefaultConfig(mode, 4)
			cfg.MaxIter = 6
			cfg.FT = FTConfig{}
			cfg.Logged = LoggedConfig{Enabled: true, CompactEvery: 3}
			cfg.Recovery = RecoverLogged
			cfg.WorkersPerNode = workers
			cl, err := NewCluster[float64, float64](cfg, g, fakePR{})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := cl.Run(); err != nil {
				t.Fatal(err)
			}
			files := map[string][]byte{}
			for n := 0; n < cfg.NumNodes; n++ {
				for s := 0; s < cfg.MaxIter; s++ {
					path := flogPath(n, s)
					data, _, err := cl.dfs.Read(n, path)
					if err != nil {
						t.Fatalf("%v: %s: %v", mode, path, err)
					}
					files[path] = data
				}
			}
			return files
		}
		serial := logBytes(1)
		for _, workers := range []int{2, 4} {
			parallel := logBytes(workers)
			for path, want := range serial {
				if !bytes.Equal(parallel[path], want) {
					t.Fatalf("%v: %s differs between 1 and %d workers (%d vs %d bytes)",
						mode, path, workers, len(want), len(parallel[path]))
				}
			}
		}
	}
}
