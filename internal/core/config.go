package core

import (
	"fmt"

	"imitator/internal/costmodel"
	"imitator/internal/hostpar"
	"imitator/internal/partition"
)

// Mode selects the engine's partitioning family.
type Mode int

// Engine modes.
const (
	EdgeCutMode   Mode = iota + 1 // Cyclops: vertices partitioned, edges at masters
	VertexCutMode                 // PowerLyra: edges partitioned, GAS execution
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case EdgeCutMode:
		return "edge-cut"
	case VertexCutMode:
		return "vertex-cut"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// PartitionerKind names a partitioning algorithm.
type PartitionerKind int

// Partitioners. Hash, Fennel and LDG are edge-cuts; Random, Grid, Hybrid
// and Oblivious are vertex-cuts.
const (
	PartHash PartitionerKind = iota + 1
	PartFennel
	PartLDG
	PartRandom
	PartGrid
	PartHybrid
	PartOblivious
)

// String implements fmt.Stringer.
func (p PartitionerKind) String() string {
	switch p {
	case PartHash:
		return "hash"
	case PartFennel:
		return "fennel"
	case PartLDG:
		return "ldg"
	case PartRandom:
		return "random"
	case PartGrid:
		return "grid"
	case PartHybrid:
		return "hybrid"
	case PartOblivious:
		return "oblivious"
	default:
		return fmt.Sprintf("partitioner(%d)", int(p))
	}
}

// RecoveryKind selects what happens when machines fail.
type RecoveryKind int

// Recovery strategies.
const (
	// RecoverNone aborts the job on failure (baseline without FT).
	RecoverNone RecoveryKind = iota + 1
	// RecoverCheckpoint reloads the last DFS snapshot on a standby node and
	// replays lost iterations (the paper's CKPT baseline).
	RecoverCheckpoint
	// RecoverRebirth reconstructs the crashed node's state on a standby
	// node from replicas on all surviving nodes (§5.1).
	RecoverRebirth
	// RecoverMigration promotes mirrors on surviving nodes to masters and
	// scatters the crashed node's workload across the cluster (§5.2).
	RecoverMigration
	// RecoverLogged is log-based failure-confined recovery (after Yan, Cheng
	// & Yang, arXiv:1601.06496): every node logs its touched-vertex deltas
	// and received sync payloads at superstep end, and on failure only the
	// reborn nodes replay their own log chains — survivors perform zero
	// recomputation. Requires Logged.Enabled.
	RecoverLogged
)

// String implements fmt.Stringer.
func (r RecoveryKind) String() string {
	switch r {
	case RecoverNone:
		return "none"
	case RecoverCheckpoint:
		return "checkpoint"
	case RecoverRebirth:
		return "rebirth"
	case RecoverMigration:
		return "migration"
	case RecoverLogged:
		return "logged"
	default:
		return fmt.Sprintf("recovery(%d)", int(r))
	}
}

// MirrorPlacement selects the mirror-assignment policy.
type MirrorPlacement int

// Mirror placement policies.
const (
	// MirrorBalanced is the paper's greedy assignment: each master picks
	// the replica whose host has the fewest mirrors so far (§4.2). This is
	// the default (zero value).
	MirrorBalanced MirrorPlacement = iota
	// MirrorFirst naively picks the first replicas in host order — the
	// ablation baseline showing why balance matters for recovery
	// scalability.
	MirrorFirst
)

// FTConfig controls the replication-based fault-tolerance layer.
type FTConfig struct {
	// Enabled turns on FT replicas, mirrors and full-state sync.
	Enabled bool
	// K is the number of simultaneous machine failures to tolerate; every
	// vertex gets at least K replicas and K mirrors (§5.3.1).
	K int
	// SelfishOpt enables the §4.4 selfish-vertex optimization when the
	// program supports recomputation.
	SelfishOpt bool
	// MirrorPlacement selects balanced (default) or naive placement.
	MirrorPlacement MirrorPlacement
}

// CheckpointConfig controls the checkpoint baseline (Imitator-CKPT).
type CheckpointConfig struct {
	// Enabled turns on periodic snapshots to the DFS.
	Enabled bool
	// Interval is the number of iterations between snapshots (>= 1).
	Interval int
	// InMemory models checkpointing to a memory-backed HDFS: storage
	// bandwidth becomes the network bandwidth instead of disk (Fig 7's
	// CKPT-mem variant).
	InMemory bool
	// Incremental writes only the vertices that changed since the previous
	// snapshot (§2.3: Imitator-CKPT "can periodically launch checkpoint to
	// create an incremental snapshot"). Recovery then replays the snapshot
	// chain from the last full one.
	Incremental bool
	// FullEvery forces a full snapshot every N snapshots when Incremental
	// is set (bounds the recovery chain). Defaults to 4.
	FullEvery int
}

// LoggedConfig controls the superstep-log layer behind RecoverLogged.
type LoggedConfig struct {
	// Enabled turns on superstep-end logging: per-node touched-master deltas
	// plus received sync payloads, persisted to the DFS.
	Enabled bool
	// CompactEvery writes a full snapshot record every N supersteps in place
	// of the delta log, bounding a reborn node's replay chain at N files.
	// 0 never compacts (chains grow with the run).
	CompactEvery int
}

// MaxDropRate caps ChaosDrop probabilities: the reliable layer
// retransmits every loss, so the expected tries per frame are 1/(1-p)
// and rates near 1 would effectively sever the link forever.
const MaxDropRate = 0.9

// FailPhase says when within an iteration a failure strikes.
type FailPhase int

// Failure phases, relative to iteration Iteration's global barrier.
const (
	// FailBeforeBarrier kills the node mid-computation: survivors roll the
	// iteration back and re-execute it after recovery (Algorithm 1 line 8).
	FailBeforeBarrier FailPhase = iota + 1
	// FailAfterBarrier kills the node after commit: no rollback needed
	// (Algorithm 1 line 17).
	FailAfterBarrier
)

// FailureSpec schedules fail-stop crashes.
//
// Deprecated: new code should express failures as ChaosEvent values in
// Config.Chaos (see pkg/imitator's WithFailures builders). FailureSpec
// remains as the synchronous-injection path the benchmarks pin down.
type FailureSpec struct {
	Iteration int
	Phase     FailPhase
	Nodes     []int
}

// ChaosKind enumerates the typed events of a chaos schedule.
type ChaosKind int

// Chaos event kinds.
const (
	// ChaosCrash fail-stops Nodes at Iteration/Phase. Unlike the legacy
	// FailureSpec path, detection runs through the coord heartbeat monitor
	// on the simulated clock; the timing (DetectionTime) and results are
	// identical.
	ChaosCrash ChaosKind = iota + 1
	// ChaosCrashDuringRecovery fail-stops Nodes when a recovery pass
	// reaches the phase whose label starts with During ("" = the first
	// phase of whatever recovery runs). Fires at most once.
	ChaosCrashDuringRecovery
	// ChaosSlowLink multiplies the From->To link's transfer cost by Factor
	// from Iteration onwards (netsim degradation).
	ChaosSlowLink
	// ChaosDelayBurst adds Seconds to every messaging round of one
	// execution attempt of Iteration.
	ChaosDelayBurst
	// ChaosDrop makes the From->To link lose each frame with probability
	// Prob from Iteration onwards. The reliable-delivery layer
	// retransmits until the frame traverses, charging every retry and
	// its backoff through the cost model: results are unchanged, the
	// run gets slower and heavier.
	ChaosDrop
	// ChaosDuplicate makes the From->To link deliver each frame twice
	// with probability Prob; the receiver deduplicates by sequence
	// number.
	ChaosDuplicate
	// ChaosReorder makes the From->To link hold each frame back past its
	// successor with probability Prob; the receiver restores FIFO order.
	ChaosReorder
	// ChaosPartition cuts Nodes off from the rest of the cluster at
	// Iteration: frames on severed links are parked in the cable, the
	// isolated nodes are suspected, confirmed failed, and recovered like
	// a crash, and at HealIter the parked frames are released — to be
	// fenced by the membership epochs the recovery bumped (split-brain
	// safety).
	ChaosPartition
)

// String implements fmt.Stringer.
func (k ChaosKind) String() string {
	switch k {
	case ChaosCrash:
		return "crash"
	case ChaosCrashDuringRecovery:
		return "crash-during-recovery"
	case ChaosSlowLink:
		return "slow-link"
	case ChaosDelayBurst:
		return "delay-burst"
	case ChaosDrop:
		return "drop"
	case ChaosDuplicate:
		return "duplicate"
	case ChaosReorder:
		return "reorder"
	case ChaosPartition:
		return "partition"
	default:
		return fmt.Sprintf("chaos(%d)", int(k))
	}
}

// ChaosEvent is one typed entry of a chaos schedule (Config.Chaos). Only
// the fields relevant to Kind are read; see the ChaosKind constants.
type ChaosEvent struct {
	Kind      ChaosKind
	Iteration int       // ChaosCrash, ChaosSlowLink, ChaosDelayBurst, omission kinds
	Phase     FailPhase // ChaosCrash
	Nodes     []int     // ChaosCrash, ChaosCrashDuringRecovery, ChaosPartition
	During    string    // ChaosCrashDuringRecovery: phase-label prefix
	From, To  int       // ChaosSlowLink / ChaosDrop / ChaosDuplicate / ChaosReorder endpoints
	Factor    float64   // ChaosSlowLink multiplier (>= 1)
	Seconds   float64   // ChaosDelayBurst extra round seconds
	Prob      float64   // ChaosDrop/Duplicate/Reorder per-frame probability
	HealIter  int       // ChaosPartition heal iteration (> Iteration; >= MaxIter never heals)
}

// MembershipKind selects the failure-detection protocol behind chaos
// crash delivery.
type MembershipKind int

// Membership protocols.
const (
	// MembershipCentralized (default) detects failures with the coord
	// HeartbeatMonitor: every node beats to a central master, which
	// suspects after SuspectBeats missed intervals and confirms after
	// DetectMissedBeats. This reproduces the paper's Zookeeper-style
	// master and is the bit-identical baseline.
	MembershipCentralized MembershipKind = iota
	// MembershipGossip detects failures with the decentralized SWIM
	// protocol in internal/gossip: randomized ping / ping-req(k) probing
	// with piggybacked dissemination over its own lossy datagram network,
	// which inherits the run's drop and partition chaos. Suspicions and
	// confirmations feed the same coordinator Suspect/MarkFailed path.
	MembershipGossip
)

// String implements fmt.Stringer.
func (m MembershipKind) String() string {
	switch m {
	case MembershipCentralized:
		return "centralized"
	case MembershipGossip:
		return "gossip"
	default:
		return fmt.Sprintf("membership(%d)", int(m))
	}
}

// MembershipConfig selects and tunes the failure detector. The zero value
// is the centralized heartbeat monitor with default timing.
type MembershipConfig struct {
	// Kind picks the protocol.
	Kind MembershipKind
	// GossipFanout is SWIM's k: the number of indirect ping-req helpers
	// asked when a direct probe goes unanswered. 0 means 3.
	GossipFanout int
	// SuspicionPeriods is how many gossip protocol periods a suspected
	// member has to refute before it is confirmed failed. 0 means 3.
	SuspicionPeriods int
	// PeriodSeconds is the simulated length of one gossip protocol
	// period. 0 means Cost.HeartbeatInterval.
	PeriodSeconds float64
}

// TransportKind selects how messages travel between the simulated nodes.
type TransportKind int

// Transports.
const (
	// TransportMem (default) delivers through in-memory mailboxes.
	TransportMem TransportKind = iota
	// TransportTCP streams every message over a loopback TCP mesh — the
	// full protocol exercises the operating system's network stack. Costs
	// still come from the simulated model.
	TransportTCP
)

// Config describes one job.
type Config struct {
	NumNodes    int
	Mode        Mode
	Transport   TransportKind
	Partitioner PartitionerKind
	// Fennel and Hybrid carry partitioner-specific tuning; zero values use
	// the package defaults.
	Fennel partition.FennelConfig
	Hybrid partition.HybridCutConfig

	FT         FTConfig
	Checkpoint CheckpointConfig
	Logged     LoggedConfig
	Recovery   RecoveryKind

	// MaxIter is the number of supersteps to run.
	MaxIter int
	// MaxRebirths bounds the standby pool for Rebirth/Checkpoint recovery.
	MaxRebirths int
	// RebirthFallback lets a Rebirth recovery that exhausts the standby
	// pool fall back to Migration (scattering the lost slots over the
	// survivors) instead of failing the job with ErrNoStandby. Requires
	// FT.Enabled.
	RebirthFallback bool
	// WorkersPerNode is the width of each node's intra-node worker pool in
	// the SIMULATION: compute phases (gather/apply, sync encode, recovery
	// reconstruction, checkpoint encode) shard the node's vertex array into
	// this many contiguous chunks, and the chunk count feeds the cost model
	// (costmodel.ComputeTime), so it changes simulated seconds. Results are
	// reduced in chunk order, so every byte stream and vertex value is
	// identical for any pool width. Must be >= 1; DefaultConfig sets 1 (the
	// paper's serial engine).
	//
	// WorkersPerNode does NOT control how many goroutines actually run:
	// that is HostParallelism. A 64-node job with WorkersPerNode=8 simulates
	// 512 workers but executes on min(64, HostParallelism) phase goroutines,
	// each running its node's 8 chunks on at most HostParallelism chunk
	// slots.
	WorkersPerNode int
	// HostParallelism caps the real goroutines the engine uses per phase —
	// the node-level phase pool and the intra-node chunk execution slots.
	// 0 (the default) means runtime.GOMAXPROCS(0). It has no effect on any
	// simulated result: sim_seconds and every byte stream are identical for
	// all values. Barrier phases are exempt from the cap, because every
	// alive node must block in the coordination barrier concurrently.
	HostParallelism int

	// Serve enables the epoch-consistent live-query layer (see serve.go):
	// committed snapshots published per superstep, answered from masters or
	// FT replicas with bounded staleness. Host-side only — simulated
	// results are bit-identical with serving on or off.
	Serve ServeConfig

	// Membership selects the failure detector chaos crashes are delivered
	// through: the centralized heartbeat monitor (default) or SWIM gossip.
	Membership MembershipConfig

	Cost costmodel.Params
	// Failures is the legacy synchronous crash schedule.
	//
	// Deprecated: prefer Chaos.
	Failures []FailureSpec
	// Chaos is the typed fault schedule the run loop evaluates: crashes
	// (delivered via heartbeat detection), crashes during recovery,
	// netsim degradation events and omission faults (drop / duplicate /
	// reorder / partition). Empty schedules cost nothing.
	Chaos []ChaosEvent
	// ChaosSeed seeds the omission layer's per-link fate RNGs. The same
	// schedule with the same seed replays bit-for-bit; different seeds
	// draw different loss patterns from the same probabilities.
	ChaosSeed uint64
}

// Validate checks the configuration for contradictions.
func (c *Config) Validate() error {
	if c.NumNodes < 1 || c.NumNodes > partition.MaxNodes {
		return fmt.Errorf("core: NumNodes %d outside [1, %d]", c.NumNodes, partition.MaxNodes)
	}
	if c.MaxIter < 1 {
		return fmt.Errorf("core: MaxIter must be >= 1, got %d", c.MaxIter)
	}
	if c.WorkersPerNode < 1 {
		return fmt.Errorf("core: WorkersPerNode must be >= 1, got %d (set it to 1 for the serial engine, or runtime.GOMAXPROCS(0) to use every core)", c.WorkersPerNode)
	}
	if c.HostParallelism < 0 {
		return fmt.Errorf("core: HostParallelism must be >= 0, got %d (0 uses GOMAXPROCS)", c.HostParallelism)
	}
	// NumNodes*WorkersPerNode is the simulated task count per phase, not a
	// goroutine count — execution is capped at HostParallelism — but an
	// absurd product still costs NumNodes*WorkersPerNode stager structures
	// and per-chunk merge work, so reject configurations that oversubscribe
	// the simulation beyond any plausible host.
	if c.NumNodes*c.WorkersPerNode > maxSimTasks {
		return fmt.Errorf("core: NumNodes (%d) x WorkersPerNode (%d) = %d simulated tasks per phase exceeds %d; this oversubscription is almost certainly a mistake — the host executes at most HostParallelism (%d resolved) goroutines regardless",
			c.NumNodes, c.WorkersPerNode, c.NumNodes*c.WorkersPerNode, maxSimTasks, c.hostParallelism())
	}
	if c.MaxRebirths < 0 {
		return fmt.Errorf("core: MaxRebirths must be >= 0, got %d", c.MaxRebirths)
	}
	switch c.Transport {
	case TransportMem, TransportTCP:
	default:
		return fmt.Errorf("core: unknown transport %d (use TransportMem or TransportTCP)", int(c.Transport))
	}
	switch c.Mode {
	case EdgeCutMode:
		switch c.Partitioner {
		case PartHash, PartFennel, PartLDG:
		default:
			return fmt.Errorf("core: edge-cut mode needs hash/fennel/ldg, got %v", c.Partitioner)
		}
	case VertexCutMode:
		switch c.Partitioner {
		case PartRandom, PartGrid, PartHybrid, PartOblivious:
		default:
			return fmt.Errorf("core: vertex-cut mode needs random/grid/hybrid/oblivious, got %v", c.Partitioner)
		}
	default:
		return fmt.Errorf("core: unknown mode %v", c.Mode)
	}
	if c.FT.Enabled {
		if c.FT.K < 1 {
			return fmt.Errorf("core: FT.K must be >= 1, got %d", c.FT.K)
		}
		if c.FT.K >= c.NumNodes {
			return fmt.Errorf("core: FT.K %d must be below NumNodes %d", c.FT.K, c.NumNodes)
		}
	}
	if err := validateStrategy(c); err != nil {
		return err
	}
	if c.Serve.PublishEvery < 0 {
		return fmt.Errorf("core: Serve.PublishEvery must be >= 0, got %d (0 publishes every superstep)", c.Serve.PublishEvery)
	}
	if c.Serve.StalenessBound < 0 {
		return fmt.Errorf("core: Serve.StalenessBound must be >= 0, got %d (0 is unbounded)", c.Serve.StalenessBound)
	}
	switch c.Membership.Kind {
	case MembershipCentralized, MembershipGossip:
	default:
		return fmt.Errorf("core: unknown membership kind %d (use MembershipCentralized or MembershipGossip)", int(c.Membership.Kind))
	}
	if c.Membership.GossipFanout < 0 {
		return fmt.Errorf("core: Membership.GossipFanout must be >= 0, got %d (0 uses the default of 3)", c.Membership.GossipFanout)
	}
	if c.Membership.SuspicionPeriods < 0 {
		return fmt.Errorf("core: Membership.SuspicionPeriods must be >= 0, got %d (0 uses the default of 3)", c.Membership.SuspicionPeriods)
	}
	if c.Membership.PeriodSeconds < 0 {
		return fmt.Errorf("core: Membership.PeriodSeconds must be >= 0, got %g (0 uses Cost.HeartbeatInterval)", c.Membership.PeriodSeconds)
	}
	if c.Membership.Kind == MembershipGossip && c.NumNodes < 2 {
		return fmt.Errorf("core: gossip membership needs at least 2 nodes, got %d", c.NumNodes)
	}
	for _, f := range c.Failures {
		if f.Iteration < 0 || f.Iteration >= c.MaxIter {
			return fmt.Errorf("%w: failure iteration %d outside [0, %d)", ErrInvalidSchedule, f.Iteration, c.MaxIter)
		}
		if f.Phase != FailBeforeBarrier && f.Phase != FailAfterBarrier {
			return fmt.Errorf("%w: failure needs a phase", ErrInvalidSchedule)
		}
		if err := c.validateNodes(f.Nodes); err != nil {
			return err
		}
	}
	for _, ev := range c.Chaos {
		if err := c.validateChaosEvent(ev); err != nil {
			return err
		}
	}
	if err := c.Cost.Validate(); err != nil {
		return err
	}
	return nil
}

// chaosHasCrash reports whether the chaos schedule contains events that
// cost a node (partitions confirm the isolated set failed, so they need
// a recovery strategy like any crash).
func (c *Config) chaosHasCrash() bool {
	for _, ev := range c.Chaos {
		switch ev.Kind {
		case ChaosCrash, ChaosCrashDuringRecovery, ChaosPartition:
			return true
		}
	}
	return false
}

// ChaosHasOmission reports whether the schedule contains omission-fault
// events; only then is the netsim omission layer installed, keeping the
// reliable path at zero cost.
func (c *Config) ChaosHasOmission() bool {
	for _, ev := range c.Chaos {
		switch ev.Kind {
		case ChaosDrop, ChaosDuplicate, ChaosReorder, ChaosPartition:
			return true
		}
	}
	return false
}

// validateNodes checks a crash event's target list.
func (c *Config) validateNodes(nodes []int) error {
	if len(nodes) == 0 {
		return fmt.Errorf("%w: failure with no nodes", ErrInvalidSchedule)
	}
	for _, n := range nodes {
		if n < 0 || n >= c.NumNodes {
			return fmt.Errorf("%w: failure node %d outside cluster", ErrInvalidSchedule, n)
		}
	}
	return nil
}

// validateChaosEvent checks one schedule entry against the job config.
func (c *Config) validateChaosEvent(ev ChaosEvent) error {
	switch ev.Kind {
	case ChaosCrash:
		if ev.Iteration < 0 || ev.Iteration >= c.MaxIter {
			return fmt.Errorf("%w: crash iteration %d outside [0, %d)", ErrInvalidSchedule, ev.Iteration, c.MaxIter)
		}
		if ev.Phase != FailBeforeBarrier && ev.Phase != FailAfterBarrier {
			return fmt.Errorf("%w: crash needs a phase", ErrInvalidSchedule)
		}
		return c.validateNodes(ev.Nodes)
	case ChaosCrashDuringRecovery:
		return c.validateNodes(ev.Nodes)
	case ChaosSlowLink:
		if ev.Iteration < 0 || ev.Iteration >= c.MaxIter {
			return fmt.Errorf("%w: slow-link iteration %d outside [0, %d)", ErrInvalidSchedule, ev.Iteration, c.MaxIter)
		}
		if ev.From < 0 || ev.From >= c.NumNodes || ev.To < 0 || ev.To >= c.NumNodes || ev.From == ev.To {
			return fmt.Errorf("%w: slow-link endpoints %d->%d invalid", ErrInvalidSchedule, ev.From, ev.To)
		}
		if ev.Factor < 1 {
			return fmt.Errorf("%w: slow-link factor %g below 1", ErrInvalidSchedule, ev.Factor)
		}
		return nil
	case ChaosDelayBurst:
		if ev.Iteration < 0 || ev.Iteration >= c.MaxIter {
			return fmt.Errorf("%w: delay-burst iteration %d outside [0, %d)", ErrInvalidSchedule, ev.Iteration, c.MaxIter)
		}
		if ev.Seconds < 0 {
			return fmt.Errorf("%w: delay-burst seconds %g negative", ErrInvalidSchedule, ev.Seconds)
		}
		return nil
	case ChaosDrop, ChaosDuplicate, ChaosReorder:
		if ev.Iteration < 0 || ev.Iteration >= c.MaxIter {
			return fmt.Errorf("%w: %v iteration %d outside [0, %d)", ErrInvalidSchedule, ev.Kind, ev.Iteration, c.MaxIter)
		}
		if ev.From < 0 || ev.From >= c.NumNodes || ev.To < 0 || ev.To >= c.NumNodes || ev.From == ev.To {
			return fmt.Errorf("%w: %v endpoints %d->%d invalid", ErrInvalidSchedule, ev.Kind, ev.From, ev.To)
		}
		limit := 1.0
		if ev.Kind == ChaosDrop {
			// Retransmission terminates in expectation 1/(1-p) tries; cap
			// the rate so schedules cannot starve a link.
			limit = MaxDropRate
		}
		if ev.Prob < 0 || ev.Prob > limit {
			return fmt.Errorf("%w: %v probability %g outside [0, %g]", ErrInvalidSchedule, ev.Kind, ev.Prob, limit)
		}
		return nil
	case ChaosPartition:
		if ev.Iteration < 0 || ev.Iteration >= c.MaxIter {
			return fmt.Errorf("%w: partition iteration %d outside [0, %d)", ErrInvalidSchedule, ev.Iteration, c.MaxIter)
		}
		if err := c.validateNodes(ev.Nodes); err != nil {
			return err
		}
		if len(ev.Nodes) >= c.NumNodes {
			return fmt.Errorf("%w: partition must leave at least one node on the majority side", ErrInvalidSchedule)
		}
		if ev.HealIter <= ev.Iteration {
			return fmt.Errorf("%w: partition heal iteration %d must be after start %d (use >= MaxIter for a partition that never heals)", ErrInvalidSchedule, ev.HealIter, ev.Iteration)
		}
		return nil
	default:
		return fmt.Errorf("%w: unknown chaos kind %v", ErrInvalidSchedule, ev.Kind)
	}
}

// maxSimTasks bounds NumNodes*WorkersPerNode. 16384 comfortably covers the
// paper's 50-node cluster at hundreds of simulated workers per node while
// catching runaway configurations.
const maxSimTasks = 16384

// hostParallelism resolves the effective host goroutine cap.
func (c *Config) hostParallelism() int {
	if c.HostParallelism > 0 {
		return c.HostParallelism
	}
	return hostpar.Limit()
}

// DefaultConfig returns a ready-to-run configuration for the given mode.
func DefaultConfig(mode Mode, numNodes int) Config {
	cfg := Config{
		NumNodes:       numNodes,
		Mode:           mode,
		FT:             FTConfig{Enabled: true, K: 1, SelfishOpt: true},
		Recovery:       RecoverRebirth,
		MaxIter:        10,
		MaxRebirths:    4,
		WorkersPerNode: 1,
		Cost:           costmodel.Default(),
	}
	if mode == EdgeCutMode {
		cfg.Partitioner = PartHash
	} else {
		cfg.Partitioner = PartHybrid
		cfg.Hybrid = partition.DefaultHybridCutConfig()
	}
	cfg.Fennel = partition.DefaultFennelConfig()
	return cfg
}
