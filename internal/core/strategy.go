package core

import (
	"errors"
	"fmt"
)

// ftStrategy is the pluggable fault-tolerance seam: everything the run loop
// needs from a recovery strategy, so cluster.go stays strategy-agnostic.
// One strategy is constructed per cluster (newFTStrategy) from
// Config.Recovery; all of them hold the cluster and drive the shared
// machinery (checkpoint writer, rebirth/migration passes, ftlog runtime)
// through it.
//
// Hook contract, in run-loop order:
//
//   - onLoad runs once at the end of load (step 10): persistence setup —
//     metadata snapshots, pristine retention, the epoch-0 data snapshot,
//     the log runtime.
//   - onSuperstepEnd runs after each commit with c.iter already advanced:
//     superstep-end persistence (periodic snapshots, superstep logs).
//   - onRollback runs after a failed iteration's rollback: discard any
//     persistence staged for the aborted iteration.
//   - recover handles one recovery pass over the failed set and returns
//     nodes that failed *during* the pass (the run loop restarts with the
//     union, §5.3.2).
type ftStrategy[V, A any] interface {
	Name() string
	onLoad()
	onSuperstepEnd()
	onRollback()
	recover(failed []int, iter int) ([]int, error)
}

// newFTStrategy builds the strategy selected by cfg.Recovery. Validate has
// already vetted the combination; the default arm is defensive.
func newFTStrategy[V, A any](c *Cluster[V, A]) (ftStrategy[V, A], error) {
	base := stratBase[V, A]{c: c}
	switch c.cfg.Recovery {
	case RecoverNone:
		return &noneStrategy[V, A]{base}, nil
	case RecoverCheckpoint:
		return &checkpointStrategy[V, A]{base}, nil
	case RecoverRebirth:
		return &rebirthStrategy[V, A]{base}, nil
	case RecoverMigration:
		return &migrationStrategy[V, A]{base}, nil
	case RecoverLogged:
		return &loggedStrategy[V, A]{base}, nil
	default:
		return nil, fmt.Errorf("%w: unknown recovery kind %v", ErrInvalidStrategy, c.cfg.Recovery)
	}
}

// validateStrategy is the one seam where FT-strategy combinations are
// vetted (Config.Validate calls it). Every rejection wraps
// ErrInvalidStrategy so callers branch on the class, not the message.
func validateStrategy(c *Config) error {
	if c.Checkpoint.Enabled {
		if c.Checkpoint.Interval < 1 {
			return fmt.Errorf("%w: checkpoint interval must be >= 1, got %d", ErrInvalidStrategy, c.Checkpoint.Interval)
		}
		if c.Checkpoint.FullEvery < 0 {
			return fmt.Errorf("%w: Checkpoint.FullEvery must be >= 0, got %d (0 means the default of 4)", ErrInvalidStrategy, c.Checkpoint.FullEvery)
		}
	}
	if c.Logged.Enabled && c.Logged.CompactEvery < 0 {
		return fmt.Errorf("%w: Logged.CompactEvery must be >= 0, got %d (0 never compacts)", ErrInvalidStrategy, c.Logged.CompactEvery)
	}
	switch c.Recovery {
	case RecoverNone:
		if len(c.Failures) > 0 || c.chaosHasCrash() {
			return fmt.Errorf("%w: failures scheduled but recovery disabled", ErrInvalidSchedule)
		}
	case RecoverCheckpoint:
		if !c.Checkpoint.Enabled {
			return fmt.Errorf("%w: checkpoint recovery needs Checkpoint.Enabled", ErrInvalidStrategy)
		}
	case RecoverRebirth, RecoverMigration:
		if !c.FT.Enabled {
			return fmt.Errorf("%w: %v recovery needs FT.Enabled", ErrInvalidStrategy, c.Recovery)
		}
	case RecoverLogged:
		if !c.Logged.Enabled {
			return fmt.Errorf("%w: logged recovery needs Logged.Enabled", ErrInvalidStrategy)
		}
	default:
		return fmt.Errorf("%w: unknown recovery kind %v", ErrInvalidStrategy, c.Recovery)
	}
	if c.RebirthFallback && !c.FT.Enabled {
		return fmt.Errorf("%w: RebirthFallback needs FT.Enabled (migration promotes mirrors)", ErrInvalidStrategy)
	}
	return nil
}

// stratBase carries the persistence hooks shared by every strategy: the
// periodic-checkpoint writer is keyed on Config.Checkpoint (snapshots can
// ride along with any recovery strategy, exactly as before the seam), and
// the superstep-log writer on Config.Logged.
type stratBase[V, A any] struct {
	c *Cluster[V, A]
}

func (s *stratBase[V, A]) onLoad() {
	c := s.c
	if c.cfg.Checkpoint.Enabled {
		c.retainPristine()
		c.writeCheckpointAt(0, false)
	}
	if c.cfg.Logged.Enabled {
		if c.pristine == nil {
			c.retainPristine()
		}
		c.flogInit()
	}
}

func (s *stratBase[V, A]) onSuperstepEnd() {
	c := s.c
	if c.cfg.Checkpoint.Enabled && c.iter%c.cfg.Checkpoint.Interval == 0 {
		c.writeCheckpoint()
	}
	if c.flog != nil {
		c.flogWrite()
	}
}

func (s *stratBase[V, A]) onRollback() {
	if s.c.flog != nil {
		s.c.flogRollback()
	}
}

// noneStrategy aborts the job on failure (baseline without FT).
type noneStrategy[V, A any] struct{ stratBase[V, A] }

func (s *noneStrategy[V, A]) Name() string { return "none" }

func (s *noneStrategy[V, A]) recover(failed []int, _ int) ([]int, error) {
	return nil, fmt.Errorf("%w: no recovery strategy configured (failed nodes %v)",
		ErrUnrecoverable, failed)
}

// checkpointStrategy is the paper's CKPT baseline: reload the last snapshot
// everywhere and replay the lost supersteps.
type checkpointStrategy[V, A any] struct{ stratBase[V, A] }

func (s *checkpointStrategy[V, A]) Name() string { return "checkpoint" }

func (s *checkpointStrategy[V, A]) recover(failed []int, _ int) ([]int, error) {
	return s.c.recoverCheckpoint(failed)
}

// rebirthStrategy is replication-based rebirth (§5.1), with the optional
// fall back to migration when the standby pool runs dry.
type rebirthStrategy[V, A any] struct{ stratBase[V, A] }

func (s *rebirthStrategy[V, A]) Name() string { return "rebirth" }

func (s *rebirthStrategy[V, A]) recover(failed []int, iter int) ([]int, error) {
	c := s.c
	more, err := c.recoverRebirth(failed, iter)
	if err != nil && c.cfg.RebirthFallback && errors.Is(err, ErrNoStandby) {
		// Standby pool is dry: migrate the lost slots onto the survivors
		// instead of failing the job (§5.2 as fallback).
		more, err = c.recoverMigration(failed, iter)
		if err == nil && len(more) == 0 && len(c.recoveries) > 0 {
			c.recoveries[len(c.recoveries)-1].Fallback = true
		}
	}
	return more, err
}

// migrationStrategy promotes mirrors on survivors (§5.2).
type migrationStrategy[V, A any] struct{ stratBase[V, A] }

func (s *migrationStrategy[V, A]) Name() string { return "migration" }

func (s *migrationStrategy[V, A]) recover(failed []int, iter int) ([]int, error) {
	return s.c.recoverMigration(failed, iter)
}

// loggedStrategy is log-based failure-confined recovery (after Yan, Cheng &
// Yang, arXiv:1601.06496): superstep-end logs feed a replay that touches
// only the reborn nodes, while survivors do zero recomputation.
type loggedStrategy[V, A any] struct{ stratBase[V, A] }

func (s *loggedStrategy[V, A]) Name() string { return "logged" }

func (s *loggedStrategy[V, A]) recover(failed []int, iter int) ([]int, error) {
	return s.c.recoverLogged(failed, iter)
}

// retainPristine snapshots each node's immutable post-load state and writes
// the per-node metadata snapshots; rebuilt newbies (checkpoint and logged
// recovery) start from these.
func (c *Cluster[V, A]) retainPristine() {
	c.pristine = make([]*pristineNode[V], c.cfg.NumNodes)
	for _, nd := range c.nodes {
		meta := c.encodeMetadataSnapshot(nd)
		c.loadSeconds += c.dfsWriteCost(nd, fmt.Sprintf("ckptmeta/%d", nd.id), meta)
		entries := make([]vertexEntry[V], len(nd.entries))
		copy(entries, nd.entries)
		c.pristine[nd.id] = &pristineNode[V]{entries: entries, localEdges: nd.localEdges}
	}
}

// StrategyStats is the uniform per-strategy accounting every FT strategy
// reports through Result.Strategy, so callers compare overheads without
// knowing which strategy ran.
type StrategyStats struct {
	// Kind names the configured strategy ("none", "checkpoint", "rebirth",
	// "migration", "logged").
	Kind string
	// PersistSeconds/PersistCount/PersistedBytes total the superstep-end
	// persistence work: checkpoint snapshots and/or superstep logs.
	PersistSeconds float64
	PersistCount   int
	PersistedBytes int64
	// LogRecords counts the delta and message records the log writer
	// persisted (logged strategy only).
	LogRecords int64
	// Recoveries/RecoverySeconds total the completed recovery passes.
	Recoveries      int
	RecoverySeconds float64
}

// strategyStats assembles the uniform stats from cluster state.
func (c *Cluster[V, A]) strategyStats() StrategyStats {
	st := StrategyStats{
		Kind:           c.strat.Name(),
		PersistSeconds: c.ckptSeconds,
		PersistCount:   c.ckptCount,
		PersistedBytes: c.ckptBytes,
	}
	if c.flog != nil {
		st.PersistSeconds += c.flog.writeSeconds
		st.PersistCount += c.flog.writes
		st.PersistedBytes += c.flog.bytes
		st.LogRecords = c.flog.records
	}
	for _, rec := range c.recoveries {
		st.Recoveries++
		st.RecoverySeconds += rec.TotalSeconds()
	}
	return st
}
