package core

import (
	"imitator/internal/graph"
)

// entryFlags packs a local vertex entry's roles.
type entryFlags uint8

const (
	flagMaster  entryFlags = 1 << iota // this entry is the vertex's master
	flagMirror                         // full-state replica (§4.2)
	flagFTOnly                         // exists only for fault tolerance (§4.1)
	flagSelfish                        // vertex has no out-edges anywhere (§4.4)
)

// noNode marks an unset node reference.
const noNode int16 = -1

// vertexEntry is one slot in a node's vertex array. Masters hold the
// authoritative state; replicas provide local reads; mirrors additionally
// hold the master's full state so they can recover it (§4.2). Entries are
// addressed by array position — a master replicates its position (and its
// replicas' positions) so recovery can place state without coordination
// (§5.1.2).
type vertexEntry[V any] struct {
	id    graph.VertexID
	flags entryFlags

	// masterNode/masterPos locate the vertex's master. For masters they
	// point at the entry itself.
	masterNode int16
	masterPos  int32

	// Static global degrees, replicated so gather can run anywhere.
	inDeg, outDeg int32

	value V

	// Staged state, committed at the global barrier and discarded on
	// rollback (Algorithm 1 line 9).
	pendingValue    V
	hasPending      bool
	pendingActive   bool
	pendingScatter  bool
	pendingScatterI int32

	// active: masters — compute this superstep; replicas (vertex-cut) —
	// whether to partial-gather this superstep (mirrors the master's flag).
	active bool

	// lastActivate records whether this vertex signaled scatter activation
	// in the superstep lastActivateIter; recovery replays activation from
	// these flags (§5.1.3).
	lastActivate     bool
	lastActivateIter int32

	// lastTouchedIter is the superstep whose commit last changed this
	// master's value or activity; incremental checkpoints snapshot only
	// masters touched since the previous epoch.
	lastTouchedIter int32

	// Local topology, by array position. inNbr/inWt are this vertex's
	// locally-stored in-edges (all of them for edge-cut masters; the local
	// share for vertex-cut). outNbr lists local entries this vertex points
	// to, for scatter activation; it is the reverse of inNbr.
	inNbr  []int32
	inWt   []float64
	outNbr []int32

	// Master-only fault-tolerance metadata: where the replicas live and at
	// which positions, which of them are mirrors (in rank order), and which
	// exist only for fault tolerance.
	replicaNodes  []int16
	replicaPos    []int32
	replicaFTOnly []bool
	mirrorOf      []int16 // replicaNodes indexes of the K mirrors, rank order

	// Mirror-only full state (a copy of the master's metadata): the
	// master's in-edge endpoints by global id (edge-cut only; vertex-cut
	// recovers edges from edge-ckpt files), each source's master node, and
	// a copy of the replica location table.
	mInSrc       []graph.VertexID
	mInWt        []float64
	mInSrcMaster []int16
	mReplicaN    []int16
	mReplicaP    []int32
	mReplicaFT   []bool
	mMirrorOf    []int16
	mirrorRank   int16 // this mirror's rank; lowest surviving rank recovers
}

func (e *vertexEntry[V]) isMaster() bool  { return e.flags&flagMaster != 0 }
func (e *vertexEntry[V]) isMirror() bool  { return e.flags&flagMirror != 0 }
func (e *vertexEntry[V]) isFTOnly() bool  { return e.flags&flagFTOnly != 0 }
func (e *vertexEntry[V]) isSelfish() bool { return e.flags&flagSelfish != 0 }

func (e *vertexEntry[V]) info() VertexInfo {
	return VertexInfo{InDeg: e.inDeg, OutDeg: e.outDeg}
}

// clearPending drops staged state (iteration rollback).
func (e *vertexEntry[V]) clearPending() {
	var zero V
	e.pendingValue = zero
	e.hasPending = false
	e.pendingActive = false
	e.pendingScatter = false
	e.pendingScatterI = 0
}

// entryFixedBytes approximates the in-memory cost of one entry excluding
// its slices and the value payload; used for the paper's memory tables.
const entryFixedBytes = 96

// memoryBytes returns the byte-exact footprint of the entry given the
// encoded value size.
func (e *vertexEntry[V]) memoryBytes(valueSize int) int64 {
	b := int64(entryFixedBytes) + 2*int64(valueSize) // value + pending
	b += int64(len(e.inNbr))*12 + int64(len(e.outNbr))*4
	b += int64(len(e.replicaNodes)) * 7 // node + pos + ftOnly
	b += int64(len(e.mirrorOf)) * 2
	b += int64(len(e.mInSrc)) * 14 // src id + weight + src master
	b += int64(len(e.mReplicaN))*7 + int64(len(e.mMirrorOf))*2
	return b
}
