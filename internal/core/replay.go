package core

import (
	"encoding/binary"
)

// replayActivation re-derives the active flags of recovered (or promoted)
// masters for the superstep about to (re-)execute (§5.1.3, §5.2.3).
//
// The invariant: a master is active at superstep `iter` exactly when some
// in-neighbor scattered during superstep iter-1. Every entry (master or
// replica) carries the committed scatter flag of its vertex stamped with
// the superstep that produced it, and every edge is stored on exactly one
// node, so one pass over local entries regenerates precisely the lost
// activation notices. isTarget selects which masters need fixing: all
// masters on reborn nodes for Rebirth, only newly promoted masters for
// Migration.
func (c *Cluster[V, A]) replayActivation(iter int, isTarget func(masterNode int16, masterPos int32) bool) {
	always := c.prog.AlwaysActive()

	// Reset the targets to their activation baseline.
	c.eachAlive(func(nd *node[V, A]) {
		c.chunked(nd, len(nd.entries), func(st *stager, lo, hi int) {
			for i := lo; i < hi; i++ {
				e := &nd.entries[i]
				if !e.isMaster() || !isTarget(int16(nd.id), int32(i)) {
					continue
				}
				switch {
				case always:
					e.active = true
				case iter == 0:
					_, act := c.prog.Init(e.id, e.info())
					e.active = act
				default:
					e.active = false
				}
			}
		})
	})
	if always || iter == 0 {
		return
	}
	prev := int32(iter - 1)

	// Regenerate activation operations aimed at the targets. Local-master
	// activations cross chunk boundaries, so they go through the worker's
	// activation list.
	c.eachAlive(func(nd *node[V, A]) {
		c.chunked(nd, len(nd.entries), func(st *stager, lo, hi int) {
			for i := lo; i < hi; i++ {
				e := &nd.entries[i]
				if !e.lastActivate || e.lastActivateIter != prev {
					continue
				}
				for _, w := range e.outNbr {
					we := &nd.entries[w]
					if we.isMaster() {
						if isTarget(int16(nd.id), int32(w)) {
							st.markActive(w)
						}
					} else if isTarget(we.masterNode, we.masterPos) {
						mpos := we.masterPos
						st.stageNotice(int(we.masterNode), func(buf []byte) []byte {
							return binary.LittleEndian.AppendUint32(buf, uint32(mpos))
						})
						st.met.RecoveryMsgs++
						st.met.RecoveryBytes += 4
					}
				}
			}
		})
	})
	c.flushNoticeRound()
	c.eachAlive(func(nd *node[V, A]) {
		msgs := c.net.Receive(nd.id)
		for _, m := range msgs {
			buf := m.Payload
			for len(buf) >= 4 {
				pos := binary.LittleEndian.Uint32(buf)
				nd.entries[pos].active = true
				buf = buf[4:]
			}
		}
		c.recycleMsgs(msgs)
	})
}
