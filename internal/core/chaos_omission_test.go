package core_test

import (
	"testing"
	"time"

	"imitator/internal/core"
	"imitator/internal/datasets"
)

// omissionEvents builds a schedule soaking several links in drop,
// duplicate and reorder faults from iteration 1.
func omissionEvents() []core.ChaosEvent {
	return []core.ChaosEvent{
		{Kind: core.ChaosDrop, Iteration: 1, From: 0, To: 2, Prob: 0.35},
		{Kind: core.ChaosDrop, Iteration: 1, From: 3, To: 1, Prob: 0.25},
		{Kind: core.ChaosDuplicate, Iteration: 1, From: 2, To: 4, Prob: 0.4},
		{Kind: core.ChaosDuplicate, Iteration: 1, From: 1, To: 0, Prob: 0.3},
		{Kind: core.ChaosReorder, Iteration: 1, From: 4, To: 3, Prob: 0.5},
		{Kind: core.ChaosReorder, Iteration: 1, From: 5, To: 2, Prob: 0.3},
	}
}

// TestChaosOmissionConvergence checks that a lossy, duplicating,
// reordering network mixed with a crash still converges to the
// bit-exact fault-free result in both modes: the reliable layer delivers
// every frame exactly once, in order, and recovery runs unchanged.
func TestChaosOmissionConvergence(t *testing.T) {
	g := datasets.Tiny(600, 3600, 97)
	for _, mode := range []core.Mode{core.EdgeCutMode, core.VertexCutMode} {
		clean := ftConfig(mode, 6, 8, 2, core.RecoverRebirth)
		want := runPR(t, clean, g)

		lossy := ftConfig(mode, 6, 8, 2, core.RecoverRebirth)
		lossy.Chaos = append(omissionEvents(), core.ChaosEvent{
			Kind: core.ChaosCrash, Iteration: 3, Phase: core.FailBeforeBarrier, Nodes: []int{1},
		})
		lossy.ChaosSeed = 42
		got := runPR(t, lossy, g)

		label := mode.String()
		valuesEqual(t, label, got.Values, want.Values, 0)
		if got.Omission == nil {
			t.Fatalf("%s: omission schedule ran without omission stats", label)
		}
		st := got.Omission
		if st.Retransmits == 0 || st.DuplicatesDropped == 0 || st.Reordered == 0 {
			t.Fatalf("%s: fault channel idle: %+v", label, st)
		}
		if st.RetransmitBytes == 0 || st.AckBytes == 0 {
			t.Fatalf("%s: retransmission traffic not charged: %+v", label, st)
		}
		if got.SimSeconds <= want.SimSeconds {
			t.Fatalf("%s: lossy run %.6fs not slower than fault-free %.6fs", label, got.SimSeconds, want.SimSeconds)
		}
		if len(got.Recoveries) == 0 {
			t.Fatalf("%s: crash under omission faults reported no recovery", label)
		}
	}
}

// TestChaosPartitionFencedAfterRebirth is the split-brain scenario: node
// 1 is partitioned mid-run (its frames park in the cable), Rebirth
// rebuilds the slot with a bumped epoch, and when the partition heals
// the old incarnation's frames are counted and dropped by the fence —
// the final vertex state bit-matches the fault-free run.
func TestChaosPartitionFencedAfterRebirth(t *testing.T) {
	g := datasets.Tiny(600, 3600, 98)
	for _, mode := range []core.Mode{core.EdgeCutMode, core.VertexCutMode} {
		clean := ftConfig(mode, 6, 8, 2, core.RecoverRebirth)
		want := runPR(t, clean, g)

		cfg := ftConfig(mode, 6, 8, 2, core.RecoverRebirth)
		cfg.Chaos = []core.ChaosEvent{
			{Kind: core.ChaosPartition, Iteration: 2, HealIter: 5, Nodes: []int{1}},
		}
		cfg.ChaosSeed = 7
		got := runPR(t, cfg, g)

		label := mode.String()
		valuesEqual(t, label, got.Values, want.Values, 0)
		if got.Omission == nil {
			t.Fatalf("%s: partition ran without omission stats", label)
		}
		st := got.Omission
		if st.Parked == 0 {
			t.Fatalf("%s: partition parked no frames: %+v", label, st)
		}
		if st.Released == 0 {
			t.Fatalf("%s: heal released no frames: %+v", label, st)
		}
		if st.Fenced == 0 {
			t.Fatalf("%s: no stale-epoch frames were fenced: %+v", label, st)
		}
		if len(got.Recoveries) == 0 {
			t.Fatalf("%s: partitioned node was not recovered", label)
		}
	}
}

// TestChaosOmissionDeterministic: same lossy schedule + same seed =>
// bit-identical retransmit counts, simulated time and byte streams.
func TestChaosOmissionDeterministic(t *testing.T) {
	g := datasets.Tiny(500, 3000, 99)
	run := func(seed uint64) *core.Result[float64] {
		cfg := ftConfig(core.EdgeCutMode, 6, 8, 2, core.RecoverRebirth)
		cfg.Chaos = append(omissionEvents(), core.ChaosEvent{
			Kind: core.ChaosPartition, Iteration: 3, HealIter: 6, Nodes: []int{2},
		})
		cfg.ChaosSeed = seed
		return runPR(t, cfg, g)
	}
	a, b := run(42), run(42)
	if a.SimSeconds != b.SimSeconds {
		t.Fatalf("SimSeconds diverged: %v != %v", a.SimSeconds, b.SimSeconds)
	}
	if a.Metrics.TotalBytes() != b.Metrics.TotalBytes() {
		t.Fatalf("bytes diverged: %d != %d", a.Metrics.TotalBytes(), b.Metrics.TotalBytes())
	}
	if *a.Omission != *b.Omission {
		t.Fatalf("omission stats diverged:\n%+v\n%+v", *a.Omission, *b.Omission)
	}
	valuesEqual(t, "replay", a.Values, b.Values, 0)
	// A different seed draws a different loss pattern from the same
	// probabilities.
	c := run(1042)
	if *c.Omission == *a.Omission {
		t.Fatalf("different seeds drew identical fates: %+v", *a.Omission)
	}
	valuesEqual(t, "other-seed", c.Values, a.Values, 0)
}

// TestChaosOmissionOverTCP runs the lossy partition schedule over the
// loopback TCP mesh: the envelope is real wire framing, so the protocol
// must behave identically when frames travel through the OS stack.
func TestChaosOmissionOverTCP(t *testing.T) {
	g := datasets.Tiny(300, 1800, 102)
	run := func(transport core.TransportKind) *core.Result[float64] {
		cfg := ftConfig(core.EdgeCutMode, 4, 6, 2, core.RecoverRebirth)
		cfg.Transport = transport
		cfg.Chaos = []core.ChaosEvent{
			{Kind: core.ChaosDrop, Iteration: 1, From: 0, To: 2, Prob: 0.3},
			{Kind: core.ChaosReorder, Iteration: 1, From: 1, To: 3, Prob: 0.4},
			{Kind: core.ChaosPartition, Iteration: 2, HealIter: 4, Nodes: []int{1}},
		}
		cfg.ChaosSeed = 5
		return runPR(t, cfg, g)
	}
	mem, tcp := run(core.TransportMem), run(core.TransportTCP)
	valuesEqual(t, "tcp-vs-mem", tcp.Values, mem.Values, 0)
	if *tcp.Omission != *mem.Omission {
		t.Fatalf("omission stats diverged across transports:\nmem: %+v\ntcp: %+v", *mem.Omission, *tcp.Omission)
	}
	if tcp.SimSeconds != mem.SimSeconds {
		t.Fatalf("SimSeconds diverged across transports: %v != %v", mem.SimSeconds, tcp.SimSeconds)
	}
}

// TestChaosOmissionZeroCostWhenDisabled: a schedule without omission
// events must not install the layer at all.
func TestChaosOmissionZeroCostWhenDisabled(t *testing.T) {
	g := datasets.Tiny(300, 1800, 100)
	cfg := ftConfig(core.EdgeCutMode, 6, 6, 2, core.RecoverRebirth)
	cfg.Chaos = crashAt(2, core.FailBeforeBarrier, 1)
	res := runPR(t, cfg, g)
	if res.Omission != nil {
		t.Fatalf("crash-only schedule installed the omission layer: %+v", *res.Omission)
	}
}

// TestChaosHeartbeatExactDeadline is the regression test for the PR 4
// "+1ms overshoot" float-truncation workaround. With a 0.7s heartbeat
// interval, DetectionTime() = 2.0999999999999996 sim-seconds truncates
// to one nanosecond short of the monitor's integer 2.1s deadline; the
// old float-derived advance then never expired the victims and the run
// deadlocked in the barrier. The exact integer-tick arithmetic must
// detect the crash and finish.
func TestChaosHeartbeatExactDeadline(t *testing.T) {
	g := datasets.Tiny(300, 1800, 101)
	done := make(chan *core.Result[float64], 1)
	go func() {
		cfg := ftConfig(core.EdgeCutMode, 6, 6, 2, core.RecoverRebirth)
		cfg.Cost.HeartbeatInterval = 0.7
		cfg.Cost.DetectMissedBeats = 3
		cfg.Chaos = crashAt(2, core.FailBeforeBarrier, 1)
		done <- runPR(t, cfg, g)
	}()
	select {
	case res := <-done:
		if len(res.Recoveries) != 1 {
			t.Fatalf("expected one recovery, got %d", len(res.Recoveries))
		}
	case <-time.After(30 * time.Second):
		t.Fatal("crash detection deadlocked: heartbeat deadline never expired (float truncation regression)")
	}
}
