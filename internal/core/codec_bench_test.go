package core

import (
	"encoding/binary"
	"testing"
)

func BenchmarkFloat64CodecAppend(b *testing.B) {
	c := Float64Codec{}
	buf := make([]byte, 0, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = c.Append(buf[:0], 3.14159)
	}
}

func BenchmarkFloat64CodecRead(b *testing.B) {
	c := Float64Codec{}
	buf := c.Append(nil, 3.14159)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Read(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVecCodecRoundTrip(b *testing.B) {
	c := VecCodec{Dim: 8}
	v := make([]float64, 8)
	for i := range v {
		v[i] = float64(i) * 0.5
	}
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = c.Append(buf[:0], v)
		if _, _, err := c.Read(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecoveryRecordEncode(b *testing.B) {
	table := &replicaTable{
		nodes:    []int16{1, 2, 3},
		pos:      []int32{10, 20, 30},
		ftOnly:   []bool{false, false, true},
		mirrorOf: []int16{2},
	}
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = encodeRecoveryRecord(buf[:0], Float64Codec{}, roleMaster, 7, 42,
			flagMaster, -1, 3, 7, 5, 2, 3.14, true, 9, table, nil)
	}
}

func BenchmarkRecoveryRecordDecode(b *testing.B) {
	table := &replicaTable{
		nodes:    []int16{1, 2, 3},
		pos:      []int32{10, 20, 30},
		ftOnly:   []bool{false, false, true},
		mirrorOf: []int16{2},
	}
	buf := encodeRecoveryRecord(nil, Float64Codec{}, roleMaster, 7, 42,
		flagMaster, -1, 3, 7, 5, 2, 3.14, true, 9, table, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := &reader{buf: buf}
		rec := decodeRecoveryRecord(r, Float64Codec{})
		if r.err != nil || rec.id != 42 {
			b.Fatal("decode failed")
		}
	}
}

// The BenchmarkCodec* family covers the per-superstep wire formats (the CI
// bench-smoke step runs exactly this prefix).

// BenchmarkCodecSyncRecord encodes and decodes a batch of edge-cut sync
// records (pos + flags + value) — the dominant steady-state byte stream.
func BenchmarkCodecSyncRecord(b *testing.B) {
	const recs = 64
	c := Float64Codec{}
	buf := make([]byte, 0, recs*13)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		for p := 0; p < recs; p++ {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(p))
			buf = append(buf, byte(p&1))
			buf = c.Append(buf, float64(p)*0.25)
		}
		rest := buf
		for len(rest) > 0 {
			_ = binary.LittleEndian.Uint32(rest)
			_ = rest[4]
			var err error
			if _, rest, err = c.Read(rest[5:]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCodecActivationNotice encodes and decodes a batch of 4-byte
// activation notices (vertex-cut R1/R4 and replay traffic).
func BenchmarkCodecActivationNotice(b *testing.B) {
	const recs = 256
	buf := make([]byte, 0, recs*4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		for p := 0; p < recs; p++ {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(p))
		}
		var sum uint32
		for rest := buf; len(rest) >= 4; rest = rest[4:] {
			sum += binary.LittleEndian.Uint32(rest)
		}
		if sum == 1 {
			b.Fatal("impossible")
		}
	}
}
