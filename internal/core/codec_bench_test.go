package core

import "testing"

func BenchmarkFloat64CodecAppend(b *testing.B) {
	c := Float64Codec{}
	buf := make([]byte, 0, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = c.Append(buf[:0], 3.14159)
	}
}

func BenchmarkFloat64CodecRead(b *testing.B) {
	c := Float64Codec{}
	buf := c.Append(nil, 3.14159)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Read(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVecCodecRoundTrip(b *testing.B) {
	c := VecCodec{Dim: 8}
	v := make([]float64, 8)
	for i := range v {
		v[i] = float64(i) * 0.5
	}
	buf := make([]byte, 0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = c.Append(buf[:0], v)
		if _, _, err := c.Read(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecoveryRecordEncode(b *testing.B) {
	table := &replicaTable{
		nodes:    []int16{1, 2, 3},
		pos:      []int32{10, 20, 30},
		ftOnly:   []bool{false, false, true},
		mirrorOf: []int16{2},
	}
	buf := make([]byte, 0, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = encodeRecoveryRecord(buf[:0], Float64Codec{}, roleMaster, 7, 42,
			flagMaster, -1, 3, 7, 5, 2, 3.14, true, 9, table, nil)
	}
}

func BenchmarkRecoveryRecordDecode(b *testing.B) {
	table := &replicaTable{
		nodes:    []int16{1, 2, 3},
		pos:      []int32{10, 20, 30},
		ftOnly:   []bool{false, false, true},
		mirrorOf: []int16{2},
	}
	buf := encodeRecoveryRecord(nil, Float64Codec{}, roleMaster, 7, 42,
		flagMaster, -1, 3, 7, 5, 2, 3.14, true, 9, table, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := &reader{buf: buf}
		rec := decodeRecoveryRecord(r, Float64Codec{})
		if r.err != nil || rec.id != 42 {
			b.Fatal("decode failed")
		}
	}
}
