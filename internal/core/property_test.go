package core_test

import (
	"testing"
	"testing/quick"

	"imitator/internal/algorithms"
	"imitator/internal/core"
	"imitator/internal/datasets"
)

// TestRandomizedRecoveryEquivalence fuzzes the core claim: random graph,
// random cluster size, random failure schedule, random strategy — the
// answer must match the failure-free run.
func TestRandomizedRecoveryEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzing is slow")
	}
	f := func(seed uint64, rawNodes, rawIter, rawVictim, rawMode, rawRec uint8) bool {
		nodes := 3 + int(rawNodes%6) // 3..8
		iters := 6
		failIter := int(rawIter) % iters
		victim := 1 + int(rawVictim)%(nodes-1)
		mode := core.EdgeCutMode
		if rawMode%2 == 1 {
			mode = core.VertexCutMode
		}
		recovery := core.RecoverRebirth
		if rawRec%2 == 1 {
			recovery = core.RecoverMigration
		}
		phase := core.FailBeforeBarrier
		if rawRec%4 >= 2 {
			phase = core.FailAfterBarrier
		}

		g := datasets.Tiny(200+int(seed%200), 1200, seed)
		cfg := core.DefaultConfig(mode, nodes)
		cfg.MaxIter = iters
		cfg.Recovery = recovery
		cfg.MaxRebirths = nodes

		run := func(c core.Config) []float64 {
			cl, err := core.NewCluster[float64, float64](c, g, algorithms.NewSSSP(0))
			if err != nil {
				t.Logf("config rejected: %v", err)
				return nil
			}
			res, err := cl.Run()
			if err != nil {
				t.Logf("run failed (seed %d): %v", seed, err)
				return nil
			}
			return res.Values
		}
		want := run(cfg)
		if want == nil {
			return false
		}
		cfg.Failures = []core.FailureSpec{{Iteration: failIter, Phase: phase, Nodes: []int{victim}}}
		got := run(cfg)
		if got == nil {
			return false
		}
		for v := range want {
			if got[v] != want[v] {
				t.Logf("seed %d nodes %d iter %d victim %d mode %v rec %v phase %v: vertex %d %v != %v",
					seed, nodes, failIter, victim, mode, recovery, phase, v, got[v], want[v])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestMirrorFirstPlacementStillRecovers checks the ablation policy keeps
// correctness (it only changes placement, not the protocol).
func TestMirrorFirstPlacementStillRecovers(t *testing.T) {
	g := datasets.Tiny(400, 2400, 404)
	base := core.DefaultConfig(core.EdgeCutMode, 5)
	base.MaxIter = 6
	base.FT.MirrorPlacement = core.MirrorFirst
	base.Recovery = core.RecoverMigration

	run := func(cfg core.Config) []float64 {
		cl, err := core.NewCluster[float64, float64](cfg, g, algorithms.NewPageRank(g.NumVertices()))
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Values
	}
	want := run(base)
	withFail := base
	withFail.Failures = []core.FailureSpec{{Iteration: 3, Phase: core.FailBeforeBarrier, Nodes: []int{2}}}
	got := run(withFail)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d: %v != %v", v, got[v], want[v])
		}
	}
}
