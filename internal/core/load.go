package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"imitator/internal/graph"
	"imitator/internal/hostpar"
	"imitator/internal/partition"
)

// loadMinBlock is the smallest per-goroutine vertex block in the parallel
// load phases.
const loadMinBlock = 1 << 13

// vertexPresence records where one vertex's replicas live (master node
// excluded) and which of them exist only for fault tolerance.
type vertexPresence struct {
	nodes  []int16
	ftOnly []bool
	// mirrors lists indexes into nodes designating the K mirrors, in rank
	// order.
	mirrors []int16
}

// load partitions the graph, extends replication for fault tolerance (§4.1),
// selects mirrors (§4.2), builds every node's vertex array and topology,
// initializes values, and writes edge-ckpt files and checkpoint metadata.
func (c *Cluster[V, A]) load() error {
	numV := c.g.NumVertices()
	p := c.cfg.NumNodes

	// 1. Partition.
	c.masterLoc = make([]int16, numV)
	var err error
	switch c.cfg.Partitioner {
	case PartHash:
		c.ec, err = partition.HashEdgeCut(c.g, p)
	case PartFennel:
		fc := c.cfg.Fennel
		if fc.Gamma == 0 {
			fc = partition.DefaultFennelConfig()
		}
		c.ec, err = partition.FennelEdgeCut(c.g, p, fc)
	case PartLDG:
		c.ec, err = partition.LDGEdgeCut(c.g, p, partition.DefaultLDGConfig())
	case PartOblivious:
		c.vcut, err = partition.ObliviousVertexCut(c.g, p)
	case PartRandom:
		c.vcut, err = partition.RandomVertexCut(c.g, p)
	case PartGrid:
		c.vcut, err = partition.GridVertexCut(c.g, p)
	case PartHybrid:
		hc := c.cfg.Hybrid
		if hc.Threshold == 0 {
			hc = partition.DefaultHybridCutConfig()
		}
		c.vcut, err = partition.HybridVertexCut(c.g, p, hc)
	default:
		return fmt.Errorf("core: unknown partitioner %v", c.cfg.Partitioner)
	}
	if err != nil {
		return err
	}
	width := c.cfg.hostParallelism()
	hostpar.Blocks(numV, loadMinBlock, width, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if c.ec != nil {
				c.masterLoc[v] = int16(c.ec.Owner[v])
			} else {
				c.masterLoc[v] = int16(c.vcut.Master[v])
			}
		}
	})

	// 2. Computation-replica presence per vertex. Sharded over the vertex
	// that OWNS the presence list: every append below goes to pres[v] for a
	// v inside the worker's block, so blocks are write-disjoint. Per-vertex
	// append order differs from the sequential edge sweep, but sortByNode
	// canonicalizes the lists (hosts are deduplicated, hence unique), so the
	// post-sort presence tables are identical for any worker count.
	pres := make([]vertexPresence, numV)
	addPresence := func(v graph.VertexID, n int16) {
		if n == c.masterLoc[v] {
			return
		}
		pr := &pres[v]
		for _, have := range pr.nodes {
			if have == n {
				return
			}
		}
		pr.nodes = append(pr.nodes, n)
		pr.ftOnly = append(pr.ftOnly, false)
	}
	hostpar.Blocks(numV, loadMinBlock, width, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			vid := graph.VertexID(v)
			if c.ec != nil {
				// An out-edge replicates its source onto the node owning the
				// destination's master.
				c.g.OutEdges(vid, func(_ int, e graph.Edge) {
					addPresence(vid, int16(c.ec.Owner[e.Dst]))
				})
			} else {
				// Vertex-cut: both endpoints are present wherever the edge
				// lives.
				c.g.OutEdges(vid, func(i int, _ graph.Edge) {
					addPresence(vid, int16(c.vcut.EdgeOwner[i]))
				})
				c.g.InEdges(vid, func(i int, _ graph.Edge) {
					addPresence(vid, int16(c.vcut.EdgeOwner[i]))
				})
			}
		}
	})

	// 3. Fault-tolerant replicas (§4.1): guarantee >= K replicas per vertex,
	// placed greedily on the nodes with the fewest replicas so far.
	replicaLoad := make([]int, p)
	for v := range pres {
		for _, n := range pres[v].nodes {
			replicaLoad[n]++
		}
	}
	if c.cfg.FT.Enabled {
		for v := 0; v < numV; v++ {
			pr := &pres[v]
			for len(pr.nodes) < c.cfg.FT.K && len(pr.nodes) < p-1 {
				best := -1
				for n := 0; n < p; n++ {
					if int16(n) == c.masterLoc[v] || pr.has(int16(n)) {
						continue
					}
					if best < 0 || replicaLoad[n] < replicaLoad[best] {
						best = n
					}
				}
				if best < 0 {
					break
				}
				pr.nodes = append(pr.nodes, int16(best))
				pr.ftOnly = append(pr.ftOnly, true)
				replicaLoad[best]++
				c.extraReplicas++
				if c.g.IsSelfish(graph.VertexID(v)) {
					c.extraReplicasSelfish++
				}
			}
		}
	}
	for v := range pres {
		pres[v].sortByNode()
	}

	// 4. Mirror selection (§4.2): FT replicas are always mirrors; remaining
	// ranks go to the replica whose host has the fewest mirrors so far.
	if c.cfg.FT.Enabled {
		mirrorCount := make([]int, p)
		for v := 0; v < numV; v++ {
			pr := &pres[v]
			want := c.cfg.FT.K
			if want > len(pr.nodes) {
				want = len(pr.nodes)
			}
			chosen := make(map[int16]bool, want)
			for idx, ft := range pr.ftOnly {
				if len(pr.mirrors) >= want {
					break
				}
				if ft {
					pr.mirrors = append(pr.mirrors, int16(idx))
					chosen[int16(idx)] = true
					mirrorCount[pr.nodes[idx]]++
				}
			}
			for len(pr.mirrors) < want {
				best := int16(-1)
				for idx := range pr.nodes {
					if chosen[int16(idx)] {
						continue
					}
					if c.cfg.FT.MirrorPlacement == MirrorFirst {
						best = int16(idx) // naive: first free replica wins
						break
					}
					if best < 0 || mirrorCount[pr.nodes[idx]] < mirrorCount[pr.nodes[best]] {
						best = int16(idx)
					}
				}
				if best < 0 {
					break
				}
				pr.mirrors = append(pr.mirrors, best)
				chosen[best] = true
				mirrorCount[pr.nodes[best]]++
			}
		}
	}
	c.totalPresences = numV
	for v := range pres {
		c.totalPresences += len(pres[v].nodes)
	}

	// 5. Build per-node vertex arrays: masters first (ascending id), then
	// replicas (ascending id). Positions are the recovery addresses (§5.1.2).
	perNodeMasters := make([][]graph.VertexID, p)
	perNodeReplicas := make([][]graph.VertexID, p)
	for v := 0; v < numV; v++ {
		perNodeMasters[c.masterLoc[v]] = append(perNodeMasters[c.masterLoc[v]], graph.VertexID(v))
		for _, n := range pres[v].nodes {
			perNodeReplicas[n] = append(perNodeReplicas[n], graph.VertexID(v))
		}
	}
	c.nodes = make([]*node[V, A], p)
	hostpar.For(p, width, func(n int) {
		nd := &node[V, A]{
			id:    n,
			alive: true,
			met:   &c.met.Nodes[n],
			index: make(map[graph.VertexID]int32, len(perNodeMasters[n])+len(perNodeReplicas[n])),
		}
		nd.entries = make([]vertexEntry[V], 0, len(perNodeMasters[n])+len(perNodeReplicas[n]))
		appendEntry := func(v graph.VertexID, master bool) {
			e := vertexEntry[V]{
				id:         v,
				masterNode: c.masterLoc[v],
				inDeg:      int32(c.g.InDegree(v)),
				outDeg:     int32(c.g.OutDegree(v)),
			}
			if master {
				e.flags |= flagMaster
			}
			if c.g.IsSelfish(v) {
				e.flags |= flagSelfish
			}
			nd.index[v] = int32(len(nd.entries))
			nd.entries = append(nd.entries, e)
		}
		for _, v := range perNodeMasters[n] {
			appendEntry(v, true)
		}
		for _, v := range perNodeReplicas[n] {
			appendEntry(v, false)
		}
		c.nodes[n] = nd
	})
	for _, nd := range c.nodes {
		// initNodeScratch touches cluster-wide state (aliveDirty), so it
		// stays outside the parallel section.
		c.initNodeScratch(nd)
	}

	// 6. Fill master positions and replica metadata. Sharded by vertex:
	// every write lands in vertex v's own entries (master plus replicas),
	// which are disjoint across vertices; the index maps are read-only from
	// here on.
	hostpar.Blocks(numV, loadMinBlock, width, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			vid := graph.VertexID(v)
			mn := c.masterLoc[v]
			mpos := c.nodes[mn].index[vid]
			me := &c.nodes[mn].entries[mpos]
			me.masterPos = mpos
			pr := &pres[v]
			me.replicaNodes = pr.nodes
			me.replicaFTOnly = pr.ftOnly
			me.mirrorOf = pr.mirrors
			me.replicaPos = make([]int32, len(pr.nodes))
			for i, rn := range pr.nodes {
				rpos := c.nodes[rn].index[vid]
				me.replicaPos[i] = rpos
				re := &c.nodes[rn].entries[rpos]
				re.masterPos = mpos
				if pr.ftOnly[i] {
					re.flags |= flagFTOnly
				}
			}
			for rank, idx := range pr.mirrors {
				rn := pr.nodes[idx]
				re := &c.nodes[rn].entries[me.replicaPos[idx]]
				re.flags |= flagMirror
				re.mirrorRank = int16(rank)
				c.fillMirrorState(re, me, vid)
			}
		}
	})

	// 7. Local topology. A stable counting sort groups the canonical edge
	// indexes by owning node, then each node attaches its own group — in
	// ascending canonical order, i.e. exactly the order the sequential sweep
	// used, so the inNbr/inWt append order (and therefore every downstream
	// floating-point reduction) is bit-identical. Writes stay inside the
	// owning node's entries.
	{
		m := c.g.NumEdges()
		ownerOf := func(i int, e graph.Edge) int32 {
			if c.ec != nil {
				return c.ec.Owner[e.Dst]
			}
			return c.vcut.EdgeOwner[i]
		}
		nodeOff := make([]int32, p+1)
		c.g.EachEdge(func(i int, e graph.Edge) {
			nodeOff[ownerOf(i, e)+1]++
		})
		for n := 0; n < p; n++ {
			nodeOff[n+1] += nodeOff[n]
		}
		byNode := make([]int32, m)
		cursor := make([]int32, p)
		copy(cursor, nodeOff[:p])
		c.g.EachEdge(func(i int, e graph.Edge) {
			o := ownerOf(i, e)
			byNode[cursor[o]] = int32(i)
			cursor[o]++
		})
		hostpar.For(p, width, func(n int) {
			nd := c.nodes[n]
			for _, ei := range byNode[nodeOff[n]:nodeOff[n+1]] {
				e := c.g.Edge(int(ei))
				wpos := nd.index[e.Dst]
				upos := nd.index[e.Src]
				we := &nd.entries[wpos]
				we.inNbr = append(we.inNbr, upos)
				we.inWt = append(we.inWt, e.Weight)
				nd.entries[upos].outNbr = append(nd.entries[upos].outNbr, wpos)
				nd.localEdges++
			}
		})
	}

	// 8. Initial values and activity (per-node entries are write-disjoint;
	// Program.Init is pure by the determinism rules).
	always := c.prog.AlwaysActive()
	hostpar.For(p, width, func(n int) {
		nd := c.nodes[n]
		for i := range nd.entries {
			e := &nd.entries[i]
			val, act := c.prog.Init(e.id, e.info())
			e.value = val
			e.active = act || always
			e.lastActivateIter = -1
			e.lastTouchedIter = -1 // untouched; epoch-0 snapshot is full anyway
		}
	})

	// 9. Edge-ckpt files for vertex-cut (§4.3): each node's local edges are
	// partitioned into per-recovery-node files on the DFS, keyed by the
	// node hosting the target's master (or its first mirror when the master
	// is local). Overlapped with loading in the paper; we account the cost
	// into loadSeconds.
	if c.vcut != nil && c.cfg.FT.Enabled {
		c.writeEdgeCkpts()
	}

	// 10. Strategy persistence setup: metadata snapshots + pristine
	// retention, the epoch-0 data snapshot (checkpointing), the log runtime
	// (logged recovery).
	c.strat.onLoad()

	// 11. Memory accounting.
	c.refreshMemoryMetrics()
	c.coord.Set("iter", 0)
	for _, nd := range c.nodes {
		c.coord.Set(fmt.Sprintf("arraylen/%d", nd.id), int64(len(nd.entries)))
	}
	return nil
}

func (pr *vertexPresence) has(n int16) bool {
	for _, have := range pr.nodes {
		if have == n {
			return true
		}
	}
	return false
}

// sortByNode orders the presence table by host node, keeping the parallel
// slices aligned; mirrors are selected afterwards, so only nodes/ftOnly
// need reordering.
func (pr *vertexPresence) sortByNode() {
	idx := make([]int, len(pr.nodes))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return pr.nodes[idx[a]] < pr.nodes[idx[b]] })
	nodes := make([]int16, len(idx))
	ft := make([]bool, len(idx))
	for i, j := range idx {
		nodes[i] = pr.nodes[j]
		ft[i] = pr.ftOnly[j]
	}
	pr.nodes = nodes
	pr.ftOnly = ft
}

// fillMirrorState copies the master's full state into a mirror entry:
// replica location table, mirror ranks and — for edge-cut — the master's
// in-edges by global id with each source's master node (§4.2, §4.3).
func (c *Cluster[V, A]) fillMirrorState(re *vertexEntry[V], me *vertexEntry[V], vid graph.VertexID) {
	re.mReplicaN = append([]int16(nil), me.replicaNodes...)
	re.mReplicaP = append([]int32(nil), me.replicaPos...)
	re.mReplicaFT = append([]bool(nil), me.replicaFTOnly...)
	re.mMirrorOf = append([]int16(nil), me.mirrorOf...)
	if c.ec != nil {
		c.g.InEdges(vid, func(_ int, e graph.Edge) {
			re.mInSrc = append(re.mInSrc, e.Src)
			re.mInWt = append(re.mInWt, e.Weight)
			re.mInSrcMaster = append(re.mInSrcMaster, c.masterLoc[e.Src])
		})
	}
}

// writeEdgeCkpts stores each node's local edges into per-recovery-node DFS
// files.
func (c *Cluster[V, A]) writeEdgeCkpts() {
	for _, nd := range c.nodes {
		bufs := make([][]byte, c.cfg.NumNodes)
		for i := range nd.entries {
			e := &nd.entries[i]
			for k, src := range e.inNbr {
				srcID := nd.entries[src].id
				target := c.edgeCkptTarget(e.id, nd.id)
				bufs[target] = binary.LittleEndian.AppendUint32(bufs[target], uint32(srcID))
				bufs[target] = binary.LittleEndian.AppendUint32(bufs[target], uint32(e.id))
				bufs[target] = binary.LittleEndian.AppendUint64(bufs[target], math.Float64bits(e.inWt[k]))
			}
		}
		for k, buf := range bufs {
			if len(buf) > 0 {
				c.loadSeconds += c.dfsWriteCost(nd, edgeCkptPath(nd.id, k), buf)
			}
		}
	}
}

// edgeCkptTarget picks the recovery node for an edge targeting vertex dst
// stored on node `on`: the master-hosting node, or the first mirror's node
// when the master is local.
func (c *Cluster[V, A]) edgeCkptTarget(dst graph.VertexID, on int) int {
	mn := int(c.masterLoc[dst])
	if mn != on {
		return mn
	}
	me := c.nodes[mn].entry(dst)
	if me != nil && len(me.mirrorOf) > 0 {
		return int(me.replicaNodes[me.mirrorOf[0]])
	}
	return (on + 1) % c.cfg.NumNodes
}

func edgeCkptPath(owner, target int) string {
	return fmt.Sprintf("edgeckpt/%d/%d", owner, target)
}

// dfsWriteCost writes and returns simulated seconds, tracking metrics.
func (c *Cluster[V, A]) dfsWriteCost(nd *node[V, A], path string, data []byte) float64 {
	cost := c.dfs.Write(nd.id, path, data)
	nd.met.DFSWriteBytes += int64(len(data))
	return cost
}

// encodeMetadataSnapshot serializes a node's immutable graph topology: the
// entry table (ids, flags, degrees) and local in-edges. Checkpoint recovery
// reloads this to rebuild a crashed node.
func (c *Cluster[V, A]) encodeMetadataSnapshot(nd *node[V, A]) []byte {
	buf := binary.LittleEndian.AppendUint32(nil, uint32(len(nd.entries)))
	for i := range nd.entries {
		e := &nd.entries[i]
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.id))
		buf = append(buf, byte(e.flags))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.inDeg))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.outDeg))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.inNbr)))
		for k, p := range e.inNbr {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(p))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.inWt[k]))
		}
	}
	return buf
}

// refreshMemoryMetrics recomputes the byte-exact per-node footprint.
func (c *Cluster[V, A]) refreshMemoryMetrics() {
	for _, nd := range c.nodes {
		if nd == nil {
			continue
		}
		var total int64
		for i := range nd.entries {
			e := &nd.entries[i]
			total += e.memoryBytes(c.vc.Size(e.value))
		}
		nd.met.MemoryBytes = total
	}
}
