package core

import (
	"bytes"
	"testing"
	"testing/quick"

	"imitator/internal/bufpool"
	"imitator/internal/metrics"
)

// TestChunkBoundsProperty checks the chunking invariants with testing/quick:
// chunks tile [0, n) exactly (no gap, no overlap, in order), there are at
// most min(p, n) of them, and sizes differ by at most one.
func TestChunkBoundsProperty(t *testing.T) {
	prop := func(n16 uint16, p8 int8) bool {
		n, p := int(n16)%5000, int(p8)
		bounds := chunkBounds(n, p)
		if n == 0 {
			return len(bounds) == 0
		}
		want := p
		if want < 1 {
			want = 1
		}
		if want > n {
			want = n
		}
		if len(bounds) != want {
			return false
		}
		next, minSz, maxSz := 0, n, 0
		for _, b := range bounds {
			if b[0] != next || b[1] <= b[0] {
				return false
			}
			sz := b[1] - b[0]
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
			next = b[1]
		}
		return next == n && maxSz-minSz <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestChunkedReductionProperty is the determinism argument in miniature:
// for any entry count, worker count and per-entry destination assignment,
// running the staged encoding through the pool and merging in chunk order
// yields exactly the bytes (and metric sums) the sequential loop produces.
func TestChunkedReductionProperty(t *testing.T) {
	const numDst = 4
	const maxWorkers = 8
	c := &Cluster[int32, int32]{met: metrics.NewCluster(1), pool: bufpool.New()}
	prop := func(payload []byte, p8 uint8) bool {
		n := len(payload)
		c.cfg.WorkersPerNode = int(p8)%maxWorkers + 1

		// Sequential reference: entry i emits one record to dst i%numDst.
		want := make([][]byte, numDst)
		var wantMsgs int64
		for i := 0; i < n; i++ {
			dst := i % numDst
			want[dst] = append(want[dst], byte(i), payload[i])
			wantMsgs++
		}

		nd := &node[int32, int32]{
			id:        0,
			met:       &c.met.Nodes[0],
			sendBuf:   make([][]byte, numDst),
			noticeBuf: make([][]byte, numDst),
			stagers:   make([]*stager, maxWorkers),
		}
		for w := range nd.stagers {
			nd.stagers[w] = &stager{
				pool:   c.pool,
				send:   make([][]byte, numDst),
				notice: make([][]byte, numDst),
			}
		}
		before := nd.met.SyncMsgs
		c.chunked(nd, n, func(st *stager, lo, hi int) {
			for i := lo; i < hi; i++ {
				dst := i % numDst
				st.stage(dst, func(buf []byte) []byte {
					return append(buf, byte(i), payload[i])
				})
				st.met.SyncMsgs++
			}
		})
		for dst := 0; dst < numDst; dst++ {
			if !bytes.Equal(nd.sendBuf[dst], want[dst]) {
				return false
			}
		}
		return nd.met.SyncMsgs-before == wantMsgs
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
