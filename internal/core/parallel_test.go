package core

import (
	"bytes"
	"testing"
	"testing/quick"

	"imitator/internal/bufpool"
	"imitator/internal/metrics"
)

// TestChunkBoundsProperty checks the chunking invariants with testing/quick:
// chunks tile [0, n) exactly (no gap, no overlap, in order), there are at
// most min(p, n) of them, and sizes differ by at most one.
func TestChunkBoundsProperty(t *testing.T) {
	prop := func(n16 uint16, p8 int8) bool {
		n, p := int(n16)%5000, int(p8)
		bounds := chunkBounds(n, p)
		if n == 0 {
			return len(bounds) == 0
		}
		want := p
		if want < 1 {
			want = 1
		}
		if want > n {
			want = n
		}
		if len(bounds) != want {
			return false
		}
		next, minSz, maxSz := 0, n, 0
		for _, b := range bounds {
			if b[0] != next || b[1] <= b[0] {
				return false
			}
			sz := b[1] - b[0]
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
			next = b[1]
		}
		return next == n && maxSz-minSz <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestChunkBoundsEdgeCases pins the explicit boundary behaviors the
// property test covers only probabilistically.
func TestChunkBoundsEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		n, p int
		want [][2]int
	}{
		{"empty", 0, 4, nil},
		{"empty one worker", 0, 1, nil},
		{"fewer items than workers", 3, 8, [][2]int{{0, 1}, {1, 2}, {2, 3}}},
		{"one worker", 5, 1, [][2]int{{0, 5}}},
		{"zero workers clamps to one", 5, 0, [][2]int{{0, 5}}},
		{"negative workers clamps to one", 5, -3, [][2]int{{0, 5}}},
		{"single item", 1, 4, [][2]int{{0, 1}}},
		{"remainder spread", 7, 3, [][2]int{{0, 3}, {3, 5}, {5, 7}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := chunkBounds(tc.n, tc.p)
			if len(got) != len(tc.want) {
				t.Fatalf("chunkBounds(%d, %d) = %v, want %v", tc.n, tc.p, got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("chunkBounds(%d, %d) = %v, want %v", tc.n, tc.p, got, tc.want)
				}
			}
		})
	}
	// appendChunkBounds reuses the destination slice without reallocating
	// when capacity suffices.
	scratch := make([][2]int, 0, 8)
	out := appendChunkBounds(scratch, 10, 4)
	if len(out) != 4 || &out[0] != &scratch[:1][0] {
		t.Fatalf("appendChunkBounds did not reuse the scratch slice")
	}
}

// TestRunChunksSlotInvariance checks that the slot cap is pure host
// scheduling: every chunk runs exactly once with its own index for any
// chunkSlots setting, including slots > chunks and slots = 0.
func TestRunChunksSlotInvariance(t *testing.T) {
	for _, slots := range []int{0, 1, 2, 3, 8, 64} {
		for _, k := range []int{0, 1, 2, 7, 32} {
			c := &Cluster[int32, int32]{chunkSlots: slots}
			ran := make([]int32, k)
			c.runChunks(k, func(w int) { ran[w]++ })
			for w, cnt := range ran {
				if cnt != 1 {
					t.Fatalf("slots=%d k=%d: chunk %d ran %d times", slots, k, w, cnt)
				}
			}
		}
	}
}

// TestChunkedReductionProperty is the determinism argument in miniature:
// for any entry count, worker count and per-entry destination assignment,
// running the staged encoding through the pool and merging in chunk order
// yields exactly the bytes (and metric sums) the sequential loop produces.
func TestChunkedReductionProperty(t *testing.T) {
	const numDst = 4
	const maxWorkers = 8
	c := &Cluster[int32, int32]{met: metrics.NewCluster(1), pool: bufpool.New()}
	prop := func(payload []byte, p8 uint8) bool {
		n := len(payload)
		c.cfg.WorkersPerNode = int(p8)%maxWorkers + 1
		// Vary the host slot cap independently of the chunk count: the
		// merged output must not depend on it.
		c.chunkSlots = int(p8)/maxWorkers%4 + 1

		// Sequential reference: entry i emits one record to dst i%numDst.
		want := make([][]byte, numDst)
		var wantMsgs int64
		for i := 0; i < n; i++ {
			dst := i % numDst
			want[dst] = append(want[dst], byte(i), payload[i])
			wantMsgs++
		}

		nd := &node[int32, int32]{
			id:        0,
			met:       &c.met.Nodes[0],
			sendBuf:   make([][]byte, numDst),
			noticeBuf: make([][]byte, numDst),
			stagers:   make([]*stager, maxWorkers),
		}
		for w := range nd.stagers {
			nd.stagers[w] = &stager{
				pool:   c.pool,
				send:   make([][]byte, numDst),
				notice: make([][]byte, numDst),
			}
		}
		before := nd.met.SyncMsgs
		c.chunked(nd, n, func(st *stager, lo, hi int) {
			for i := lo; i < hi; i++ {
				dst := i % numDst
				st.stage(dst, func(buf []byte) []byte {
					return append(buf, byte(i), payload[i])
				})
				st.met.SyncMsgs++
			}
		})
		for dst := 0; dst < numDst; dst++ {
			if !bytes.Equal(nd.sendBuf[dst], want[dst]) {
				return false
			}
		}
		return nd.met.SyncMsgs-before == wantMsgs
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
