package core

import (
	"fmt"
	"sort"

	"imitator/internal/costmodel"
	"imitator/internal/graph"
	"imitator/internal/netsim"
)

// recoverMigration scatters the crashed nodes' workload over the survivors
// (§5.2): surviving mirrors are promoted to masters, surviving replicas
// learn the new master locations, missing neighbor replicas are created
// cooperatively, vertex-cut edges are reloaded from edge-ckpt files, the
// fault-tolerance invariants (K replicas, K mirrors) are re-established,
// and finally the activation states of the promoted masters are replayed.
func (c *Cluster[V, A]) recoverMigration(failed []int, iter int) ([]int, error) {
	failedSet := make(map[int]bool, len(failed))
	for _, f := range failed {
		failedSet[f] = true
	}
	rec := RecoveryReport{Kind: "migration", Iteration: iter, Failed: append([]int(nil), failed...)}
	start := c.clock.Now()
	msgs0, bytes0 := c.met.RecoveryTraffic()

	// --- Phase 1: promotion (Reloading §5.2.1). Each surviving node scans
	// its mirrors; the lowest surviving mirror of each lost master promotes
	// itself. Scans run in parallel; promotions apply deterministically.
	promoLists := make([][]int32, c.cfg.NumNodes)
	c.eachAlive(func(nd *node[V, A]) {
		// Chunk-parallel scan: each chunk flags its own slots; the ordered
		// list is collected serially so promotion order is chunk-independent.
		promo := make([]bool, len(nd.entries))
		c.chunked(nd, len(nd.entries), func(_ *stager, lo, hi int) {
			for i := lo; i < hi; i++ {
				e := &nd.entries[i]
				if e.isMirror() && failedSet[int(e.masterNode)] &&
					c.lowestSurvivingMirror(e, failedSet) == nd.id {
					promo[i] = true
				}
			}
		})
		var list []int32
		for i, p := range promo {
			if p {
				list = append(list, int32(i))
			}
		}
		promoLists[nd.id] = list
	})
	// promoted[(node)][pos] marks the masters this pass must finish setting
	// up (move notices, edge attach, FT repair, activation replay). It holds
	// this attempt's promotions plus any from an interrupted earlier attempt
	// of the same incident (c.migPromoted); newly tracks only the former,
	// whose replica tables were just rebuilt against the current failed set.
	if c.migPromoted == nil {
		c.migPromoted = make(map[masterKey]bool)
	}
	// restart marks a re-attempt after a failure interrupted this incident's
	// earlier migration pass; some invariants (mirror tables mirroring the
	// master's, every replica known to its master) may then be broken and
	// need the reconciliation round below.
	restart := len(c.migPromoted) > 0
	promoted := make(map[int16]map[int32]bool)
	newly := make(map[masterKey]bool)
	markPromoted := func(n int16, pos int32) {
		if promoted[n] == nil {
			promoted[n] = make(map[int32]bool)
		}
		promoted[n][pos] = true
		c.migPromoted[masterKey{n, pos}] = true
	}
	// tableChanged tracks masters whose replica tables mutate during this
	// recovery; their mirrors get refreshed full state at the end.
	tableChanged := make(map[masterKey]bool)

	for n := range promoLists {
		nd := c.nodes[n]
		for _, pos := range promoLists[n] {
			e := &nd.entries[pos]
			e.flags |= flagMaster
			e.flags &^= flagMirror | flagFTOnly
			e.masterNode = int16(nd.id)
			e.masterPos = pos
			// Build the new replica table from the mirror's copy, dropping
			// failed hosts and this node itself.
			var rn []int16
			var rp []int32
			var rf []bool
			for idx, host := range e.mReplicaN {
				if failedSet[int(host)] || int(host) == nd.id {
					continue
				}
				rn = append(rn, host)
				rp = append(rp, e.mReplicaP[idx])
				rf = append(rf, e.mReplicaFT[idx])
			}
			e.replicaNodes = rn
			e.replicaPos = rp
			e.replicaFTOnly = rf
			e.mirrorOf = nil
			e.mReplicaN, e.mReplicaP, e.mReplicaFT, e.mMirrorOf = nil, nil, nil, nil
			c.masterLoc[e.id] = int16(nd.id)
			markPromoted(int16(nd.id), pos)
			newly[masterKey{int16(nd.id), pos}] = true
			tableChanged[masterKey{int16(nd.id), pos}] = true
			rec.RecoveredVertices++
		}
	}
	// Adopt surviving promotions from an interrupted earlier attempt: they
	// are masters already (skipped by the scan above) but their remaining
	// setup must re-run, and their tables must be re-checked against the
	// enlarged failed set.
	for k := range c.migPromoted { //imitator:nondet-ok merged into maps whose consumers sort
		if nd := c.nodes[k.node]; nd != nil && nd.alive {
			markPromoted(k.node, k.pos)
			tableChanged[k] = true
		}
	}
	// Unrecoverable check: every vertex must have a live master now.
	for v, mn := range c.masterLoc {
		if failedSet[int(mn)] {
			return nil, fmt.Errorf("%w: vertex %d lost master and all mirrors", ErrTooManyFailures, v)
		}
	}
	// Surviving masters drop lost replicas from their tables.
	for _, nd := range c.aliveNodes() {
		for i := range nd.entries {
			e := &nd.entries[i]
			if !e.isMaster() || newly[masterKey{int16(nd.id), int32(i)}] {
				continue
			}
			changed := false
			var rn []int16
			var rp []int32
			var rf []bool
			keptIdx := make(map[int16]int16) // old index -> new index
			for idx, host := range e.replicaNodes {
				if failedSet[int(host)] {
					changed = true
					continue
				}
				keptIdx[int16(idx)] = int16(len(rn))
				rn = append(rn, host)
				rp = append(rp, e.replicaPos[idx])
				rf = append(rf, e.replicaFTOnly[idx])
			}
			if !changed {
				continue
			}
			var mo []int16
			for _, idx := range e.mirrorOf {
				if ni, ok := keptIdx[idx]; ok {
					mo = append(mo, ni)
				}
			}
			e.replicaNodes, e.replicaPos, e.replicaFTOnly, e.mirrorOf = rn, rp, rf, mo
			tableChanged[masterKey{int16(nd.id), int32(i)}] = true
		}
	}
	c.hook("migration:promote")

	// --- Phase 2: move notices. Promoted masters tell their surviving
	// replicas where the master now lives.
	c.eachAlive(func(nd *node[V, A]) {
		for _, pos := range sortedPositions(promoted[int16(nd.id)]) {
			e := &nd.entries[pos]
			for ri, host := range e.replicaNodes {
				rpos := e.replicaPos[ri]
				mpos := pos
				before := len(nd.sendBuf[host])
				nd.stage(int(host), func(buf []byte) []byte {
					buf = putI32(buf, rpos)
					buf = putI16(buf, int16(nd.id))
					return putI32(buf, mpos)
				})
				nd.met.RecoveryMsgs++
				nd.met.RecoveryBytes += int64(len(nd.sendBuf[host]) - before)
			}
		}
	})
	c.flushSendRound(netsim.KindRecovery)
	c.eachAlive(func(nd *node[V, A]) {
		msgs := c.net.Receive(nd.id)
		for _, m := range msgs {
			r := &reader{buf: m.Payload}
			for r.remaining() > 0 && r.err == nil {
				pos := r.i32()
				mn := r.i16()
				mp := r.i32()
				if r.err != nil {
					break
				}
				e := &nd.entries[pos]
				e.masterNode = mn
				e.masterPos = mp
			}
		}
		c.recycleMsgs(msgs)
	})
	// Reconciliation (restart attempts only). A replica whose master died
	// mid-incident can be missing from the re-promoted master's adopted
	// table: it registered with the old master after the mirror copies were
	// last refreshed, so no move notice reaches it. Such orphans still point
	// at a failed master here; they look up the promoted master through the
	// membership map and register themselves, and the master replies with
	// its position (deduplicating replicas it already knows). A first
	// attempt has no orphans — mirror tables are authoritative — so the
	// extra rounds are empty and cost nothing.
	if restart {
		c.eachAlive(func(nd *node[V, A]) {
			for i := range nd.entries {
				e := &nd.entries[i]
				if e.isMaster() || !failedSet[int(e.masterNode)] {
					continue
				}
				mn := int(c.masterLoc[e.id])
				if mn == nd.id || failedSet[mn] {
					continue
				}
				// Stale mirror state is dropped; the new master re-selects
				// its mirrors during invariant repair.
				e.flags &^= flagMirror
				e.mReplicaN, e.mReplicaP, e.mReplicaFT, e.mMirrorOf = nil, nil, nil, nil
				e.masterNode = int16(mn)
				vid := e.id
				rpos := int32(i)
				ft := e.isFTOnly()
				before := len(nd.sendBuf[mn])
				nd.stage(mn, func(buf []byte) []byte {
					buf = putU32(buf, uint32(vid))
					buf = putI32(buf, rpos)
					return putBool(buf, ft)
				})
				nd.met.RecoveryMsgs++
				nd.met.RecoveryBytes += int64(len(nd.sendBuf[mn]) - before)
			}
		})
		c.flushSendRound(netsim.KindRecovery)
		adoptedPerNode := make([][]masterKey, c.cfg.NumNodes)
		c.eachAlive(func(nd *node[V, A]) {
			msgs := c.net.Receive(nd.id)
			for _, m := range msgs {
				r := &reader{buf: m.Payload}
				for r.remaining() > 0 && r.err == nil {
					vid := graph.VertexID(r.u32())
					rpos := r.i32()
					ft := r.bool()
					if r.err != nil {
						break
					}
					mp, ok := nd.pos(vid)
					if !ok {
						continue
					}
					e := &nd.entries[mp]
					known := false
					for idx, host := range e.replicaNodes {
						if int(host) == m.From && e.replicaPos[idx] == rpos {
							known = true
							break
						}
					}
					if !known {
						e.replicaNodes = append(e.replicaNodes, int16(m.From))
						e.replicaPos = append(e.replicaPos, rpos)
						e.replicaFTOnly = append(e.replicaFTOnly, ft)
						adoptedPerNode[nd.id] = append(adoptedPerNode[nd.id], masterKey{int16(nd.id), int32(mp)})
					}
					mpos := int32(mp)
					nd.stageNotice(m.From, func(buf []byte) []byte {
						buf = putI32(buf, rpos)
						return putI32(buf, mpos)
					})
					nd.met.RecoveryMsgs++
					nd.met.RecoveryBytes += 8
				}
			}
			c.recycleMsgs(msgs)
		})
		for _, keys := range adoptedPerNode {
			for _, k := range keys {
				tableChanged[k] = true
			}
		}
		c.flushNoticeRound()
		c.eachAlive(func(nd *node[V, A]) {
			msgs := c.net.Receive(nd.id)
			for _, m := range msgs {
				r := &reader{buf: m.Payload}
				for r.remaining() > 0 && r.err == nil {
					rpos := r.i32()
					mpos := r.i32()
					if r.err != nil {
						break
					}
					e := &nd.entries[rpos]
					e.masterNode = int16(m.From)
					e.masterPos = mpos
				}
			}
			c.recycleMsgs(msgs)
		})
	}
	if state := c.barrier(); state.IsFail() {
		return state.Failed, nil
	}
	rec.ReloadSeconds = c.clock.Now() - start
	c.hook("migration:moved")

	// --- Phase 3: gather migrated edges and the vertex ids each node now
	// needs locally.
	reconStart := c.clock.Now()
	type migEdge struct {
		src, dst graph.VertexID
		wt       float64
	}
	migEdges := make([][]migEdge, c.cfg.NumNodes)
	// readPaths[n] lists the edge-ckpt files node n read this attempt; they
	// are marked done (c.migFilesDone) only once n attaches their edges, so
	// a restart re-reads exactly the files whose reader died in between.
	readPaths := make([][]string, c.cfg.NumNodes)
	needs := make([]map[graph.VertexID]bool, c.cfg.NumNodes)
	for n := range needs {
		needs[n] = make(map[graph.VertexID]bool)
	}
	if c.migFilesDone == nil {
		c.migFilesDone = make(map[string]bool)
	}
	if c.vcut != nil {
		// Each survivor reads its own file of every failed node; files
		// addressed to other failed nodes are reassigned round-robin.
		alive := c.coord.AliveNodes()
		orphanIdx := 0
		var span costmodel.Span
		for _, f := range failed {
			for _, path := range c.dfs.List(fmt.Sprintf("edgeckpt/%d/", f)) {
				if c.migFilesDone[path] {
					// Attached by an interrupted earlier attempt; the edges
					// live on a survivor (and in its own edge-ckpt files).
					continue
				}
				var owner, target int
				if _, err := fmt.Sscanf(path, "edgeckpt/%d/%d", &owner, &target); err != nil {
					return nil, fmt.Errorf("core: bad edge-ckpt path %q: %w", path, err)
				}
				// Files addressed to a dead node (this failure or any
				// earlier one) are reassigned round-robin over survivors.
				readerNode := target
				if failedSet[target] || c.nodes[target] == nil || !c.nodes[target].alive {
					readerNode = alive[orphanIdx%len(alive)]
					orphanIdx++
				}
				data, cost, err := c.dfs.Read(readerNode, path)
				if err != nil {
					return nil, err
				}
				c.met.Nodes[readerNode].DFSReadBytes += int64(len(data))
				span.Observe(cost)
				r := &reader{buf: data}
				for r.remaining() > 0 && r.err == nil {
					src := graph.VertexID(r.u32())
					dst := graph.VertexID(r.u32())
					wt := r.f64()
					if r.err != nil {
						break
					}
					migEdges[readerNode] = append(migEdges[readerNode], migEdge{src, dst, wt})
				}
				if r.err != nil {
					return nil, r.err
				}
				readPaths[readerNode] = append(readPaths[readerNode], path)
			}
		}
		c.clock.Advance(span.Max())
		for n, edges := range migEdges {
			nd := c.nodes[n]
			if nd == nil || !nd.alive {
				continue
			}
			for _, e := range edges {
				if _, ok := nd.pos(e.src); !ok {
					needs[n][e.src] = true
				}
				if _, ok := nd.pos(e.dst); !ok {
					needs[n][e.dst] = true
				}
			}
		}
	} else {
		// Edge-cut: promoted masters carry their in-edge lists; sources
		// missing locally need replicas (paper Fig 6's "Replica 6").
		// (Promotions adopted from an interrupted attempt that already
		// attached their edges have a nil mInSrc and contribute nothing.)
		for _, nd := range c.aliveNodes() {
			for _, pos := range sortedPositions(promoted[int16(nd.id)]) {
				e := &nd.entries[pos]
				for _, src := range e.mInSrc {
					if _, ok := nd.pos(src); !ok {
						needs[nd.id][src] = true
					}
				}
			}
		}
	}
	c.hook("migration:edges")

	// --- Phase 4: cooperative replica creation: request -> reply ->
	// register (three rounds).
	c.eachAlive(func(nd *node[V, A]) {
		ids := make([]graph.VertexID, 0, len(needs[nd.id]))
		for id := range needs[nd.id] { //imitator:nondet-ok collected set is sorted before use
			ids = append(ids, id)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		c.chunked(nd, len(ids), func(st *stager, lo, hi int) {
			for _, id := range ids[lo:hi] {
				mn := int(c.masterLoc[id])
				vid := id
				before := len(st.send[mn])
				st.stage(mn, func(buf []byte) []byte {
					return putU32(buf, uint32(vid))
				})
				st.met.RecoveryMsgs++
				st.met.RecoveryBytes += int64(len(st.send[mn]) - before)
			}
		})
	})
	c.flushSendRound(netsim.KindRecovery)
	// Replies encode in parallel across request messages (one per requester,
	// so per-destination reply streams never interleave within a chunk merge).
	c.eachAlive(func(nd *node[V, A]) {
		msgs := c.net.Receive(nd.id)
		c.chunked(nd, len(msgs), func(st *stager, lo, hi int) {
			for _, m := range msgs[lo:hi] {
				r := &reader{buf: m.Payload}
				for r.remaining() >= 4 && r.err == nil {
					id := graph.VertexID(r.u32())
					pos, ok := nd.pos(id)
					if !ok {
						continue
					}
					e := &nd.entries[pos]
					flags := entryFlags(0)
					if e.isSelfish() {
						flags |= flagSelfish
					}
					before := len(st.send[m.From])
					st.send[m.From] = encodeRecoveryRecord(st.send[m.From], c.vc, roleReplica,
						-1, id, flags, -1, int16(nd.id), pos, e.inDeg, e.outDeg,
						e.value, e.lastActivate, e.lastActivateIter, nil, nil)
					st.met.RecoveryMsgs++
					st.met.RecoveryBytes += int64(len(st.send[m.From]) - before)
				}
			}
		})
		c.recycleMsgs(msgs)
	})
	c.flushSendRound(netsim.KindRecovery)
	createdPerNode := make([]int, c.cfg.NumNodes)
	c.eachAlive(func(nd *node[V, A]) {
		msgs := c.net.Receive(nd.id)
		for _, m := range msgs {
			r := &reader{buf: m.Payload}
			for r.remaining() > 0 && r.err == nil {
				recRec := decodeRecoveryRecord(r, c.vc)
				if r.err != nil {
					break
				}
				newPos := int32(len(nd.entries))
				nd.entries = append(nd.entries, vertexEntry[V]{
					id:               recRec.id,
					flags:            recRec.flags,
					masterNode:       recRec.masterNode,
					masterPos:        recRec.masterPos,
					inDeg:            recRec.inDeg,
					outDeg:           recRec.outDeg,
					value:            recRec.value,
					lastActivate:     recRec.lastActivate,
					lastActivateIter: recRec.lastActivateIter,
					active:           c.prog.AlwaysActive(),
				})
				nd.index[recRec.id] = newPos
				createdPerNode[nd.id]++
				// Register the new replica's position with its master.
				mp := recRec.masterPos
				nd.stageNotice(int(recRec.masterNode), func(buf []byte) []byte {
					buf = putI32(buf, mp)
					return putI32(buf, newPos)
				})
				nd.met.RecoveryMsgs++
				nd.met.RecoveryBytes += 8
			}
		}
		c.recycleMsgs(msgs)
	})
	for _, n := range createdPerNode {
		rec.RecoveredVertices += n
	}
	c.flushNoticeRound()
	registeredPerNode := make([][]masterKey, c.cfg.NumNodes)
	c.eachAlive(func(nd *node[V, A]) {
		msgs := c.net.Receive(nd.id)
		for _, m := range msgs {
			r := &reader{buf: m.Payload}
			for r.remaining() > 0 && r.err == nil {
				mp := r.i32()
				newPos := r.i32()
				if r.err != nil {
					break
				}
				e := &nd.entries[mp]
				e.replicaNodes = append(e.replicaNodes, int16(m.From))
				e.replicaPos = append(e.replicaPos, newPos)
				e.replicaFTOnly = append(e.replicaFTOnly, false)
				registeredPerNode[nd.id] = append(registeredPerNode[nd.id], masterKey{int16(nd.id), mp})
			}
		}
		c.recycleMsgs(msgs)
	})
	for _, keys := range registeredPerNode {
		for _, k := range keys {
			tableChanged[k] = true
		}
	}
	if state := c.barrier(); state.IsFail() {
		return state.Failed, nil
	}
	c.hook("migration:replicas")

	// --- Phase 5: attach migrated edges to local topology.
	var reconSpan costmodel.Span
	for _, nd := range c.aliveNodes() {
		created := 0
		if c.vcut != nil {
			for _, me := range migEdges[nd.id] {
				sp, ok1 := nd.pos(me.src)
				dp, ok2 := nd.pos(me.dst)
				if !ok1 || !ok2 {
					return nil, fmt.Errorf("%w: node %d migrated edge endpoint missing", ErrUnrecoverable, nd.id)
				}
				de := &nd.entries[dp]
				de.inNbr = append(de.inNbr, sp)
				de.inWt = append(de.inWt, me.wt)
				nd.entries[sp].outNbr = append(nd.entries[sp].outNbr, dp)
				created++
			}
			// Persist the migrated edges into this node's own edge-ckpt
			// files so a future failure can still recover them.
			if created > 0 && c.cfg.FT.Enabled {
				bufs := make(map[int][]byte)
				for _, me := range migEdges[nd.id] {
					t := c.edgeCkptTarget(me.dst, nd.id)
					buf := bufs[t]
					buf = putU32(buf, uint32(me.src))
					buf = putU32(buf, uint32(me.dst))
					buf = putF64(buf, me.wt)
					bufs[t] = buf
				}
				targets := make([]int, 0, len(bufs))
				for t := range bufs { //imitator:nondet-ok collected set is sorted before use
					targets = append(targets, t)
				}
				sort.Ints(targets)
				for _, t := range targets {
					buf := bufs[t]
					cost := c.dfs.Append(nd.id, edgeCkptPath(nd.id, t), buf)
					nd.met.DFSWriteBytes += int64(len(buf))
					reconSpan.Observe(cost)
				}
			}
			// Attached and re-persisted: a restart must not read these
			// files again.
			for _, p := range readPaths[nd.id] {
				c.migFilesDone[p] = true
			}
		} else {
			for _, pos := range sortedPositions(promoted[int16(nd.id)]) {
				e := &nd.entries[pos]
				if e.mInSrc == nil && e.inNbr != nil {
					continue // attached by an interrupted earlier attempt
				}
				e.inNbr = make([]int32, len(e.mInSrc))
				e.inWt = e.mInWt
				for k, src := range e.mInSrc {
					sp, ok := nd.pos(src)
					if !ok {
						return nil, fmt.Errorf("%w: node %d missing promoted in-neighbor %d",
							ErrUnrecoverable, nd.id, src)
					}
					e.inNbr[k] = sp
					nd.entries[sp].outNbr = append(nd.entries[sp].outNbr, int32(pos))
				}
				created += len(e.mInSrc)
				e.mInSrc, e.mInWt, e.mInSrcMaster = nil, nil, nil
			}
		}
		nd.localEdges += created
		rec.RecoveredEdges += created
		reconSpan.Observe(float64(created) * c.cfg.Cost.ComputePerEdge)
	}
	c.clock.Advance(reconSpan.Max())

	// --- Phase 6: restore fault-tolerance invariants (K replicas, K
	// mirrors) for every master whose table changed, then refresh full
	// state on all mirrors of changed masters.
	if err := c.repairFTInvariants(tableChanged); err != nil {
		return nil, err
	}
	if state := c.barrier(); state.IsFail() {
		return state.Failed, nil
	}
	rec.ReconstructSeconds = c.clock.Now() - reconStart
	c.hook("migration:repair")

	// --- Phase 7: replay activation for the promoted masters only
	// (§5.2.3) and recompute promoted selfish vertices (§4.4).
	replayStart := c.clock.Now()
	c.replayActivation(iter, func(mn int16, mp int32) bool {
		return promoted[mn][mp]
	})
	c.recomputeSelfishAt(func(mn int16, mp int32) bool { return promoted[mn][mp] }, iter)
	if state := c.barrier(); state.IsFail() {
		return state.Failed, nil
	}
	rec.ReplaySeconds = c.clock.Now() - replayStart

	for _, nd := range c.aliveNodes() {
		c.coord.Set(fmt.Sprintf("arraylen/%d", nd.id), int64(len(nd.entries)))
	}
	// Promotions, replica-table pruning, cooperative replica creation, and FT
	// repair all reshape the replica tables (and entry counts) on survivors:
	// every precomputed sync route is stale now.
	c.markRoutesDirty()
	// The pass completed: nothing is pending for a restart to pick up.
	c.migPromoted, c.migFilesDone = nil, nil
	msgs1, bytes1 := c.met.RecoveryTraffic()
	rec.Msgs, rec.Bytes = msgs1-msgs0, bytes1-bytes0
	c.refreshMemoryMetrics()
	c.recoveries = append(c.recoveries, rec)
	c.trace = append(c.trace, TraceEvent{Iter: iter, Kind: "recovery", Start: start, End: c.clock.Now()})
	return nil, nil
}

// repairFTInvariants re-establishes >= K replicas and K mirrors for every
// master whose replica table changed, creating FT replicas on the least
// loaded nodes and pushing refreshed full state to all mirrors.
func (c *Cluster[V, A]) repairFTInvariants(tableChanged map[masterKey]bool) error {
	if !c.cfg.FT.Enabled {
		return nil
	}
	alive := c.aliveNodes()
	load := make(map[int]int, len(alive))
	for _, nd := range alive {
		load[nd.id] = len(nd.entries)
	}
	keys := make([]masterKey, 0, len(tableChanged))
	for k := range tableChanged { //imitator:nondet-ok collected set is sorted before use
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].node != keys[b].node {
			return keys[a].node < keys[b].node
		}
		return keys[a].pos < keys[b].pos
	})

	// Pass 1: plan and execute FT replica creation (driver-sequential for
	// determinism; the records still flow through the network for cost
	// accounting).
	var creates []ftCreatePlan
	for _, k := range keys {
		nd := c.nodes[k.node]
		e := &nd.entries[k.pos]
		for len(e.replicaNodes)+countPlanned(creates, k) < c.cfg.FT.K {
			best := -1
			for _, cand := range alive {
				if cand.id == int(k.node) || hostsReplica(e, cand.id) || plannedTo(creates, k, cand.id) {
					continue
				}
				if best < 0 || load[cand.id] < load[best] {
					best = cand.id
				}
			}
			if best < 0 {
				break
			}
			creates = append(creates, ftCreatePlan{from: k, to: best})
			load[best]++
			c.extraReplicas++
			if e.isSelfish() {
				c.extraReplicasSelfish++
			}
			c.totalPresences++
		}
	}
	for _, cr := range creates {
		nd := c.nodes[cr.from.node]
		e := &nd.entries[cr.from.pos]
		flags := flagFTOnly
		if e.isSelfish() {
			flags |= flagSelfish
		}
		before := len(nd.sendBuf[cr.to])
		nd.sendBuf[cr.to] = encodeRecoveryRecord(nd.sendBuf[cr.to], c.vc, roleReplica,
			-1, e.id, flags, -1, int16(nd.id), cr.from.pos, e.inDeg, e.outDeg,
			e.value, e.lastActivate, e.lastActivateIter, nil, nil)
		nd.met.RecoveryMsgs++
		nd.met.RecoveryBytes += int64(len(nd.sendBuf[cr.to]) - before)
	}
	c.flushSendRound(netsim.KindRecovery)
	c.eachAlive(func(nd *node[V, A]) {
		msgs := c.net.Receive(nd.id)
		for _, m := range msgs {
			r := &reader{buf: m.Payload}
			for r.remaining() > 0 && r.err == nil {
				recRec := decodeRecoveryRecord(r, c.vc)
				if r.err != nil {
					break
				}
				newPos := int32(len(nd.entries))
				nd.entries = append(nd.entries, vertexEntry[V]{
					id:               recRec.id,
					flags:            recRec.flags,
					masterNode:       recRec.masterNode,
					masterPos:        recRec.masterPos,
					inDeg:            recRec.inDeg,
					outDeg:           recRec.outDeg,
					value:            recRec.value,
					lastActivate:     recRec.lastActivate,
					lastActivateIter: recRec.lastActivateIter,
					active:           c.prog.AlwaysActive(),
				})
				nd.index[recRec.id] = newPos
				mp := recRec.masterPos
				nd.stageNotice(int(recRec.masterNode), func(buf []byte) []byte {
					buf = putI32(buf, mp)
					return putI32(buf, newPos)
				})
			}
		}
		c.recycleMsgs(msgs)
	})
	c.flushNoticeRound()
	c.eachAlive(func(nd *node[V, A]) {
		msgs := c.net.Receive(nd.id)
		for _, m := range msgs {
			r := &reader{buf: m.Payload}
			for r.remaining() > 0 && r.err == nil {
				mp := r.i32()
				newPos := r.i32()
				if r.err != nil {
					break
				}
				e := &nd.entries[mp]
				e.replicaNodes = append(e.replicaNodes, int16(m.From))
				e.replicaPos = append(e.replicaPos, newPos)
				e.replicaFTOnly = append(e.replicaFTOnly, true)
			}
		}
		c.recycleMsgs(msgs)
	})

	// Pass 2: mirror re-selection for changed masters, then full-state
	// refresh on every mirror of a changed master.
	for _, k := range keys {
		nd := c.nodes[k.node]
		e := &nd.entries[k.pos]
		want := c.cfg.FT.K
		if want > len(e.replicaNodes) {
			want = len(e.replicaNodes)
		}
		have := map[int16]bool{}
		var mo []int16
		for _, idx := range e.mirrorOf {
			if int(idx) < len(e.replicaNodes) && !have[idx] {
				mo = append(mo, idx)
				have[idx] = true
			}
			if len(mo) >= want {
				break
			}
		}
		// Prefer FT-only replicas, then fill arbitrarily (deterministic
		// ascending index).
		for pass := 0; pass < 2 && len(mo) < want; pass++ {
			for idx := range e.replicaNodes {
				if len(mo) >= want {
					break
				}
				if have[int16(idx)] {
					continue
				}
				if pass == 0 && !e.replicaFTOnly[idx] {
					continue
				}
				mo = append(mo, int16(idx))
				have[int16(idx)] = true
			}
		}
		e.mirrorOf = mo
	}
	// Mirror full-state refresh. Non-selected replicas of a refreshed
	// master are demoted in the same sweep: an ex-mirror keeping its stale
	// flag and table would vote in a later promotion scan against a
	// different table than the fresh mirrors, and an inconsistent vote can
	// elect two masters for one vertex (§5.3.2 restart after repair).
	for _, k := range keys {
		nd := c.nodes[k.node]
		e := &nd.entries[k.pos]
		table := &replicaTable{
			nodes: e.replicaNodes, pos: e.replicaPos,
			ftOnly: e.replicaFTOnly, mirrorOf: e.mirrorOf,
		}
		var edges *rawEdges
		if c.ec != nil {
			edges = c.masterRawEdges(nd, e)
		}
		selected := make(map[int16]bool, len(e.mirrorOf))
		for rank, idx := range e.mirrorOf {
			selected[idx] = true
			host := e.replicaNodes[idx]
			rpos := e.replicaPos[idx]
			before := len(nd.sendBuf[host])
			nd.sendBuf[host] = encodeRecoveryRecord(nd.sendBuf[host], c.vc, roleReplica,
				rpos, e.id, flagMirror, int16(rank),
				int16(nd.id), k.pos, e.inDeg, e.outDeg,
				e.value, e.lastActivate, e.lastActivateIter, table, edges)
			nd.met.RecoveryMsgs++
			nd.met.RecoveryBytes += int64(len(nd.sendBuf[host]) - before)
		}
		for idx, host := range e.replicaNodes {
			if selected[int16(idx)] {
				continue
			}
			rpos := e.replicaPos[idx]
			nd.stageNotice(int(host), func(buf []byte) []byte {
				return putI32(buf, rpos)
			})
			nd.met.RecoveryMsgs++
			nd.met.RecoveryBytes += 4
		}
	}
	c.flushSendRound(netsim.KindRecovery)
	c.eachAlive(func(nd *node[V, A]) {
		msgs := c.net.Receive(nd.id)
		for _, m := range msgs {
			r := &reader{buf: m.Payload}
			for r.remaining() > 0 && r.err == nil {
				recRec := decodeRecoveryRecord(r, c.vc)
				if r.err != nil {
					break
				}
				e := &nd.entries[recRec.pos]
				e.flags |= flagMirror
				e.mirrorRank = recRec.mirrorRank
				if recRec.table != nil {
					e.mReplicaN = recRec.table.nodes
					e.mReplicaP = recRec.table.pos
					e.mReplicaFT = recRec.table.ftOnly
					e.mMirrorOf = recRec.table.mirrorOf
				}
				if recRec.edges != nil {
					e.mInSrc = recRec.edges.src
					e.mInWt = recRec.edges.wt
					e.mInSrcMaster = recRec.edges.srcMaster
				}
			}
		}
		c.recycleMsgs(msgs)
	})
	c.flushNoticeRound()
	c.eachAlive(func(nd *node[V, A]) {
		msgs := c.net.Receive(nd.id)
		for _, m := range msgs {
			r := &reader{buf: m.Payload}
			for r.remaining() > 0 && r.err == nil {
				rpos := r.i32()
				if r.err != nil {
					break
				}
				e := &nd.entries[rpos]
				e.flags &^= flagMirror
				e.mReplicaN, e.mReplicaP, e.mReplicaFT, e.mMirrorOf = nil, nil, nil, nil
			}
		}
		c.recycleMsgs(msgs)
	})
	return nil
}

// masterKey identifies a master entry by (node, position).
type masterKey struct {
	node int16
	pos  int32
}

// ftCreatePlan schedules one FT replica creation during invariant repair.
type ftCreatePlan struct {
	from masterKey
	to   int
}

// hostsReplica reports whether master e already has a replica on node n.
func hostsReplica[V any](e *vertexEntry[V], n int) bool {
	for _, host := range e.replicaNodes {
		if int(host) == n {
			return true
		}
	}
	return false
}

func countPlanned(creates []ftCreatePlan, k masterKey) int {
	n := 0
	for _, cr := range creates {
		if cr.from == k {
			n++
		}
	}
	return n
}

func plannedTo(creates []ftCreatePlan, k masterKey, to int) bool {
	for _, cr := range creates {
		if cr.from == k && cr.to == to {
			return true
		}
	}
	return false
}

// recomputeSelfishAt recomputes the dynamic state of selfish masters
// selected by the predicate (promoted mirrors hold stale values for selfish
// vertices under the §4.4 optimization).
func (c *Cluster[V, A]) recomputeSelfishAt(isTarget func(mn int16, mp int32) bool, iter int) {
	if !c.selfishOptOn {
		return
	}
	prev := iter - 1
	if prev < 0 {
		prev = 0
	}
	// Chunk-parallel under the same safety argument as recomputeSelfish:
	// selfish vertices are never anyone's in-neighbor.
	for _, nd := range c.aliveNodes() {
		c.chunked(nd, len(nd.entries), func(_ *stager, lo, hi int) {
			for i := lo; i < hi; i++ {
				e := &nd.entries[i]
				if !e.isMaster() || !e.isSelfish() || !isTarget(int16(nd.id), int32(i)) || len(e.inNbr) == 0 {
					continue
				}
				var acc A
				has := false
				for k, src := range e.inNbr {
					se := &nd.entries[src]
					contrib := c.prog.Gather(
						graph.Edge{Src: se.id, Dst: e.id, Weight: e.inWt[k]},
						se.value, se.info())
					if has {
						acc = c.prog.Merge(acc, contrib)
					} else {
						acc, has = contrib, true
					}
				}
				initVal, _ := c.prog.Init(e.id, e.info())
				newV, _ := c.prog.Apply(e.id, e.info(), initVal, acc, has, prev)
				e.value = newV
			}
		})
	}
}

// sortedPositions flattens a promoted-position set into ascending order, so
// every loop that stages wire bytes or links adjacency for promoted masters
// walks them deterministically.
func sortedPositions(set map[int32]bool) []int32 {
	out := make([]int32, 0, len(set))
	for pos := range set { //imitator:nondet-ok collected set is sorted before use
		out = append(out, pos)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
