package core

import (
	"encoding/binary"

	"imitator/internal/costmodel"
	"imitator/internal/graph"
	"imitator/internal/netsim"
)

// superstepEdgeCut runs one Cyclops-style superstep: every active master
// gathers over its (entirely local) in-edges, applies, then synchronizes
// the new value and scatter flag to its replicas in a single batched round.
// Activation propagates locally on every node that holds the scattering
// vertex (master or replica), so no extra messaging round is needed.
//
// All phases run through pre-bound functions and bodies (bindEdgeCutPhases,
// bindEdgeCutBodies) so the steady-state loop allocates nothing.
//
//imitator:hotpath
func (c *Cluster[V, A]) superstepEdgeCut(iter int) error {
	c.curIter = iter

	// Compute phase (Algorithm 1 line 5). Each chunk writes only the staged
	// fields of its own masters; cross-chunk scatter activation goes through
	// the stager's position list.
	c.runPhase(c.fns.ecCompute)
	c.advanceComputeSpan()

	// Send phase (line 6): one sync record per (computed master, replica),
	// encoded chunk-parallel and merged in chunk order.
	c.runPhase(c.fns.syncStage)
	c.flushSendRound(netsim.KindSync)

	// Receive phase: replicas stage the new value and propagate scatter
	// activation to their local out-targets. Messages decode in parallel —
	// every replica position is synced by exactly one master, so the staged
	// writes are position-disjoint across messages.
	c.runPhase(c.fns.ecRecv)
	return nil
}

// bindEdgeCutPhases builds the cluster-level edge-cut phase functions.
// fns.syncStage doubles as the vertex-cut R3 encode phase.
func (c *Cluster[V, A]) bindEdgeCutPhases() {
	c.fns.ecCompute = func(nd *node[V, A]) {
		nd.phaseCost = c.chunked(nd, len(nd.entries), nd.bodies.ecCompute)
	}
	c.fns.syncStage = func(nd *node[V, A]) {
		c.routeReady(nd)
		c.chunked(nd, len(nd.entries), nd.bodies.syncStage)
	}
	c.fns.ecRecv = func(nd *node[V, A]) {
		nd.recvMsgs = c.net.Receive(nd.id)
		if c.flog != nil {
			c.flogCapture(nd)
		}
		c.chunked(nd, len(nd.recvMsgs), nd.bodies.ecRecv)
		c.recycleMsgs(nd.recvMsgs)
		nd.recvMsgs = nil
	}
}

// bindEdgeCutBodies builds nd's pre-bound edge-cut chunked bodies.
func (c *Cluster[V, A]) bindEdgeCutBodies(nd *node[V, A]) {
	nd.bodies.ecCompute = func(st *stager, lo, hi int) {
		iter := c.curIter
		edges, applies := 0, 0
		for i := lo; i < hi; i++ {
			e := &nd.entries[i]
			if !e.isMaster() || !e.active {
				continue
			}
			var acc A
			has := false
			for k, src := range e.inNbr {
				se := &nd.entries[src]
				contrib := c.prog.Gather(
					graph.Edge{Src: se.id, Dst: e.id, Weight: e.inWt[k]},
					se.value, se.info())
				if has {
					acc = c.prog.Merge(acc, contrib)
				} else {
					acc, has = contrib, true
				}
			}
			edges += len(e.inNbr)
			newV, scatter := c.prog.Apply(e.id, e.info(), e.value, acc, has, iter)
			e.pendingValue = newV
			e.hasPending = true
			e.pendingScatter = scatter
			e.pendingScatterI = int32(iter)
			applies++
			if scatter {
				for _, w := range e.outNbr {
					st.markPendingActive(w)
				}
			}
		}
		st.busy = float64(edges)*c.cfg.Cost.ComputePerEdge +
			float64(applies)*c.cfg.Cost.ComputePerVertex
	}
	nd.bodies.syncStage = func(st *stager, lo, hi int) {
		for i := lo; i < hi; i++ {
			e := &nd.entries[i]
			if !e.isMaster() || !e.hasPending {
				continue
			}
			c.stageSyncRecords(st, nd, i)
		}
	}
	nd.bodies.ecRecv = func(st *stager, lo, hi int) {
		for _, m := range nd.recvMsgs[lo:hi] {
			if m.Kind != netsim.KindSync {
				continue
			}
			c.applySyncPayload(nd, st, m.Payload)
		}
	}
}

// stageSyncRecords appends one sync record per replica of master entry i to
// the worker's per-destination buffers, honoring the selfish-vertex
// optimization and keeping the FT/normal message accounting the figures
// need. Destinations come from the node's precomputed routing table, which
// preserves the entry-order/replica-order walk of the old slice-of-slices
// form, so the byte streams are unchanged.
func (c *Cluster[V, A]) stageSyncRecords(st *stager, nd *node[V, A], i int) {
	// The mirror's "full state" needs no extra bytes during normal sync:
	// the dynamic extension the paper describes (the activation/scatter
	// state) is the scatter flag already in every record, stamped with the
	// current superstep on receipt. The measurable FT overhead is the sync
	// records sent to FT-only replicas, which exist purely for recovery.
	e := &nd.entries[i]
	skipFT := c.selfishOptOn && e.isSelfish()
	rt := &nd.route
	for k := rt.start[i]; k < rt.start[i+1]; k++ {
		ftOnly := rt.ftOnly[k]
		if ftOnly && skipFT {
			continue
		}
		rn := int(rt.node[k])
		buf := st.buf(rn)
		before := len(buf)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(rt.pos[k]))
		var flags byte
		if e.pendingScatter {
			flags |= 1
		}
		buf = append(buf, flags)
		buf = c.vc.Append(buf, e.pendingValue)
		st.setBuf(rn, buf)
		size := int64(len(buf) - before)
		if ftOnly {
			st.met.FTMsgs++
			st.met.FTBytes += size
		} else {
			st.met.SyncMsgs++
			st.met.SyncBytes += size
		}
	}
}

// applySyncPayload decodes a batch of sync records into local entries;
// scatter flags activate the replicas' local out-targets through the
// worker's activation list.
func (c *Cluster[V, A]) applySyncPayload(nd *node[V, A], st *stager, buf []byte) {
	iter := int32(c.iter)
	for len(buf) > 0 {
		pos := int32(binary.LittleEndian.Uint32(buf))
		flags := buf[4]
		var (
			val V
			err error
		)
		val, buf, err = c.vc.Read(buf[5:])
		if err != nil {
			return
		}
		e := &nd.entries[pos]
		e.pendingValue = val
		e.hasPending = true
		e.pendingScatter = flags&1 != 0
		e.pendingScatterI = iter
		if e.pendingScatter {
			for _, w := range e.outNbr {
				st.markPendingActive(w)
			}
		}
	}
}

// advanceComputeSpan advances the simulated clock by the slowest node's
// compute cost and clears the scratch.
func (c *Cluster[V, A]) advanceComputeSpan() {
	var span costmodel.Span
	for _, n := range c.aliveNodes() {
		span.Observe(n.phaseCost)
		n.phaseCost = 0
	}
	c.clock.Advance(span.Max())
}
