package core_test

import (
	"testing"

	"imitator/internal/core"
	"imitator/internal/datasets"
	"imitator/internal/graph"
)

// TestWorkerCountDeterminism is the tentpole invariant of the intra-node
// worker pool: the engine's output is bit-for-bit identical for any
// WorkersPerNode, across both engine modes, both algorithm styles and all
// three recovery strategies. "Identical" means the final vertex values match
// exactly AND every message-byte counter matches — the parallel encoder must
// reproduce the serial engine's exact byte streams, or recovery equivalence
// would silently depend on core count.
func TestWorkerCountDeterminism(t *testing.T) {
	g := datasets.Tiny(600, 3600, 77)
	algos := []struct {
		name string
		run  func(t *testing.T, cfg core.Config, g *graph.Graph) *core.Result[float64]
	}{
		{"pagerank", runPR},
		{"sssp", runSP},
	}
	cases := []struct {
		name     string
		mode     core.Mode
		recovery core.RecoveryKind
	}{
		{"edgecut/rebirth", core.EdgeCutMode, core.RecoverRebirth},
		{"edgecut/migration", core.EdgeCutMode, core.RecoverMigration},
		{"edgecut/checkpoint", core.EdgeCutMode, core.RecoverCheckpoint},
		{"vertexcut/rebirth", core.VertexCutMode, core.RecoverRebirth},
		{"vertexcut/migration", core.VertexCutMode, core.RecoverMigration},
		{"vertexcut/checkpoint", core.VertexCutMode, core.RecoverCheckpoint},
	}
	for _, al := range algos {
		for _, tc := range cases {
			al, tc := al, tc
			t.Run(al.name+"/"+tc.name, func(t *testing.T) {
				t.Parallel()
				base := ftConfig(tc.mode, 6, 8, 1, tc.recovery)
				base.Failures = failAt(4, core.FailBeforeBarrier, 2)

				var ref *core.Result[float64]
				for _, workers := range []int{1, 2, 8} {
					cfg := base
					cfg.WorkersPerNode = workers
					res := al.run(t, cfg, g)
					if workers == 1 {
						ref = res
						continue
					}
					valuesEqual(t, tc.name, res.Values, ref.Values, 0)
					if got, want := res.Metrics.TotalBytes(), ref.Metrics.TotalBytes(); got != want {
						t.Errorf("workers=%d: total bytes %d != serial %d", workers, got, want)
					}
					if got, want := res.Metrics.TotalMsgs(), ref.Metrics.TotalMsgs(); got != want {
						t.Errorf("workers=%d: total msgs %d != serial %d", workers, got, want)
					}
					for kind, pair := range map[string][2]int64{
						"sync":       {res.Metrics.SyncBytes, ref.Metrics.SyncBytes},
						"ft":         {res.Metrics.FTBytes, ref.Metrics.FTBytes},
						"gather":     {res.Metrics.GatherBytes, ref.Metrics.GatherBytes},
						"activation": {res.Metrics.ActivationBytes, ref.Metrics.ActivationBytes},
						"recovery":   {res.Metrics.RecoveryBytes, ref.Metrics.RecoveryBytes},
					} {
						if pair[0] != pair[1] {
							t.Errorf("workers=%d: %s bytes %d != serial %d", workers, kind, pair[0], pair[1])
						}
					}
					if len(res.Recoveries) != len(ref.Recoveries) {
						t.Errorf("workers=%d: %d recoveries != serial %d",
							workers, len(res.Recoveries), len(ref.Recoveries))
					}
				}
			})
		}
	}
}

// TestWorkerCostModel checks the simulated-time side of the pool: more
// workers must never make a run slower, and the single-worker run must charge
// exactly the raw compute cost (ComputeSeconds == ComputeWorkSeconds), so
// seed-era figures are untouched by the pool's existence.
func TestWorkerCostModel(t *testing.T) {
	g := datasets.Tiny(400, 2400, 11)
	cfg := core.DefaultConfig(core.EdgeCutMode, 4)
	cfg.MaxIter = 6

	serial := runPR(t, cfg, g)
	if serial.Metrics.ComputeSeconds != serial.Metrics.ComputeWorkSeconds {
		t.Errorf("1 worker: ComputeSeconds %g != ComputeWorkSeconds %g",
			serial.Metrics.ComputeSeconds, serial.Metrics.ComputeWorkSeconds)
	}
	for _, n := range serial.Workers {
		if len(n.Busy) > 1 {
			t.Errorf("1 worker recorded %d busy slots", len(n.Busy))
		}
	}

	cfg.WorkersPerNode = 4
	par := runPR(t, cfg, g)
	if par.Metrics.ComputeSeconds > serial.Metrics.ComputeSeconds {
		t.Errorf("4 workers slower in simulated time: %g > %g",
			par.Metrics.ComputeSeconds, serial.Metrics.ComputeSeconds)
	}
	if par.Metrics.ComputeWorkSeconds != serial.Metrics.ComputeWorkSeconds {
		t.Errorf("raw work changed with workers: %g != %g",
			par.Metrics.ComputeWorkSeconds, serial.Metrics.ComputeWorkSeconds)
	}
	if par.SimSeconds > serial.SimSeconds {
		t.Errorf("4 workers slower overall: %g > %g", par.SimSeconds, serial.SimSeconds)
	}
	sawPool := false
	for _, n := range par.Workers {
		if len(n.Busy) > 1 {
			sawPool = true
			if imb := n.Imbalance(); imb < 1 {
				t.Errorf("imbalance %g < 1", imb)
			}
		}
	}
	if !sawPool {
		t.Error("no node recorded multi-worker busy time")
	}
}

// TestHostParallelismInvariance is the host-scheduling counterpart of
// TestWorkerCountDeterminism: HostParallelism caps real goroutines (phase
// pool + chunk slots) and must never change a simulated number. The sweep
// covers a pool narrower than the cluster (1 < 6 nodes, which also splits
// the barrier pool from the compute pool), equal, and wider, under a
// mid-run crash so the recovery paths run on the capped pool too.
func TestHostParallelismInvariance(t *testing.T) {
	g := datasets.Tiny(600, 3600, 77)
	for _, mode := range []core.Mode{core.EdgeCutMode, core.VertexCutMode} {
		mode := mode
		t.Run(map[core.Mode]string{core.EdgeCutMode: "edgecut", core.VertexCutMode: "vertexcut"}[mode], func(t *testing.T) {
			t.Parallel()
			base := ftConfig(mode, 6, 8, 1, core.RecoverRebirth)
			base.WorkersPerNode = 4
			base.Failures = failAt(4, core.FailBeforeBarrier, 2)

			var ref *core.Result[float64]
			for _, hp := range []int{0, 1, 2, 6, 16} {
				cfg := base
				cfg.HostParallelism = hp
				res := runPR(t, cfg, g)
				if ref == nil {
					ref = res
					continue
				}
				valuesEqual(t, "hostpar", res.Values, ref.Values, 0)
				if res.SimSeconds != ref.SimSeconds {
					t.Errorf("hostpar=%d: sim %v != %v", hp, res.SimSeconds, ref.SimSeconds)
				}
				if got, want := res.Metrics.TotalBytes(), ref.Metrics.TotalBytes(); got != want {
					t.Errorf("hostpar=%d: total bytes %d != %d", hp, got, want)
				}
				if len(res.Recoveries) != len(ref.Recoveries) {
					t.Errorf("hostpar=%d: %d recoveries != %d", hp, len(res.Recoveries), len(ref.Recoveries))
				}
			}
		})
	}
}

func TestValidateHostParallelism(t *testing.T) {
	cfg := core.DefaultConfig(core.EdgeCutMode, 4)
	cfg.HostParallelism = -1
	if err := cfg.Validate(); err == nil {
		t.Error("HostParallelism=-1 validated")
	}
	cfg.HostParallelism = 0
	if err := cfg.Validate(); err != nil {
		t.Errorf("HostParallelism=0 rejected: %v", err)
	}
	// Oversubscription is explicit: NumNodes x WorkersPerNode is capped.
	cfg.WorkersPerNode = 8192
	if err := cfg.Validate(); err == nil {
		t.Error("4 nodes x 8192 workers (32768 sim tasks) validated")
	}
}

func TestValidateWorkersPerNode(t *testing.T) {
	cfg := core.DefaultConfig(core.EdgeCutMode, 4)
	if cfg.WorkersPerNode != 1 {
		t.Fatalf("DefaultConfig WorkersPerNode = %d, want 1", cfg.WorkersPerNode)
	}
	cfg.WorkersPerNode = 0
	if err := cfg.Validate(); err == nil {
		t.Error("WorkersPerNode=0 validated")
	}
	cfg.WorkersPerNode = -3
	if err := cfg.Validate(); err == nil {
		t.Error("WorkersPerNode=-3 validated")
	}
	cfg.WorkersPerNode = 16
	if err := cfg.Validate(); err != nil {
		t.Errorf("WorkersPerNode=16 rejected: %v", err)
	}
}
