package core

import (
	"encoding/binary"
	"errors"
	"math"

	"imitator/internal/graph"
)

// errTruncated reports a malformed recovery or checkpoint payload.
var errTruncated = errors.New("core: truncated payload")

// writer-side primitives (append-style, little endian).

func putU8(buf []byte, v uint8) []byte   { return append(buf, v) }
func putU16(buf []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(buf, v) }
func putU32(buf []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(buf, v) }
func putI16(buf []byte, v int16) []byte  { return putU16(buf, uint16(v)) }
func putI32(buf []byte, v int32) []byte  { return putU32(buf, uint32(v)) }
func putF64(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}
func putBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// reader consumes a payload with sticky error handling.
type reader struct {
	buf []byte
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = errTruncated
	}
}

func (r *reader) u8() uint8 {
	if r.err != nil || len(r.buf) < 1 {
		r.fail()
		return 0
	}
	v := r.buf[0]
	r.buf = r.buf[1:]
	return v
}

func (r *reader) u16() uint16 {
	if r.err != nil || len(r.buf) < 2 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(r.buf)
	r.buf = r.buf[2:]
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || len(r.buf) < 4 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf)
	r.buf = r.buf[4:]
	return v
}

func (r *reader) i16() int16 { return int16(r.u16()) }
func (r *reader) i32() int32 { return int32(r.u32()) }

func (r *reader) f64() float64 {
	if r.err != nil || len(r.buf) < 8 {
		r.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf))
	r.buf = r.buf[8:]
	return v
}

func (r *reader) bool() bool { return r.u8() != 0 }

// readValue decodes a V using the cluster's value codec.
func readValue[V any](r *reader, c Codec[V]) V {
	var zero V
	if r.err != nil {
		return zero
	}
	v, rest, err := c.Read(r.buf)
	if err != nil {
		r.err = err
		return zero
	}
	r.buf = rest
	return v
}

func (r *reader) remaining() int { return len(r.buf) }

// Recovery record roles.
const (
	roleReplica uint8 = iota
	roleMaster
)

// encodeRecoveryRecord serializes one recovery record. A record recreates
// one vertex entry on the recovering node: its identity, dynamic state,
// and — when the entry is a master or mirror — the replica location table
// and (edge-cut) the raw in-edge list.
func encodeRecoveryRecord[V any](buf []byte, vc Codec[V], role uint8, pos int32,
	id graph.VertexID, flags entryFlags, mirrorRank int16,
	masterNode int16, masterPos int32, inDeg, outDeg int32,
	value V, lastActivate bool, lastActivateIter int32,
	table *replicaTable, edges *rawEdges) []byte {
	buf = putU8(buf, role)
	buf = putI32(buf, pos)
	buf = putU32(buf, uint32(id))
	buf = putU8(buf, uint8(flags))
	buf = putI16(buf, mirrorRank)
	buf = putI16(buf, masterNode)
	buf = putI32(buf, masterPos)
	buf = putI32(buf, inDeg)
	buf = putI32(buf, outDeg)
	buf = vc.Append(buf, value)
	buf = putBool(buf, lastActivate)
	buf = putI32(buf, lastActivateIter)
	if table != nil {
		buf = putU8(buf, 1)
		buf = table.encode(buf)
	} else {
		buf = putU8(buf, 0)
	}
	if edges != nil {
		buf = putU8(buf, 1)
		buf = edges.encode(buf)
	} else {
		buf = putU8(buf, 0)
	}
	return buf
}

// recoveryRecord is the decoded form.
type recoveryRecord[V any] struct {
	role             uint8
	pos              int32
	id               graph.VertexID
	flags            entryFlags
	mirrorRank       int16
	masterNode       int16
	masterPos        int32
	inDeg, outDeg    int32
	value            V
	lastActivate     bool
	lastActivateIter int32
	table            *replicaTable
	edges            *rawEdges
}

func decodeRecoveryRecord[V any](r *reader, vc Codec[V]) recoveryRecord[V] {
	var rec recoveryRecord[V]
	rec.role = r.u8()
	rec.pos = r.i32()
	rec.id = graph.VertexID(r.u32())
	rec.flags = entryFlags(r.u8())
	rec.mirrorRank = r.i16()
	rec.masterNode = r.i16()
	rec.masterPos = r.i32()
	rec.inDeg = r.i32()
	rec.outDeg = r.i32()
	rec.value = readValue(r, vc)
	rec.lastActivate = r.bool()
	rec.lastActivateIter = r.i32()
	if r.bool() {
		rec.table = decodeReplicaTable(r)
	}
	if r.bool() {
		rec.edges = decodeRawEdges(r)
	}
	return rec
}

// replicaTable is a master's replica location table (§5: a master knows its
// replicas' locations and positions; mirrors carry a copy).
type replicaTable struct {
	nodes    []int16
	pos      []int32
	ftOnly   []bool
	mirrorOf []int16
}

func (t *replicaTable) encode(buf []byte) []byte {
	buf = putU16(buf, uint16(len(t.nodes)))
	for i := range t.nodes {
		buf = putI16(buf, t.nodes[i])
		buf = putI32(buf, t.pos[i])
		buf = putBool(buf, t.ftOnly[i])
	}
	buf = putU16(buf, uint16(len(t.mirrorOf)))
	for _, m := range t.mirrorOf {
		buf = putI16(buf, m)
	}
	return buf
}

func decodeReplicaTable(r *reader) *replicaTable {
	n := int(r.u16())
	if n*7 > r.remaining() { // sanity bound: each replica row is 7 bytes
		r.fail()
		return &replicaTable{}
	}
	t := &replicaTable{
		nodes:  make([]int16, n),
		pos:    make([]int32, n),
		ftOnly: make([]bool, n),
	}
	for i := 0; i < n; i++ {
		t.nodes[i] = r.i16()
		t.pos[i] = r.i32()
		t.ftOnly[i] = r.bool()
	}
	m := int(r.u16())
	if m*2 > r.remaining() { // sanity bound: each mirror index is 2 bytes
		r.fail()
		return t
	}
	t.mirrorOf = make([]int16, m)
	for i := 0; i < m; i++ {
		t.mirrorOf[i] = r.i16()
	}
	return t
}

// rawEdges is an in-edge list by global vertex id, with each source's
// master node (needed to request replica creation during Migration).
type rawEdges struct {
	src       []graph.VertexID
	wt        []float64
	srcMaster []int16
}

func (e *rawEdges) encode(buf []byte) []byte {
	buf = putU32(buf, uint32(len(e.src)))
	for i := range e.src {
		buf = putU32(buf, uint32(e.src[i]))
		buf = putF64(buf, e.wt[i])
		buf = putI16(buf, e.srcMaster[i])
	}
	return buf
}

func decodeRawEdges(r *reader) *rawEdges {
	n := int(r.u32())
	if n*14 > r.remaining() { // sanity bound: each edge is >= 14 bytes
		r.fail()
		return &rawEdges{}
	}
	e := &rawEdges{
		src:       make([]graph.VertexID, n),
		wt:        make([]float64, n),
		srcMaster: make([]int16, n),
	}
	for i := 0; i < n; i++ {
		e.src[i] = graph.VertexID(r.u32())
		e.wt[i] = r.f64()
		e.srcMaster[i] = r.i16()
	}
	return e
}
