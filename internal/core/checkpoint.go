package core

import (
	"encoding/binary"
	"fmt"

	"imitator/internal/costmodel"
	"imitator/internal/graph"
	"imitator/internal/netsim"
)

// ckptPath names the data snapshot of one node at one epoch.
func ckptPath(epoch, node int) string { return fmt.Sprintf("ckpt/%d/node%d", epoch, node) }

// writeCheckpoint snapshots every node's master state to the DFS inside the
// global barrier (§2.2). The epoch is the current (committed) iteration.
func (c *Cluster[V, A]) writeCheckpoint() {
	start := c.clock.Now()
	c.writeCheckpointAt(c.iter, true)
	c.trace = append(c.trace, TraceEvent{Iter: c.iter, Kind: "checkpoint", Start: start, End: c.clock.Now()})
}

// ckptRecord tracks one snapshot in the history.
type ckptRecord struct {
	epoch int
	full  bool
}

// writeCheckpointAt writes the epoch snapshot; when charge is set the cost
// advances the simulated clock (barrier-synchronous checkpointing), else it
// accrues to load time (the initial epoch-0 snapshot). Incremental
// snapshots include only masters touched since the previous epoch, with a
// full snapshot every FullEvery to bound the recovery chain.
func (c *Cluster[V, A]) writeCheckpointAt(epoch int, charge bool) {
	fullEvery := c.cfg.Checkpoint.FullEvery
	if fullEvery < 1 {
		fullEvery = 4
	}
	full := !c.cfg.Checkpoint.Incremental || len(c.ckptHistory)%fullEvery == 0
	since := int32(0)
	if !full {
		since = int32(c.ckptHistory[len(c.ckptHistory)-1].epoch)
	}
	// Nodes snapshot concurrently (they do on a real cluster); each node's
	// records encode chunk-parallel and concatenate in chunk order, so the
	// snapshot bytes match the sequential encoder's for any worker count.
	nodeCosts := make([]float64, c.cfg.NumNodes)
	nodeBytes := make([]int64, c.cfg.NumNodes)
	c.eachAlive(func(nd *node[V, A]) {
		buf := putU32(c.pool.Get(), uint32(epoch))
		countAt := len(buf)
		buf = putU32(buf, 0) // patched below
		chunks, count := c.chunkEncode(len(nd.entries), func(b []byte, lo, hi int) ([]byte, int) {
			cnt := 0
			for i := lo; i < hi; i++ {
				e := &nd.entries[i]
				if !e.isMaster() {
					continue
				}
				if !full && e.lastTouchedIter < since {
					continue
				}
				b = putI32(b, int32(i))
				b = c.vc.Append(b, e.value)
				b = putBool(b, e.active)
				b = putBool(b, e.lastActivate)
				b = putI32(b, e.lastActivateIter)
				cnt++
			}
			return b, cnt
		})
		for _, cb := range chunks {
			buf = append(buf, cb...)
			c.pool.Put(cb)
		}
		binary.LittleEndian.PutUint32(buf[countAt:countAt+4], uint32(count))
		// The DFS copies data on Write, so the encode buffer is recyclable
		// as soon as the write returns.
		cost := c.dfsWriteCost(nd, ckptPath(epoch, nd.id), buf)
		if c.cfg.Checkpoint.InMemory {
			// Memory-backed HDFS: bandwidth is the network, not disk, and
			// the paper notes triple replication still crosses machines.
			cost = c.cfg.Cost.NetTransfer(int64(len(buf)) * int64(c.cfg.Cost.DFSReplication-1))
		}
		nodeBytes[nd.id] = int64(len(buf))
		c.pool.Put(buf)
		nodeCosts[nd.id] = cost
	})
	var span costmodel.Span
	for _, cost := range nodeCosts {
		span.Observe(cost)
	}
	if charge {
		c.clock.Advance(span.Max())
		c.ckptSeconds += span.Max()
		c.ckptCount++
		for _, b := range nodeBytes {
			c.ckptBytes += b
		}
	} else {
		c.loadSeconds += span.Max()
	}
	c.ckptEpoch = epoch
	if n := len(c.ckptHistory); n > 0 && c.ckptHistory[n-1].epoch == epoch {
		c.ckptHistory[n-1].full = full // re-written after a replay
	} else {
		c.ckptHistory = append(c.ckptHistory, ckptRecord{epoch: epoch, full: full})
	}
}

// restoreChain returns the snapshot epochs needed to restore state at
// `epoch`: the latest full snapshot at or before it plus every later delta.
func (c *Cluster[V, A]) restoreChain(epoch int) []int {
	lastFull := -1
	for i, rec := range c.ckptHistory {
		if rec.epoch > epoch {
			break
		}
		if rec.full {
			lastFull = i
		}
	}
	if lastFull < 0 {
		return nil
	}
	var chain []int
	for _, rec := range c.ckptHistory[lastFull:] {
		if rec.epoch > epoch {
			break
		}
		chain = append(chain, rec.epoch)
	}
	return chain
}

// restoreFromSnapshot loads a node's snapshot at epoch into its entries.
func (c *Cluster[V, A]) restoreFromSnapshot(nd *node[V, A], epoch int) (float64, error) {
	data, cost, err := c.dfs.Read(nd.id, ckptPath(epoch, nd.id))
	if err != nil {
		return 0, fmt.Errorf("core: checkpoint restore node %d: %w", nd.id, err)
	}
	nd.met.DFSReadBytes += int64(len(data))
	r := &reader{buf: data}
	gotEpoch := int(r.u32())
	if gotEpoch != epoch {
		return 0, fmt.Errorf("core: snapshot epoch %d != %d", gotEpoch, epoch)
	}
	count := int(r.u32())
	for k := 0; k < count; k++ {
		pos := r.i32()
		val := readValue(r, c.vc)
		active := r.bool()
		lastAct := r.bool()
		stamp := r.i32()
		if r.err != nil {
			return 0, r.err
		}
		e := &nd.entries[pos]
		e.value = val
		e.active = active
		e.lastActivate = lastAct
		e.lastActivateIter = stamp
		e.clearPending()
	}
	return cost, nil
}

// recoverCheckpoint is the paper's baseline: every node — survivors
// included — rolls back to the last snapshot; standby newbies rebuild the
// crashed nodes from the metadata snapshot plus the data snapshot; then the
// whole cluster replays the lost iterations (§2.2, Fig 2c).
func (c *Cluster[V, A]) recoverCheckpoint(failed []int) ([]int, error) {
	if c.rebirthsUsed+len(failed) > c.cfg.MaxRebirths {
		return nil, fmt.Errorf("%w: %d standby nodes exhausted", ErrNoStandby, c.cfg.MaxRebirths)
	}
	failedSet := make(map[int]bool, len(failed))
	for _, f := range failed {
		failedSet[f] = true
	}
	iterAtFailure := c.iter
	epoch := c.ckptEpoch
	rec := RecoveryReport{
		Kind:      "checkpoint",
		Iteration: epoch,
		Failed:    append([]int(nil), failed...),
	}
	start := c.clock.Now()
	msgs0, bytes0 := c.met.RecoveryTraffic()

	// Newbies take over the failed slots, rebuilding immutable topology
	// from the pristine loader state (the metadata snapshot's content).
	for _, f := range failed {
		nd := c.rebuildPristineNode(f)
		if nd == nil {
			return nil, fmt.Errorf("%w: no pristine state for node %d", ErrUnrecoverable, f)
		}
		meta, cost, err := c.dfs.Read(f, fmt.Sprintf("ckptmeta/%d", f))
		if err != nil {
			return nil, fmt.Errorf("core: metadata snapshot: %w", err)
		}
		nd.met.DFSReadBytes += int64(len(meta))
		c.clock.Advance(cost)
		c.nodes[f] = nd
		c.net.SetFailed(f, false)
		c.coord.Join(f)
		c.net.SetEpoch(f, c.coord.Epoch(f)) // fresh incarnation: fence the old life's traffic
		c.chaosTrack(f)
		c.rebirthsUsed++
		rec.RecoveredVertices += len(nd.entries)
		rec.RecoveredEdges += nd.localEdges
	}
	c.hook("checkpoint:join")

	// Reload: every node — survivors included — re-reads its graph topology
	// from the metadata snapshot and its state from the data snapshot
	// (§2.3.2: "all nodes first reload the graph topology from the metadata
	// snapshot in parallel and then update states"). Our survivors'
	// in-memory topology happens to be intact, so the metadata read is a
	// pure cost charge mirroring the paper's systems, which rebuild from
	// scratch to reach a consistent state.
	chain := c.restoreChain(epoch)
	if len(chain) == 0 {
		return nil, fmt.Errorf("%w: no snapshot chain for epoch %d", ErrUnrecoverable, epoch)
	}
	// Per-node slots: the reload closures run concurrently.
	nodeCosts := make([]float64, c.cfg.NumNodes)
	nodeErrs := make([]error, c.cfg.NumNodes)
	c.eachAlive(func(nd *node[V, A]) {
		metaSize, err := c.dfs.Size(fmt.Sprintf("ckptmeta/%d", nd.id))
		if err != nil {
			nodeErrs[nd.id] = err
			return
		}
		nd.met.DFSReadBytes += metaSize
		cost := c.cfg.Cost.DFSRead(metaSize)
		for _, ep := range chain {
			dataCost, err := c.restoreFromSnapshot(nd, ep)
			if err != nil {
				nodeErrs[nd.id] = err
				return
			}
			cost += dataCost
		}
		nodeCosts[nd.id] = cost
	})
	var span costmodel.Span
	for i, err := range nodeErrs {
		if err != nil {
			return nil, err
		}
		span.Observe(nodeCosts[i])
	}
	c.clock.Advance(span.Max())
	if state := c.barrier(); state.IsFail() {
		return state.Failed, nil
	}
	rec.ReloadSeconds = c.clock.Now() - start
	c.hook("checkpoint:reload")

	// Reconstruct: newbies materialize entries; then a full resync restores
	// every replica from its master (survivors rolled back too, so all
	// replicas are stale).
	reconStart := c.clock.Now()
	var reconSpan costmodel.Span
	for _, f := range failed {
		nd := c.nodes[f]
		reconSpan.Observe(float64(len(nd.entries))*c.cfg.Cost.ReconstructPerVertex +
			float64(nd.localEdges)*c.cfg.Cost.ComputePerEdge)
	}
	c.clock.Advance(reconSpan.Max())
	c.fullResync()
	if state := c.barrier(); state.IsFail() {
		return state.Failed, nil
	}
	rec.ReconstructSeconds = c.clock.Now() - reconStart

	// Replay: the main loop re-executes epochs..iterAtFailure-1.
	rec.ReplayIters = iterAtFailure - epoch
	c.iter = epoch
	c.coord.Set("iter", int64(epoch))
	msgs1, bytes1 := c.met.RecoveryTraffic()
	rec.Msgs, rec.Bytes = msgs1-msgs0, bytes1-bytes0
	c.recoveries = append(c.recoveries, rec)
	c.watchReplay(len(c.recoveries)-1, iterAtFailure)
	c.refreshMemoryMetrics()
	c.trace = append(c.trace, TraceEvent{Iter: iterAtFailure, Kind: "recovery", Start: start, End: c.clock.Now()})
	return nil, nil
}

// rebuildPristineNode recreates a node's immutable loader state (entries,
// topology, initial values) from the retained pristine copy. The topology
// slices are shared with the pristine copy — they are immutable after load.
func (c *Cluster[V, A]) rebuildPristineNode(id int) *node[V, A] {
	if c.pristine == nil || c.pristine[id] == nil {
		return nil
	}
	src := c.pristine[id]
	nd := &node[V, A]{
		id:         id,
		alive:      true,
		met:        &c.met.Nodes[id],
		localEdges: src.localEdges,
		entries:    make([]vertexEntry[V], len(src.entries)),
	}
	copy(nd.entries, src.entries)
	nd.index = make(map[graph.VertexID]int32, len(nd.entries))
	for i := range nd.entries {
		nd.index[nd.entries[i].id] = int32(i)
	}
	c.initNodeScratch(nd)
	return nd
}

// fullResync pushes every master's committed state to all of its replicas,
// including activity flags; used after snapshot restores.
func (c *Cluster[V, A]) fullResync() {
	c.eachAlive(func(nd *node[V, A]) {
		c.chunked(nd, len(nd.entries), func(st *stager, lo, hi int) {
			for i := lo; i < hi; i++ {
				e := &nd.entries[i]
				if !e.isMaster() {
					continue
				}
				for ri, rn := range e.replicaNodes {
					pos := e.replicaPos[ri]
					before := len(st.send[rn])
					st.stage(int(rn), func(buf []byte) []byte {
						buf = putI32(buf, pos)
						buf = c.vc.Append(buf, e.value)
						buf = putBool(buf, e.active)
						buf = putBool(buf, e.lastActivate)
						return putI32(buf, e.lastActivateIter)
					})
					st.met.RecoveryMsgs++
					st.met.RecoveryBytes += int64(len(st.send[rn]) - before)
				}
			}
		})
	})
	c.flushSendRound(netsim.KindRecovery)
	// Decode parallelizes over messages: each replica position is pushed by
	// exactly one master, so writes are position-disjoint.
	c.eachAlive(func(nd *node[V, A]) {
		msgs := c.net.Receive(nd.id)
		c.chunked(nd, len(msgs), func(_ *stager, lo, hi int) {
			for _, m := range msgs[lo:hi] {
				r := &reader{buf: m.Payload}
				for r.remaining() > 0 && r.err == nil {
					pos := r.i32()
					val := readValue(r, c.vc)
					active := r.bool()
					lastAct := r.bool()
					stamp := r.i32()
					if r.err != nil {
						break
					}
					e := &nd.entries[pos]
					e.value = val
					if !e.isMaster() {
						e.active = active
					}
					e.lastActivate = lastAct
					e.lastActivateIter = stamp
					e.clearPending()
				}
			}
		})
		c.recycleMsgs(msgs)
	})
}

// watchReplay arms replay-time accounting: when the main loop reaches
// targetIter again, the elapsed simulated time lands in the recovery's
// ReplaySeconds.
func (c *Cluster[V, A]) watchReplay(recIdx, targetIter int) {
	c.replayWatch = &replayWatch{recIdx: recIdx, target: targetIter, start: c.clock.Now()}
}

// replayWatch tracks checkpoint-recovery replay progress.
type replayWatch struct {
	recIdx int
	target int
	start  float64
}

// pristineNode is a node's immutable post-load state.
type pristineNode[V any] struct {
	entries    []vertexEntry[V]
	localEdges int
}
