package core_test

import (
	"container/heap"
	"math"
	"testing"

	"imitator/internal/algorithms"
	"imitator/internal/core"
	"imitator/internal/datasets"
	"imitator/internal/graph"
)

// refPageRank mirrors the engine's PageRank semantics exactly, including
// the in-edge fold order.
func refPageRank(g *graph.Graph, iters int) []float64 {
	n := g.NumVertices()
	rank := make([]float64, n)
	for v := range rank {
		rank[v] = 1.0
	}
	damping := 0.85 // runtime arithmetic, matching Apply's (1-damping) bit-for-bit
	for t := 0; t < iters; t++ {
		next := make([]float64, n)
		for v := 0; v < n; v++ {
			sum := 0.0
			g.InEdges(graph.VertexID(v), func(_ int, e graph.Edge) {
				if d := g.OutDegree(e.Src); d > 0 {
					sum += rank[e.Src] / float64(d)
				}
			})
			next[v] = (1 - damping) + damping*sum
		}
		rank = next
	}
	return rank
}

// refSSSP is Dijkstra over the weighted graph.
func refSSSP(g *graph.Graph, source graph.VertexID) []float64 {
	n := g.NumVertices()
	dist := make([]float64, n)
	for v := range dist {
		dist[v] = math.Inf(1)
	}
	dist[source] = 0
	pq := &distHeap{{v: source, d: 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(distItem)
		if item.d > dist[item.v] {
			continue
		}
		g.OutEdges(item.v, func(_ int, e graph.Edge) {
			if nd := item.d + e.Weight; nd < dist[e.Dst] {
				dist[e.Dst] = nd
				heap.Push(pq, distItem{v: e.Dst, d: nd})
			}
		})
	}
	return dist
}

type distItem struct {
	v graph.VertexID
	d float64
}
type distHeap []distItem

func (h distHeap) Len() int           { return len(h) }
func (h distHeap) Less(i, j int) bool { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x any)        { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() any          { old := *h; x := old[len(old)-1]; *h = old[:len(old)-1]; return x }

// baseConfig returns an FT-less configuration for correctness baselines.
func baseConfig(mode core.Mode, numNodes, iters int) core.Config {
	cfg := core.DefaultConfig(mode, numNodes)
	cfg.FT = core.FTConfig{}
	cfg.Recovery = core.RecoverNone
	cfg.MaxIter = iters
	return cfg
}

func runPageRank(t *testing.T, cfg core.Config, g *graph.Graph) *core.Result[float64] {
	t.Helper()
	cl, err := core.NewCluster[float64, float64](cfg, g, algorithms.NewPageRank(g.NumVertices()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPageRankEdgeCutMatchesReference(t *testing.T) {
	g := datasets.Tiny(500, 3000, 21)
	want := refPageRank(g, 5)
	for _, nodes := range []int{1, 4, 7} {
		res := runPageRank(t, baseConfig(core.EdgeCutMode, nodes, 5), g)
		for v := range want {
			if res.Values[v] != want[v] {
				t.Fatalf("%d nodes: vertex %d rank %v != reference %v", nodes, v, res.Values[v], want[v])
			}
		}
	}
}

func TestPageRankVertexCutMatchesReference(t *testing.T) {
	g := datasets.Tiny(500, 3000, 22)
	want := refPageRank(g, 5)
	for _, part := range []core.PartitionerKind{core.PartRandom, core.PartGrid, core.PartHybrid} {
		cfg := baseConfig(core.VertexCutMode, 4, 5)
		cfg.Partitioner = part
		res := runPageRank(t, cfg, g)
		for v := range want {
			if math.Abs(res.Values[v]-want[v]) > 1e-9*(1+math.Abs(want[v])) {
				t.Fatalf("%v: vertex %d rank %v != reference %v", part, v, res.Values[v], want[v])
			}
		}
	}
}

func TestPageRankWithFTMatchesWithoutFT(t *testing.T) {
	// FT replicas and mirror sync must not perturb results.
	g := datasets.Tiny(400, 2400, 23)
	plain := runPageRank(t, baseConfig(core.EdgeCutMode, 4, 5), g)
	cfg := core.DefaultConfig(core.EdgeCutMode, 4)
	cfg.MaxIter = 5
	withFT := runPageRank(t, cfg, g)
	for v := range plain.Values {
		if plain.Values[v] != withFT.Values[v] {
			t.Fatalf("vertex %d: FT changed rank %v -> %v", v, plain.Values[v], withFT.Values[v])
		}
	}
	if withFT.ExtraReplicas == 0 {
		t.Error("expected some FT replicas on a graph with no-replica vertices")
	}
}

func runSSSP(t *testing.T, cfg core.Config, g *graph.Graph, src graph.VertexID) *core.Result[float64] {
	t.Helper()
	cl, err := core.NewCluster[float64, float64](cfg, g, algorithms.NewSSSP(src))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSSSPMatchesDijkstra(t *testing.T) {
	g := datasets.Tiny(300, 2000, 31)
	want := refSSSP(g, 7)
	for _, mode := range []core.Mode{core.EdgeCutMode, core.VertexCutMode} {
		cfg := baseConfig(mode, 5, 80) // enough supersteps to converge
		res := runSSSP(t, cfg, g, 7)
		for v := range want {
			if res.Values[v] != want[v] {
				t.Fatalf("%v: vertex %d dist %v != dijkstra %v", mode, v, res.Values[v], want[v])
			}
		}
	}
}

func TestSSSPActivationConverges(t *testing.T) {
	// After convergence, iterations should stop doing work: compare message
	// counts for extra supersteps.
	g := datasets.Tiny(200, 1000, 32)
	short := runSSSP(t, baseConfig(core.EdgeCutMode, 4, 60), g, 3)
	long := runSSSP(t, baseConfig(core.EdgeCutMode, 4, 90), g, 3)
	extra := long.Metrics.SyncMsgs - short.Metrics.SyncMsgs
	if extra != 0 {
		t.Errorf("converged SSSP still sent %d sync messages in extra supersteps", extra)
	}
}

func TestCDDistributionInvariant(t *testing.T) {
	g, err := datasets.Load("dblp")
	if err != nil {
		t.Fatal(err)
	}
	run := func(nodes int, mode core.Mode) []int32 {
		cfg := baseConfig(mode, nodes, 15)
		cl, err := core.NewCluster[int32, []core.LabelCount](cfg, g, algorithms.NewCD())
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Values
	}
	ref := run(1, core.EdgeCutMode)
	got := run(5, core.EdgeCutMode)
	for v := range ref {
		if ref[v] != got[v] {
			t.Fatalf("vertex %d label differs across cluster sizes: %d vs %d", v, ref[v], got[v])
		}
	}
	gotVC := run(4, core.VertexCutMode)
	for v := range ref {
		if ref[v] != gotVC[v] {
			t.Fatalf("vertex %d label differs edge-cut vs vertex-cut: %d vs %d", v, ref[v], gotVC[v])
		}
	}
	// Label propagation on a community graph must coarsen communities.
	labels := map[int32]bool{}
	for _, l := range ref {
		labels[l] = true
	}
	if len(labels) >= g.NumVertices()/2 {
		t.Errorf("CD found %d communities for %d vertices; no coarsening", len(labels), g.NumVertices())
	}
}

func alsRMSE(g *graph.Graph, numUsers int, values [][]float64) float64 {
	var se float64
	var n int
	for _, e := range g.Edges() {
		if int(e.Src) >= numUsers { // count each rating once (user->item)
			continue
		}
		var dot float64
		for i := range values[e.Src] {
			dot += values[e.Src][i] * values[e.Dst][i]
		}
		d := dot - e.Weight
		se += d * d
		n++
	}
	return math.Sqrt(se / float64(n))
}

func TestALSReducesRMSE(t *testing.T) {
	g, err := datasets.Load("syn-gl")
	if err != nil {
		t.Fatal(err)
	}
	const numUsers = 7000
	prog := algorithms.NewALS(numUsers, 8, 0.05)
	run := func(iters int) [][]float64 {
		cfg := baseConfig(core.EdgeCutMode, 4, iters)
		cl, err := core.NewCluster[[]float64, []float64](cfg, g, prog)
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Values
	}
	early := alsRMSE(g, numUsers, run(2))
	late := alsRMSE(g, numUsers, run(8))
	if !(late < early) {
		t.Errorf("ALS RMSE did not improve: %v -> %v", early, late)
	}
	if late > 1.2 {
		t.Errorf("ALS final RMSE %v implausibly high", late)
	}
}

func TestSimulatedTimeAdvances(t *testing.T) {
	g := datasets.Tiny(300, 1500, 41)
	res := runPageRank(t, baseConfig(core.EdgeCutMode, 4, 5), g)
	if res.SimSeconds <= 0 || res.AvgIterSeconds <= 0 {
		t.Errorf("sim time not accounted: total %v avg %v", res.SimSeconds, res.AvgIterSeconds)
	}
	if len(res.Trace) != 5 {
		t.Errorf("expected 5 iteration trace events, got %d", len(res.Trace))
	}
}

func TestMemoryAccounting(t *testing.T) {
	g := datasets.Tiny(300, 1500, 42)
	cfg := core.DefaultConfig(core.EdgeCutMode, 4)
	cfg.MaxIter = 2
	res := runPageRank(t, cfg, g)
	if res.TotalMemory <= 0 || res.MaxMemory <= 0 {
		t.Error("memory accounting missing")
	}
	if res.MaxMemory > res.TotalMemory {
		t.Error("max per-node memory exceeds total")
	}
	// FT/2 must use more memory than FT/1.
	cfg2 := cfg
	cfg2.FT.K = 2
	res2 := runPageRank(t, cfg2, g)
	if res2.TotalMemory <= res.TotalMemory {
		t.Errorf("FT/2 memory %d not above FT/1's %d", res2.TotalMemory, res.TotalMemory)
	}
}

func TestConfigValidation(t *testing.T) {
	g := datasets.Tiny(50, 200, 43)
	bad := []func(*core.Config){
		func(c *core.Config) { c.NumNodes = 0 },
		func(c *core.Config) { c.MaxIter = 0 },
		func(c *core.Config) { c.Partitioner = core.PartRandom }, // edge-cut + vertex partitioner
		func(c *core.Config) { c.FT.K = 0 },
		func(c *core.Config) { c.FT.K = 4 }, // >= NumNodes
		func(c *core.Config) { c.Recovery = core.RecoverCheckpoint },
		func(c *core.Config) {
			c.Failures = []core.FailureSpec{{Iteration: 99, Phase: core.FailBeforeBarrier, Nodes: []int{1}}}
		},
		func(c *core.Config) {
			c.Failures = []core.FailureSpec{{Iteration: 1, Nodes: []int{1}}} // no phase
		},
		func(c *core.Config) {
			c.FT = core.FTConfig{}
			c.Recovery = core.RecoverRebirth
		},
	}
	for i, mutate := range bad {
		cfg := core.DefaultConfig(core.EdgeCutMode, 4)
		cfg.MaxIter = 3
		mutate(&cfg)
		if _, err := core.NewCluster[float64, float64](cfg, g, algorithms.NewPageRank(g.NumVertices())); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestSelfishOptRequiresAlwaysActive(t *testing.T) {
	// A program that claims selfish recompute but is not always-active must
	// be rejected; SSSP legitimately reports CanRecomputeSelfish=false, so
	// build a contrived wrapper via config instead: selfish opt with SSSP
	// is simply ineffective, not an error.
	g := datasets.Tiny(50, 200, 44)
	cfg := core.DefaultConfig(core.EdgeCutMode, 4)
	cfg.MaxIter = 3
	if _, err := core.NewCluster[float64, float64](cfg, g, algorithms.NewSSSP(0)); err != nil {
		t.Fatalf("SSSP with selfish opt configured should load (opt ignored): %v", err)
	}
}
