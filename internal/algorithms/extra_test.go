package algorithms

import (
	"testing"

	"imitator/internal/core"
	"imitator/internal/graph"
)

func TestCCApply(t *testing.T) {
	c := NewCC()
	if v, act := c.Apply(1, core.VertexInfo{}, 5, 3, true, 0); v != 3 || !act {
		t.Errorf("improving label = %v, %v", v, act)
	}
	if v, act := c.Apply(1, core.VertexInfo{}, 3, 5, true, 0); v != 3 || act {
		t.Errorf("non-improving label = %v, %v", v, act)
	}
	if v, act := c.Apply(1, core.VertexInfo{}, 3, 0, false, 0); v != 3 || act {
		t.Errorf("no-acc = %v, %v", v, act)
	}
	if c.Merge(7, 2) != 2 {
		t.Error("Merge should take min")
	}
	if v, _ := c.Init(9, core.VertexInfo{}); v != 9 {
		t.Error("Init should label with own id")
	}
}

func TestKCoreLifecycle(t *testing.T) {
	p := NewKCore(2)
	// Below threshold: dies and scatters.
	if v, act := p.Apply(1, core.VertexInfo{}, 5, 1, true, 0); v != Dead || !act {
		t.Errorf("starving vertex = %v, %v", v, act)
	}
	// Dead stays dead quietly.
	if v, act := p.Apply(1, core.VertexInfo{}, Dead, 9, true, 1); v != Dead || act {
		t.Errorf("dead vertex = %v, %v", v, act)
	}
	// Healthy with changed support: update, no scatter.
	if v, act := p.Apply(1, core.VertexInfo{}, 5, 3, true, 0); v != 3 || act {
		t.Errorf("healthy vertex = %v, %v", v, act)
	}
	// Unchanged support: no-op.
	if v, act := p.Apply(1, core.VertexInfo{}, 3, 3, true, 0); v != 3 || act {
		t.Errorf("stable vertex = %v, %v", v, act)
	}
	// No gather at all counts as zero support.
	if v, act := p.Apply(1, core.VertexInfo{}, 3, 0, false, 0); v != Dead || !act {
		t.Errorf("isolated vertex = %v, %v", v, act)
	}
}

func TestKCoreGather(t *testing.T) {
	p := NewKCore(2)
	if p.Gather(graph.Edge{}, Dead, core.VertexInfo{}) != 0 {
		t.Error("dead neighbor should contribute 0")
	}
	if p.Gather(graph.Edge{}, 7, core.VertexInfo{}) != 1 {
		t.Error("live neighbor should contribute 1")
	}
}
