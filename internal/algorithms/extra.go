package algorithms

import (
	"imitator/internal/core"
	"imitator/internal/graph"
)

// CC computes connected components by min-label propagation: every vertex
// adopts the smallest label among itself and its in-neighbors and scatters
// on change. On symmetric graphs this yields connected components; on
// directed graphs, the in-reachability closure of label minima.
type CC struct{}

// NewCC returns a connected-components program.
func NewCC() *CC { return &CC{} }

var _ core.Program[int32, int32] = (*CC)(nil)

// Name implements core.Program.
func (c *CC) Name() string { return "cc" }

// AlwaysActive implements core.Program.
func (c *CC) AlwaysActive() bool { return false }

// CanRecomputeSelfish implements core.Program: the running minimum is
// cumulative state.
func (c *CC) CanRecomputeSelfish() bool { return false }

// Init implements core.Program.
func (c *CC) Init(v graph.VertexID, _ core.VertexInfo) (int32, bool) { return int32(v), true }

// Gather implements core.Program.
func (c *CC) Gather(_ graph.Edge, src int32, _ core.VertexInfo) int32 { return src }

// Merge implements core.Program.
func (c *CC) Merge(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

// Apply implements core.Program.
func (c *CC) Apply(_ graph.VertexID, _ core.VertexInfo, old int32, acc int32, hasAcc bool, _ int) (int32, bool) {
	if !hasAcc || acc >= old {
		return old, false
	}
	return acc, true
}

// ValueCodec implements core.Program.
func (c *CC) ValueCodec() core.Codec[int32] { return core.Int32Codec{} }

// AccCodec implements core.Program.
func (c *CC) AccCodec() core.Codec[int32] { return core.Int32Codec{} }

// KCore computes the k-core: vertices die (value -1) when fewer than K
// in-neighbors remain alive, cascading until fixpoint. On symmetric graphs
// the survivors are exactly the k-core. A live vertex's value is its
// current count of live in-neighbors.
type KCore struct {
	K int
}

// NewKCore returns a k-core decomposition program.
func NewKCore(k int) *KCore { return &KCore{K: k} }

// Dead marks an eliminated vertex.
const Dead int32 = -1

var _ core.Program[int32, int32] = (*KCore)(nil)

// Name implements core.Program.
func (p *KCore) Name() string { return "kcore" }

// AlwaysActive implements core.Program.
func (p *KCore) AlwaysActive() bool { return false }

// CanRecomputeSelfish implements core.Program.
func (p *KCore) CanRecomputeSelfish() bool { return false }

// Init implements core.Program: everyone starts alive and checks itself in
// the first superstep.
func (p *KCore) Init(_ graph.VertexID, info core.VertexInfo) (int32, bool) {
	return info.InDeg, true
}

// Gather implements core.Program: live in-neighbors count 1.
func (p *KCore) Gather(_ graph.Edge, src int32, _ core.VertexInfo) int32 {
	if src == Dead {
		return 0
	}
	return 1
}

// Merge implements core.Program.
func (p *KCore) Merge(a, b int32) int32 { return a + b }

// Apply implements core.Program: die (and scatter) when support drops
// below K.
func (p *KCore) Apply(_ graph.VertexID, _ core.VertexInfo, old int32, acc int32, hasAcc bool, _ int) (int32, bool) {
	if old == Dead {
		return Dead, false
	}
	live := int32(0)
	if hasAcc {
		live = acc
	}
	if live < int32(p.K) {
		return Dead, true // dying changes neighbors' support
	}
	if live == old {
		return old, false
	}
	return live, false
}

// ValueCodec implements core.Program.
func (p *KCore) ValueCodec() core.Codec[int32] { return core.Int32Codec{} }

// AccCodec implements core.Program.
func (p *KCore) AccCodec() core.Codec[int32] { return core.Int32Codec{} }
