// Package algorithms implements the paper's four evaluation workloads as
// core.Program vertex programs: PageRank, Single-Source Shortest Path,
// Community Detection (label propagation) and Alternating Least Squares.
package algorithms

import (
	"math"

	"imitator/internal/core"
	"imitator/internal/graph"
	"imitator/internal/linalg"
	"imitator/internal/rng"
)

// PageRank is the classic damped PageRank, run for a fixed number of
// iterations with every vertex active (the paper's main workload).
type PageRank struct {
	NumVertices int
	Damping     float64
}

// NewPageRank returns a PageRank program with damping 0.85.
func NewPageRank(numVertices int) *PageRank {
	return &PageRank{NumVertices: numVertices, Damping: 0.85}
}

var _ core.Program[float64, float64] = (*PageRank)(nil)

// Name implements core.Program.
func (p *PageRank) Name() string { return "pagerank" }

// AlwaysActive implements core.Program.
func (p *PageRank) AlwaysActive() bool { return true }

// CanRecomputeSelfish implements core.Program: Apply ignores the old value,
// so a selfish vertex's rank is recomputable from its in-neighbors (§4.4).
func (p *PageRank) CanRecomputeSelfish() bool { return true }

// Init implements core.Program.
func (p *PageRank) Init(graph.VertexID, core.VertexInfo) (float64, bool) { return 1.0, true }

// Gather implements core.Program: src contributes rank/out-degree.
func (p *PageRank) Gather(_ graph.Edge, src float64, srcInfo core.VertexInfo) float64 {
	if srcInfo.OutDeg == 0 {
		return 0
	}
	return src / float64(srcInfo.OutDeg)
}

// Merge implements core.Program.
func (p *PageRank) Merge(a, b float64) float64 { return a + b }

// Apply implements core.Program.
func (p *PageRank) Apply(_ graph.VertexID, _ core.VertexInfo, _ float64, acc float64, hasAcc bool, _ int) (float64, bool) {
	sum := 0.0
	if hasAcc {
		sum = acc
	}
	return (1 - p.Damping) + p.Damping*sum, true
}

// ValueCodec implements core.Program.
func (p *PageRank) ValueCodec() core.Codec[float64] { return core.Float64Codec{} }

// AccCodec implements core.Program.
func (p *PageRank) AccCodec() core.Codec[float64] { return core.Float64Codec{} }

// SSSP computes single-source shortest paths over weighted edges with
// activation-driven scheduling: a vertex recomputes only when a neighbor's
// distance improved.
type SSSP struct {
	Source graph.VertexID
}

// NewSSSP returns an SSSP program from the given source.
func NewSSSP(source graph.VertexID) *SSSP { return &SSSP{Source: source} }

var _ core.Program[float64, float64] = (*SSSP)(nil)

// Name implements core.Program.
func (s *SSSP) Name() string { return "sssp" }

// AlwaysActive implements core.Program.
func (s *SSSP) AlwaysActive() bool { return false }

// CanRecomputeSelfish implements core.Program: distances are cumulative
// state that cannot be recomputed in one step, so the optimization is off.
func (s *SSSP) CanRecomputeSelfish() bool { return false }

// Init implements core.Program: everyone starts active so the first
// superstep relaxes the source's out-edges.
func (s *SSSP) Init(v graph.VertexID, _ core.VertexInfo) (float64, bool) {
	if v == s.Source {
		return 0, true
	}
	return math.Inf(1), true
}

// Gather implements core.Program: candidate distance through this in-edge.
func (s *SSSP) Gather(e graph.Edge, src float64, _ core.VertexInfo) float64 {
	return src + e.Weight
}

// Merge implements core.Program.
func (s *SSSP) Merge(a, b float64) float64 { return math.Min(a, b) }

// Apply implements core.Program: relax; scatter only on improvement.
func (s *SSSP) Apply(_ graph.VertexID, _ core.VertexInfo, old float64, acc float64, hasAcc bool, _ int) (float64, bool) {
	if !hasAcc || acc >= old {
		return old, false
	}
	return acc, true
}

// ValueCodec implements core.Program.
func (s *SSSP) ValueCodec() core.Codec[float64] { return core.Float64Codec{} }

// AccCodec implements core.Program.
func (s *SSSP) AccCodec() core.Codec[float64] { return core.Float64Codec{} }

// CD is community detection by synchronous label propagation: each vertex
// adopts the most frequent label among its in-neighbors (ties break toward
// the smaller label) and scatters only when its label changed.
type CD struct{}

// NewCD returns a community-detection program.
func NewCD() *CD { return &CD{} }

var _ core.Program[int32, []core.LabelCount] = (*CD)(nil)

// Name implements core.Program.
func (c *CD) Name() string { return "cd" }

// AlwaysActive implements core.Program.
func (c *CD) AlwaysActive() bool { return false }

// CanRecomputeSelfish implements core.Program: labels of inactive vertices
// are sticky state, so recomputation is unsound.
func (c *CD) CanRecomputeSelfish() bool { return false }

// Init implements core.Program: every vertex starts in its own community.
func (c *CD) Init(v graph.VertexID, _ core.VertexInfo) (int32, bool) { return int32(v), true }

// Gather implements core.Program.
func (c *CD) Gather(e graph.Edge, src int32, _ core.VertexInfo) []core.LabelCount {
	return []core.LabelCount{{Label: src, Count: e.Weight}}
}

// Merge implements core.Program.
func (c *CD) Merge(a, b []core.LabelCount) []core.LabelCount {
	return core.MergeLabelCounts(a, b)
}

// Apply implements core.Program.
func (c *CD) Apply(_ graph.VertexID, _ core.VertexInfo, old int32, acc []core.LabelCount, hasAcc bool, _ int) (int32, bool) {
	if !hasAcc || len(acc) == 0 {
		return old, false
	}
	best := acc[0]
	for _, lc := range acc[1:] {
		if lc.Count > best.Count || (lc.Count == best.Count && lc.Label < best.Label) {
			best = lc
		}
	}
	if best.Label == old {
		return old, false
	}
	return best.Label, true
}

// ValueCodec implements core.Program.
func (c *CD) ValueCodec() core.Codec[int32] { return core.Int32Codec{} }

// AccCodec implements core.Program.
func (c *CD) AccCodec() core.Codec[[]core.LabelCount] { return core.LabelCountCodec{} }

// ALS is alternating least squares for collaborative filtering on a
// bipartite user-item rating graph (vertices [0, NumUsers) are users). On
// even iterations users re-solve their latent factors against fixed item
// factors, on odd iterations the items move.
type ALS struct {
	NumUsers int
	Dim      int
	Lambda   float64
	Seed     uint64
}

// NewALS returns an ALS program with latent dimension dim.
func NewALS(numUsers, dim int, lambda float64) *ALS {
	return &ALS{NumUsers: numUsers, Dim: dim, Lambda: lambda, Seed: 0xa15}
}

var _ core.Program[[]float64, []float64] = (*ALS)(nil)

// Name implements core.Program.
func (a *ALS) Name() string { return "als" }

// AlwaysActive implements core.Program.
func (a *ALS) AlwaysActive() bool { return true }

// CanRecomputeSelfish implements core.Program: the solve ignores the old
// factor vector.
func (a *ALS) CanRecomputeSelfish() bool { return true }

// Init implements core.Program: deterministic pseudo-random factors in
// [0, 1), identical on every node.
func (a *ALS) Init(v graph.VertexID, _ core.VertexInfo) ([]float64, bool) {
	vec := make([]float64, a.Dim)
	for i := range vec {
		h := rng.Hash2(a.Seed+uint64(i), uint64(v))
		vec[i] = float64(h>>11) / (1 << 53)
	}
	return vec, true
}

// accLen is d*d (normal matrix) + d (rhs) + 1 (rating count).
func (a *ALS) accLen() int { return a.Dim*a.Dim + a.Dim + 1 }

// Gather implements core.Program: accumulate q qᵀ, r·q and the rating
// count for the ridge term.
func (a *ALS) Gather(e graph.Edge, src []float64, _ core.VertexInfo) []float64 {
	d := a.Dim
	acc := make([]float64, a.accLen())
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			acc[i*d+j] = src[i] * src[j]
		}
	}
	for i := 0; i < d; i++ {
		acc[d*d+i] = e.Weight * src[i]
	}
	acc[d*d+d] = 1
	return acc
}

// Merge implements core.Program.
func (a *ALS) Merge(x, y []float64) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] + y[i]
	}
	return out
}

// Apply implements core.Program: on its side's turn, solve the regularized
// normal equations; otherwise keep the factors.
func (a *ALS) Apply(v graph.VertexID, _ core.VertexInfo, old []float64, acc []float64, hasAcc bool, iter int) ([]float64, bool) {
	isUser := int(v) < a.NumUsers
	usersTurn := iter%2 == 0
	if isUser != usersTurn || !hasAcc {
		return old, true
	}
	d := a.Dim
	m := linalg.NewDense(d)
	copy(m.Data, acc[:d*d])
	n := acc[d*d+d]
	m.AddDiag(a.Lambda * n)
	b := acc[d*d : d*d+d]
	x, err := linalg.SolveSPD(m, b)
	if err != nil {
		if x, err = linalg.Solve(m, b); err != nil {
			return old, true
		}
	}
	return x, true
}

// ValueCodec implements core.Program.
func (a *ALS) ValueCodec() core.Codec[[]float64] { return core.VecCodec{Dim: a.Dim} }

// AccCodec implements core.Program.
func (a *ALS) AccCodec() core.Codec[[]float64] { return core.VecCodec{Dim: a.accLen()} }
