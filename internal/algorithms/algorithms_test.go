package algorithms

import (
	"math"
	"reflect"
	"testing"

	"imitator/internal/core"
	"imitator/internal/graph"
)

func TestPageRankGather(t *testing.T) {
	p := NewPageRank(100)
	src, deg := 0.6, float64(3) // runtime division, matching Gather exactly
	got := p.Gather(graph.Edge{Src: 1, Dst: 2}, src, core.VertexInfo{OutDeg: 3})
	if got != src/deg {
		t.Errorf("Gather = %v, want %v", got, src/deg)
	}
	if p.Gather(graph.Edge{}, 0.6, core.VertexInfo{OutDeg: 0}) != 0 {
		t.Error("zero out-degree source should contribute 0")
	}
}

func TestPageRankApply(t *testing.T) {
	p := NewPageRank(100)
	v, act := p.Apply(1, core.VertexInfo{}, 1.0, 2.0, true, 0)
	if !act {
		t.Error("PageRank should always scatter")
	}
	want := (1 - 0.85) + 0.85*2.0
	if v != want {
		t.Errorf("Apply = %v, want %v", v, want)
	}
	one, damp := 1.0, 0.85
	v, _ = p.Apply(1, core.VertexInfo{}, 1.0, 0, false, 0)
	if v != one-damp {
		t.Errorf("no-acc Apply = %v, want %v", v, one-damp)
	}
}

func TestPageRankFlags(t *testing.T) {
	p := NewPageRank(10)
	if !p.AlwaysActive() || !p.CanRecomputeSelfish() {
		t.Error("PageRank should be always-active and selfish-recomputable")
	}
	if _, act := p.Init(3, core.VertexInfo{}); !act {
		t.Error("Init should activate")
	}
}

func TestSSSPInit(t *testing.T) {
	s := NewSSSP(5)
	if d, act := s.Init(5, core.VertexInfo{}); d != 0 || !act {
		t.Errorf("source Init = %v, %v", d, act)
	}
	if d, act := s.Init(6, core.VertexInfo{}); !math.IsInf(d, 1) || !act {
		t.Errorf("non-source Init = %v, %v", d, act)
	}
}

func TestSSSPApplyRelaxation(t *testing.T) {
	s := NewSSSP(0)
	if v, act := s.Apply(1, core.VertexInfo{}, 10, 7, true, 0); v != 7 || !act {
		t.Errorf("improving relax = %v, %v", v, act)
	}
	if v, act := s.Apply(1, core.VertexInfo{}, 5, 7, true, 0); v != 5 || act {
		t.Errorf("non-improving relax = %v, %v", v, act)
	}
	if v, act := s.Apply(1, core.VertexInfo{}, 5, 0, false, 0); v != 5 || act {
		t.Errorf("no-acc relax = %v, %v", v, act)
	}
}

func TestSSSPGatherMerge(t *testing.T) {
	s := NewSSSP(0)
	if got := s.Gather(graph.Edge{Weight: 2.5}, 1.5, core.VertexInfo{}); got != 4 {
		t.Errorf("Gather = %v, want 4", got)
	}
	if s.Merge(3, 2) != 2 {
		t.Error("Merge should take the min")
	}
	if s.CanRecomputeSelfish() {
		t.Error("SSSP must not claim selfish recomputation")
	}
}

func TestCDApplyPicksMode(t *testing.T) {
	c := NewCD()
	acc := []core.LabelCount{{Label: 2, Count: 3}, {Label: 5, Count: 4}, {Label: 9, Count: 1}}
	if v, act := c.Apply(1, core.VertexInfo{}, 1, acc, true, 0); v != 5 || !act {
		t.Errorf("Apply = %v, %v, want 5, true", v, act)
	}
	// Tie breaks to the smaller label.
	tie := []core.LabelCount{{Label: 2, Count: 4}, {Label: 5, Count: 4}}
	if v, _ := c.Apply(1, core.VertexInfo{}, 1, tie, true, 0); v != 2 {
		t.Errorf("tie Apply = %v, want 2", v)
	}
	// Unchanged label should not scatter.
	if _, act := c.Apply(1, core.VertexInfo{}, 5, acc, true, 0); act {
		t.Error("unchanged label must not scatter")
	}
	if v, act := c.Apply(1, core.VertexInfo{}, 7, nil, false, 0); v != 7 || act {
		t.Error("no-acc Apply should keep the label quietly")
	}
}

func TestCDGather(t *testing.T) {
	c := NewCD()
	got := c.Gather(graph.Edge{Weight: 2}, 9, core.VertexInfo{})
	if !reflect.DeepEqual(got, []core.LabelCount{{Label: 9, Count: 2}}) {
		t.Errorf("Gather = %v", got)
	}
}

func TestALSInitDeterministicAndSpread(t *testing.T) {
	a := NewALS(10, 4, 0.1)
	v1, act := a.Init(3, core.VertexInfo{})
	v2, _ := a.Init(3, core.VertexInfo{})
	if !act {
		t.Error("ALS vertices start active")
	}
	if !reflect.DeepEqual(v1, v2) {
		t.Error("Init not deterministic")
	}
	v3, _ := a.Init(4, core.VertexInfo{})
	if reflect.DeepEqual(v1, v3) {
		t.Error("different vertices should differ")
	}
	for _, f := range v1 {
		if f < 0 || f >= 1 {
			t.Errorf("factor %v outside [0,1)", f)
		}
	}
}

func TestALSGatherAccumulates(t *testing.T) {
	a := NewALS(10, 2, 0.1)
	q := []float64{2, 3}
	acc := a.Gather(graph.Edge{Weight: 4}, q, core.VertexInfo{})
	// q q^T = [4 6; 6 9]; b = 4*q = [8, 12]; count 1.
	want := []float64{4, 6, 6, 9, 8, 12, 1}
	if !reflect.DeepEqual(acc, want) {
		t.Errorf("Gather = %v, want %v", acc, want)
	}
	merged := a.Merge(acc, acc)
	if merged[0] != 8 || merged[6] != 2 {
		t.Errorf("Merge = %v", merged)
	}
}

func TestALSApplyAlternates(t *testing.T) {
	a := NewALS(10, 2, 0.1)
	old := []float64{0.5, 0.5}
	acc := a.Gather(graph.Edge{Weight: 4}, []float64{2, 3}, core.VertexInfo{})
	// Vertex 3 is a user; users move on even iterations.
	moved, act := a.Apply(3, core.VertexInfo{}, old, acc, true, 0)
	if !act {
		t.Error("ALS always scatters")
	}
	if reflect.DeepEqual(moved, old) {
		t.Error("user should move on even iteration")
	}
	kept, _ := a.Apply(3, core.VertexInfo{}, old, acc, true, 1)
	if !reflect.DeepEqual(kept, old) {
		t.Error("user should hold on odd iteration")
	}
	// Vertex 15 is an item; items move on odd iterations.
	kept, _ = a.Apply(15, core.VertexInfo{}, old, acc, true, 0)
	if !reflect.DeepEqual(kept, old) {
		t.Error("item should hold on even iteration")
	}
}

func TestALSApplySolvesNormalEquations(t *testing.T) {
	a := NewALS(10, 2, 0.0)
	// Single rating r=4 against q=(1,0): solution should satisfy x[0]=4
	// (with lambda 0, x[1] unconstrained -> singular; expect fallback to
	// keep old).
	acc := a.Gather(graph.Edge{Weight: 4}, []float64{1, 0}, core.VertexInfo{})
	old := []float64{0.1, 0.2}
	got, _ := a.Apply(0, core.VertexInfo{}, old, acc, true, 0)
	if !reflect.DeepEqual(got, old) {
		// If it solved despite singularity, the first factor must fit.
		if math.Abs(got[0]-4) > 1e-9 {
			t.Errorf("Apply = %v", got)
		}
	}
	// With ridge it must be solvable.
	a2 := NewALS(10, 2, 0.5)
	got2, _ := a2.Apply(0, core.VertexInfo{}, old, acc, true, 0)
	if reflect.DeepEqual(got2, old) {
		t.Error("ridge-regularized solve failed")
	}
	// (q q^T + 0.5 I) x = r q with q=(1,0): x = (4/1.5, 0).
	if math.Abs(got2[0]-4/1.5) > 1e-9 || math.Abs(got2[1]) > 1e-9 {
		t.Errorf("solution = %v, want (%v, 0)", got2, 4/1.5)
	}
}

func TestCodecsMatchPrograms(t *testing.T) {
	a := NewALS(10, 3, 0.1)
	v, _ := a.Init(1, core.VertexInfo{})
	buf := a.ValueCodec().Append(nil, v)
	got, rest, err := a.ValueCodec().Read(buf)
	if err != nil || len(rest) != 0 || !reflect.DeepEqual(got, v) {
		t.Error("ALS value codec round-trip failed")
	}
	acc := a.Gather(graph.Edge{Weight: 1}, v, core.VertexInfo{})
	buf = a.AccCodec().Append(nil, acc)
	gotAcc, _, err := a.AccCodec().Read(buf)
	if err != nil || !reflect.DeepEqual(gotAcc, acc) {
		t.Error("ALS acc codec round-trip failed")
	}
}
