package netsim

import (
	"testing"

	"imitator/internal/costmodel"
)

func newLossyNet(t *testing.T, n int, seed uint64) *Network {
	t.Helper()
	net := newNet(t, n)
	net.EnableOmission(seed)
	return net
}

func checkErr(t *testing.T, net *Network) {
	t.Helper()
	if err := net.Err(); err != nil {
		t.Fatalf("backend error leaked: %v", err)
	}
}

// sendRound pushes count frames 0->1 and finishes the round.
func sendRound(net *Network, count int) {
	for i := 0; i < count; i++ {
		net.Send(0, 1, KindSync, []byte{byte(i)})
	}
	net.FinishRound()
}

func TestLossyDropRetransmitsInOrder(t *testing.T) {
	net := newLossyNet(t, 2, 1)
	net.SetDropRate(0, 1, 0.5)
	const frames = 50
	sendRound(net, frames)
	msgs := net.Receive(1)
	if len(msgs) != frames {
		t.Fatalf("delivered %d frames, want %d", len(msgs), frames)
	}
	for i, m := range msgs {
		if len(m.Payload) != 1 || m.Payload[0] != byte(i) {
			t.Fatalf("frame %d out of order: payload %v", i, m.Payload)
		}
	}
	st, _ := net.OmissionStats()
	if st.Retransmits == 0 {
		t.Fatal("50% drop over 50 frames produced no retransmits")
	}
	if st.RetransmitBytes == 0 || st.AckBytes == 0 || st.BackoffSeconds == 0 {
		t.Fatalf("retransmission cost not charged: %+v", st)
	}
	checkErr(t, net)
}

func TestLossyDuplicatesDeduplicated(t *testing.T) {
	net := newLossyNet(t, 2, 2)
	net.SetDupRate(0, 1, 1) // every frame arrives twice
	const frames = 20
	sendRound(net, frames)
	msgs := net.Receive(1)
	if len(msgs) != frames {
		t.Fatalf("delivered %d frames, want %d after dedup", len(msgs), frames)
	}
	st, _ := net.OmissionStats()
	if st.DuplicatesDelivered != frames || st.DuplicatesDropped != frames {
		t.Fatalf("dup accounting off: %+v", st)
	}
	checkErr(t, net)
}

func TestLossyReorderRestoredBySequence(t *testing.T) {
	net := newLossyNet(t, 2, 3)
	net.SetReorderRate(0, 1, 0.5)
	const frames = 40
	sendRound(net, frames)
	msgs := net.Receive(1)
	if len(msgs) != frames {
		t.Fatalf("delivered %d frames, want %d", len(msgs), frames)
	}
	for i, m := range msgs {
		if m.Payload[0] != byte(i) {
			t.Fatalf("frame %d delivered out of order after reorder recovery", i)
		}
	}
	st, _ := net.OmissionStats()
	if st.Reordered == 0 {
		t.Fatal("50% reorder over 40 frames displaced nothing")
	}
	checkErr(t, net)
}

// TestLossyDeterministicReplay: same seed, same traffic, bit-identical
// stats; a different seed draws different fates.
func TestLossyDeterministicReplay(t *testing.T) {
	run := func(seed uint64) OmissionStats {
		net := newLossyNet(t, 3, seed)
		net.SetDropRate(0, 1, 0.4)
		net.SetDupRate(1, 2, 0.4)
		net.SetReorderRate(2, 0, 0.4)
		for round := 0; round < 5; round++ {
			for i := 0; i < 10; i++ {
				net.Send(0, 1, KindSync, []byte{byte(i)})
				net.Send(1, 2, KindGather, []byte{byte(i)})
				net.Send(2, 0, KindSync, []byte{byte(i)})
			}
			net.FinishRound()
			net.Receive(0)
			net.Receive(1)
			net.Receive(2)
		}
		checkErr(t, net)
		st, _ := net.OmissionStats()
		return st
	}
	a, b := run(7), run(7)
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	if c := run(8); c == a {
		t.Fatalf("different seed replayed identical fates: %+v", a)
	}
}

// TestLossyDrainSemantics is the SetFailed/Drop satellite: with
// retransmission queues and in-flight duplicates pending, failing a node
// must not ghost-redeliver anything after revival, and no backend error
// may leak.
func TestLossyDrainSemantics(t *testing.T) {
	net := newLossyNet(t, 3, 4)
	net.SetDropRate(0, 1, 0.5)
	net.SetDupRate(2, 1, 1)

	// Queue traffic toward node 1 and from node 1, then fail it before
	// the round closes: its unsent queue must die with it, and frames
	// addressed to it must be discarded, not delivered to the next life.
	net.Send(0, 1, KindSync, []byte("a"))
	net.Send(2, 1, KindSync, []byte("b"))
	net.Send(1, 2, KindSync, []byte("c"))
	net.SetFailed(1, true)
	net.FinishRound()
	if msgs := net.Receive(2); len(msgs) != 0 {
		t.Fatalf("failed node's queued frames ghost-delivered: %d", len(msgs))
	}
	st, _ := net.OmissionStats()
	if st.DroppedDead == 0 {
		t.Fatalf("frames to the dead node not accounted: %+v", st)
	}

	// Revive the slot (rebirth): drains run, a new epoch is stamped.
	net.SetFailed(1, false)
	net.SetEpoch(1, 2)
	if msgs := net.Receive(1); len(msgs) != 0 {
		t.Fatalf("stale frames survived revival drain: %d", len(msgs))
	}

	// Fresh traffic flows on reset sequence numbers in both directions.
	net.Send(0, 1, KindSync, []byte("x"))
	net.Send(1, 2, KindSync, []byte("y"))
	net.FinishRound()
	if msgs := net.Receive(1); len(msgs) != 1 || string(msgs[0].Payload) != "x" {
		t.Fatalf("revived node receive = %v", msgs)
	}
	if msgs := net.Receive(2); len(msgs) != 1 || string(msgs[0].Payload) != "y" {
		t.Fatalf("revived node send = %v", msgs)
	}
	checkErr(t, net)
}

// TestLossyNetworkDropDiscardsRound covers Network.Drop (rollback): an
// uncollected round disappears without corrupting later sequence state.
func TestLossyNetworkDropDiscardsRound(t *testing.T) {
	net := newLossyNet(t, 2, 5)
	net.SetDupRate(0, 1, 1) // in-flight duplicates pending at Drop time
	sendRound(net, 3)
	net.Drop(1) // rollback discards the arrived-but-unprocessed frames
	if msgs := net.Receive(1); len(msgs) != 0 {
		t.Fatalf("dropped round still delivered %d frames", len(msgs))
	}
	// The receiver never consumed those sequence numbers, so a fresh
	// incarnation handshake is NOT required: the next round's frames are
	// new sequences after the dropped ones and must still deliver.
	net.SetEpoch(1, 2)
	net.SetEpoch(1, 2) // idempotent re-stamp must not corrupt state
	sendRound(net, 2)
	if msgs := net.Receive(1); len(msgs) != 2 {
		t.Fatalf("post-drop round delivered %d frames, want 2", len(msgs))
	}
	checkErr(t, net)
}

// TestLossyPartitionParkAndFence: frames crossing a cut park in the
// cable; after the victim's slot is rebuilt under a new epoch and the
// partition heals, the parked frames are counted and dropped, never
// delivered.
func TestLossyPartitionParkAndFence(t *testing.T) {
	net := newLossyNet(t, 3, 6)
	net.Partition([]int{1})

	net.Send(1, 0, KindSync, []byte("stale"))
	net.Send(0, 1, KindSync, []byte("lost"))
	net.Send(0, 2, KindSync, []byte("fine"))
	net.FinishRound()
	if msgs := net.Receive(0); len(msgs) != 0 {
		t.Fatalf("cut link delivered %d frames", len(msgs))
	}
	if msgs := net.Receive(2); len(msgs) != 1 {
		t.Fatalf("uncut link delivered %d frames, want 1", len(msgs))
	}
	st, _ := net.OmissionStats()
	if st.Parked != 2 {
		t.Fatalf("parked %d frames, want 2", st.Parked)
	}

	// The victim is confirmed failed and its slot rebuilt: new epoch.
	net.SetFailed(1, true)
	net.SetFailed(1, false)
	net.SetEpoch(1, 2)

	// Heal: parked frames release and face the fence. The old
	// incarnation's frame to node 0 carries epoch 1 — fenced; the frame
	// addressed to the old incarnation of node 1 is fenced too.
	net.Heal([]int{1})
	net.FinishRound()
	if msgs := net.Receive(0); len(msgs) != 0 {
		t.Fatalf("stale-epoch frame delivered to node 0: %v", msgs)
	}
	if msgs := net.Receive(1); len(msgs) != 0 {
		t.Fatalf("stale-epoch frame delivered to revived node 1: %v", msgs)
	}
	st, _ = net.OmissionStats()
	if st.Released != 2 {
		t.Fatalf("released %d frames, want 2", st.Released)
	}
	if st.Fenced != 2 {
		t.Fatalf("fenced %d frames, want 2", st.Fenced)
	}
	checkErr(t, net)
}

// TestLossyZeroOverheadWhenDisabled: without EnableOmission the network
// must not charge a single extra byte — the acceptance criterion behind
// the BENCH_PR5 bit-identity check.
func TestLossyZeroOverheadWhenDisabled(t *testing.T) {
	plain := newNet(t, 2)
	plain.Send(0, 1, KindSync, []byte("abc"))
	costs, fabric := plain.FinishRound()
	if _, ok := plain.OmissionStats(); ok {
		t.Fatal("omission stats present without EnableOmission")
	}
	if plain.Epoch(0) != 1 {
		t.Fatal("default epoch must be 1")
	}

	lossy := newLossyNet(t, 2, 9) // installed but no faults set
	lossy.Send(0, 1, KindSync, []byte("abc"))
	lossyCosts, lossyFabric := lossy.FinishRound()
	// The envelope is honest overhead of running the reliable protocol;
	// with the layer merely installed the only delta is those 12 bytes.
	if lossyFabric <= fabric || lossyCosts[0] <= costs[0] {
		t.Fatal("installed layer should charge envelope bytes")
	}
	if msgs := lossy.Receive(1); len(msgs) != 1 || string(msgs[0].Payload) != "abc" {
		t.Fatalf("fault-free lossy delivery = %v", msgs)
	}
	checkErr(t, lossy)
}

func init() {
	// Guard against accidental params drift in these tests.
	if costmodel.Default().NetLatency <= 0 {
		panic("netsim tests assume positive latency")
	}
}
