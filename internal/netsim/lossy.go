// Omission-fault layer: a lossy Backend decorator plus the reliable
// delivery protocol that keeps the engine correct on top of it.
//
// The channel model drops, duplicates and reorders frames per directed
// link with installed probabilities, and can cut links entirely
// (partitions park frames "in the cable" until the partition heals).
// Every fate is drawn from a per-link RNG seeded from the chaos seed and
// the link endpoints, so a run replays bit-for-bit: same schedule + same
// seed means identical retransmit counts, simulated time and byte
// streams.
//
// Reliability is sender-driven and round-synchronous, matching the BSP
// shape of the engine: frames carry a transport.Envelope (per-link
// sequence number plus sender/receiver membership epochs), the sender
// retransmits a dropped frame until it traverses — charging every retry
// and a bounded exponential backoff through the cost model — and the
// receiver deduplicates by sequence number, restores FIFO order, and
// fences frames from or to stale incarnations of a node slot. The
// decorator is only installed when a schedule contains omission events,
// so the reliable fast path pays nothing.
package netsim

import (
	"fmt"
	"sort"
	"sync/atomic"

	"imitator/internal/rng"
	"imitator/internal/transport"
)

// maxRetxAttempts bounds the per-frame retransmission loop. With the
// validated drop-rate ceiling (0.9) the chance of hitting it is
// negligible; reaching it means a modeling bug, reported as a backend
// error rather than an infinite loop.
const maxRetxAttempts = 10000

// OmissionStats counts the omission layer's wire-level activity. All
// counters are cumulative over the run.
type OmissionStats struct {
	// Retransmits is the number of frame re-traversals after a loss.
	Retransmits int64
	// RetransmitBytes is the wire bytes of those re-traversals.
	RetransmitBytes int64
	// AckBytes is the wire bytes of cumulative acks on links that needed
	// at least one retransmission in a round (ack-free rounds piggyback).
	AckBytes int64
	// DuplicatesDelivered counts wire-level duplicate arrivals injected
	// by the channel; DuplicatesDropped counts the receiver-side dedup
	// hits that discarded them (and late retransmit copies).
	DuplicatesDelivered int64
	DuplicatesDropped   int64
	// Reordered counts frames the channel held back past a later frame.
	Reordered int64
	// Parked counts frames captured mid-flight by a partition; Released
	// counts parked frames delivered when the partition healed.
	Parked   int64
	Released int64
	// Fenced counts frames dropped by the split-brain fence: stamped
	// with a stale sender or receiver epoch, or sent by a slot that is
	// currently failed.
	Fenced int64
	// DroppedDead counts frames discarded because their receiver was
	// already confirmed failed at flush or release time.
	DroppedDead int64
	// DatagramsLost counts best-effort frames (SetDatagramKind) that the
	// channel lost for good: a drop fate, or a cut link. Datagrams are
	// never retransmitted or parked.
	DatagramsLost int64
	// BackoffSeconds is the simulated time spent in retransmission
	// backoff, summed over all senders.
	BackoffSeconds float64
}

// linkFaults holds one directed link's installed fault probabilities.
type linkFaults struct {
	drop, dup, reorder float64
}

func (f linkFaults) none() bool { return f.drop == 0 && f.dup == 0 && f.reorder == 0 }

// lossyFrame is one enveloped frame queued on a sender-side link.
type lossyFrame struct {
	kind Kind
	buf  []byte // envelope + payload copy, owned by the layer until delivery
}

// parkedFrame is a frame caught in the cable by a partition.
type parkedFrame struct {
	from, to int
	kind     Kind
	buf      []byte
}

// rxEntry is Collect's per-frame parse scratch.
type rxEntry struct {
	env     transport.Envelope
	kind    Kind
	payload []byte
}

// lossyStats is the internal, concurrency-safe form of OmissionStats.
// Collect runs concurrently across receivers, so counters it touches are
// atomics; BackoffSeconds is only written from the serial EndRound loop.
type lossyStats struct {
	retransmits   atomic.Int64
	retxBytes     atomic.Int64
	ackBytes      atomic.Int64
	dupDelivered  atomic.Int64
	dupDropped    atomic.Int64
	reordered     atomic.Int64
	parked        atomic.Int64
	released      atomic.Int64
	fenced        atomic.Int64
	droppedDead   atomic.Int64
	datagramsLost atomic.Int64
	backoffSecond float64
}

func (s *lossyStats) snapshot() OmissionStats {
	return OmissionStats{
		Retransmits:         s.retransmits.Load(),
		RetransmitBytes:     s.retxBytes.Load(),
		AckBytes:            s.ackBytes.Load(),
		DuplicatesDelivered: s.dupDelivered.Load(),
		DuplicatesDropped:   s.dupDropped.Load(),
		Reordered:           s.reordered.Load(),
		Parked:              s.parked.Load(),
		Released:            s.released.Load(),
		Fenced:              s.fenced.Load(),
		DroppedDead:         s.droppedDead.Load(),
		DatagramsLost:       s.datagramsLost.Load(),
		BackoffSeconds:      s.backoffSecond,
	}
}

// lossyBackend decorates a Backend with the lossy channel and the
// reliable-delivery protocol. It shares the Network's byte counters so
// retransmissions, duplicates and acks are priced like any traffic.
type lossyBackend struct {
	inner Backend
	net   *Network
	n     int
	seed  uint64

	faults map[[2]int]linkFaults
	rngs   map[[2]int]*rng.Source
	cut    map[[2]int]bool

	// epochs mirrors the coordinator's membership incarnations; frames
	// are stamped at Send and fenced at Collect against these.
	epochs []uint32

	// datagram, when non-zero, marks one message kind as best-effort: no
	// envelope, no retransmission, no parking — a drop fate or a cut link
	// loses the frame for good, and duplicates arrive twice. This is the
	// channel the gossip failure detector probes over: loss must be able
	// to delay detection, which the reliable protocol would mask.
	datagram Kind

	nextSeq  []uint32       // [from*n+to] next sequence to stamp
	recvNext []uint32       // [from*n+to] next sequence to deliver
	out      [][]lossyFrame // [from*n+to] frames queued this round
	parked   []parkedFrame

	delay  []float64   // per-sender backoff seconds, drained by FinishRound
	colOut [][]Message // per-receiver Collect scratch
	colEnt [][]rxEntry // per-receiver parse scratch

	stats lossyStats
}

func newLossyBackend(inner Backend, net *Network, seed uint64) *lossyBackend {
	n := net.numNodes
	b := &lossyBackend{
		inner:    inner,
		net:      net,
		n:        n,
		seed:     seed,
		faults:   make(map[[2]int]linkFaults),
		rngs:     make(map[[2]int]*rng.Source),
		cut:      make(map[[2]int]bool),
		epochs:   make([]uint32, n),
		nextSeq:  make([]uint32, n*n),
		recvNext: make([]uint32, n*n),
		out:      make([][]lossyFrame, n*n),
		delay:    make([]float64, n),
		colOut:   make([][]Message, n),
		colEnt:   make([][]rxEntry, n),
	}
	for i := range b.epochs {
		b.epochs[i] = 1
	}
	return b
}

// linkRNG returns the per-link fate stream, created on first use from
// the chaos seed and the link endpoints so every link draws an
// independent deterministic sequence.
func (b *lossyBackend) linkRNG(link [2]int) *rng.Source {
	if src, ok := b.rngs[link]; ok {
		return src
	}
	src := rng.New(b.seed ^ rng.Hash2(uint64(link[0])+1, uint64(link[1])+1))
	b.rngs[link] = src
	return src
}

// Send implements Backend: the payload is copied behind an envelope and
// queued on the sender-side link; the envelope's wire overhead is
// charged immediately (the base payload was charged by Network.Send).
// Self-sends bypass the protocol: a node cannot lose a frame to itself.
func (b *lossyBackend) Send(from, to int, kind Kind, payload []byte) error {
	if from == to {
		return b.inner.Send(from, to, kind, payload)
	}
	idx := from*b.n + to
	if kind != 0 && kind == b.datagram {
		// Best-effort frames skip the envelope and the sequence space: they
		// are allowed to vanish, so the receiver must not see a gap.
		b.out[idx] = append(b.out[idx], lossyFrame{kind: kind, buf: payload})
		return nil
	}
	env := transport.Envelope{
		Seq:         b.nextSeq[idx],
		SenderEpoch: b.epochs[from],
		RecvEpoch:   b.epochs[to],
	}
	b.nextSeq[idx]++
	buf := make([]byte, 0, transport.EnvelopeLen+len(payload))
	buf = transport.AppendEnvelope(buf, env)
	buf = append(buf, payload...)
	b.out[idx] = append(b.out[idx], lossyFrame{kind: kind, buf: buf})
	b.net.bytesOut[from].Add(transport.EnvelopeLen)
	b.net.bytesIn[to].Add(transport.EnvelopeLen)
	b.net.totalOut[from].Add(transport.EnvelopeLen)
	return nil
}

// EndRound implements Backend: every queued frame of every link from
// `from` meets its channel fate here — parked behind a partition,
// dropped and retransmitted with backoff, duplicated, or held back one
// slot — before the inner round closes. Runs serially per sender (the
// Network's FinishRound loop), which makes the RNG draw order, and with
// it every retransmit count, deterministic.
func (b *lossyBackend) EndRound(from int, aliveTo []bool) error {
	for to := 0; to < b.n; to++ {
		idx := from*b.n + to
		if len(b.out[idx]) > 0 {
			b.flushLink(from, to, aliveTo[to], b.out[idx])
			b.out[idx] = b.out[idx][:0]
		}
	}
	return b.inner.EndRound(from, aliveTo)
}

// flushLink transmits one link's round of frames in order.
func (b *lossyBackend) flushLink(from, to int, alive bool, q []lossyFrame) {
	link := [2]int{from, to}
	if b.cut[link] {
		for i := range q {
			if q[i].kind != 0 && q[i].kind == b.datagram {
				// A datagram in a cut cable is simply gone; parking and
				// re-releasing stale probes on heal would model TCP, not UDP.
				b.stats.datagramsLost.Add(1)
				continue
			}
			b.parked = append(b.parked, parkedFrame{from: from, to: to, kind: q[i].kind, buf: q[i].buf})
			b.stats.parked.Add(1)
		}
		return
	}
	if !alive {
		// The receiver was confirmed failed after these frames were
		// queued: fail-stop semantics, the frames go nowhere.
		b.stats.droppedDead.Add(int64(len(q)))
		return
	}
	f := b.faults[link]
	var src *rng.Source
	if !f.none() {
		src = b.linkRNG(link)
	}
	retx := false
	var held *lossyFrame
	for i := range q {
		fr := &q[i]
		if src != nil && f.reorder > 0 && held == nil && src.Float64() < f.reorder {
			held = fr
			b.stats.reordered.Add(1)
			continue
		}
		if b.transmit(from, to, fr, f, src) {
			retx = true
		}
		if held != nil {
			if b.transmit(from, to, held, f, src) {
				retx = true
			}
			held = nil
		}
	}
	if held != nil {
		if b.transmit(from, to, held, f, src) {
			retx = true
		}
	}
	if retx {
		// One cumulative ack frame back to the sender closes the round's
		// retransmission window; loss-free rounds piggyback their acks.
		const ackSize = int64(headerBytes + transport.EnvelopeLen)
		b.net.bytesOut[to].Add(ackSize)
		b.net.bytesIn[from].Add(ackSize)
		b.net.totalOut[to].Add(ackSize)
		b.stats.ackBytes.Add(ackSize)
	}
}

// transmit pushes one frame across the wire, retransmitting after every
// loss with bounded exponential backoff. Each retry re-charges the frame
// bytes; the first traversal was charged at Network.Send. Reports
// whether any retransmission happened.
func (b *lossyBackend) transmit(from, to int, fr *lossyFrame, f linkFaults, src *rng.Source) (retx bool) {
	size := int64(len(fr.buf)) + headerBytes
	if fr.kind != 0 && fr.kind == b.datagram {
		// Best-effort: one drop fate loses the frame outright — no
		// retransmission, no backoff. Duplication still applies below.
		if src != nil && f.drop > 0 && src.Float64() < f.drop {
			b.stats.datagramsLost.Add(1)
			return false
		}
		b.net.recordErr(b.inner.Send(from, to, fr.kind, fr.buf))
		if src != nil && f.dup > 0 && src.Float64() < f.dup {
			b.stats.dupDelivered.Add(1)
			b.net.bytesOut[from].Add(size)
			b.net.bytesIn[to].Add(size)
			b.net.totalOut[from].Add(size)
			b.net.recordErr(b.inner.Send(from, to, fr.kind, fr.buf))
		}
		return false
	}
	if src != nil && f.drop > 0 {
		attempt := 1
		for src.Float64() < f.drop {
			attempt++
			if attempt > maxRetxAttempts {
				b.net.recordErr(fmt.Errorf("netsim: link %d->%d lost a frame %d times in a row; drop rate too high", from, to, maxRetxAttempts))
				return retx
			}
			retx = true
			b.stats.retransmits.Add(1)
			b.stats.retxBytes.Add(size)
			b.net.bytesOut[from].Add(size)
			b.net.bytesIn[to].Add(size)
			b.net.totalOut[from].Add(size)
			d := b.net.params.RetxBackoff(attempt - 1)
			b.delay[from] += d
			b.stats.backoffSecond += d
		}
	}
	b.net.recordErr(b.inner.Send(from, to, fr.kind, fr.buf))
	if src != nil && f.dup > 0 && src.Float64() < f.dup {
		b.stats.dupDelivered.Add(1)
		b.net.bytesOut[from].Add(size)
		b.net.bytesIn[to].Add(size)
		b.net.totalOut[from].Add(size)
		b.net.recordErr(b.inner.Send(from, to, fr.kind, fr.buf))
	}
	return retx
}

// Collect implements Backend: parse envelopes, fence stale incarnations,
// deduplicate, and restore per-link FIFO order. Safe for one concurrent
// call per receiver: all state touched is indexed by `to`.
func (b *lossyBackend) Collect(to int, expectFrom []bool) ([]Message, error) {
	raw, err := b.inner.Collect(to, expectFrom)
	if err != nil {
		return nil, err
	}
	out := b.colOut[to][:0]
	for i := 0; i < len(raw); {
		from := raw[i].From
		j := i
		for j < len(raw) && raw[j].From == from {
			j++
		}
		if from == to {
			out = append(out, raw[i:j]...)
		} else {
			out = b.deliverRun(to, from, raw[i:j], out)
		}
		i = j
	}
	b.colOut[to] = out
	return out, nil
}

// deliverRun processes one sender's arrivals for receiver `to`.
func (b *lossyBackend) deliverRun(to, from int, run []Message, out []Message) []Message {
	entries := b.colEnt[to][:0]
	for _, m := range run {
		if m.Kind != 0 && m.Kind == b.datagram {
			// Datagrams carry no envelope: no fencing, no dedup, no FIFO
			// restore — they deliver in arrival order, ahead of the run's
			// (sequence-sorted) reliable frames. A currently-failed sender
			// is still fenced, matching fail-stop semantics.
			if b.net.failed[from] {
				b.stats.fenced.Add(1)
				continue
			}
			out = append(out, m)
			continue
		}
		env, payload, err := transport.ParseEnvelope(m.Payload)
		if err != nil {
			b.net.recordErr(err)
			continue
		}
		entries = append(entries, rxEntry{env: env, kind: m.Kind, payload: payload})
	}
	// Restore send order: the channel only displaces frames, it never
	// re-stamps them, so sorting by sequence undoes any reordering. The
	// sort is stable so a duplicate lands right after its original.
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].env.Seq < entries[j].env.Seq })
	next := &b.recvNext[from*b.n+to]
	for i := range entries {
		e := &entries[i]
		// Split-brain fence: a frame from a slot that is currently
		// failed, stamped by a superseded incarnation of the sender, or
		// addressed to a previous life of this receiver is counted and
		// dropped. This is what protects a role rebuilt by Rebirth from
		// a partitioned-but-alive predecessor.
		if b.net.failed[from] || e.env.SenderEpoch != b.epochs[from] || e.env.RecvEpoch != b.epochs[to] {
			b.stats.fenced.Add(1)
			continue
		}
		switch {
		case e.env.Seq < *next:
			b.stats.dupDropped.Add(1)
		case e.env.Seq == *next:
			*next++
			out = append(out, Message{From: from, Kind: e.kind, Payload: e.payload})
		default:
			// A hole in the sequence space cannot happen under the
			// round-synchronous protocol; deliver anyway but surface the
			// protocol violation.
			b.net.recordErr(fmt.Errorf("netsim: link %d->%d sequence gap: got %d want %d", from, to, e.env.Seq, *next))
			*next = e.env.Seq + 1
			out = append(out, Message{From: from, Kind: e.kind, Payload: e.payload})
		}
	}
	b.colEnt[to] = entries[:0]
	return out
}

// Drain implements Backend (rollback discarding a receiver's round).
// Parked frames are deliberately untouched: they are in the cable, out
// of anyone's reach, which is exactly why the epoch fence exists.
func (b *lossyBackend) Drain(to int) {
	b.inner.Drain(to)
}

// DrainFrom implements Backend: a revived slot's unsent queues are stale
// state of its previous life and are discarded with the inner backend's
// pending traffic.
func (b *lossyBackend) DrainFrom(from int) {
	for to := 0; to < b.n; to++ {
		b.out[from*b.n+to] = b.out[from*b.n+to][:0]
	}
	b.inner.DrainFrom(from)
}

// Close implements Backend.
func (b *lossyBackend) Close() error { return b.inner.Close() }

// setEpoch installs a slot's new membership incarnation: sequence state
// on every link touching the slot restarts (the new incarnation opens
// fresh connections), queued frames of the old life are dropped, and any
// partition flags on the slot are cleared — the replacement is new
// hardware, not stuck behind the old cable cut. Parked frames survive;
// the epoch fence disposes of them when they finally arrive.
func (b *lossyBackend) setEpoch(node int, epoch uint64) {
	b.epochs[node] = uint32(epoch)
	for p := 0; p < b.n; p++ {
		b.nextSeq[node*b.n+p] = 0
		b.nextSeq[p*b.n+node] = 0
		b.recvNext[node*b.n+p] = 0
		b.recvNext[p*b.n+node] = 0
		b.out[node*b.n+p] = b.out[node*b.n+p][:0]
		b.out[p*b.n+node] = b.out[p*b.n+node][:0]
		delete(b.cut, [2]int{node, p})
		delete(b.cut, [2]int{p, node})
	}
}

// partition cuts every link between the given set and the rest of the
// cluster, in both directions.
func (b *lossyBackend) partition(nodes []int) {
	inSet := make([]bool, b.n)
	for _, s := range nodes {
		inSet[s] = true
	}
	for _, s := range nodes {
		for t := 0; t < b.n; t++ {
			if inSet[t] {
				continue
			}
			b.cut[[2]int{s, t}] = true
			b.cut[[2]int{t, s}] = true
		}
	}
}

// heal clears the partition around the given set and releases every
// parked frame whose link is no longer cut. Released frames were paid
// for when they were sent; they re-enter the receiver's mailbox and face
// the fence at its next Collect.
func (b *lossyBackend) heal(nodes []int) {
	inSet := make([]bool, b.n)
	for _, s := range nodes {
		inSet[s] = true
	}
	for _, s := range nodes {
		for t := 0; t < b.n; t++ {
			if inSet[t] {
				continue
			}
			delete(b.cut, [2]int{s, t})
			delete(b.cut, [2]int{t, s})
		}
	}
	kept := b.parked[:0]
	for _, pf := range b.parked {
		if b.cut[[2]int{pf.from, pf.to}] {
			kept = append(kept, pf)
			continue
		}
		b.stats.released.Add(1)
		if b.net.failed[pf.to] {
			b.stats.droppedDead.Add(1)
			continue
		}
		b.net.recordErr(b.inner.Send(pf.from, pf.to, pf.kind, pf.buf))
	}
	b.parked = kept
}

// takeDelay drains one sender's accumulated backoff seconds.
func (b *lossyBackend) takeDelay(node int) float64 {
	d := b.delay[node]
	b.delay[node] = 0
	return d
}

// setFault updates one probability field of a link's fault config.
func (b *lossyBackend) setFault(from, to int, update func(*linkFaults)) {
	link := [2]int{from, to}
	f := b.faults[link]
	update(&f)
	if f.none() {
		delete(b.faults, link)
		return
	}
	b.faults[link] = f
}

var _ Backend = (*lossyBackend)(nil)

// EnableOmission installs the omission-fault layer over the network's
// backend, seeded for bit-for-bit replay. Idempotent; without this call
// the reliable path runs exactly as before, paying nothing.
func (n *Network) EnableOmission(seed uint64) {
	if n.omission != nil {
		return
	}
	n.omission = newLossyBackend(n.backend, n, seed)
	n.backend = n.omission
}

// OmissionEnabled reports whether the omission layer is installed.
func (n *Network) OmissionEnabled() bool { return n.omission != nil }

// OmissionStats snapshots the omission layer's counters; ok is false
// when the layer is not installed.
func (n *Network) OmissionStats() (stats OmissionStats, ok bool) {
	if n.omission == nil {
		return OmissionStats{}, false
	}
	return n.omission.stats.snapshot(), true
}

// SetDatagramKind marks one message kind as best-effort datagrams: the
// lossy channel loses them outright on a drop fate or a cut link instead
// of retransmitting or parking, and delivers injected duplicates as-is.
// Frames of every other kind keep the reliable protocol. Requires
// EnableOmission; the gossip failure detector is the intended user.
func (n *Network) SetDatagramKind(k Kind) {
	n.omission.datagram = k
}

// SetDropRate installs the loss probability of the from->to link
// (0 clears it). Requires EnableOmission.
func (n *Network) SetDropRate(from, to int, p float64) {
	n.omission.setFault(from, to, func(f *linkFaults) { f.drop = p })
}

// SetDupRate installs the duplication probability of the from->to link.
func (n *Network) SetDupRate(from, to int, p float64) {
	n.omission.setFault(from, to, func(f *linkFaults) { f.dup = p })
}

// SetReorderRate installs the reordering probability of the from->to link.
func (n *Network) SetReorderRate(from, to int, p float64) {
	n.omission.setFault(from, to, func(f *linkFaults) { f.reorder = p })
}

// Partition cuts the given node set off from the rest of the cluster:
// frames on severed links are parked in the cable until Heal.
func (n *Network) Partition(nodes []int) {
	n.omission.partition(nodes)
}

// Heal reconnects the given node set and releases parked frames.
func (n *Network) Heal(nodes []int) {
	n.omission.heal(nodes)
}

// SetEpoch records a slot's new membership incarnation for envelope
// stamping and fencing. No-op while the omission layer is disabled
// (epochs are only observable through it).
func (n *Network) SetEpoch(node int, epoch uint64) {
	if n.omission == nil {
		return
	}
	n.omission.setEpoch(node, epoch)
}

// Epoch returns the incarnation the omission layer stamps for a slot
// (1 when the layer is disabled: the first life of every slot).
func (n *Network) Epoch(node int) uint64 {
	if n.omission == nil {
		return 1
	}
	return uint64(n.omission.epochs[node])
}
