package netsim

import "testing"

// newDatagramNet builds a lossy network with KindControl in best-effort
// datagram mode, the configuration the gossip failure detector uses.
func newDatagramNet(t *testing.T, n int, seed uint64) *Network {
	t.Helper()
	net := newLossyNet(t, n, seed)
	net.SetDatagramKind(KindControl)
	return net
}

func TestDatagramDropLosesFrameForGood(t *testing.T) {
	net := newDatagramNet(t, 2, 7)
	net.SetDropRate(0, 1, 1)
	const frames = 20
	for i := 0; i < frames; i++ {
		net.Send(0, 1, KindControl, []byte{byte(i)})
	}
	net.FinishRound()
	if msgs := net.Receive(1); len(msgs) != 0 {
		t.Fatalf("100%% drop delivered %d datagrams", len(msgs))
	}
	st, _ := net.OmissionStats()
	if st.DatagramsLost != frames {
		t.Fatalf("DatagramsLost = %d, want %d", st.DatagramsLost, frames)
	}
	if st.Retransmits != 0 {
		t.Fatalf("datagrams were retransmitted %d times", st.Retransmits)
	}
	checkErr(t, net)
}

func TestDatagramReliableKindsKeepRetransmitting(t *testing.T) {
	net := newDatagramNet(t, 2, 8)
	net.SetDropRate(0, 1, 0.5)
	const frames = 50
	for i := 0; i < frames; i++ {
		net.Send(0, 1, KindSync, []byte{byte(i)})
	}
	net.FinishRound()
	msgs := net.Receive(1)
	if len(msgs) != frames {
		t.Fatalf("reliable kind delivered %d frames, want %d", len(msgs), frames)
	}
	for i, m := range msgs {
		if m.Payload[0] != byte(i) {
			t.Fatalf("frame %d out of order", i)
		}
	}
	st, _ := net.OmissionStats()
	if st.Retransmits == 0 {
		t.Fatal("50% drop produced no retransmits on the reliable kind")
	}
	checkErr(t, net)
}

func TestDatagramCutLinkLostNotParked(t *testing.T) {
	net := newDatagramNet(t, 2, 9)
	net.Partition([]int{1})
	net.Send(0, 1, KindControl, []byte{1})
	net.Send(0, 1, KindSync, []byte{2})
	net.FinishRound()
	if msgs := net.Receive(1); len(msgs) != 0 {
		t.Fatalf("partition delivered %d frames", len(msgs))
	}
	st, _ := net.OmissionStats()
	if st.DatagramsLost != 1 {
		t.Fatalf("DatagramsLost = %d, want 1", st.DatagramsLost)
	}
	if st.Parked != 1 {
		t.Fatalf("Parked = %d, want 1 (the reliable frame)", st.Parked)
	}
	// Heal: the parked reliable frame arrives, the datagram never does.
	net.Heal([]int{1})
	net.FinishRound()
	msgs := net.Receive(1)
	if len(msgs) != 1 || msgs[0].Kind != KindSync {
		t.Fatalf("after heal got %d frames, want exactly the reliable one", len(msgs))
	}
	checkErr(t, net)
}

func TestDatagramDuplicateDelivered(t *testing.T) {
	net := newDatagramNet(t, 2, 10)
	net.SetDupRate(0, 1, 1)
	net.Send(0, 1, KindControl, []byte{42})
	net.FinishRound()
	msgs := net.Receive(1)
	if len(msgs) != 2 {
		t.Fatalf("dup rate 1 delivered %d datagrams, want 2 (no dedup)", len(msgs))
	}
	for _, m := range msgs {
		if m.Payload[0] != 42 {
			t.Fatalf("corrupt duplicate: %v", m.Payload)
		}
	}
	checkErr(t, net)
}

func TestDatagramNoSequenceGapAlongsideReliable(t *testing.T) {
	// Lost datagrams must not punch holes in the reliable kinds'
	// sequence space: mix both under heavy drop and check the reliable
	// stream stays intact with no backend error.
	net := newDatagramNet(t, 2, 11)
	net.SetDropRate(0, 1, 0.6)
	const frames = 30
	for i := 0; i < frames; i++ {
		net.Send(0, 1, KindControl, []byte{byte(i)})
		net.Send(0, 1, KindSync, []byte{byte(i)})
	}
	net.FinishRound()
	var sync, ctrl int
	for _, m := range net.Receive(1) {
		switch m.Kind {
		case KindSync:
			if m.Payload[0] != byte(sync) {
				t.Fatalf("reliable frame %d out of order", sync)
			}
			sync++
		case KindControl:
			ctrl++
		}
	}
	if sync != frames {
		t.Fatalf("reliable stream delivered %d/%d", sync, frames)
	}
	if ctrl >= frames {
		t.Fatalf("60%% drop lost no datagrams (%d/%d delivered)", ctrl, frames)
	}
	checkErr(t, net)
}

func TestDatagramFromFailedSenderFenced(t *testing.T) {
	net := newDatagramNet(t, 2, 12)
	net.Send(0, 1, KindControl, []byte{1})
	net.FinishRound()
	net.SetFailed(0, true) // fails after the round closes, before delivery
	if msgs := net.Receive(1); len(msgs) != 0 {
		t.Fatalf("failed sender's datagram delivered (%d frames)", len(msgs))
	}
	st, _ := net.OmissionStats()
	if st.Fenced != 1 {
		t.Fatalf("Fenced = %d, want 1", st.Fenced)
	}
	checkErr(t, net)
}
