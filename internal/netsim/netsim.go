// Package netsim is the simulated cluster interconnect. Nodes exchange
// real encoded byte payloads; the package accounts bytes per round and
// converts them into simulated seconds using the cost model (per-node
// bandwidth, per-round latency, and a shared-fabric bisection term).
//
// Delivery is pluggable: the default in-memory backend moves payloads
// through per-(sender, receiver) mailboxes; the TCP backend
// (internal/transport) streams the same frames over loopback sockets, so
// the whole BSP protocol can run against the operating system's network
// stack. Cost accounting is identical either way — the simulated clock
// models the paper's testbed, not the host machine.
//
// Concurrency contract: within one round, each sender goroutine may call
// Send concurrently with other senders; FinishRound and Receive must be
// called after all senders are done (the cluster enforces this with its
// barrier).
package netsim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"imitator/internal/costmodel"
	"imitator/internal/transport"
)

// Kind labels a message's purpose, for dispatch and accounting.
type Kind uint8

// Message kinds.
const (
	KindSync       Kind = iota + 1 // master -> replica value sync
	KindGather                     // vertex-cut partial accumulator
	KindActivation                 // scatter activation notice
	KindRecovery                   // rebirth/migration recovery payload
	KindControl                    // membership / global state
)

// Message is one delivered payload.
type Message struct {
	From    int
	Kind    Kind
	Payload []byte
}

// Backend moves payloads between nodes. Implementations must support one
// concurrent sender goroutine per `from` and deliver each (from, to)
// stream in FIFO order.
type Backend interface {
	// Send enqueues one payload.
	Send(from, to int, kind Kind, payload []byte) error
	// EndRound marks the end of from's sends for this round, to every node
	// enabled in aliveTo.
	EndRound(from int, aliveTo []bool) error
	// Collect returns the round's messages for `to` in ascending sender
	// order, waiting (if the transport is asynchronous) for the round-end
	// marks of every sender enabled in expectFrom.
	Collect(to int, expectFrom []bool) ([]Message, error)
	// Drain discards anything pending for `to`.
	Drain(to int)
	// DrainFrom discards anything pending from `from` at every receiver
	// (stale state when a failed slot is revived).
	DrainFrom(from int)
	// Close releases transport resources.
	Close() error
}

// Network connects numNodes simulated nodes.
type Network struct {
	numNodes int
	params   costmodel.Params
	backend  Backend

	// Per-round byte counters; senders run concurrently, so ingress and
	// the round total are atomics.
	bytesOut []atomic.Int64
	bytesIn  []atomic.Int64
	failed   []bool

	// Cumulative per-node egress bytes, for Table 6.
	totalOut []atomic.Int64

	// aliveMask caches !failed[i]; rebuilt on SetFailed so the per-round
	// paths stop allocating. costs is FinishRound's reusable result slice.
	aliveMask []bool
	costs     []float64

	// Chaos degradation state, nil/zero unless a schedule installs it so the
	// fault-free fast path does no extra work (and no extra float math).
	// linkFactor multiplies the accounted cost of bytes on a directed link;
	// the slowdown surfaces as penalty bytes folded into the endpoints'
	// per-round volumes (never the fabric total — a slow link does not slow
	// the shared switch). roundDelay adds flat seconds to the fabric term of
	// rounds with traffic, modeling a delay burst.
	linkFactor map[[2]int]float64
	penaltyOut []atomic.Int64
	penaltyIn  []atomic.Int64
	roundDelay float64

	// omission is the lossy-channel + reliable-delivery decorator, nil
	// unless EnableOmission installed it; when set it aliases backend.
	omission *lossyBackend

	errMu    sync.Mutex
	firstErr error
}

// New creates a network of numNodes nodes with in-memory delivery.
func New(numNodes int, params costmodel.Params) (*Network, error) {
	return NewWithBackend(numNodes, params, newMemBackend(numNodes))
}

// NewTCP creates a network whose payloads travel over a loopback TCP mesh.
func NewTCP(numNodes int, params costmodel.Params) (*Network, error) {
	mesh, err := transport.NewMesh(numNodes)
	if err != nil {
		return nil, err
	}
	return NewWithBackend(numNodes, params, &tcpBackend{mesh: mesh, out: make([][]Message, numNodes)})
}

// NewWithBackend creates a network over a custom delivery backend.
func NewWithBackend(numNodes int, params costmodel.Params, backend Backend) (*Network, error) {
	if numNodes < 1 {
		return nil, fmt.Errorf("netsim: need at least one node, got %d", numNodes)
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	n := &Network{
		numNodes:  numNodes,
		params:    params,
		backend:   backend,
		bytesOut:  make([]atomic.Int64, numNodes),
		bytesIn:   make([]atomic.Int64, numNodes),
		failed:    make([]bool, numNodes),
		totalOut:  make([]atomic.Int64, numNodes),
		aliveMask: make([]bool, numNodes),
		costs:     make([]float64, numNodes),
	}
	for i := range n.aliveMask {
		n.aliveMask[i] = true
	}
	return n, nil
}

// NumNodes returns the network size.
func (n *Network) NumNodes() int { return n.numNodes }

// SetFailed marks a node failed (its sends and deliveries are dropped) or
// revives it (a rebirth newbie taking over the slot). Reviving a slot
// discards any stale traffic attributed to its previous life.
func (n *Network) SetFailed(node int, failed bool) {
	if n.failed[node] && !failed {
		n.backend.DrainFrom(node)
		n.backend.Drain(node)
	}
	n.failed[node] = failed
	n.aliveMask[node] = !failed
}

// Failed reports whether a node is marked failed.
func (n *Network) Failed(node int) bool { return n.failed[node] }

// Err returns the first backend error, if any.
func (n *Network) Err() error {
	n.errMu.Lock()
	defer n.errMu.Unlock()
	return n.firstErr
}

func (n *Network) recordErr(err error) {
	if err == nil {
		return
	}
	n.errMu.Lock()
	defer n.errMu.Unlock()
	if n.firstErr == nil {
		n.firstErr = err
	}
}

// Send enqueues payload from one node to another. Messages to or from
// failed nodes are silently dropped (fail-stop). The payload is retained;
// callers must not reuse the slice.
func (n *Network) Send(from, to int, kind Kind, payload []byte) {
	if n.failed[from] || n.failed[to] {
		return
	}
	size := int64(len(payload)) + headerBytes
	n.bytesOut[from].Add(size)
	n.bytesIn[to].Add(size)
	n.totalOut[from].Add(size)
	if n.linkFactor != nil {
		if f, ok := n.linkFactor[[2]int{from, to}]; ok {
			extra := int64(float64(size) * (f - 1))
			n.penaltyOut[from].Add(extra)
			n.penaltyIn[to].Add(extra)
		}
	}
	n.recordErr(n.backend.Send(from, to, kind, payload))
}

// DegradeLink slows the directed link from->to: bytes sent across it count
// factor times their size toward both endpoints' per-round volume (but not
// toward the fabric total or the cumulative traffic metrics). factor <= 1
// restores the link to full speed.
func (n *Network) DegradeLink(from, to int, factor float64) {
	if factor <= 1 {
		if n.linkFactor != nil {
			delete(n.linkFactor, [2]int{from, to})
			if len(n.linkFactor) == 0 {
				n.linkFactor = nil
			}
		}
		return
	}
	if n.linkFactor == nil {
		n.linkFactor = make(map[[2]int]float64)
		n.penaltyOut = make([]atomic.Int64, n.numNodes)
		n.penaltyIn = make([]atomic.Int64, n.numNodes)
	}
	n.linkFactor[[2]int{from, to}] = factor
}

// SetRoundDelay adds a flat simulated delay (seconds) to the fabric cost of
// every subsequent round that carries traffic, until reset to 0.
func (n *Network) SetRoundDelay(seconds float64) {
	if seconds < 0 {
		seconds = 0
	}
	n.roundDelay = seconds
}

// headerBytes models per-message framing overhead on the wire.
const headerBytes = 16

// FinishRound closes the current messaging round and returns the simulated
// communication seconds per node — max(egress, ingress)/bandwidth plus one
// latency unit for nodes that communicated — and the aggregate fabric cost:
// the round's total bytes over the cluster's bisection capacity. The round
// duration is the larger of the slowest node and the fabric term, so even
// well-spread extra traffic (like fault-tolerance sync records) costs time.
// The returned costs slice is reused by the next FinishRound call.
func (n *Network) FinishRound() (costs []float64, fabric float64) {
	for from := 0; from < n.numNodes; from++ {
		if n.aliveMask[from] {
			n.recordErr(n.backend.EndRound(from, n.aliveMask))
		}
	}
	costs = n.costs
	active := 0
	var total int64
	for i := 0; i < n.numNodes; i++ {
		out := n.bytesOut[i].Swap(0)
		in := n.bytesIn[i].Swap(0)
		total += out
		if n.penaltyOut != nil {
			// Degraded-link penalty bytes inflate the endpoints' volumes
			// (the slow link takes longer to drain) without touching the
			// shared-fabric total.
			out += n.penaltyOut[i].Swap(0)
			in += n.penaltyIn[i].Swap(0)
		}
		vol := out
		if in > vol {
			vol = in
		}
		costs[i] = 0
		if vol > 0 {
			costs[i] = n.params.NetTransfer(vol) + n.params.NetLatency
			active++
		}
		if n.omission != nil {
			// Retransmission backoff is sender-local waiting: it extends
			// the sender's round without occupying the shared fabric.
			costs[i] += n.omission.takeDelay(i)
		}
	}
	if active > 0 {
		// The shared switch sustains about half its ideal bisection under
		// the all-to-all patterns BSP sync produces, so the fabric term is
		// 2x the per-node average; for balanced rounds it dominates the
		// per-node maximum and total traffic prices the round.
		fabric = n.params.NetTransfer(2*total)/float64(active) + n.params.NetLatency
		if n.roundDelay > 0 {
			fabric += n.roundDelay
		}
	}
	return costs, fabric
}

// Receive drains node `to`'s round in deterministic sender order. The
// returned slice is valid until the same node's next Receive; payload
// ownership transfers to the caller (the engine recycles them).
func (n *Network) Receive(to int) []Message {
	msgs, err := n.backend.Collect(to, n.aliveMask)
	n.recordErr(err)
	return msgs
}

// Drop discards all pending messages for a node; used when rolling back an
// iteration interrupted by a failure.
func (n *Network) Drop(to int) {
	n.backend.Drain(to)
}

// Close releases the delivery backend.
func (n *Network) Close() error { return n.backend.Close() }

// TotalOutBytes returns cumulative egress bytes for a node.
func (n *Network) TotalOutBytes(node int) int64 { return n.totalOut[node].Load() }

// TotalBytes returns cumulative egress bytes across all nodes.
func (n *Network) TotalBytes() int64 {
	var t int64
	for i := range n.totalOut {
		t += n.totalOut[i].Load()
	}
	return t
}

// memBackend delivers through per-(receiver, sender) mailboxes. Rounds
// need no markers: the caller's barrier separates send and collect.
// Mailboxes and the per-receiver Collect output truncate instead of
// re-allocating, so steady-state rounds reuse their slice capacity.
type memBackend struct {
	boxes [][][]Message // boxes[to][from]
	out   [][]Message   // per-receiver Collect scratch
}

func newMemBackend(numNodes int) *memBackend {
	boxes := make([][][]Message, numNodes)
	for to := range boxes {
		boxes[to] = make([][]Message, numNodes)
	}
	return &memBackend{boxes: boxes, out: make([][]Message, numNodes)}
}

// Send implements Backend. Only the goroutine driving `from` appends to
// boxes[*][from], so no locking is needed within a round.
func (b *memBackend) Send(from, to int, kind Kind, payload []byte) error {
	b.boxes[to][from] = append(b.boxes[to][from], Message{From: from, Kind: kind, Payload: payload})
	return nil
}

// EndRound implements Backend (no-op: the barrier is the round boundary).
func (b *memBackend) EndRound(int, []bool) error { return nil }

// Collect implements Backend. The returned slice is scratch reused by the
// same receiver's next Collect.
func (b *memBackend) Collect(to int, _ []bool) ([]Message, error) {
	out := b.out[to][:0]
	for from := range b.boxes[to] {
		out = append(out, b.boxes[to][from]...)
		b.boxes[to][from] = b.boxes[to][from][:0]
	}
	b.out[to] = out
	return out, nil
}

// Drain implements Backend.
func (b *memBackend) Drain(to int) {
	for from := range b.boxes[to] {
		b.boxes[to][from] = b.boxes[to][from][:0]
	}
}

// DrainFrom implements Backend.
func (b *memBackend) DrainFrom(from int) {
	for to := range b.boxes {
		b.boxes[to][from] = b.boxes[to][from][:0]
	}
}

// Close implements Backend.
func (b *memBackend) Close() error { return nil }

// tcpBackend adapts the loopback TCP mesh.
type tcpBackend struct {
	mesh *transport.Mesh
	out  [][]Message // per-receiver Collect scratch
}

func (b *tcpBackend) Send(from, to int, kind Kind, payload []byte) error {
	return b.mesh.Send(from, to, byte(kind), payload)
}

func (b *tcpBackend) EndRound(from int, aliveTo []bool) error {
	return b.mesh.EndRound(from, aliveTo)
}

func (b *tcpBackend) Collect(to int, expectFrom []bool) ([]Message, error) {
	raw, err := b.mesh.Collect(to, expectFrom)
	if err != nil {
		return nil, err
	}
	out := b.out[to][:0]
	for _, m := range raw {
		out = append(out, Message{From: m.From, Kind: Kind(m.Kind), Payload: m.Payload})
	}
	b.out[to] = out
	return out, nil
}

func (b *tcpBackend) Drain(to int) { b.mesh.Drain(to) }

func (b *tcpBackend) DrainFrom(from int) { b.mesh.DrainFrom(from) }

func (b *tcpBackend) Close() error { return b.mesh.Close() }

var (
	_ Backend = (*memBackend)(nil)
	_ Backend = (*tcpBackend)(nil)
)
