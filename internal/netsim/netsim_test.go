package netsim

import (
	"sync"
	"testing"

	"imitator/internal/costmodel"
)

func newNet(t *testing.T, n int) *Network {
	t.Helper()
	net, err := New(n, costmodel.Default())
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestSendReceive(t *testing.T) {
	net := newNet(t, 3)
	net.Send(0, 2, KindSync, []byte("alpha"))
	net.Send(1, 2, KindGather, []byte("beta"))
	net.FinishRound()
	msgs := net.Receive(2)
	if len(msgs) != 2 {
		t.Fatalf("got %d messages, want 2", len(msgs))
	}
	// Deterministic sender order.
	if msgs[0].From != 0 || string(msgs[0].Payload) != "alpha" || msgs[0].Kind != KindSync {
		t.Errorf("msg0 = %+v", msgs[0])
	}
	if msgs[1].From != 1 || string(msgs[1].Payload) != "beta" {
		t.Errorf("msg1 = %+v", msgs[1])
	}
	if again := net.Receive(2); len(again) != 0 {
		t.Error("Receive did not drain")
	}
}

func TestFailedNodeDropsTraffic(t *testing.T) {
	net := newNet(t, 2)
	net.SetFailed(1, true)
	net.Send(0, 1, KindSync, []byte("x")) // to failed: dropped
	net.Send(1, 0, KindSync, []byte("y")) // from failed: dropped
	net.FinishRound()
	if len(net.Receive(0)) != 0 || len(net.Receive(1)) != 0 {
		t.Error("failed node traffic not dropped")
	}
	net.SetFailed(1, false)
	net.Send(0, 1, KindSync, []byte("z"))
	net.FinishRound()
	if len(net.Receive(1)) != 1 {
		t.Error("revived node should receive")
	}
}

func TestRoundCostIsMaxOfInOut(t *testing.T) {
	p := costmodel.Default()
	p.NetLatency = 0
	p.NetBandwidth = 125e6
	net, err := New(3, p)
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 125_000_000-headerBytes) // exactly 1 second egress
	net.Send(0, 1, KindSync, big)
	costs, _ := net.FinishRound()
	if costs[0] < 0.99 || costs[0] > 1.01 {
		t.Errorf("sender cost = %v, want ~1s", costs[0])
	}
	if costs[1] < 0.99 || costs[1] > 1.01 {
		t.Errorf("receiver cost = %v, want ~1s", costs[1])
	}
	if costs[2] != 0 {
		t.Errorf("idle node cost = %v, want 0", costs[2])
	}
}

func TestRoundCostsResetBetweenRounds(t *testing.T) {
	net := newNet(t, 2)
	net.Send(0, 1, KindSync, make([]byte, 1000))
	net.FinishRound()
	net.Receive(1)
	costs, _ := net.FinishRound()
	if costs[0] != 0 || costs[1] != 0 {
		t.Errorf("second round costs = %v, want zeros", costs)
	}
}

func TestLatencyAppliedOnlyWhenTrafficFlows(t *testing.T) {
	net := newNet(t, 2)
	net.Send(0, 1, KindSync, []byte("a"))
	costs, _ := net.FinishRound()
	if costs[0] < costmodel.Default().NetLatency {
		t.Error("latency missing from active node")
	}
	if costs[1] < costmodel.Default().NetLatency {
		t.Error("latency missing from receiver")
	}
}

func TestFabricCost(t *testing.T) {
	p := costmodel.Default()
	p.NetLatency = 0
	p.NetBandwidth = 1e6
	net, err := New(4, p)
	if err != nil {
		t.Fatal(err)
	}
	// All four nodes exchange 1 KB with their neighbor: per-node volume is
	// ~1 KB, total ~4 KB over 4 active nodes => fabric ~ per-node cost.
	for i := 0; i < 4; i++ {
		net.Send(i, (i+1)%4, KindSync, make([]byte, 1000-headerBytes))
	}
	costs, fabric := net.FinishRound()
	if fabric <= 0 {
		t.Fatal("fabric cost missing")
	}
	perNode := costs[0]
	if fabric < 1.8*perNode || fabric > 2.2*perNode {
		t.Errorf("fabric %v should be ~2x per-node cost %v for balanced traffic", fabric, perNode)
	}
	// Extra traffic grows the fabric term even when the max node is fixed.
	for i := 0; i < 4; i++ {
		net.Send(i, (i+1)%4, KindSync, make([]byte, 1000-headerBytes))
	}
	net.Send(0, 1, KindSync, make([]byte, 500))
	_, fabric2 := net.FinishRound()
	if fabric2 <= fabric {
		t.Errorf("fabric did not grow with extra traffic: %v -> %v", fabric, fabric2)
	}
}

func TestDrop(t *testing.T) {
	net := newNet(t, 2)
	net.Send(0, 1, KindSync, []byte("a"))
	net.Drop(1)
	if len(net.Receive(1)) != 0 {
		t.Error("Drop left messages behind")
	}
}

func TestTotals(t *testing.T) {
	net := newNet(t, 2)
	net.Send(0, 1, KindSync, make([]byte, 100))
	net.Send(0, 1, KindSync, make([]byte, 50))
	net.FinishRound()
	want := int64(100+headerBytes) + int64(50+headerBytes)
	if net.TotalOutBytes(0) != want {
		t.Errorf("TotalOutBytes(0) = %d, want %d", net.TotalOutBytes(0), want)
	}
	if net.TotalBytes() != want {
		t.Errorf("TotalBytes = %d, want %d", net.TotalBytes(), want)
	}
}

func TestConcurrentSenders(t *testing.T) {
	net := newNet(t, 8)
	var wg sync.WaitGroup
	for from := 0; from < 8; from++ {
		from := from
		wg.Add(1)
		go func() {
			defer wg.Done()
			for to := 0; to < 8; to++ {
				for k := 0; k < 50; k++ {
					net.Send(from, to, KindGather, []byte{byte(from), byte(to)})
				}
			}
		}()
	}
	wg.Wait()
	net.FinishRound()
	for to := 0; to < 8; to++ {
		msgs := net.Receive(to)
		if len(msgs) != 8*50 {
			t.Fatalf("node %d received %d, want 400", to, len(msgs))
		}
		// Per-sender batches stay ordered and grouped.
		last := -1
		for _, m := range msgs {
			if m.From < last {
				t.Fatal("messages not in sender order")
			}
			last = m.From
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, costmodel.Default()); err == nil {
		t.Error("expected error for 0 nodes")
	}
	bad := costmodel.Default()
	bad.DiskBandwidth = -1
	if _, err := New(2, bad); err == nil {
		t.Error("expected error for bad params")
	}
}

func TestTCPBackendRoundTrip(t *testing.T) {
	net, err := NewTCP(3, costmodel.Default())
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	if net.NumNodes() != 3 {
		t.Errorf("NumNodes = %d", net.NumNodes())
	}
	net.Send(0, 2, KindSync, []byte("over-tcp"))
	net.Send(1, 2, KindGather, []byte("also"))
	net.FinishRound()
	for to := 0; to < 3; to++ {
		msgs := net.Receive(to)
		if to != 2 {
			if len(msgs) != 0 {
				t.Errorf("node %d got %d unexpected messages", to, len(msgs))
			}
			continue
		}
		if len(msgs) != 2 {
			t.Fatalf("node 2 got %d messages, want 2", len(msgs))
		}
		if msgs[0].From != 0 || msgs[0].Kind != KindSync || string(msgs[0].Payload) != "over-tcp" {
			t.Errorf("msg0 = %+v", msgs[0])
		}
	}
	if err := net.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestTCPBackendFailureAndRevival(t *testing.T) {
	net, err := NewTCP(3, costmodel.Default())
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	net.SetFailed(1, true)
	if !net.Failed(1) {
		t.Fatal("Failed(1) should be true")
	}
	net.Send(0, 1, KindSync, []byte("dropped"))
	net.Send(0, 2, KindSync, []byte("kept"))
	net.FinishRound()
	for _, to := range []int{0, 2} {
		msgs := net.Receive(to)
		if to == 2 && len(msgs) != 1 {
			t.Fatalf("node 2 got %d messages", len(msgs))
		}
	}
	// Revive node 1 (stale state drained) and verify traffic flows again.
	net.SetFailed(1, false)
	net.Send(0, 1, KindSync, []byte("hello-again"))
	net.FinishRound()
	for to := 0; to < 3; to++ {
		msgs := net.Receive(to)
		if to == 1 && (len(msgs) != 1 || string(msgs[0].Payload) != "hello-again") {
			t.Fatalf("revived node got %v", msgs)
		}
	}
	if err := net.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestMemDrainFrom(t *testing.T) {
	net := newNet(t, 3)
	net.Send(0, 1, KindSync, []byte("a"))
	net.Send(2, 1, KindSync, []byte("b"))
	net.FinishRound()
	net.SetFailed(0, true)
	net.SetFailed(0, false) // revival drains node 0's stale sends
	msgs := net.Receive(1)
	if len(msgs) != 1 || msgs[0].From != 2 {
		t.Fatalf("msgs = %+v", msgs)
	}
}
