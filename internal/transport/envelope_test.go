package transport

import (
	"bytes"
	"errors"
	"testing"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	payload := []byte("hello, wire")
	e := Envelope{Seq: 0xdeadbeef, SenderEpoch: 3, RecvEpoch: 0xffffffff}
	frame := AppendEnvelope(nil, e)
	if len(frame) != EnvelopeLen {
		t.Fatalf("envelope length %d, want %d", len(frame), EnvelopeLen)
	}
	frame = append(frame, payload...)

	got, rest, err := ParseEnvelope(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Fatalf("round-trip mismatch: %+v != %+v", got, e)
	}
	if !bytes.Equal(rest, payload) {
		t.Fatalf("payload mangled: %q", rest)
	}
}

func TestEnvelopeAppendReusesBuffer(t *testing.T) {
	buf := make([]byte, 0, 64)
	out := AppendEnvelope(buf, Envelope{Seq: 1, SenderEpoch: 1, RecvEpoch: 1})
	if &out[0] != &buf[:1][0] {
		t.Fatal("AppendEnvelope reallocated a buffer with spare capacity")
	}
}

func TestEnvelopeTruncatedFrames(t *testing.T) {
	full := AppendEnvelope(nil, Envelope{Seq: 9, SenderEpoch: 2, RecvEpoch: 2})
	for n := 0; n < EnvelopeLen; n++ {
		if _, _, err := ParseEnvelope(full[:n]); err == nil {
			t.Fatalf("ParseEnvelope accepted %d-byte frame", n)
		}
	}
	// Exactly EnvelopeLen bytes is a valid empty-payload frame.
	e, rest, err := ParseEnvelope(full)
	if err != nil || len(rest) != 0 {
		t.Fatalf("empty-payload frame rejected: %v (rest %d)", err, len(rest))
	}
	if e.Seq != 9 {
		t.Fatalf("seq = %d, want 9", e.Seq)
	}
	if _, _, err := ParseEnvelope(nil); err == nil {
		t.Fatal("ParseEnvelope accepted nil frame")
	} else if errors.Is(err, nil) {
		t.Fatal("unreachable")
	}
}
