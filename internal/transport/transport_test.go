package transport

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func allTrue(n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = true
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	m, err := NewMesh(3)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	if err := m.Send(0, 2, 7, []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := m.Send(1, 2, 9, []byte("beta")); err != nil {
		t.Fatal(err)
	}
	for from := 0; from < 3; from++ {
		if err := m.EndRound(from, allTrue(3)); err != nil {
			t.Fatal(err)
		}
	}
	msgs, err := m.Collect(2, allTrue(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 2 {
		t.Fatalf("got %d messages, want 2", len(msgs))
	}
	if msgs[0].From != 0 || msgs[0].Kind != 7 || !bytes.Equal(msgs[0].Payload, []byte("alpha")) {
		t.Errorf("msg0 = %+v", msgs[0])
	}
	if msgs[1].From != 1 || msgs[1].Kind != 9 || !bytes.Equal(msgs[1].Payload, []byte("beta")) {
		t.Errorf("msg1 = %+v", msgs[1])
	}
	// Other receivers see empty rounds.
	for _, to := range []int{0, 1} {
		msgs, err := m.Collect(to, allTrue(3))
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) != 0 {
			t.Errorf("node %d received %d unexpected messages", to, len(msgs))
		}
	}
}

func TestMultipleRoundsStaySeparated(t *testing.T) {
	m, err := NewMesh(2)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for round := 0; round < 5; round++ {
		payload := []byte(fmt.Sprintf("round-%d", round))
		if err := m.Send(0, 1, byte(round), payload); err != nil {
			t.Fatal(err)
		}
		for from := 0; from < 2; from++ {
			if err := m.EndRound(from, allTrue(2)); err != nil {
				t.Fatal(err)
			}
		}
		msgs, err := m.Collect(1, allTrue(2))
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) != 1 || string(msgs[0].Payload) != string(payload) {
			t.Fatalf("round %d: msgs = %+v", round, msgs)
		}
		if _, err := m.Collect(0, allTrue(2)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestExpectSubset(t *testing.T) {
	// Node 1 is "failed": collector must not wait for its marker.
	m, err := NewMesh(3)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	expect := []bool{true, false, true}
	if err := m.Send(0, 2, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := m.EndRound(0, allTrue(3)); err != nil {
		t.Fatal(err)
	}
	if err := m.EndRound(2, allTrue(3)); err != nil {
		t.Fatal(err)
	}
	msgs, err := m.Collect(2, expect)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 {
		t.Fatalf("got %d messages", len(msgs))
	}
}

func TestSelfSend(t *testing.T) {
	m, err := NewMesh(2)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Send(0, 0, 5, []byte("me")); err != nil {
		t.Fatal(err)
	}
	for from := 0; from < 2; from++ {
		if err := m.EndRound(from, allTrue(2)); err != nil {
			t.Fatal(err)
		}
	}
	msgs, err := m.Collect(0, allTrue(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || string(msgs[0].Payload) != "me" {
		t.Fatalf("msgs = %+v", msgs)
	}
}

func TestConcurrentSenders(t *testing.T) {
	const n = 4
	m, err := NewMesh(n)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	var wg sync.WaitGroup
	for from := 0; from < n; from++ {
		from := from
		wg.Add(1)
		go func() {
			defer wg.Done()
			for to := 0; to < n; to++ {
				if to == from {
					continue
				}
				if err := m.Send(from, to, 1, []byte{byte(from)}); err != nil {
					t.Error(err)
				}
			}
			if err := m.EndRound(from, allTrue(n)); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	for to := 0; to < n; to++ {
		msgs, err := m.Collect(to, allTrue(n))
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) != n-1 {
			t.Fatalf("node %d got %d messages", to, len(msgs))
		}
		for i := 1; i < len(msgs); i++ {
			if msgs[i].From < msgs[i-1].From {
				t.Fatal("messages not sender-ordered")
			}
		}
	}
}

func TestDrain(t *testing.T) {
	m, err := NewMesh(2)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Send(0, 1, 1, []byte("stale")); err != nil {
		t.Fatal(err)
	}
	if err := m.EndRound(0, allTrue(2)); err != nil {
		t.Fatal(err)
	}
	// Let the frame arrive, then drain.
	for len(m.queues[1][0]) < 2 {
	}
	m.Drain(1)
	if err := m.Send(0, 1, 2, []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	for from := 0; from < 2; from++ {
		if err := m.EndRound(from, allTrue(2)); err != nil {
			t.Fatal(err)
		}
	}
	msgs, err := m.Collect(1, allTrue(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || string(msgs[0].Payload) != "fresh" {
		t.Fatalf("msgs = %+v", msgs)
	}
}

func TestCloseUnblocksCollect(t *testing.T) {
	m, err := NewMesh(2)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := m.Collect(0, allTrue(2))
		done <- err
	}()
	m.Close()
	if err := <-done; err == nil {
		t.Fatal("Collect should fail after Close")
	}
}

func TestNewMeshValidation(t *testing.T) {
	if _, err := NewMesh(0); err == nil {
		t.Fatal("zero nodes accepted")
	}
}
