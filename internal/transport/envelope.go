// Reliable-delivery envelope. When the omission-fault layer is active,
// every payload crossing a lossy link is prefixed with this fixed-size
// header so the receiver can deduplicate retransmissions (Seq), restore
// per-link FIFO order after reordering, and fence traffic from or to a
// stale incarnation of a node slot (SenderEpoch / RecvEpoch): a
// partitioned-but-alive sender whose role was rebuilt by Rebirth keeps
// stamping its old epoch, and every such frame is counted and dropped
// instead of corrupting the new incarnation's state.
//
// The envelope lives in internal/transport because it is wire framing:
// it travels inside the transport frame body over both the in-memory and
// the loopback-TCP backends, below the engine's own payload codecs.

package transport

import (
	"encoding/binary"
	"fmt"
)

// EnvelopeLen is the wire size of the reliable-delivery prefix:
// seq u32 | senderEpoch u32 | recvEpoch u32, little-endian.
const EnvelopeLen = 12

// Envelope is the reliable-delivery header of one frame.
type Envelope struct {
	// Seq is the frame's per-(sender, receiver, epoch-pair) sequence
	// number, starting at 0 for each fresh incarnation pairing.
	Seq uint32
	// SenderEpoch is the membership incarnation of the sending slot at
	// send time; receivers fence frames from superseded incarnations.
	SenderEpoch uint32
	// RecvEpoch is the incarnation of the receiving slot the sender
	// believes it is talking to; the receiver fences frames addressed to
	// a previous life of its slot.
	RecvEpoch uint32
}

// AppendEnvelope appends e's wire form to buf and returns the result.
func AppendEnvelope(buf []byte, e Envelope) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, e.Seq)
	buf = binary.LittleEndian.AppendUint32(buf, e.SenderEpoch)
	buf = binary.LittleEndian.AppendUint32(buf, e.RecvEpoch)
	return buf
}

// ParseEnvelope splits a frame into its envelope and payload. The payload
// aliases frame's backing array. Truncated frames are rejected rather
// than read out of bounds.
func ParseEnvelope(frame []byte) (Envelope, []byte, error) {
	if len(frame) < EnvelopeLen {
		return Envelope{}, nil, fmt.Errorf("transport: frame %d bytes shorter than envelope (%d)", len(frame), EnvelopeLen)
	}
	e := Envelope{
		Seq:         binary.LittleEndian.Uint32(frame[0:4]),
		SenderEpoch: binary.LittleEndian.Uint32(frame[4:8]),
		RecvEpoch:   binary.LittleEndian.Uint32(frame[8:12]),
	}
	return e, frame[EnvelopeLen:], nil
}
