// Package transport moves the cluster's messages over real TCP sockets
// (loopback full mesh). The simulated-network package accounts costs; this
// package provides an alternative delivery backend that exercises actual
// framing, connection management and per-round synchronization, so the BSP
// protocol runs byte-for-byte over the operating system's network stack.
//
// Round protocol: senders write any number of frames and then one
// round-end marker per peer; Collect blocks until it has the marker from
// every expected sender, returning messages grouped by ascending sender id
// (the same deterministic order the in-memory backend provides).
package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// Message is one delivered payload.
type Message struct {
	From    int
	Kind    byte
	Payload []byte
}

// frame header: from u16 | kind u8 | marker u8 | len u32
const headerLen = 8

// maxFrameSize bounds a frame's payload length. A wire-decoded length must
// never size an allocation unchecked: a corrupt or hostile peer could
// otherwise make the receiver allocate up to 4 GiB from a single header.
// 256 MiB comfortably exceeds any scatter batch the engine produces while
// keeping a bad length from taking the process down.
const maxFrameSize = 256 << 20

// queueDepth bounds buffered items per (receiver, sender) pair. The BSP
// engine sends one batched frame plus one marker per pair per round, so a
// small buffer suffices; TCP flow control covers pathological cases.
const queueDepth = 64

type item struct {
	kind    byte
	payload []byte
	marker  bool
}

// Mesh is a full mesh of TCP connections between n logical nodes hosted in
// this process.
type Mesh struct {
	n         int
	listeners []net.Listener
	conns     [][]net.Conn  // conns[from][to]; nil on the diagonal
	queues    [][]chan item // queues[to][from]

	// writeBufs[from] is the sender's reusable frame-assembly buffer; each
	// `from` has exactly one sender goroutine (the Backend contract), so no
	// locking is needed. collectOut[to] is the receiver's reusable Collect
	// result, valid until that receiver's next Collect.
	writeBufs  [][]byte
	collectOut [][]Message

	wg      sync.WaitGroup
	closing chan struct{}
	once    sync.Once
}

// NewMesh builds an n-node loopback mesh: n listeners, n*(n-1) dialed
// connections, and one reader goroutine per connection.
func NewMesh(n int) (*Mesh, error) {
	if n < 1 {
		return nil, fmt.Errorf("transport: need at least one node, got %d", n)
	}
	m := &Mesh{
		n:          n,
		listeners:  make([]net.Listener, n),
		conns:      make([][]net.Conn, n),
		queues:     make([][]chan item, n),
		writeBufs:  make([][]byte, n),
		collectOut: make([][]Message, n),
		closing:    make(chan struct{}),
	}
	for to := 0; to < n; to++ {
		m.queues[to] = make([]chan item, n)
		for from := 0; from < n; from++ {
			m.queues[to][from] = make(chan item, queueDepth)
		}
	}
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			m.Close()
			return nil, fmt.Errorf("transport: listen node %d: %w", i, err)
		}
		m.listeners[i] = l
	}
	// Accept loops: each accepted connection identifies its sender with a
	// 2-byte hello, then streams frames into the receiver's queues.
	for to := 0; to < n; to++ {
		to := to
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			var readers sync.WaitGroup
			defer readers.Wait()
			for {
				conn, err := m.listeners[to].Accept()
				if err != nil {
					return // listener closed
				}
				readers.Add(1)
				go func() {
					defer readers.Done()
					m.readLoop(to, conn)
				}()
			}
		}()
	}
	// Dial the mesh.
	for from := 0; from < n; from++ {
		m.conns[from] = make([]net.Conn, n)
		for to := 0; to < n; to++ {
			if to == from {
				continue
			}
			conn, err := net.Dial("tcp", m.listeners[to].Addr().String())
			if err != nil {
				m.Close()
				return nil, fmt.Errorf("transport: dial %d->%d: %w", from, to, err)
			}
			var hello [2]byte
			binary.LittleEndian.PutUint16(hello[:], uint16(from))
			if _, err := conn.Write(hello[:]); err != nil {
				m.Close()
				return nil, fmt.Errorf("transport: hello %d->%d: %w", from, to, err)
			}
			m.conns[from][to] = conn
		}
	}
	return m, nil
}

// readLoop parses frames from one connection into the receiver's queues.
func (m *Mesh) readLoop(to int, conn net.Conn) {
	defer conn.Close()
	var hello [2]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		return
	}
	from := int(binary.LittleEndian.Uint16(hello[:]))
	if from < 0 || from >= m.n {
		return
	}
	q := m.queues[to][from]
	var hdr [headerLen]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		it := item{
			kind:   hdr[2],
			marker: hdr[3] != 0,
		}
		size := binary.LittleEndian.Uint32(hdr[4:])
		if size > maxFrameSize {
			// A length this large can only be corruption; drop the
			// connection rather than trust the header.
			return
		}
		if size > 0 {
			it.payload = make([]byte, size)
			if _, err := io.ReadFull(conn, it.payload); err != nil {
				return
			}
		}
		select {
		case q <- it:
		case <-m.closing:
			return
		}
	}
}

// Send writes one frame from -> to. Self-sends short-circuit through the
// local queue.
func (m *Mesh) Send(from, to int, kind byte, payload []byte) error {
	if from == to {
		select {
		case m.queues[to][from] <- item{kind: kind, payload: payload}:
			return nil
		case <-m.closing:
			return fmt.Errorf("transport: mesh closed")
		}
	}
	return m.write(from, to, kind, false, payload)
}

// EndRound writes a round-end marker from `from` to every node enabled in
// aliveTo (including itself, via the local queue).
func (m *Mesh) EndRound(from int, aliveTo []bool) error {
	for to := 0; to < m.n; to++ {
		if !aliveTo[to] {
			continue
		}
		if to == from {
			select {
			case m.queues[to][from] <- item{marker: true}:
			case <-m.closing:
				return fmt.Errorf("transport: mesh closed")
			}
			continue
		}
		if err := m.write(from, to, 0, true, nil); err != nil {
			return err
		}
	}
	return nil
}

func (m *Mesh) write(from, to int, kind byte, marker bool, payload []byte) error {
	conn := m.conns[from][to]
	if conn == nil {
		return fmt.Errorf("transport: no connection %d->%d", from, to)
	}
	if len(payload) > maxFrameSize {
		return fmt.Errorf("transport: payload %d exceeds frame limit %d", len(payload), maxFrameSize)
	}
	// Frames assemble in the sender's reusable buffer; conn.Write fully
	// consumes it before returning, so reuse across writes is safe.
	var hdr [headerLen]byte
	buf := append(m.writeBufs[from][:0], hdr[:]...)
	binary.LittleEndian.PutUint16(buf[0:], uint16(from))
	buf[2] = kind
	if marker {
		buf[3] = 1
	}
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(payload)))
	buf = append(buf, payload...)
	m.writeBufs[from] = buf
	if _, err := conn.Write(buf); err != nil {
		return fmt.Errorf("transport: write %d->%d: %w", from, to, err)
	}
	return nil
}

// Collect blocks until a round-end marker has arrived from every sender
// enabled in expectFrom, returning the round's messages grouped by
// ascending sender id. The returned slice is reused by the same receiver's
// next Collect.
func (m *Mesh) Collect(to int, expectFrom []bool) ([]Message, error) {
	out := m.collectOut[to][:0]
	defer func() { m.collectOut[to] = out }()
	for from := 0; from < m.n; from++ {
		if !expectFrom[from] {
			continue
		}
		q := m.queues[to][from]
		for {
			select {
			case it := <-q:
				if it.marker {
					goto nextSender
				}
				out = append(out, Message{From: from, Kind: it.kind, Payload: it.payload})
			case <-m.closing:
				return out, fmt.Errorf("transport: mesh closed")
			}
		}
	nextSender:
	}
	return out, nil
}

// Drain non-blockingly empties node `to`'s queues (iteration rollback).
func (m *Mesh) Drain(to int) {
	for from := 0; from < m.n; from++ {
		drainQueue(m.queues[to][from])
	}
}

// DrainFrom non-blockingly discards everything sender `from` has pending at
// every receiver (stale state when a failed slot is revived).
func (m *Mesh) DrainFrom(from int) {
	for to := 0; to < m.n; to++ {
		drainQueue(m.queues[to][from])
	}
}

func drainQueue(q chan item) {
	for {
		select {
		case <-q:
		default:
			return
		}
	}
}

// Close tears down every connection and listener and waits for readers.
func (m *Mesh) Close() error {
	m.once.Do(func() {
		close(m.closing)
		for _, l := range m.listeners {
			if l != nil {
				l.Close()
			}
		}
		for _, row := range m.conns {
			for _, c := range row {
				if c != nil {
					c.Close()
				}
			}
		}
	})
	m.wg.Wait()
	return nil
}
