package linalg

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"imitator/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAddOuterAndDiag(t *testing.T) {
	m := NewDense(2)
	m.AddOuter([]float64{1, 2}, 1)
	m.AddOuter([]float64{3, 0}, 2)
	m.AddDiag(0.5)
	// [1 2; 2 4] + [18 0; 0 0] + 0.5I = [19.5 2; 2 4.5]
	want := [][]float64{{19.5, 2}, {2, 4.5}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if !almostEq(m.At(i, j), want[i][j], 1e-12) {
				t.Errorf("m[%d][%d] = %v, want %v", i, j, m.At(i, j), want[i][j])
			}
		}
	}
}

func TestAddOuterPanicsOnDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDense(2).AddOuter([]float64{1}, 1)
}

func TestSolveSPDKnown(t *testing.T) {
	a := NewDense(2)
	a.Set(0, 0, 4)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 3)
	x, err := SolveSPD(a, []float64{8, 7})
	if err != nil {
		t.Fatal(err)
	}
	// 4x+2y=8, 2x+3y=7 -> x=1.25, y=1.5
	if !almostEq(x[0], 1.25, 1e-9) || !almostEq(x[1], 1.5, 1e-9) {
		t.Errorf("x = %v", x)
	}
}

func TestSolveSPDSingular(t *testing.T) {
	a := NewDense(2) // zero matrix
	if _, err := SolveSPD(a, []float64{1, 1}); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveSPDDimMismatch(t *testing.T) {
	if _, err := SolveSPD(NewDense(2), []float64{1}); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestSolveKnown(t *testing.T) {
	a := NewDense(3)
	vals := [][]float64{{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}}
	for i := range vals {
		for j := range vals[i] {
			a.Set(i, j, vals[i][j])
		}
	}
	x, err := Solve(a, []float64{8, -11, -3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !almostEq(x[i], want[i], 1e-9) {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestSolveSingular(t *testing.T) {
	a := NewDense(2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := Solve(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

// Property: for random SPD systems (A = Q Qᵀ + I), Cholesky and Gaussian
// elimination agree and satisfy the residual.
func TestSolversAgree(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(6)
		a := NewDense(n)
		for k := 0; k < n+2; k++ {
			q := make([]float64, n)
			for i := range q {
				q[i] = r.NormFloat64()
			}
			a.AddOuter(q, 1)
		}
		a.AddDiag(1)
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x1, err1 := SolveSPD(a, b)
		x2, err2 := Solve(a, b)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if !almostEq(x1[i], x2[i], 1e-6) {
				return false
			}
			// Residual check: (A x - b)_i ~ 0
			res := -b[i]
			for j := 0; j < n; j++ {
				res += a.At(i, j) * x1[j]
			}
			if !almostEq(res, 0, 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDotAXPYNorm(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Error("Dot wrong")
	}
	y := []float64{1, 1}
	AXPY(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Errorf("AXPY -> %v", y)
	}
	if !almostEq(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Error("Norm2 wrong")
	}
}

func TestDotPanicsOnDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}
