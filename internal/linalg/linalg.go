// Package linalg provides the small dense linear algebra needed by the ALS
// (alternating least squares) vertex program: accumulation of normal
// equations A += q qᵀ, b += r·q, and a symmetric positive-definite solve via
// Cholesky factorization with a Gaussian-elimination fallback.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular reports a matrix that cannot be factorized/solved.
var ErrSingular = errors.New("linalg: singular matrix")

// Dense is a square row-major matrix of dimension N.
type Dense struct {
	N    int
	Data []float64 // len N*N
}

// NewDense returns an N x N zero matrix.
func NewDense(n int) *Dense {
	return &Dense{N: n, Data: make([]float64, n*n)}
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.N+j] }

// Set sets element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.N+j] = v }

// AddOuter adds scale * (q qᵀ) to m. q must have length N.
func (m *Dense) AddOuter(q []float64, scale float64) {
	if len(q) != m.N {
		panic(fmt.Sprintf("linalg: AddOuter dim %d != %d", len(q), m.N))
	}
	for i := 0; i < m.N; i++ {
		qi := q[i] * scale
		row := m.Data[i*m.N : (i+1)*m.N]
		for j := 0; j < m.N; j++ {
			row[j] += qi * q[j]
		}
	}
}

// AddDiag adds lambda to every diagonal element (ridge regularization).
func (m *Dense) AddDiag(lambda float64) {
	for i := 0; i < m.N; i++ {
		m.Data[i*m.N+i] += lambda
	}
}

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.N)
	copy(c.Data, m.Data)
	return c
}

// SolveSPD solves A x = b for symmetric positive-definite A by Cholesky
// factorization. A and b are not modified. Returns ErrSingular when A is not
// (numerically) positive definite.
func SolveSPD(a *Dense, b []float64) ([]float64, error) {
	n := a.N
	if len(b) != n {
		return nil, fmt.Errorf("linalg: rhs dim %d != %d", len(b), n)
	}
	// Cholesky: A = L Lᵀ, lower triangle stored in l.
	l := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l[i*n+k] * l[j*n+k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, ErrSingular
				}
				l[i*n+i] = math.Sqrt(sum)
			} else {
				l[i*n+j] = sum / l[j*n+j]
			}
		}
	}
	// Forward substitution: L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l[i*n+k] * y[k]
		}
		y[i] = sum / l[i*n+i]
	}
	// Back substitution: Lᵀ x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= l[k*n+i] * x[k]
		}
		x[i] = sum / l[i*n+i]
	}
	return x, nil
}

// Solve solves A x = b by Gaussian elimination with partial pivoting. A and
// b are not modified. Works for general (not necessarily SPD) matrices.
func Solve(a *Dense, b []float64) ([]float64, error) {
	n := a.N
	if len(b) != n {
		return nil, fmt.Errorf("linalg: rhs dim %d != %d", len(b), n)
	}
	m := a.Clone()
	x := make([]float64, n)
	copy(x, b)
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				m.Data[col*n+j], m.Data[pivot*n+j] = m.Data[pivot*n+j], m.Data[col*n+j]
			}
			x[col], x[pivot] = x[pivot], x[col]
		}
		inv := 1 / m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) * inv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				m.Data[r*n+j] -= f * m.Data[col*n+j]
			}
			x[r] -= f * x[col]
		}
	}
	for i := n - 1; i >= 0; i-- {
		sum := x[i]
		for j := i + 1; j < n; j++ {
			sum -= m.At(i, j) * x[j]
		}
		x[i] = sum / m.At(i, i)
	}
	return x, nil
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot dimension mismatch")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// AXPY computes y += alpha * x in place.
func AXPY(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: AXPY dimension mismatch")
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	return math.Sqrt(Dot(x, x))
}
