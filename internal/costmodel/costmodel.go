// Package costmodel converts the work the simulated cluster performs —
// vertex computation, network transfer, DFS I/O — into simulated seconds.
//
// The paper runs on 50 EC2-like nodes (4 cores, 1 GigE, HDFS on SATA
// disks). We execute every protocol step for real (messages are encoded,
// sent and decoded; checkpoints are written byte-for-byte), but wall-clock
// time on one laptop core would not reproduce the paper's time axis, so
// each node carries a simulated clock advanced by this model. Constants are
// calibrated to the paper's hardware; every figure that reports seconds
// uses these simulated seconds.
package costmodel

import "fmt"

// Params holds the calibrated cost constants.
type Params struct {
	// NetBandwidth is the per-node network bandwidth in bytes/second
	// (1 GigE ~ 125 MB/s).
	NetBandwidth float64
	// NetLatency is the fixed cost of one batched message exchange round.
	NetLatency float64
	// DiskBandwidth is the per-node DFS disk bandwidth in bytes/second.
	DiskBandwidth float64
	// DFSReplication is the write amplification of the DFS (HDFS default 3).
	DFSReplication int
	// DFSWriteLatency/DFSReadLatency are fixed per-operation costs
	// (namenode RPCs, pipeline setup, commit). The paper observes that
	// HDFS writes are batched and "insensitive to the data size" — the
	// fixed cost dominates at small sizes (§6.2).
	DFSWriteLatency float64
	DFSReadLatency  float64
	// LogBandwidth is the per-node streamed-append bandwidth of the
	// superstep-log files (bytes/second); LogWriteLatency the fixed cost of
	// sealing one log file. Log appends stream into a pre-opened pipeline,
	// so they skip the per-operation namenode round-trips DFSWriteLatency
	// charges (Young's-model comparison: logging overhead vs checkpoint
	// overhead, arXiv:1601.06496 §2).
	LogBandwidth    float64
	LogWriteLatency float64
	// ComputePerEdge is the cost of processing one edge in gather.
	ComputePerEdge float64
	// ComputePerVertex is the cost of one apply.
	ComputePerVertex float64
	// ReconstructPerVertex is the cost of materializing one recovered
	// vertex entry (allocation + placement).
	ReconstructPerVertex float64
	// BarrierOverhead is the fixed cost of one global barrier.
	BarrierOverhead float64
	// HeartbeatInterval is the failure-detection heartbeat period (the
	// paper uses a conservative 500 ms); detection takes
	// DetectMissedBeats * HeartbeatInterval.
	HeartbeatInterval float64
	DetectMissedBeats int
	// SuspectMissedBeats is the earlier suspicion threshold of the
	// two-stage failure detector: after this many missed intervals a node
	// is *suspected* (the cluster stops waiting on it) and only after
	// DetectMissedBeats is the failure *confirmed* and announced. 0 picks
	// the default of DetectMissedBeats-1 (minimum 1); the value must not
	// exceed DetectMissedBeats.
	SuspectMissedBeats int
	// ComputeSerialFrac is the fraction of each compute phase that cannot
	// parallelize across a node's cores (dispatch, cache contention,
	// reduction). The rest runs on the per-node worker pool and is bounded
	// by the slowest worker; see ComputeTime. Irrelevant with one worker.
	ComputeSerialFrac float64
}

// Default returns constants calibrated so the scaled datasets (1/64 of the
// paper's sizes) reproduce the paper's cost *ratios*: bandwidths are scaled
// down with the data so data-proportional terms keep their share of an
// iteration, per-edge compute matches Hama-era Java throughput, and DFS
// operations carry the fixed overheads the paper observes ("writes are
// insensitive to the data size").
func Default() Params {
	return Params{
		NetBandwidth:         1.2e6, // 1 GigE / 64 (scaled with dataset size)
		NetLatency:           1e-3,
		DiskBandwidth:        0.94e6, // SATA HDD via HDFS / 64
		DFSReplication:       3,
		DFSWriteLatency:      50e-3,
		DFSReadLatency:       20e-3,
		LogBandwidth:         0.94e6, // streamed appends ride the same disks
		LogWriteLatency:      2e-3,
		ComputePerEdge:       0.7e-6,
		ComputePerVertex:     3e-6,
		ReconstructPerVertex: 4e-6,
		BarrierOverhead:      5e-3,
		HeartbeatInterval:    0.5,
		DetectMissedBeats:    3,
		ComputeSerialFrac:    0.05,
	}
}

// Validate reports obviously broken parameter sets.
func (p Params) Validate() error {
	if p.NetBandwidth <= 0 || p.DiskBandwidth <= 0 {
		return fmt.Errorf("costmodel: bandwidths must be positive")
	}
	if p.DFSReplication < 1 {
		return fmt.Errorf("costmodel: DFS replication %d < 1", p.DFSReplication)
	}
	if p.LogBandwidth < 0 || p.LogWriteLatency < 0 {
		return fmt.Errorf("costmodel: log-write parameters must be non-negative")
	}
	if p.ComputeSerialFrac < 0 || p.ComputeSerialFrac >= 1 {
		return fmt.Errorf("costmodel: ComputeSerialFrac %g outside [0, 1)", p.ComputeSerialFrac)
	}
	if p.SuspectMissedBeats < 0 || p.SuspectMissedBeats > p.DetectMissedBeats {
		return fmt.Errorf("costmodel: SuspectMissedBeats %d outside [0, %d]", p.SuspectMissedBeats, p.DetectMissedBeats)
	}
	return nil
}

// SuspectBeats resolves the effective suspicion threshold: the configured
// SuspectMissedBeats, or DetectMissedBeats-1 (minimum 1) when unset.
func (p Params) SuspectBeats() int {
	if p.SuspectMissedBeats > 0 {
		return p.SuspectMissedBeats
	}
	if p.DetectMissedBeats > 1 {
		return p.DetectMissedBeats - 1
	}
	return 1
}

// ComputeTime converts one node's compute phase into simulated seconds when
// the work is spread over a per-node worker pool: `total` is the raw
// single-core cost of the whole phase and `slowest` the raw cost of the
// busiest worker's share. The serial fraction of the total is paid in full;
// the parallel remainder is bounded by the slowest worker (Amdahl's law with
// explicit load imbalance). With one worker slowest == total and the result
// is exactly `total`, so single-worker figures match the paper's model.
//
// Both inputs are SIMULATED widths: they come from Config.WorkersPerNode
// chunking, never from how many host goroutines actually executed the
// chunks (Config.HostParallelism), so host scheduling cannot perturb the
// simulated clock.
func (p Params) ComputeTime(total, slowest float64) float64 {
	if slowest >= total {
		return total
	}
	return p.ComputeSerialFrac*total + (1-p.ComputeSerialFrac)*slowest
}

// NetTransfer returns the simulated seconds to move n bytes point-to-point.
func (p Params) NetTransfer(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return float64(bytes) / p.NetBandwidth
}

// DFSWrite returns the simulated seconds for one node to write n bytes to
// the DFS: local disk plus (replication-1) remote copies through the
// network and their disk writes, pipelined (bounded by the slowest stage).
func (p Params) DFSWrite(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	disk := float64(bytes) / p.DiskBandwidth
	net := float64(bytes) * float64(p.DFSReplication-1) / p.NetBandwidth
	if net > disk {
		return p.DFSWriteLatency + net
	}
	return p.DFSWriteLatency + disk
}

// LogWrite returns the simulated seconds for one node to append and seal an
// n-byte superstep-log file: the fixed seal cost plus the slower of the
// local streamed append and the (replication-1) remote copies, pipelined
// like DFSWrite. A zero LogBandwidth falls back to DiskBandwidth.
func (p Params) LogWrite(bytes int64) float64 {
	if bytes <= 0 {
		return p.LogWriteLatency
	}
	bw := p.LogBandwidth
	if bw <= 0 {
		bw = p.DiskBandwidth
	}
	disk := float64(bytes) / bw
	net := float64(bytes) * float64(p.DFSReplication-1) / p.NetBandwidth
	if net > disk {
		return p.LogWriteLatency + net
	}
	return p.LogWriteLatency + disk
}

// DFSRead returns the simulated seconds for one node to read n bytes.
func (p Params) DFSRead(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return p.DFSReadLatency + float64(bytes)/p.DiskBandwidth
}

// DetectionTime is the simulated seconds between a crash and its detection
// by the heartbeat monitor.
func (p Params) DetectionTime() float64 {
	return p.HeartbeatInterval * float64(p.DetectMissedBeats)
}

// retxBackoffCap bounds the exponential retransmission backoff at
// 2^retxBackoffCap timeout units, so a long loss streak costs linearly
// after the first few doublings instead of exploding.
const retxBackoffCap = 5

// RetxBackoff returns the simulated seconds a sender waits before
// retransmission attempt `attempt` (1-based) of a lost frame: a bounded
// exponential starting at one retransmission timeout of 2x the round
// latency (ack turnaround) and doubling up to 2^5 = 32 units.
func (p Params) RetxBackoff(attempt int) float64 {
	if attempt < 1 {
		attempt = 1
	}
	exp := attempt - 1
	if exp > retxBackoffCap {
		exp = retxBackoffCap
	}
	return 2 * p.NetLatency * float64(int64(1)<<exp)
}

// Clock is a simulated clock. The cluster holds one global clock; per-node
// phase costs are combined with Merge (max) before advancing it, modeling
// the BSP barrier: an iteration is as slow as its slowest node.
type Clock struct {
	now float64
}

// Now returns the current simulated time in seconds.
func (c *Clock) Now() float64 { return c.now }

// Advance moves the clock forward by d seconds (no-op for d <= 0).
func (c *Clock) Advance(d float64) {
	if d > 0 {
		c.now += d
	}
}

// Span measures a phase across nodes: each node reports its local cost and
// the span's Max is the phase duration.
type Span struct {
	max float64
}

// Observe records one node's cost for the phase.
func (s *Span) Observe(d float64) {
	if d > s.max {
		s.max = d
	}
}

// Max returns the slowest node's cost.
func (s *Span) Max() float64 { return s.max }
