package costmodel

import (
	"math"
	"testing"
)

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBroken(t *testing.T) {
	p := Default()
	p.NetBandwidth = 0
	if p.Validate() == nil {
		t.Error("zero bandwidth accepted")
	}
	p = Default()
	p.DFSReplication = 0
	if p.Validate() == nil {
		t.Error("zero replication accepted")
	}
}

func TestNetTransfer(t *testing.T) {
	p := Default()
	p.NetBandwidth = 125e6
	if got := p.NetTransfer(125e6); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("125MB over GigE = %v s, want 1", got)
	}
	if p.NetTransfer(0) != 0 || p.NetTransfer(-5) != 0 {
		t.Error("non-positive bytes should cost 0")
	}
}

func TestDFSWriteAmplification(t *testing.T) {
	p := Default()
	p.NetBandwidth = 125e6
	p.DiskBandwidth = 60e6
	p.DFSWriteLatency = 0
	// 60 MB write: disk stage 1 s; network stage 2*60MB/125MB/s = 0.96 s.
	// Pipelined cost = max = 1 s.
	if got := p.DFSWrite(60e6); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("DFSWrite(60MB) = %v, want 1.0", got)
	}
	// With replication 1 there is no network stage.
	p.DFSReplication = 1
	if got := p.DFSWrite(60e6); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("DFSWrite no-repl = %v, want 1.0", got)
	}
	// Network-bound case: high replication.
	p.DFSReplication = 10
	want := 60e6 * 9 / 125e6
	if got := p.DFSWrite(60e6); math.Abs(got-want) > 1e-9 {
		t.Errorf("DFSWrite repl-10 = %v, want %v", got, want)
	}
}

func TestDFSOpLatencyDominatesSmallWrites(t *testing.T) {
	p := Default()
	small := p.DFSWrite(100)
	if small < p.DFSWriteLatency {
		t.Errorf("small write %v below op latency %v", small, p.DFSWriteLatency)
	}
	// Doubling a tiny write barely changes the cost (paper: HDFS writes
	// are insensitive to data size).
	if p.DFSWrite(200) > 1.01*small {
		t.Error("tiny writes should be latency-bound")
	}
}

func TestDFSRead(t *testing.T) {
	p := Default()
	p.DiskBandwidth = 60e6
	p.DFSReadLatency = 0
	if got := p.DFSRead(120e6); math.Abs(got-2.0) > 1e-9 {
		t.Errorf("DFSRead(120MB) = %v, want 2", got)
	}
}

func TestDetectionTime(t *testing.T) {
	p := Default()
	if got := p.DetectionTime(); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("DetectionTime = %v, want 1.5 (3 x 500ms)", got)
	}
}

func TestClock(t *testing.T) {
	var c Clock
	c.Advance(1.5)
	c.Advance(-1) // ignored
	c.Advance(0.5)
	if c.Now() != 2.0 {
		t.Errorf("Now = %v, want 2.0", c.Now())
	}
}

func TestSpan(t *testing.T) {
	var s Span
	s.Observe(0.2)
	s.Observe(0.7)
	s.Observe(0.1)
	if s.Max() != 0.7 {
		t.Errorf("Max = %v, want 0.7", s.Max())
	}
}
