package metrics

import (
	"strings"
	"testing"
)

func TestAddAndTotals(t *testing.T) {
	a := Node{SyncMsgs: 10, SyncBytes: 100, FTMsgs: 2, FTBytes: 20}
	b := Node{GatherMsgs: 5, GatherBytes: 50, RecoveryMsgs: 1, RecoveryBytes: 9}
	a.Add(&b)
	if a.TotalMsgs() != 18 {
		t.Errorf("TotalMsgs = %d, want 18", a.TotalMsgs())
	}
	if a.TotalBytes() != 179 {
		t.Errorf("TotalBytes = %d, want 179", a.TotalBytes())
	}
}

func TestRedundantFraction(t *testing.T) {
	n := Node{SyncMsgs: 90, FTMsgs: 10}
	if f := n.RedundantMsgFraction(); f != 0.1 {
		t.Errorf("fraction = %v, want 0.1", f)
	}
	var empty Node
	if empty.RedundantMsgFraction() != 0 {
		t.Error("empty node should report 0")
	}
}

func TestClusterTotalAndMax(t *testing.T) {
	c := NewCluster(3)
	c.Nodes[0].MemoryBytes = 100
	c.Nodes[1].MemoryBytes = 300
	c.Nodes[2].MemoryBytes = 200
	c.Nodes[0].SyncMsgs = 7
	c.Nodes[2].SyncMsgs = 3
	total := c.Total()
	if total.MemoryBytes != 600 || total.SyncMsgs != 10 {
		t.Errorf("total = %+v", total)
	}
	if c.MaxMemoryNode() != 300 {
		t.Errorf("MaxMemoryNode = %d, want 300", c.MaxMemoryNode())
	}
}

func TestString(t *testing.T) {
	n := Node{SyncMsgs: 1, SyncBytes: 8}
	if !strings.Contains(n.String(), "msgs=1") {
		t.Errorf("String() = %q", n.String())
	}
}
