// Package metrics collects the counters the paper's figures report:
// messages and bytes per category (Fig 8b, Table 6), DFS traffic (Fig 2),
// and byte-exact memory footprints (Tables 3 and 7).
package metrics

import "fmt"

// Node accumulates counters for one simulated node. Not safe for concurrent
// use; each node owns its Node and the cluster merges after barriers.
type Node struct {
	// Messages and bytes sent, split by purpose. Sync messages maintain
	// computation replicas; FT messages exist only because of fault
	// tolerance (syncs to FT replicas and mirror full-state extensions) —
	// the paper calls these "redundant messages" (Fig 8b).
	SyncMsgs  int64
	SyncBytes int64
	FTMsgs    int64
	FTBytes   int64
	// GatherMsgs/Bytes are vertex-cut partial-accumulator traffic.
	GatherMsgs  int64
	GatherBytes int64
	// ActivationMsgs/Bytes carry scatter activation notices.
	ActivationMsgs  int64
	ActivationBytes int64
	// RecoveryMsgs/Bytes flow during Rebirth/Migration.
	RecoveryMsgs  int64
	RecoveryBytes int64
	// DFS traffic.
	DFSReadBytes  int64
	DFSWriteBytes int64
	// MemoryBytes is the current footprint of graph state (vertex entries,
	// values, edges, replica metadata), maintained by the engine.
	MemoryBytes int64
	// ComputeSeconds is the simulated time this node spent in compute
	// phases (gather/apply, sync encode, recovery reconstruction), after
	// the intra-node worker pool's speedup has been applied.
	ComputeSeconds float64
	// ComputeWorkSeconds is the raw single-core cost of the same phases;
	// the ratio ComputeWorkSeconds/ComputeSeconds is the achieved intra-node
	// parallel speedup.
	ComputeWorkSeconds float64
}

// Add merges other into n.
func (n *Node) Add(other *Node) {
	n.SyncMsgs += other.SyncMsgs
	n.SyncBytes += other.SyncBytes
	n.FTMsgs += other.FTMsgs
	n.FTBytes += other.FTBytes
	n.GatherMsgs += other.GatherMsgs
	n.GatherBytes += other.GatherBytes
	n.ActivationMsgs += other.ActivationMsgs
	n.ActivationBytes += other.ActivationBytes
	n.RecoveryMsgs += other.RecoveryMsgs
	n.RecoveryBytes += other.RecoveryBytes
	n.DFSReadBytes += other.DFSReadBytes
	n.DFSWriteBytes += other.DFSWriteBytes
	n.MemoryBytes += other.MemoryBytes
	n.ComputeSeconds += other.ComputeSeconds
	n.ComputeWorkSeconds += other.ComputeWorkSeconds
}

// TotalMsgs returns all messages sent.
func (n *Node) TotalMsgs() int64 {
	return n.SyncMsgs + n.FTMsgs + n.GatherMsgs + n.ActivationMsgs + n.RecoveryMsgs
}

// TotalBytes returns all bytes sent over the network.
func (n *Node) TotalBytes() int64 {
	return n.SyncBytes + n.FTBytes + n.GatherBytes + n.ActivationBytes + n.RecoveryBytes
}

// RedundantMsgFraction is the share of messages that exist only for fault
// tolerance (Fig 8b's metric).
func (n *Node) RedundantMsgFraction() float64 {
	total := n.TotalMsgs()
	if total == 0 {
		return 0
	}
	return float64(n.FTMsgs) / float64(total)
}

// String summarizes the counters for debug logs.
func (n *Node) String() string {
	return fmt.Sprintf("msgs=%d bytes=%d ft=%d/%d dfs=r%d/w%d mem=%d",
		n.TotalMsgs(), n.TotalBytes(), n.FTMsgs, n.FTBytes,
		n.DFSReadBytes, n.DFSWriteBytes, n.MemoryBytes)
}

// WorkerTimes records per-worker raw busy seconds on one node across all
// compute phases — the load-balance diagnostic for the intra-node pool.
type WorkerTimes struct {
	Busy []float64
}

// Observe adds sec to worker w's busy time, growing the slice as needed.
func (t *WorkerTimes) Observe(w int, sec float64) {
	for len(t.Busy) <= w {
		t.Busy = append(t.Busy, 0)
	}
	t.Busy[w] += sec
}

// Max returns the busiest worker's seconds.
func (t *WorkerTimes) Max() float64 {
	var m float64
	for _, b := range t.Busy {
		if b > m {
			m = b
		}
	}
	return m
}

// Total returns the summed busy seconds over all workers.
func (t *WorkerTimes) Total() float64 {
	var s float64
	for _, b := range t.Busy {
		s += b
	}
	return s
}

// Imbalance returns max/mean busy time (1.0 = perfectly balanced chunks);
// 0 when no work was recorded.
func (t *WorkerTimes) Imbalance() float64 {
	if len(t.Busy) == 0 {
		return 0
	}
	mean := t.Total() / float64(len(t.Busy))
	if mean == 0 {
		return 0
	}
	return t.Max() / mean
}

// Buffers reports wire-buffer pool traffic: how often the engine's send,
// notice and checkpoint buffers were recycled instead of freshly allocated.
// In a warm steady-state superstep loop Misses stays flat while Gets grows.
type Buffers struct {
	// Gets counts buffer requests; Misses the requests the pool could not
	// serve (a fresh allocation happened); Puts the buffers recycled.
	Gets   int64
	Misses int64
	Puts   int64
}

// ReuseFraction is the share of buffer requests served from the pool.
func (b Buffers) ReuseFraction() float64 {
	if b.Gets == 0 {
		return 0
	}
	return float64(b.Gets-b.Misses) / float64(b.Gets)
}

// Serve reports the live-query layer's activity: how many reads ran, how
// many were diverted from a dead or suspected master to a surviving
// replica, how many were refused, and the worst epoch lag any answer
// carried.
type Serve struct {
	// Queries counts all Query calls (including rejected ones).
	Queries int64
	// FromReplica counts answers served by a replica host because the
	// vertex's master was dead or suspected.
	FromReplica int64
	// StaleRejected counts queries refused because the snapshot lagged
	// past their staleness bound.
	StaleRejected int64
	// Unavailable counts queries refused because no live, unsuspected node
	// held synced state for the vertex.
	Unavailable int64
	// MaxStaleness is the largest frontier-epoch lag observed by any query.
	MaxStaleness int64
}

// Membership reports the failure detector's activity for a run that
// exercised it: which protocol ran, how long each confirmed failure took
// to detect, how often live nodes were wrongly suspected, and what the
// detector's own traffic cost (gossip only).
type Membership struct {
	// Mode is the protocol name: "centralized" or "gossip".
	Mode string
	// DetectionSeconds holds the per-failure latency, in simulated
	// seconds, from the crash to the detector confirming it.
	DetectionSeconds []float64
	// FalseSuspicions counts suspicions originated against nodes that
	// were alive at the time (gossip probes lost to chaos).
	FalseSuspicions int
	// GossipBytes is the detector's own network volume, headers included.
	// Zero for the centralized monitor, whose beats ride the cost model.
	GossipBytes int64
	// GossipPeriods is the number of SWIM protocol periods executed.
	GossipPeriods int
}

// Cluster aggregates per-node metrics.
type Cluster struct {
	Nodes []Node
	// Workers tracks per-node, per-worker busy time when the engine runs
	// with an intra-node worker pool.
	Workers []WorkerTimes
	// Buffers is the cluster-wide wire-buffer pool traffic.
	Buffers Buffers
}

// NewCluster returns metrics storage for numNodes nodes.
func NewCluster(numNodes int) *Cluster {
	return &Cluster{
		Nodes:   make([]Node, numNodes),
		Workers: make([]WorkerTimes, numNodes),
	}
}

// Total returns the sum over all nodes.
func (c *Cluster) Total() Node {
	var t Node
	for i := range c.Nodes {
		t.Add(&c.Nodes[i])
	}
	return t
}

// RecoveryTraffic returns the cluster-wide recovery message and byte
// totals. The engine snapshots it around each recovery pass to attribute
// per-recovery traffic in RecoveryReport.
func (c *Cluster) RecoveryTraffic() (msgs, bytes int64) {
	for i := range c.Nodes {
		msgs += c.Nodes[i].RecoveryMsgs
		bytes += c.Nodes[i].RecoveryBytes
	}
	return msgs, bytes
}

// MaxMemoryNode returns the largest per-node memory footprint.
func (c *Cluster) MaxMemoryNode() int64 {
	var best int64
	for i := range c.Nodes {
		if c.Nodes[i].MemoryBytes > best {
			best = c.Nodes[i].MemoryBytes
		}
	}
	return best
}
