// Package metrics collects the counters the paper's figures report:
// messages and bytes per category (Fig 8b, Table 6), DFS traffic (Fig 2),
// and byte-exact memory footprints (Tables 3 and 7).
package metrics

import "fmt"

// Node accumulates counters for one simulated node. Not safe for concurrent
// use; each node owns its Node and the cluster merges after barriers.
type Node struct {
	// Messages and bytes sent, split by purpose. Sync messages maintain
	// computation replicas; FT messages exist only because of fault
	// tolerance (syncs to FT replicas and mirror full-state extensions) —
	// the paper calls these "redundant messages" (Fig 8b).
	SyncMsgs  int64
	SyncBytes int64
	FTMsgs    int64
	FTBytes   int64
	// GatherMsgs/Bytes are vertex-cut partial-accumulator traffic.
	GatherMsgs  int64
	GatherBytes int64
	// ActivationMsgs/Bytes carry scatter activation notices.
	ActivationMsgs  int64
	ActivationBytes int64
	// RecoveryMsgs/Bytes flow during Rebirth/Migration.
	RecoveryMsgs  int64
	RecoveryBytes int64
	// DFS traffic.
	DFSReadBytes  int64
	DFSWriteBytes int64
	// MemoryBytes is the current footprint of graph state (vertex entries,
	// values, edges, replica metadata), maintained by the engine.
	MemoryBytes int64
}

// Add merges other into n.
func (n *Node) Add(other *Node) {
	n.SyncMsgs += other.SyncMsgs
	n.SyncBytes += other.SyncBytes
	n.FTMsgs += other.FTMsgs
	n.FTBytes += other.FTBytes
	n.GatherMsgs += other.GatherMsgs
	n.GatherBytes += other.GatherBytes
	n.ActivationMsgs += other.ActivationMsgs
	n.ActivationBytes += other.ActivationBytes
	n.RecoveryMsgs += other.RecoveryMsgs
	n.RecoveryBytes += other.RecoveryBytes
	n.DFSReadBytes += other.DFSReadBytes
	n.DFSWriteBytes += other.DFSWriteBytes
	n.MemoryBytes += other.MemoryBytes
}

// TotalMsgs returns all messages sent.
func (n *Node) TotalMsgs() int64 {
	return n.SyncMsgs + n.FTMsgs + n.GatherMsgs + n.ActivationMsgs + n.RecoveryMsgs
}

// TotalBytes returns all bytes sent over the network.
func (n *Node) TotalBytes() int64 {
	return n.SyncBytes + n.FTBytes + n.GatherBytes + n.ActivationBytes + n.RecoveryBytes
}

// RedundantMsgFraction is the share of messages that exist only for fault
// tolerance (Fig 8b's metric).
func (n *Node) RedundantMsgFraction() float64 {
	total := n.TotalMsgs()
	if total == 0 {
		return 0
	}
	return float64(n.FTMsgs) / float64(total)
}

// String summarizes the counters for debug logs.
func (n *Node) String() string {
	return fmt.Sprintf("msgs=%d bytes=%d ft=%d/%d dfs=r%d/w%d mem=%d",
		n.TotalMsgs(), n.TotalBytes(), n.FTMsgs, n.FTBytes,
		n.DFSReadBytes, n.DFSWriteBytes, n.MemoryBytes)
}

// Cluster aggregates per-node metrics.
type Cluster struct {
	Nodes []Node
}

// NewCluster returns metrics storage for numNodes nodes.
func NewCluster(numNodes int) *Cluster {
	return &Cluster{Nodes: make([]Node, numNodes)}
}

// Total returns the sum over all nodes.
func (c *Cluster) Total() Node {
	var t Node
	for i := range c.Nodes {
		t.Add(&c.Nodes[i])
	}
	return t
}

// MaxMemoryNode returns the largest per-node memory footprint.
func (c *Cluster) MaxMemoryNode() int64 {
	var best int64
	for i := range c.Nodes {
		if c.Nodes[i].MemoryBytes > best {
			best = c.Nodes[i].MemoryBytes
		}
	}
	return best
}
