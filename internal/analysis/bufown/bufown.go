// Package bufown checks the bufpool ownership protocol from PR 2: every
// buffer obtained from a bufpool.Pool must, on every path, end in exactly
// one of the accepted ownership sinks — Put back to the pool, transferred
// to the network (netsim Send), stored into an owning container (struct
// field, slice slot, map entry), or returned to the caller. It flags
//
//   - buffers that can reach a return with no release (leak),
//   - a second release of an already-released buffer (double Put),
//   - uses of a buffer after its release (use after Put/transfer),
//   - overwriting a still-live buffer variable with a fresh Get.
//
// The analysis is a conservative intra-function walk in statement order
// with must-release branch merging: if/else, switch and loops are explored
// independently and a buffer released on only some paths is "maybe-live",
// which still counts as a leak at function exit. Ownership flows through
// the engine's append-style encoders: a call taking an owned []byte whose
// []byte result is assigned carries the ownership to the result (the
// `buf = encode(buf)` idiom); calls whose result is discarded or not a
// byte slice merely borrow (io.Writer.Write). Closures that capture an
// owned buffer and goroutine/channel handoffs conservatively count as
// transfers.
//
// False positives are suppressed with //imitator:bufown-ok <reason>.
package bufown

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"imitator/internal/analysis"
)

// New returns the bufown analyzer.
func New() *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name:      "bufown",
		Directive: "bufown",
		Doc:       "check bufpool buffer ownership: Put/transfer on every path, no double Put, no use after Put",
	}
	a.Run = run
	return a
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &walker{pass: pass, leaked: map[token.Pos]bool{}}
			env := env{}
			terminated := w.walkBlock(fd.Body, env)
			if !terminated {
				w.checkLeaks(env)
			}
		}
	}
	return nil
}

// status is a buffer variable's must-analysis state.
type status int

const (
	live     status = iota // definitely holds an unreleased buffer
	released               // Put or transferred on every path so far
	maybe                  // released on some paths only
)

// buf is the tracked state of one buffer binding.
type buf struct {
	status   status
	getPos   token.Pos // the Get (or first owning bind) position
	deferred bool      // release happens via defer at exit; later uses are fine
}

// env maps variable objects to their buffer state. Aliased names share one
// *buf (“y := x“ binds y to x's cell).
type env map[*types.Var]*buf

func (e env) clone() env {
	// Clone cells too: branches must not mutate each other's view.
	c := make(env, len(e))
	remap := map[*buf]*buf{}
	for k, v := range e {
		nv, ok := remap[v]
		if !ok {
			cp := *v
			nv = &cp
			remap[v] = nv
		}
		c[k] = nv
	}
	return c
}

// merge folds branch b into e (both derived from the same pre-state).
func merge(e, b env) {
	for k, vb := range b {
		ve, ok := e[k]
		if !ok {
			e[k] = vb
			continue
		}
		if ve.status != vb.status {
			ve.status = maybe
		}
		ve.deferred = ve.deferred && vb.deferred
	}
}

type walker struct {
	pass   *analysis.Pass
	leaked map[token.Pos]bool // dedupe leak reports across exits
}

// ownership is what an expression evaluation yields.
type ownership struct {
	cell  *buf       // non-nil: the expression carries this buffer
	obj   *types.Var // the variable it came from, if any
	fresh bool       // a Get temporary not yet bound to a variable
	pos   token.Pos
}

func (w *walker) walkBlock(b *ast.BlockStmt, e env) bool {
	for _, s := range b.List {
		if w.walkStmt(s, e) {
			return true
		}
	}
	return false
}

// walkStmt interprets one statement; it returns true when control
// definitely leaves the enclosing function (return/panic).
func (w *walker) walkStmt(s ast.Stmt, e env) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		w.assign(s, e)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						own := w.evalExpr(vs.Values[i], e, true)
						w.bindIdent(name, own, e)
					}
				}
			}
		}
	case *ast.ExprStmt:
		w.checkUses(s.X, e)
		w.evalExpr(s.X, e, false)
		// A panic exits the function; fail-fast paths are not leak-checked.
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := w.pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					return true
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.checkUses(r, e)
			own := w.evalExpr(r, e, true)
			w.release(own, e)
		}
		w.checkLeaks(e)
		return true
	case *ast.DeferStmt:
		w.deferCall(s.Call, e)
	case *ast.GoStmt:
		// The goroutine takes over everything it receives or captures.
		for _, arg := range s.Call.Args {
			w.release(w.evalExpr(arg, e, true), e)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.enterFuncLit(lit, e)
		}
	case *ast.SendStmt:
		w.checkUses(s.Value, e)
		w.release(w.evalExpr(s.Value, e, true), e)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, e)
		}
		w.checkUses(s.Cond, e)
		w.evalExpr(s.Cond, e, false)
		thenEnv := e.clone()
		thenTerm := w.walkBlock(s.Body, thenEnv)
		elseEnv := e.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = w.walkStmt(s.Else, elseEnv)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			replace(e, elseEnv)
		case elseTerm:
			replace(e, thenEnv)
		default:
			replace(e, thenEnv)
			merge(e, elseEnv)
		}
	case *ast.BlockStmt:
		return w.walkBlock(s, e)
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, e)
		}
		if s.Cond != nil {
			w.checkUses(s.Cond, e)
		}
		body := e.clone()
		w.walkBlock(s.Body, body)
		if s.Post != nil {
			w.walkStmt(s.Post, body)
		}
		merge(e, body) // the loop may run zero times
	case *ast.RangeStmt:
		w.checkUses(s.X, e)
		body := e.clone()
		w.walkBlock(s.Body, body)
		merge(e, body)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		w.walkCases(s, e)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, e)
	}
	return false
}

// replace overwrites e's bindings in place with b's.
func replace(e, b env) {
	for k := range e {
		delete(e, k)
	}
	for k, v := range b {
		e[k] = v
	}
}

// walkCases handles switch/select bodies: each clause runs on a copy of the
// pre-state; results merge (plus the fall-past path when there is no
// default clause).
func (w *walker) walkCases(s ast.Stmt, e env) {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, e)
		}
		if s.Tag != nil {
			w.checkUses(s.Tag, e)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	pre := e.clone()
	first := true
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			}
			stmts = cl.Body
		}
		branch := pre.clone()
		term := false
		for _, st := range stmts {
			if w.walkStmt(st, branch) {
				term = true
				break
			}
		}
		if term {
			continue
		}
		if first {
			replace(e, branch)
			first = false
		} else {
			merge(e, branch)
		}
	}
	if !hasDefault || first {
		if first {
			replace(e, pre)
		} else {
			merge(e, pre)
		}
	}
}

// assign interprets one assignment, routing buffer ownership.
func (w *walker) assign(s *ast.AssignStmt, e env) {
	for _, r := range s.Rhs {
		w.checkUses(r, e)
	}
	if len(s.Lhs) == len(s.Rhs) {
		for i := range s.Lhs {
			own := w.evalExpr(s.Rhs[i], e, true)
			w.bindTarget(s.Lhs[i], own, e)
		}
		return
	}
	// Multi-value assignments from a single call never produce pool
	// buffers in this codebase; still, owned args flow into the call.
	for _, r := range s.Rhs {
		w.evalExpr(r, e, true)
	}
}

// bindTarget routes ownership into an assignment target.
func (w *walker) bindTarget(lhs ast.Expr, own ownership, e env) {
	lhs = ast.Unparen(lhs)
	if id, ok := lhs.(*ast.Ident); ok {
		w.bindIdent(id, own, e)
		return
	}
	// Store into a field, slice slot, map entry or dereference: the
	// container owns the buffer now.
	w.release(own, e)
}

func (w *walker) bindIdent(id *ast.Ident, own ownership, e env) {
	if id.Name == "_" {
		if own.fresh {
			w.reportLeak(own.pos)
		}
		return
	}
	obj := w.objectOf(id)
	if obj == nil {
		return
	}
	if cur, ok := e[obj]; ok && cur.status == live && (own.cell == nil || own.cell != cur) {
		// The old buffer had no release before the name was rebound.
		w.reportLeakAt(cur, id.Pos(), "buffer overwritten while still live (previous Get leaks)")
	}
	switch {
	case own.fresh:
		e[obj] = &buf{status: live, getPos: own.pos}
	case own.cell != nil:
		e[obj] = own.cell // alias: both names share one state cell
	default:
		delete(e, obj)
	}
}

// release marks carried ownership as handed off.
func (w *walker) release(own ownership, e env) {
	if own.cell != nil {
		own.cell.status = released
	}
	// A fresh temporary released immediately (returned, stored, sent) is
	// fine — nothing to record.
}

// deferCall handles `defer pool.Put(x)` and defer closures releasing x.
func (w *walker) deferCall(call *ast.CallExpr, e env) {
	if w.isPoolPut(call) && len(call.Args) == 1 {
		if cell := w.cellFor(call.Args[0], e); cell != nil {
			if cell.status == released && !cell.deferred {
				w.pass.Reportf(call.Pos(), "buffer already released; deferred Put is a double release")
				return
			}
			cell.status = released
			cell.deferred = true
		}
		return
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		w.enterFuncLit(lit, e)
	}
}

// enterFuncLit conservatively transfers captured buffers to the closure and
// analyzes the closure body as its own scope.
func (w *walker) enterFuncLit(lit *ast.FuncLit, e env) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := w.objectOf(id); obj != nil {
				if cell, ok := e[obj]; ok {
					cell.status = released
					cell.deferred = true
				}
			}
		}
		return true
	})
	inner := env{}
	if !w.walkBlock(lit.Body, inner) {
		w.checkLeaks(inner)
	}
}

// evalExpr interprets an expression and returns the buffer ownership its
// value carries. resultUsed distinguishes `buf = encode(buf)` (ownership
// flows into the result) from a discarded borrow like conn.Write(buf).
func (w *walker) evalExpr(expr ast.Expr, e env, resultUsed bool) ownership {
	expr = ast.Unparen(expr)
	switch x := expr.(type) {
	case *ast.Ident:
		if cell := w.cellForIdent(x, e); cell != nil {
			return ownership{cell: cell, obj: w.objectOf(x), pos: x.Pos()}
		}
	case *ast.SliceExpr:
		return w.evalExpr(x.X, e, resultUsed)
	case *ast.CallExpr:
		return w.evalCall(x, e, resultUsed)
	case *ast.FuncLit:
		w.enterFuncLit(x, e)
	case *ast.UnaryExpr:
		w.evalExpr(x.X, e, false)
	case *ast.BinaryExpr:
		w.evalExpr(x.X, e, false)
		w.evalExpr(x.Y, e, false)
	}
	return ownership{}
}

func (w *walker) evalCall(call *ast.CallExpr, e env, resultUsed bool) ownership {
	// pool.Get() mints a fresh owned buffer.
	if w.isPoolGet(call) {
		return ownership{fresh: true, pos: call.Pos()}
	}
	// pool.Put(x) consumes x.
	if w.isPoolPut(call) && len(call.Args) == 1 {
		if cell := w.cellFor(call.Args[0], e); cell != nil {
			if cell.status == released {
				w.pass.Reportf(call.Pos(), "double Put: buffer already released on this path")
			}
			cell.status = released
			cell.deferred = false
		}
		return ownership{}
	}
	// Builtins copy or inspect; append is the one with alias semantics.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := w.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			if b.Name() == "append" && len(call.Args) > 0 {
				// append(x, ...) may keep x's array: the result carries
				// x's ownership. A variadic source (append(dst, x...)) is
				// only read.
				base := w.evalExpr(call.Args[0], e, true)
				for _, a := range call.Args[1:] {
					w.evalExpr(a, e, false)
				}
				return base
			}
			for _, a := range call.Args {
				w.evalExpr(a, e, false)
			}
			return ownership{}
		}
	}
	// Evaluate arguments, finding owned ones.
	var owned []ownership
	for i, a := range call.Args {
		own := w.evalExpr(a, e, true)
		if own.cell != nil || own.fresh {
			if call.Ellipsis.IsValid() && i == len(call.Args)-1 {
				continue // variadic spread is a read, not a handoff
			}
			owned = append(owned, own)
		}
	}
	if len(owned) == 0 {
		return ownership{}
	}
	// Known transfer sinks take ownership outright (netsim delivery: the
	// receiver recycles the payload).
	if w.isTransferCall(call) {
		for _, own := range owned {
			w.release(own, e)
		}
		return ownership{}
	}
	// Append-style encoders: an owned []byte in, a []byte out that is
	// actually consumed — ownership flows through the call to the result.
	if resultUsed && resultIsByteSlice(w.pass.TypesInfo, call) {
		first := owned[0]
		for _, own := range owned[1:] {
			w.release(own, e)
		}
		if first.fresh {
			return ownership{fresh: true, pos: first.pos}
		}
		return first
	}
	// Anything else borrows: the caller still owns the buffer. A fresh
	// temporary handed to a borrowing call with no way back is a leak.
	for _, own := range owned {
		if own.fresh {
			w.reportLeak(own.pos)
		}
	}
	return ownership{}
}

// checkUses reports reads of already-released buffers inside expr. Writes
// that rebind the variable are handled by assign before this fires.
func (w *walker) checkUses(expr ast.Expr, e env) {
	ast.Inspect(expr, func(n ast.Node) bool {
		// Put's own argument is judged by the double-Put check, not here.
		if call, ok := n.(*ast.CallExpr); ok && w.isPoolPut(call) {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := w.objectOf(id)
		if obj == nil {
			return true
		}
		if cell, ok := e[obj]; ok && cell.status == released && !cell.deferred {
			w.pass.Reportf(id.Pos(), "use of buffer %s after Put/ownership transfer", id.Name)
		}
		return true
	})
}

// checkLeaks reports every binding that can still be live at an exit.
func (w *walker) checkLeaks(e env) {
	seen := map[*buf]bool{}
	for _, cell := range e {
		if seen[cell] {
			continue
		}
		seen[cell] = true
		if cell.status == live || cell.status == maybe {
			w.reportLeak(cell.getPos)
		}
	}
}

func (w *walker) reportLeak(pos token.Pos) {
	if w.leaked[pos] {
		return
	}
	w.leaked[pos] = true
	w.pass.Reportf(pos, "buffer from bufpool Get is not Put, transferred or stored on every path (leaks; see the seed → steal → transfer → recycle chain in DESIGN.md)")
}

func (w *walker) reportLeakAt(cell *buf, pos token.Pos, msg string) {
	if w.leaked[cell.getPos] {
		return
	}
	w.leaked[cell.getPos] = true
	w.pass.Reportf(pos, "%s", msg)
}

// --- type plumbing ---

func (w *walker) objectOf(id *ast.Ident) *types.Var {
	if obj, ok := w.pass.TypesInfo.Uses[id].(*types.Var); ok {
		return obj
	}
	if obj, ok := w.pass.TypesInfo.Defs[id].(*types.Var); ok {
		return obj
	}
	return nil
}

func (w *walker) cellForIdent(id *ast.Ident, e env) *buf {
	if obj := w.objectOf(id); obj != nil {
		if cell, ok := e[obj]; ok {
			return cell
		}
	}
	return nil
}

// cellFor resolves an argument expression (possibly sliced/parenthesized)
// to a tracked buffer cell.
func (w *walker) cellFor(expr ast.Expr, e env) *buf {
	expr = ast.Unparen(expr)
	if sl, ok := expr.(*ast.SliceExpr); ok {
		return w.cellFor(sl.X, e)
	}
	if id, ok := expr.(*ast.Ident); ok {
		return w.cellForIdent(id, e)
	}
	return nil
}

// isPoolGet matches (*bufpool.Pool).Get.
func (w *walker) isPoolGet(call *ast.CallExpr) bool { return w.isPoolMethod(call, "Get") }

// isPoolPut matches (*bufpool.Pool).Put.
func (w *walker) isPoolPut(call *ast.CallExpr) bool { return w.isPoolMethod(call, "Put") }

func (w *walker) isPoolMethod(call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := w.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	if !strings.HasSuffix(fn.Pkg().Path(), "bufpool") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Pool"
}

// transferSinks lists (package path suffix, function name) pairs whose
// callee takes payload ownership: the simulated network hands the buffer to
// the receiver, which recycles it after decode.
var transferSinks = [...][2]string{
	{"netsim", "Send"},
	{"transport", "Send"},
}

func (w *walker) isTransferCall(call *ast.CallExpr) bool {
	fn := calleeFunc(w.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	for _, s := range transferSinks {
		if fn.Name() == s[1] && strings.HasSuffix(fn.Pkg().Path(), s[0]) {
			return true
		}
	}
	return false
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// resultIsByteSlice reports whether the call has exactly one result of type
// []byte (the append-style encoder shape ownership can flow through).
func resultIsByteSlice(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	sl, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	basic, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Byte
}
