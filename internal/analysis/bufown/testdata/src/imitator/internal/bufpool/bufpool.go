// Package bufpool is a stub of the real pool with the same import path and
// method shapes, so the analyzer's type-based matching works in testdata.
package bufpool

type Pool struct{ free [][]byte }

func New() *Pool { return &Pool{} }

func (p *Pool) Get() []byte {
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free = p.free[:n-1]
		return b[:0]
	}
	return nil
}

func (p *Pool) Put(buf []byte) {
	if cap(buf) > 0 {
		p.free = append(p.free, buf[:0])
	}
}
