// Package netsim is a stub of the real simulated network: Send is an
// ownership-transfer sink (the receiver recycles payloads).
package netsim

type Kind uint8

type Network struct{ failed []bool }

func (n *Network) Send(from, to int, kind Kind, payload []byte) {}

func (n *Network) Failed(node int) bool { return n.failed[node] }
