// Package bufowntest exercises the bufown analyzer against the PR 2 buffer
// lifecycle: stager seed → chunk-merge steal → net transfer → receiver
// recycle, plus the failure modes (leak, double Put, use after Put).
package bufowntest

import (
	"imitator/internal/bufpool"
	"imitator/internal/netsim"
)

type node struct {
	pool    *bufpool.Pool
	sendBuf [][]byte
	aux     []byte
}

// --- clean lifecycle cases ---

// seed: a stager slot is seeded from the pool and returned to the caller
// (ownership flows out through the return value).
func seed(pool *bufpool.Pool, slot []byte) []byte {
	b := slot
	if b == nil {
		b = pool.Get()
	}
	return b
}

// seedStore: seeding straight into an owning container transfers ownership.
func seedStore(nd *node, dst int) {
	nd.sendBuf[dst] = nd.pool.Get()
}

// flowThrough: the append-style encoder idiom — ownership rides the result.
func flowThrough(pool *bufpool.Pool, v byte) []byte {
	buf := pool.Get()
	buf = encode(buf, v)
	return buf
}

func encode(buf []byte, v byte) []byte { return append(buf, v) }

// steal: the chunk merge either steals the worker's buffer into the node
// slot or copies and recycles it — released on both paths.
func steal(nd *node, dst int, buf []byte, pool *bufpool.Pool) {
	staged := pool.Get()
	staged = encode(staged, 1)
	if len(nd.sendBuf[dst]) == 0 {
		nd.sendBuf[dst] = staged
	} else {
		nd.sendBuf[dst] = append(nd.sendBuf[dst], staged...)
		pool.Put(staged)
	}
}

// transfer: flushing to the network hands the payload to the receiver;
// a failed destination would drop it silently, so that path recycles.
func transfer(nd *node, net *netsim.Network, pool *bufpool.Pool, dst int) {
	buf := pool.Get()
	buf = encode(buf, 2)
	if net.Failed(dst) {
		pool.Put(buf)
	} else {
		net.Send(0, dst, 1, buf)
	}
}

// recycle: the receiver returns decoded payload buffers to the pool.
func recycle(pool *bufpool.Pool, payloads [][]byte) {
	for _, p := range payloads {
		if cap(p) > 0 {
			pool.Put(p)
		}
	}
}

// deferredRecycle: releasing via defer keeps later uses legal.
func deferredRecycle(pool *bufpool.Pool) int {
	buf := pool.Get()
	defer pool.Put(buf)
	buf = encode(buf, 3)
	return len(buf)
}

// goroutineHandoff: a closure capture counts as an ownership transfer.
func goroutineHandoff(pool *bufpool.Pool, sink chan []byte) {
	buf := pool.Get()
	go func() { sink <- buf }()
}

// --- violations ---

// leakPlain: the buffer reaches the return with no release.
func leakPlain(pool *bufpool.Pool) int {
	buf := pool.Get() // want `not Put, transferred or stored on every path`
	buf = encode(buf, 4)
	return len(buf)
}

// leakSomePaths: released on the success path only.
func leakSomePaths(nd *node, net *netsim.Network, pool *bufpool.Pool, dst int) {
	buf := pool.Get() // want `not Put, transferred or stored on every path`
	buf = encode(buf, 5)
	if net.Failed(dst) {
		return // failed-destination path forgets to recycle
	}
	net.Send(0, dst, 1, buf)
}

// leakDiscard: minting a buffer into the blank identifier drops it.
func leakDiscard(pool *bufpool.Pool) {
	_ = pool.Get() // want `not Put, transferred or stored on every path`
}

// doublePut: the classic failed-destination bug — recycled twice.
func doublePut(pool *bufpool.Pool, cond bool) {
	buf := pool.Get()
	buf = encode(buf, 6)
	pool.Put(buf)
	pool.Put(buf) // want `double Put`
}

// useAfterPut: reading a recycled buffer races with its next owner.
func useAfterPut(pool *bufpool.Pool) byte {
	buf := pool.Get()
	buf = encode(buf, 7)
	pool.Put(buf)
	return buf[0] // want `use of buffer buf after Put`
}

// overwriteLive: rebinding the name orphans the first buffer.
func overwriteLive(pool *bufpool.Pool) {
	buf := pool.Get()
	buf = pool.Get() // want `overwritten while still live`
	pool.Put(buf)
}

// annotated: a justified exception is suppressed.
func annotated(pool *bufpool.Pool) []byte {
	buf := pool.Get() //imitator:bufown-ok ownership recorded in an external registry for this test
	return append([]byte(nil), buf...)
}
