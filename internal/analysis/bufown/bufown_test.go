package bufown_test

import (
	"testing"

	"imitator/internal/analysis/analysistest"
	"imitator/internal/analysis/bufown"
)

func TestBufown(t *testing.T) {
	analysistest.Run(t, "testdata", bufown.New(), "bufowntest")
}
