// Fixture for the hotalloc analyzer: an annotated hot root, an annotated
// pre-bound body struct, call-graph propagation, and every allocation shape.
package hotalloctest

import "fmt"

type engine struct {
	scratch []int
	bodies  bodies
	sink    func()
}

// bodies holds pre-bound phase closures; literals assigned to its fields
// are hot roots.
//
//imitator:hotpath
type bodies struct {
	compute func(lo, hi int)
	commit  func()
}

// bind runs once at setup: the literal creations here are cold, but their
// bodies are hot.
func (e *engine) bind() {
	e.bodies.compute = func(lo, hi int) {
		tmp := make([]int, hi-lo) // want `make allocates per call`
		_ = tmp
		e.helper(lo) // pulls helper into the hot set
	}
	e.bodies.commit = func() {
		e.scratch = e.scratch[:0] // reuse: fine
	}
}

// helper is hot by reachability from the compute body.
func (e *engine) helper(n int) {
	var fresh []int
	for i := 0; i < n; i++ {
		fresh = append(fresh, i) // want `append to a slice that starts nil`
	}
	_ = fresh
	e.scratch = append(e.scratch, n) // retained buffer: amortized-zero, fine
}

// superstep is a hot root by direct annotation.
//
//imitator:hotpath
func (e *engine) superstep(name string, vals []any) {
	go e.bodies.commit()                   // want `go statement spawns`
	e.sink = func() { e.helper(0) }        // want `func literal allocates a closure`
	fmt.Println(name)                      // want `fmt.Println allocates`
	_ = name + "!"                         // want `string concatenation allocates`
	_ = string([]byte{1, 2})               // want `string conversion copies`
	consume(42)                            // want `passing concrete int as interface any boxes`
	consume(vals[0])                       // already an interface: no box
	func() { e.scratch = e.scratch[:0] }() // immediately invoked: no escape
	e.lazyInit()
}

// lazyInit shows the suppression grammar on a guarded cold sub-path.
func (e *engine) lazyInit() {
	if e.scratch == nil {
		//imitator:hotalloc-ok one-time lazy init, guarded by the nil check
		e.scratch = make([]int, 0, 64)
	}
}

func consume(v any) { _ = v }

// The generic mirror of the engine: method calls on a generic receiver
// resolve to instantiated *types.Func objects, and reachability must map
// them back to their declarations (Origin) or the call-graph walk
// dead-ends at the first c.method() call.

// genBodies mirrors the real pre-bound phase structs, which are generic.
//
//imitator:hotpath
type genBodies[T any] struct {
	compute func(n int)
}

type genEngine[T any] struct {
	bodies genBodies[T]
}

// genBind's literal is a root via the annotated generic struct's field.
func (g *genEngine[T]) genBind() {
	g.bodies.compute = func(n int) {
		g.step(n) // instantiated method: must still pull step into the hot set
	}
}

// genRun is a hot root; step is hot only through generic method calls.
//
//imitator:hotpath
func (g *genEngine[T]) genRun(n int) {
	g.step(n)
}

func (g *genEngine[T]) step(n int) {
	tmp := make([]T, n) // want `make allocates per call`
	_ = tmp
}

// cold is not reachable from any root: nothing here is flagged.
func cold() []byte {
	buf := make([]byte, 16)
	return append(buf, fmt.Sprintf("%d", 7)...)
}
