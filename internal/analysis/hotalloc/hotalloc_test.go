package hotalloc_test

import (
	"testing"

	"imitator/internal/analysis/analysistest"
	"imitator/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotalloc.New(), "hotalloctest")
}
