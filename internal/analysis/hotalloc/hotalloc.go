// Package hotalloc statically guards the allocs/superstep ≈ 0 invariant
// that cmd/bench can only probe dynamically. The steady-state superstep hot
// path is declared with an annotation grammar:
//
//	//imitator:hotpath
//	func (c *Cluster[V, A]) superstepEdgeCut() error { ... }
//
// on a function, or on a struct type whose func-typed fields hold the
// pre-bound phase bodies (nodeBodies, phaseFns): every func literal
// assigned to a field of an annotated struct is a hot root. From the roots
// the analyzer walks the package-local static call graph; inside any hot
// function it reports the allocation shapes that defeat the PR-2 zero-alloc
// discipline:
//
//   - make() / new() — allocate per call; preallocate in setup or pool.
//   - go statements — spawn (and allocate) a goroutine per call; the
//     phase pools exist so steady state never does this.
//   - func literals — closures allocate when they capture; hot phases are
//     pre-bound once (bindPhases) precisely to avoid this. Immediately
//     invoked literals are exempt (they do not escape).
//   - append to a slice that starts nil in the same function — grows a
//     fresh backing array every call (appends to pooled/retained buffers
//     are amortized-zero and are not flagged).
//   - fmt calls, non-constant string concatenation, string(bytes)
//     conversions — each allocates.
//   - passing a concrete value where a parameter is an interface — boxes.
//
// Dynamic calls (through interfaces or stored func values) are not
// traversed; the annotation on the pre-bound body structs is what puts
// their literals in scope. Exceptions carry //imitator:hotalloc-ok <reason>
// — cold sub-paths (lazy one-time init, recovery-only rebuilds) are the
// expected use.
package hotalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"imitator/internal/analysis"
)

// Annotation marks a hot-path root; unlike suppression directives it takes
// no reason (it declares scope, it does not excuse a finding).
const Annotation = "//imitator:hotpath"

// New returns the hotalloc analyzer.
func New() *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name:      "hotalloc",
		Directive: "hotalloc",
		// hotpath is the scope marker, not a suppression; declaring it keeps
		// the unknown-directive check from flagging annotated hot roots.
		Annotations: []string{"hotpath"},
		Doc:         "forbid per-call heap allocation inside the annotated superstep hot path",
	}
	a.Run = run
	return a
}

func run(pass *analysis.Pass) error {
	// 1. Collect annotated roots: functions, and struct types whose
	// func-typed fields receive pre-bound bodies.
	var rootDecls []*ast.FuncDecl
	hotStructs := map[*types.TypeName]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if hasAnnotation(d.Doc) {
					rootDecls = append(rootDecls, d)
				}
			case *ast.GenDecl:
				declWide := hasAnnotation(d.Doc)
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if declWide || hasAnnotation(ts.Doc) || hasAnnotation(ts.Comment) {
						if tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
							hotStructs[tn] = true
						}
					}
				}
			}
		}
	}

	// 2. Root literals: func literals assigned to fields of hot structs
	// (c.phases.commit = func...{}) or set in their composite literals.
	var rootLits []*ast.FuncLit
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					lit, ok := n.Rhs[i].(*ast.FuncLit)
					if !ok {
						continue
					}
					if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok && isHotField(pass, hotStructs, sel) {
						rootLits = append(rootLits, lit)
					}
				}
			case *ast.CompositeLit:
				if !isHotStructType(pass, hotStructs, n) {
					return true
				}
				for _, el := range n.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						if lit, ok := kv.Value.(*ast.FuncLit); ok {
							rootLits = append(rootLits, lit)
						}
					}
				}
			}
			return true
		})
	}

	if len(rootDecls) == 0 && len(rootLits) == 0 {
		return nil
	}

	// 3. Static call graph over package functions; everything reachable
	// from a root body is hot.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}
	hot := map[*types.Func]bool{}
	var visit func(body *ast.BlockStmt)
	visit = func(body *ast.BlockStmt) {
		for _, callee := range localCallees(pass, body) {
			if hot[callee] {
				continue
			}
			hot[callee] = true
			if fd := decls[callee]; fd != nil {
				visit(fd.Body)
			}
		}
	}
	for _, fd := range rootDecls {
		if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
			hot[fn] = true
		}
		visit(fd.Body)
	}
	for _, lit := range rootLits {
		visit(lit.Body)
	}

	// 4. Check every hot region.
	seen := map[*ast.BlockStmt]bool{}
	check := func(name string, body *ast.BlockStmt) {
		if !seen[body] {
			seen[body] = true
			checkBody(pass, name, body)
		}
	}
	for _, fd := range rootDecls {
		check(fd.Name.Name, fd.Body)
	}
	for _, lit := range rootLits {
		check("pre-bound phase body", lit.Body)
	}
	for fn, fd := range decls {
		if hot[fn] {
			check(fd.Name.Name, fd.Body)
		}
	}
	return nil
}

func hasAnnotation(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if c.Text == Annotation || strings.HasPrefix(c.Text, Annotation+" ") {
			return true
		}
	}
	return false
}

// isHotField reports whether sel selects a field of an annotated struct.
// Matching goes through the receiver type's generic origin, so instantiated
// phaseFns[V, A] fields match the annotated declaration.
func isHotField(pass *analysis.Pass, hotStructs map[*types.TypeName]bool, sel *ast.SelectorExpr) bool {
	v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return false
	}
	return isHotType(hotStructs, typeOf(pass, sel.X))
}

func isHotStructType(pass *analysis.Pass, hotStructs map[*types.TypeName]bool, cl *ast.CompositeLit) bool {
	tv, ok := pass.TypesInfo.Types[cl]
	if !ok {
		return false
	}
	return isHotType(hotStructs, tv.Type)
}

func isHotType(hotStructs map[*types.TypeName]bool, t types.Type) bool {
	if t == nil {
		return false
	}
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return hotStructs[named.Origin().Obj()]
}

// localCallees returns the package-local functions a body calls statically.
func localCallees(pass *analysis.Pass, body *ast.BlockStmt) []*types.Func {
	var out []*types.Func
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var id *ast.Ident
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			id = fun
		case *ast.SelectorExpr:
			id = fun.Sel
		case *ast.IndexExpr: // generic instantiation f[T](...)
			if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
				id = base
			}
		default:
			return true
		}
		if fn, ok := pass.TypesInfo.Uses[id].(*types.Func); ok {
			// Methods selected on an instantiated generic receiver
			// (c.runPhase on *Cluster[V, A]) resolve to instantiated
			// objects; Origin maps them back to the declaration.
			fn = fn.Origin()
			if fn.Pkg() == pass.Pkg {
				out = append(out, fn)
			}
		}
		return true
	})
	return out
}

// checkBody reports allocation shapes inside one hot region.
func checkBody(pass *analysis.Pass, name string, body *ast.BlockStmt) {
	hint := fmt.Sprintf(" (hot via %s); hoist to setup, pool the buffer, or annotate //imitator:hotalloc-ok <reason>", name)

	// Fresh locals: slices declared with no backing in this region; append
	// to them grows a new array every call.
	fresh := map[*types.Var]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		gd, ok := n.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return true
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) != 0 {
				continue
			}
			for _, nm := range vs.Names {
				if v, ok := pass.TypesInfo.Defs[nm].(*types.Var); ok {
					if _, isSlice := v.Type().Underlying().(*types.Slice); isSlice {
						fresh[v] = true
					}
				}
			}
		}
		return true
	})

	// Immediately invoked literals do not escape.
	invoked := map[*ast.FuncLit]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
				invoked[lit] = true
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "hot path: go statement spawns and allocates a goroutine per call%s", hint)
		case *ast.FuncLit:
			if !invoked[n] {
				pass.Reportf(n.Pos(), "hot path: func literal allocates a closure per call; pre-bind it once like bindPhases does%s", hint)
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringExpr(pass, n) && !isConstant(pass, n) {
				pass.Reportf(n.Pos(), "hot path: string concatenation allocates%s", hint)
			}
		case *ast.CallExpr:
			checkCall(pass, n, fresh, hint)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, fresh map[*types.Var]bool, hint string) {
	// Conversions: string(bytes) copies.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && isString(tv.Type) && !isString(typeOf(pass, call.Args[0])) && !isConstant(pass, call.Args[0]) {
			pass.Reportf(call.Pos(), "hot path: string conversion copies and allocates%s", hint)
		}
		return
	}

	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Reportf(call.Pos(), "hot path: make allocates per call%s", hint)
			case "new":
				pass.Reportf(call.Pos(), "hot path: new allocates per call%s", hint)
			case "append":
				if len(call.Args) > 0 {
					if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
						if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok && fresh[v] {
							pass.Reportf(call.Pos(), "hot path: append to a slice that starts nil grows a fresh backing array every call%s", hint)
						}
					}
				}
			}
			return
		}
	case *ast.SelectorExpr:
		if pkg, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			if pn, ok := pass.TypesInfo.Uses[pkg].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				pass.Reportf(call.Pos(), "hot path: fmt.%s allocates (formatting boxes its operands)%s", fun.Sel.Name, hint)
				return
			}
		}
	}

	checkBoxing(pass, call, hint)
}

// checkBoxing flags concrete values passed where the callee takes an
// interface: the value is heap-boxed at the call.
func checkBoxing(pass *analysis.Pass, call *ast.CallExpr, hint string) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // xs... passes the slice itself
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isTP := pt.(*types.TypeParam); isTP {
			continue // generic params are concretized at instantiation
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := typeOf(pass, arg)
		if at == nil || types.IsInterface(at) || isNil(pass, arg) {
			continue
		}
		pass.Reportf(arg.Pos(), "hot path: passing concrete %s as interface %s boxes and allocates%s",
			types.TypeString(at, types.RelativeTo(pass.Pkg)), types.TypeString(pt, types.RelativeTo(pass.Pkg)), hint)
	}
}

func typeOf(pass *analysis.Pass, e ast.Expr) types.Type {
	if tv, ok := pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isStringExpr(pass *analysis.Pass, e ast.Expr) bool {
	return isString(typeOf(pass, e))
}

func isConstant(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}
