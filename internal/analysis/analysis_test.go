package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"imitator/internal/analysis"
)

// fixtureSrc exercises the directive grammar end to end: end-of-line and
// own-line suppression, missing-reason rejection, a known bare annotation,
// and an unknown key.
const fixtureSrc = `package fixture

func boom() {}

func suppressedEOL() {
	boom() //imitator:dummy-ok covered by setup
}

func suppressedOwnLine() {
	//imitator:dummy-ok reasoned, on its own line
	boom()
}

func reasonless() {
	boom() //imitator:dummy-ok
}

func unsuppressed() {
	boom()
}

//imitator:dummymark
func marked() {}

//imitator:mystery some words
func typo() {}
`

// dummyAnalyzer flags every call to boom; its directive grammar mirrors the
// real analyzers (suppression key "dummy", bare annotation "dummymark").
func dummyAnalyzer() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:        "dummy",
		Directive:   "dummy",
		Annotations: []string{"dummymark"},
		Doc:         "flags calls to boom (directive-grammar test analyzer)",
		Run: func(p *analysis.Pass) error {
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "boom" {
							p.Reportf(call.Pos(), "boom call")
						}
					}
					return true
				})
			}
			return nil
		},
	}
}

func loadFixture(t *testing.T) *analysis.Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", fixtureSrc, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	pkg, err := analysis.CheckFiles(fset, nil, "fixture", []*ast.File{f})
	if err != nil {
		t.Fatalf("typecheck fixture: %v", err)
	}
	return pkg
}

func TestDirectiveGrammar(t *testing.T) {
	pkg := loadFixture(t)
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{dummyAnalyzer()})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	type finding struct {
		analyzer string
		line     int
	}
	var got []finding
	for _, d := range diags {
		got = append(got, finding{d.Analyzer, pkg.Fset.Position(d.Pos).Line})
	}

	// Line numbers refer to fixtureSrc: the reasonless directive sits on
	// line 15 and fails to suppress the boom on the same line; the plain
	// boom is on line 19; the unknown key on line 25.
	want := []finding{
		{"dummy", 15},     // reasonless directive suppresses nothing
		{"directive", 15}, // ... and is itself flagged for the missing reason
		{"dummy", 19},     // unsuppressed call survives
		{"directive", 25}, // unknown key "mystery"
	}
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics %v, want %d %v", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diagnostic %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	// The suppressed calls (lines 6 and 11) must not appear at all.
	for _, f := range got {
		if f.analyzer == "dummy" && (f.line == 6 || f.line == 11) {
			t.Errorf("suppressed call at line %d was still reported", f.line)
		}
	}
}

func TestMissingReasonMessage(t *testing.T) {
	pkg := loadFixture(t)
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{dummyAnalyzer()})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "directive requires a reason") {
			found = true
		}
	}
	if !found {
		t.Errorf("no missing-reason diagnostic in %v", diags)
	}
}

func TestUnknownKeyListsKnownKeys(t *testing.T) {
	pkg := loadFixture(t)
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{dummyAnalyzer()})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	found := false
	for _, d := range diags {
		if !strings.Contains(d.Message, "unknown directive imitator:mystery") {
			continue
		}
		found = true
		// The message must name the valid vocabulary so a typo is fixable
		// from the diagnostic alone.
		for _, key := range []string{"dummy-ok", "dummymark"} {
			if !strings.Contains(d.Message, key) {
				t.Errorf("unknown-key message %q does not list %q", d.Message, key)
			}
		}
	}
	if !found {
		t.Errorf("no unknown-key diagnostic in %v", diags)
	}
}

func TestKnownAnnotationNotFlagged(t *testing.T) {
	pkg := loadFixture(t)
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{dummyAnalyzer()})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range diags {
		if strings.HasPrefix(d.Message, "unknown directive imitator:dummymark") {
			t.Errorf("declared annotation flagged as unknown: %s", d.Message)
		}
	}
}
