package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPkg mirrors the subset of `go list -json` output we consume.
type listedPkg struct {
	Dir        string
	ImportPath string
	Standard   bool
	GoFiles    []string
	Module     *struct{ Path string }
}

// Load runs `go list -deps -json` on the patterns and type-checks every
// non-standard-library package in the result, in dependency order, sharing
// one FileSet. Standard-library imports are resolved by the compiler-free
// source importer, so no pre-built export data is needed. Test files are
// not loaded: the analyzers gate production invariants.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-deps", "-json=Dir,ImportPath,Standard,GoFiles,Module"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v: %s", patterns, err, stderr.String())
	}

	fset := token.NewFileSet()
	std := importer.ForCompiler(fset, "source", nil)
	done := map[string]*types.Package{}
	imp := &chainImporter{local: done, fallback: std}

	var pkgs []*Package
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPkg
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		if lp.Standard {
			continue
		}
		// `go list -deps` emits dependencies before dependents, so by the
		// time a package imports a sibling, the sibling is already in done.
		pkg, err := check(fset, imp, lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		done[lp.ImportPath] = pkg.Types
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// check parses and type-checks one package from explicit file names.
func check(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return CheckFiles(fset, imp, path, files)
}

// CheckFiles type-checks already-parsed files as one package.
func CheckFiles(fset *token.FileSet, imp types.Importer, path string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	dir := ""
	if len(files) > 0 {
		dir = filepath.Dir(fset.Position(files[0].Pos()).Filename)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// chainImporter resolves module-local packages from the already-checked set
// and everything else (the standard library) through the fallback.
type chainImporter struct {
	local    map[string]*types.Package
	fallback types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.local[path]; ok {
		return p, nil
	}
	return c.fallback.Import(path)
}
