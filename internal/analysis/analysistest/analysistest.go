// Package analysistest runs an analyzer over small testdata packages and
// checks its diagnostics against // want comments, mirroring the x/tools
// package of the same name on the standard library only.
//
// Layout: <testdata>/src/<importpath>/*.go, exactly like the upstream
// convention. Imports are resolved from the testdata tree first (so a test
// package may import a stub with a real-looking path such as
// imitator/internal/bufpool), then from the standard library.
//
// Expectations are written on the offending line:
//
//	buf := pool.Get() // want `leaks`
//	n := r.u32()      // want "tainted" "unbounded"
//
// Each quoted string is a regexp that must match one diagnostic reported on
// that line; diagnostics with no matching want, and wants with no matching
// diagnostic, fail the test.
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"imitator/internal/analysis"
)

// Run loads each named package from testdata/src and checks the analyzer's
// diagnostics (after suppression directives) against its want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	fset := token.NewFileSet()
	ld := &loader{
		root:     filepath.Join(testdata, "src"),
		fset:     fset,
		std:      importer.ForCompiler(fset, "source", nil),
		packages: map[string]*analysis.Package{},
	}
	for _, path := range pkgPaths {
		pkg, err := ld.load(path)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		diags, err := analysis.Run(pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("run %s on %s: %v", a.Name, path, err)
		}
		checkWants(t, fset, pkg, diags)
	}
}

// loader memoizes testdata packages so stubs shared between test packages
// type-check once.
type loader struct {
	root     string
	fset     *token.FileSet
	std      types.Importer
	packages map[string]*analysis.Package
}

func (l *loader) load(path string) (*analysis.Package, error) {
	if p, ok := l.packages[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkg, err := analysis.CheckFiles(l.fset, l, path, files)
	if err != nil {
		return nil, err
	}
	l.packages[path] = pkg
	return pkg, nil
}

// Import resolves testdata-local packages before the standard library.
func (l *loader) Import(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(l.root, filepath.FromSlash(path))); err == nil {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// want is one expectation parsed from a comment.
type want struct {
	file string
	line int
	rx   *regexp.Regexp
	raw  string
	hit  bool
}

var wantRE = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// checkWants matches diagnostics against // want comments line by line.
func checkWants(t *testing.T, fset *token.FileSet, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "// want ")
				if i < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text[i+len("// want "):], -1) {
					expr := m[1]
					if expr == "" {
						expr = m[2]
					}
					rx, err := regexp.Compile(expr)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, expr, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, rx: rx, raw: expr})
				}
			}
		}
	}
	for _, d := range diags {
		p := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == p.Filename && w.line == p.Line && w.rx.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic [%s] %s", p.Filename, p.Line, d.Analyzer, d.Message)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}
