// Fixture for the narrowing analyzer. The package path matters: the
// analyzer only fires inside the SoA/CSR-building packages, so the fixture
// pretends to be imitator/internal/graph.
package graph

const maxInt32 = 1<<31 - 1

// unguardedBuild narrows a len-derived index with no bound check.
func unguardedBuild(keys []uint16) []int32 {
	idx := make([]int32, len(keys))
	for i := range keys {
		idx[i] = int32(i) // want `int32 conversion narrows a len/cap-derived value`
	}
	return idx
}

// unguardedLen narrows len() directly.
func unguardedLen(payload []byte) uint32 {
	return uint32(len(payload)) // want `uint32 conversion narrows a len/cap-derived value`
}

// guardedBuild is the canonical fix: a diverging bound check dominates the
// narrowing, clearing both len(keys) and range indexes over keys.
func guardedBuild(keys []uint16) []int32 {
	if len(keys) > maxInt32 {
		panic("too many keys")
	}
	idx := make([]int32, len(keys))
	for i := range keys {
		idx[i] = int32(i) // ok: bounded above
	}
	return idx
}

// guardedVar clears a tainted variable by comparing it before narrowing.
func guardedVar(buf []byte) (uint32, bool) {
	n := len(buf)
	if n > maxInt32 {
		return 0, false
	}
	return uint32(n), true // ok: n was checked
}

// inductionTaint propagates len-taint through a classic for loop.
func inductionTaint(xs []int) []int32 {
	out := make([]int32, 0, 8)
	n := len(xs)
	for i := 0; i < n; i++ {
		out = append(out, int32(i)) // want `int32 conversion narrows a len/cap-derived value`
	}
	return out
}

// cleanSources shows values that never carry size taint: hashes, modular
// reductions, masks, min clamps, constants, and ranges over fixed-size
// containers.
func cleanSources(xs []int, h uint64, numNodes int) []int32 {
	out := make([]int32, 4)
	for i := range out { // make() with a clean size: not a size worth guarding
		out[i] = int32(i)
	}
	_ = int32(h % uint64(numNodes)) // modular reduction bounds the value
	_ = uint16(h & 0xffff)          // mask bounds the value
	_ = int32(min(len(xs), 1024))   // min clamps the value
	_ = int32(maxInt32)             // constants are compiler-checked
	return out
}

// widening never fires: converting up or sideways loses nothing.
func widening(xs []byte) (int64, uint64) {
	return int64(len(xs)), uint64(len(xs))
}

// suppressed shows the escape hatch for a justified narrowing.
func suppressed(xs []int) uint8 {
	return uint8(len(xs)) //imitator:narrowing-ok fixture exercises the suppression path
}
