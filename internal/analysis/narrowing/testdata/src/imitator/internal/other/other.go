// Package other is outside the narrowing allowlist: the same unguarded
// narrowing that fires in the graph fixture must stay silent here.
package other

func unguardedLen(payload []byte) uint32 {
	return uint32(len(payload)) // no want: package not in scope
}
